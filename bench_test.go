// Package repro_test holds the top-level benchmarks, one per table and
// figure of the paper's evaluation (§VII-B). Each benchmark drives the
// same runners as cmd/benchfig; run the command for the full tables with
// confidence intervals and t-tests, and these benchmarks for quick
// ns/op + allocs/op views:
//
//	go test -bench=. -benchmem
//
// Benchmarks run with the instant latency model (scale 0) so they
// measure the framework's own computational cost; cmd/benchfig -scale
// reintroduces the Platform Services latencies for paper-shape numbers.
package repro_test

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/seal"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

// benchWorld lazily builds a two-machine data center for benchmarks.
func benchWorld(b *testing.B) (*cloud.Machine, *cloud.Machine) {
	b.Helper()
	dc, err := cloud.NewDataCenter("bench", sim.NewInstantLatency())
	if err != nil {
		b.Fatal(err)
	}
	src, err := dc.AddMachine("src")
	if err != nil {
		b.Fatal(err)
	}
	dst, err := dc.AddMachine("dst")
	if err != nil {
		b.Fatal(err)
	}
	return src, dst
}

func benchImage(name string) *sgx.Image {
	key := xcrypto.DeriveKey([]byte("bench-signer"), "pub")
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: ed25519.PublicKey(key[:])}
}

func benchApp(b *testing.B, m *cloud.Machine, name string) *cloud.App {
	b.Helper()
	app, err := m.LaunchApp(benchImage(name), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		b.Fatal(err)
	}
	return app
}

// --- Figure 3: monotonic counter operations ------------------------------

func BenchmarkFig3CounterCreateDestroyLibrary(b *testing.B) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	app := benchApp(b, src, "fig3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, _, err := app.Library.CreateCounter()
		if err != nil {
			b.Fatal(err)
		}
		if err := app.Library.DestroyCounter(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3CounterCreateDestroyBaseline(b *testing.B) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	e, err := src.HW.Load(benchImage("fig3-base"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uuid, _, err := src.Counters.Create(e)
		if err != nil {
			b.Fatal(err)
		}
		if err := src.Counters.Destroy(e, uuid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3CounterIncrementLibrary(b *testing.B) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	app := benchApp(b, src, "fig3")
	id, _, err := app.Library.CreateCounter()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Library.IncrementCounter(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3CounterIncrementObsWired is the hot-path guard's probe:
// the same single-threaded increment loop as the Library benchmark, but
// with a live observer wired into the data center, so every increment
// pays whatever the telemetry plane costs on the fast path. CI compares
// it against BenchmarkFig3CounterIncrementLibrary and fails if the wired
// number regresses more than 15% past the plain one.
func BenchmarkFig3CounterIncrementObsWired(b *testing.B) {
	b.ReportAllocs()
	dc, err := cloud.NewDataCenter("bench-obs", sim.NewInstantLatency())
	if err != nil {
		b.Fatal(err)
	}
	dc.SetObserver(obs.NewObserver())
	src, err := dc.AddMachine("src")
	if err != nil {
		b.Fatal(err)
	}
	app := benchApp(b, src, "fig3-obs")
	id, _, err := app.Library.CreateCounter()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Library.IncrementCounter(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3CounterIncrementParallel drives increments on distinct
// counter slots from all Ps at once: the workload the sharded counter
// service, lock-free library data plane, and atomic latency accounting
// exist for. Before the hot-path overhaul every increment serialized
// behind three global mutexes (library, counter table, latency model).
func BenchmarkFig3CounterIncrementParallel(b *testing.B) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	app := benchApp(b, src, "fig3-par")
	nslots := runtime.GOMAXPROCS(0)
	if nslots > core.NumCounters {
		nslots = core.NumCounters
	}
	for i := 0; i < nslots; i++ {
		if _, _, err := app.Library.CreateCounter(); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(next.Add(1)-1) % nslots
		for pb.Next() {
			if _, err := app.Library.IncrementCounter(id); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkFig3CounterIncrementBaseline(b *testing.B) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	e, err := src.HW.Load(benchImage("fig3-base"))
	if err != nil {
		b.Fatal(err)
	}
	uuid, _, err := src.Counters.Create(e)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Counters.Increment(e, uuid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3CounterReadLibrary(b *testing.B) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	app := benchApp(b, src, "fig3")
	id, _, err := app.Library.CreateCounter()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Library.ReadCounter(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3CounterReadBaseline(b *testing.B) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	e, err := src.HW.Load(benchImage("fig3-base"))
	if err != nil {
		b.Fatal(err)
	}
	uuid, _, err := src.Counters.Create(e)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Counters.Read(e, uuid); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: initialization and sealing --------------------------------

func BenchmarkFig4InitNew(b *testing.B) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := src.HW.Load(benchImage("fig4-init"))
		if err != nil {
			b.Fatal(err)
		}
		lib := core.NewLibrary(e, src.Counters, core.NewMemoryStorage())
		if err := lib.Init(core.InitNew, src.ME); err != nil {
			b.Fatal(err)
		}
		src.HW.Destroy(e)
	}
}

func BenchmarkFig4InitRestore(b *testing.B) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	storage := core.NewMemoryStorage()
	{
		e, err := src.HW.Load(benchImage("fig4-restore"))
		if err != nil {
			b.Fatal(err)
		}
		lib := core.NewLibrary(e, src.Counters, storage)
		if err := lib.Init(core.InitNew, src.ME); err != nil {
			b.Fatal(err)
		}
		src.HW.Destroy(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := src.HW.Load(benchImage("fig4-restore"))
		if err != nil {
			b.Fatal(err)
		}
		lib := core.NewLibrary(e, src.Counters, storage)
		if err := lib.Init(core.InitRestore, src.ME); err != nil {
			b.Fatal(err)
		}
		src.HW.Destroy(e)
	}
}

func benchmarkSeal(b *testing.B, size int, migratable bool) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	app := benchApp(b, src, "fig4-seal")
	baseEnclave, err := src.HW.Load(benchImage("fig4-seal-base"))
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if migratable {
			if _, err := app.Library.SealMigratable(nil, payload); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := seal.Seal(baseEnclave, sgx.PolicyMRENCLAVE, nil, payload); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig4Seal100BMigratable(b *testing.B) { benchmarkSeal(b, bench.SmallPayload, true) }
func BenchmarkFig4Seal100BBaseline(b *testing.B)   { benchmarkSeal(b, bench.SmallPayload, false) }
func BenchmarkFig4Seal100kBMigratable(b *testing.B) {
	benchmarkSeal(b, bench.LargePayload, true)
}
func BenchmarkFig4Seal100kBBaseline(b *testing.B) { benchmarkSeal(b, bench.LargePayload, false) }

func benchmarkUnseal(b *testing.B, size int, migratable bool) {
	b.ReportAllocs()
	src, _ := benchWorld(b)
	app := benchApp(b, src, "fig4-unseal")
	baseEnclave, err := src.HW.Load(benchImage("fig4-unseal-base"))
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, size)
	libBlob, err := app.Library.SealMigratable(nil, payload)
	if err != nil {
		b.Fatal(err)
	}
	baseBlob, err := seal.Seal(baseEnclave, sgx.PolicyMRENCLAVE, nil, payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if migratable {
			if _, _, err := app.Library.UnsealMigratable(libBlob); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, _, err := seal.Unseal(baseEnclave, baseBlob); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig4Unseal100kBMigratable(b *testing.B) { benchmarkUnseal(b, bench.LargePayload, true) }
func BenchmarkFig4Unseal100kBBaseline(b *testing.B)   { benchmarkUnseal(b, bench.LargePayload, false) }

// --- §VII-B: full enclave migration --------------------------------------

func BenchmarkMigrationEndToEnd(b *testing.B) {
	b.ReportAllocs()
	src, dst := benchWorld(b)
	img := benchImage("migrate")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, err := src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := app.Library.CreateCounter(); err != nil {
			b.Fatal(err)
		}
		if err := app.Library.StartMigration(dst.MEAddress()); err != nil {
			b.Fatal(err)
		}
		app.Terminate()
		dstApp, err := dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
		if err != nil {
			b.Fatal(err)
		}
		// Release the restored hardware counter so long benchmark runs do
		// not exhaust the 256-counter budget.
		if err := dstApp.Library.DestroyCounter(0); err != nil {
			b.Fatal(err)
		}
		dstApp.Terminate()
		src, dst = dst, src
	}
}

// BenchmarkMigrationRunner exercises the shared experiment runner used by
// cmd/benchfig (small N per benchmark iteration).
func BenchmarkMigrationRunner(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := bench.Config{N: 5, Scale: 0, Confidence: 0.99}
		if _, err := bench.MigrationOverhead(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fleet: datacenter drain throughput vs. worker-pool size -------------

// benchmarkFleetDrain drains a 3-machine data center of fleetApps
// enclaves through the orchestrator and reports migrations/sec, the
// fleet-level counterpart of BenchmarkMigrationEndToEnd.
const fleetApps = 48

func benchmarkFleetDrain(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dc, err := cloud.NewDataCenter("bench-fleet", sim.NewInstantLatency())
		if err != nil {
			b.Fatal(err)
		}
		src, err := dc.AddMachine("A")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dc.AddMachine("B"); err != nil {
			b.Fatal(err)
		}
		if _, err := dc.AddMachine("C"); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < fleetApps; j++ {
			app, err := src.LaunchApp(benchImage(fmt.Sprintf("fleet-%03d", j)), core.NewMemoryStorage(), core.InitNew)
			if err != nil {
				b.Fatal(err)
			}
			id, _, err := app.Library.CreateCounter()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := app.Library.IncrementCounter(id); err != nil {
				b.Fatal(err)
			}
		}
		orch := fleet.New(dc, fleet.Config{Workers: workers})
		b.StartTimer()
		report, err := orch.Execute(context.Background(), fleet.Drain("A"))
		if err != nil {
			b.Fatal(err)
		}
		if report.Completed != fleetApps {
			b.Fatalf("completed %d of %d", report.Completed, fleetApps)
		}
	}
	b.ReportMetric(float64(fleetApps*b.N)/b.Elapsed().Seconds(), "migrations/s")
}

func BenchmarkFleetDrain(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkFleetDrain(b, workers)
		})
	}
}

// --- Ablation: offset vs. increment-replay counter restore (§VI-B) -------

func BenchmarkAblationOffsetRestore(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RestoreAblation(1000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Replicated counters: increment latency vs. replication factor -------

func benchmarkReplicatedIncrement(b *testing.B, f int) {
	b.ReportAllocs()
	dc, err := cloud.NewDataCenter("bench-repl", sim.NewInstantLatency())
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, 0, 2*f+1)
	for i := 0; i < 2*f+1; i++ {
		id := fmt.Sprintf("rack-%d", i)
		if _, err := dc.AddMachine(id); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	if f > 0 {
		if _, err := dc.NewReplicaGroup("bench-rack", f, ids...); err != nil {
			b.Fatal(err)
		}
	}
	host, _ := dc.Machine(ids[0])
	app := benchApp(b, host, "repl")
	id, _, err := app.Library.CreateCounter()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Library.IncrementCounter(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicatedIncrement sweeps the framework-side cost of a
// Migration Library increment against the plain per-machine counter
// service (f=0) and quorum-replicated groups of 3 (f=1) and 5 (f=2)
// replicas; cmd/benchfig -repl reports the same sweep with confidence
// intervals and, at -scale > 0, the modeled network/firmware latencies.
func BenchmarkReplicatedIncrement(b *testing.B) {
	for _, f := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			benchmarkReplicatedIncrement(b, f)
		})
	}
}

// --- Restart-anywhere recovery: kill→recovered on a rack peer ------------

// BenchmarkRecoverMachine measures resurrecting one enclave from the
// rack escrow after its machine is killed (f=1 rack); cmd/benchfig
// -recover reports the sweep over f and escrow blob size with
// confidence intervals. Each round permanently consumes rack counter
// budget (the app counter and the binding counter outlive the
// terminated enclave by design), so the data center is recycled
// periodically like bench.RecoverySweep does.
func BenchmarkRecoverMachine(b *testing.B) {
	b.ReportAllocs()
	const recycleEvery = 50
	var (
		dc   *cloud.DataCenter
		host *cloud.Machine
	)
	rebuild := func() {
		var err error
		dc, err = cloud.NewDataCenter("bench-recover", sim.NewInstantLatency())
		if err != nil {
			b.Fatal(err)
		}
		ids := []string{"rack-0", "rack-1", "rack-2"}
		for _, id := range ids {
			if _, err := dc.AddMachine(id); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := dc.NewReplicaGroup("bench-rack", 1, ids...); err != nil {
			b.Fatal(err)
		}
		host, _ = dc.Machine("rack-0")
	}
	rebuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if i > 0 && i%recycleEvery == 0 {
			rebuild()
		}
		app := benchApp(b, host, "recover")
		ctr, _, err := app.Library.CreateCounter()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			b.Fatal(err)
		}
		host.Kill()
		b.StartTimer()
		recovered, err := dc.RecoverMachine("rack-0", "rack-1")
		if err != nil || len(recovered) != 1 {
			b.Fatalf("recover: %d apps err=%v", len(recovered), err)
		}
		b.StopTimer()
		recovered[0].Terminate()
		if err := host.Restart(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
