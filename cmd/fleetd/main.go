// Command fleetd drives the fleet migration orchestrator: it provisions
// a simulated data center, populates it with migratable enclaves, then
// executes a policy-driven plan — drain a machine, rebalance the fleet,
// or evacuate onto explicit targets — through the concurrent executor,
// and prints the journal's latency summary and throughput.
//
//	fleetd                                   drain machine-0 of 100 enclaves, 3 machines
//	fleetd -plan rebalance -machines 4       level the fleet across 4 machines
//	fleetd -plan evacuate -targets machine-2 evacuate onto one machine
//	fleetd -workers 32 -apps 500             scale the worker pool and fleet
//	fleetd -policy round-robin -v            alternate policy, per-migration log
//	fleetd -chaos -chaos-seeds 8             chaos self-test: seeded fault schedules
//	                                         against a two-DC federation; exits
//	                                         non-zero with a minimal repro on any
//	                                         R1–R4 invariant violation
package main

import (
	"context"
	"crypto/ed25519"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/flight"
	"repro/internal/obs/health"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
}

// printJournalFailures writes the journal's non-completed entries to
// stderr (the error-path summary).
func printJournalFailures(report *fleet.Report) {
	for _, e := range report.Journal.Entries() {
		if e.Status == fleet.StatusCompleted {
			continue
		}
		dest := e.Dest
		if dest == "" {
			dest = e.PlannedDest
		}
		via := ""
		if e.Link != "" {
			via = " via " + e.Link
		}
		fmt.Fprintf(os.Stderr, "  %-9s %-12s %s -> %s%s (attempts %d): %s\n",
			e.Status, e.App, e.Source, dest, via, e.Attempts, e.Err)
	}
}

// printTelemetry summarizes the plan's traces, latency histograms, and
// wire traffic: how many spans each migration generated, the tail of the
// migration-latency distribution, and which message kinds moved the
// bytes — the at-a-glance health readout next to the journal numbers.
func printTelemetry(o *obs.Observer, report *fleet.Report) {
	fmt.Println("telemetry:")
	if report.Completed > 0 {
		fmt.Printf("  traces: %d spans across %d traces (%.1f spans/migration)\n",
			o.Tracer.Len(), len(o.Tracer.ByTrace()), float64(o.Tracer.Len())/float64(report.Completed))
	} else {
		fmt.Printf("  traces: %d spans across %d traces\n", o.Tracer.Len(), len(o.Tracer.ByTrace()))
	}
	snap := o.Metrics.Snapshot()
	if h, ok := snap.Histograms["fleet.migration.latency"]; ok && h.Count > 0 {
		fmt.Printf("  migration latency: n=%d p50=%s p99=%s p999=%s\n",
			h.Count, h.P50.Round(time.Microsecond), h.P99.Round(time.Microsecond), h.P999.Round(time.Microsecond))
	}
	if h, ok := snap.Histograms["fleet.recovery.latency"]; ok && h.Count > 0 {
		fmt.Printf("  recovery latency:  n=%d p50=%s p99=%s p999=%s\n",
			h.Count, h.P50.Round(time.Microsecond), h.P99.Round(time.Microsecond), h.P999.Round(time.Microsecond))
	}
	type kindRow struct {
		kind  string
		bytes int64
	}
	var kinds []kindRow
	for name, v := range snap.Counters {
		if k, ok := strings.CutPrefix(name, "wire.bytes."); ok {
			kinds = append(kinds, kindRow{k, v})
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].bytes > kinds[j].bytes })
	fmt.Printf("  wire: %d msgs, %d bytes by kind:\n", snap.Counters["wire.msgs"], snap.Counters["wire.bytes"])
	for _, k := range kinds {
		fmt.Printf("    %-16s %9d B (%d msgs)\n", k.kind, k.bytes, snap.Counters["wire.msgs."+k.kind])
	}
	fmt.Printf("  audit events: %d\n", o.Events.Len())
}

// printAnalysis runs the trace analytics over the finished plan: the
// per-phase critical-path breakdown of every migration/recovery trace
// (where did the microseconds go), derived unavailability windows, SLO
// verdicts, and how much telemetry the bounded rings shed. The phase
// durations are a partition of each trace's root window, so the summary
// mean tracks the measured fleet.migration.latency mean.
func printAnalysis(plane *analyze.Plane, o *obs.Observer) {
	verdicts := plane.Refresh()
	spans := o.Tracer.Spans()
	for _, root := range []string{"fleet.migrate", "fleet.recover"} {
		sum := analyze.Summarize(spans, root)
		if sum.Count == 0 {
			continue
		}
		fmt.Printf("critical path (%s, %d traces, mean %s):\n",
			root, sum.Count, sum.Mean.Round(time.Microsecond))
		for _, p := range sum.Phases {
			mean := p.Total / time.Duration(sum.Count)
			fmt.Printf("    %-12s %10s/trace  %5.1f%%\n",
				p.Phase, mean.Round(time.Nanosecond), 100*p.Fraction)
		}
	}
	snap := o.Metrics.Snapshot()
	for _, kind := range []string{"freeze", "recovery"} {
		if h, ok := snap.Histograms["unavail."+kind+".window"]; ok && h.Count > 0 {
			fmt.Printf("unavailability (%s): n=%d p50=%s p99=%s max<=%s\n",
				kind, h.Count, h.P50.Round(time.Microsecond), h.P99.Round(time.Microsecond), h.Max)
		}
	}
	for _, v := range verdicts {
		fmt.Println(" ", v)
	}
	// Always printed, even at zero: a reader checking whether the rings
	// clipped this plan's telemetry should not have to infer it from an
	// absent line.
	fmt.Printf("  rings dropped: %d spans, %d events\n", o.Tracer.Dropped(), o.Events.Dropped())
	fmt.Printf("health: %s", plane.Health.Overall())
	unhealthy := 0
	for _, e := range plane.Health.States() {
		if e.State == health.Healthy {
			continue
		}
		unhealthy++
		fmt.Printf("\n  %-8s %s/%s: %s", e.State, e.Kind, e.Name, e.Reason)
	}
	if unhealthy == 0 {
		fmt.Printf(" (%d entities)", len(plane.Health.States()))
	}
	fmt.Println()
	if n := plane.Flight.Trips(); n > 0 {
		fmt.Printf("flight recorder: %d bundle(s) captured (latest served at /flight)\n", n)
	}
}

// runChaos is fleetd's self-test mode: seeded chaos schedules drive
// the full fault palette (kills, rack restarts, WAN partitions, forced
// failovers, concurrent plans) against a two-DC federation while the
// invariant checker watches the R1–R4 guarantees. Any violation is
// shrunk to a minimal repro, printed, and the process exits non-zero —
// wire it into a deploy gate to refuse rollouts that fork enclaves.
func runChaos(seed int64, seeds, steps, apps, counters int, verbose bool) error {
	if apps > 16 {
		apps = 16 // chaos worlds are small; the default -apps 100 is for plans
	}
	for s := seed; s < seed+int64(seeds); s++ {
		cfg := chaos.Config{Seed: s, Steps: steps, Apps: apps, Counters: counters, WANLoss: 0.1}
		res, err := chaos.Run(cfg)
		if err != nil {
			return fmt.Errorf("chaos seed %d: %w", s, err)
		}
		if verbose {
			fmt.Printf("chaos seed %-6d %4d ops, %d violations\n", s, res.Ops, len(res.Violations))
		}
		if !res.Failed() {
			continue
		}
		repro, err := chaos.Shrink(cfg, res.Steps, 200)
		if err != nil {
			return fmt.Errorf("chaos seed %d: shrink: %w", s, err)
		}
		fmt.Fprintf(os.Stderr, "chaos seed %d violated %d invariant(s); minimal repro:\n%s",
			s, len(res.Violations), repro)
		os.Exit(2)
	}
	fmt.Printf("chaos: %d schedules, 0 invariant violations\n", seeds)
	return nil
}

func run() error {
	var (
		machines    = flag.Int("machines", 3, "number of SGX machines in the data center")
		apps        = flag.Int("apps", 100, "number of migratable enclaves to launch")
		workers     = flag.Int("workers", 8, "concurrent migration workers")
		planName    = flag.String("plan", "drain", "plan: drain | rebalance | evacuate")
		source      = flag.String("source", "machine-0", "comma-separated machines to drain/evacuate")
		targets     = flag.String("targets", "", "comma-separated destination machines (evacuate)")
		policy      = flag.String("policy", "least-loaded", "placement policy: least-loaded | round-robin")
		counters    = flag.Int("counters", 2, "monotonic counters per enclave")
		scale       = flag.Float64("scale", 0, "latency scale (1 = paper-magnitude latencies)")
		verbose     = flag.Bool("v", false, "log each migration outcome")
		metricsAddr = flag.String("metrics-addr", "", "serve the observability plane on this address (e.g. 127.0.0.1:9090): OpenMetrics at /metrics, JSON at /metrics.json, /traces, /events, /slo, /health, /flight")
		flightDir   = flag.String("flight-dir", "", "persist flight-recorder bundles into this directory (latest 16 kept)")
		linger      = flag.Duration("linger", 0, "keep serving -metrics-addr for this long after the plan finishes (for scrapers)")
		chaosMode   = flag.Bool("chaos", false, "run seeded chaos schedules against a two-DC federation instead of a single plan; exits non-zero with a minimal repro on any invariant violation")
		chaosSeed   = flag.Int64("chaos-seed", 0, "first chaos schedule seed")
		chaosSeeds  = flag.Int("chaos-seeds", 8, "number of chaos schedules to run")
		chaosSteps  = flag.Int("chaos-steps", 30, "steps per chaos schedule")
	)
	flag.Parse()
	if *chaosMode {
		return runChaos(*chaosSeed, *chaosSeeds, *chaosSteps, *apps, *counters, *verbose)
	}
	if *machines < 2 {
		return fmt.Errorf("need at least 2 machines, got %d", *machines)
	}
	if *apps < 1 {
		return fmt.Errorf("need at least 1 app, got %d", *apps)
	}
	if *counters < 1 || *counters > core.NumCounters {
		return fmt.Errorf("counters must be in [1, %d]", core.NumCounters)
	}

	var pol fleet.Policy
	switch *policy {
	case "least-loaded":
		pol = fleet.LeastLoaded{}
	case "round-robin":
		pol = &fleet.RoundRobin{}
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	var plan fleet.Plan
	sources := strings.Split(*source, ",")
	switch *planName {
	case "drain":
		plan = fleet.Drain(sources...)
	case "rebalance":
		plan = fleet.Rebalance()
	case "evacuate":
		if *targets == "" {
			return fmt.Errorf("evacuate needs -targets")
		}
		plan = fleet.Evacuate(sources, strings.Split(*targets, ","))
	default:
		return fmt.Errorf("unknown plan %q", *planName)
	}
	plan.Policy = pol

	lat := sim.NewLatency(*scale)
	network := transport.NewNetwork(lat)
	observer := obs.NewObserver()
	meter := fleet.NewMeterWithMetrics(network, observer.Metrics)
	dc, err := cloud.NewDataCenterWithNetwork("fleetd-dc", lat, meter)
	if err != nil {
		return err
	}
	dc.SetObserver(observer)
	plane := analyze.NewPlane(observer)
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			return fmt.Errorf("flight dir: %w", err)
		}
		plane.Flight.SetDir(*flightDir, 16)
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, plane.Handler()) }()
		fmt.Printf("serving observability plane at http://%s/metrics (.json, /traces, /events, /slo)\n", ln.Addr())
	}
	for i := 0; i < *machines; i++ {
		if _, err := dc.AddMachine(fmt.Sprintf("machine-%d", i)); err != nil {
			return err
		}
	}
	first, _ := dc.Machine("machine-0")

	signer := xcrypto.DeriveKey([]byte("fleetd"), "signer")
	expected := make(map[string]uint32, *apps)
	ctrIDs := make(map[string][]int, *apps)
	fmt.Printf("provisioned %d machines; launching %d enclaves on %s\n", *machines, *apps, first.ID())
	for i := 0; i < *apps; i++ {
		name := fmt.Sprintf("tenant-%04d", i)
		img := &sgx.Image{
			Name:            name,
			Version:         1,
			Code:            []byte(name),
			SignerPublicKey: ed25519.PublicKey(signer[:]),
		}
		app, err := first.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			return fmt.Errorf("launch %s: %w", name, err)
		}
		incs := uint32(i%7 + 1)
		for c := 0; c < *counters; c++ {
			id, _, err := app.Library.CreateCounter()
			if err != nil {
				return err
			}
			ctrIDs[name] = append(ctrIDs[name], id)
			for j := uint32(0); j < incs; j++ {
				if _, err := app.Library.IncrementCounter(id); err != nil {
					return err
				}
			}
		}
		expected[name] = incs
	}

	cfg := fleet.Config{Workers: *workers, Meter: meter, Obs: observer}
	if *verbose {
		cfg.OnEvent = func(e fleet.Event) {
			switch e.Type {
			case fleet.EventCompleted:
				fmt.Printf("  %-12s %s -> %s (attempt %d)\n", e.App, e.Source, e.Dest, e.Attempt)
			case fleet.EventRedirect:
				fmt.Printf("  %-12s redirected to %s\n", e.App, e.Dest)
			case fleet.EventFailed:
				fmt.Printf("  %-12s FAILED: %v\n", e.App, e.Err)
			}
		}
	}

	fmt.Printf("executing %s plan (%s policy, %d workers)\n\n", plan.Intent, pol.Name(), *workers)
	orch := fleet.New(dc, cfg)
	report, err := orch.Execute(context.Background(), plan)
	if report != nil && report.Journal != nil {
		// The black box ships the journal tail of the latest plan.
		j := report.Journal
		plane.Flight.SetJournalProvider(func() []byte {
			raw, err := j.Encode()
			if err != nil {
				return nil
			}
			return raw
		})
	}
	if err != nil {
		if report != nil {
			printJournalFailures(report)
		}
		_, _ = plane.Flight.Trip(flight.Trigger{
			Kind: flight.TriggerPlanFailure, Actor: "fleetd", Detail: err.Error(),
		})
		return err
	}
	fmt.Println(report)
	printTelemetry(observer, report)
	printAnalysis(plane, observer)
	// A plan with failed or canceled migrations is a failed operation:
	// surface every non-completed journal entry and exit non-zero, so
	// scripts and CI catch it instead of parsing logs.
	if report.Failed > 0 || report.Canceled > 0 {
		printJournalFailures(report)
		ferr := fmt.Errorf("plan finished with %d failed and %d canceled migrations",
			report.Failed, report.Canceled)
		_, _ = plane.Flight.Trip(flight.Trigger{
			Kind: flight.TriggerPlanFailure, Actor: "fleetd", Detail: ferr.Error(),
		})
		return ferr
	}

	// Verify the fleet invariants the paper's design promises: every
	// counter continued exactly where it left off, on exactly one machine.
	live := 0
	for _, m := range dc.Machines() {
		n := m.AppCount()
		live += n
		fmt.Printf("%-12s %3d enclaves\n", m.ID(), n)
	}
	if live != *apps {
		return fmt.Errorf("enclaves lost: %d live, want %d", live, *apps)
	}
	verified := 0
	for _, m := range dc.Machines() {
		for _, app := range m.Apps() {
			want, ok := expected[app.Image().Name]
			if !ok {
				continue
			}
			for _, id := range ctrIDs[app.Image().Name] {
				v, err := app.Library.ReadCounter(id)
				if err != nil {
					return fmt.Errorf("%s: %w", app.Image().Name, err)
				}
				if v != want {
					return fmt.Errorf("%s: counter %d = %d, want %d (rollback!)", app.Image().Name, id, v, want)
				}
			}
			verified++
		}
	}
	fmt.Printf("\nverified %d enclaves: all counters intact, no rollback, no forks\n", verified)
	if *metricsAddr != "" && *linger > 0 {
		fmt.Printf("lingering %s for scrapers on %s\n", linger, *metricsAddr)
		time.Sleep(*linger)
	}
	return nil
}
