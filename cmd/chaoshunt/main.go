// Command chaoshunt runs the chaos fleet's adversarial search over the
// paper's R1–R4 guarantees: seeded fault schedules (kills, restarts,
// rack cold-restarts, WAN partitions, mirror lag, forced failovers,
// fleet plans) against a two-datacenter federation, with every run's
// history replayed through the invariant checker. A failing schedule is
// automatically shrunk to a minimal repro (seed + step list) and
// printed; the process exits 2 so CI can collect the artifact.
//
//	chaoshunt                          24 seeded schedules, smoke scale
//	chaoshunt -seed 42 -seeds 1 -v     one schedule, verbose verdict
//	chaoshunt -budget 10m -loss 0.2    nightly soak: hunt until the budget
//	chaoshunt -replay repro.json       re-run a shrunken repro file
//	chaoshunt -flight flight-seed7.bin decode a flight-recorder bundle
//	chaoshunt -json                    machine-readable verdicts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs/flight"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaoshunt:", err)
		os.Exit(1)
	}
}

// verdict is the per-seed JSON record.
type verdict struct {
	Seed       int64             `json:"seed"`
	Ops        int               `json:"ops"`
	Events     int               `json:"events"`
	Violations []chaos.Violation `json:"violations,omitempty"`
	Coverage   chaos.Coverage    `json:"coverage"`
	Repro      *chaos.Repro      `json:"repro,omitempty"`
	// FlightFile names the black-box bundle written beside the repro
	// (flight.DecodeBundle or `fleetd`'s /flight.json shape reads it).
	FlightFile string `json:"flight_file,omitempty"`
}

// writeFlight persists a failing run's flight-recorder bundle next to
// the repro. It prefers a bundle captured from the shrunken schedule —
// the minimal history an investigator will actually replay — and falls
// back to the original run's bundle when the re-run cannot reproduce
// one. Returns the file name, or "" when nothing could be written.
func writeFlight(seed int64, repro *chaos.Repro, res *chaos.Result) string {
	raw := res.Flight
	if repro != nil {
		cfg := repro.Config
		cfg.Replay = repro.Steps
		if rr, err := chaos.Run(cfg); err == nil && len(rr.Flight) > 0 {
			raw = rr.Flight
		}
	}
	if len(raw) == 0 {
		return ""
	}
	name := fmt.Sprintf("flight-seed%d.bin", seed)
	if err := os.WriteFile(name, raw, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "chaoshunt: write %s: %v\n", name, err)
		return ""
	}
	return name
}

func run() error {
	var (
		seed     = flag.Int64("seed", 0, "first schedule seed")
		seeds    = flag.Int("seeds", 24, "number of consecutive seeds to run (ignored with -budget)")
		steps    = flag.Int("steps", 30, "schedule length per seed")
		machines = flag.Int("machines", 3, "machines per datacenter")
		apps     = flag.Int("apps", 4, "enclave identities")
		counters = flag.Int("counters", 2, "counters per identity")
		loss     = flag.Float64("loss", 0.1, "WAN loss probability [0,1)")
		budget   = flag.Duration("budget", 0, "time budget: run consecutive seeds until it expires (soak mode)")
		shrinkN  = flag.Int("shrink", 200, "max re-runs when shrinking a failing schedule")
		replay   = flag.String("replay", "", "JSON repro file to re-run instead of hunting")
		flightIn = flag.String("flight", "", "flight-recorder .bin bundle to decode and print instead of hunting")
		bias     = flag.Bool("bias", true, "bias schedule generation toward under-covered transitions")
		asJSON   = flag.Bool("json", false, "emit JSON verdicts")
		verbose  = flag.Bool("v", false, "per-seed progress")
	)
	flag.Parse()

	if *flightIn != "" {
		return dumpFlight(*flightIn, *asJSON)
	}
	if *replay != "" {
		return replayFile(*replay, *asJSON)
	}

	base := chaos.Config{
		Steps:    *steps,
		Machines: *machines,
		Apps:     *apps,
		Counters: *counters,
		WANLoss:  *loss,
	}
	// One shared accumulator across the hunt: each run's transition
	// coverage is absorbed, and later seeds' generation leans toward
	// whatever the search has visited least. Repros stay replayable —
	// a failing schedule is reported as a concrete step list, which
	// replay executes without consulting the bias.
	if *bias {
		base.Bias = chaos.NewBias()
	}
	total := chaos.NewCoverage()

	deadline := time.Time{}
	if *budget > 0 {
		deadline = time.Now().Add(*budget)
	}
	ran := 0
	start := time.Now()
	for s := *seed; ; s++ {
		if deadline.IsZero() {
			if ran >= *seeds {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		cfg := base
		cfg.Seed = s
		res, err := chaos.Run(cfg)
		if err != nil {
			return fmt.Errorf("seed %d: %w", s, err)
		}
		ran++
		total.Merge(res.Coverage)
		if *verbose && !*asJSON {
			fmt.Printf("seed %-6d %4d ops %4d events  %s\n", s, res.Ops, res.Events, passFail(res))
		}
		if !res.Failed() {
			continue
		}

		// Found one: shrink to the minimal repro and report.
		repro, err := chaos.Shrink(cfg, res.Steps, *shrinkN)
		if err != nil {
			return fmt.Errorf("seed %d: shrink: %w", s, err)
		}
		flightFile := writeFlight(s, repro, res)
		v := verdict{Seed: s, Ops: res.Ops, Events: res.Events, Violations: res.Violations, Coverage: res.Coverage, Repro: repro, FlightFile: flightFile}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(v); err != nil {
				return err
			}
		} else {
			fmt.Printf("seed %d VIOLATED %d invariant(s); minimal repro:\n%s", s, len(res.Violations), repro)
			if flightFile != "" {
				fmt.Printf("flight-recorder bundle written to %s\n", flightFile)
			}
			fmt.Printf("re-run: chaoshunt -replay <file> after saving the JSON below\n")
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(repro)
		}
		os.Exit(2)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"seeds_run":  ran,
			"first_seed": *seed,
			"violations": 0,
			"coverage":   total,
			"elapsed":    time.Since(start).String(),
		})
	}
	fmt.Printf("%d schedules, 0 invariant violations (%s)\n", ran, time.Since(start).Round(time.Millisecond))
	fmt.Println("invariant coverage (evaluations across all seeds):")
	for _, inv := range chaos.InvariantNames() {
		fmt.Printf("  %-26s %d\n", inv, total.Invariants[inv])
	}
	if *verbose {
		fmt.Println("transition coverage (executed steps):")
		for _, k := range chaos.SortedKeys(total.Transitions) {
			fmt.Printf("  %-26s %d\n", k, total.Transitions[k])
		}
	}
	return nil
}

func passFail(res *chaos.Result) string {
	if res.Failed() {
		return "FAIL"
	}
	return "ok"
}

// dumpFlight decodes a flight-recorder bundle from disk: a summary of
// what the black box holds by default, the full bundle as JSON with
// -json (the same shape fleetd serves at /flight.json).
func dumpFlight(path string, asJSON bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	b, err := flight.DecodeBundle(raw)
	if err != nil {
		return fmt.Errorf("decode %s: %w", path, err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(b)
	}
	fmt.Printf("trigger:  %s (actor %q) %s\n", b.Trigger.Kind, b.Trigger.Actor, b.Trigger.Detail)
	fmt.Printf("captured: %s\n", time.Unix(0, b.CreatedUnixNs).UTC().Format(time.RFC3339Nano))
	fmt.Printf("contents: %d spans, %d open spans, %d events, %d counters, %d gauges, %d histograms, %d journal bytes\n",
		len(b.Spans), len(b.Open), len(b.Events), len(b.Metrics.Counters), len(b.Metrics.Gauges), len(b.Metrics.Histograms), len(b.Journal))
	if b.Note != "" {
		fmt.Printf("note:     %s\n", b.Note)
	}
	for _, h := range b.Health {
		fmt.Printf("health:   %s/%s %s  %s\n", h.Kind, h.Name, h.State, h.Reason)
	}
	for _, v := range b.SLO {
		if v.Violated {
			fmt.Printf("slo:      %s VIOLATED (%s: %d > %d ns)\n", v.Name, v.Metric, v.ActualNs, v.MaxNs)
		}
	}
	for _, sp := range b.Open {
		fmt.Printf("open:     %s since %s (trace %x)\n", sp.Name, sp.Start.UTC().Format(time.RFC3339), sp.TraceID)
	}
	fmt.Println("use -flight FILE -json for the full bundle")
	return nil
}

// replayFile re-runs a shrunken repro (the JSON chaoshunt printed when
// it found a violation) and reports whether it still fails.
func replayFile(path string, asJSON bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var repro chaos.Repro
	if err := json.Unmarshal(data, &repro); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	cfg := repro.Config
	cfg.Replay = repro.Steps
	res, err := chaos.Run(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(verdict{Seed: res.Seed, Ops: res.Ops, Events: res.Events, Violations: res.Violations, Coverage: res.Coverage}); err != nil {
			return err
		}
	} else {
		for _, v := range res.Violations {
			fmt.Println(v)
		}
		fmt.Printf("replayed %d steps: %d violation(s)\n", len(repro.Steps), len(res.Violations))
	}
	if res.Failed() {
		os.Exit(2)
	}
	return nil
}
