// Command chaoshunt runs the chaos fleet's adversarial search over the
// paper's R1–R4 guarantees: seeded fault schedules (kills, restarts,
// rack cold-restarts, WAN partitions, mirror lag, forced failovers,
// fleet plans) against a two-datacenter federation, with every run's
// history replayed through the invariant checker. A failing schedule is
// automatically shrunk to a minimal repro (seed + step list) and
// printed; the process exits 2 so CI can collect the artifact.
//
//	chaoshunt                          24 seeded schedules, smoke scale
//	chaoshunt -seed 42 -seeds 1 -v     one schedule, verbose verdict
//	chaoshunt -budget 10m -loss 0.2    nightly soak: hunt until the budget
//	chaoshunt -replay repro.json       re-run a shrunken repro file
//	chaoshunt -json                    machine-readable verdicts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaoshunt:", err)
		os.Exit(1)
	}
}

// verdict is the per-seed JSON record.
type verdict struct {
	Seed       int64             `json:"seed"`
	Ops        int               `json:"ops"`
	Events     int               `json:"events"`
	Violations []chaos.Violation `json:"violations,omitempty"`
	Coverage   chaos.Coverage    `json:"coverage"`
	Repro      *chaos.Repro      `json:"repro,omitempty"`
}

func run() error {
	var (
		seed     = flag.Int64("seed", 0, "first schedule seed")
		seeds    = flag.Int("seeds", 24, "number of consecutive seeds to run (ignored with -budget)")
		steps    = flag.Int("steps", 30, "schedule length per seed")
		machines = flag.Int("machines", 3, "machines per datacenter")
		apps     = flag.Int("apps", 4, "enclave identities")
		counters = flag.Int("counters", 2, "counters per identity")
		loss     = flag.Float64("loss", 0.1, "WAN loss probability [0,1)")
		budget   = flag.Duration("budget", 0, "time budget: run consecutive seeds until it expires (soak mode)")
		shrinkN  = flag.Int("shrink", 200, "max re-runs when shrinking a failing schedule")
		replay   = flag.String("replay", "", "JSON repro file to re-run instead of hunting")
		bias     = flag.Bool("bias", true, "bias schedule generation toward under-covered transitions")
		asJSON   = flag.Bool("json", false, "emit JSON verdicts")
		verbose  = flag.Bool("v", false, "per-seed progress")
	)
	flag.Parse()

	if *replay != "" {
		return replayFile(*replay, *asJSON)
	}

	base := chaos.Config{
		Steps:    *steps,
		Machines: *machines,
		Apps:     *apps,
		Counters: *counters,
		WANLoss:  *loss,
	}
	// One shared accumulator across the hunt: each run's transition
	// coverage is absorbed, and later seeds' generation leans toward
	// whatever the search has visited least. Repros stay replayable —
	// a failing schedule is reported as a concrete step list, which
	// replay executes without consulting the bias.
	if *bias {
		base.Bias = chaos.NewBias()
	}
	total := chaos.NewCoverage()

	deadline := time.Time{}
	if *budget > 0 {
		deadline = time.Now().Add(*budget)
	}
	ran := 0
	start := time.Now()
	for s := *seed; ; s++ {
		if deadline.IsZero() {
			if ran >= *seeds {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		cfg := base
		cfg.Seed = s
		res, err := chaos.Run(cfg)
		if err != nil {
			return fmt.Errorf("seed %d: %w", s, err)
		}
		ran++
		total.Merge(res.Coverage)
		if *verbose && !*asJSON {
			fmt.Printf("seed %-6d %4d ops %4d events  %s\n", s, res.Ops, res.Events, passFail(res))
		}
		if !res.Failed() {
			continue
		}

		// Found one: shrink to the minimal repro and report.
		repro, err := chaos.Shrink(cfg, res.Steps, *shrinkN)
		if err != nil {
			return fmt.Errorf("seed %d: shrink: %w", s, err)
		}
		v := verdict{Seed: s, Ops: res.Ops, Events: res.Events, Violations: res.Violations, Coverage: res.Coverage, Repro: repro}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(v); err != nil {
				return err
			}
		} else {
			fmt.Printf("seed %d VIOLATED %d invariant(s); minimal repro:\n%s", s, len(res.Violations), repro)
			fmt.Printf("re-run: chaoshunt -replay <file> after saving the JSON below\n")
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(repro)
		}
		os.Exit(2)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"seeds_run":  ran,
			"first_seed": *seed,
			"violations": 0,
			"coverage":   total,
			"elapsed":    time.Since(start).String(),
		})
	}
	fmt.Printf("%d schedules, 0 invariant violations (%s)\n", ran, time.Since(start).Round(time.Millisecond))
	fmt.Println("invariant coverage (evaluations across all seeds):")
	for _, inv := range chaos.InvariantNames() {
		fmt.Printf("  %-26s %d\n", inv, total.Invariants[inv])
	}
	if *verbose {
		fmt.Println("transition coverage (executed steps):")
		for _, k := range chaos.SortedKeys(total.Transitions) {
			fmt.Printf("  %-26s %d\n", k, total.Transitions[k])
		}
	}
	return nil
}

func passFail(res *chaos.Result) string {
	if res.Failed() {
		return "FAIL"
	}
	return "ok"
}

// replayFile re-runs a shrunken repro (the JSON chaoshunt printed when
// it found a violation) and reports whether it still fails.
func replayFile(path string, asJSON bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var repro chaos.Repro
	if err := json.Unmarshal(data, &repro); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	cfg := repro.Config
	cfg.Replay = repro.Steps
	res, err := chaos.Run(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(verdict{Seed: res.Seed, Ops: res.Ops, Events: res.Events, Violations: res.Violations, Coverage: res.Coverage}); err != nil {
			return err
		}
	} else {
		for _, v := range res.Violations {
			fmt.Println(v)
		}
		fmt.Printf("replayed %d steps: %d violation(s)\n", len(repro.Steps), len(res.Violations))
	}
	if res.Failed() {
		os.Exit(2)
	}
	return nil
}
