// Command benchfig regenerates every table and figure of the paper's
// evaluation (§VII):
//
//	benchfig -fig 3              Figure 3: counter operations
//	benchfig -fig 4              Figure 4: init + sealing operations
//	benchfig -migration          §VII-B: enclave migration overhead
//	benchfig -repl               replicated counters: increment vs. f
//	benchfig -recover            restart-anywhere recovery: kill→recovered vs. f + escrow blob size
//	benchfig -wan                cross-DC federation: drain throughput + recovery latency vs. WAN RTT
//	benchfig -drain100k          100k-enclave drain: batched evacuation over a 200ms WAN link
//	benchfig -table 1            Table I: migration data structure
//	benchfig -table 2            Table II: library internal structure
//	benchfig -tcb                §VII-A: software TCB size
//	benchfig -all                everything
//
// Use -n to set the iteration count (paper: 1000) and -scale to set the
// Platform Services latency scale (0 = instant, 1 = paper magnitude;
// see EXPERIMENTS.md for the calibration discussion). -json FILE records
// every result that ran as a machine-readable baseline (the BENCH_PR*.json
// files at the repository root track the perf trajectory across PRs);
// -openmetrics FILE writes the same metric snapshot as OpenMetrics text
// for diffing against a live fleetd -metrics-addr scrape.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// report is the -json output: every experiment that ran, with config.
type report struct {
	Config      bench.Config           `json:"config"`
	Fig3        []bench.Row            `json:"fig3,omitempty"`
	Fig4        []bench.Row            `json:"fig4,omitempty"`
	Migration   *bench.MigrationResult `json:"migration,omitempty"`
	Replication []bench.Row            `json:"replication,omitempty"`
	Recovery    []bench.Row            `json:"recovery,omitempty"`
	WAN         []bench.Row            `json:"wan,omitempty"`
	Drain100k   *bench.Drain100kResult `json:"drain100k,omitempty"`
	// Metrics is the run's telemetry snapshot: per-operation latency
	// histograms (p50/p99/p999) and the simulated-cost op tallies.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig       = flag.Int("fig", 0, "regenerate figure 3 or 4")
		table     = flag.Int("table", 0, "report table 1 or 2 structure size")
		migration = flag.Bool("migration", false, "measure enclave migration overhead")
		repl      = flag.Bool("repl", false, "measure replicated-counter increment latency vs. replication factor")
		recov     = flag.Bool("recover", false, "measure kill-to-recovered latency vs. replication factor and escrow blob size")
		wan       = flag.Bool("wan", false, "measure cross-DC drain throughput and recovery latency vs. WAN RTT")
		wanBatch  = flag.Int("wan-batch", 0, "orchestrator batch size for WAN drain scenarios (0 = batched default 64, 1 = classic path)")
		drain100k = flag.Bool("drain100k", false, "drain a 100k-enclave machine across a 200ms WAN link with the batched pipeline")
		drainN    = flag.Int("drain-n", 100_000, "enclave count for -drain100k (reduce for CI smoke)")
		drainSc   = flag.Float64("drain-scale", 1, "latency scale for -drain100k (1 = wall time is simulated time)")
		tcb       = flag.Bool("tcb", false, "report software TCB size")
		all       = flag.Bool("all", false, "run every experiment")
		n         = flag.Int("n", 200, "iterations per operation (paper: 1000)")
		scale     = flag.Float64("scale", 0.01, "latency scale (1 = paper-magnitude ME latencies)")
		conf      = flag.Float64("conf", 0.99, "confidence level")
		jsonPath  = flag.String("json", "", "write results that ran to this file as JSON")
		omPath    = flag.String("openmetrics", "", "write the run's metric snapshot to this file as OpenMetrics text")
	)
	flag.Parse()

	metrics := obs.NewMetrics()
	cfg := bench.Config{N: *n, Scale: *scale, Confidence: *conf, BatchSize: *wanBatch, Metrics: metrics}
	fmt.Printf("config: N=%d scale=%v confidence=%v\n\n", cfg.N, cfg.Scale, cfg.Confidence)

	rep := report{Config: cfg}
	ran := false
	if *all || *fig == 3 {
		ran = true
		rows, err := runFig3(cfg)
		if err != nil {
			return err
		}
		rep.Fig3 = rows
	}
	if *all || *fig == 4 {
		ran = true
		rows, err := runFig4(cfg)
		if err != nil {
			return err
		}
		rep.Fig4 = rows
	}
	if *all || *migration {
		ran = true
		res, err := runMigration(cfg)
		if err != nil {
			return err
		}
		rep.Migration = res
	}
	if *all || *repl {
		ran = true
		rows, err := runReplication(cfg)
		if err != nil {
			return err
		}
		rep.Replication = rows
	}
	if *all || *recov {
		ran = true
		rows, err := runRecovery(cfg)
		if err != nil {
			return err
		}
		rep.Recovery = rows
	}
	if *all || *wan {
		ran = true
		rows, err := runWAN(cfg)
		if err != nil {
			return err
		}
		rep.WAN = rows
	}
	if *drain100k {
		ran = true
		dcfg := cfg
		dcfg.Scale = *drainSc
		res, err := runDrain100k(dcfg, *drainN)
		if err != nil {
			return err
		}
		rep.Drain100k = res
	}
	if *all || *table == 1 || *table == 2 {
		ran = true
		if err := runTables(); err != nil {
			return err
		}
	}
	if *all || *tcb {
		ran = true
		if err := runTCB(); err != nil {
			return err
		}
	}
	if !ran {
		flag.Usage()
		return nil
	}
	if *jsonPath != "" {
		snap := metrics.Snapshot()
		rep.Metrics = &snap
		out, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal report: %w", err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *omPath != "" {
		var buf bytes.Buffer
		if err := analyze.WriteOpenMetrics(&buf, metrics.Snapshot()); err != nil {
			return fmt.Errorf("render openmetrics: %w", err)
		}
		if err := os.WriteFile(*omPath, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("write openmetrics: %w", err)
		}
		fmt.Printf("wrote %s\n", *omPath)
	}
	return nil
}

func runFig3(cfg bench.Config) ([]bench.Row, error) {
	fmt.Println("=== Figure 3: average duration of counter operations ===")
	fmt.Println("(paper: library overhead at most 12.3%, on increment; read not significant)")
	start := time.Now()
	rows, err := bench.Fig3(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig 3: %w", err)
	}
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}
	fmt.Printf("  [%s]\n\n", time.Since(start).Round(time.Millisecond))
	return rows, nil
}

func runFig4(cfg bench.Config) ([]bench.Row, error) {
	fmt.Println("=== Figure 4: init and sealing operations ===")
	fmt.Println("(paper: migratable sealing slightly FASTER than native; init negligible)")
	start := time.Now()
	rows, err := bench.Fig4(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig 4: %w", err)
	}
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}
	fmt.Printf("  [%s]\n\n", time.Since(start).Round(time.Millisecond))
	return rows, nil
}

func runMigration(cfg bench.Config) (*bench.MigrationResult, error) {
	fmt.Println("=== §VII-B: enclave migration overhead ===")
	fmt.Println("(paper: 0.47 ± 0.035 s per migration at hardware latencies; VM migration: seconds)")
	res, err := bench.MigrationOverhead(cfg)
	if err != nil {
		return nil, fmt.Errorf("migration: %w", err)
	}
	fmt.Printf("  enclave migration: %s\n", res.Enclave)
	fmt.Printf("  VM memory copy (virtual, %d MiB guest): %s\n",
		res.VMMemoryBytes>>20, res.VMCopyVirtual.Round(time.Millisecond))
	ratio := res.Enclave.Mean / res.VMCopyVirtual.Seconds()
	fmt.Printf("  enclave overhead / VM copy: %.3f\n\n", ratio)
	return res, nil
}

func runReplication(cfg bench.Config) ([]bench.Row, error) {
	fmt.Println("=== Replicated counters: increment latency vs. replication factor ===")
	fmt.Println("(quorum of 2f+1 replicas; commit on majority; overhead vs. the f=0 local service)")
	start := time.Now()
	rows, err := bench.ReplicationSweep(cfg)
	if err != nil {
		return nil, fmt.Errorf("replication: %w", err)
	}
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}
	fmt.Printf("  [%s]\n\n", time.Since(start).Round(time.Millisecond))
	return rows, nil
}

func runRecovery(cfg bench.Config) ([]bench.Row, error) {
	fmt.Println("=== Restart-anywhere recovery: kill→recovered latency ===")
	fmt.Println("(escrowed Table II blob resurrected on a rack peer; binding counter won at the sealed value)")
	start := time.Now()
	rows, err := bench.RecoverySweep(cfg)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}
	fmt.Printf("  [%s]\n\n", time.Since(start).Round(time.Millisecond))
	return rows, nil
}

func runWAN(cfg bench.Config) ([]bench.Row, error) {
	fmt.Println("=== Cross-DC federation: drain throughput and recovery latency vs. WAN RTT ===")
	fmt.Println("(two federated DCs; drain rows are migrations/s, recover rows seconds per kill→recovered)")
	start := time.Now()
	rows, err := bench.WANSweep(cfg)
	if err != nil {
		return nil, fmt.Errorf("wan: %w", err)
	}
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}
	fmt.Printf("  [%s]\n\n", time.Since(start).Round(time.Millisecond))
	return rows, nil
}

func runDrain100k(cfg bench.Config, apps int) (*bench.Drain100kResult, error) {
	fmt.Println("=== 100k-enclave drain: batched machine evacuation over a 200ms WAN link ===")
	fmt.Println("(at -drain-scale 1 the wall clock IS the simulated time; the claim is minutes, not hours)")
	start := time.Now()
	res, err := bench.Drain100k(cfg, apps)
	if err != nil {
		return nil, fmt.Errorf("drain100k: %w", err)
	}
	fmt.Println("  " + res.String())
	fmt.Printf("  [%s]\n\n", time.Since(start).Round(time.Millisecond))
	return res, nil
}

func runTables() error {
	fmt.Println("=== Tables I and II: data structure sizes ===")
	mig, blob, err := bench.TableSizes()
	if err != nil {
		return fmt.Errorf("tables: %w", err)
	}
	fmt.Printf("  Table I  (migration data: active[256], values[256], 128-bit MSK): %d bytes on the wire\n", mig)
	fmt.Printf("  Table II (library state: + frozen flag, UUIDs, offsets), sealed blob: %d bytes\n\n", blob)
	return nil
}

// runTCB counts the lines of our Migration Enclave and Migration Library
// implementations, the analogue of the paper's 217 / 940 LoC TCB report.
func runTCB() error {
	fmt.Println("=== §VII-A: software TCB size ===")
	fmt.Println("(paper: Migration Enclave 217 LoC, Migration Library 940 LoC)")
	groups := map[string][]string{
		"Migration Library": {"internal/core/library.go", "internal/core/storage.go"},
		"Migration Enclave": {"internal/core/enclave.go", "internal/core/remote.go"},
		"Shared protocol":   {"internal/core/protocol.go", "internal/core/data.go"},
	}
	for _, name := range []string{"Migration Library", "Migration Enclave", "Shared protocol"} {
		total := 0
		for _, f := range groups[name] {
			n, err := countCodeLines(f)
			if err != nil {
				fmt.Printf("  %-18s unavailable (%v); run from the repository root\n", name, err)
				total = -1
				break
			}
			total += n
		}
		if total >= 0 {
			fmt.Printf("  %-18s %4d lines of code\n", name, total)
		}
	}
	fmt.Println()
	return nil
}

// countCodeLines counts non-blank, non-comment lines in a Go file.
func countCodeLines(path string) (int, error) {
	f, err := os.Open(filepath.FromSlash(path))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		n++
	}
	return n, sc.Err()
}
