// Command attackdemo runs the paper's §III attacks end to end:
//
//   - the FORK attack (§III-B) against the Gu et al.-style baseline,
//     where it succeeds, and against this repository's Migration
//     Library, where it is prevented (requirement R3);
//   - the ROLL-BACK attack (§III-C) against the baseline with
//     KDC-based sealing, where it succeeds, and against the Migration
//     Library, where it is prevented (requirement R4).
//
// The output is a pass/fail matrix of attack x mechanism.
package main

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/gubaseline"
	"repro/internal/pse"
	"repro/internal/seal"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attackdemo:", err)
		os.Exit(1)
	}
}

type versioned struct {
	Balance int    `json:"balance"`
	Version uint32 `json:"version"`
}

func appImage(name string) *sgx.Image {
	key := xcrypto.DeriveKey([]byte("attackdemo-signer"), "pub")
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: ed25519.PublicKey(key[:])}
}

func run() error {
	fmt.Println("Attack matrix (paper §III):")
	fmt.Println()

	forkBaseline, err := forkAttackBaseline()
	if err != nil {
		return err
	}
	forkOurs, err := forkAttackOurs()
	if err != nil {
		return err
	}
	rollBaseline, err := rollbackAttackBaseline()
	if err != nil {
		return err
	}
	rollOurs, err := rollbackAttackOurs()
	if err != nil {
		return err
	}

	fmt.Printf("  %-22s %-28s %-28s\n", "attack", "Gu et al. baseline", "this work (Migration Lib)")
	fmt.Printf("  %-22s %-28s %-28s\n", "fork (III-B)", verdict(forkBaseline), verdict(forkOurs))
	fmt.Printf("  %-22s %-28s %-28s\n", "roll-back (III-C)", verdict(rollBaseline), verdict(rollOurs))
	fmt.Println()
	if forkBaseline && rollBaseline && !forkOurs && !rollOurs {
		fmt.Println("Result matches the paper: both attacks work against the baseline and")
		fmt.Println("are prevented by migrating persistent state with the Migration Library.")
		return nil
	}
	return fmt.Errorf("unexpected attack outcome: fork=%v/%v rollback=%v/%v",
		forkBaseline, forkOurs, rollBaseline, rollOurs)
}

func verdict(succeeded bool) string {
	if succeeded {
		return "ATTACK SUCCEEDS"
	}
	return "attack prevented"
}

// forkAttackBaseline runs §III-B against the Gu baseline (freeze flag not
// persisted). Returns true if the fork succeeds.
func forkAttackBaseline() (bool, error) {
	lat := sim.NewInstantLatency()
	mA, err := sgx.NewMachine("A", lat)
	if err != nil {
		return false, err
	}
	mB, err := sgx.NewMachine("B", lat)
	if err != nil {
		return false, err
	}
	ctrA, ctrB := pse.NewService(lat), pse.NewService(lat)
	img := appImage("baseline-app")

	// Step 1: run on A, persist state v=1.
	eA, err := mA.Load(img)
	if err != nil {
		return false, err
	}
	libA := gubaseline.NewLibrary(eA, ctrA, gubaseline.Config{}, nil)
	refA, _, err := libA.CreateCounter()
	if err != nil {
		return false, err
	}
	v, err := libA.IncrementCounter(refA)
	if err != nil {
		return false, err
	}
	raw, _ := json.Marshal(versioned{Balance: 100, Version: v})
	blobA, err := libA.Seal(nil, raw)
	if err != nil {
		return false, err
	}
	uuidA, _ := libA.CounterUUID(refA)
	_ = libA.SetMemory(raw)

	// Step 2: migrate the enclave memory to B and keep operating there.
	eB, err := mB.Load(img)
	if err != nil {
		return false, err
	}
	libB := gubaseline.NewLibrary(eB, ctrB, gubaseline.Config{}, nil)
	hs, err := libB.PrepareImport()
	if err != nil {
		return false, err
	}
	image, err := libA.ExportMemory(hs.PublicKey())
	if err != nil {
		return false, err
	}
	if err := libB.ImportMemory(hs, image); err != nil {
		return false, err
	}
	refB, _, err := libB.CreateCounter()
	if err != nil {
		return false, err
	}
	if _, err := libB.IncrementCounter(refB); err != nil {
		return false, err
	}

	// Step 3: restart the process on A from the old persistent state.
	eA2, err := mA.Load(img)
	if err != nil {
		return false, err
	}
	libA2 := gubaseline.NewLibrary(eA2, ctrA, gubaseline.Config{}, nil)
	refA2 := libA2.AdoptCounter(uuidA)
	rawBack, _, err := libA2.Unseal(blobA)
	if err != nil {
		return false, nil // could not restore: attack failed
	}
	var st versioned
	if err := json.Unmarshal(rawBack, &st); err != nil {
		return false, err
	}
	cur, err := libA2.ReadCounter(refA2)
	if err != nil || st.Version != cur {
		return false, nil
	}
	// Both instances can now transact concurrently: the fork is live.
	if _, err := libA2.IncrementCounter(refA2); err != nil {
		return false, nil
	}
	if _, err := libB.IncrementCounter(refB); err != nil {
		return false, nil
	}
	return true, nil
}

// forkAttackOurs runs the same schedule against the Migration Library.
func forkAttackOurs() (bool, error) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		return false, err
	}
	src, err := dc.AddMachine("src")
	if err != nil {
		return false, err
	}
	dst, err := dc.AddMachine("dst")
	if err != nil {
		return false, err
	}
	img := appImage("our-app")
	storage := core.NewMemoryStorage()
	app, err := src.LaunchApp(img, storage, core.InitNew)
	if err != nil {
		return false, err
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		return false, err
	}
	if _, err := app.Library.IncrementCounter(ctr); err != nil {
		return false, err
	}
	preMigration := storage.Versions()
	if err := app.Library.StartMigration(dst.MEAddress()); err != nil {
		return false, err
	}
	app.Terminate()
	dstApp, err := dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		return false, err
	}
	if _, err := dstApp.Library.IncrementCounter(ctr); err != nil {
		return false, err
	}

	// Fork attempt: restart on the source from every stale blob.
	for i := 0; i < preMigration; i++ {
		staleStorage := core.NewMemoryStorage()
		blob, _ := storage.Snapshot(i)
		_ = staleStorage.Save(blob)
		forked, err := src.LaunchApp(img, staleStorage, core.InitRestore)
		if err != nil {
			continue // refused outright
		}
		if _, err := forked.Library.IncrementCounter(ctr); err == nil {
			return true, nil // fork achieved
		}
		forked.Terminate()
	}
	return false, nil
}

// rollbackAttackBaseline runs §III-C against the baseline with KDC
// sealing. Returns true if the stale state is accepted.
func rollbackAttackBaseline() (bool, error) {
	lat := sim.NewInstantLatency()
	mA, err := sgx.NewMachine("A", lat)
	if err != nil {
		return false, err
	}
	mB, err := sgx.NewMachine("B", lat)
	if err != nil {
		return false, err
	}
	ctrA, ctrB := pse.NewService(lat), pse.NewService(lat)
	img := appImage("baseline-app")
	kdcKey, err := xcrypto.RandomBytes(16)
	if err != nil {
		return false, err
	}

	eA, err := mA.Load(img)
	if err != nil {
		return false, err
	}
	libA := gubaseline.NewLibrary(eA, ctrA, gubaseline.Config{}, nil)
	refA, _, err := libA.CreateCounter()
	if err != nil {
		return false, err
	}
	persist := func(lib *gubaseline.Library, ref int, balance int) ([]byte, error) {
		v, err := lib.IncrementCounter(ref)
		if err != nil {
			return nil, err
		}
		raw, _ := json.Marshal(versioned{Balance: balance, Version: v})
		return seal.SealRaw(kdcKey, nil, raw)
	}
	blobV1, err := persist(libA, refA, 100)
	if err != nil {
		return false, err
	}
	if _, err := persist(libA, refA, 60); err != nil {
		return false, err
	}
	if _, err := persist(libA, refA, 10); err != nil {
		return false, err
	}

	// Migrate to B; termination there creates a fresh counter c'=1.
	eB, err := mB.Load(img)
	if err != nil {
		return false, err
	}
	libB := gubaseline.NewLibrary(eB, ctrB, gubaseline.Config{}, nil)
	refB, _, err := libB.CreateCounter()
	if err != nil {
		return false, err
	}
	if _, err := libB.IncrementCounter(refB); err != nil {
		return false, err
	}
	// Restart with the ORIGINAL v=1 blob: version check passes -> rollback.
	raw, _, err := seal.UnsealRaw(kdcKey, blobV1)
	if err != nil {
		return false, err
	}
	var st versioned
	if err := json.Unmarshal(raw, &st); err != nil {
		return false, err
	}
	cur, err := libB.ReadCounter(refB)
	if err != nil {
		return false, err
	}
	return st.Version == cur, nil
}

// rollbackAttackOurs runs the same schedule against the Migration Library.
func rollbackAttackOurs() (bool, error) {
	dc, err := cloud.NewDataCenter("dc2", sim.NewInstantLatency())
	if err != nil {
		return false, err
	}
	src, err := dc.AddMachine("src")
	if err != nil {
		return false, err
	}
	dst, err := dc.AddMachine("dst")
	if err != nil {
		return false, err
	}
	img := appImage("our-app")
	app, err := src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return false, err
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		return false, err
	}
	persist := func(a *cloud.App, balance int) ([]byte, error) {
		v, err := a.Library.IncrementCounter(ctr)
		if err != nil {
			return nil, err
		}
		raw, _ := json.Marshal(versioned{Balance: balance, Version: v})
		return a.Library.SealMigratable(nil, raw)
	}
	blobV1, err := persist(app, 100)
	if err != nil {
		return false, err
	}
	if _, err := persist(app, 60); err != nil {
		return false, err
	}
	if _, err := persist(app, 10); err != nil {
		return false, err
	}
	if err := app.Library.StartMigration(dst.MEAddress()); err != nil {
		return false, err
	}
	app.Terminate()
	dstApp, err := dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		return false, err
	}
	raw, _, err := dstApp.Library.UnsealMigratable(blobV1)
	if err != nil {
		return false, err
	}
	var st versioned
	if err := json.Unmarshal(raw, &st); err != nil {
		return false, err
	}
	cur, err := dstApp.Library.ReadCounter(ctr)
	if err != nil {
		return false, err
	}
	return st.Version == cur, nil
}
