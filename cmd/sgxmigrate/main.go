// Command sgxmigrate is the CLI demonstration of the full system: it
// provisions a simulated data center with two (or more) SGX machines,
// launches a migratable enclave with sealed data and monotonic counters
// on the first machine, migrates it to the second over the Fig. 2
// protocol (optionally across real TCP sockets), and verifies that the
// persistent state survived and the source is safely frozen.
//
//	sgxmigrate                 in-memory transport, 2 machines
//	sgxmigrate -tcp            Migration Enclaves talk over TCP loopback
//	sgxmigrate -machines 4     chain-migrate across 4 machines
//	sgxmigrate -counters 8     number of counters carried across
package main

import (
	"crypto/ed25519"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgxmigrate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		useTCP   = flag.Bool("tcp", false, "run the Migration Enclave protocol over TCP loopback")
		machines = flag.Int("machines", 2, "number of machines to chain-migrate across")
		counters = flag.Int("counters", 4, "number of monotonic counters in the enclave")
		scale    = flag.Float64("scale", 0, "latency scale (1 = paper-magnitude ME latencies)")
	)
	flag.Parse()
	if *machines < 2 {
		return fmt.Errorf("need at least 2 machines, got %d", *machines)
	}
	if *counters < 1 || *counters > core.NumCounters {
		return fmt.Errorf("counters must be in [1, %d]", core.NumCounters)
	}

	lat := sim.NewLatency(*scale)
	var (
		dc  *cloud.DataCenter
		err error
	)
	if *useTCP {
		tcp := transport.NewTCPTransport()
		defer tcp.Close()
		dc, err = cloud.NewDataCenterWithNetwork("demo-dc", lat, tcp)
	} else {
		dc, err = cloud.NewDataCenter("demo-dc", lat)
	}
	if err != nil {
		return err
	}

	fleet := make([]*cloud.Machine, 0, *machines)
	for i := 0; i < *machines; i++ {
		id := fmt.Sprintf("machine-%d", i)
		var m *cloud.Machine
		if *useTCP {
			addr, err := freePort()
			if err != nil {
				return err
			}
			m, err = dc.AddMachineAt(id, addr)
			if err != nil {
				return err
			}
		} else {
			m, err = dc.AddMachine(id)
			if err != nil {
				return err
			}
		}
		fleet = append(fleet, m)
		fmt.Printf("provisioned %-10s ME at %s\n", id, m.MEAddress())
	}

	signer := xcrypto.DeriveKey([]byte("sgxmigrate-demo"), "signer")
	img := &sgx.Image{
		Name:            "demo-enclave",
		Version:         1,
		Code:            []byte("demo enclave with persistent state"),
		SignerPublicKey: ed25519.PublicKey(signer[:]),
	}

	fmt.Printf("\nlaunching enclave on %s (MRENCLAVE %s)\n", fleet[0].HW.ID(), img.Measure())
	app, err := fleet[0].LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return err
	}
	ids := make([]int, *counters)
	for i := range ids {
		id, _, err := app.Library.CreateCounter()
		if err != nil {
			return err
		}
		ids[i] = id
		for j := 0; j <= i; j++ {
			if _, err := app.Library.IncrementCounter(id); err != nil {
				return err
			}
		}
	}
	secret := []byte("provisioned secret: survives every migration")
	sealed, err := app.Library.SealMigratable([]byte("demo"), secret)
	if err != nil {
		return err
	}
	fmt.Printf("created %d counters (values 1..%d) and sealed %d bytes\n\n", *counters, *counters, len(secret))

	for hop := 1; hop < len(fleet); hop++ {
		from, to := fleet[hop-1], fleet[hop]
		fmt.Printf("migrating %s -> %s ... ", from.HW.ID(), to.HW.ID())
		start := time.Now()
		if err := app.Library.StartMigration(to.MEAddress()); err != nil {
			return fmt.Errorf("start migration: %w", err)
		}
		app.Terminate()
		app, err = to.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
		if err != nil {
			return fmt.Errorf("restore on %s: %w", to.HW.ID(), err)
		}
		fmt.Printf("done in %s\n", time.Since(start).Round(time.Microsecond))

		// Verify state continuity after each hop.
		for i, id := range ids {
			v, err := app.Library.ReadCounter(id)
			if err != nil {
				return fmt.Errorf("counter %d after hop: %w", i, err)
			}
			if v != uint32(i+1) {
				return fmt.Errorf("counter %d = %d after hop, want %d", i, v, i+1)
			}
		}
		pt, _, err := app.Library.UnsealMigratable(sealed)
		if err != nil {
			return fmt.Errorf("unseal after hop: %w", err)
		}
		if string(pt) != string(secret) {
			return fmt.Errorf("sealed data corrupted after hop")
		}
		fmt.Printf("  state verified on %s: %d counters intact, sealed data decrypts\n",
			to.HW.ID(), len(ids))
	}

	fmt.Printf("\nenclave migrated across %d machines with persistent state intact\n", len(fleet))
	return nil
}

// freePort reserves an ephemeral loopback port.
func freePort() (transport.Address, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return transport.Address(addr), nil
}
