package pserepl

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"

	"repro/internal/pse"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// Replica-side errors. These cross the messenger as transport-level
// failures (not opReply votes), so the coordinator never counts an
// unavailable or unsynced replica toward a quorum.
var (
	// ErrReplicaDown reports a replica whose agent enclave is dead (its
	// machine was killed or restarted and not yet recovered).
	ErrReplicaDown = errors.New("pserepl: replica agent enclave is down")
	// ErrReplicaUnsynced reports a replica that rejoined after a restart
	// and has not been re-seeded from the quorum yet; serving ops in that
	// state could vote with stale values.
	ErrReplicaUnsynced = errors.New("pserepl: replica awaiting reseed; not serving")
	// ErrNotJoined reports traffic at a replica that has not been joined
	// to a group (no group key installed).
	ErrNotJoined = errors.New("pserepl: replica not joined to a group")
	// ErrBadAuth reports a replication message that failed to
	// authenticate under the group key, or a reseed whose freshness
	// challenge does not match: forged, corrupted, or replayed network
	// traffic.
	ErrBadAuth = errors.New("pserepl: replication message failed authentication")
)

// agentVersion is the replica agent enclave's code version. All replicas
// of all groups run the same agent image, so a restarted machine's fresh
// agent instance measures identically and can access the hardware
// counters its predecessor created.
const agentVersion = 1

// agentSignerKey derives the deterministic signing identity of the
// replica agent image (architectural-enclave style: the key is fixed so
// MRSIGNER matches across machines and restarts).
func agentSignerKey() ed25519.PublicKey {
	seedKey := xcrypto.DeriveKey([]byte("pserepl-agent-signer"), "ed25519-seed")
	priv := ed25519.NewKeyFromSeed(seedKey[:])
	return priv.Public().(ed25519.PublicKey)
}

// AgentImage returns the replica agent enclave image: the small trusted
// component that applies replicated counter operations to the machine's
// local Platform Services facility on behalf of remote coordinators.
func AgentImage() *sgx.Image {
	return &sgx.Image{
		Name:            "pserepl-agent",
		Version:         agentVersion,
		Code:            []byte("pserepl agent: apply replicated counter ops to the local PSE"),
		SignerPublicKey: agentSignerKey(),
	}
}

// replicaSlot is a replica's bookkeeping for one replicated counter: the
// group UUID's nonce capability, the owner identity it enforces, and the
// local hardware counter backing it on this machine.
type replicaSlot struct {
	nonce [16]byte
	owner sgx.Measurement
	local pse.UUID
}

// Replica serves one machine's share of a replicated counter group. It
// applies operations received over the messenger to the machine's local
// pse.Service through a small agent enclave.
//
// Liveness model: the agent enclave dies with its machine (sgx.Machine
// restart destroys all enclaves), which makes every replicated operation
// on this replica fail at the ECALL — exactly how a dead machine stops
// acking. The slot table and the hardware counters themselves are
// firmware/disk-backed state and survive the reboot (the agent seals its
// table like the Migration Library seals its state); what a rejoining
// replica is missing is the operations committed while it was away,
// which Group.Reseed replays as forward-only deltas.
type Replica struct {
	id   string
	hw   *sgx.Machine
	svc  *pse.Service
	msgr transport.Messenger
	addr transport.Address

	mu     sync.Mutex
	agent  *sgx.Enclave
	synced bool
	// sealer holds the group key, installed in-process when the replica
	// joins a group (the secure provisioning phase, like Migration
	// Enclave credentials). Every replication message is AEAD-sealed
	// under it, so the untrusted network can neither read the UUID nonce
	// capabilities nor forge operations, reseeds, or votes.
	sealer *xcrypto.Sealer
	// challenge is the current reseed freshness nonce: a reseed payload
	// must quote it (fetched via opChallenge) to be applied, and it is
	// rotated on every restart and every applied reseed, so recorded
	// reseed messages cannot be replayed at a stale replica.
	challenge [16]byte
	// issued is the highest group counter ID this replica has ever
	// observed (from ops or reseeds). It travels in snapshots as
	// syncMessage.Next — bookkeeping no decision consumes yet; it exists
	// so a future coordinator-recovery path can re-derive the group's ID
	// high-water mark from replica state alone.
	issued uint64
	table  map[uint32]*replicaSlot
	// destroyed holds explicit tombstones for counters this replica
	// destroyed or learned destroyed from a reseed. Unlike pse.Service,
	// absence below the high-water mark is not proof of destruction here
	// (concurrent creates broadcast out of ID order), so the set is
	// explicit — and, like the Migration Enclave's restored-token
	// tombstones, retained for the replica's lifetime: dropping an entry
	// would reopen the window in which a stale peer snapshot resurrects
	// the destroyed counter. It grows by one small entry per destroy the
	// replica ever sees, the price of keeping destruction sticky.
	destroyed map[uint32]struct{}
	// escrows is the replica's share of the rack's state-escrow store:
	// the newest escrow record per enclave instance. Like the slot table
	// it is conceptually sealed to disk and survives restarts; puts
	// supersede strictly by version, so a replayed older record can never
	// displace a newer one here. The records are opaque sealed bytes —
	// freshness and single use are enforced by the binding counter at
	// recovery, the store only provides machine-failure-surviving
	// availability.
	escrows map[escrowKey]*escrowEntry
	closed  bool
}

// escrowKey identifies one enclave instance's escrow slot.
type escrowKey struct {
	owner sgx.Measurement
	id    [16]byte
}

// NewReplica loads the agent enclave on the machine and registers the
// replica's handler on the messenger. The replica starts unsynced; the
// Group marks it serving once it has been seeded (Group.add does this
// for brand-new members, Group.Reseed for rejoining ones).
func NewReplica(id string, hw *sgx.Machine, svc *pse.Service, msgr transport.Messenger, addr transport.Address) (*Replica, error) {
	agent, err := hw.Load(AgentImage())
	if err != nil {
		return nil, fmt.Errorf("load replica agent: %w", err)
	}
	r := &Replica{
		id:        id,
		hw:        hw,
		svc:       svc,
		msgr:      msgr,
		addr:      addr,
		agent:     agent,
		table:     make(map[uint32]*replicaSlot),
		destroyed: make(map[uint32]struct{}),
		escrows:   make(map[escrowKey]*escrowEntry),
	}
	if err := r.rotateChallengeLocked(); err != nil {
		hw.Destroy(agent)
		return nil, err
	}
	if err := msgr.Register(addr, r.handle); err != nil {
		hw.Destroy(agent)
		return nil, fmt.Errorf("register replica: %w", err)
	}
	return r, nil
}

// rotateChallengeLocked draws a fresh reseed challenge. Callers hold
// r.mu (or have exclusive access during construction).
func (r *Replica) rotateChallengeLocked() error {
	nonce, err := xcrypto.RandomBytes(16)
	if err != nil {
		return fmt.Errorf("replica challenge: %w", err)
	}
	copy(r.challenge[:], nonce)
	return nil
}

// join installs the group key. Called in-process by the Group when the
// replica becomes a member (NewGroup, Handoff) — the trusted
// provisioning step; everything after it rides the sealed channel.
func (r *Replica) join(sealer *xcrypto.Sealer) {
	r.mu.Lock()
	r.sealer = sealer
	r.mu.Unlock()
}

// ID returns the replica identifier (its machine ID, by convention).
func (r *Replica) ID() string { return r.id }

// Address returns the replica's messenger address.
func (r *Replica) Address() transport.Address { return r.addr }

// Synced reports whether the replica is serving (seeded and caught up).
func (r *Replica) Synced() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.synced
}

// Restart reloads the agent enclave after a machine reboot. The replica
// stays unsynced — and therefore refuses to serve or vote — until the
// group re-seeds it from the quorum's state.
func (r *Replica) Restart() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("pserepl: replica retired")
	}
	agent, err := r.hw.Load(AgentImage())
	if err != nil {
		return fmt.Errorf("reload replica agent: %w", err)
	}
	if err := r.rotateChallengeLocked(); err != nil {
		r.hw.Destroy(agent)
		return err
	}
	r.agent = agent
	r.synced = false
	return nil
}

// Close retires the replica: it stops serving, unregisters its address,
// and destroys the agent enclave. The local hardware counters it created
// stay behind, stranded but harmless (their group moved on).
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.synced = false
	agent := r.agent
	r.mu.Unlock()
	r.msgr.Unregister(r.addr)
	if agent != nil && agent.Alive() {
		r.hw.Destroy(agent)
	}
}

// aadReq and aadRep bind a sealed payload to its direction, message
// kind, and the replica it addresses, so a recorded message can be
// replayed neither as a reply, nor under a different kind, nor at (or
// as) a different replica.
func aadReq(kind, replicaID string) []byte { return []byte("pserepl-req/" + kind + "/" + replicaID) }
func aadRep(kind, replicaID string) []byte { return []byte("pserepl-rep/" + kind + "/" + replicaID) }

// handle is the replica's messenger endpoint: it authenticates and
// decodes one replication message, applies it through the agent enclave,
// and seals the vote. Traffic that fails authentication under the group
// key is rejected before anything else — the network is untrusted, and
// nothing on it may destroy counters, mark a stale replica serving, or
// learn the UUID nonce capabilities.
func (r *Replica) handle(msg transport.Message) ([]byte, error) {
	// The apply cost is the agent's replication bookkeeping (open and
	// verify the sealed message, validate the group UUID and owner,
	// update the slot table) — charged on this machine, separately from
	// the firmware counter transaction itself.
	r.hw.Latency().Charge(sim.OpReplicaApply)
	r.mu.Lock()
	sealer := r.sealer
	r.mu.Unlock()
	if sealer == nil {
		return nil, ErrNotJoined
	}
	payload, err := sealer.Open(msg.Payload, aadReq(msg.Kind, r.id))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadAuth, err)
	}
	var reply []byte
	switch msg.Kind {
	case kindOp:
		reply, err = r.handleOp(payload)
	case kindReseed:
		reply, err = r.handleReseed(payload)
	case kindEscrow:
		reply, err = r.handleEscrow(payload)
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrWireFormat, msg.Kind)
	}
	if err != nil {
		return nil, err
	}
	sealed, err := sealer.Seal(reply, aadRep(msg.Kind, r.id))
	if err != nil {
		return nil, fmt.Errorf("seal reply: %w", err)
	}
	return sealed, nil
}

// checkServing validates the replica can vote. Callers hold r.mu.
func (r *Replica) checkServingLocked() error {
	if r.closed || r.agent == nil || !r.agent.Alive() {
		return ErrReplicaDown
	}
	if !r.synced {
		return ErrReplicaUnsynced
	}
	return nil
}

func (r *Replica) handleOp(payload []byte) ([]byte, error) {
	m, err := decodeOpMessage(payload)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.Op == opChallenge {
		// The one request an unsynced replica answers (besides the
		// reseed itself): hand out the current freshness challenge.
		if r.closed || r.agent == nil || !r.agent.Alive() {
			return nil, ErrReplicaDown
		}
		return (&syncMessage{Challenge: r.challenge, Nonce: m.Nonce}).encode(), nil
	}
	if m.Op == opSnapshot {
		// Snapshots are served even before a reseed: they report the
		// replica's DURABLE state, which is exactly what reseed merges
		// consume — the target's own durable table participates the same
		// way, and the merge is forward-only per counter with explicit
		// tombstones, so an out-of-date snapshot can contribute stale
		// entries but never displace newer ones. This is what makes a
		// full-rack cold restart (every replica down at once, e.g. a site
		// loss that heals) recoverable: after all agents reload, the
		// replicas re-seed each other from the union of their durable
		// states, which covers every committed operation (each lives on
		// f+1 durable tables).
		if r.closed || r.agent == nil || !r.agent.Alive() {
			return nil, ErrReplicaDown
		}
		snap := r.snapshotLocked()
		snap.Nonce = m.Nonce
		return snap.encode(), nil
	}
	if err := r.checkServingLocked(); err != nil {
		return nil, err
	}
	reply := r.applyLocked(m)
	reply.Nonce = m.Nonce
	return reply.encode(), nil
}

// applyLocked applies one counter operation. Callers hold r.mu.
func (r *Replica) applyLocked(m *opMessage) *opReply {
	if m.UUID.ID == 0 {
		return &opReply{Status: statusNotFound}
	}
	slot, live := r.table[m.UUID.ID]
	if m.Op == opCreate {
		if live {
			// Duplicate create (a retried broadcast): idempotent if the
			// capability matches, refused otherwise.
			if slot.nonce == m.UUID.Nonce && slot.owner == m.Owner {
				return &opReply{Status: statusOK}
			}
			return &opReply{Status: statusNotOwner}
		}
		if _, dead := r.destroyed[m.UUID.ID]; dead {
			// The ID was issued here and destroyed. Never resurrect.
			return &opReply{Status: statusGone}
		}
		local, _, err := r.svc.Create(r.agent)
		if err != nil {
			return errReply(err)
		}
		r.table[m.UUID.ID] = &replicaSlot{nonce: m.UUID.Nonce, owner: m.Owner, local: local}
		if uint64(m.UUID.ID) > r.issued {
			// Concurrent creates may broadcast out of ID order; the
			// high-water mark only ever moves up.
			r.issued = uint64(m.UUID.ID)
		}
		return &opReply{Status: statusOK}
	}

	if !live {
		if _, dead := r.destroyed[m.UUID.ID]; dead {
			return &opReply{Status: statusGone}
		}
		if m.Op == opAdvance {
			// Repair of a slot this replica never saw (it missed the
			// committed create): install it and advance to the target —
			// the message carries the full capability and owner, comes
			// sealed from the coordinator, and is forward-only, so a
			// replay can at most re-create the same state.
			local, _, err := r.svc.Create(r.agent)
			if err != nil {
				return errReply(err)
			}
			slot = &replicaSlot{nonce: m.UUID.Nonce, owner: m.Owner, local: local}
			r.table[m.UUID.ID] = slot
			if uint64(m.UUID.ID) > r.issued {
				r.issued = uint64(m.UUID.ID)
			}
		} else {
			return &opReply{Status: statusNotFound}
		}
	}
	// The nonce is the capability, the owner the identity check — both
	// enforced replica-side so a coordinator cannot be tricked into
	// operating on someone else's counter.
	if slot.nonce != m.UUID.Nonce {
		return &opReply{Status: statusNotFound}
	}
	if slot.owner != m.Owner {
		return &opReply{Status: statusNotOwner}
	}

	switch m.Op {
	case opIncrement:
		if m.N < 1 {
			return &opReply{Status: statusOverflow}
		}
		v, err := r.svc.IncrementN(r.agent, slot.local, int(m.N))
		if err != nil {
			return errReply(err)
		}
		return &opReply{Status: statusOK, Value: v}
	case opRead:
		v, err := r.svc.Read(r.agent, slot.local)
		if err != nil {
			return errReply(err)
		}
		return &opReply{Status: statusOK, Value: v}
	case opAdvance:
		// Read-repair: raise the local counter to at least N. Forward-
		// only, so neither a repeat nor a replayed message can ever lower
		// anything.
		v, err := r.svc.Read(r.agent, slot.local)
		if err != nil {
			return errReply(err)
		}
		if v < m.N {
			if v, err = r.svc.IncrementN(r.agent, slot.local, int(m.N-v)); err != nil {
				return errReply(err)
			}
		}
		return &opReply{Status: statusOK, Value: v}
	case opDestroyRead:
		final, err := r.svc.DestroyAndRead(r.agent, slot.local)
		if err != nil {
			return errReply(err)
		}
		delete(r.table, m.UUID.ID)
		r.destroyed[m.UUID.ID] = struct{}{}
		return &opReply{Status: statusOK, Value: final}
	default:
		return &opReply{Status: statusNotFound}
	}
}

// handleEscrow applies one escrow-store operation. Puts supersede
// strictly by version (a replayed older record gets statusStale and
// changes nothing); gets return the stored record or statusNotFound.
func (r *Replica) handleEscrow(payload []byte) ([]byte, error) {
	m, err := decodeEscrowMessage(payload)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkServingLocked(); err != nil {
		return nil, err
	}
	key := escrowKey{owner: m.Entry.Owner, id: m.Entry.ID}
	switch m.Op {
	case escrowPut:
		if cur, ok := r.escrows[key]; ok && m.Entry.Version <= cur.Version {
			return (&escrowReply{Status: statusStale, Nonce: m.Nonce}).encode(), nil
		}
		stored := m.Entry
		stored.Blob = append([]byte(nil), m.Entry.Blob...) // decode aliases the wire buffer
		r.escrows[key] = &stored
		return (&escrowReply{Status: statusOK, Nonce: m.Nonce}).encode(), nil
	default: // escrowGet (decode validated the op)
		cur, ok := r.escrows[key]
		if !ok {
			return (&escrowReply{Status: statusNotFound, Nonce: m.Nonce}).encode(), nil
		}
		return (&escrowReply{Status: statusOK, Entry: *cur, Nonce: m.Nonce}).encode(), nil
	}
}

// errReply maps a local pse.Service error onto a vote status.
func errReply(err error) *opReply {
	switch {
	case errors.Is(err, pse.ErrCounterOverflow):
		return &opReply{Status: statusOverflow}
	case errors.Is(err, pse.ErrCounterLimit), errors.Is(err, pse.ErrIDsExhausted):
		return &opReply{Status: statusLimit}
	case errors.Is(err, pse.ErrNotOwner):
		return &opReply{Status: statusNotOwner}
	default:
		return &opReply{Status: statusNotFound}
	}
}

// snapshotLocked reports the replica's live table and its explicit
// tombstones. Callers hold r.mu.
func (r *Replica) snapshotLocked() *syncMessage {
	snap := &syncMessage{Next: r.issued}
	for id, slot := range r.table {
		v, err := r.svc.Read(r.agent, slot.local)
		if err != nil {
			continue // local counter unreadable; peers still cover it
		}
		snap.Entries = append(snap.Entries, syncEntry{
			UUID:  pse.UUID{ID: id, Nonce: slot.nonce},
			Owner: slot.owner,
			Value: v,
		})
	}
	for id := range r.destroyed {
		snap.Tombstones = append(snap.Tombstones, id)
	}
	for _, e := range r.escrows {
		snap.Escrows = append(snap.Escrows, *e)
	}
	return snap
}

// handleReseed applies a quorum snapshot: missing counters are created
// and advanced to the quorum value, present-but-behind counters are
// advanced by the delta, counters the quorum destroyed are destroyed
// locally. Values only ever move forward and locally known tombstones
// are never overridden, so a reseed can neither make a counter regress
// nor resurrect one. A successful reseed marks the replica serving and
// rotates the freshness challenge.
func (r *Replica) handleReseed(payload []byte) ([]byte, error) {
	m, err := decodeSyncMessage(payload)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.agent == nil || !r.agent.Alive() {
		return nil, ErrReplicaDown
	}
	if m.Challenge != r.challenge {
		// Stale or replayed reseed: it was not built for this replica's
		// current incarnation.
		return nil, fmt.Errorf("%w: reseed challenge mismatch", ErrBadAuth)
	}
	inSync := make(map[uint32]bool, len(m.Entries))
	for i := range m.Entries {
		e := &m.Entries[i]
		if e.UUID.ID == 0 {
			return nil, fmt.Errorf("%w: reseed entry with id 0", ErrWireFormat)
		}
		if _, dead := r.destroyed[e.UUID.ID]; dead {
			// This replica destroyed the counter; a stale peer snapshot
			// listing it live must not resurrect it (destruction is
			// sticky).
			continue
		}
		inSync[e.UUID.ID] = true
		slot, ok := r.table[e.UUID.ID]
		if !ok {
			local, _, err := r.svc.Create(r.agent)
			if err != nil {
				return nil, fmt.Errorf("reseed create: %w", err)
			}
			slot = &replicaSlot{nonce: e.UUID.Nonce, owner: e.Owner, local: local}
			r.table[e.UUID.ID] = slot
		}
		v, err := r.svc.Read(r.agent, slot.local)
		if err != nil {
			return nil, fmt.Errorf("reseed read: %w", err)
		}
		if v < e.Value {
			if _, err := r.svc.IncrementN(r.agent, slot.local, int(e.Value-v)); err != nil {
				return nil, fmt.Errorf("reseed advance: %w", err)
			}
		}
	}
	// Apply the quorum's explicit tombstones: counters destroyed while
	// this replica was away. Absence from the entry list alone is never
	// treated as destruction — a minority of replicas can miss a
	// committed create, and destroying on absence would lose it here.
	// The payload's tombstones merge into the local set; like the
	// Migration Enclave's restored-token tombstones, entries are retained
	// for the replica's lifetime, because dropping one would reopen the
	// window in which a stale peer resurrects the destroyed counter.
	for _, id := range m.Tombstones {
		if slot, ok := r.table[id]; ok && !inSync[id] {
			if err := r.svc.Destroy(r.agent, slot.local); err == nil {
				delete(r.table, id)
			}
		}
		if _, live := r.table[id]; !live {
			r.destroyed[id] = struct{}{}
		}
	}
	// Merge escrow records by version: a rejoining or fresh replica picks
	// up the records committed while it was away. Version comparison is
	// forward-only here too, so a stale peer snapshot cannot displace a
	// newer record.
	for i := range m.Escrows {
		e := &m.Escrows[i]
		key := escrowKey{owner: e.Owner, id: e.ID}
		if cur, ok := r.escrows[key]; ok && e.Version <= cur.Version {
			continue
		}
		stored := *e
		stored.Blob = append([]byte(nil), e.Blob...)
		r.escrows[key] = &stored
	}
	if m.Next > r.issued {
		r.issued = m.Next
	}
	if err := r.rotateChallengeLocked(); err != nil {
		return nil, err
	}
	r.synced = true
	return (&opReply{Status: statusOK, Nonce: m.Nonce}).encode(), nil
}
