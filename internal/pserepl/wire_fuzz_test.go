package pserepl

import (
	"bytes"
	"testing"

	"repro/internal/pse"
	"repro/internal/sgx"
)

// Fuzz harnesses for the replication decoders, matching the
// internal/core/codec_fuzz_test.go pattern: every decoder that consumes
// bytes from the untrusted network either returns an error or a value
// that re-encodes and decodes consistently — it must never panic,
// whatever the wire bytes. Seed corpora live in testdata/fuzz/<FuzzName>/
// plus the valid encodings added here.

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xC1})
	f.Add([]byte{0xC1, 0x01})
	f.Add([]byte{0xC3, 0x01, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
}

func sampleOp() *opMessage {
	m := &opMessage{Op: opIncrement, N: 3}
	m.UUID = pse.UUID{ID: 7, Nonce: [16]byte{1, 2, 3, 4}}
	m.Owner = sgx.Measurement{9, 9, 9}
	return m
}

func FuzzDecodeOpMessage(f *testing.F) {
	fuzzSeeds(f)
	f.Add(sampleOp().encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeOpMessage(raw)
		if err != nil {
			return
		}
		re := m.encode()
		// The format is fixed-width, so a successful decode must
		// re-encode to the identical bytes.
		if !bytes.Equal(raw, re) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}

func FuzzDecodeOpReply(f *testing.F) {
	fuzzSeeds(f)
	f.Add((&opReply{Status: statusOK, Value: 42}).encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeOpReply(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(raw, m.encode()) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}

func FuzzDecodeSyncMessage(f *testing.F) {
	fuzzSeeds(f)
	valid := &syncMessage{
		Next: 9,
		Entries: []syncEntry{
			{UUID: pse.UUID{ID: 1, Nonce: [16]byte{5}}, Owner: sgx.Measurement{7}, Value: 11},
			{UUID: pse.UUID{ID: 4}, Value: 2},
		},
		Tombstones: []uint32{2, 3},
		Escrows:    []escrowEntry{sampleEscrowEntry()},
	}
	f.Add(valid.encode())
	f.Add((&syncMessage{}).encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeSyncMessage(raw)
		if err != nil {
			return
		}
		re := m.encode()
		if !bytes.Equal(raw, re) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
		m2, err := decodeSyncMessage(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if len(m2.Entries) != len(m.Entries) || len(m2.Tombstones) != len(m.Tombstones) || m2.Next != m.Next {
			t.Fatal("round trip mismatch")
		}
	})
}

func sampleEscrowEntry() escrowEntry {
	return escrowEntry{
		Owner:   sgx.Measurement{3, 1, 4},
		ID:      [16]byte{1, 5, 9},
		Version: 7,
		Bind:    pse.UUID{ID: 12, Nonce: [16]byte{2, 6}},
		Blob:    []byte("sealed escrow record bytes"),
	}
}

func FuzzDecodeEscrowMessage(f *testing.F) {
	fuzzSeeds(f)
	f.Add((&escrowMessage{Op: escrowPut, Entry: sampleEscrowEntry(), Nonce: 99}).encode())
	f.Add((&escrowMessage{Op: escrowGet, Entry: escrowEntry{Owner: sgx.Measurement{1}, ID: [16]byte{2}}, Nonce: 1}).encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeEscrowMessage(raw)
		if err != nil {
			return
		}
		re := m.encode()
		if !bytes.Equal(raw, re) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}

func FuzzDecodeEscrowReply(f *testing.F) {
	fuzzSeeds(f)
	f.Add((&escrowReply{Status: statusOK, Entry: sampleEscrowEntry(), Nonce: 4}).encode())
	f.Add((&escrowReply{Status: statusStale, Nonce: 2}).encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeEscrowReply(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(raw, m.encode()) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}
