package pserepl

import (
	"fmt"

	"repro/internal/pse"
	"repro/internal/sgx"
	"repro/internal/wirec"
)

// Replication wire format: tagged, versioned binary messages in the
// internal/core/wire.go style, built on the shared wirec primitives.
// Everything that crosses the messenger between a Group coordinator and
// its Replicas is one of five values:
//
//   - opMessage:     one counter operation (create/increment/read/
//     destroy-read) or a snapshot request, addressed by the replicated
//     UUID and stamped with the owner identity.
//   - opReply:       the replica's status + local counter value.
//   - syncMessage:   a full counter-table (+ escrow-store) snapshot —
//     the reply to a snapshot request, and (re-tagged only by the
//     message kind it rides under) the payload of a reseed.
//   - escrowMessage: one state-escrow store operation (put/get) for a
//     sealed Table II blob, keyed by owner identity + escrow instance.
//   - escrowReply:   the replica's answer, with the stored record on
//     gets.
//
// The bytes cross the untrusted network; replicas validate every field
// and the decoders never panic, whatever the input (see the fuzz
// harnesses).

// Wire type tags (0xC* block: counter replication).
const (
	tagOp          byte = 0xC1
	tagOpReply     byte = 0xC2
	tagSync        byte = 0xC3
	tagEscrow      byte = 0xC4
	tagEscrowReply byte = 0xC5
)

// wireVersion is the current replication format version, bumped on any
// layout change so messages from a different build are rejected cleanly.
// Version 2 added the state-escrow messages and the escrow entries in
// snapshots/reseeds.
const wireVersion byte = 2

// Message kinds on the transport.Messenger.
const (
	kindOp     = "ctr-op"
	kindReseed = "ctr-reseed"
	kindEscrow = "ctr-escrow"
)

// Replicated counter operations.
const (
	opCreate byte = iota + 1
	opIncrement
	opRead
	opDestroyRead
	opSnapshot
	// opChallenge fetches the replica's current reseed challenge (the
	// only operation an unsynced replica answers besides the reseed
	// itself).
	opChallenge
	// opAdvance raises a counter to at least N (read-repair). It is
	// forward-only and idempotent, so stragglers can be caught up — or
	// the message replayed — without ever regressing a value.
	opAdvance
)

// Reply statuses. Transport-level failures (dead machine, unreachable
// endpoint) travel as Send errors and never count toward a quorum;
// these statuses are the votes of replicas that did respond.
const (
	statusOK byte = iota + 1
	statusNotFound
	statusNotOwner
	statusOverflow
	statusLimit
	statusGone  // counter already destroyed on this replica (final value lost)
	statusStale // escrow put at or below the stored version (escrow replies only)
)

// opMessage is one replicated counter operation sent to a replica.
type opMessage struct {
	Op    byte
	UUID  pse.UUID
	Owner sgx.Measurement
	// N is the increment count for opIncrement (>= 1); unused otherwise.
	N uint32
	// Nonce is the per-request freshness value; the replica echoes it in
	// its (sealed) reply, so a recorded vote from an earlier request can
	// never be replayed to fake an ack for this one.
	Nonce uint64
}

// opMessageSize is the exact encoded size of an opMessage.
const opMessageSize = 2 + 1 + 4 + 16 + 32 + 4 + 8

func (m *opMessage) encode() []byte {
	out := make([]byte, 0, opMessageSize)
	out = wirec.AppendHeader(out, tagOp, wireVersion)
	out = append(out, m.Op)
	out = wirec.AppendU32(out, m.UUID.ID)
	out = append(out, m.UUID.Nonce[:]...)
	out = append(out, m.Owner[:]...)
	out = wirec.AppendU32(out, m.N)
	return wirec.AppendU64(out, m.Nonce)
}

func decodeOpMessage(raw []byte) (*opMessage, error) {
	var m opMessage
	rd := wirec.NewReader(raw)
	if !rd.Header(tagOp, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	m.Op = rd.U8()
	m.UUID.ID = rd.U32()
	copy(m.UUID.Nonce[:], rd.Take(16))
	copy(m.Owner[:], rd.Take(32))
	m.N = rd.U32()
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	if m.Op < opCreate || m.Op > opAdvance {
		return nil, fmt.Errorf("%w: unknown op %d", ErrWireFormat, m.Op)
	}
	return &m, nil
}

// opReply is a replica's vote on one operation.
type opReply struct {
	Status byte
	// Value is the replica's local hardware counter value after the
	// operation (the final value, for destroy-read).
	Value uint32
	// Nonce echoes the request's freshness value.
	Nonce uint64
}

// opReplySize is the exact encoded size of an opReply.
const opReplySize = 2 + 1 + 4 + 8

func (m *opReply) encode() []byte {
	out := make([]byte, 0, opReplySize)
	out = wirec.AppendHeader(out, tagOpReply, wireVersion)
	out = append(out, m.Status)
	out = wirec.AppendU32(out, m.Value)
	return wirec.AppendU64(out, m.Nonce)
}

func decodeOpReply(raw []byte) (*opReply, error) {
	var m opReply
	rd := wirec.NewReader(raw)
	if !rd.Header(tagOpReply, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	m.Status = rd.U8()
	m.Value = rd.U32()
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	if m.Status < statusOK || m.Status > statusGone {
		return nil, fmt.Errorf("%w: unknown status %d", ErrWireFormat, m.Status)
	}
	return &m, nil
}

// syncEntry is one counter in a snapshot or reseed payload.
type syncEntry struct {
	UUID  pse.UUID
	Owner sgx.Measurement
	Value uint32
}

// syncMessage is a counter-table snapshot: the ID high-water mark, every
// live counter, and the explicit tombstones of destroyed ones. As a
// snapshot reply it reports one replica's state; as a reseed payload it
// carries the quorum's per-counter maximum and the union of tombstones.
// Destruction travels only as an explicit tombstone — absence from a
// snapshot is never proof a counter was destroyed, because a minority of
// replicas can miss a committed create.
type syncMessage struct {
	// Next is the group's ID-allocation high-water mark (every ID at or
	// below it has been issued).
	Next    uint64
	Entries []syncEntry
	// Tombstones lists destroyed counter IDs.
	Tombstones []uint32
	// Escrows carries the replica's state-escrow records, merged by
	// highest version during reseeds/handoffs so escrowed blobs follow
	// the membership like counter values do.
	Escrows []escrowEntry
	// Challenge binds a reseed payload to one freshness challenge drawn
	// from the target replica (opChallenge), so a recorded reseed cannot
	// be replayed at a replica later, when its content would be stale.
	// Snapshot replies leave it zero; challenge replies carry only it.
	Challenge [16]byte
	// Nonce echoes the requesting message's freshness value (snapshot
	// and challenge replies).
	Nonce uint64
}

// syncEntrySize is the encoded size of one syncEntry.
const syncEntrySize = 4 + 16 + 32 + 4

// maxSyncEntries bounds a decoded snapshot's entry and tombstone lists.
// A group holds at most pse.MaxCounters live counters, but the tombstone
// list grows with the destroys over a group's lifetime; this generous
// cap only defends the decoder against length-bomb allocations.
const maxSyncEntries = 1 << 20

func (m *syncMessage) encode() []byte {
	escSize := 0
	for i := range m.Escrows {
		escSize += escrowEntryMinSize + len(m.Escrows[i].Blob)
	}
	out := make([]byte, 0, 2+8+4+len(m.Entries)*syncEntrySize+4+4*len(m.Tombstones)+4+escSize+16+8)
	out = wirec.AppendHeader(out, tagSync, wireVersion)
	out = wirec.AppendU64(out, m.Next)
	out = wirec.AppendU32(out, uint32(len(m.Entries)))
	for i := range m.Entries {
		e := &m.Entries[i]
		out = wirec.AppendU32(out, e.UUID.ID)
		out = append(out, e.UUID.Nonce[:]...)
		out = append(out, e.Owner[:]...)
		out = wirec.AppendU32(out, e.Value)
	}
	out = wirec.AppendU32(out, uint32(len(m.Tombstones)))
	for _, id := range m.Tombstones {
		out = wirec.AppendU32(out, id)
	}
	out = wirec.AppendU32(out, uint32(len(m.Escrows)))
	for i := range m.Escrows {
		out = m.Escrows[i].append(out)
	}
	out = append(out, m.Challenge[:]...)
	return wirec.AppendU64(out, m.Nonce)
}

func decodeSyncMessage(raw []byte) (*syncMessage, error) {
	var m syncMessage
	rd := wirec.NewReader(raw)
	if !rd.Header(tagSync, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	m.Next = rd.U64()
	n := rd.U32()
	if n > maxSyncEntries {
		return nil, fmt.Errorf("%w: snapshot claims %d entries", ErrWireFormat, n)
	}
	if rd.Err() == nil && n > 0 {
		if !rd.CanHold(n, syncEntrySize) {
			return nil, fmt.Errorf("%w: snapshot claims %d entries in %d bytes", ErrWireFormat, n, rd.Remaining())
		}
		m.Entries = make([]syncEntry, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		var e syncEntry
		e.UUID.ID = rd.U32()
		copy(e.UUID.Nonce[:], rd.Take(16))
		copy(e.Owner[:], rd.Take(32))
		e.Value = rd.U32()
		if rd.Err() != nil {
			break
		}
		m.Entries = append(m.Entries, e)
	}
	nt := rd.U32()
	if nt > maxSyncEntries {
		return nil, fmt.Errorf("%w: snapshot claims %d tombstones", ErrWireFormat, nt)
	}
	if rd.Err() == nil && nt > 0 {
		if !rd.CanHold(nt, 4) {
			return nil, fmt.Errorf("%w: snapshot claims %d tombstones in %d bytes", ErrWireFormat, nt, rd.Remaining())
		}
		m.Tombstones = make([]uint32, 0, nt)
	}
	for i := uint32(0); i < nt; i++ {
		id := rd.U32()
		if rd.Err() != nil {
			break
		}
		m.Tombstones = append(m.Tombstones, id)
	}
	ne := rd.U32()
	if ne > maxSyncEntries {
		return nil, fmt.Errorf("%w: snapshot claims %d escrows", ErrWireFormat, ne)
	}
	if rd.Err() == nil && ne > 0 {
		if !rd.CanHold(ne, escrowEntryMinSize) {
			return nil, fmt.Errorf("%w: snapshot claims %d escrows in %d bytes", ErrWireFormat, ne, rd.Remaining())
		}
		m.Escrows = make([]escrowEntry, 0, ne)
	}
	for i := uint32(0); i < ne; i++ {
		var e escrowEntry
		e.decodeInto(rd)
		if rd.Err() != nil {
			break
		}
		m.Escrows = append(m.Escrows, e)
	}
	copy(m.Challenge[:], rd.Take(16))
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	return &m, nil
}

// escrowEntry is one enclave instance's state-escrow record: the sealed
// Table II blob (opaque to the replication layer) plus the clear fields
// the store orders and looks it up by. Freshness and single use are
// enforced by the binding counter at recovery time, not by the store —
// the entry's Version exists so replicas keep the newest record and
// supersede older ones.
type escrowEntry struct {
	Owner   sgx.Measurement
	ID      [16]byte
	Version uint32
	Bind    pse.UUID
	Blob    []byte
}

// escrowEntryMinSize is the encoded size of an escrowEntry with an empty
// blob (the minimum bytes one entry occupies on the wire).
const escrowEntryMinSize = 32 + 16 + 4 + 4 + 16 + 4

func (e *escrowEntry) append(out []byte) []byte {
	out = append(out, e.Owner[:]...)
	out = append(out, e.ID[:]...)
	out = wirec.AppendU32(out, e.Version)
	out = wirec.AppendU32(out, e.Bind.ID)
	out = append(out, e.Bind.Nonce[:]...)
	return wirec.AppendBytes(out, e.Blob)
}

func (e *escrowEntry) decodeInto(rd *wirec.Reader) {
	copy(e.Owner[:], rd.Take(32))
	copy(e.ID[:], rd.Take(16))
	e.Version = rd.U32()
	e.Bind.ID = rd.U32()
	copy(e.Bind.Nonce[:], rd.Take(16))
	e.Blob = rd.Bytes()
}

// escrowMessage is one escrow-store operation sent to a replica.
type escrowMessage struct {
	// Op is escrowPut or escrowGet.
	Op byte
	// Entry carries the record to store (put) or the lookup key in
	// Owner/ID (get, with the other fields zero).
	Entry escrowEntry
	// Nonce is the per-request freshness value, echoed in the sealed
	// reply like every other replication exchange.
	Nonce uint64
}

// Escrow-store operations.
const (
	escrowPut byte = iota + 1
	escrowGet
)

func (m *escrowMessage) encode() []byte {
	out := make([]byte, 0, 2+1+escrowEntryMinSize+len(m.Entry.Blob)+8)
	out = wirec.AppendHeader(out, tagEscrow, wireVersion)
	out = append(out, m.Op)
	out = m.Entry.append(out)
	return wirec.AppendU64(out, m.Nonce)
}

func decodeEscrowMessage(raw []byte) (*escrowMessage, error) {
	var m escrowMessage
	rd := wirec.NewReader(raw)
	if !rd.Header(tagEscrow, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	m.Op = rd.U8()
	m.Entry.decodeInto(rd)
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	if m.Op != escrowPut && m.Op != escrowGet {
		return nil, fmt.Errorf("%w: unknown escrow op %d", ErrWireFormat, m.Op)
	}
	return &m, nil
}

// escrowReply is a replica's answer to an escrow-store operation: its
// status plus, for gets, the stored record.
type escrowReply struct {
	Status byte
	Entry  escrowEntry
	Nonce  uint64
}

func (m *escrowReply) encode() []byte {
	out := make([]byte, 0, 2+1+escrowEntryMinSize+len(m.Entry.Blob)+8)
	out = wirec.AppendHeader(out, tagEscrowReply, wireVersion)
	out = append(out, m.Status)
	out = m.Entry.append(out)
	return wirec.AppendU64(out, m.Nonce)
}

func decodeEscrowReply(raw []byte) (*escrowReply, error) {
	var m escrowReply
	rd := wirec.NewReader(raw)
	if !rd.Header(tagEscrowReply, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	m.Status = rd.U8()
	m.Entry.decodeInto(rd)
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	if m.Status < statusOK || m.Status > statusStale {
		return nil, fmt.Errorf("%w: unknown escrow status %d", ErrWireFormat, m.Status)
	}
	return &m, nil
}
