package pserepl

import (
	"fmt"

	"repro/internal/pse"
	"repro/internal/sgx"
	"repro/internal/wirec"
)

// Replication wire format: tagged, versioned binary messages in the
// internal/core/wire.go style, built on the shared wirec primitives.
// Everything that crosses the messenger between a Group coordinator and
// its Replicas is one of three values:
//
//   - opMessage:   one counter operation (create/increment/read/
//     destroy-read) or a snapshot request, addressed by the replicated
//     UUID and stamped with the owner identity.
//   - opReply:     the replica's status + local counter value.
//   - syncMessage: a full counter-table snapshot — the reply to a
//     snapshot request, and (re-tagged only by the message kind it rides
//     under) the payload of a reseed.
//
// The bytes cross the untrusted network; replicas validate every field
// and the decoders never panic, whatever the input (see the fuzz
// harnesses).

// Wire type tags (0xC* block: counter replication).
const (
	tagOp      byte = 0xC1
	tagOpReply byte = 0xC2
	tagSync    byte = 0xC3
)

// wireVersion is the current replication format version, bumped on any
// layout change so messages from a different build are rejected cleanly.
const wireVersion byte = 1

// Message kinds on the transport.Messenger.
const (
	kindOp     = "ctr-op"
	kindReseed = "ctr-reseed"
)

// Replicated counter operations.
const (
	opCreate byte = iota + 1
	opIncrement
	opRead
	opDestroyRead
	opSnapshot
	// opChallenge fetches the replica's current reseed challenge (the
	// only operation an unsynced replica answers besides the reseed
	// itself).
	opChallenge
	// opAdvance raises a counter to at least N (read-repair). It is
	// forward-only and idempotent, so stragglers can be caught up — or
	// the message replayed — without ever regressing a value.
	opAdvance
)

// Reply statuses. Transport-level failures (dead machine, unreachable
// endpoint) travel as Send errors and never count toward a quorum;
// these statuses are the votes of replicas that did respond.
const (
	statusOK byte = iota + 1
	statusNotFound
	statusNotOwner
	statusOverflow
	statusLimit
	statusGone // counter already destroyed on this replica (final value lost)
)

// opMessage is one replicated counter operation sent to a replica.
type opMessage struct {
	Op    byte
	UUID  pse.UUID
	Owner sgx.Measurement
	// N is the increment count for opIncrement (>= 1); unused otherwise.
	N uint32
	// Nonce is the per-request freshness value; the replica echoes it in
	// its (sealed) reply, so a recorded vote from an earlier request can
	// never be replayed to fake an ack for this one.
	Nonce uint64
}

// opMessageSize is the exact encoded size of an opMessage.
const opMessageSize = 2 + 1 + 4 + 16 + 32 + 4 + 8

func (m *opMessage) encode() []byte {
	out := make([]byte, 0, opMessageSize)
	out = wirec.AppendHeader(out, tagOp, wireVersion)
	out = append(out, m.Op)
	out = wirec.AppendU32(out, m.UUID.ID)
	out = append(out, m.UUID.Nonce[:]...)
	out = append(out, m.Owner[:]...)
	out = wirec.AppendU32(out, m.N)
	return wirec.AppendU64(out, m.Nonce)
}

func decodeOpMessage(raw []byte) (*opMessage, error) {
	var m opMessage
	rd := wirec.NewReader(raw)
	if !rd.Header(tagOp, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	m.Op = rd.U8()
	m.UUID.ID = rd.U32()
	copy(m.UUID.Nonce[:], rd.Take(16))
	copy(m.Owner[:], rd.Take(32))
	m.N = rd.U32()
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	if m.Op < opCreate || m.Op > opAdvance {
		return nil, fmt.Errorf("%w: unknown op %d", ErrWireFormat, m.Op)
	}
	return &m, nil
}

// opReply is a replica's vote on one operation.
type opReply struct {
	Status byte
	// Value is the replica's local hardware counter value after the
	// operation (the final value, for destroy-read).
	Value uint32
	// Nonce echoes the request's freshness value.
	Nonce uint64
}

// opReplySize is the exact encoded size of an opReply.
const opReplySize = 2 + 1 + 4 + 8

func (m *opReply) encode() []byte {
	out := make([]byte, 0, opReplySize)
	out = wirec.AppendHeader(out, tagOpReply, wireVersion)
	out = append(out, m.Status)
	out = wirec.AppendU32(out, m.Value)
	return wirec.AppendU64(out, m.Nonce)
}

func decodeOpReply(raw []byte) (*opReply, error) {
	var m opReply
	rd := wirec.NewReader(raw)
	if !rd.Header(tagOpReply, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	m.Status = rd.U8()
	m.Value = rd.U32()
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	if m.Status < statusOK || m.Status > statusGone {
		return nil, fmt.Errorf("%w: unknown status %d", ErrWireFormat, m.Status)
	}
	return &m, nil
}

// syncEntry is one counter in a snapshot or reseed payload.
type syncEntry struct {
	UUID  pse.UUID
	Owner sgx.Measurement
	Value uint32
}

// syncMessage is a counter-table snapshot: the ID high-water mark, every
// live counter, and the explicit tombstones of destroyed ones. As a
// snapshot reply it reports one replica's state; as a reseed payload it
// carries the quorum's per-counter maximum and the union of tombstones.
// Destruction travels only as an explicit tombstone — absence from a
// snapshot is never proof a counter was destroyed, because a minority of
// replicas can miss a committed create.
type syncMessage struct {
	// Next is the group's ID-allocation high-water mark (every ID at or
	// below it has been issued).
	Next    uint64
	Entries []syncEntry
	// Tombstones lists destroyed counter IDs.
	Tombstones []uint32
	// Challenge binds a reseed payload to one freshness challenge drawn
	// from the target replica (opChallenge), so a recorded reseed cannot
	// be replayed at a replica later, when its content would be stale.
	// Snapshot replies leave it zero; challenge replies carry only it.
	Challenge [16]byte
	// Nonce echoes the requesting message's freshness value (snapshot
	// and challenge replies).
	Nonce uint64
}

// syncEntrySize is the encoded size of one syncEntry.
const syncEntrySize = 4 + 16 + 32 + 4

// maxSyncEntries bounds a decoded snapshot's entry and tombstone lists.
// A group holds at most pse.MaxCounters live counters, but the tombstone
// list grows with the destroys over a group's lifetime; this generous
// cap only defends the decoder against length-bomb allocations.
const maxSyncEntries = 1 << 20

func (m *syncMessage) encode() []byte {
	out := make([]byte, 0, 2+8+4+len(m.Entries)*syncEntrySize+4+4*len(m.Tombstones)+16+8)
	out = wirec.AppendHeader(out, tagSync, wireVersion)
	out = wirec.AppendU64(out, m.Next)
	out = wirec.AppendU32(out, uint32(len(m.Entries)))
	for i := range m.Entries {
		e := &m.Entries[i]
		out = wirec.AppendU32(out, e.UUID.ID)
		out = append(out, e.UUID.Nonce[:]...)
		out = append(out, e.Owner[:]...)
		out = wirec.AppendU32(out, e.Value)
	}
	out = wirec.AppendU32(out, uint32(len(m.Tombstones)))
	for _, id := range m.Tombstones {
		out = wirec.AppendU32(out, id)
	}
	out = append(out, m.Challenge[:]...)
	return wirec.AppendU64(out, m.Nonce)
}

func decodeSyncMessage(raw []byte) (*syncMessage, error) {
	var m syncMessage
	rd := wirec.NewReader(raw)
	if !rd.Header(tagSync, wireVersion) {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, rd.Err())
	}
	m.Next = rd.U64()
	n := rd.U32()
	if n > maxSyncEntries {
		return nil, fmt.Errorf("%w: snapshot claims %d entries", ErrWireFormat, n)
	}
	if rd.Err() == nil && n > 0 {
		if !rd.CanHold(n, syncEntrySize) {
			return nil, fmt.Errorf("%w: snapshot claims %d entries in %d bytes", ErrWireFormat, n, rd.Remaining())
		}
		m.Entries = make([]syncEntry, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		var e syncEntry
		e.UUID.ID = rd.U32()
		copy(e.UUID.Nonce[:], rd.Take(16))
		copy(e.Owner[:], rd.Take(32))
		e.Value = rd.U32()
		if rd.Err() != nil {
			break
		}
		m.Entries = append(m.Entries, e)
	}
	nt := rd.U32()
	if nt > maxSyncEntries {
		return nil, fmt.Errorf("%w: snapshot claims %d tombstones", ErrWireFormat, nt)
	}
	if rd.Err() == nil && nt > 0 {
		if !rd.CanHold(nt, 4) {
			return nil, fmt.Errorf("%w: snapshot claims %d tombstones in %d bytes", ErrWireFormat, nt, rd.Remaining())
		}
		m.Tombstones = make([]uint32, 0, nt)
	}
	for i := uint32(0); i < nt; i++ {
		id := rd.U32()
		if rd.Err() != nil {
			break
		}
		m.Tombstones = append(m.Tombstones, id)
	}
	copy(m.Challenge[:], rd.Take(16))
	m.Nonce = rd.U64()
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWireFormat, err)
	}
	return &m, nil
}
