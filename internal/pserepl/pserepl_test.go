package pserepl

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/pse"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// rig is a replica group on bare simulated hardware: n replica machines,
// one client machine hosting the owning enclave.
type rig struct {
	lat      *sim.Latency
	net      *transport.Network
	group    *Group
	replicas []*Replica
	machines []*sgx.Machine
	services []*pse.Service
	client   *sgx.Enclave
}

func testImage(name string) *sgx.Image {
	key := xcrypto.DeriveKey([]byte("pserepl-test"), "signer")
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: ed25519.PublicKey(key[:])}
}

func newRig(t *testing.T, f int) *rig {
	t.Helper()
	r := &rig{lat: sim.NewInstantLatency()}
	r.net = transport.NewNetwork(r.lat)
	n := 2*f + 1
	for i := 0; i < n; i++ {
		hw, err := sgx.NewMachine(sgx.MachineID(fmt.Sprintf("rep-%d", i)), r.lat)
		if err != nil {
			t.Fatal(err)
		}
		svc := pse.NewService(r.lat)
		rep, err := NewReplica(fmt.Sprintf("rep-%d", i), hw, svc, r.net, transport.Address(fmt.Sprintf("rep-%d/ctr", i)))
		if err != nil {
			t.Fatal(err)
		}
		r.machines = append(r.machines, hw)
		r.services = append(r.services, svc)
		r.replicas = append(r.replicas, rep)
	}
	g, err := NewGroup("test-rack", f, r.net, r.replicas...)
	if err != nil {
		t.Fatal(err)
	}
	r.group = g
	clientHW, err := sgx.NewMachine("client", r.lat)
	if err != nil {
		t.Fatal(err)
	}
	r.client, err = clientHW.Load(testImage("owner-app"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGroupValidation(t *testing.T) {
	r := newRig(t, 1)
	if _, err := NewGroup("bad", 1, r.net, r.replicas[0]); !errors.Is(err, ErrBadReplication) {
		t.Fatalf("f=1 with one replica: err = %v", err)
	}
	if _, err := NewGroup("bad", -1, r.net); !errors.Is(err, ErrBadReplication) {
		t.Fatalf("negative f: err = %v", err)
	}
	if _, err := NewGroup("bad", 1, r.net, r.replicas[0], r.replicas[1], r.replicas[0]); !errors.Is(err, ErrBadReplication) {
		t.Fatalf("duplicate replica: err = %v", err)
	}
}

func TestQuorumLifecycle(t *testing.T) {
	r := newRig(t, 1)
	g := r.group

	uuid, v, err := g.Create(r.client)
	if err != nil || v != 0 {
		t.Fatalf("create: v=%d err=%v", v, err)
	}
	for want := uint32(1); want <= 5; want++ {
		got, err := g.Increment(r.client, uuid)
		if err != nil || got != want {
			t.Fatalf("increment: got %d err=%v, want %d", got, err, want)
		}
	}
	if got, err := g.Read(r.client, uuid); err != nil || got != 5 {
		t.Fatalf("read: got %d err=%v", got, err)
	}
	if got, err := g.IncrementN(r.client, uuid, 10); err != nil || got != 15 {
		t.Fatalf("incrementN: got %d err=%v", got, err)
	}
	if g.Count(r.client.MREnclave()) != 1 {
		t.Fatalf("owner count = %d", g.Count(r.client.MREnclave()))
	}

	// Capability and owner enforcement happen replica-side.
	bad := uuid
	bad.Nonce[0] ^= 0xFF
	if _, err := g.Read(r.client, bad); !errors.Is(err, pse.ErrCounterNotFound) {
		t.Fatalf("wrong nonce: err = %v", err)
	}
	otherHW, _ := sgx.NewMachine("other", r.lat)
	stranger, err := otherHW.Load(testImage("stranger-app"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Increment(stranger, uuid); !errors.Is(err, pse.ErrNotOwner) {
		t.Fatalf("stranger increment: err = %v", err)
	}

	final, err := g.DestroyAndRead(r.client, uuid)
	if err != nil || final != 15 {
		t.Fatalf("destroy: final=%d err=%v", final, err)
	}
	if _, err := g.Increment(r.client, uuid); !errors.Is(err, pse.ErrCounterNotFound) {
		t.Fatalf("increment after destroy: err = %v", err)
	}
	// A second destroy of the same counter must fail like the firmware
	// primitive does — a forked clone re-running its freeze capture must
	// not get a success with a zero value.
	if _, err := g.DestroyAndRead(r.client, uuid); !errors.Is(err, pse.ErrCounterNotFound) {
		t.Fatalf("second destroy: err = %v", err)
	}
	if g.Count(r.client.MREnclave()) != 0 {
		t.Fatalf("owner count after destroy = %d", g.Count(r.client.MREnclave()))
	}

	// A fresh create never reuses the destroyed UUID.
	uuid2, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if uuid2.ID == uuid.ID {
		t.Fatal("counter ID reused after destroy")
	}
}

// TestKillOneReplica is the availability acceptance check: with one of
// 2f+1 replicas dead, counters stay available and strictly monotonic;
// with f+1 dead, operations fail safe with ErrNoQuorum instead of
// answering from a minority.
func TestKillOneReplica(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.IncrementN(r.client, uuid, 7); err != nil {
		t.Fatal(err)
	}

	// Kill one replica machine: its agent enclave dies with it.
	r.machines[0].Restart()
	last := uint32(7)
	for i := 0; i < 5; i++ {
		got, err := g.Increment(r.client, uuid)
		if err != nil {
			t.Fatalf("increment with one replica down: %v", err)
		}
		if got <= last {
			t.Fatalf("monotonicity violated: %d after %d", got, last)
		}
		last = got
	}
	if got, err := g.Read(r.client, uuid); err != nil || got != 12 {
		t.Fatalf("read with one replica down: got %d err=%v", got, err)
	}
	// Creates and destroys also commit with the quorum intact.
	u2, _, err := g.Create(r.client)
	if err != nil {
		t.Fatalf("create with one replica down: %v", err)
	}
	if _, err := g.DestroyAndRead(r.client, u2); err != nil {
		t.Fatalf("destroy with one replica down: %v", err)
	}

	// Second failure exceeds f: unavailable, never wrong.
	r.machines[1].Restart()
	if _, err := g.Increment(r.client, uuid); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("increment with quorum lost: err = %v", err)
	}
	if _, err := g.Read(r.client, uuid); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("read with quorum lost: err = %v", err)
	}
}

// TestReseedRejoin exercises the recovery path: a replica that missed
// increments, a create, and a destroy while its machine was down is
// re-seeded from the quorum and then carries the full state — proven by
// killing a different replica afterwards and operating against a quorum
// that includes the rejoined one.
func TestReseedRejoin(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	doomed, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.IncrementN(r.client, uuid, 3); err != nil {
		t.Fatal(err)
	}

	r.machines[0].Restart() // rep-0 goes down
	if _, err := g.IncrementN(r.client, uuid, 4); err != nil {
		t.Fatal(err)
	}
	born, _, err := g.Create(r.client) // created while rep-0 is away
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Increment(r.client, born); err != nil {
		t.Fatal(err)
	}
	if _, err := g.DestroyAndRead(r.client, doomed); err != nil { // destroyed while away
		t.Fatal(err)
	}

	// Rejoin: reload the agent; the replica refuses to serve until the
	// reseed has replayed the quorum state onto it.
	if err := r.replicas[0].Restart(); err != nil {
		t.Fatal(err)
	}
	if r.replicas[0].Synced() {
		t.Fatal("replica serving before reseed")
	}
	if err := g.Reseed("rep-0"); err != nil {
		t.Fatal(err)
	}
	if !r.replicas[0].Synced() {
		t.Fatal("replica not serving after reseed")
	}

	// Now lose a replica that saw everything; the quorum must rely on
	// the rejoined one.
	r.machines[2].Restart()
	if got, err := g.Read(r.client, uuid); err != nil || got != 7 {
		t.Fatalf("read after reseed: got %d err=%v", got, err)
	}
	if got, err := g.Increment(r.client, uuid); err != nil || got != 8 {
		t.Fatalf("increment after reseed: got %d err=%v", got, err)
	}
	if got, err := g.Read(r.client, born); err != nil || got != 1 {
		t.Fatalf("read of counter created while away: got %d err=%v", got, err)
	}
	if _, err := g.Read(r.client, doomed); !errors.Is(err, pse.ErrCounterNotFound) {
		t.Fatalf("destroyed counter resurrected: err = %v", err)
	}
}

// TestHandoff moves a replica role to a fresh machine (the drain path)
// and verifies the group then tolerates losing another original member.
func TestHandoff(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.IncrementN(r.client, uuid, 9); err != nil {
		t.Fatal(err)
	}

	freshHW, err := sgx.NewMachine("rep-3", r.lat)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewReplica("rep-3", freshHW, pse.NewService(r.lat), r.net, "rep-3/ctr")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Handoff("rep-0", fresh); err != nil {
		t.Fatal(err)
	}
	r.replicas[0].Close()
	want := []string{"rep-1", "rep-2", "rep-3"}
	got := g.Members()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("members after handoff = %v", got)
	}

	// The old machine can now disappear entirely, and another original
	// can die: the new replica carries its share.
	r.machines[0].Restart()
	r.machines[1].Restart()
	if got, err := g.Read(r.client, uuid); err != nil || got != 9 {
		t.Fatalf("read after handoff: got %d err=%v", got, err)
	}
	if got, err := g.Increment(r.client, uuid); err != nil || got != 10 {
		t.Fatalf("increment after handoff: got %d err=%v", got, err)
	}

	if err := g.Handoff("rep-0", fresh); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("handoff of non-member: err = %v", err)
	}
}

// TestInspect is the operator view: the counter value is readable from
// the quorum with the UUID capability and owner identity alone, even
// when the owning enclave (and its whole machine) is gone.
func TestInspect(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.IncrementN(r.client, uuid, 6); err != nil {
		t.Fatal(err)
	}
	owner := r.client.MREnclave()
	r.client.Machine().Restart() // owner enclave dies with its machine
	if _, err := g.Increment(r.client, uuid); !errors.Is(err, sgx.ErrEnclaveDestroyed) {
		t.Fatalf("dead owner increment: err = %v", err)
	}
	if got, err := g.Inspect(owner, uuid); err != nil || got != 6 {
		t.Fatalf("inspect: got %d err=%v", got, err)
	}
}

// TestReplicationCharges pins the simulated cost model of one replicated
// increment at f=1: one client ECALL, and per replica one network RTT,
// one replica-apply, one agent ECALL, and one firmware increment.
func TestReplicationCharges(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	g.Quiesce() // let the create's straggler vote land before the reset
	r.lat.Reset()
	if _, err := g.Increment(r.client, uuid); err != nil {
		t.Fatal(err)
	}
	// The increment returns as soon as a majority acked; wait for the
	// straggler's vote (and any late repair) so the full fan-out cost is
	// visible before counting.
	g.Quiesce()
	counts := r.lat.Counts()
	if got := counts[sim.OpCounterIncrement]; got != 3 {
		t.Fatalf("firmware increments = %d, want 3", got)
	}
	if got := counts[sim.OpNetworkRTT]; got != 3 {
		t.Fatalf("network RTTs = %d, want 3", got)
	}
	if got := counts[sim.OpReplicaApply]; got != 3 {
		t.Fatalf("replica applies = %d, want 3", got)
	}
	if got := counts[sim.OpECall]; got != 4 { // 1 client + 3 agents
		t.Fatalf("ecalls = %d, want 4", got)
	}
}

// TestGroupCapacityShared pins the rack's counter budget: every replica
// backs group counters under its single agent identity, so the group
// offers one facility's worth (pse.MaxCounters) shared across all
// owners, enforced at the coordinator instead of failing deep in the
// replicas.
func TestGroupCapacityShared(t *testing.T) {
	r := newRig(t, 0)
	g := r.group
	otherHW, _ := sgx.NewMachine("other-owner", r.lat)
	other, err := otherHW.Load(testImage("other-owner-app"))
	if err != nil {
		t.Fatal(err)
	}
	half := pse.MaxCounters / 2
	var lastA pse.UUID
	for i := 0; i < half; i++ {
		u, _, err := g.Create(r.client)
		if err != nil {
			t.Fatalf("create %d (owner A): %v", i, err)
		}
		lastA = u
		if _, _, err := g.Create(other); err != nil {
			t.Fatalf("create %d (owner B): %v", i, err)
		}
	}
	if g.TotalLive() != pse.MaxCounters {
		t.Fatalf("total live = %d", g.TotalLive())
	}
	// The rack is full for every owner, not only the one at 256.
	if _, _, err := g.Create(other); !errors.Is(err, pse.ErrCounterLimit) {
		t.Fatalf("create beyond rack capacity: err = %v", err)
	}
	// Destroying frees rack budget again.
	if _, err := g.DestroyAndRead(r.client, lastA); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Create(other); err != nil {
		t.Fatalf("create after freeing budget: %v", err)
	}
}

// TestForgedAndReplayedTrafficRejected is the network-adversary check:
// replication endpoints accept nothing that is not sealed under the
// group key, and a recorded reseed cannot be replayed later (the
// freshness challenge rotates).
func TestForgedAndReplayedTrafficRejected(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.IncrementN(r.client, uuid, 4); err != nil {
		t.Fatal(err)
	}

	// Forgery: a plaintext destroy sent straight to a replica address.
	forged := (&opMessage{Op: opDestroyRead, UUID: uuid, Owner: r.client.MREnclave()}).encode()
	if _, err := r.net.Send("adversary", r.replicas[0].Address(), kindOp, forged); !errors.Is(err, ErrBadAuth) {
		t.Fatalf("forged op accepted: err = %v", err)
	}
	// Forgery: a plaintext reseed with a tombstone for the live counter.
	evil := (&syncMessage{Tombstones: []uint32{uuid.ID}}).encode()
	if _, err := r.net.Send("adversary", r.replicas[0].Address(), kindReseed, evil); !errors.Is(err, ErrBadAuth) {
		t.Fatalf("forged reseed accepted: err = %v", err)
	}
	if got, err := g.Read(r.client, uuid); err != nil || got != 4 {
		t.Fatalf("counter after forgeries: got %d err=%v", got, err)
	}

	// Replay: record the sealed reseed traffic of a legitimate recovery,
	// then play it back at the (by then re-restarted) replica.
	var recorded [][]byte
	var recMu sync.Mutex
	r.net.SetAdversary(recorderAdversary{kind: kindReseed, mu: &recMu, out: &recorded})
	r.machines[0].Restart()
	if err := r.replicas[0].Restart(); err != nil {
		t.Fatal(err)
	}
	if err := g.Reseed("rep-0"); err != nil {
		t.Fatal(err)
	}
	r.net.SetAdversary(nil)
	if len(recorded) == 0 {
		t.Fatal("no reseed traffic recorded")
	}
	r.machines[0].Restart()
	if err := r.replicas[0].Restart(); err != nil {
		t.Fatal(err)
	}
	for _, raw := range recorded {
		if _, err := r.net.Send("adversary", r.replicas[0].Address(), kindReseed, raw); !errors.Is(err, ErrBadAuth) {
			t.Fatalf("replayed reseed accepted: err = %v", err)
		}
	}
	if r.replicas[0].Synced() {
		t.Fatal("replayed reseed marked replica serving")
	}
	// The legitimate path still works.
	if err := g.Reseed("rep-0"); err != nil {
		t.Fatal(err)
	}
	if got, err := g.Read(r.client, uuid); err != nil || got != 4 {
		t.Fatalf("counter after replay attempts: got %d err=%v", got, err)
	}

	// Vote replay: record the sealed votes of a read at value 4, advance
	// the counter, then substitute the recorded votes into a later read.
	// The stale votes must not be counted (nonce echo), so the read
	// fails safe instead of reporting the rolled-back value.
	var oldVotes [][]byte
	r.net.SetAdversary(replyRecorder{kind: kindOp, mu: &recMu, out: &oldVotes})
	if got, err := g.Read(r.client, uuid); err != nil || got != 4 {
		t.Fatalf("recorded read: got %d err=%v", got, err)
	}
	// The read returns on the first decidable majority; the straggler's
	// vote is still being recorded. Settle before reading oldVotes.
	g.Quiesce()
	r.net.SetAdversary(nil)
	if _, err := g.IncrementN(r.client, uuid, 3); err != nil {
		t.Fatal(err)
	}
	r.net.SetAdversary(replySubstituter{kind: kindOp, replies: oldVotes})
	if got, err := g.Read(r.client, uuid); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("read with replayed votes: got %d err=%v (want no-quorum)", got, err)
	}
	r.net.SetAdversary(nil)
	if got, err := g.Read(r.client, uuid); err != nil || got != 7 {
		t.Fatalf("clean read after vote replay: got %d err=%v", got, err)
	}
}

// replyRecorder copies response payloads of one message kind (locked:
// it runs from the parallel fan-out goroutines).
type replyRecorder struct {
	kind string
	mu   *sync.Mutex
	out  *[][]byte
}

func (a replyRecorder) OnRequest(*transport.Message) error { return nil }

func (a replyRecorder) OnResponse(msg transport.Message, reply *[]byte) error {
	if msg.Kind == a.kind {
		a.mu.Lock()
		*a.out = append(*a.out, append([]byte(nil), *reply...))
		a.mu.Unlock()
	}
	return nil
}

// replySubstituter replaces each response of one kind with recorded ones.
type replySubstituter struct {
	kind    string
	replies [][]byte
}

func (a replySubstituter) OnRequest(*transport.Message) error { return nil }

func (a replySubstituter) OnResponse(msg transport.Message, reply *[]byte) error {
	if msg.Kind == a.kind && len(a.replies) > 0 {
		*reply = append([]byte(nil), a.replies[0]...)
	}
	return nil
}

// recorderAdversary copies request payloads of one message kind.
// Adversary callbacks run from the group's parallel fan-out goroutines,
// so recording is locked.
type recorderAdversary struct {
	kind string
	mu   *sync.Mutex
	out  *[][]byte
}

func (a recorderAdversary) OnRequest(msg *transport.Message) error {
	if msg.Kind == a.kind {
		a.mu.Lock()
		*a.out = append(*a.out, append([]byte(nil), msg.Payload...))
		a.mu.Unlock()
	}
	return nil
}

func (a recorderAdversary) OnResponse(transport.Message, *[]byte) error { return nil }

// TestReseedCannotResurrect pins the stickiness of destruction across
// recovery: a replica that processed a committed destroy keeps its
// tombstone even when a reseed built from a stale peer lists the counter
// as live (the scenario: the destroy quorum's other members are down, so
// the snapshot comes from a replica that missed the destroy).
func TestReseedCannotResurrect(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.IncrementN(r.client, uuid, 5); err != nil {
		t.Fatal(err)
	}

	// rep-2 misses the destroy: its machine is down when it commits.
	r.machines[2].Restart()
	if _, err := g.DestroyAndRead(r.client, uuid); err != nil {
		t.Fatal(err)
	}

	// rep-2 recovers the honest way first (its reseed carries the
	// tombstone from rep-0/rep-1).
	if err := r.replicas[2].Restart(); err != nil {
		t.Fatal(err)
	}
	// Now craft the stale view the adversarial scenario produces: a
	// reseed for rep-0 listing the destroyed counter live at an old
	// value, correctly challenge-bound (the attack is staleness, not
	// forgery — e.g. assembled from a stale replica's snapshot).
	rep0 := r.replicas[0]
	stale := &syncMessage{
		Next:    2,
		Entries: []syncEntry{{UUID: uuid, Owner: r.client.MREnclave(), Value: 3}},
	}
	rep0.mu.Lock()
	stale.Challenge = rep0.challenge
	rep0.mu.Unlock()
	if _, err := rep0.handleReseed(stale.encode()); err != nil {
		t.Fatal(err)
	}
	// The tombstone must have outranked the stale live entry.
	rep0.mu.Lock()
	_, live := rep0.table[uuid.ID]
	_, dead := rep0.destroyed[uuid.ID]
	rep0.mu.Unlock()
	if live || !dead {
		t.Fatalf("destroyed counter resurrected on reseed (live=%v dead=%v)", live, dead)
	}
	if _, err := g.Read(r.client, uuid); !errors.Is(err, pse.ErrCounterNotFound) {
		t.Fatalf("destroyed counter readable after stale reseed: err = %v", err)
	}
}

// dropAdversary drops requests of one kind addressed to one replica.
type dropAdversary struct {
	kind string
	to   transport.Address
}

func (a dropAdversary) OnRequest(msg *transport.Message) error {
	if msg.Kind == a.kind && msg.To == a.to {
		return transport.ErrDropped
	}
	return nil
}

func (a dropAdversary) OnResponse(transport.Message, *[]byte) error { return nil }

// TestDestroyRetryKeepsCommittedValue pins the R4 edge of retried
// destroys: when the first destroy attempt reaches only one replica —
// the one holding the latest committed value — and that attempt fails
// its quorum, the retry must still report the committed value, not the
// lower value of a straggler that supplies the retry's only live ack.
func TestDestroyRetryKeepsCommittedValue(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.IncrementN(r.client, uuid, 7); err != nil {
		t.Fatal(err)
	}
	// rep-2 straggles at 7 while three more increments commit on
	// rep-0/rep-1 (value 10).
	r.net.SetAdversary(dropAdversary{kind: kindOp, to: r.replicas[2].Address()})
	if got, err := g.IncrementN(r.client, uuid, 3); err != nil || got != 10 {
		t.Fatalf("increment to 10: got %d err=%v", got, err)
	}
	// First destroy reaches only rep-0: it drops the counter and its
	// final value 10, but the quorum fails.
	r.net.SetAdversary(multiDrop{kinds: kindOp, to: []transport.Address{r.replicas[1].Address(), r.replicas[2].Address()}})
	if _, err := g.DestroyAndRead(r.client, uuid); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("partial destroy: err = %v", err)
	}
	// rep-1 — the only other holder of value 10 — dies; the retry's live
	// acks are rep-0 (gone) and rep-2 (straggler at 7).
	r.net.SetAdversary(nil)
	r.machines[1].Restart()
	final, err := g.DestroyAndRead(r.client, uuid)
	if err != nil {
		t.Fatalf("retry destroy: %v", err)
	}
	if final != 10 {
		t.Fatalf("retry destroy final = %d, want the committed 10", final)
	}
}

// multiDrop drops requests of one kind to any of the given addresses.
type multiDrop struct {
	kinds string
	to    []transport.Address
}

func (a multiDrop) OnRequest(msg *transport.Message) error {
	if msg.Kind != a.kinds {
		return nil
	}
	for _, to := range a.to {
		if msg.To == to {
			return transport.ErrDropped
		}
	}
	return nil
}

func (a multiDrop) OnResponse(transport.Message, *[]byte) error { return nil }

// TestStragglerRefusalIsNotAuthoritative pins the mixed-vote rule: a
// replica that missed a committed create must not be able to turn a
// live counter's reads into pse.ErrCounterNotFound (the signal the
// migration protocol reads as destroyed/forked); without a quorum of
// acks the group reports unavailability instead.
func TestStragglerRefusalIsNotAuthoritative(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	// rep-2 misses the create entirely (requests to it are dropped), so
	// it stays synced but has no slot for the counter.
	r.net.SetAdversary(dropAdversary{kind: kindOp, to: r.replicas[2].Address()})
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.IncrementN(r.client, uuid, 4); err != nil {
		t.Fatal(err)
	}
	// Early-quorum returns can leave straggler requests still in flight;
	// settle them before lifting the drop, or one could slip through
	// afterwards and heal rep-2 ahead of the scenario.
	g.Quiesce()
	r.net.SetAdversary(nil)
	// rep-1 dies: the responders are rep-0 (OK, value 4) and rep-2
	// (not-found). The refusal of the straggling minority must not win.
	r.machines[1].Restart()
	if _, err := g.Read(r.client, uuid); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("read with straggler refusal: err = %v (want no-quorum, not not-found)", err)
	}
	// With the full quorum back, the counter reads normally — and the
	// read heals the straggler: opAdvance installs the slot it missed,
	// so the group is back to full replication and tolerates losing a
	// different replica afterwards.
	if err := r.replicas[1].Restart(); err != nil {
		t.Fatal(err)
	}
	if err := g.Reseed("rep-1"); err != nil {
		t.Fatal(err)
	}
	if got, err := g.Read(r.client, uuid); err != nil || got != 4 {
		t.Fatalf("read after recovery: got %d err=%v", got, err)
	}
	// With the early-quorum return the healing opAdvance may run off the
	// latency path (the straggler's not-found vote can arrive after the
	// read returned); wait for it before relying on the heal.
	g.Quiesce()
	r.machines[0].Restart() // rep-0 (an original create acker) dies
	if got, err := g.Read(r.client, uuid); err != nil || got != 4 {
		t.Fatalf("read served by healed straggler: got %d err=%v", got, err)
	}
	if got, err := g.Increment(r.client, uuid); err != nil || got != 5 {
		t.Fatalf("increment served by healed straggler: got %d err=%v", got, err)
	}
}

// TestConcurrentDestroySingleWinner pins the coordinator's destroy
// serialization: when a forked enclave and the original race their
// freeze captures, exactly one DestroyAndRead succeeds — the other gets
// ErrCounterNotFound, exactly like the firmware singleton.
func TestConcurrentDestroySingleWinner(t *testing.T) {
	for round := 0; round < 20; round++ {
		r := newRig(t, 1)
		g := r.group
		uuid, _, err := g.Create(r.client)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.IncrementN(r.client, uuid, 5); err != nil {
			t.Fatal(err)
		}
		type outcome struct {
			v   uint32
			err error
		}
		results := make(chan outcome, 2)
		for i := 0; i < 2; i++ {
			go func() {
				v, err := g.DestroyAndRead(r.client, uuid)
				results <- outcome{v, err}
			}()
		}
		a, b := <-results, <-results
		oks := 0
		for _, o := range []outcome{a, b} {
			if o.err == nil {
				oks++
				if o.v != 5 {
					t.Fatalf("winning destroy captured %d, want 5", o.v)
				}
			} else if !errors.Is(o.err, pse.ErrCounterNotFound) {
				t.Fatalf("losing destroy: err = %v", o.err)
			}
		}
		if oks != 1 {
			t.Fatalf("round %d: %d destroys succeeded, want exactly 1", round, oks)
		}
		if g.Count(r.client.MREnclave()) != 0 {
			t.Fatalf("owner budget after racing destroys = %d", g.Count(r.client.MREnclave()))
		}
	}
}

// TestReadRepairKeepsObservedValueVisible pins read monotonicity: a
// partial, quorum-failed increment that lands on one replica and is then
// observed by a read must stay visible even when that replica later
// fails — the observing read repairs the other ack-set members up to it.
func TestReadRepairKeepsObservedValueVisible(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.IncrementN(r.client, uuid, 4); err != nil {
		t.Fatal(err)
	}
	// Partial increment: only rep-0 applies (requests to rep-1/rep-2
	// dropped); the caller is told it failed.
	r.net.SetAdversary(multiDrop{kinds: kindOp, to: []transport.Address{r.replicas[1].Address(), r.replicas[2].Address()}})
	if _, err := g.Increment(r.client, uuid); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("partial increment: err = %v", err)
	}
	r.net.SetAdversary(nil)
	// A read observes the partial value 5 — and repairs the stragglers.
	// With the early-quorum return the ack set is the first majority to
	// answer; slowing rep-2 pins it to {rep-0, rep-1} so the read
	// deterministically observes the tainted replica's 5.
	r.net.SetAdversary(slowPeer{kind: kindOp, to: r.replicas[2].Address(), d: 10 * time.Millisecond})
	if got, err := g.Read(r.client, uuid); err != nil || got != 5 {
		t.Fatalf("read observing partial increment: got %d err=%v", got, err)
	}
	g.Quiesce() // the straggler's late vote is repaired off the latency path
	r.net.SetAdversary(nil)
	// The tainted replica dies (within the f budget); the observed value
	// must not vanish from the fleet.
	r.machines[0].Restart()
	if got, err := g.Read(r.client, uuid); err != nil || got != 5 {
		t.Fatalf("read after tainted replica died: got %d err=%v (regression)", got, err)
	}
}

// slowPeer delays requests to one address — a hung (but not dead) peer.
type slowPeer struct {
	kind string
	to   transport.Address
	d    time.Duration
}

func (a slowPeer) OnRequest(msg *transport.Message) error {
	if msg.Kind == a.kind && msg.To == a.to {
		time.Sleep(a.d)
	}
	return nil
}

func (a slowPeer) OnResponse(transport.Message, *[]byte) error { return nil }

// TestConcurrentIncrementsUnique pins the firmware-like unique-result
// property: concurrent increments of one counter — e.g. a forked clone
// racing the original — never return the same value.
func TestConcurrentIncrementsUnique(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 4, 8
	results := make(chan uint32, workers*each)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				v, err := g.Increment(r.client, uuid)
				if err != nil {
					t.Error(err)
					return
				}
				results <- v
			}
		}()
	}
	wg.Wait()
	close(results)
	seen := make(map[uint32]bool)
	for v := range results {
		if seen[v] {
			t.Fatalf("increment value %d returned twice", v)
		}
		seen[v] = true
	}
	if len(seen) != workers*each {
		t.Fatalf("%d unique values from %d increments", len(seen), workers*each)
	}
}

// TestIncrementResultDurable pins the durability of returned values: an
// increment whose result incorporates a partial earlier increment must
// leave that value on a majority before returning, so the death of the
// one replica that originally held it (≤f failures) cannot make the
// returned value unobservable.
func TestIncrementResultDurable(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.IncrementN(r.client, uuid, 4); err != nil {
		t.Fatal(err)
	}
	// A partial increment lands only on rep-0 (5); the caller sees
	// failure.
	r.net.SetAdversary(multiDrop{kinds: kindOp, to: []transport.Address{r.replicas[1].Address(), r.replicas[2].Address()}})
	if _, err := g.Increment(r.client, uuid); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("partial increment: err = %v", err)
	}
	r.net.SetAdversary(nil)
	// The retry returns 6 — rep-0's divergent history — and must confirm
	// it on a majority before returning. Slowing rep-2 pins the early
	// ack set to {rep-0, rep-1}, so the divergent holder is
	// deterministically observed.
	r.net.SetAdversary(slowPeer{kind: kindOp, to: r.replicas[2].Address(), d: 10 * time.Millisecond})
	got, err := g.Increment(r.client, uuid)
	if err != nil || got != 6 {
		t.Fatalf("retry increment: got %d err=%v", got, err)
	}
	g.Quiesce()
	r.net.SetAdversary(nil)
	r.machines[0].Restart() // the only original holder of 6 dies
	if v, err := g.Read(r.client, uuid); err != nil || v != 6 {
		t.Fatalf("read after holder died: got %d err=%v (returned value regressed)", v, err)
	}
}

// TestF0Group is the degenerate single-replica configuration: same API,
// no fault tolerance, one replica hop.
func TestF0Group(t *testing.T) {
	r := newRig(t, 0)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := g.Increment(r.client, uuid); err != nil || got != 1 {
		t.Fatalf("increment: got %d err=%v", got, err)
	}
	r.machines[0].Restart()
	if _, err := g.Increment(r.client, uuid); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("f=0 with replica down: err = %v", err)
	}
	// Recovery for f=0 leans on the durable replica state alone.
	if err := r.replicas[0].Restart(); err != nil {
		t.Fatal(err)
	}
	if err := g.Reseed("rep-0"); err != nil {
		t.Fatal(err)
	}
	if got, err := g.Read(r.client, uuid); err != nil || got != 1 {
		t.Fatalf("read after f=0 recovery: got %d err=%v", got, err)
	}
}

// TestHungPeerDoesNotDelayOps pins the early-quorum return (the ROADMAP
// follow-on PR 3 left open): a broadcast returns as soon as the vote
// tally is decidable, so one hung — not dead — peer no longer adds its
// transport deadline to every operation's latency.
func TestHungPeerDoesNotDelayOps(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	uuid, _, err := g.Create(r.client)
	if err != nil {
		t.Fatal(err)
	}
	g.Quiesce()
	const hang = 400 * time.Millisecond
	r.net.SetAdversary(slowPeer{kind: kindOp, to: r.replicas[2].Address(), d: hang})
	start := time.Now()
	if got, err := g.Increment(r.client, uuid); err != nil || got != 1 {
		t.Fatalf("increment with hung peer: got %d err=%v", got, err)
	}
	if got, err := g.Read(r.client, uuid); err != nil || got != 1 {
		t.Fatalf("read with hung peer: got %d err=%v", got, err)
	}
	elapsed := time.Since(start)
	// Two ops ran; before the early return each would have paid the full
	// hang, so anything under one hang proves neither waited for the
	// hung peer.
	if elapsed >= hang {
		t.Fatalf("two quorum ops took %v with one peer hung %v: early-quorum return regressed", elapsed, hang)
	}
	g.Quiesce()
	r.net.SetAdversary(nil)
	// The hung peer's votes eventually landed; nothing diverged.
	if got, err := g.Read(r.client, uuid); err != nil || got != 1 {
		t.Fatalf("read after hang cleared: got %d err=%v", got, err)
	}
}

// TestEscrowStore exercises the rack's state-escrow store end to end:
// quorum-committed puts, highest-version quorum gets, version-forward
// supersede (a replayed older record never displaces a newer one), and
// records following the membership through restart + reseed.
func TestEscrowStore(t *testing.T) {
	r := newRig(t, 1)
	g := r.group
	owner := r.client.MREnclave()
	id := [16]byte{1, 2, 3}
	bind := pse.UUID{ID: 42, Nonce: [16]byte{9}}

	if _, _, _, err := g.EscrowGet(owner, id); !errors.Is(err, ErrEscrowNotFound) {
		t.Fatalf("get before put: err = %v", err)
	}
	if err := g.EscrowPut(owner, id, 1, bind, []byte("sealed-v1")); err != nil {
		t.Fatal(err)
	}
	if err := g.EscrowPut(owner, id, 3, bind, []byte("sealed-v3")); err != nil {
		t.Fatal(err)
	}
	g.Quiesce()
	// A replayed older record is refused by every replica.
	if err := g.EscrowPut(owner, id, 2, bind, []byte("sealed-v2-replay")); err == nil {
		t.Fatal("replayed older escrow version accepted")
	}
	ver, b, blob, err := g.EscrowGet(owner, id)
	if err != nil || ver != 3 || b != bind || string(blob) != "sealed-v3" {
		t.Fatalf("get: ver=%d bind=%v blob=%q err=%v", ver, b, blob, err)
	}

	// The record survives a replica's machine failure...
	r.machines[0].Restart()
	ver, _, blob, err = g.EscrowGet(owner, id)
	if err != nil || ver != 3 || string(blob) != "sealed-v3" {
		t.Fatalf("get after replica death: ver=%d blob=%q err=%v", ver, blob, err)
	}
	// ...and reseeds onto the rejoining replica, so the group tolerates
	// losing a different one afterwards.
	if err := r.replicas[0].Restart(); err != nil {
		t.Fatal(err)
	}
	if err := g.Reseed("rep-0"); err != nil {
		t.Fatal(err)
	}
	r.machines[1].Restart()
	ver, _, blob, err = g.EscrowGet(owner, id)
	if err != nil || ver != 3 || string(blob) != "sealed-v3" {
		t.Fatalf("get served by reseeded replica: ver=%d blob=%q err=%v", ver, blob, err)
	}
}
