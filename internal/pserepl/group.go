// Package pserepl replicates the Platform Services monotonic-counter
// facility across machines, turning the per-machine pse.Service singleton
// into a datacenter-grade primitive that survives machine failure
// (TrInc-style distributed trusted counters; ROADMAP "Counter-service
// replication").
//
// A Group fronts 2f+1 Replicas hosted on distinct machines. Mutations
// (Create, Increment, IncrementN, DestroyAndRead) commit when a majority
// (f+1) of replicas ack; Read returns the maximum value reported by a
// majority, then read-repairs stragglers up to it. Because any two
// majorities intersect, the maximum over a read quorum always includes
// the latest committed increment, and the repair keeps any value a read
// has returned — including one left by a partial, quorum-failed
// increment — visible to every later majority: counter values never
// regress while at most f replicas are down, the rollback protection the
// migration protocol needs, now minus the single-machine single point of
// failure.
//
// Replication messages ride the repository's tagged binary wire codec
// over transport.Messenger, so every hop is charged through sim.Latency
// (one network RTT plus the replica-side apply and firmware costs per
// replica) and the latency price of replication is measurable — see
// bench.ReplicationSweep.
//
// Recovery: a replica that rejoins after a machine restart refuses to
// serve until Group.Reseed replays the quorum's per-counter maxima onto
// it as forward-only deltas; a machine being drained hands its replica
// role to a fresh machine through Group.Handoff the same way. Neither
// path can ever lower a counter value.
package pserepl

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pse"
	"repro/internal/seal"
	"repro/internal/sgx"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// Group coordination errors.
var (
	// ErrNoQuorum reports an operation that could not gather a majority of
	// replica votes: the counter state is unavailable (not lost) until
	// enough replicas come back.
	ErrNoQuorum = errors.New("pserepl: no quorum of replica acks")
	// ErrBadReplication reports an invalid group configuration.
	ErrBadReplication = errors.New("pserepl: invalid replication configuration")
	// ErrUnknownReplica reports a reseed or handoff naming a non-member.
	ErrUnknownReplica = errors.New("pserepl: unknown replica")
	// ErrWireFormat reports malformed replication wire bytes.
	ErrWireFormat = errors.New("pserepl: malformed replication message")
)

// Group is the coordinator for one replicated counter group (one rack's
// quorum). It implements the same counter facility interface as
// *pse.Service (core.CounterService), so the Migration Library works
// against it unchanged. All methods are safe for concurrent use.
//
// The coordinator itself is untrusted host software, like the cloud
// management plane: correctness does not depend on it. Each replica
// enforces the UUID nonce capability and the owner identity itself, and
// monotonicity comes from the replicas' firmware counters plus quorum
// intersection, not from coordinator bookkeeping.
type Group struct {
	name   string
	f      int
	msgr   transport.Messenger
	addr   transport.Address // From address on replication messages
	nextID atomic.Uint64

	// sealer holds the group key every replication message is
	// AEAD-sealed under. The key is installed on each replica in-process
	// when it joins (the provisioning phase), so the untrusted network
	// carries only sealed bytes: no forged ops or reseeds, no forged
	// votes, and no UUID nonce capabilities in the clear.
	sealer *xcrypto.Sealer

	// escrowSealer is the rack escrow key: enclaves on rack-associated
	// machines wrap their MSK under it when escrowing state, and a
	// recovering enclave on any rack peer unwraps it. Like the group key
	// it is installed during the secure provisioning phase (the cloud
	// layer hands it to the Migration Library at launch).
	escrowSealer *seal.StateSealer

	// pending tracks broadcast sender goroutines and late-vote repairers
	// that outlive an early-quorum return; Quiesce waits for them.
	pending sync.WaitGroup

	// memMu guards membership and is held (read) while a quorum
	// broadcast collects its deciding votes, so reconfiguration (Reseed,
	// Handoff) serializes against the commit point of in-flight
	// operations: a snapshot taken under the write lock reflects every
	// operation that has returned. Straggler votes and their background
	// read-repairs can outlive the read lock (the early-quorum return);
	// they are forward-only opAdvance traffic that cannot regress the
	// snapshot, and Quiesce waits them out when a settled group is
	// needed.
	memMu   sync.RWMutex
	members map[string]transport.Address

	// ownerMu guards the counter budget. Every replica backs group
	// counters with local hardware counters created under its single
	// agent identity, so the whole group shares one facility's budget
	// (pse.MaxCounters) across all owners — total tracks it, and
	// perOwner mirrors pse.Service's per-identity accounting within it.
	ownerMu  sync.Mutex
	total    int
	perOwner map[sgx.Measurement]int

	// destroyMu serializes destroys group-wide (they are rare: one per
	// counter lifetime, driven by migration freezes). The coordinator is
	// the serialization point the firmware singleton provided for free:
	// without it, two concurrent destroys of one counter could split the
	// OK votes so that both reach a quorum of ok+gone acks — and a
	// forked enclave's freeze would succeed alongside the original's.
	destroyMu sync.Mutex

	// incrMu stripes serialize increments per counter, again standing in
	// for the firmware's serial rate-limited transactions: without it,
	// two concurrent increments could each take the maximum over their
	// own ack sets and return the same value, losing the unique-result
	// property TrInc-style attestation builds on.
	incrMu [16]sync.Mutex

	// recoverMu guards the two failure ledgers below.
	recoverMu sync.Mutex
	// destroyFinals remembers, per counter, the highest final value any
	// replica acked during a destroy whose quorum was NOT reached: that
	// replica dropped the counter (its value is gone from the fleet), so
	// a later retry folds the remembered value into its result — the
	// capture can never report less than an acked increment (R4), even
	// when the retry's only OK votes come from stragglers. Entries are
	// dropped when the destroy completes.
	destroyFinals map[uint32]uint32
	// aborted records IDs of creates that failed their quorum: their
	// best-effort rollback may itself have missed a minority replica,
	// and without a tombstone that ghost entry would re-propagate
	// through snapshots. Treating aborted IDs as tombstones in every
	// snapshot merge cleans the ghosts up at the next reseed instead.
	aborted map[uint32]struct{}

	// inflightMu guards inflight: per counter, the replicas whose
	// RELATIVE increment applies are still in flight after an
	// early-quorum return. A replica lagging for that reason must NOT be
	// read-repaired: the absolute advance would land first and the
	// relative apply on top of it, double-counting the increment. Such
	// lag is transient and self-healing (the apply is already on its
	// way); repair skips these replicas, and entries clear as the
	// straggler votes drain.
	inflightMu sync.Mutex
	inflight   map[uint32]map[string]int
	// escrowObs and escrowAud, when set, observe committed escrow puts
	// (guarded by recoverMu; see SetEscrowObserver / SetEscrowAuditor).
	escrowObs func(owner sgx.Measurement, id [16]byte, version uint32)
	escrowAud func(owner sgx.Measurement, id [16]byte, version uint32)

	// obs records quorum-operation spans, per-op counters, and escrow
	// audit events; nil disables recording.
	obs atomic.Pointer[obs.Observer]
}

// NewGroup assembles a replicated counter group from exactly 2f+1
// replicas (f >= 0) and seeds each of them empty, marking them serving.
func NewGroup(name string, f int, msgr transport.Messenger, replicas ...*Replica) (*Group, error) {
	if f < 0 {
		return nil, fmt.Errorf("%w: negative replication factor", ErrBadReplication)
	}
	if len(replicas) != 2*f+1 {
		return nil, fmt.Errorf("%w: f=%d needs %d replicas, got %d", ErrBadReplication, f, 2*f+1, len(replicas))
	}
	key, err := xcrypto.RandomBytes(32)
	if err != nil {
		return nil, fmt.Errorf("group key: %w", err)
	}
	sealer, err := xcrypto.NewSealer(key)
	if err != nil {
		return nil, fmt.Errorf("group sealer: %w", err)
	}
	escrowKeyBytes, err := xcrypto.RandomBytes(32)
	if err != nil {
		return nil, fmt.Errorf("escrow key: %w", err)
	}
	escrowSealer, err := seal.NewStateSealer(escrowKeyBytes)
	if err != nil {
		return nil, fmt.Errorf("escrow sealer: %w", err)
	}
	g := &Group{
		name:          name,
		f:             f,
		msgr:          msgr,
		addr:          transport.Address("ctr-group/" + name),
		sealer:        sealer,
		escrowSealer:  escrowSealer,
		members:       make(map[string]transport.Address, len(replicas)),
		perOwner:      make(map[sgx.Measurement]int),
		destroyFinals: make(map[uint32]uint32),
		aborted:       make(map[uint32]struct{}),
		inflight:      make(map[uint32]map[string]int),
	}
	seen := make(map[string]bool, len(replicas))
	for _, r := range replicas {
		if seen[r.ID()] {
			return nil, fmt.Errorf("%w: duplicate replica %q", ErrBadReplication, r.ID())
		}
		seen[r.ID()] = true
	}
	for _, r := range replicas {
		r.join(g.sealer)
		if err := g.seedReplica(r.Address(), r.ID(), &syncMessage{}); err != nil {
			return nil, fmt.Errorf("seed replica %s: %w", r.ID(), err)
		}
		g.members[r.ID()] = r.Address()
	}
	return g, nil
}

// SetObserver installs the group's observability sink (nil disables).
// Quorum operations then record "quorum.*" spans and counters, and
// escrow supersede/tombstone transitions append audit events.
func (g *Group) SetObserver(o *obs.Observer) {
	g.obs.Store(o)
}

// opSpan opens a root span and bumps the per-op counter for one quorum
// operation; the returned span is nil (and free) when no observer is set.
func (g *Group) opSpan(name string) *obs.Span {
	o := g.obs.Load()
	if o == nil {
		return nil
	}
	sp, _ := o.StartSpan(name, obs.TraceContext{})
	if sp != nil {
		sp.Site = "group:" + g.name
	}
	o.M().Add(name, 1)
	return sp
}

// sendSealed performs one sealed request/response exchange with a single
// replica and returns the opened reply bytes.
func (g *Group) sendSealed(to transport.Address, id, kind string, payload []byte) ([]byte, error) {
	sealed, err := g.sealer.Seal(payload, aadReq(kind, id))
	if err != nil {
		return nil, err
	}
	reply, err := g.msgr.Send(g.addr, to, kind, sealed)
	if err != nil {
		return nil, err
	}
	return g.sealer.Open(reply, aadRep(kind, id))
}

// seedReplica fetches the target's freshness challenge and sends it the
// snapshot as a challenge-bound reseed. Both exchanges are nonce-echoed,
// so neither the challenge reply nor the reseed ack can be satisfied
// from recorded traffic.
func (g *Group) seedReplica(to transport.Address, id string, snap *syncMessage) error {
	nonce, err := newNonce()
	if err != nil {
		return err
	}
	raw, err := g.sendSealed(to, id, kindOp, (&opMessage{Op: opChallenge, Nonce: nonce}).encode())
	if err != nil {
		return err
	}
	ch, err := decodeSyncMessage(raw)
	if err != nil {
		return err
	}
	if ch.Nonce != nonce {
		return fmt.Errorf("%w: stale challenge reply", ErrBadAuth)
	}
	snap.Challenge = ch.Challenge
	if snap.Nonce, err = newNonce(); err != nil {
		return err
	}
	raw, err = g.sendSealed(to, id, kindReseed, snap.encode())
	if err != nil {
		return err
	}
	rep, err := decodeOpReply(raw)
	if err != nil {
		return err
	}
	if rep.Nonce != snap.Nonce {
		return fmt.Errorf("%w: stale reseed ack", ErrBadAuth)
	}
	if rep.Status != statusOK {
		return fmt.Errorf("%w: reseed refused with status %d", ErrBadReplication, rep.Status)
	}
	return nil
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// F returns the replication factor (the group tolerates f failures).
func (g *Group) F() int { return g.f }

// Quorum returns the majority size, f+1.
func (g *Group) Quorum() int { return g.f + 1 }

// Members returns the member replica IDs, sorted.
func (g *Group) Members() []string {
	g.memMu.RLock()
	defer g.memMu.RUnlock()
	ids := make([]string, 0, len(g.members))
	for id := range g.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// vote is one replica's answer to a broadcast.
type vote struct {
	id    string
	reply *opReply
	snap  *syncMessage
	esc   *escrowReply
	err   error
}

// Reply kinds a broadcast decodes into votes.
const (
	replyOp = iota
	replySnap
	replyEscrow
)

// newNonce draws a per-request freshness value.
func newNonce() (uint64, error) {
	b, err := xcrypto.RandomBytes(8)
	if err != nil {
		return 0, fmt.Errorf("request nonce: %w", err)
	}
	var n uint64
	for _, c := range b {
		n = n<<8 | uint64(c)
	}
	return n, nil
}

// broadcastLocked seals one message under the group key — separately per
// replica, the AAD binding each copy to its addressee — fans it out in
// parallel, and collects the authenticated, decoded answers. A vote that
// fails authentication or does not echo the request nonce is as dead as
// an unreachable replica: it never counts toward a quorum, so recorded
// votes from earlier requests (or another replica's vote for this one)
// cannot fake an ack. Callers hold memMu (read for ops, write for
// reconfiguration).
//
// When early is non-nil, the collection returns as soon as early(votes)
// reports the outcome decidable instead of waiting for every replica's
// reply — so one hung peer adds nothing to the operation's latency
// instead of its full transport deadline. The returned late channel
// (non-nil only after an early return) carries the outstanding votes;
// senders write into a fully buffered channel and can never block, so a
// caller may simply drop it. Callers that fail (no early return) always
// see the complete vote set.
func (g *Group) broadcastLocked(members map[string]transport.Address, kind string, payload []byte, nonce uint64, replyKind int, early func([]vote) bool) (votes []vote, late <-chan vote) {
	ch := make(chan vote, len(members))
	o := g.obs.Load()
	for id, addr := range members {
		g.pending.Add(1)
		go func(id string, addr transport.Address) {
			defer g.pending.Done()
			if o != nil {
				// Per-replica vote telemetry feeds the quorum health
				// detector: latency skew singles out a browning-out
				// replica, error counts surface lagging/unsynced ones.
				start := time.Now()
				defer func() {
					o.M().ObserveSince("quorum.vote.latency."+g.name+"."+id, start)
				}()
			}
			v := vote{id: id}
			sealed, err := g.sealer.Seal(payload, aadReq(kind, id))
			if err == nil {
				var raw []byte
				raw, err = g.msgr.Send(g.addr, addr, kind, sealed)
				if err == nil {
					raw, err = g.sealer.Open(raw, aadRep(kind, id))
				}
				if err == nil {
					switch replyKind {
					case replySnap:
						v.snap, err = decodeSyncMessage(raw)
						if err == nil && v.snap.Nonce != nonce {
							v.snap, err = nil, fmt.Errorf("%w: stale snapshot reply", ErrBadAuth)
						}
					case replyEscrow:
						v.esc, err = decodeEscrowReply(raw)
						if err == nil && v.esc.Nonce != nonce {
							v.esc, err = nil, fmt.Errorf("%w: stale escrow reply", ErrBadAuth)
						}
					default:
						v.reply, err = decodeOpReply(raw)
						if err == nil && v.reply.Nonce != nonce {
							v.reply, err = nil, fmt.Errorf("%w: stale vote", ErrBadAuth)
						}
					}
				}
			}
			v.err = err
			if err != nil && o != nil {
				o.M().Add("quorum.vote.errors."+g.name+"."+id, 1)
			}
			ch <- v
		}(id, addr)
	}
	votes = make([]vote, 0, len(members))
	for i := 0; i < len(members); i++ {
		votes = append(votes, <-ch)
		if early != nil && early(votes) && i+1 < len(members) {
			return votes, ch
		}
	}
	return votes, nil
}

// successRule is the early-return predicate of a quorum op: the outcome
// is decidably successful once a majority acked (with at least one OK
// when gone counts as an ack). Failure is never decided early — refusals
// and transport errors wait for the full vote set, because a late ack can
// still flip a refusal into ErrNoQuorum (the minority-refusal rule) and,
// on destroys, a late OK carries a final value that must reach
// destroyFinals. Success is safe to decide early by quorum intersection:
// any committed (or read-observed, hence read-repaired onto a majority)
// value lives on f+1 replicas, so the maximum over ANY f+1 acks already
// includes it.
func (g *Group) successRule(goneIsAck bool) func([]vote) bool {
	q := g.Quorum()
	return func(votes []vote) bool {
		oks, gones := 0, 0
		for i := range votes {
			v := &votes[i]
			if v.err != nil || v.reply == nil {
				continue
			}
			if v.reply.Status == statusOK {
				oks++
			} else if goneIsAck && v.reply.Status == statusGone {
				gones++
			}
		}
		return oks >= 1 && oks+gones >= q
	}
}

// Quiesce waits for background broadcast work: straggler votes still in
// flight after an early-quorum return and the read-repairs driven by
// them. Operators and tests call it to observe a settled group; normal
// operation never needs to.
func (g *Group) Quiesce() { g.pending.Wait() }

// tally reduces op votes to quorum semantics: success when a majority
// acked (value = max over acks, covering stragglers that missed earlier
// increments), the replicas' common refusal when a majority responded
// without acking, ErrNoQuorum when too few responded at all.
//
// goneIsAck lets a destroy retry complete: a replica that already
// dropped the counter in an earlier partial attempt votes statusGone,
// which counts toward the quorum — but only alongside at least one
// statusOK vote from a replica that performed the destroy now. With no
// OK vote at all the counter is simply gone (destroyed earlier), and the
// operation reports ErrCounterNotFound exactly like pse.Service would —
// a second freeze of a forked enclave must fail, not succeed with a
// zero capture.
func (g *Group) tally(votes []vote, goneIsAck bool) (uint32, error) {
	oks, gones, responses := 0, 0, 0
	var maxV uint32
	badCount := make(map[byte]int)
	for _, v := range votes {
		if v.err != nil || v.reply == nil {
			continue
		}
		responses++
		st := v.reply.Status
		if st == statusOK {
			oks++
			if v.reply.Value > maxV {
				maxV = v.reply.Value
			}
			continue
		}
		if goneIsAck && st == statusGone {
			gones++
			continue
		}
		badCount[st]++
	}
	if oks >= 1 && oks+gones >= g.Quorum() {
		return maxV, nil
	}
	if responses >= g.Quorum() && oks == 0 {
		// A majority answered and not one replica acked: the refusal is
		// authoritative (e.g. every responder reports the counter
		// destroyed). Report the dominant reason. All-Gone lands here
		// too (gones were not counted as refusals in badCount, so fold
		// them back in).
		badCount[statusGone] += gones
		worst, n := byte(0), 0
		for st, c := range badCount {
			if c > n || (c == n && st > worst) {
				worst, n = st, c
			}
		}
		return 0, statusErr(worst)
	}
	// Mixed votes (some acks, but not a quorum): never promote a
	// minority's refusal to an authoritative answer — a straggler that
	// missed a committed create votes not-found for a perfectly live
	// counter. Fail safe as unavailable instead.
	return 0, fmt.Errorf("%w: %d acks among %d responses from %d replicas, need %d",
		ErrNoQuorum, oks+gones, responses, len(votes), g.Quorum())
}

// statusErr maps a replica refusal onto the pse error a single-machine
// counter service would return.
func statusErr(st byte) error {
	switch st {
	case statusNotFound, statusGone:
		return pse.ErrCounterNotFound
	case statusNotOwner:
		return pse.ErrNotOwner
	case statusOverflow:
		return pse.ErrCounterOverflow
	case statusLimit:
		return pse.ErrCounterLimit
	default:
		return fmt.Errorf("%w: unrecognized replica refusal %d", ErrNoQuorum, st)
	}
}

// quorumOp stamps one operation with a fresh nonce, broadcasts it, and
// applies the quorum tally, returning as soon as the success tally is
// decidable. A replayed request at a replica can at most over-advance a
// counter (like a firmware retry after a lost ack) — never regress one —
// so requests need no dedup state replica-side; the nonce's job is making
// the votes unforgeable.
func (g *Group) quorumOp(m *opMessage, goneIsAck bool) (uint32, error) {
	nonce, err := newNonce()
	if err != nil {
		return 0, err
	}
	m.Nonce = nonce
	g.memMu.RLock()
	defer g.memMu.RUnlock()
	votes, _ := g.broadcastLocked(g.members, kindOp, m.encode(), nonce, replyOp, g.successRule(goneIsAck))
	return g.tally(votes, goneIsAck)
}

// Create allocates a fresh replicated monotonic counter for the calling
// enclave with initial value 0, committing it on a majority of replicas
// (the enclave path over AdminCreate).
func (g *Group) Create(e *sgx.Enclave) (pse.UUID, uint32, error) {
	if err := e.ECall(); err != nil {
		return pse.UUID{}, 0, err
	}
	uuid, err := g.AdminCreate(e.MREnclave())
	return uuid, 0, err
}

// Increment adds one to the counter, committing on a majority, and
// returns the new value.
func (g *Group) Increment(e *sgx.Enclave, uuid pse.UUID) (uint32, error) {
	return g.IncrementN(e, uuid, 1)
}

// IncrementN adds n to the counter in one replicated transaction,
// committing on a majority, and returns the new value. Increments on one
// counter are coordinator-serialized (unique results, like the serial
// firmware), and the returned value is confirmed durable: at least a
// majority of replicas holds it before the call returns, so no single
// (≤f) failure can make a returned value unobservable again.
func (g *Group) IncrementN(e *sgx.Enclave, uuid pse.UUID, n int) (uint32, error) {
	if n < 1 {
		return 0, fmt.Errorf("%w: %d", pse.ErrBadIncrement, n)
	}
	if uint64(n) > uint64(^uint32(0)) {
		return 0, pse.ErrCounterOverflow
	}
	if err := e.ECall(); err != nil {
		return 0, err
	}
	defer g.opSpan("quorum.increment").End()
	mu := &g.incrMu[uuid.ID%uint32(len(g.incrMu))]
	mu.Lock()
	defer mu.Unlock()
	return g.commitOp(&opMessage{Op: opIncrement, UUID: uuid, Owner: e.MREnclave(), N: uint32(n)})
}

// Read returns the counter value: the maximum a majority of replicas
// reports, which by quorum intersection includes every committed
// increment. Before returning, stragglers among the ack set are
// read-repaired up to the returned value, so a value once observed —
// including one applied by a partial, quorum-failed increment — stays
// observable by every later majority: reads are monotonic, not just
// never below the committed value.
func (g *Group) Read(e *sgx.Enclave, uuid pse.UUID) (uint32, error) {
	if err := e.ECall(); err != nil {
		return 0, err
	}
	return g.commitOp(&opMessage{Op: opRead, UUID: uuid, Owner: e.MREnclave()})
}

// Inspect is the operator/monitoring read: it returns the quorum value
// of a counter given its full UUID (the nonce capability) and owner
// identity, without requiring the owning enclave to be alive — how an
// operator verifies that a counter survived its machine.
func (g *Group) Inspect(owner sgx.Measurement, uuid pse.UUID) (uint32, error) {
	return g.commitOp(&opMessage{Op: opRead, UUID: uuid, Owner: owner})
}

// AdminCreate allocates a replicated counter on behalf of the named
// owner identity without the owning enclave being present — the create
// protocol shared by the enclave path (Create) and the provisioning
// primitive of escrow mirroring, where a partner rack creates shadow
// counters for enclaves that live (or lived) in the peer data center.
// The counter is indistinguishable from one the owner created itself:
// the owner identity and the UUID nonce capability are enforced
// replica-side exactly the same way.
func (g *Group) AdminCreate(owner sgx.Measurement) (pse.UUID, error) {
	defer g.opSpan("quorum.create").End()
	g.ownerMu.Lock()
	// The group's capacity is one facility's worth of counters shared by
	// the whole rack (every replica backs them under its single agent
	// identity), so the total is bounded like the per-owner budget.
	if g.total >= pse.MaxCounters || g.perOwner[owner] >= pse.MaxCounters {
		g.ownerMu.Unlock()
		return pse.UUID{}, pse.ErrCounterLimit
	}
	g.total++
	g.perOwner[owner]++
	g.ownerMu.Unlock()
	release := func() {
		g.ownerMu.Lock()
		g.total--
		g.perOwner[owner]--
		if g.perOwner[owner] == 0 {
			delete(g.perOwner, owner)
		}
		g.ownerMu.Unlock()
	}
	id := g.nextID.Add(1)
	if id > uint64(^uint32(0)) {
		release()
		return pse.UUID{}, pse.ErrIDsExhausted
	}
	nonce, err := xcrypto.RandomBytes(16)
	if err != nil {
		release()
		return pse.UUID{}, fmt.Errorf("counter nonce: %w", err)
	}
	m := &opMessage{Op: opCreate, Owner: owner}
	m.UUID.ID = uint32(id)
	copy(m.UUID.Nonce[:], nonce)
	if _, err := g.quorumOp(m, false); err != nil {
		// Partial creates on a minority are rolled back best-effort, and
		// the ID is recorded as aborted: snapshot merges treat it as a
		// tombstone, so a ghost entry the rollback missed is destroyed by
		// the holding replica's next reseed instead of propagating.
		m.Op = opDestroyRead
		_, _ = g.quorumOp(m, true)
		g.recoverMu.Lock()
		g.aborted[m.UUID.ID] = struct{}{}
		g.recoverMu.Unlock()
		release()
		return pse.UUID{}, fmt.Errorf("replicated create: %w", err)
	}
	return m.UUID, nil
}

// AdminAdvance raises the counter to at least v on a quorum (forward-
// only, idempotent — the mirror's value-synchronization primitive, the
// same opAdvance read-repair uses). It can never lower a counter, and a
// replica that missed the counter's create installs it from the carried
// capability, so replaying or repeating an advance is harmless. Returns
// the quorum value after the advance.
func (g *Group) AdminAdvance(owner sgx.Measurement, uuid pse.UUID, v uint32) (uint32, error) {
	return g.commitOp(&opMessage{Op: opAdvance, UUID: uuid, Owner: owner, N: v})
}

// AdminDestroy destroys a counter on behalf of the named owner without
// the owning enclave: the operator-grade destroy behind escrow
// decommissioning and federation revocation (a cross-DC recovery
// consumes the origin site's binding counter through it). Semantics are
// exactly DestroyAndRead's: coordinator-serialized, sticky, and the
// returned final value folds in finals remembered from partial attempts.
func (g *Group) AdminDestroy(owner sgx.Measurement, uuid pse.UUID) (uint32, error) {
	return g.destroyQuorum(owner, uuid)
}

// addInflight marks replicas with a relative apply still in flight.
func (g *Group) addInflight(id uint32, replicas []string) {
	if len(replicas) == 0 {
		return
	}
	g.inflightMu.Lock()
	per := g.inflight[id]
	if per == nil {
		per = make(map[string]int)
		g.inflight[id] = per
	}
	for _, r := range replicas {
		per[r]++
	}
	g.inflightMu.Unlock()
}

// clearInflight retires one in-flight apply (its straggler vote drained).
func (g *Group) clearInflight(id uint32, replica string) {
	g.inflightMu.Lock()
	if per := g.inflight[id]; per != nil {
		if per[replica] > 1 {
			per[replica]--
		} else {
			delete(per, replica)
			if len(per) == 0 {
				delete(g.inflight, id)
			}
		}
	}
	g.inflightMu.Unlock()
}

// hasInflight reports whether a replica has relative applies in flight
// for the counter (read-repair must leave it alone).
func (g *Group) hasInflight(id uint32, replica string) bool {
	g.inflightMu.Lock()
	defer g.inflightMu.Unlock()
	per := g.inflight[id]
	return per != nil && per[replica] > 0
}

// commitOp is the shared commit sequence of reads and increments: stamp
// a fresh nonce, broadcast, tally — returning as soon as a quorum of acks
// makes the result decidable — and confirm the result durable on a
// majority (repairing stragglers) before returning it. Votes that arrive
// after an early return are drained in the background and read-repaired
// the same way, so the healing the full-wait collection performed still
// happens; it just no longer sits on the caller's latency path
// (Quiesce observes its completion).
func (g *Group) commitOp(m *opMessage) (uint32, error) {
	nonce, err := newNonce()
	if err != nil {
		return 0, err
	}
	m.Nonce = nonce
	g.memMu.RLock()
	members := make(map[string]transport.Address, len(g.members))
	for id, addr := range g.members {
		members[id] = addr
	}
	if m.Op == opIncrement {
		// Register every replica's +n apply as in flight BEFORE the
		// broadcast, so no concurrent read-repair can land an absolute
		// advance under a relative apply (which would double-count this
		// increment). Responders are cleared as their votes arrive;
		// stragglers clear when repairLate/drainLate drains them.
		all := make([]string, 0, len(members))
		for id := range members {
			all = append(all, id)
		}
		g.addInflight(m.UUID.ID, all)
	}
	votes, late := g.broadcastLocked(members, kindOp, m.encode(), nonce, replyOp, g.successRule(false))
	g.memMu.RUnlock()
	if m.Op == opIncrement {
		for i := range votes {
			g.clearInflight(m.UUID.ID, votes[i].id)
		}
	}
	v, err := g.tally(votes, false)
	if err != nil {
		g.drainLate(m, late, len(members)-len(votes))
		return 0, err
	}
	if err := g.confirmDurable(m, votes, v); err != nil {
		// The late channel is handed to exactly one drainer: from here on
		// drainLate owns it (repairLate must not also consume it — each
		// straggler vote is sent once).
		g.drainLate(m, late, len(members)-len(votes))
		if !g.counterInflight(m.UUID.ID) {
			return 0, err
		}
		// The shortfall involves replicas whose relative applies are
		// still in flight: they could not be counted (unrepairable
		// without double-counting) but WILL converge on their own. Wait
		// for the applies to land, then re-confirm v durable.
		if err := g.awaitConverged(m, v); err != nil {
			return 0, err
		}
		return v, nil
	}
	g.repairLate(m, late, len(members)-len(votes), v)
	return v, nil
}

// counterInflight reports whether any replica has relative applies in
// flight for the counter.
func (g *Group) counterInflight(id uint32) bool {
	g.inflightMu.Lock()
	defer g.inflightMu.Unlock()
	return len(g.inflight[id]) > 0
}

// awaitConverged waits for a counter's in-flight relative applies to
// land (they clear as straggler votes drain), then re-reads the quorum
// and confirms v durable on a majority. Used when a commit's durability
// check fell short only because repairs had to skip converging
// replicas; v stays the operation's result, so increment results remain
// unique.
func (g *Group) awaitConverged(m *opMessage, v uint32) error {
	deadline := time.Now().Add(30 * time.Second)
	for g.counterInflight(m.UUID.ID) && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	rd := &opMessage{Op: opRead, UUID: m.UUID, Owner: m.Owner}
	nonce, err := newNonce()
	if err != nil {
		return err
	}
	rd.Nonce = nonce
	g.memMu.RLock()
	votes, _ := g.broadcastLocked(g.members, kindOp, rd.encode(), nonce, replyOp, nil)
	g.memMu.RUnlock()
	if _, err := g.tally(votes, false); err != nil {
		return err
	}
	return g.confirmDurable(rd, votes, v)
}

// confirmDurable makes the value an operation is about to return
// majority-durable: ack-set members that reported below v are advanced
// up to it (forward-only read-repair), and unless at least a quorum of
// replicas then holds v, the operation reports ErrNoQuorum instead of
// returning a value a single ≤f failure could make unobservable. The
// common case — all ackers already agree on v — confirms without any
// extra round trip.
func (g *Group) confirmDurable(m *opMessage, votes []vote, v uint32) error {
	confirmed := 0
	var lagging []string
	for _, vt := range votes {
		if vt.err != nil || vt.reply == nil {
			continue
		}
		switch {
		case vt.reply.Status == statusOK && vt.reply.Value >= v:
			confirmed++
		case vt.reply.Status == statusOK:
			// A replica lagging only because its relative applies are
			// still in flight must not be advanced (the apply would land
			// on top and double-count); its own applies will carry it to
			// v. It counts as neither confirmed nor repairable.
			if !g.hasInflight(m.UUID.ID, vt.id) {
				lagging = append(lagging, vt.id)
			}
		case vt.reply.Status == statusNotFound:
			// The replica missed the committed create entirely; the
			// repair installs the slot (opAdvance carries the full
			// capability), so the group heals back to full replication
			// instead of silently running one replica short.
			lagging = append(lagging, vt.id)
		}
	}
	if confirmed >= g.Quorum() && len(lagging) == 0 {
		return nil
	}
	for _, vt := range g.advanceSubset(m, lagging, v) {
		if vt.err == nil && vt.reply != nil && vt.reply.Status == statusOK && vt.reply.Value >= v {
			confirmed++
		}
	}
	if confirmed < g.Quorum() {
		return fmt.Errorf("%w: value %d confirmed on %d replicas, need %d",
			ErrNoQuorum, v, confirmed, g.Quorum())
	}
	return nil
}

// advanceSubset read-repairs the named members up to v for m's counter
// (forward-only, idempotent) and returns their votes.
func (g *Group) advanceSubset(m *opMessage, ids []string, v uint32) []vote {
	if len(ids) == 0 {
		return nil
	}
	adv := &opMessage{Op: opAdvance, UUID: m.UUID, Owner: m.Owner, N: v}
	nonce, err := newNonce()
	if err != nil {
		return nil
	}
	adv.Nonce = nonce
	g.memMu.RLock()
	subset := make(map[string]transport.Address, len(ids))
	for _, id := range ids {
		if addr, ok := g.members[id]; ok {
			subset[id] = addr
		}
	}
	repairs, _ := g.broadcastLocked(subset, kindOp, adv.encode(), nonce, replyOp, nil)
	g.memMu.RUnlock()
	return repairs
}

// repairLate drains the votes outstanding after an early-quorum return
// and read-repairs stragglers that answered below the returned value (or
// missed the counter's create entirely) — the same healing the full-wait
// collection performed, off the caller's latency path. Draining also
// retires the inflight registrations of an early-returned increment: a
// straggler's vote arriving means its apply has landed.
func (g *Group) repairLate(m *opMessage, late <-chan vote, remaining int, v uint32) {
	if late == nil || remaining <= 0 {
		return
	}
	g.pending.Add(1)
	go func() {
		defer g.pending.Done()
		var lagging []string
		for i := 0; i < remaining; i++ {
			vt := <-late
			if m.Op == opIncrement {
				g.clearInflight(m.UUID.ID, vt.id)
			}
			if vt.err != nil || vt.reply == nil {
				continue
			}
			if vt.reply.Status == statusNotFound ||
				(vt.reply.Status == statusOK && vt.reply.Value < v &&
					!g.hasInflight(m.UUID.ID, vt.id)) {
				lagging = append(lagging, vt.id)
			}
		}
		g.advanceSubset(m, lagging, v)
	}()
}

// drainLate consumes outstanding votes on an error path, clearing
// inflight registrations without attempting repairs.
func (g *Group) drainLate(m *opMessage, late <-chan vote, remaining int) {
	if late == nil || remaining <= 0 {
		return
	}
	g.pending.Add(1)
	go func() {
		defer g.pending.Done()
		for i := 0; i < remaining; i++ {
			vt := <-late
			if m.Op == opIncrement {
				g.clearInflight(m.UUID.ID, vt.id)
			}
		}
	}()
}

// Destroy permanently removes a replicated counter.
func (g *Group) Destroy(e *sgx.Enclave, uuid pse.UUID) error {
	_, err := g.DestroyAndRead(e, uuid)
	return err
}

// DestroyAndRead destroys the counter on a majority of replicas and
// returns the maximum final value reported. Like the firmware
// primitive, the destroy is sticky: once a majority has dropped the
// counter, no operation on its UUID can ever succeed again, and a
// minority replica that still holds it is cleaned up on its next reseed.
//
// A destroy that fails its quorum may still have dropped the counter on
// the replicas that acked — and their finals may be the only copies of
// the latest committed increments. Those finals are remembered and
// folded into the retry's result, so the capture a migration freeze
// records never regresses below an acknowledged increment (R4) even
// when the retry's own acks come from stragglers.
func (g *Group) DestroyAndRead(e *sgx.Enclave, uuid pse.UUID) (uint32, error) {
	if err := e.ECall(); err != nil {
		return 0, err
	}
	return g.destroyQuorum(e.MREnclave(), uuid)
}

// destroyQuorum is the quorum destroy shared by DestroyAndRead (enclave
// path) and AdminDestroy (operator path).
func (g *Group) destroyQuorum(owner sgx.Measurement, uuid pse.UUID) (uint32, error) {
	defer g.opSpan("quorum.destroy-read").End()
	g.destroyMu.Lock()
	defer g.destroyMu.Unlock()
	nonce, err := newNonce()
	if err != nil {
		return 0, err
	}
	// Destroys never return early: destruction must be sticky the moment
	// the call returns (an op racing a straggler's late destroy-apply
	// would see a live counter), and the finals bookkeeping above needs
	// every OK vote. One hung peer costing a rare, once-per-lifetime
	// destroy its transport deadline is the right trade; the hot ops
	// (create/increment/read/escrow) are the ones that return on quorum.
	m := &opMessage{Op: opDestroyRead, UUID: uuid, Owner: owner, Nonce: nonce}
	g.memMu.RLock()
	votes, _ := g.broadcastLocked(g.members, kindOp, m.encode(), nonce, replyOp, nil)
	g.memMu.RUnlock()
	g.recoverMu.Lock()
	for _, vt := range votes {
		if vt.err == nil && vt.reply != nil && vt.reply.Status == statusOK {
			if cur, ok := g.destroyFinals[uuid.ID]; !ok || vt.reply.Value > cur {
				g.destroyFinals[uuid.ID] = vt.reply.Value
			}
		}
	}
	remembered, hadPartial := g.destroyFinals[uuid.ID]
	g.recoverMu.Unlock()
	v, err := g.tally(votes, true)
	if err != nil {
		return 0, err
	}
	if hadPartial && remembered > v {
		v = remembered
	}
	g.recoverMu.Lock()
	delete(g.destroyFinals, uuid.ID)
	g.recoverMu.Unlock()
	g.ownerMu.Lock()
	if g.perOwner[owner] > 0 {
		g.total--
		g.perOwner[owner]--
		if g.perOwner[owner] == 0 {
			delete(g.perOwner, owner)
		}
	}
	g.ownerMu.Unlock()
	return v, nil
}

// TotalLive returns the number of live replicated counters in the group.
func (g *Group) TotalLive() int {
	g.ownerMu.Lock()
	defer g.ownerMu.Unlock()
	return g.total
}

// Count returns the number of live replicated counters owned by the
// given identity.
func (g *Group) Count(owner sgx.Measurement) int {
	g.ownerMu.Lock()
	defer g.ownerMu.Unlock()
	return g.perOwner[owner]
}

// collectLocked gathers snapshots from the given members and merges them
// into a per-counter maximum, requiring at least minResponses snapshots.
// Callers hold memMu for writing.
func (g *Group) collectLocked(members map[string]transport.Address, minResponses int) (*syncMessage, error) {
	nonce, err := newNonce()
	if err != nil {
		return nil, err
	}
	req := (&opMessage{Op: opSnapshot, Nonce: nonce}).encode()
	// Reconfiguration snapshots always wait for every member: missing a
	// slow replica's higher value here would seed the target low (still
	// forward-only, but needlessly behind), and reseeds/handoffs are rare
	// enough to pay the full deadline.
	votes, _ := g.broadcastLocked(members, kindOp, req, nonce, replySnap, nil)
	merged := &syncMessage{Next: g.nextID.Load()}
	byID := make(map[uint32]*syncEntry)
	dead := make(map[uint32]bool)
	escBest := make(map[escrowKey]*escrowEntry)
	responses := 0
	for _, v := range votes {
		if v.err != nil || v.snap == nil {
			continue
		}
		responses++
		if v.snap.Next > merged.Next {
			merged.Next = v.snap.Next
		}
		for i := range v.snap.Entries {
			e := v.snap.Entries[i]
			if cur, ok := byID[e.UUID.ID]; ok {
				if e.Value > cur.Value {
					cur.Value = e.Value
				}
			} else {
				byID[e.UUID.ID] = &e
			}
		}
		for _, id := range v.snap.Tombstones {
			dead[id] = true
		}
		for i := range v.snap.Escrows {
			e := &v.snap.Escrows[i]
			k := escrowKey{owner: e.Owner, id: e.ID}
			if cur, ok := escBest[k]; !ok || e.Version > cur.Version {
				escBest[k] = e
			}
		}
	}
	if responses < minResponses {
		return nil, fmt.Errorf("%w: %d snapshot responses, need %d", ErrNoQuorum, responses, minResponses)
	}
	// Aborted creates count as tombstones too: a ghost entry their
	// rollback missed must be destroyed by the reseed target, not
	// re-propagated as live state.
	g.recoverMu.Lock()
	for id := range g.aborted {
		dead[id] = true
	}
	g.recoverMu.Unlock()
	for id, e := range byID {
		// A tombstone from any replica outranks a live entry from a
		// stale one: destruction is sticky.
		if !dead[id] {
			merged.Entries = append(merged.Entries, *e)
		}
	}
	for id := range dead {
		merged.Tombstones = append(merged.Tombstones, id)
	}
	for _, e := range escBest {
		merged.Escrows = append(merged.Escrows, *e)
	}
	sort.Slice(merged.Entries, func(i, j int) bool { return merged.Entries[i].UUID.ID < merged.Entries[j].UUID.ID })
	sort.Slice(merged.Tombstones, func(i, j int) bool { return merged.Tombstones[i] < merged.Tombstones[j] })
	sort.Slice(merged.Escrows, func(i, j int) bool {
		a, b := &merged.Escrows[i], &merged.Escrows[j]
		if a.Owner != b.Owner {
			return string(a.Owner[:]) < string(b.Owner[:])
		}
		return string(a.ID[:]) < string(b.ID[:])
	})
	return merged, nil
}

// Reseed re-seeds a member replica that rejoined after a machine restart
// from the rest of the group, then lets it serve again. It needs
// snapshots from at least f of the other members: together with the
// rejoining replica's own durable state that covers f+1 replicas, and
// every committed operation lives on at least f+1, so none can be
// missed. Values only move forward on the target, so a reseed can never
// regress a counter. Reconfiguration holds the membership lock, so no
// commit is in flight while the snapshot is taken.
func (g *Group) Reseed(id string) error {
	g.memMu.Lock()
	defer g.memMu.Unlock()
	target, ok := g.members[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownReplica, id)
	}
	others := make(map[string]transport.Address, len(g.members)-1)
	for mid, addr := range g.members {
		if mid != id {
			others[mid] = addr
		}
	}
	snap, err := g.collectLocked(others, g.f)
	if err != nil {
		return fmt.Errorf("reseed %s: %w", id, err)
	}
	if err := g.seedReplica(target, id, snap); err != nil {
		return fmt.Errorf("reseed %s: %w", id, err)
	}
	return nil
}

// ErrEscrowNotFound reports an escrow lookup for which no quorum member
// holds a record.
var ErrEscrowNotFound = errors.New("pserepl: no escrowed state for this enclave instance")

// ErrEscrowDecommissioned reports a lookup of an escrow record the
// operator has tombstoned (Decommission): the instance is terminated
// for good and can never be resurrected.
var ErrEscrowDecommissioned = errors.New("pserepl: escrow record decommissioned")

// ErrEscrowSuperseded reports a put refused by a quorum because a newer
// record is already stored (a lost race with a recovery's re-escrow or
// a decommission tombstone).
var ErrEscrowSuperseded = errors.New("pserepl: escrow record superseded on a quorum")

// EscrowTombstoneVersion is the version a decommission tombstone is
// stored at: it dominates every real version (libraries advance their
// binding from 0 one persist at a time and can never reach it), so the
// store's ordinary forward-only supersede rule makes the tombstone
// permanent — it rides snapshots, reseeds, and handoffs like any other
// record, and no later put can displace it.
const EscrowTombstoneVersion = ^uint32(0)

// EscrowSealer returns the rack escrow key's statesealer, provisioned to
// enclaves on rack-associated machines at launch (the cloud layer's
// secure setup phase, like Migration Enclave credentials).
func (g *Group) EscrowSealer() *seal.StateSealer { return g.escrowSealer }

// SetEscrowObserver installs a hook called after every successfully
// committed escrow put (including tombstones), with the record's owner,
// instance ID, and version. The federation mirror uses it to learn which
// records changed and re-push them to the partner site asynchronously;
// the hook runs on the putter's goroutine and must only enqueue.
func (g *Group) SetEscrowObserver(fn func(owner sgx.Measurement, id [16]byte, version uint32)) {
	g.recoverMu.Lock()
	g.escrowObs = fn
	g.recoverMu.Unlock()
}

// SetEscrowAuditor installs a second, independent hook on committed
// escrow puts, alongside the observer: the chaos invariant checker uses
// it to record every committed (owner, id, version) without displacing
// the federation mirror, which holds the observer slot on mirrored
// groups. Same contract as the observer: runs on the putter's goroutine,
// must only record.
func (g *Group) SetEscrowAuditor(fn func(owner sgx.Measurement, id [16]byte, version uint32)) {
	g.recoverMu.Lock()
	g.escrowAud = fn
	g.recoverMu.Unlock()
}

// notifyEscrow invokes the escrow observer and auditor, if any.
func (g *Group) notifyEscrow(owner sgx.Measurement, id [16]byte, version uint32) {
	g.recoverMu.Lock()
	fn, aud := g.escrowObs, g.escrowAud
	g.recoverMu.Unlock()
	if fn != nil {
		fn(owner, id, version)
	}
	if aud != nil {
		aud(owner, id, version)
	}
}

// EscrowTombstone permanently decommissions an escrow record on the
// quorum: a nil-blob entry at EscrowTombstoneVersion supersedes every
// real version and is carried through snapshots and reseeds like any
// record, so the instance can never be resurrected from this store
// again. Lookups of a tombstoned instance report ErrEscrowDecommissioned.
func (g *Group) EscrowTombstone(owner sgx.Measurement, id [16]byte) error {
	return g.escrowCommit(&escrowEntry{Owner: owner, ID: id, Version: EscrowTombstoneVersion})
}

// EscrowPut stores one enclave instance's escrow record on the rack,
// committing it on a quorum of replicas (core.StateEscrow). Replicas
// supersede strictly by version, so the store itself is forward-only; a
// put refused as stale everywhere means a newer record is already
// escrowed (a lost race with a recovery's re-escrow).
func (g *Group) EscrowPut(owner sgx.Measurement, id [16]byte, version uint32, bind pse.UUID, blob []byte) error {
	if version == EscrowTombstoneVersion {
		return fmt.Errorf("pserepl: version %d is reserved for decommission tombstones", version)
	}
	return g.escrowCommit(&escrowEntry{Owner: owner, ID: id, Version: version, Bind: bind, Blob: blob})
}

// escrowCommit commits one escrow entry (record or tombstone) on a
// quorum and notifies the escrow observer on success.
func (g *Group) escrowCommit(entry *escrowEntry) error {
	defer g.opSpan("quorum.escrow-put").End()
	nonce, err := newNonce()
	if err != nil {
		return err
	}
	m := &escrowMessage{
		Op:    escrowPut,
		Entry: *entry,
		Nonce: nonce,
	}
	q := g.Quorum()
	early := func(votes []vote) bool {
		oks := 0
		for i := range votes {
			if votes[i].esc != nil && votes[i].esc.Status == statusOK {
				oks++
			}
		}
		return oks >= q
	}
	g.memMu.RLock()
	votes, _ := g.broadcastLocked(g.members, kindEscrow, m.encode(), nonce, replyEscrow, early)
	g.memMu.RUnlock()
	oks, stales := 0, 0
	for i := range votes {
		if votes[i].esc == nil {
			continue
		}
		switch votes[i].esc.Status {
		case statusOK:
			oks++
		case statusStale:
			stales++
		}
	}
	if oks >= q {
		if entry.Version == EscrowTombstoneVersion {
			g.obs.Load().Event(obs.EventEscrowTombstone, "group:"+g.name,
				fmt.Sprintf("escrow %x decommissioned", entry.ID[:4]), obs.TraceContext{})
		}
		g.notifyEscrow(entry.Owner, entry.ID, entry.Version)
		return nil
	}
	if stales >= q {
		g.obs.Load().Event(obs.EventEscrowSupersede, "group:"+g.name,
			fmt.Sprintf("escrow %x put at version %d refused: superseded by a newer record", entry.ID[:4], entry.Version),
			obs.TraceContext{})
		return fmt.Errorf("%w: version %d", ErrEscrowSuperseded, entry.Version)
	}
	return fmt.Errorf("%w: escrow put acked by %d of %d replicas, need %d",
		ErrNoQuorum, oks, len(votes), q)
}

// EscrowGet fetches the highest-version escrow record a quorum of
// replicas holds for the instance (core.StateEscrow). By quorum
// intersection the result includes the newest committed record; a newer
// partially-stored record (its put failed mid-quorum) may be returned
// too, which is exactly right — the binding counter already advanced to
// its version, so only it can win a recovery.
func (g *Group) EscrowGet(owner sgx.Measurement, id [16]byte) (uint32, pse.UUID, []byte, error) {
	defer g.opSpan("quorum.escrow-get").End()
	nonce, err := newNonce()
	if err != nil {
		return 0, pse.UUID{}, nil, err
	}
	m := &escrowMessage{Op: escrowGet, Entry: escrowEntry{Owner: owner, ID: id}, Nonce: nonce}
	q := g.Quorum()
	early := func(votes []vote) bool {
		responses := 0
		for i := range votes {
			if votes[i].esc != nil {
				responses++
			}
		}
		return responses >= q
	}
	g.memMu.RLock()
	votes, _ := g.broadcastLocked(g.members, kindEscrow, m.encode(), nonce, replyEscrow, early)
	g.memMu.RUnlock()
	responses := 0
	var best *escrowEntry
	for i := range votes {
		e := votes[i].esc
		if e == nil {
			continue
		}
		responses++
		if e.Status == statusOK && (best == nil || e.Entry.Version > best.Version) {
			best = &votes[i].esc.Entry
		}
	}
	if responses < q {
		return 0, pse.UUID{}, nil, fmt.Errorf("%w: %d escrow responses, need %d",
			ErrNoQuorum, responses, q)
	}
	if best == nil {
		return 0, pse.UUID{}, nil, ErrEscrowNotFound
	}
	if best.Blob == nil {
		// A decommission tombstone: the record is gone for good, not
		// merely absent.
		return 0, pse.UUID{}, nil, ErrEscrowDecommissioned
	}
	return best.Version, best.Bind, best.Blob, nil
}

// Handoff transfers the replica role of member oldID to the fresh
// replica newRep (drain path: the old machine leaves the rack). The new
// replica starts empty, so the snapshot needs a full majority (f+1) of
// the current members; it is seeded with the quorum's maxima and swapped
// in atomically with respect to commits (the membership lock is held
// throughout). The caller retires the old replica afterwards.
func (g *Group) Handoff(oldID string, newRep *Replica) error {
	g.memMu.Lock()
	defer g.memMu.Unlock()
	if _, ok := g.members[oldID]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownReplica, oldID)
	}
	if _, dup := g.members[newRep.ID()]; dup {
		return fmt.Errorf("%w: %q already a member", ErrBadReplication, newRep.ID())
	}
	snap, err := g.collectLocked(g.members, g.Quorum())
	if err != nil {
		return fmt.Errorf("handoff %s->%s: %w", oldID, newRep.ID(), err)
	}
	newRep.join(g.sealer)
	if err := g.seedReplica(newRep.Address(), newRep.ID(), snap); err != nil {
		return fmt.Errorf("handoff %s->%s: %w", oldID, newRep.ID(), err)
	}
	delete(g.members, oldID)
	g.members[newRep.ID()] = newRep.Address()
	return nil
}
