// Package vm models virtual machines and live migration (paper §II-B):
// a hypervisor per physical machine, VMs whose memory pages are copied to
// the destination during live migration, and the central constraint that
// enclaves are NOT copied — the migration process cannot read the EPC, so
// enclaves attached to a migrated VM are destroyed and must be recreated
// on the destination through an SGX-aware mechanism (internal/core).
//
// The page-copy cost model feeds the §VII-B comparison: copying a VM's
// memory takes on the order of seconds, against which the migration
// framework's ~half-second enclave overhead is small.
package vm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/sgx"
	"repro/internal/sim"
)

// PageSize is the VM memory page granularity.
const PageSize = 4096

// VM errors.
var (
	ErrVMExists   = errors.New("vm: vm already exists")
	ErrVMNotFound = errors.New("vm: vm not found")
	ErrVMStopped  = errors.New("vm: vm is stopped")
	ErrBadPage    = errors.New("vm: page index out of range")
)

// Hypervisor manages the VMs of one physical machine.
type Hypervisor struct {
	machine *sgx.Machine
	lat     *sim.Latency

	mu  sync.Mutex
	vms map[string]*VM
}

// NewHypervisor creates the hypervisor for a machine.
func NewHypervisor(machine *sgx.Machine) *Hypervisor {
	return &Hypervisor{
		machine: machine,
		lat:     machine.Latency(),
		vms:     make(map[string]*VM),
	}
}

// Machine returns the hosting physical machine.
func (h *Hypervisor) Machine() *sgx.Machine { return h.machine }

// CreateVM allocates a VM with the given memory size.
func (h *Hypervisor) CreateVM(id string, memoryBytes int) (*VM, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.vms[id]; exists {
		return nil, fmt.Errorf("%w: %s", ErrVMExists, id)
	}
	pages := (memoryBytes + PageSize - 1) / PageSize
	v := &VM{
		id:    id,
		hv:    h,
		pages: make([][]byte, pages),
	}
	h.vms[id] = v
	return v, nil
}

// VM returns a VM by id.
func (h *Hypervisor) VM(id string) (*VM, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.vms[id]
	return v, ok
}

// remove drops a VM (after it migrated away).
func (h *Hypervisor) remove(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.vms, id)
}

// VM is one virtual machine: guest memory plus the enclaves running in
// its guest applications. Enclave handles are tracked so migration can
// demonstrate that they do NOT move with the VM.
type VM struct {
	id string

	mu       sync.Mutex
	hv       *Hypervisor
	pages    [][]byte
	enclaves []*sgx.Enclave
	stopped  bool
}

// ID returns the VM identifier.
func (v *VM) ID() string { return v.id }

// Hypervisor returns the current host.
func (v *VM) Hypervisor() *Hypervisor {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.hv
}

// Pages returns the number of memory pages.
func (v *VM) Pages() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.pages)
}

// Stopped reports whether the VM has been stopped (migrated away).
func (v *VM) Stopped() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stopped
}

// WritePage stores data in guest memory page i.
func (v *VM) WritePage(i int, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.stopped {
		return ErrVMStopped
	}
	if i < 0 || i >= len(v.pages) {
		return fmt.Errorf("%w: %d", ErrBadPage, i)
	}
	if len(data) > PageSize {
		return fmt.Errorf("%w: page data too large", ErrBadPage)
	}
	v.pages[i] = append([]byte(nil), data...)
	return nil
}

// ReadPage returns guest memory page i.
func (v *VM) ReadPage(i int) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.stopped {
		return nil, ErrVMStopped
	}
	if i < 0 || i >= len(v.pages) {
		return nil, fmt.Errorf("%w: %d", ErrBadPage, i)
	}
	return append([]byte(nil), v.pages[i]...), nil
}

// AttachEnclave records an enclave running inside this VM's guest.
func (v *VM) AttachEnclave(e *sgx.Enclave) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.enclaves = append(v.enclaves, e)
}

// Enclaves returns the enclaves attached to the VM.
func (v *VM) Enclaves() []*sgx.Enclave {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]*sgx.Enclave(nil), v.enclaves...)
}

// LiveMigrate moves the VM to the destination hypervisor: every memory
// page is copied (charging the page-copy cost), the source VM stops, and
// — crucially — every enclave that was running inside the VM is destroyed
// on the source and NOT recreated: the migration process cannot access
// the EPC (paper §II-B). The returned duration is the virtual (unscaled)
// time the memory copy took.
func LiveMigrate(v *VM, dst *Hypervisor) (*VM, time.Duration, error) {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		return nil, 0, ErrVMStopped
	}
	src := v.hv
	pages := make([][]byte, len(v.pages))
	for i, p := range v.pages {
		pages[i] = append([]byte(nil), p...)
	}
	enclaves := append([]*sgx.Enclave(nil), v.enclaves...)
	v.stopped = true
	v.mu.Unlock()

	// Copy memory pages; this dominates VM migration time.
	before := dst.lat.VirtualTotal()
	dst.lat.ChargeN(sim.OpVMPageCopy, len(pages))
	dst.lat.Charge(sim.OpNetworkRTT)
	elapsed := dst.lat.VirtualTotal() - before

	// Enclaves do not survive: destroy them on the source machine.
	for _, e := range enclaves {
		src.machine.Destroy(e)
	}
	src.remove(v.id)

	migrated := &VM{id: v.id, hv: dst, pages: pages}
	dst.mu.Lock()
	dst.vms[v.id] = migrated
	dst.mu.Unlock()
	return migrated, elapsed, nil
}
