package vm

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"

	"repro/internal/sgx"
	"repro/internal/sim"
)

func newMachine(t *testing.T, id sgx.MachineID) *sgx.Machine {
	t.Helper()
	m, err := sgx.NewMachine(id, sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newEnclave(t *testing.T, m *sgx.Machine) *sgx.Enclave {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	e, err := m.Load(&sgx.Image{Name: "guest-app", Code: []byte("x"), SignerPublicKey: pub})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestVMMemoryReadWrite(t *testing.T) {
	h := NewHypervisor(newMachine(t, "A"))
	v, err := h.CreateVM("vm1", 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pages() != 16 {
		t.Fatalf("pages = %d", v.Pages())
	}
	want := []byte("guest data")
	if err := v.WritePage(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadPage(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page mismatch")
	}
	if err := v.WritePage(99, nil); !errors.Is(err, ErrBadPage) {
		t.Fatalf("oob write: %v", err)
	}
	if _, err := v.ReadPage(-1); !errors.Is(err, ErrBadPage) {
		t.Fatalf("oob read: %v", err)
	}
	if err := v.WritePage(0, make([]byte, PageSize+1)); !errors.Is(err, ErrBadPage) {
		t.Fatalf("oversize write: %v", err)
	}
}

func TestVMDuplicateID(t *testing.T) {
	h := NewHypervisor(newMachine(t, "A"))
	if _, err := h.CreateVM("vm1", PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateVM("vm1", PageSize); !errors.Is(err, ErrVMExists) {
		t.Fatalf("duplicate vm: %v", err)
	}
}

func TestLiveMigrationMovesMemory(t *testing.T) {
	mA, mB := newMachine(t, "A"), newMachine(t, "B")
	hA, hB := NewHypervisor(mA), NewHypervisor(mB)
	v, _ := hA.CreateVM("vm1", 256*1024)
	for i := 0; i < v.Pages(); i++ {
		if err := v.WritePage(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	migrated, elapsed, err := LiveMigrate(v, hB)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("migration charged no time")
	}
	for i := 0; i < migrated.Pages(); i++ {
		p, err := migrated.ReadPage(i)
		if err != nil {
			t.Fatal(err)
		}
		if p[0] != byte(i) {
			t.Fatalf("page %d corrupted", i)
		}
	}
	// Source VM stopped and deregistered.
	if !v.Stopped() {
		t.Fatal("source VM still running")
	}
	if _, ok := hA.VM("vm1"); ok {
		t.Fatal("source hypervisor still lists the VM")
	}
	if got, ok := hB.VM("vm1"); !ok || got != migrated {
		t.Fatal("destination hypervisor missing the VM")
	}
	if _, err := v.ReadPage(0); !errors.Is(err, ErrVMStopped) {
		t.Fatalf("stopped VM served memory: %v", err)
	}
	if _, _, err := LiveMigrate(v, hA); !errors.Is(err, ErrVMStopped) {
		t.Fatalf("double migration: %v", err)
	}
}

// The paper's central constraint: live migration cannot carry enclaves.
func TestLiveMigrationDestroysEnclaves(t *testing.T) {
	mA, mB := newMachine(t, "A"), newMachine(t, "B")
	hA, hB := NewHypervisor(mA), NewHypervisor(mB)
	v, _ := hA.CreateVM("vm1", 64*1024)
	e := newEnclave(t, mA)
	v.AttachEnclave(e)

	migrated, _, err := LiveMigrate(v, hB)
	if err != nil {
		t.Fatal(err)
	}
	if e.Alive() {
		t.Fatal("enclave survived VM migration — EPC was 'copied'")
	}
	if len(migrated.Enclaves()) != 0 {
		t.Fatal("destination VM lists enclaves that were never migrated")
	}
	if mA.LiveEnclaves() != 0 {
		t.Fatal("source machine still hosts the enclave")
	}
}

func TestLiveMigrationCostScalesWithMemory(t *testing.T) {
	mA, mB := newMachine(t, "A"), newMachine(t, "B")
	hA, hB := NewHypervisor(mA), NewHypervisor(mB)
	small, _ := hA.CreateVM("small", 64*1024)
	big, _ := hA.CreateVM("big", 64*1024*64)
	_, tSmall, err := LiveMigrate(small, hB)
	if err != nil {
		t.Fatal(err)
	}
	_, tBig, err := LiveMigrate(big, hB)
	if err != nil {
		t.Fatal(err)
	}
	if tBig <= tSmall {
		t.Fatalf("bigger VM migrated faster: %v <= %v", tBig, tSmall)
	}
}
