package chaos

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/health"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// Config parameterizes one chaos run. The zero value is not runnable;
// use Defaults() or fill Seed and rely on withDefaults.
type Config struct {
	// Seed drives every random draw in the run: the schedule generator
	// and the WAN link's loss process both derive from it, so one seed
	// fully determines one history.
	Seed int64 `json:"seed"`
	// Steps is the schedule length when generating (ignored in replay).
	Steps int `json:"steps"`
	// Machines is the per-datacenter machine count (>= 3; the f=1
	// replica group needs 2f+1 members).
	Machines int `json:"machines"`
	// Apps is the number of enclave identities launched on dc-a.
	Apps int `json:"apps"`
	// Counters is the number of monotonic counters per identity.
	Counters int `json:"counters"`
	// WANLoss is the inter-DC link's loss probability in [0, 1).
	WANLoss float64 `json:"wan_loss"`
	// Replay, when non-nil, executes exactly this step list instead of
	// generating one (the repro / shrink path). Steps whose guards no
	// longer hold are recorded as skipped and ignored.
	Replay []Step `json:"replay,omitempty"`
	// Bias, when non-nil, multiplies candidate weights during generation
	// toward transitions the accumulator has seen least, and absorbs
	// this run's transition coverage afterward. Nil (the default) leaves
	// generation exactly seed-deterministic; replay never consults it.
	// Not serialized: a repro must not depend on search-time state.
	Bias *Bias `json:"-"`
}

// Defaults returns the standard smoke-test configuration for a seed:
// a lossy WAN and the full step palette.
func Defaults(seed int64) Config {
	return Config{Seed: seed, WANLoss: 0.1}.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.Steps <= 0 {
		c.Steps = 30
	}
	if c.Machines < 3 {
		// Three replica-group members plus one spare, so drain plans have
		// a replica-handoff taker and migration paths actually execute.
		c.Machines = 4
	}
	if c.Apps <= 0 {
		c.Apps = 4
	}
	if c.Counters <= 0 {
		c.Counters = 2
	}
	if c.WANLoss < 0 || c.WANLoss >= 1 {
		c.WANLoss = 0
	}
	return c
}

// Result is one run's verdict: the concrete steps that executed, the
// recorded history, and every invariant violation the checker found
// (empty = the run upheld R1–R4).
type Result struct {
	Seed       int64       `json:"seed"`
	Steps      []Step      `json:"steps"`
	Violations []Violation `json:"violations,omitempty"`
	Ops        int         `json:"ops"`
	Events     int         `json:"events"`
	// Coverage records which invariants the checker evaluated and which
	// transitions the schedule executed — the search-quality signal.
	Coverage Coverage `json:"coverage"`
	// Health is the per-entity health state at the end of the run: the
	// active watchdogs' independent verdict on the same history the
	// checker read. A mutation test convicts an injected fault only when
	// both planes saw it.
	Health []health.EntityHealth `json:"health,omitempty"`

	// History is the full operation record (not serialized by default;
	// repros carry the seed + steps instead).
	History *History `json:"-"`
	// Flight is an encoded black-box bundle (flight.DecodeBundle reads
	// it), captured at verdict time when the run found violations; nil on
	// clean runs. Like History it stays out of the JSON repro — chaoshunt
	// writes it beside the repro file instead.
	Flight []byte `json:"-"`
}

// Failed reports whether the run found any invariant violation.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// identity is the runner's model of one enclave identity across its
// incarnations (launch, migrations, resurrections).
type identity struct {
	name     string
	img      *sgx.Image
	escrowID [16]byte
	ctrs     []int
	app      *cloud.App // current live instance, nil while lost
	inst     int        // incarnation number of app
	lost     bool
	lostDC   string // DC whose rack escrow can resurrect it
	// replayable marks an identity whose state was recovered cross-DC
	// with origin arbitration (unforced): the origin rack still holds
	// its superseded record, making it the adversarial replay-recover
	// target — a second resurrection attempt from the consumed record.
	replayable bool
}

// probe is a retained handle to a superseded incarnation (migrated-away
// or replaced pointer): the nemesis keeps issuing state-advancing
// operations against it to prove zombies never make progress. Counter
// increments ride PSE hardware counters and are not fenced by the
// binding — only persisting operations are — so probes drive a persist
// (CreateCounter), which a frozen or recovered-away incarnation must
// refuse.
type probe struct {
	id   string
	inst int
	slot int
	app  *cloud.App
}

// world is one running two-DC federation under test plus the runner's
// bookkeeping.
type world struct {
	mu     sync.Mutex // guards escrowSeq/escrowCount (auditor callbacks)
	cfg    Config
	fed    *federation.Federation
	dcA    *cloud.DataCenter
	dcB    *cloud.DataCenter
	link   *transport.WANLink
	mirror *federation.Mirror
	obs    *obs.Observer
	mon    *health.Monitor

	ids    []*identity
	byName map[string]*identity
	// ownerName maps an identity's enclave measurement to its name so
	// escrow-auditor callbacks (keyed by owner) attribute to the right
	// identity without leaking crypto-random escrow IDs into history.
	ownerName map[sgx.Measurement]string
	// escrowSeq assigns each escrow instance ID a small per-identity
	// ordinal (migration mints a fresh instance whose versions restart
	// at 1); the ordinal goes into the history instead of the random ID.
	escrowSeq   map[[16]byte]int
	escrowCount map[string]int
	h           *History
	rng         *rand.Rand
	probes      []probe
	cov         Coverage

	step         int  // current schedule step index
	partitioned  bool // WAN link currently down
	disconnected bool // Disconnect is permanent
}

// machineRef renders "dc/machine".
func machineRef(dc, m string) string { return dc + "/" + m }

// Run executes one chaos schedule and checks the resulting history.
// The returned error covers world-construction failures only; invariant
// violations land in Result.Violations.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	w, err := buildWorld(cfg)
	if err != nil {
		return nil, err
	}
	defer w.fed.Close()

	var steps []Step
	if cfg.Replay != nil {
		steps = w.replay(cfg.Replay)
	} else {
		steps = w.generate(cfg.Steps)
	}
	w.quiesce()
	states := w.mon.Evaluate(time.Now())

	events := w.obs.Events.Events()
	violations, cov := CheckCoverage(w.h, events, w.ownerIndex())
	cov.Merge(w.cov) // add the executed-transition counts
	cfg.Bias.Absorb(cov)
	res := &Result{
		Seed:       cfg.Seed,
		Steps:      steps,
		Violations: violations,
		Ops:        w.h.Len(),
		Events:     len(events),
		Coverage:   cov,
		Health:     states,
		History:    w.h,
	}
	if len(violations) > 0 {
		// Black-box the failing run: everything the watchdogs and checker
		// saw, frozen at verdict time, so a repro ships with its context.
		b := flight.Capture(w.obs, flight.Trigger{
			Kind:   flight.TriggerChaosViolation,
			Actor:  "chaos",
			Detail: violations[0].String(),
		}, time.Now(), flight.CaptureOpts{Health: states})
		res.Flight = b.Encode()
	}
	return res, nil
}

// buildWorld provisions the standard chaos fixture: two data centers
// (dc-a, dc-b) with cfg.Machines machines each, one f=1 replica group
// per site (rack-a, rack-b), a lossy WAN link whose loss RNG derives
// from the seed, a manual-mode escrow mirror rack-a -> rack-b, and
// cfg.Apps identities launched round-robin across dc-a with their
// counters created and advanced once.
func buildWorld(cfg Config) (*world, error) {
	w := &world{
		cfg:         cfg,
		fed:         federation.New("chaos"),
		byName:      make(map[string]*identity),
		ownerName:   make(map[sgx.Measurement]string),
		escrowSeq:   make(map[[16]byte]int),
		escrowCount: make(map[string]int),
		h:           &History{},
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		cov:         NewCoverage(),
		step:        -1,
	}
	w.obs = obs.NewObserver()
	// The health plane watches the run live, one evaluation per step.
	// TripAfter 1 (vs the serving default 2) because a chaos step is a
	// coarse instant, not a scrape tick: the injected fault classes must
	// reach degraded/critical within the schedule that provoked them.
	w.mon = health.New(w.obs, health.Config{TripAfter: 1, ClearAfter: 2}, health.DefaultDetectors()...)

	for _, name := range []string{"dc-a", "dc-b"} {
		dc, err := cloud.NewDataCenter(name, sim.NewInstantLatency())
		if err != nil {
			return nil, fmt.Errorf("chaos: %s: %w", name, err)
		}
		dc.SetObserver(w.obs)
		prefix := name[len(name)-1:]
		ids := make([]string, 0, cfg.Machines)
		for i := 1; i <= cfg.Machines; i++ {
			id := fmt.Sprintf("%s%d", prefix, i)
			if _, err := dc.AddMachine(id); err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		// The f=1 replica group takes exactly the first three machines;
		// any further machines are spare capacity. A spare is what lets a
		// drain of a replica host actually run: the role hands off to the
		// spare instead of the plan being refused (every taker already
		// hosting a replica), so migration paths — including the batched
		// stream — get exercised rather than refused at compile.
		if _, err := dc.NewReplicaGroup("rack-"+prefix, 1, ids[:3]...); err != nil {
			return nil, err
		}
		if err := w.fed.Admit(dc); err != nil {
			return nil, err
		}
		if name == "dc-a" {
			w.dcA = dc
		} else {
			w.dcB = dc
		}
	}
	w.fed.SetObserver(w.obs)

	// The WAN link's loss process must replay with the schedule: inject
	// a source derived from the seed (satellite of the same PR that made
	// WANConfig.Rand injectable).
	link, err := w.fed.Connect("dc-a", "dc-b", transport.WANConfig{
		RTT:  20 * time.Millisecond,
		Loss: cfg.WANLoss,
		Rand: rand.New(rand.NewSource(cfg.Seed*0x9E3779B9 + 0x7F4A7C15)),
	})
	if err != nil {
		return nil, err
	}
	w.link = link
	mirror, err := w.fed.PartnerGroups("dc-a", "rack-a", "dc-b", "rack-b")
	if err != nil {
		return nil, err
	}
	// Manual mode: escrow changes mark instances dirty but sync only at
	// explicit flush steps, in sorted order, on the runner's goroutine —
	// the background worker would race the schedule for loss-RNG draws.
	mirror.SetManual(true)
	w.mirror = mirror

	// Escrow auditors record every committed escrow put (the strictly-
	// advancing-versions invariant). The observer slot on rack-a belongs
	// to the mirror; the auditor hook is this PR's second slot.
	w.installAuditor("rack-a", w.dcA)
	w.installAuditor("rack-b", w.dcB)

	// Launch the fleet's identities on dc-a, round-robin over machines.
	// Images (and their measurements) are registered before the first
	// launch so escrow-auditor callbacks attribute correctly from op 0.
	signer := xcrypto.DeriveKey([]byte("chaos"), "signer")
	machines := w.dcA.Machines()
	images := make([]*sgx.Image, cfg.Apps)
	for i := range images {
		name := fmt.Sprintf("app-%02d", i)
		images[i] = &sgx.Image{
			Name:            name,
			Version:         1,
			Code:            []byte("chaos:" + name),
			SignerPublicKey: ed25519.PublicKey(signer[:]),
		}
		w.ownerName[images[i].Measure()] = name
	}
	for i := 0; i < cfg.Apps; i++ {
		name := images[i].Name
		img := images[i]
		m := machines[i%len(machines)]
		app, err := m.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			return nil, fmt.Errorf("chaos: launch %s: %w", name, err)
		}
		id := &identity{name: name, img: img, app: app, lostDC: "dc-a"}
		if eid, ok := app.Library.EscrowID(); ok {
			id.escrowID = eid
		}
		for c := 0; c < cfg.Counters; c++ {
			slot, _, err := app.Library.CreateCounter()
			if err != nil {
				return nil, fmt.Errorf("chaos: %s counter: %w", name, err)
			}
			id.ctrs = append(id.ctrs, slot)
		}
		w.ids = append(w.ids, id)
		w.byName[name] = id
		w.h.add(Op{Step: -1, Kind: "launch", App: name, Note: machineRef("dc-a", m.ID())})
		for si, slot := range id.ctrs {
			v, err := app.Library.IncrementCounter(slot)
			w.h.add(Op{Step: -1, Kind: "inc", App: name, Slot: si, Val: v, Err: canonErr(err)})
		}
	}
	return w, nil
}

// installAuditor hooks a rack's escrow commits into the history.
func (w *world) installAuditor(rack string, dc *cloud.DataCenter) {
	g, ok := dc.ReplicaGroup(rack)
	if !ok {
		return
	}
	g.SetEscrowAuditor(func(owner sgx.Measurement, id [16]byte, version uint32) {
		name := w.escrowName(owner, id)
		w.h.add(Op{Step: w.step, Kind: "escrow", App: name, Inst: w.escrowOrdinal(name, id), Val: version, Note: rack})
	})
}

// escrowName maps an escrow commit to its identity name by owner
// measurement; unknown owners (none, in practice) canonicalize to
// "esc:?" so crypto-random IDs never reach the history.
func (w *world) escrowName(owner sgx.Measurement, id [16]byte) string {
	if name, ok := w.ownerName[owner]; ok {
		return name
	}
	_ = id
	return "esc:?"
}

// escrowOrdinal numbers an identity's escrow instances in order of
// first commit (0 = the launch instance; each migration mints a new
// one). Within one ordinal, committed versions must strictly increase;
// across ordinals they restart at 1.
func (w *world) escrowOrdinal(name string, id [16]byte) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ord, ok := w.escrowSeq[id]; ok {
		return ord
	}
	ord := w.escrowCount[name]
	w.escrowCount[name] = ord + 1
	w.escrowSeq[id] = ord
	return ord
}

// ownerIndex maps MRENCLAVE actor strings ("lib:<measurement>") to
// identity names for the checker's audit cross-checks.
func (w *world) ownerIndex() map[string]string {
	idx := make(map[string]string, len(w.ids))
	for _, id := range w.ids {
		idx["lib:"+id.img.Measure().String()] = id.name
	}
	return idx
}

// quiesce waits out both racks' background repair work so every step
// starts from settled replica state (determinism across runs).
func (w *world) quiesce() {
	if g, ok := w.dcA.ReplicaGroup("rack-a"); ok {
		g.Quiesce()
	}
	if g, ok := w.dcB.ReplicaGroup("rack-b"); ok {
		g.Quiesce()
	}
}

// dc resolves a datacenter by name.
func (w *world) dc(name string) *cloud.DataCenter {
	if name == "dc-b" {
		return w.dcB
	}
	return w.dcA
}

// other returns the peer site across the WAN link.
func (w *world) other(name string) *cloud.DataCenter {
	if name == "dc-b" {
		return w.dcA
	}
	return w.dcB
}

// aliveMachines lists a DC's alive machines sorted by ID.
func aliveMachines(dc *cloud.DataCenter) []*cloud.Machine {
	var out []*cloud.Machine
	for _, m := range dc.Machines() {
		if m.Alive() {
			out = append(out, m)
		}
	}
	return out
}

// deadMachines lists a DC's dead machines sorted by ID.
func deadMachines(dc *cloud.DataCenter) []*cloud.Machine {
	var out []*cloud.Machine
	for _, m := range dc.Machines() {
		if !m.Alive() {
			out = append(out, m)
		}
	}
	return out
}

// leastLoadedAlive picks the alive machine with the fewest apps
// (deterministic: ties break by ID through the sorted Machines walk),
// excluding the named machine.
func leastLoadedAlive(dc *cloud.DataCenter, exclude string) *cloud.Machine {
	var best *cloud.Machine
	for _, m := range aliveMachines(dc) {
		if m.ID() == exclude {
			continue
		}
		if best == nil || m.AppCount() < best.AppCount() {
			best = m
		}
	}
	return best
}

// mostLoadedAlive picks the alive machine hosting the most apps.
func mostLoadedAlive(dc *cloud.DataCenter) *cloud.Machine {
	var best *cloud.Machine
	for _, m := range aliveMachines(dc) {
		if best == nil || m.AppCount() > best.AppCount() {
			best = m
		}
	}
	return best
}

// scan records, per identity, how many unfrozen live instances exist
// across both data centers — the no-fork observable. It runs after
// every step.
func (w *world) scan() {
	counts := make(map[string]int, len(w.ids))
	for _, dc := range []*cloud.DataCenter{w.dcA, w.dcB} {
		for _, m := range dc.Machines() {
			if !m.Alive() {
				continue
			}
			for _, a := range m.Apps() {
				if a.Library.Frozen() {
					continue
				}
				counts[a.Image().Name]++
			}
		}
	}
	for _, id := range w.ids {
		w.h.add(Op{Step: w.step, Kind: "scan", App: id.name, Val: uint32(counts[id.name])})
	}
}

// relocate re-resolves an identity's live pointer after a fleet plan
// moved it: if exactly one unfrozen instance exists and it is a new
// pointer, the old one becomes a zombie probe and the incarnation
// advances.
func (w *world) relocate(id *identity) {
	var found []*cloud.App
	for _, dc := range []*cloud.DataCenter{w.dcA, w.dcB} {
		for _, m := range dc.Machines() {
			if !m.Alive() {
				continue
			}
			for _, a := range m.Apps() {
				if a.Image().Name == id.name && !a.Library.Frozen() {
					found = append(found, a)
				}
			}
		}
	}
	if len(found) != 1 || found[0] == id.app {
		return
	}
	if id.app != nil {
		w.addProbe(probe{id: id.name, inst: id.inst, app: id.app, slot: id.ctrs[0]})
	}
	// A pointer move while the identity was lost is a fleet-driven
	// escrow resurrection; while live it is a migration. The checker's
	// liveness model counts resurrections, so the distinction matters.
	kind := "migrate"
	if id.lost {
		kind = "recover"
	}
	id.app = found[0]
	id.inst++
	id.lost = false
	id.lostDC = dcOf(found[0])
	// Migration mints a fresh escrow instance; track the current one so
	// relaunch and manifest hygiene target the right record.
	if eid, ok := found[0].Library.EscrowID(); ok {
		id.escrowID = eid
	}
	note := machineRef(dcOf(found[0]), found[0].Machine().ID())
	if kind == "recover" {
		note = "fleet " + note
	}
	w.h.add(Op{Step: w.step, Kind: kind, App: id.name, Inst: id.inst, Note: note})
}

// dcOf names the datacenter hosting an app (by machine ID prefix).
func dcOf(a *cloud.App) string {
	if len(a.Machine().ID()) > 0 && a.Machine().ID()[0] == 'b' {
		return "dc-b"
	}
	return "dc-a"
}

// addProbe retains a superseded incarnation for zombie probing (bounded).
func (w *world) addProbe(p probe) {
	w.probes = append(w.probes, p)
	if len(w.probes) > 6 {
		w.probes = w.probes[len(w.probes)-6:]
	}
}

// markLost transitions every live identity hosted on m to lost state
// and records the loss (the incarnation can never serve again).
func (w *world) markLost(dcName string, m *cloud.Machine) {
	names := make([]string, 0, 2)
	for _, id := range w.ids {
		if id.app != nil && id.app.Machine() == m {
			names = append(names, id.name)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		id := w.byName[n]
		w.h.add(Op{Step: w.step, Kind: "lost", App: n, Inst: id.inst, Note: machineRef(dcName, m.ID())})
		id.app = nil
		id.lost = true
		id.lostDC = dcName
	}
}

// adoptRecovered records a successful resurrection set and rebinds the
// identities' live pointers, sorted by identity name. Any displaced
// live pointer is demoted to a zombie probe (it was fenced by the
// recovery's binding arbitration and must never serve again), and the
// identity's stale lost-manifest entries on other dead machines are
// dropped — the runner is the fleet operator, and operators keep
// manifests truthful so a recovery never targets an identity that is
// already live elsewhere.
func (w *world) adoptRecovered(apps []*cloud.App, note string, replayable bool) {
	sort.Slice(apps, func(i, j int) bool { return apps[i].Image().Name < apps[j].Image().Name })
	for _, app := range apps {
		id, ok := w.byName[app.Image().Name]
		if !ok {
			continue
		}
		if id.app != nil && id.app != app {
			w.addProbe(probe{id: id.name, inst: id.inst, app: id.app, slot: id.ctrs[0]})
		}
		id.app = app
		id.lost = false
		id.inst++
		id.lostDC = dcOf(app)
		id.replayable = replayable
		if eid, ok := app.Library.EscrowID(); ok {
			id.escrowID = eid
		}
		w.dropStaleManifests(id)
		w.h.add(Op{Step: w.step, Kind: "recover", App: id.name, Inst: id.inst,
			Note: note + " " + machineRef(dcOf(app), app.Machine().ID())})
	}
}

// dropStaleManifests removes a now-live identity from every dead
// machine's lost manifest in both sites.
func (w *world) dropStaleManifests(id *identity) {
	for _, dc := range []*cloud.DataCenter{w.dcA, w.dcB} {
		for _, m := range dc.Machines() {
			if !m.Alive() {
				m.DropLost(id.escrowID)
			}
		}
	}
}
