//go:build chaosmut

package chaos

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/health"
)

// mirrorSchedule is the deterministic stale-mirror scenario for the
// second injected fault (faultSkipMirrorResync in internal/federation):
// the first flush syncs every instance once, two bursts advance the
// counters, and the second flush — which on a healthy build would
// re-push the now-stale shadows — is silently skipped while still
// reporting success. A forced cross-site failover then resurrects the
// values of the FIRST flush, older than the second flush promised, and
// the next burst's increment lands at or below the flush floor.
var mirrorSchedule = []Step{
	{Op: "flush"},
	{Op: "burst"},
	{Op: "burst"},
	{Op: "flush"},
	{Op: "kill", Target: "dc-a/a1"},
	{Op: "recover-wan", Target: "dc-a/a1", Dest: "dc-b/b1", Arg: "force"},
	{Op: "burst"},
}

func mirrorMutationConfig() Config {
	return Config{Seed: 1, Machines: 3, Apps: 1, Counters: 1, Replay: mirrorSchedule}
}

// TestMirrorMutationCaught requires the stale-mirror fault to be
// convicted by BOTH independent planes: the offline invariant checker
// (a monotone rollback below the flush floor) and the live health
// watchdog (a successful flush that pushed no records while mirrored
// instances exist). One plane catching it is a detector working; both
// catching it is the observability story the fault was injected to
// prove.
func TestMirrorMutationCaught(t *testing.T) {
	res, err := Run(mirrorMutationConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Failed() {
		t.Fatalf("checker missed the stale-mirror resurrection; history:\n%s",
			res.History.Fingerprint())
	}
	var monotone bool
	for _, v := range res.Violations {
		t.Logf("caught: %s", v)
		if v.Invariant == "monotone" {
			monotone = true
		}
	}
	if !monotone {
		t.Error("no monotone violation for the stale resurrected counter")
	}

	var mirrorState *health.EntityHealth
	for i, h := range res.Health {
		if h.Kind == "mirror" && h.Name == "escrow" {
			mirrorState = &res.Health[i]
		}
	}
	if mirrorState == nil {
		t.Fatal("health plane never tracked the mirror entity")
	}
	if mirrorState.State < health.Degraded {
		t.Errorf("mirror entity is %s; the skipped re-sync should have degraded it", mirrorState.State)
	}
	if !strings.Contains(mirrorState.Reason, "pushed no records") {
		t.Errorf("mirror degradation reason %q does not name the flush-without-push rule", mirrorState.Reason)
	}
}

// TestMirrorMutationFlightBundle asserts the failing run ships its black
// box: Result.Flight decodes back into a bundle whose trigger is the
// chaos violation and whose event tail carries the mirror's
// health-changed transition — the evidence an operator reads first.
func TestMirrorMutationFlightBundle(t *testing.T) {
	res, err := Run(mirrorMutationConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Failed() {
		t.Fatal("expected a failing run")
	}
	if len(res.Flight) == 0 {
		t.Fatal("failing run produced no flight bundle")
	}
	b, err := flight.DecodeBundle(res.Flight)
	if err != nil {
		t.Fatalf("decode flight bundle: %v", err)
	}
	if b.Trigger.Kind != flight.TriggerChaosViolation {
		t.Errorf("trigger kind = %q, want %q", b.Trigger.Kind, flight.TriggerChaosViolation)
	}
	if !strings.Contains(b.Trigger.Detail, "monotone") {
		t.Errorf("trigger detail %q does not carry the violation", b.Trigger.Detail)
	}
	var sawMirrorChange bool
	for _, ev := range b.Events {
		if ev.Type == obs.EventHealthChanged && strings.Contains(ev.Actor, "mirror/escrow") {
			sawMirrorChange = true
		}
	}
	if !sawMirrorChange {
		t.Error("bundle events carry no health-changed transition for the mirror")
	}
	var sawMirrorHealth bool
	for _, h := range b.Health {
		if h.Kind == "mirror" && h.State >= health.Degraded {
			sawMirrorHealth = true
		}
	}
	if !sawMirrorHealth {
		t.Error("bundle health snapshot does not show the degraded mirror")
	}
}
