//go:build !chaosmut

package chaos

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestChaosSeeds runs the adversarial search across a spread of seeds
// and asserts every schedule upholds R1–R4: no invariant violations,
// ever. Each seed is an independent 30-step fault schedule against a
// fresh two-DC federation. Across the whole search, every invariant
// must have been exercised at least once — a green run that never
// evaluated R3 would prove nothing.
func TestChaosSeeds(t *testing.T) {
	const seeds = 24
	var mu sync.Mutex
	total := NewCoverage()
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, inv := range InvariantNames() {
			if total.Invariants[inv] == 0 {
				t.Errorf("invariant %q never exercised across %d seeds (coverage: %v)",
					inv, seeds, total.Invariants)
			}
		}
	})
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Defaults(int64(s)))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Failed() {
				for _, v := range res.Violations {
					t.Errorf("violation: %s", v)
				}
				t.Logf("history:\n%s", res.History.Fingerprint())
			}
			if res.Ops == 0 {
				t.Fatal("empty history")
			}
			mu.Lock()
			total.Merge(res.Coverage)
			mu.Unlock()
		})
	}
}

// TestBiasFactors pins the bias curve: unseen and under-covered
// transitions get boosted, well-covered ones do not, and a nil bias is
// always neutral.
func TestBiasFactors(t *testing.T) {
	var nilBias *Bias
	if got := nilBias.factor("kill"); got != 1 {
		t.Fatalf("nil bias factor = %d, want 1", got)
	}
	b := NewBias()
	if got := b.factor("kill"); got != 1 {
		t.Fatalf("empty bias factor = %d, want 1", got)
	}
	cov := NewCoverage()
	cov.Transitions["burst"] = 90
	cov.Transitions["kill"] = 30
	cov.Transitions["flush"] = 45
	b.Absorb(cov)
	if got := b.factor("burst"); got != 1 {
		t.Fatalf("most-covered factor = %d, want 1", got)
	}
	if got := b.factor("kill"); got != 3 {
		t.Fatalf("under-covered factor = %d, want 3", got)
	}
	if got := b.factor("flush"); got != 2 {
		t.Fatalf("mid-covered factor = %d, want 2", got)
	}
	if got := b.factor("recover-wan-forced"); got != 3 {
		t.Fatalf("never-seen factor = %d, want 3", got)
	}
}

// TestBiasedRunStillSound is the opt-in path's smoke test: a biased
// generation run executes, stays violation-free, and reports coverage.
func TestBiasedRunStillSound(t *testing.T) {
	bias := NewBias()
	seen := NewCoverage()
	seen.Transitions["burst"] = 1000 // push generation away from bursts
	bias.Absorb(seen)
	cfg := Defaults(2)
	cfg.Bias = bias
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Failed() {
		t.Fatalf("biased run violated invariants: %v", res.Violations)
	}
	if len(res.Coverage.Transitions) == 0 {
		t.Fatal("biased run reported no transition coverage")
	}
	// The run's own transitions were absorbed back into the accumulator.
	counts := bias.Counts()
	sum := 0
	for k, n := range counts {
		if k != "burst" {
			sum += n
		}
	}
	if sum == 0 {
		t.Fatalf("bias absorbed nothing beyond the seed counts: %v", counts)
	}
}

// TestChaosDeterminism asserts the load-bearing property: the same
// seed produces the same history, op for op — schedule draws, WAN
// loss, fleet journals, escrow commits and all.
func TestChaosDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 19} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			a, err := Run(Defaults(seed))
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := Run(Defaults(seed))
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			fa, fb := a.History.Fingerprint(), b.History.Fingerprint()
			if fa != fb {
				t.Fatalf("same seed, different histories:\n--- first\n%s\n--- second\n%s", fa, fb)
			}
		})
	}
}

// TestReplayMatchesGenerated asserts replay fidelity: executing the
// concrete step list a generated run recorded reproduces the identical
// history — the property the shrinker and the CLI's repro mode rely on.
func TestReplayMatchesGenerated(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			gen, err := Run(Defaults(seed))
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			cfg := Defaults(seed)
			cfg.Replay = gen.Steps
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if g, r := gen.History.Fingerprint(), rep.History.Fingerprint(); g != r {
				t.Fatalf("replay diverged from generated run:\n--- generated\n%s\n--- replay\n%s", g, r)
			}
		})
	}
}

// TestReplayRecoverRefused is the healthy-build counterpart of the
// chaosmut mutation self-test: replaying recovery from an origin
// escrow record whose binding was consumed by a cross-DC resurrection
// must lose the arbitration (escrow-consumed) and violate nothing —
// R3's exactly-one-resurrection holding under direct attack.
func TestReplayRecoverRefused(t *testing.T) {
	res, err := Run(Config{Seed: 1, Machines: 3, Apps: 1, Counters: 1, Replay: []Step{
		{Op: "flush"},
		{Op: "kill", Target: "dc-a/a1"},
		{Op: "recover-wan", Target: "dc-a/a1", Dest: "dc-b/b1"},
		{Op: "replay-recover", Target: "app-00", Dest: "dc-a/a2"},
		{Op: "burst"},
	}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Failed() {
		t.Fatalf("violations on healthy build: %v", res.Violations)
	}
	refused := false
	for _, op := range res.History.Ops() {
		if op.Kind == "replay-recover" {
			if op.Err == "" {
				t.Fatal("replay-recover succeeded on a healthy build")
			}
			if op.Err == "escrow-consumed" {
				refused = true
			}
		}
	}
	if !refused {
		t.Fatalf("no escrow-consumed refusal in history:\n%s", res.History.Fingerprint())
	}
}

// TestReplayBatchDrainWANFlap drives the streamed batch pipeline
// through a WAN flap: a local batched drain, a healthy batched WAN
// evacuation, then an evacuation attempted INTO a downed link (must
// fail closed — every enclave either completes later or stays safely
// at the source, frozen with its resume token), and a post-heal rerun
// that must land every remaining enclave. R1–R4 are checked over the
// whole history; additionally the post-heal wan-drain must report only
// completed entries — a flap is an availability event, never a
// correctness one.
func TestReplayBatchDrainWANFlap(t *testing.T) {
	res, err := Run(Config{Seed: 1, Machines: 4, Apps: 9, Counters: 1, Replay: []Step{
		{Op: "burst"},
		{Op: "batch-drain", Target: "dc-a/a1"},
		{Op: "burst"},
		{Op: "wan-drain", Target: "dc-a/a2"},
		{Op: "burst"},
		{Op: "partition", Target: "down"},
		{Op: "wan-drain", Target: "dc-a/a3"},
		{Op: "burst"},
		{Op: "partition", Target: "up"},
		{Op: "wan-drain", Target: "dc-a/a3"},
		{Op: "burst"},
		{Op: "flush"},
		{Op: "burst"},
	}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Failed() {
		t.Fatalf("violations under WAN flap: %v\nhistory:\n%s", res.Violations, res.History.Fingerprint())
	}
	var batchPlans, wanPlans, lastWanDrain, completed, failed int
	ops := res.History.Ops()
	for i, op := range ops {
		if op.Kind == "plan-entry" {
			if strings.Contains(op.Note, "status=completed") {
				completed++
			}
			if strings.Contains(op.Note, "status=failed") {
				failed++
			}
			continue
		}
		if op.Kind != "plan" {
			continue
		}
		switch {
		case strings.HasPrefix(op.Note, "batch-drain "):
			batchPlans++
			if op.Err != "" {
				t.Fatalf("local batched drain failed: %s", op.Err)
			}
		case strings.HasPrefix(op.Note, "wan-drain "):
			wanPlans++
			lastWanDrain = i
		}
	}
	if batchPlans != 1 || wanPlans != 3 {
		t.Fatalf("plans: batch-drain=%d wan-drain=%d, want 1 and 3", batchPlans, wanPlans)
	}
	// a1's three apps drain locally, a2's two cross the WAN, a3's two
	// fail into the downed link and land on the post-heal rerun. A
	// regression back to every-plan-refused (e.g. no replica-handoff
	// taker) would zero these.
	if completed < 7 {
		t.Fatalf("only %d completed migration entries, want >= 7", completed)
	}
	if failed == 0 {
		t.Fatal("the drain into the downed link failed no entries")
	}
	// Every entry of the post-heal rerun completed.
	for _, op := range ops[lastWanDrain+1:] {
		if op.Kind != "plan-entry" {
			break
		}
		if !strings.Contains(op.Note, "status=completed") {
			t.Fatalf("post-heal entry did not complete: %s %s (%s)", op.App, op.Note, op.Err)
		}
	}
}

// TestReplayBatchWANFlapLossy repeats batched WAN drains over a link
// that drops a quarter of all exchanges — chunks, acks and DONE
// flushes alike — so batches strand members mid-stream
// nondeterministically. Whatever parks must resume on a later plan
// without double-applying (upper-bound), forking (no-fork), or letting
// a zombie serve (no-zombie); the checker decides, the schedule only
// provokes.
func TestReplayBatchWANFlapLossy(t *testing.T) {
	res, err := Run(Config{Seed: 7, Machines: 4, Apps: 9, Counters: 1, WANLoss: 0.25, Replay: []Step{
		{Op: "burst"},
		{Op: "wan-drain", Target: "dc-a/a1"},
		{Op: "burst"},
		{Op: "wan-drain", Target: "dc-a/a1"},
		{Op: "burst"},
		{Op: "wan-drain", Target: "dc-a/a2"},
		{Op: "burst"},
		{Op: "wan-drain", Target: "dc-a/a2"},
		{Op: "burst"},
		{Op: "flush"},
		{Op: "burst"},
	}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Failed() {
		t.Fatalf("violations under lossy batched WAN drain: %v\nhistory:\n%s", res.Violations, res.History.Fingerprint())
	}
	plans, completed := 0, 0
	for _, op := range res.History.Ops() {
		if op.Kind == "plan" && strings.HasPrefix(op.Note, "wan-drain ") {
			plans++
		}
		if op.Kind == "plan-entry" && strings.Contains(op.Note, "status=completed") {
			completed++
		}
	}
	if plans != 4 {
		t.Fatalf("wan-drain plans = %d, want 4", plans)
	}
	if completed == 0 {
		t.Fatal("no migration completed across four lossy batched drains")
	}
}

// TestShrinkRejectsPassingSchedule pins the shrinker's contract: a
// schedule with no violations is not shrinkable.
func TestShrinkRejectsPassingSchedule(t *testing.T) {
	gen, err := Run(Defaults(5))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if gen.Failed() {
		t.Fatalf("seed 5 unexpectedly failing: %v", gen.Violations)
	}
	if _, err := Shrink(Defaults(5), gen.Steps, 20); err == nil {
		t.Fatal("Shrink accepted a passing schedule")
	}
}
