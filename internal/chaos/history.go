// Package chaos is the repo's "Jepsen for enclaves": a seeded, fully
// deterministic fault-schedule generator that interleaves machine
// kills, restarts, rack cold-restarts, WAN partitions, mirror lag,
// forced site-loss failovers, and concurrent fleet plans against a
// running two-datacenter federation while a nemesis workload drives
// counter increments and records a global operation history — and a
// model-based checker that replays that history against the paper's
// R1–R4 guarantees: monotone counters (no rollback), at most one live
// instance per enclave identity (no fork, exactly-one resurrection),
// no recovered-away zombie ever serving a request, strictly advancing
// escrow versions, and an audit event stream consistent with what the
// schedule actually did.
//
// Determinism is the load-bearing property: the same Config (seed
// included) produces the same history, op for op, so any failing
// schedule shrinks to a minimal repro that is just a seed plus a step
// list. Everything random in a run is either derived from the seed
// (schedule draws, WAN loss) or kept out of the recorded history
// (crypto nonces, escrow instance IDs, trace IDs — error strings are
// canonicalized so none of them leak in).
package chaos

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/pse"
	"repro/internal/pserepl"
	"repro/internal/transport"
)

// Op is one recorded event in the global history: a workload operation
// (inc/read/request), a fault or recovery action, a committed escrow
// put, or a post-step liveness scan. The checker replays the Op stream;
// the determinism tests compare it byte for byte across runs.
type Op struct {
	// I is the op's index in the history; Step is the index of the
	// schedule step that produced it (-1 for world setup).
	I    int    `json:"i"`
	Step int    `json:"step"`
	Kind string `json:"kind"`
	// App is the enclave identity (image name) the op concerns.
	App string `json:"app,omitempty"`
	// Slot is the app-counter index for inc/read ops.
	Slot int `json:"slot,omitempty"`
	// Inst is the identity's incarnation number the op was issued
	// against (0 = the originally launched instance).
	Inst int `json:"inst,omitempty"`
	// Val is the observed counter value (inc/read), live-instance count
	// (scan), or committed version (escrow).
	Val uint32 `json:"val,omitempty"`
	// Err is the canonicalized error ("" = success).
	Err string `json:"err,omitempty"`
	// Note carries op-specific detail (machine, plan intent, forced…).
	Note string `json:"note,omitempty"`
}

// String renders the op in the canonical one-line form fingerprints and
// repro listings use.
func (o Op) String() string {
	return fmt.Sprintf("%d/%d %s app=%s slot=%d inst=%d val=%d err=%q note=%q",
		o.I, o.Step, o.Kind, o.App, o.Slot, o.Inst, o.Val, o.Err, o.Note)
}

// History is the globally ordered operation record of one chaos run.
// Appends may come from the nemesis goroutine, fleet workers, and the
// escrow auditor hooks; the mutex keeps it safe, and the sequential
// step executor keeps the order deterministic.
type History struct {
	mu  sync.Mutex
	ops []Op
}

func (h *History) add(op Op) {
	h.mu.Lock()
	op.I = len(h.ops)
	h.ops = append(h.ops, op)
	h.mu.Unlock()
}

// Ops returns the recorded operations in order.
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Op(nil), h.ops...)
}

// Len reports the number of recorded operations.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}

// Fingerprint collapses the history into one comparable string; two
// runs of the same seed must produce identical fingerprints.
func (h *History) Fingerprint() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	for i := range h.ops {
		b.WriteString(h.ops[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// sentinel maps a wrapped error to its canonical history name.
type sentinel struct {
	err  error
	name string
}

// sentinels is the canonicalization table, checked with errors.Is so
// wrapped and joined errors resolve to stable names.
var sentinels = []sentinel{
	{core.ErrEscrowConsumed, "escrow-consumed"},
	{core.ErrEscrowStale, "escrow-stale"},
	{core.ErrRecoveredAway, "recovered-away"},
	{core.ErrFrozen, "frozen"},
	{core.ErrSlotInactive, "slot-inactive"},
	{core.ErrNotInitialized, "not-initialized"},
	{core.ErrAlreadyInitialized, "already-initialized"},
	{core.ErrNoEscrow, "no-escrow"},
	{core.ErrMigrationPending, "migration-pending"},
	{pserepl.ErrNoQuorum, "no-quorum"},
	{pserepl.ErrEscrowSuperseded, "escrow-superseded"},
	{pserepl.ErrEscrowNotFound, "escrow-not-found"},
	{pserepl.ErrEscrowDecommissioned, "escrow-decommissioned"},
	{pserepl.ErrReplicaUnsynced, "replica-unsynced"},
	{pse.ErrCounterNotFound, "counter-not-found"},
	{transport.ErrLinkDown, "link-down"},
	{transport.ErrDropped, "dropped"},
	{cloud.ErrMachineDown, "machine-down"},
	{cloud.ErrMachineUp, "machine-up"},
	{cloud.ErrInstanceAlive, "instance-alive"},
	{federation.ErrMirrorStale, "mirror-stale"},
	{federation.ErrNotMirrored, "not-mirrored"},
	{federation.ErrMirrorRefused, "mirror-refused"},
	{federation.ErrOriginUnreachable, "origin-unreachable"},
	{federation.ErrOriginAlive, "origin-alive"},
	{federation.ErrNotPartnered, "not-partnered"},
	{federation.ErrNotConnected, "not-connected"},
	{fleet.ErrAttemptsExhausted, "attempts-exhausted"},
	{fleet.ErrIdentityBusy, "identity-busy"},
	{fleet.ErrRestoreOnLiveDestination, "restore-on-live-dest"},
	{fleet.ErrNoDestination, "no-destination"},
	{fleet.ErrEmptyPlan, "empty-plan"},
}

// canonErr canonicalizes an error for the history: known sentinels
// resolve to stable short names (joined errors to the sorted "+"-join
// of every matching name), anything else to its message with hex runs
// scrubbed — escrow IDs, binding UUIDs, and nonces are crypto-random
// per run and must never make two same-seed histories differ.
func canonErr(err error) string {
	if err == nil {
		return ""
	}
	var names []string
	for _, s := range sentinels {
		if errors.Is(err, s.err) {
			names = append(names, s.name)
		}
	}
	if len(names) > 0 {
		return strings.Join(names, "+")
	}
	return scrubHex(err.Error())
}

// canonStr scrubs a free-form message the same way canonErr does.
func canonStr(s string) string { return scrubHex(s) }

// scrubHex replaces every run of 4+ hex digits with '#' and newlines
// with "; " so multi-part errors stay one history line.
func scrubHex(s string) string {
	s = strings.ReplaceAll(s, "\n", "; ")
	var b strings.Builder
	run := 0
	flush := func(end int) {
		if run >= 4 {
			b.WriteByte('#')
		} else {
			b.WriteString(s[end-run : end])
		}
		run = 0
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		isHex := c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
		if isHex {
			run++
			continue
		}
		flush(i)
		b.WriteByte(c)
	}
	flush(len(s))
	return b.String()
}
