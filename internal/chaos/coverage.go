package chaos

import (
	"sort"
	"sync"
)

// Coverage records what one run (or an aggregated search) actually
// exercised: how many times each invariant's check was evaluated against
// the history, and how many times each schedule transition executed. A
// seed that never recovers anything proves nothing about R3 — coverage
// makes that visible instead of assumed, and feeds generation bias
// toward the transitions a search has under-visited.
type Coverage struct {
	// Invariants counts evaluations (not violations) per invariant name
	// — monotone, upper-bound, no-fork, exactly-one-resurrection,
	// no-zombie, escrow-order, audit.
	Invariants map[string]int `json:"invariants"`
	// Transitions counts executed schedule steps by op name; the forced
	// site-loss recovery is tracked separately as "recover-wan-forced".
	Transitions map[string]int `json:"transitions"`
}

// NewCoverage returns an empty, ready-to-merge coverage record.
func NewCoverage() Coverage {
	return Coverage{Invariants: map[string]int{}, Transitions: map[string]int{}}
}

// Merge adds another record's counts into this one.
func (c *Coverage) Merge(other Coverage) {
	for k, n := range other.Invariants {
		c.Invariants[k] += n
	}
	for k, n := range other.Transitions {
		c.Transitions[k] += n
	}
}

// InvariantNames lists every invariant the checker evaluates, so
// reports can show zeros for the ones a search never reached.
func InvariantNames() []string {
	return []string{
		"monotone", "upper-bound", "no-fork", "exactly-one-resurrection",
		"no-zombie", "escrow-order", "audit",
	}
}

// transitionKey names a step for coverage and bias purposes.
func transitionKey(s Step) string {
	if s.Op == "recover-wan" && s.Arg == "force" {
		return "recover-wan-forced"
	}
	return s.Op
}

// Bias steers schedule generation toward under-covered transitions: it
// accumulates transition counts across runs (Absorb) and hands the
// generator a weight multiplier per candidate (factor). Ops a search
// has visited least get up to 3× their base weight, so long hunts
// spend their steps where the model has been tested least. A nil *Bias
// multiplies everything by 1 — generation is exactly the unbiased
// distribution, which keeps seeded runs reproducible unless a hunt
// opts in. Replay never consults bias (repros are step lists).
type Bias struct {
	mu     sync.Mutex
	counts map[string]int
}

// NewBias returns an empty bias accumulator.
func NewBias() *Bias { return &Bias{counts: map[string]int{}} }

// Absorb folds a run's transition coverage into the accumulator.
func (b *Bias) Absorb(c Coverage) {
	if b == nil {
		return
	}
	b.mu.Lock()
	for k, n := range c.Transitions {
		b.counts[k] += n
	}
	b.mu.Unlock()
}

// factor returns the weight multiplier for a transition: 3× when it has
// at most a third of the most-visited transition's count, 2× when at
// most two thirds, 1× otherwise (and always 1× before any absorption).
func (b *Bias) factor(key string) int {
	if b == nil {
		return 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	max := 0
	for _, n := range b.counts {
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return 1
	}
	c := b.counts[key]
	switch {
	case c*3 <= max:
		return 3
	case c*3 <= 2*max:
		return 2
	default:
		return 1
	}
}

// Counts returns a copy of the accumulated transition counts, sorted
// keys first for stable reporting.
func (b *Bias) Counts() map[string]int {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.counts))
	for k, n := range b.counts {
		out[k] = n
	}
	return out
}

// SortedKeys returns a coverage map's keys in sorted order.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
