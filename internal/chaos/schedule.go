package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/fleet"
)

// Step is one schedule action in a form concrete enough to replay:
// the op name plus the machine / datacenter / identity it targeted.
// A failing run's minimal repro is just Config.Seed + []Step.
type Step struct {
	// Op is the action kind (kill, restart, rack-restart, partition,
	// heal, flush, drain, rebalance, evacuate, recover-fleet,
	// recover-local, recover-wan, relaunch, replay-recover, reconcile,
	// disconnect, burst).
	Op string `json:"op"`
	// Target is the primary operand: "dc/machine" for machine ops, a
	// datacenter name for site ops, an identity name for app ops.
	Target string `json:"target,omitempty"`
	// Dest is the destination operand ("dc/machine") for recoveries.
	Dest string `json:"dest,omitempty"`
	// Arg carries a modifier ("force" on recover-wan).
	Arg string `json:"arg,omitempty"`
}

func (s Step) String() string {
	out := s.Op
	if s.Target != "" {
		out += " " + s.Target
	}
	if s.Dest != "" {
		out += " -> " + s.Dest
	}
	if s.Arg != "" {
		out += " (" + s.Arg + ")"
	}
	return out
}

// splitRef parses "dc/machine".
func splitRef(ref string) (dc, m string) {
	if i := strings.IndexByte(ref, '/'); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return ref, ""
}

// candidate is a weighted schedule step the current world state admits.
type candidate struct {
	step   Step
	weight int
}

// generate draws and executes n steps from the weighted candidate
// distribution, returning the concrete step list for replay.
func (w *world) generate(n int) []Step {
	steps := make([]Step, 0, n)
	for i := 0; i < n; i++ {
		w.step = i
		cands := w.candidates(i, n)
		total := 0
		for _, c := range cands {
			total += c.weight
		}
		pick := w.rng.Intn(total)
		var s Step
		for _, c := range cands {
			if pick < c.weight {
				s = c.step
				break
			}
			pick -= c.weight
		}
		steps = append(steps, s)
		w.exec(s)
		w.quiesce()
		w.scan()
		w.mon.Evaluate(time.Now())
	}
	return steps
}

// replay executes a recorded step list. Steps whose guards no longer
// hold (because an earlier step was dropped by the shrinker) are
// recorded as skipped and ignored — the remaining schedule still runs.
func (w *world) replay(steps []Step) []Step {
	for i, s := range steps {
		w.step = i
		if !w.applicable(s) {
			w.h.add(Op{Step: i, Kind: "skip", Note: s.String()})
			continue
		}
		w.exec(s)
		w.quiesce()
		w.scan()
		w.mon.Evaluate(time.Now())
	}
	return steps
}

// candidates enumerates every step the current state admits, each with
// its selection weight. Enumeration order is deterministic (fixed DC
// order, sorted machines, launch-ordered identities), so the same seed
// always draws the same step. The burst workload is always available,
// so the slice is never empty.
func (w *world) candidates(i, n int) []candidate {
	cands := []candidate{{Step{Op: "burst"}, 40}}

	for _, dcName := range []string{"dc-a", "dc-b"} {
		dc := w.dc(dcName)
		alive := aliveMachines(dc)
		dead := deadMachines(dc)

		// Kill keeps the rack's f=1 quorum: at least two replica-group
		// members stay up (spare machines don't count toward quorum), and
		// at least two machines overall survive so plans keep a target.
		aliveReplicas := 0
		for _, m := range alive {
			if m.HostsReplica() {
				aliveReplicas++
			}
		}
		if len(alive) > 2 {
			for _, m := range alive {
				quorumAfter := aliveReplicas
				if m.HostsReplica() {
					quorumAfter--
				}
				if quorumAfter < 2 {
					continue
				}
				cands = append(cands, candidate{Step{Op: "kill", Target: machineRef(dcName, m.ID())}, 4})
			}
		}
		for _, m := range dead {
			cands = append(cands, candidate{Step{Op: "restart", Target: machineRef(dcName, m.ID())}, 8})
		}
		cands = append(cands, candidate{Step{Op: "rack-restart", Target: dcName}, 1})

		if len(alive) >= 2 {
			if src := mostLoadedAlive(dc); src != nil && src.AppCount() > 0 {
				cands = append(cands,
					candidate{Step{Op: "drain", Target: machineRef(dcName, src.ID())}, 2},
					candidate{Step{Op: "batch-drain", Target: machineRef(dcName, src.ID())}, 2},
					candidate{Step{Op: "evacuate", Target: machineRef(dcName, src.ID())}, 1})
			}
			cands = append(cands, candidate{Step{Op: "rebalance", Target: dcName}, 2})
		}

		// Fleet-driven and direct recoveries need a dead machine holding
		// lost state and an alive rack peer to resurrect onto.
		if len(alive) > 0 {
			for _, m := range dead {
				if len(m.LostApps()) == 0 {
					continue
				}
				cands = append(cands, candidate{Step{Op: "recover-fleet", Target: machineRef(dcName, m.ID())}, 4})
				if t := leastLoadedAlive(dc, m.ID()); t != nil {
					cands = append(cands, candidate{
						Step{Op: "recover-local", Target: machineRef(dcName, m.ID()), Dest: machineRef(dcName, t.ID())}, 6})
				}
			}
		}
	}

	// Cross-DC recovery: dc-a is the mirrored origin, dc-b the escrow
	// mirror site. Unforced goes through origin arbitration; forced is
	// the declared site-loss path.
	if !w.disconnected {
		for _, m := range deadMachines(w.dcA) {
			if len(m.LostApps()) == 0 {
				continue
			}
			if t := leastLoadedAlive(w.dcB, ""); t != nil {
				src, dst := machineRef("dc-a", m.ID()), machineRef("dc-b", t.ID())
				cands = append(cands,
					candidate{Step{Op: "recover-wan", Target: src, Dest: dst}, 5},
					candidate{Step{Op: "recover-wan", Target: src, Dest: dst, Arg: "force"}, 2})
			}
		}
	}

	for _, id := range w.ids {
		if id.lost {
			if t := leastLoadedAlive(w.dc(id.lostDC), ""); t != nil {
				cands = append(cands, candidate{
					Step{Op: "relaunch", Target: id.name, Dest: machineRef(id.lostDC, t.ID())}, 3})
			}
		}
		// The adversarial probe: re-run recovery from the consumed origin
		// record of an identity that already resurrected cross-DC. Must
		// always lose the binding arbitration (R3: exactly one).
		if id.replayable {
			if t := leastLoadedAlive(w.dcA, ""); t != nil {
				cands = append(cands, candidate{
					Step{Op: "replay-recover", Target: id.name, Dest: machineRef("dc-a", t.ID())}, 4})
			}
		}
	}

	if !w.disconnected {
		cands = append(cands, candidate{Step{Op: "partition", Target: boolName(!w.partitioned)}, partitionWeight(w.partitioned)})
		cands = append(cands, candidate{Step{Op: "flush"}, 8})
		// Disconnect is permanent (grant revocation); only allow it near
		// the end of the schedule so it cannot sterilize a whole run.
		if i >= n-n/5-1 {
			cands = append(cands, candidate{Step{Op: "disconnect"}, 1})
		}
	}
	if w.fed.PendingRevocations() > 0 {
		cands = append(cands, candidate{Step{Op: "reconcile"}, 6})
	}
	// Coverage bias (opt-in): boost transitions the hunt has visited
	// least. With no bias configured every factor is 1 and the draw is
	// the unbiased seed-deterministic distribution.
	if w.cfg.Bias != nil {
		for j := range cands {
			cands[j].weight *= w.cfg.Bias.factor(transitionKey(cands[j].step))
		}
	}
	return cands
}

func boolName(down bool) string {
	if down {
		return "down"
	}
	return "up"
}

func partitionWeight(partitioned bool) int {
	if partitioned {
		return 6 // healing is likelier than cutting
	}
	return 3
}

// applicable re-evaluates a step's guard against current state; used in
// replay mode where the shrinker may have dropped the steps that made
// this one legal.
func (w *world) applicable(s Step) bool {
	dcName, mid := splitRef(s.Target)
	switch s.Op {
	case "burst", "flush", "rack-restart", "rebalance":
		return true
	case "kill":
		m, ok := w.dc(dcName).Machine(mid)
		return ok && m.Alive()
	case "restart":
		m, ok := w.dc(dcName).Machine(mid)
		return ok && !m.Alive()
	case "drain", "batch-drain", "evacuate":
		m, ok := w.dc(dcName).Machine(mid)
		return ok && m.Alive() && len(aliveMachines(w.dc(dcName))) >= 2
	case "wan-drain":
		// Deliberately allowed while partitioned: a batched WAN drain
		// into a down link must park its members safely, never corrupt
		// them — that is exactly what a replay schedule probes.
		m, ok := w.dc(dcName).Machine(mid)
		return ok && m.Alive() && !w.disconnected && len(aliveMachines(w.other(dcName))) >= 1
	case "recover-fleet", "recover-local", "recover-wan":
		m, ok := w.dc(dcName).Machine(mid)
		if !ok || m.Alive() || len(m.LostApps()) == 0 {
			return false
		}
		if s.Dest != "" {
			dDC, dID := splitRef(s.Dest)
			dm, ok := w.dc(dDC).Machine(dID)
			if !ok || !dm.Alive() {
				return false
			}
		}
		return s.Op != "recover-wan" || !w.disconnected
	case "relaunch":
		id, ok := w.byName[s.Target]
		if !ok || !id.lost {
			return false
		}
		dDC, dID := splitRef(s.Dest)
		dm, ok := w.dc(dDC).Machine(dID)
		return ok && dm.Alive()
	case "replay-recover":
		id, ok := w.byName[s.Target]
		if !ok || !id.replayable {
			return false
		}
		dDC, dID := splitRef(s.Dest)
		dm, ok := w.dc(dDC).Machine(dID)
		return ok && dm.Alive()
	case "partition":
		return !w.disconnected && (s.Target == "down") != w.partitioned
	case "reconcile":
		return w.fed.PendingRevocations() > 0
	case "disconnect":
		return !w.disconnected
	default:
		return false
	}
}

// exec runs one step, recording everything it did into the history.
func (w *world) exec(s Step) {
	w.cov.Transitions[transitionKey(s)]++
	dcName, mid := splitRef(s.Target)
	switch s.Op {
	case "burst":
		w.burst()
	case "kill":
		m, _ := w.dc(dcName).Machine(mid)
		m.Kill()
		w.h.add(Op{Step: w.step, Kind: "kill", Note: s.Target})
		w.markLost(dcName, m)
		w.pruneProbes()
	case "restart":
		m, _ := w.dc(dcName).Machine(mid)
		err := m.Restart()
		w.h.add(Op{Step: w.step, Kind: "restart", Note: s.Target, Err: canonErr(err)})
	case "rack-restart":
		w.rackRestart(dcName)
	case "partition":
		down := s.Target == "down"
		w.link.SetDown(down)
		w.partitioned = down
		kind := "heal"
		if down {
			kind = "partition"
		}
		w.h.add(Op{Step: w.step, Kind: kind})
	case "flush":
		err := w.mirror.Flush()
		w.h.add(Op{Step: w.step, Kind: "flush", Err: canonErr(err)})
	case "drain":
		w.runPlan(dcName, "drain "+mid, fleet.Drain(mid))
	case "batch-drain":
		// The streamed pipeline under chaos: same drain intent, but the
		// orchestrator groups same-(source,dest) enclaves into batches of
		// four over one resumed session. R1–R4 must hold exactly as for
		// the one-at-a-time path.
		w.runPlanBatched(dcName, "batch-drain "+mid, fleet.Drain(mid), chaosBatchSize)
	case "wan-drain":
		// Batched evacuation across the lossy WAN link. Directed-replay
		// only (not generated): concurrent chunk/ack traffic draws the
		// link's loss RNG in goroutine order, which would break schedule
		// determinism. Loss or a standing partition strands members
		// mid-batch; they must park frozen with their tokens and resume
		// on a later plan, never fork.
		var remotes []fleet.RemoteTarget
		for _, m := range aliveMachines(w.other(dcName)) {
			remotes = append(remotes, fleet.RemoteTarget{Machine: m, Link: w.link.Name()})
		}
		plan := fleet.Plan{Intent: fleet.IntentEvacuate, Sources: []string{mid}, RemoteTargets: remotes}
		w.runPlanBatched(dcName, "wan-drain "+mid, plan, chaosBatchSize)
	case "rebalance":
		w.runPlan(dcName, "rebalance", fleet.Rebalance())
	case "evacuate":
		dc := w.dc(dcName)
		var targets []string
		for _, m := range aliveMachines(dc) {
			if m.ID() != mid {
				targets = append(targets, m.ID())
			}
		}
		w.runPlan(dcName, "evacuate "+mid, fleet.Evacuate([]string{mid}, targets))
	case "recover-fleet":
		dc := w.dc(dcName)
		var targets []string
		for _, m := range aliveMachines(dc) {
			targets = append(targets, m.ID())
		}
		w.runPlan(dcName, "recover "+mid, fleet.RecoverLost([]string{mid}, targets))
	case "recover-local":
		_, dID := splitRef(s.Dest)
		apps, err := w.dc(dcName).RecoverMachine(mid, dID)
		w.h.add(Op{Step: w.step, Kind: "recover-local", Note: s.Target + "->" + s.Dest, Err: canonErr(err)})
		w.adoptRecovered(apps, "local", false)
	case "recover-wan":
		force := s.Arg == "force"
		_, dID := splitRef(s.Dest)
		apps, err := w.fed.RecoverMachine("dc-a", mid, "dc-b", dID, force)
		note := s.Target + "->" + s.Dest
		if force {
			note += " forced"
		}
		w.h.add(Op{Step: w.step, Kind: "recover-wan", Note: note, Err: canonErr(err)})
		if force {
			w.adoptRecovered(apps, "wan forced", false)
		} else {
			w.adoptRecovered(apps, "wan", true)
		}
	case "relaunch":
		id := w.byName[s.Target]
		dDC, dID := splitRef(s.Dest)
		m, _ := w.dc(dDC).Machine(dID)
		app, err := m.RecoverApp(id.img, id.escrowID)
		w.h.add(Op{Step: w.step, Kind: "relaunch", App: id.name, Note: s.Dest, Err: canonErr(err)})
		if err == nil {
			w.adoptRecovered([]*cloud.App{app}, "direct", false)
		}
	case "replay-recover":
		id := w.byName[s.Target]
		dDC, dID := splitRef(s.Dest)
		m, _ := w.dc(dDC).Machine(dID)
		// Deliberately NOT adopted on success: a success here is a second
		// resurrection from a consumed record — the fork the checker must
		// catch. The correct outcome is an escrow-consumed error. A fork
		// that does appear becomes a probe, so subsequent bursts witness
		// it making progress (the no-zombie/no-fork violation).
		app, err := m.RecoverApp(id.img, id.escrowID)
		w.h.add(Op{Step: w.step, Kind: "replay-recover", App: id.name, Note: s.Dest, Err: canonErr(err)})
		if err == nil {
			w.addProbe(probe{id: id.name, inst: -1, app: app, slot: id.ctrs[0]})
		}
	case "reconcile":
		err := w.fed.Reconcile()
		w.h.add(Op{Step: w.step, Kind: "reconcile", Err: canonErr(err)})
	case "disconnect":
		err := w.fed.Disconnect("dc-a", "dc-b")
		w.disconnected = true
		w.partitioned = true
		w.h.add(Op{Step: w.step, Kind: "disconnect", Err: canonErr(err)})
	}
}

// burst drives the nemesis workload: per live identity, increment every
// counter, read one back, and issue an app request (a migratable seal);
// then read through every retained zombie probe. An increment that
// reports recovered-away demotes the identity's pointer — that
// incarnation was resurrected elsewhere and can never serve again.
func (w *world) burst() {
	for _, id := range w.ids {
		if id.app == nil {
			continue
		}
		demote := false
		for si, slot := range id.ctrs {
			v, err := id.app.Library.IncrementCounter(slot)
			w.h.add(Op{Step: w.step, Kind: "inc", App: id.name, Slot: si, Inst: id.inst, Val: v, Err: canonErr(err)})
			if isRecoveredAway(err) {
				demote = true
			}
		}
		v, err := id.app.Library.ReadCounter(id.ctrs[0])
		w.h.add(Op{Step: w.step, Kind: "read", App: id.name, Slot: 0, Inst: id.inst, Val: v, Err: canonErr(err)})
		_, err = id.app.Library.SealMigratable([]byte("chaos-req"), []byte("payload"))
		w.h.add(Op{Step: w.step, Kind: "request", App: id.name, Inst: id.inst, Err: canonErr(err)})
		if isRecoveredAway(err) {
			demote = true
		}
		if demote {
			w.addProbe(probe{id: id.name, inst: id.inst, app: id.app, slot: id.ctrs[0]})
			w.h.add(Op{Step: w.step, Kind: "lost", App: id.name, Inst: id.inst, Note: "recovered-away"})
			id.app = nil
			id.lost = true
		}
	}
	// Zombie probes drive a persisting operation: a retired incarnation
	// must refuse (frozen or recovered-away); success is a fork.
	for _, p := range w.probes {
		if !p.app.Machine().Alive() {
			continue
		}
		_, _, err := p.app.Library.CreateCounter()
		w.h.add(Op{Step: w.step, Kind: "probe", App: p.id, Inst: p.inst, Err: canonErr(err)})
	}
}

func isRecoveredAway(err error) bool {
	return err != nil && canonErr(err) == "recovered-away"
}

// rackRestart cold-restarts an entire site: kill every alive machine,
// restart all members, then run a second reseed pass — the first
// (inside Restart) finds its peers still down; the second completes
// once everyone is back (unsynced replicas answer collect requests).
func (w *world) rackRestart(dcName string) {
	dc := w.dc(dcName)
	for _, m := range aliveMachines(dc) {
		m.Kill()
		w.markLost(dcName, m)
	}
	w.pruneProbes()
	var restartErrs, reseedErrs int
	for _, m := range dc.Machines() {
		if err := m.Restart(); err != nil {
			restartErrs++
		}
	}
	if g, ok := dc.ReplicaGroup("rack-" + dcName[len(dcName)-1:]); ok {
		g.Quiesce()
		for _, m := range dc.Machines() {
			if err := g.Reseed(m.ID()); err != nil {
				reseedErrs++
			}
		}
	}
	w.h.add(Op{Step: w.step, Kind: "rack-restart", Note: fmt.Sprintf("%s restart-errs=%d reseed-errs=%d", dcName, restartErrs, reseedErrs)})
}

// pruneProbes drops probes whose hosting machine died — a dead enclave
// cannot serve, so it no longer witnesses the zombie invariant.
func (w *world) pruneProbes() {
	kept := w.probes[:0]
	for _, p := range w.probes {
		if p.app.Machine().Alive() {
			kept = append(kept, p)
		}
	}
	w.probes = kept
}

// chaosBatchSize is the batch width the batched plan ops use: wide
// enough that grouping, chunk pipelining, and cumulative acks are all
// exercised, small enough that a few-app machine still forms a batch.
const chaosBatchSize = 4

// runPlan executes a fleet plan with one worker and deterministic
// (jitter-free) backoff, records the sorted journal, and re-resolves
// every identity's live pointer.
func (w *world) runPlan(dcName, intent string, plan fleet.Plan) {
	w.runPlanBatched(dcName, intent, plan, 1)
}

// runPlanBatched is runPlan with an orchestrator batch size: size 1 is
// the classic one-at-a-time path, larger sizes route same-destination
// groups through the streamed batch pipeline. Journal entries are
// recorded in sorted order, so a healthy batched plan replays
// deterministically even though members freeze and restore on pool
// goroutines.
func (w *world) runPlanBatched(dcName, intent string, plan fleet.Plan, batchSize int) {
	o := fleet.New(w.dc(dcName), fleet.Config{
		Workers:      1,
		BatchSize:    batchSize,
		MaxAttempts:  3,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   2 * time.Millisecond,
		Obs:          w.obs,
	})
	rep, err := o.Execute(context.Background(), plan)
	w.h.add(Op{Step: w.step, Kind: "plan", Note: canonStr(intent), Err: canonErr(err)})
	if rep != nil && rep.Journal != nil {
		entries := rep.Journal.Entries()
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].App != entries[j].App {
				return entries[i].App < entries[j].App
			}
			return entries[i].Source < entries[j].Source
		})
		for _, e := range entries {
			w.h.add(Op{Step: w.step, Kind: "plan-entry", App: e.App,
				Note: fmt.Sprintf("%s->%s attempts=%d recovered=%t status=%s", e.Source, e.Dest, e.Attempts, e.Recovered, e.Status),
				Err:  canonStr(e.Err)})
		}
	}
	for _, id := range w.ids {
		w.relocate(id)
	}
}
