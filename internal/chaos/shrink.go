package chaos

import (
	"fmt"
	"strings"
)

// Repro is a minimal reproduction of a failing schedule: re-running
// Run with Config{Seed: Seed, Replay: Steps, ...} reproduces the
// violations deterministically.
type Repro struct {
	Seed       int64       `json:"seed"`
	Config     Config      `json:"config"`
	Steps      []Step      `json:"steps"`
	Violations []Violation `json:"violations"`
}

// String renders the repro as seed + numbered step list, the form the
// CLI prints and EXPERIMENTS.md documents.
func (r *Repro) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d, %d steps:\n", r.Seed, len(r.Steps))
	for i, s := range r.Steps {
		fmt.Fprintf(&b, "  %2d. %s\n", i, s)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  => %s\n", v)
	}
	return b.String()
}

// Shrink delta-debugs a failing schedule down to a locally minimal
// still-failing step list: it repeatedly re-runs the schedule with
// chunks removed (halving chunk size down to single steps), keeping
// any smaller variant that still violates an invariant. Replay mode
// re-evaluates step guards, so dropping a prerequisite step simply
// skips its dependents rather than crashing the run.
//
// The budget caps total re-runs (each is a full deterministic run);
// <= 0 means a default of 200.
func Shrink(cfg Config, steps []Step, budget int) (*Repro, error) {
	if budget <= 0 {
		budget = 200
	}
	fails := func(candidate []Step) ([]Violation, error) {
		c := cfg
		c.Replay = candidate
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		return res.Violations, nil
	}

	cur := append([]Step(nil), steps...)
	viol, err := fails(cur)
	if err != nil {
		return nil, err
	}
	budget--
	if len(viol) == 0 {
		return nil, fmt.Errorf("chaos: schedule does not fail under replay; nothing to shrink")
	}

	for chunk := len(cur) / 2; chunk >= 1 && budget > 0; {
		removed := false
		for start := 0; start+chunk <= len(cur) && budget > 0; {
			cand := make([]Step, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			v, err := fails(cand)
			budget--
			if err != nil {
				return nil, err
			}
			if len(v) > 0 {
				cur, viol = cand, v
				removed = true
				// Do not advance start: the next chunk shifted into place.
				continue
			}
			start += chunk
		}
		if !removed || chunk > len(cur) {
			chunk /= 2
		}
	}

	final := cfg
	final.Replay = cur
	return &Repro{Seed: cfg.Seed, Config: final, Steps: cur, Violations: viol}, nil
}
