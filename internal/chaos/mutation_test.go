//go:build chaosmut

package chaos

import (
	"strings"
	"testing"
)

// replaySchedule is the deterministic double-resurrection scenario: a
// machine dies, its enclave resurrects cross-DC with origin
// arbitration, and the adversary then replays recovery from the
// consumed origin record. On a healthy build the replay must lose the
// binding arbitration (escrow-consumed); under the chaosmut fault —
// which deletes the binding read-check and the DestroyAndRead win from
// Recover — the replay "succeeds" and forks the enclave.
var replaySchedule = []Step{
	{Op: "flush"},
	{Op: "kill", Target: "dc-a/a1"},
	{Op: "recover-wan", Target: "dc-a/a1", Dest: "dc-b/b1"},
	{Op: "replay-recover", Target: "app-00", Dest: "dc-a/a2"},
	{Op: "burst"},
}

func mutationConfig() Config {
	return Config{Seed: 1, Machines: 3, Apps: 1, Counters: 1, Replay: replaySchedule}
}

// TestMutationCaught is the harness's self-test: with the no-fork
// mechanism deleted (build tag chaosmut), the chaos checker MUST catch
// the resulting double resurrection. A pass here demonstrates the
// invariant checker has teeth — it is run in CI alongside the healthy
// build's zero-violation runs.
func TestMutationCaught(t *testing.T) {
	res, err := Run(mutationConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Failed() {
		t.Fatalf("checker missed the injected double resurrection; history:\n%s",
			res.History.Fingerprint())
	}
	var replayCaught, progressCaught bool
	for _, v := range res.Violations {
		t.Logf("caught: %s", v)
		switch v.Invariant {
		case "exactly-one-resurrection":
			replayCaught = true
		case "no-zombie", "no-fork":
			progressCaught = true
		}
	}
	if !replayCaught {
		t.Error("no exactly-one-resurrection violation for the successful replay")
	}
	if !progressCaught {
		t.Error("no violation for the fork making progress")
	}
}

// TestMutationShrinks asserts a failing schedule shrinks to a smaller
// still-failing repro. The audit invariant (resurrection without a
// binding win) catches the mutation on the very first recovery, so the
// minimal repro keeps only the causal chain to one resurrection:
// flush -> kill -> recover-wan.
func TestMutationShrinks(t *testing.T) {
	repro, err := Shrink(mutationConfig(), replaySchedule, 50)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if len(repro.Steps) >= len(replaySchedule) {
		t.Errorf("shrink kept all %d steps", len(repro.Steps))
	}
	if len(repro.Violations) == 0 {
		t.Error("shrunken schedule no longer fails")
	}
	if !strings.Contains(repro.String(), "recover-wan") {
		t.Errorf("minimal repro lost the recovery step:\n%s", repro)
	}
}
