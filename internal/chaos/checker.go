package chaos

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Violation is one invariant breach the checker found in a history.
type Violation struct {
	// Invariant names the broken guarantee (monotone, upper-bound,
	// no-fork, exactly-one-resurrection, no-zombie, escrow-order,
	// audit).
	Invariant string `json:"invariant"`
	// OpIndex is the history index of the violating op (-1 for
	// whole-run audit inconsistencies).
	OpIndex int `json:"op"`
	// Detail explains the breach.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] op %d: %s", v.Invariant, v.OpIndex, v.Detail)
}

// ctrKey identifies one app counter slot.
type ctrKey struct {
	app  string
	slot int
}

// escrowKey identifies one escrow instance's record sequence in one
// rack (ord is the per-identity instance ordinal: migration mints a
// fresh instance whose versions restart at 1).
type escrowKey struct {
	rack string
	app  string
	ord  int
}

// Check replays a history against the paper's R1–R4 guarantees plus
// the audit-stream consistency rules, returning every violation found.
// owners maps audit actor strings ("lib:<mrenclave>") to identity
// names; events is the run's full obs.EventLog.
//
// Invariants, in terms of the paper:
//   - monotone (R2, no rollback): a successful increment returns a
//     value strictly greater than every previously observed value of
//     that counter; a successful read returns at least the maximum.
//     Cross-DC recoveries (forced or not) resurrect from the partner's
//     shadow counters, whose values trail the origin by the mirror lag
//     — the documented value RPO — so a WAN recovery lowers the floor
//     to the value at the last fully successful mirror flush, never
//     further. Intra-DC recoveries read the rack's live counters and
//     get no allowance at all.
//   - upper-bound (R2): no counter value exceeds the number of
//     increment attempts ever issued against the slot, +1 slack for
//     the creation draw. A value above the bound means an increment
//     was double-applied or state was forged.
//   - no-fork (R1): every post-step scan sees at most one unfrozen
//     live instance per enclave identity across both sites.
//   - exactly-one-resurrection (R3): a recovery success requires the
//     identity to be lost — a second success for a live identity is a
//     double resurrection. A replay-recover success is by construction
//     a second resurrection from a consumed record and always counts.
//   - no-zombie (R4): no operation issued against a retired
//     incarnation (zombie probe) ever succeeds.
//   - escrow-order: committed escrow versions per (rack, identity)
//     strictly increase (a tombstone is terminal by construction —
//     nothing exceeds it).
//   - audit: the event stream agrees with the history — resurrection
//     events per identity never exceed binding wins (every winner won
//     the DestroyAndRead race); recovery successes in the history
//     equal resurrection events; recovered-away errors imply a
//     zombie-refused event; forced-failover events appear iff a forced
//     recovery ran.
func Check(h *History, events []obs.AuditEvent, owners map[string]string) []Violation {
	violations, _ := CheckCoverage(h, events, owners)
	return violations
}

// CheckCoverage is Check plus an exercise record: alongside the
// violations it counts, per invariant, how many times the history
// actually evaluated that invariant's predicate — the search-quality
// signal cmd/chaoshunt aggregates and reports.
func CheckCoverage(h *History, events []obs.AuditEvent, owners map[string]string) ([]Violation, Coverage) {
	var out []Violation
	cov := NewCoverage()
	add := func(inv string, op int, format string, args ...any) {
		out = append(out, Violation{Invariant: inv, OpIndex: op, Detail: fmt.Sprintf(format, args...)})
	}
	exercised := func(inv string) { cov.Invariants[inv]++ }

	maxSeen := map[ctrKey]uint32{}
	flushFloor := map[ctrKey]uint32{}
	attempts := map[ctrKey]int{}
	live := map[string]bool{}
	recoverOK := map[string]int{}
	lastEscrow := map[escrowKey]uint32{}
	sawRecoveredAway := false
	forcedCalls, forcedSuccesses := 0, 0

	for _, op := range h.Ops() {
		if strings.Contains(op.Err, "recovered-away") {
			sawRecoveredAway = true
		}
		switch op.Kind {
		case "launch":
			live[op.App] = true
		case "lost":
			live[op.App] = false
		case "migrate":
			live[op.App] = true
		case "recover":
			exercised("exactly-one-resurrection")
			if live[op.App] {
				add("exactly-one-resurrection", op.I,
					"%s recovered (%s) while an incarnation was still live", op.App, op.Note)
			}
			live[op.App] = true
			recoverOK[op.App]++
			if strings.HasPrefix(op.Note, "wan forced") {
				forcedSuccesses++
			}
			if strings.HasPrefix(op.Note, "wan") {
				// Cross-DC resurrection restores shadow-counter values,
				// which trail the origin by the mirror lag: the monotone
				// floor falls back to the last fully flushed value — the
				// documented RPO bound — and no further.
				for k := range maxSeen {
					if k.app == op.App {
						maxSeen[k] = flushFloor[k]
					}
				}
			}
		case "relaunch":
			// Call-level record; success is followed by a "recover" op.
		case "replay-recover":
			exercised("exactly-one-resurrection")
			if op.Err == "" {
				add("exactly-one-resurrection", op.I,
					"%s: replay of a consumed escrow record succeeded — double resurrection", op.App)
			}
		case "recover-wan":
			if strings.Contains(op.Note, "forced") {
				forcedCalls++
			}
		case "inc":
			k := ctrKey{op.App, op.Slot}
			attempts[k]++
			if op.Err == "" {
				exercised("monotone")
				exercised("upper-bound")
				if op.Val <= maxSeen[k] {
					add("monotone", op.I, "%s slot %d: increment returned %d, floor was %d",
						op.App, op.Slot, op.Val, maxSeen[k])
				}
				maxSeen[k] = op.Val
				if op.Val > uint32(attempts[k])+1 {
					add("upper-bound", op.I, "%s slot %d: value %d exceeds %d increment attempts",
						op.App, op.Slot, op.Val, attempts[k])
				}
			}
		case "read":
			k := ctrKey{op.App, op.Slot}
			if op.Err == "" {
				exercised("monotone")
				exercised("upper-bound")
				if op.Val < maxSeen[k] {
					add("monotone", op.I, "%s slot %d: read %d rolled back below floor %d",
						op.App, op.Slot, op.Val, maxSeen[k])
				}
				if op.Val > maxSeen[k] {
					maxSeen[k] = op.Val
				}
				if op.Val > uint32(attempts[k])+1 {
					add("upper-bound", op.I, "%s slot %d: read %d exceeds %d increment attempts",
						op.App, op.Slot, op.Val, attempts[k])
				}
			}
		case "flush":
			if op.Err == "" {
				// Every mirrored instance is now current: the RPO floor
				// advances to each counter's present value. Partial or
				// failed flushes advance nothing (conservative).
				for k, v := range maxSeen {
					if v > flushFloor[k] {
						flushFloor[k] = v
					}
				}
			}
		case "probe":
			exercised("no-zombie")
			if op.Err == "" {
				add("no-zombie", op.I, "%s incarnation %d (retired) made persistent progress",
					op.App, op.Inst)
			}
		case "scan":
			exercised("no-fork")
			if op.Val > 1 {
				add("no-fork", op.I, "%s: %d unfrozen live instances", op.App, op.Val)
			}
		case "escrow":
			// Strictly increasing also makes tombstones terminal: no
			// version exceeds EscrowTombstoneVersion (^uint32(0)), so any
			// commit after one trips the same check.
			k := escrowKey{op.Note, op.App, op.Inst}
			if _, ok := lastEscrow[k]; ok {
				exercised("escrow-order")
			}
			if prev, ok := lastEscrow[k]; ok && op.Val <= prev {
				add("escrow-order", op.I, "%s instance %d at %s: version %d after %d",
					op.App, op.Inst, op.Note, op.Val, prev)
			}
			lastEscrow[k] = op.Val
		}
	}

	// Audit-stream cross-checks.
	resurrections := map[string]int{}
	bindingWins := map[string]int{}
	zombieRefused, siteLoss := 0, 0
	for _, ev := range events {
		name := owners[ev.Actor]
		switch ev.Type {
		case obs.EventResurrection:
			if name != "" {
				resurrections[name]++
			}
		case obs.EventBindingWin:
			if name != "" {
				bindingWins[name]++
			}
		case obs.EventZombieRefused:
			zombieRefused++
		case obs.EventSiteLossFailover:
			siteLoss++
		}
	}
	// The whole-run audit reconciliation always executes, so it counts as
	// one evaluation even on quiet histories; every per-identity
	// comparison adds another.
	exercised("audit")
	for app, n := range resurrections {
		exercised("audit")
		if n > bindingWins[app] {
			add("audit", -1, "%s: %d resurrection events but only %d binding wins — a recovery skipped arbitration",
				app, n, bindingWins[app])
		}
		if n != recoverOK[app] {
			add("audit", -1, "%s: %d resurrection events vs %d recovery successes in history",
				app, n, recoverOK[app])
		}
	}
	for app, n := range recoverOK {
		exercised("audit")
		if resurrections[app] < n {
			add("audit", -1, "%s: history has %d recovery successes but only %d resurrection events",
				app, n, resurrections[app])
		}
	}
	if sawRecoveredAway && zombieRefused == 0 {
		add("audit", -1, "history observed recovered-away but no zombie-refused event was emitted")
	}
	if forcedSuccesses > 0 && siteLoss == 0 {
		add("audit", -1, "forced recovery succeeded but no site-loss-failover event was emitted")
	}
	if siteLoss > 0 && forcedCalls == 0 {
		add("audit", -1, "site-loss-failover events present but no forced recovery in history")
	}
	return out, cov
}
