// Package sgx simulates the Intel SGX hardware primitives that the paper's
// migration framework is built on: per-machine CPU secrets, enclave
// loading and measurement (MRENCLAVE/MRSIGNER), EGETKEY key derivation,
// EREPORT local attestation reports, and an Enclave Page Cache with
// encryption, integrity, and anti-replay protection.
//
// The simulation preserves the properties every protocol step and attack
// in the paper depends on:
//
//   - Keys derived via EGETKEY are bound to a per-machine CPU secret and to
//     the enclave's identity, so sealed data cannot move between machines.
//   - Local attestation reports verify only on the machine that produced
//     them, because the report MAC key derives from the same CPU secret.
//   - Enclave memory is destroyed when the enclave, its host application,
//     or the machine goes away; only explicitly persisted state survives.
package sgx

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/sim"
	"repro/internal/xcrypto"
)

// Errors returned by machine and enclave operations.
var (
	ErrEnclaveDestroyed = errors.New("sgx: enclave destroyed")
	ErrUnknownEnclave   = errors.New("sgx: unknown enclave")
	ErrBadImage         = errors.New("sgx: invalid enclave image")
)

// MachineID names a physical machine in the simulation.
type MachineID string

// Measurement is a 256-bit identity hash (MRENCLAVE or MRSIGNER).
type Measurement [32]byte

// String renders the first bytes of a measurement for diagnostics.
func (m Measurement) String() string { return fmt.Sprintf("%x", m[:6]) }

// EnclaveID identifies a loaded enclave instance on one machine.
type EnclaveID uint64

// Machine models one physical SGX-capable machine: a unique CPU secret,
// the set of currently loaded enclaves, and the shared latency model.
// All methods are safe for concurrent use.
type Machine struct {
	id        MachineID
	cpuSecret [32]byte
	lat       *sim.Latency

	mu       sync.Mutex
	enclaves map[EnclaveID]*Enclave
	nextID   EnclaveID
	epoch    uint64 // increments on restart; invalidates live enclaves

	// keyCache memoizes deriveKey results. Derivation is a pure function
	// of the CPU secret and its inputs, so EGETKEY-heavy paths (sealing on
	// every library persist) skip the HKDF on repeat derivations. The
	// simulated EGETKEY latency is still charged per call by the enclave.
	keyMu    sync.RWMutex
	keyCache map[string][32]byte
}

// maxKeyCache bounds the memoized derivations per machine; reaching it
// flushes the cache (key IDs are attacker-influenced in principle, so the
// cache must not grow without bound).
const maxKeyCache = 4096

// NewMachine creates a machine with a fresh random CPU secret.
func NewMachine(id MachineID, lat *sim.Latency) (*Machine, error) {
	secret, err := xcrypto.RandomBytes(32)
	if err != nil {
		return nil, fmt.Errorf("cpu secret: %w", err)
	}
	m := &Machine{
		id:       id,
		lat:      lat,
		enclaves: make(map[EnclaveID]*Enclave),
	}
	copy(m.cpuSecret[:], secret)
	return m, nil
}

// ID returns the machine identifier.
func (m *Machine) ID() MachineID { return m.id }

// Latency exposes the machine's latency model (used by firmware services
// such as the Platform Services Enclave that live on the same machine).
func (m *Machine) Latency() *sim.Latency { return m.lat }

// Load creates an enclave from an image, measuring it page by page as the
// SGX loader would. The returned enclave is live until destroyed.
func (m *Machine) Load(img *Image) (*Enclave, error) {
	if err := img.validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	e := &Enclave{
		id:        m.nextID,
		machine:   m,
		mrenclave: img.Measure(),
		mrsigner:  img.SignerID(),
		epoch:     m.epoch,
	}
	m.enclaves[e.id] = e
	return e, nil
}

// Destroy tears down an enclave, irrecoverably losing its data memory
// (SGX Developer Guide: close/crash/shutdown all destroy the enclave).
func (m *Machine) Destroy(e *Enclave) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.enclaves, e.id)
	e.destroy()
}

// Restart simulates a machine reboot (or hibernate): every live enclave is
// destroyed. Persistent storage outside the EPC is unaffected; the CPU
// secret is stable across reboots, exactly as on real hardware.
func (m *Machine) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, e := range m.enclaves {
		e.destroy()
		delete(m.enclaves, id)
	}
	m.epoch++
}

// LiveEnclaves returns the number of currently loaded enclaves.
func (m *Machine) LiveEnclaves() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.enclaves)
}

// deriveKey is the machine-internal root derivation: every EGETKEY and
// report key flows through here, bound to the CPU secret. Results are
// memoized: the derivation is deterministic, so repeat requests (native
// sealing re-fetching the same sealing key on every call) hit the cache.
func (m *Machine) deriveKey(label string, context ...[]byte) [32]byte {
	// Canonical cache key: the same length-prefixed encoding DeriveKey
	// uses for its info string, so distinct inputs never alias.
	ck := make([]byte, 0, 96)
	ck = append(ck, label...)
	for _, c := range context {
		ck = append(ck, byte(len(c)>>8), byte(len(c)))
		ck = append(ck, c...)
	}
	key := string(ck)

	m.keyMu.RLock()
	v, ok := m.keyCache[key]
	m.keyMu.RUnlock()
	if ok {
		return v
	}
	v = xcrypto.DeriveKey(m.cpuSecret[:], label, context...)
	m.keyMu.Lock()
	if m.keyCache == nil || len(m.keyCache) >= maxKeyCache {
		m.keyCache = make(map[string][32]byte, 64)
	}
	m.keyCache[key] = v
	m.keyMu.Unlock()
	return v
}
