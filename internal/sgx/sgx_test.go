package sgx

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testSigner(t *testing.T) ed25519.PublicKey {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	return pub
}

func testMachine(t *testing.T, id MachineID) *Machine {
	t.Helper()
	m, err := NewMachine(id, sim.NewInstantLatency())
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return m
}

func testImage(t *testing.T, name string, version uint32) *Image {
	t.Helper()
	return &Image{
		Name:            name,
		Version:         version,
		Code:            []byte("enclave code for " + name),
		SignerPublicKey: testSigner(t),
	}
}

func TestMeasurementDeterministicAcrossMachines(t *testing.T) {
	img := testImage(t, "app", 1)
	m1 := testMachine(t, "A")
	m2 := testMachine(t, "B")
	e1, err := m1.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m2.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if e1.MREnclave() != e2.MREnclave() {
		t.Fatal("same image measured differently on two machines")
	}
	if e1.MRSigner() != e2.MRSigner() {
		t.Fatal("same signer hashed differently on two machines")
	}
}

func TestMeasurementSensitivity(t *testing.T) {
	base := testImage(t, "app", 1)
	tests := []struct {
		name   string
		mutate func(*Image)
	}{
		{"different name", func(i *Image) { i.Name = "app2" }},
		{"different version", func(i *Image) { i.Version = 2 }},
		{"different code", func(i *Image) { i.Code = []byte("patched") }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			other := *base
			other.Code = append([]byte(nil), base.Code...)
			tt.mutate(&other)
			if other.Measure() == base.Measure() {
				t.Fatal("mutation did not change MRENCLAVE")
			}
		})
	}
	t.Run("different signer changes MRSIGNER not MRENCLAVE", func(t *testing.T) {
		other := *base
		other.SignerPublicKey = testSigner(t)
		if other.SignerID() == base.SignerID() {
			t.Fatal("signer change did not alter MRSIGNER")
		}
		if other.Measure() != base.Measure() {
			t.Fatal("signer change altered MRENCLAVE")
		}
	})
}

// Property: page-boundary shifts in code always change the measurement.
func TestMeasurementCodeProperty(t *testing.T) {
	signer := testSigner(t)
	f := func(a, b []byte) bool {
		imgA := &Image{Name: "p", Code: a, SignerPublicKey: signer}
		imgB := &Image{Name: "p", Code: b, SignerPublicKey: signer}
		if string(a) == string(b) {
			return imgA.Measure() == imgB.Measure()
		}
		return imgA.Measure() != imgB.Measure()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsBadImages(t *testing.T) {
	m := testMachine(t, "A")
	if _, err := m.Load(nil); !errors.Is(err, ErrBadImage) {
		t.Fatalf("nil image: got %v", err)
	}
	if _, err := m.Load(&Image{SignerPublicKey: testSigner(t)}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("unnamed image: got %v", err)
	}
	if _, err := m.Load(&Image{Name: "x"}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("unsigned image: got %v", err)
	}
}

func TestGetKeyMachineAndIdentityBinding(t *testing.T) {
	img := testImage(t, "app", 1)
	other := testImage(t, "other", 1)
	m1 := testMachine(t, "A")
	m2 := testMachine(t, "B")
	e1a, _ := m1.Load(img)
	e1b, _ := m1.Load(img)
	e1o, _ := m1.Load(other)
	e2, _ := m2.Load(img)

	k1a, err := e1a.GetKey(KeySeal, PolicyMRENCLAVE, nil)
	if err != nil {
		t.Fatal(err)
	}
	k1b, _ := e1b.GetKey(KeySeal, PolicyMRENCLAVE, nil)
	k1o, _ := e1o.GetKey(KeySeal, PolicyMRENCLAVE, nil)
	k2, _ := e2.GetKey(KeySeal, PolicyMRENCLAVE, nil)

	if k1a != k1b {
		t.Fatal("two instances of the same enclave on one machine must share the sealing key")
	}
	if k1a == k1o {
		t.Fatal("different enclave identities must not share keys")
	}
	if k1a == k2 {
		t.Fatal("the same enclave on different machines must not share keys")
	}
}

func TestGetKeyPolicyAndClassSeparation(t *testing.T) {
	m := testMachine(t, "A")
	e, _ := m.Load(testImage(t, "app", 1))
	kEnc, _ := e.GetKey(KeySeal, PolicyMRENCLAVE, nil)
	kSig, _ := e.GetKey(KeySeal, PolicyMRSIGNER, nil)
	kRep, _ := e.GetKey(KeyReport, PolicyMRENCLAVE, nil)
	kID, _ := e.GetKey(KeySeal, PolicyMRENCLAVE, []byte("v2"))
	if kEnc == kSig || kEnc == kRep || kEnc == kID {
		t.Fatal("key class/policy/keyID must separate derivations")
	}
	if _, err := e.GetKey(KeySeal, KeyPolicy(99), nil); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestGetKeyMRSIGNERSharedAcrossVersions(t *testing.T) {
	m := testMachine(t, "A")
	signer := testSigner(t)
	v1 := &Image{Name: "app", Version: 1, Code: []byte("v1"), SignerPublicKey: signer}
	v2 := &Image{Name: "app", Version: 2, Code: []byte("v2"), SignerPublicKey: signer}
	e1, _ := m.Load(v1)
	e2, _ := m.Load(v2)
	k1, _ := e1.GetKey(KeySeal, PolicyMRSIGNER, nil)
	k2, _ := e2.GetKey(KeySeal, PolicyMRSIGNER, nil)
	if k1 != k2 {
		t.Fatal("MRSIGNER-policy keys must survive enclave upgrades")
	}
	ke1, _ := e1.GetKey(KeySeal, PolicyMRENCLAVE, nil)
	ke2, _ := e2.GetKey(KeySeal, PolicyMRENCLAVE, nil)
	if ke1 == ke2 {
		t.Fatal("MRENCLAVE-policy keys must differ across upgrades")
	}
}

func TestDestroyedEnclaveRefusesOperations(t *testing.T) {
	m := testMachine(t, "A")
	e, _ := m.Load(testImage(t, "app", 1))
	m.Destroy(e)
	if e.Alive() {
		t.Fatal("destroyed enclave reports alive")
	}
	if err := e.ECall(); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("ecall: got %v", err)
	}
	if _, err := e.GetKey(KeySeal, PolicyMRENCLAVE, nil); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("getkey: got %v", err)
	}
	if _, err := e.CreateReport(TargetInfo{}, ReportData{}); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("report: got %v", err)
	}
}

func TestMachineRestartDestroysEnclaves(t *testing.T) {
	m := testMachine(t, "A")
	e1, _ := m.Load(testImage(t, "a", 1))
	e2, _ := m.Load(testImage(t, "b", 1))
	if m.LiveEnclaves() != 2 {
		t.Fatalf("live = %d", m.LiveEnclaves())
	}
	m.Restart()
	if m.LiveEnclaves() != 0 {
		t.Fatal("restart left enclaves alive")
	}
	if e1.Alive() || e2.Alive() {
		t.Fatal("instances survive restart")
	}
	// Keys are stable across restart (CPU secret persists).
	e3, _ := m.Load(testImage(t, "a", 1))
	if e3 == nil {
		t.Fatal("reload failed")
	}
}

func TestKeysStableAcrossRestart(t *testing.T) {
	m := testMachine(t, "A")
	img := testImage(t, "app", 1)
	e, _ := m.Load(img)
	before, _ := e.GetKey(KeySeal, PolicyMRENCLAVE, nil)
	m.Restart()
	e2, _ := m.Load(img)
	after, _ := e2.GetKey(KeySeal, PolicyMRENCLAVE, nil)
	if before != after {
		t.Fatal("sealing key changed across machine restart")
	}
}

func TestECallAccounting(t *testing.T) {
	m := testMachine(t, "A")
	e, _ := m.Load(testImage(t, "app", 1))
	for i := 0; i < 3; i++ {
		if err := e.ECall(); err != nil {
			t.Fatal(err)
		}
	}
	if e.ECalls() != 3 {
		t.Fatalf("ecalls = %d", e.ECalls())
	}
	if m.Latency().Counts()[sim.OpECall] != 3 {
		t.Fatal("latency model not charged for ecalls")
	}
}
