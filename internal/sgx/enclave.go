package sgx

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
)

// pageSize is the SGX EPC page granularity used for measurement.
const pageSize = 4096

// Image describes enclave code to be loaded: the synthetic equivalent of
// a signed enclave binary. Measurement hashes the code page by page with
// page properties, so the same image measures identically on every
// machine (paper §II-A3).
type Image struct {
	// Name and Version are part of the measured code, so two builds with
	// different versions have different MRENCLAVE values.
	Name    string
	Version uint32
	// Code is the enclave's measured byte content.
	Code []byte
	// SignerPublicKey is the enclave developer's public key; its hash is
	// the signing identity (MRSIGNER).
	SignerPublicKey ed25519.PublicKey
}

func (img *Image) validate() error {
	if img == nil || img.Name == "" {
		return fmt.Errorf("%w: missing name", ErrBadImage)
	}
	if len(img.SignerPublicKey) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad signer key", ErrBadImage)
	}
	return nil
}

// Measure computes MRENCLAVE: a page-wise hash over the image content and
// page properties, deterministic across machines.
func (img *Image) Measure() Measurement {
	h := sha256.New()
	h.Write([]byte("MRENCLAVE"))
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], img.Version)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(img.Name)))
	h.Write(hdr[:])
	h.Write([]byte(img.Name))
	// Hash each page with its offset, mimicking EADD/EEXTEND ordering.
	for off := 0; off < len(img.Code) || off == 0; off += pageSize {
		end := off + pageSize
		if end > len(img.Code) {
			end = len(img.Code)
		}
		var pagehdr [8]byte
		binary.BigEndian.PutUint64(pagehdr[:], uint64(off))
		h.Write(pagehdr[:])
		if off < len(img.Code) {
			h.Write(img.Code[off:end])
		}
	}
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}

// SignerID computes MRSIGNER: the hash of the developer public key.
func (img *Image) SignerID() Measurement {
	sum := sha256.Sum256(append([]byte("MRSIGNER"), img.SignerPublicKey...))
	return Measurement(sum)
}

// Enclave is a loaded enclave instance. Its data memory lives only as
// long as the instance; persistence must go through sealing.
type Enclave struct {
	id        EnclaveID
	machine   *Machine
	mrenclave Measurement
	mrsigner  Measurement
	epoch     uint64
	dead      atomic.Bool
	ecalls    atomic.Uint64
}

// ID returns the instance identifier (machine-local).
func (e *Enclave) ID() EnclaveID { return e.id }

// MREnclave returns the enclave identity measurement.
func (e *Enclave) MREnclave() Measurement { return e.mrenclave }

// IsMREnclave reports whether the enclave's identity equals m, without
// copying the measurement out (hot-path owner checks).
func (e *Enclave) IsMREnclave(m Measurement) bool { return e.mrenclave == m }

// MRSigner returns the signing identity measurement.
func (e *Enclave) MRSigner() Measurement { return e.mrsigner }

// Machine returns the hosting machine.
func (e *Enclave) Machine() *Machine { return e.machine }

// Alive reports whether the enclave instance still exists.
func (e *Enclave) Alive() bool { return !e.dead.Load() }

// ECalls returns the number of enclave boundary crossings performed.
func (e *Enclave) ECalls() uint64 { return e.ecalls.Load() }

func (e *Enclave) destroy() { e.dead.Store(true) }

// ECall charges one enclave entry transition and checks liveness. Every
// simulated enclave entry point calls this first, so destroyed enclaves
// reliably fail instead of silently operating on stale state.
func (e *Enclave) ECall() error {
	if e.dead.Load() {
		return ErrEnclaveDestroyed
	}
	e.ecalls.Add(1)
	e.machine.lat.Charge(sim.OpECall)
	return nil
}

// KeyPolicy selects the identity a key is bound to (paper §II-A4).
type KeyPolicy int

// Key policies.
const (
	// PolicyMRENCLAVE binds keys to the exact enclave identity.
	PolicyMRENCLAVE KeyPolicy = iota + 1
	// PolicyMRSIGNER binds keys to the developer's signing identity, so
	// upgraded enclaves from the same signer can unseal.
	PolicyMRSIGNER
)

// String names the policy.
func (p KeyPolicy) String() string {
	switch p {
	case PolicyMRENCLAVE:
		return "MRENCLAVE"
	case PolicyMRSIGNER:
		return "MRSIGNER"
	default:
		return "unknown-policy"
	}
}

// KeyName selects which class of key EGETKEY derives.
type KeyName string

// Key names available through EGETKEY.
const (
	KeySeal   KeyName = "seal-key"
	KeyReport KeyName = "report-key"
)

// GetKey is the EGETKEY instruction: it derives a key bound to the CPU
// secret, the requested key class, the key policy, and the enclave's
// identity under that policy. An optional keyID differentiates multiple
// keys of the same class. Two machines never derive the same key, and two
// enclaves with different identities never share a key.
func (e *Enclave) GetKey(name KeyName, policy KeyPolicy, keyID []byte) ([32]byte, error) {
	if e.dead.Load() {
		return [32]byte{}, ErrEnclaveDestroyed
	}
	var identity Measurement
	switch policy {
	case PolicyMRENCLAVE:
		identity = e.mrenclave
	case PolicyMRSIGNER:
		identity = e.mrsigner
	default:
		return [32]byte{}, fmt.Errorf("sgx: invalid key policy %d", policy)
	}
	e.machine.lat.Charge(sim.OpEGetKey)
	return e.machine.deriveKey("egetkey",
		[]byte(name), []byte{byte(policy)}, identity[:], keyID), nil
}
