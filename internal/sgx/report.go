package sgx

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"errors"

	"repro/internal/sim"
)

// Report verification errors.
var (
	ErrReportMAC     = errors.New("sgx: report MAC verification failed")
	ErrReportTarget  = errors.New("sgx: report was produced for a different target")
	ErrReportMachine = errors.New("sgx: report not verifiable on this machine")
)

// ReportDataSize is the size of the application-defined report payload
// (64 bytes on real SGX; enough to carry a hash and a DH public key hash).
const ReportDataSize = 64

// ReportData is the application payload bound into a local report.
type ReportData [ReportDataSize]byte

// MakeReportData hashes arbitrary application bytes into a ReportData,
// the usual way enclaves bind protocol messages into attestations.
func MakeReportData(parts ...[]byte) ReportData {
	h := sha256.New()
	for _, p := range parts {
		var n [4]byte
		n[0], n[1], n[2], n[3] = byte(len(p)>>24), byte(len(p)>>16), byte(len(p)>>8), byte(len(p))
		h.Write(n[:])
		h.Write(p)
	}
	var rd ReportData
	copy(rd[:], h.Sum(nil))
	return rd
}

// TargetInfo names the verifier enclave a report is produced for: the
// report MAC key derives from the target's MRENCLAVE, so only that
// enclave (on the same machine) can verify it.
type TargetInfo struct {
	MREnclave Measurement
}

// TargetFor builds the TargetInfo for a verifier enclave.
func TargetFor(verifier *Enclave) TargetInfo {
	return TargetInfo{MREnclave: verifier.MREnclave()}
}

// Report is the EREPORT output: the prover's identities and report data,
// MACed with a key only the target enclave on the same machine can derive.
type Report struct {
	MREnclave Measurement
	MRSigner  Measurement
	Data      ReportData
	MAC       []byte

	machineID MachineID // simulation bookkeeping: where it was produced
}

// macInput serializes the authenticated portion of a report.
func (r *Report) macInput() []byte {
	var buf bytes.Buffer
	buf.WriteString("SGX-REPORT")
	buf.Write(r.MREnclave[:])
	buf.Write(r.MRSigner[:])
	buf.Write(r.Data[:])
	return buf.Bytes()
}

// CreateReport is the EREPORT instruction: the enclave produces a report
// of its identity for the given target, carrying reportData.
func (e *Enclave) CreateReport(target TargetInfo, data ReportData) (*Report, error) {
	if e.dead.Load() {
		return nil, ErrEnclaveDestroyed
	}
	e.machine.lat.Charge(sim.OpEReport)
	r := &Report{
		MREnclave: e.mrenclave,
		MRSigner:  e.mrsigner,
		Data:      data,
		machineID: e.machine.id,
	}
	key := e.machine.deriveKey("report-mac", target.MREnclave[:])
	mac := hmac.New(sha256.New, key[:])
	mac.Write(r.macInput())
	r.MAC = mac.Sum(nil)
	return r, nil
}

// VerifyReport checks a report addressed to this enclave. It fails if the
// report was produced on a different machine (the report key derives from
// the CPU secret) or was addressed to a different target enclave.
func (e *Enclave) VerifyReport(r *Report) error {
	if e.dead.Load() {
		return ErrEnclaveDestroyed
	}
	if r == nil {
		return ErrReportMAC
	}
	// Simulation fidelity: a report from another machine fails because
	// the derived MAC key differs; we also surface a distinct error so
	// tests can tell the two cases apart.
	if r.machineID != e.machine.id {
		return ErrReportMachine
	}
	key := e.machine.deriveKey("report-mac", e.mrenclave[:])
	mac := hmac.New(sha256.New, key[:])
	mac.Write(r.macInput())
	if !hmac.Equal(mac.Sum(nil), r.MAC) {
		return ErrReportMAC
	}
	return nil
}
