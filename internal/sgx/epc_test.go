package sgx

import (
	"bytes"
	"errors"
	"testing"
)

func TestEPCWriteReadRoundTrip(t *testing.T) {
	epc, err := NewEPC()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("page contents")
	if err := epc.Write(7, want); err != nil {
		t.Fatal(err)
	}
	got, err := epc.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
	if epc.Pages() != 1 {
		t.Fatalf("pages = %d", epc.Pages())
	}
}

func TestEPCMissingPage(t *testing.T) {
	epc, _ := NewEPC()
	if _, err := epc.Read(1); !errors.Is(err, ErrEPCNoPage) {
		t.Fatalf("got %v", err)
	}
}

func TestEPCEncryptedAtRest(t *testing.T) {
	epc, _ := NewEPC()
	secret := []byte("super secret enclave data")
	if err := epc.Write(1, secret); err != nil {
		t.Fatal(err)
	}
	raw, ok := epc.RawPage(1)
	if !ok {
		t.Fatal("raw page missing")
	}
	if bytes.Contains(raw, secret) {
		t.Fatal("plaintext visible in DRAM image")
	}
}

func TestEPCDetectsCorruption(t *testing.T) {
	epc, _ := NewEPC()
	if err := epc.Write(1, []byte("data")); err != nil {
		t.Fatal(err)
	}
	raw, _ := epc.RawPage(1)
	raw[len(raw)-1] ^= 0xFF
	epc.InjectRaw(1, raw)
	if _, err := epc.Read(1); !errors.Is(err, ErrEPCIntegrity) {
		t.Fatalf("corrupted read: got %v", err)
	}
}

func TestEPCDetectsReplay(t *testing.T) {
	epc, _ := NewEPC()
	if err := epc.Write(1, []byte("version 1")); err != nil {
		t.Fatal(err)
	}
	old, _ := epc.RawPage(1)
	if err := epc.Write(1, []byte("version 2")); err != nil {
		t.Fatal(err)
	}
	// Physical attacker reverts DRAM to the old (validly encrypted) image.
	epc.InjectRaw(1, old)
	if _, err := epc.Read(1); !errors.Is(err, ErrEPCReplay) {
		t.Fatalf("replayed read: got %v", err)
	}
}

func TestEPCDrop(t *testing.T) {
	epc, _ := NewEPC()
	_ = epc.Write(1, []byte("x"))
	epc.Drop(1)
	if epc.Pages() != 0 {
		t.Fatal("drop left page")
	}
	if _, err := epc.Read(1); !errors.Is(err, ErrEPCNoPage) {
		t.Fatalf("got %v", err)
	}
}

func TestEPCOverwriteBumpsVersion(t *testing.T) {
	epc, _ := NewEPC()
	for i := 0; i < 5; i++ {
		if err := epc.Write(3, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		got, err := epc.Read(3)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("read version %d, want %d", got[0], i)
		}
	}
}

func TestEPCKeysPerInstance(t *testing.T) {
	a, _ := NewEPC()
	b, _ := NewEPC()
	_ = a.Write(1, []byte("data"))
	raw, _ := a.RawPage(1)
	b.InjectRaw(1, raw)
	// b has no version counter for slot 1 -> read must fail, and even with
	// a counter it would fail under a different memory key.
	if _, err := b.Read(1); err == nil {
		t.Fatal("page decrypted under foreign memory key")
	}
}
