package sgx

import (
	"errors"
	"testing"
)

func TestLocalReportRoundTrip(t *testing.T) {
	m := testMachine(t, "A")
	prover, _ := m.Load(testImage(t, "prover", 1))
	verifier, _ := m.Load(testImage(t, "verifier", 1))

	data := MakeReportData([]byte("dh-public-key"))
	rep, err := prover.CreateReport(TargetFor(verifier), data)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.VerifyReport(rep); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.MREnclave != prover.MREnclave() {
		t.Fatal("report carries wrong MRENCLAVE")
	}
	if rep.Data != data {
		t.Fatal("report carries wrong data")
	}
}

func TestReportRejectedByWrongTarget(t *testing.T) {
	m := testMachine(t, "A")
	prover, _ := m.Load(testImage(t, "prover", 1))
	verifier, _ := m.Load(testImage(t, "verifier", 1))
	bystander, _ := m.Load(testImage(t, "bystander", 1))

	rep, err := prover.CreateReport(TargetFor(verifier), ReportData{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bystander.VerifyReport(rep); !errors.Is(err, ErrReportMAC) {
		t.Fatalf("bystander verified a report not addressed to it: %v", err)
	}
}

func TestReportRejectedAcrossMachines(t *testing.T) {
	mA := testMachine(t, "A")
	mB := testMachine(t, "B")
	img := testImage(t, "verifier", 1)
	prover, _ := mA.Load(testImage(t, "prover", 1))
	verifierB, _ := mB.Load(img)

	rep, err := prover.CreateReport(TargetInfo{MREnclave: img.Measure()}, ReportData{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verifierB.VerifyReport(rep); !errors.Is(err, ErrReportMachine) {
		t.Fatalf("cross-machine report verified: %v", err)
	}
}

func TestReportTamperDetected(t *testing.T) {
	m := testMachine(t, "A")
	prover, _ := m.Load(testImage(t, "prover", 1))
	verifier, _ := m.Load(testImage(t, "verifier", 1))
	rep, _ := prover.CreateReport(TargetFor(verifier), MakeReportData([]byte("x")))

	t.Run("altered identity", func(t *testing.T) {
		bad := *rep
		bad.MREnclave[0] ^= 1
		if err := verifier.VerifyReport(&bad); !errors.Is(err, ErrReportMAC) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("altered data", func(t *testing.T) {
		bad := *rep
		bad.Data[0] ^= 1
		if err := verifier.VerifyReport(&bad); !errors.Is(err, ErrReportMAC) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("nil report", func(t *testing.T) {
		if err := verifier.VerifyReport(nil); !errors.Is(err, ErrReportMAC) {
			t.Fatalf("got %v", err)
		}
	})
}

func TestMakeReportDataUnambiguous(t *testing.T) {
	a := MakeReportData([]byte("ab"), []byte("c"))
	b := MakeReportData([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("report data encoding ambiguous")
	}
}
