package sgx

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/xcrypto"
)

// EPC errors.
var (
	ErrEPCIntegrity = errors.New("sgx: EPC page integrity check failed")
	ErrEPCReplay    = errors.New("sgx: EPC page anti-replay check failed")
	ErrEPCNoPage    = errors.New("sgx: EPC page not present")
)

// EPC models the Enclave Page Cache for one enclave: pages leave the CPU
// boundary encrypted under a per-boot memory-encryption key, carry an
// authentication tag, and are protected against replay by per-page version
// counters held inside the (trusted) CPU (paper §II-A2).
//
// The adversary-facing methods (RawPage, InjectRaw) model an attacker with
// physical DRAM access; the protections guarantee such tampering is
// detected, never silently accepted.
type EPC struct {
	mu       sync.Mutex
	memKey   [32]byte          // memory encryption key (per boot)
	pages    map[uint64][]byte // encrypted page image as stored in DRAM
	versions map[uint64]uint64 // trusted on-die version counters
}

// NewEPC creates an EPC with a fresh memory-encryption key.
func NewEPC() (*EPC, error) {
	key, err := xcrypto.RandomBytes(32)
	if err != nil {
		return nil, fmt.Errorf("epc key: %w", err)
	}
	e := &EPC{
		pages:    make(map[uint64][]byte),
		versions: make(map[uint64]uint64),
	}
	copy(e.memKey[:], key)
	return e, nil
}

// aad binds a page slot and version into the authenticated data.
func epcAAD(slot, version uint64) []byte {
	return []byte(fmt.Sprintf("epc:%d:%d", slot, version))
}

// Write stores plaintext into a page slot, bumping its version counter.
func (e *EPC) Write(slot uint64, plaintext []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	version := e.versions[slot] + 1
	ct, err := xcrypto.Encrypt(e.memKey[:], plaintext, epcAAD(slot, version))
	if err != nil {
		return fmt.Errorf("epc encrypt: %w", err)
	}
	e.pages[slot] = ct
	e.versions[slot] = version
	return nil
}

// Read decrypts a page slot, verifying integrity and anti-replay: the
// ciphertext must authenticate under the current trusted version counter.
func (e *EPC) Read(slot uint64) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ct, ok := e.pages[slot]
	if !ok {
		return nil, ErrEPCNoPage
	}
	version := e.versions[slot]
	pt, err := xcrypto.Decrypt(e.memKey[:], ct, epcAAD(slot, version))
	if err != nil {
		// Distinguish replay (an older valid ciphertext) from plain
		// corruption by probing earlier versions. Either way the read
		// fails; the distinction is diagnostic only.
		for v := version; v > 0; v-- {
			if _, err2 := xcrypto.Decrypt(e.memKey[:], ct, epcAAD(slot, v-1)); err2 == nil {
				return nil, ErrEPCReplay
			}
		}
		return nil, ErrEPCIntegrity
	}
	return pt, nil
}

// Drop removes a page (enclave teardown).
func (e *EPC) Drop(slot uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.pages, slot)
	delete(e.versions, slot)
}

// Pages returns the number of live pages.
func (e *EPC) Pages() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pages)
}

// RawPage returns the encrypted DRAM image of a page — what a physical
// attacker snooping the memory bus would capture.
func (e *EPC) RawPage(slot uint64) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ct, ok := e.pages[slot]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), ct...), true
}

// InjectRaw overwrites the DRAM image of a page without going through the
// CPU — the physical replay/corruption attack. Subsequent Reads must fail.
func (e *EPC) InjectRaw(slot uint64, raw []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pages[slot] = append([]byte(nil), raw...)
}
