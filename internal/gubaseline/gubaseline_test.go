package gubaseline

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/pse"
	"repro/internal/seal"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

type machine struct {
	hw       *sgx.Machine
	counters *pse.Service
}

func newTestMachine(t *testing.T, id sgx.MachineID) *machine {
	t.Helper()
	lat := sim.NewInstantLatency()
	hw, err := sgx.NewMachine(id, lat)
	if err != nil {
		t.Fatal(err)
	}
	return &machine{hw: hw, counters: pse.NewService(lat)}
}

func appImage(t *testing.T) *sgx.Image {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &sgx.Image{Name: "payment-app", Version: 1, Code: []byte("app"), SignerPublicKey: pub}
}

func loadLib(t *testing.T, m *machine, img *sgx.Image, cfg Config, persist func(bool) error) (*Library, *sgx.Enclave) {
	t.Helper()
	e, err := m.hw.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	return NewLibrary(e, m.counters, cfg, persist), e
}

func TestMemoryMigrationRoundTrip(t *testing.T) {
	img := appImage(t)
	src := newTestMachine(t, "A")
	dst := newTestMachine(t, "B")
	libSrc, _ := loadLib(t, src, img, Config{}, nil)
	libDst, _ := loadLib(t, dst, img, Config{}, nil)

	state := []byte("in-enclave working state")
	if err := libSrc.SetMemory(state); err != nil {
		t.Fatal(err)
	}
	hs, err := libDst.PrepareImport()
	if err != nil {
		t.Fatal(err)
	}
	image, err := libSrc.ExportMemory(hs.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := libDst.ImportMemory(hs, image); err != nil {
		t.Fatal(err)
	}
	got, err := libDst.Memory()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, state) {
		t.Fatal("memory mismatch after migration")
	}
	// Source is spin-locked.
	if !libSrc.Frozen() {
		t.Fatal("source not frozen")
	}
	if _, err := libSrc.Memory(); !errors.Is(err, ErrFrozen) {
		t.Fatalf("frozen source served memory: %v", err)
	}
}

func TestMemoryImageBoundToIdentity(t *testing.T) {
	img := appImage(t)
	other := appImage(t)
	other.Name = "evil-lookalike" // different code -> different MRENCLAVE
	src := newTestMachine(t, "A")
	dst := newTestMachine(t, "B")
	libSrc, _ := loadLib(t, src, img, Config{}, nil)
	libEvil, _ := loadLib(t, dst, other, Config{}, nil)

	_ = libSrc.SetMemory([]byte("secret"))
	hs, _ := libEvil.PrepareImport()
	image, err := libSrc.ExportMemory(hs.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := libEvil.ImportMemory(hs, image); !errors.Is(err, ErrIdentity) {
		t.Fatalf("foreign enclave imported memory: %v", err)
	}
	// Tampered image fails decryption even with correct identity.
	libDst, _ := loadLib(t, dst, img, Config{}, nil)
	hs2, _ := libDst.PrepareImport()
	image2, _ := libSrc2Export(t, src, img, hs2.PublicKey())
	image2.Sealed[0] ^= 1
	if err := libDst.ImportMemory(hs2, image2); !errors.Is(err, ErrImageDecrypt) {
		t.Fatalf("tampered image accepted: %v", err)
	}
}

// libSrc2Export loads a fresh source library and exports its memory.
func libSrc2Export(t *testing.T, m *machine, img *sgx.Image, destPub []byte) (*MemoryImage, error) {
	t.Helper()
	lib, _ := loadLib(t, m, img, Config{}, nil)
	_ = lib.SetMemory([]byte("secret"))
	return lib.ExportMemory(destPub)
}

func TestSealedDataLostAfterBaselineMigration(t *testing.T) {
	// The paper's data-loss observation: natively sealed data cannot be
	// unsealed on the destination machine.
	img := appImage(t)
	src := newTestMachine(t, "A")
	dst := newTestMachine(t, "B")
	libSrc, _ := loadLib(t, src, img, Config{}, nil)
	libDst, _ := loadLib(t, dst, img, Config{}, nil)

	blob, err := libSrc.Seal(nil, []byte("keys and secrets"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := libDst.Unseal(blob); err == nil {
		t.Fatal("sealed data unsealed on destination: simulation broken")
	}
}

// --- The versioned-state application used by the §III attacks -----------

// appState is the Teechan/TrInX-style pattern: state sealed together with
// a version number matched against a monotonic counter on restore.
type appState struct {
	Balance int    `json:"balance"`
	Version uint32 `json:"version"`
}

// persistKDC seals state+version under a cloud KDC key (the §III-C
// "improved mechanism" that makes sealed data readable after migration).
func persistKDC(t *testing.T, lib *Library, kdcKey []byte, counterRef int, balance int) []byte {
	t.Helper()
	v, err := lib.IncrementCounter(counterRef)
	if err != nil {
		t.Fatalf("increment for persist: %v", err)
	}
	raw, err := json.Marshal(appState{Balance: balance, Version: v})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := seal.SealRaw(kdcKey, nil, raw)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// restoreKDC unseals and enforces the version check; it reports whether
// the state was ACCEPTED (version matches the local counter).
func restoreKDC(t *testing.T, lib *Library, kdcKey []byte, counterRef int, blob []byte) (appState, bool) {
	t.Helper()
	raw, _, err := seal.UnsealRaw(kdcKey, blob)
	if err != nil {
		t.Fatalf("kdc unseal: %v", err)
	}
	var st appState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	cur, err := lib.ReadCounter(counterRef)
	if err != nil {
		t.Fatalf("read counter: %v", err)
	}
	return st, st.Version == cur
}

// TestForkAttackSucceedsAgainstBaseline reproduces §III-B step by step
// against the Gu et al. baseline with a NON-persisted freeze flag: after
// migration, the source enclave can be restarted from its old persistent
// state and runs concurrently with the migrated copy.
func TestForkAttackSucceedsAgainstBaseline(t *testing.T) {
	img := appImage(t)
	mA := newTestMachine(t, "A")
	mB := newTestMachine(t, "B")

	// Step 1 (start-stop-restart): enclave on A creates counter c,
	// increments it (c=1) and persists state with v=1 (natively sealed —
	// it stays on A).
	libA, _ := loadLib(t, mA, img, Config{PersistFreeze: false}, nil)
	refA, _, err := libA.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	vA, err := libA.IncrementCounter(refA)
	if err != nil {
		t.Fatal(err)
	}
	stateRaw, _ := json.Marshal(appState{Balance: 100, Version: vA})
	blobA, err := libA.Seal(nil, stateRaw)
	if err != nil {
		t.Fatal(err)
	}
	uuidA, _ := libA.CounterUUID(refA)
	_ = libA.SetMemory(stateRaw)

	// Step 2 (migrate): VM moves to B using the baseline's memory
	// migration. The app continues on B with NEW counters.
	libB, _ := loadLib(t, mB, img, Config{}, nil)
	hs, _ := libB.PrepareImport()
	image, err := libA.ExportMemory(hs.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := libB.ImportMemory(hs, image); err != nil {
		t.Fatal(err)
	}
	refB, _, err := libB.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // transactions on B: v' = 1,2,3
		if _, err := libB.IncrementCounter(refB); err != nil {
			t.Fatal(err)
		}
	}

	// Step 3 (terminate-restart): on A, the process is terminated and
	// restarted. The freeze flag lived only in enclave memory, so the
	// fresh instance is NOT frozen. It adopts the old counter and old
	// sealed state — both still present on A.
	libA2, eA2 := loadLib(t, mA, img, Config{PersistFreeze: false}, nil)
	refA2 := libA2.AdoptCounter(uuidA)
	raw, _, err := libA2.Unseal(blobA)
	if err != nil {
		t.Fatalf("old state must unseal on A: %v", err)
	}
	var st appState
	_ = json.Unmarshal(raw, &st)
	cur, err := libA2.ReadCounter(refA2)
	if err != nil {
		t.Fatalf("old counter must still exist on A: %v", err)
	}
	if st.Version != cur {
		t.Fatalf("version check failed: %d != %d", st.Version, cur)
	}
	// THE FORK: both instances are live and can transact independently.
	if _, err := libA2.IncrementCounter(refA2); err != nil {
		t.Fatal(err)
	}
	if _, err := libB.IncrementCounter(refB); err != nil {
		t.Fatal(err)
	}
	if !eA2.Alive() {
		t.Fatal("forked source instance not alive")
	}
	t.Log("fork attack succeeded against the baseline (as the paper predicts)")
}

// TestPersistedFreezeFlagPreventsForkButBlocksReturn reproduces the
// paper's analysis of the alternative: if the Gu et al. freeze flag IS
// persisted, the fork fails, but the enclave can never migrate back to
// the source machine.
func TestPersistedFreezeFlagPreventsForkButBlocksReturn(t *testing.T) {
	img := appImage(t)
	mA := newTestMachine(t, "A")
	mB := newTestMachine(t, "B")

	var persistedFlag bool
	persist := func(f bool) error { persistedFlag = f; return nil }

	libA, _ := loadLib(t, mA, img, Config{PersistFreeze: true}, persist)
	_ = libA.SetMemory([]byte("state"))
	libB, _ := loadLib(t, mB, img, Config{}, nil)
	hs, _ := libB.PrepareImport()
	image, err := libA.ExportMemory(hs.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := libB.ImportMemory(hs, image); err != nil {
		t.Fatal(err)
	}
	if !persistedFlag {
		t.Fatal("freeze flag not persisted")
	}

	// Fork attempt: restart on A; the persisted flag freezes the new
	// instance immediately -> fork prevented.
	libA2, _ := loadLib(t, mA, img, Config{PersistFreeze: true}, persist)
	libA2.RestoreFreeze(persistedFlag)
	if _, err := libA2.Memory(); !errors.Is(err, ErrFrozen) {
		t.Fatalf("persisted flag did not freeze restart: %v", err)
	}
	if _, _, err := libA2.CreateCounter(); !errors.Is(err, ErrFrozen) {
		t.Fatalf("frozen library created counter: %v", err)
	}

	// But migrating BACK to A is now impossible: the instance on A is
	// frozen forever, indistinguishable from a fork attempt.
	hsBack, _ := libA2.PrepareImport()
	imageBack, err := libB.ExportMemory(hsBack.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := libA2.ImportMemory(hsBack, imageBack); err != nil {
		t.Fatal(err) // import itself works...
	}
	if _, err := libA2.Memory(); !errors.Is(err, ErrFrozen) {
		t.Fatal("...but the frozen library must still refuse to operate")
	}
}

// TestRollbackAttackSucceedsAgainstBaseline reproduces §III-C: with
// migratable (KDC-based) sealing but machine-local counters, migration
// lets the adversary roll the enclave state back.
func TestRollbackAttackSucceedsAgainstBaseline(t *testing.T) {
	img := appImage(t)
	mA := newTestMachine(t, "A")
	mB := newTestMachine(t, "B")
	kdcKey, err := xcrypto.RandomBytes(16) // cloud KDC key, available on all machines
	if err != nil {
		t.Fatal(err)
	}

	// Step 1: on A, create counter, persist v=1 (balance 100).
	libA, _ := loadLib(t, mA, img, Config{}, nil)
	refA, _, err := libA.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	blobV1 := persistKDC(t, libA, kdcKey, refA, 100)

	// Step 2: continue on A — the balance drops as the enclave spends;
	// v=2 (balance 60), v=3 (balance 10).
	_ = persistKDC(t, libA, kdcKey, refA, 60)
	blobV3 := persistKDC(t, libA, kdcKey, refA, 10)

	// Step 3+4: migrate the VM to B. On termination there, the enclave
	// creates a NEW counter on B (none exist yet) and increments it to 1.
	libB, _ := loadLib(t, mB, img, Config{}, nil)
	refB, _, err := libB.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := libB.IncrementCounter(refB); err != nil { // c' = 1
		t.Fatal(err)
	}

	// Step 5: restart on B, but the adversary supplies the ORIGINAL v=1
	// package from step 1. The version check passes (c' == v == 1):
	// the roll-back is accepted.
	stale, accepted := restoreKDC(t, libB, kdcKey, refB, blobV1)
	if !accepted {
		t.Fatal("rollback attack failed: stale state rejected (baseline too strong)")
	}
	if stale.Balance != 100 {
		t.Fatalf("stale balance = %d", stale.Balance)
	}
	// Sanity: the true latest state was v=3, balance 10.
	latest, latestAccepted := restoreKDC(t, libB, kdcKey, refB, blobV3)
	if latestAccepted {
		t.Fatal("latest state accepted too — version check not in play")
	}
	if latest.Balance != 10 {
		t.Fatalf("latest balance = %d", latest.Balance)
	}
	t.Log("roll-back attack succeeded against the baseline (as the paper predicts)")
}

func TestDoubleExportRefused(t *testing.T) {
	img := appImage(t)
	mA := newTestMachine(t, "A")
	mB := newTestMachine(t, "B")
	libA, _ := loadLib(t, mA, img, Config{}, nil)
	libB, _ := loadLib(t, mB, img, Config{}, nil)
	hs, _ := libB.PrepareImport()
	if _, err := libA.ExportMemory(hs.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if _, err := libA.ExportMemory(hs.PublicKey()); !errors.Is(err, ErrFrozen) {
		t.Fatalf("second export: %v", err)
	}
}

// TestReplayRestoreWithIncrementCounterN exercises the baseline's only
// way to carry a counter VALUE to a new counter: create a fresh hardware
// counter and replay increments up to the persisted value (the design the
// paper rejects for its linear cost, §VI-B). IncrementCounterN batches
// the replay into one enclave transition while charging every
// rate-limited firmware increment.
func TestReplayRestoreWithIncrementCounterN(t *testing.T) {
	m := newTestMachine(t, "A")
	img := appImage(t)
	lib, _ := loadLib(t, m, img, Config{}, nil)

	// The app persisted value 437 before losing its counter; the restore
	// replays a fresh counter up to it.
	const persisted = 437
	ref, v, err := lib.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("fresh counter = %d", v)
	}
	lat := m.hw.Latency()
	lat.Reset()
	got, err := lib.IncrementCounterN(ref, persisted)
	if err != nil {
		t.Fatal(err)
	}
	if got != persisted {
		t.Fatalf("replayed value = %d, want %d", got, persisted)
	}
	// Every firmware increment is charged — the replay is linear in the
	// counter value, exactly the cost the offset design avoids.
	if n := lat.Counts()[sim.OpCounterIncrement]; n != persisted {
		t.Fatalf("charged %d increments, want %d", n, persisted)
	}
	if cur, err := lib.ReadCounter(ref); err != nil || cur != persisted {
		t.Fatalf("read after replay = %d, %v", cur, err)
	}
	// The spin-lock still applies to batched increments.
	lib.RestoreFreeze(true)
	if _, err := lib.IncrementCounterN(ref, 5); !errors.Is(err, ErrFrozen) {
		t.Fatalf("frozen replay: %v", err)
	}
}
