// Package gubaseline implements the state-of-the-art baseline the paper
// compares against: the software-only enclave migration mechanism of
// Gu et al. [2] ("Secure live migration of SGX enclaves on untrusted
// cloud", DSN 2017), which migrates an enclave's DATA MEMORY but not its
// persistent state (sealed data and monotonic counters).
//
// The baseline is faithful to the published description:
//
//   - A control thread pauses the enclave by spin-locking all worker
//     threads behind a freeze flag. Whether that flag is persisted is not
//     stated in the paper, so both variants are implemented (Config), and
//     the §III-B analysis of both is reproduced in the tests: a
//     non-persisted flag permits the fork attack; a persisted flag
//     prevents it but also forever prevents migrating back.
//   - The enclave's data memory is written out re-encrypted for the same
//     enclave identity on the destination machine, after a key agreement
//     authenticated by enclave identity.
//   - Sealed data and monotonic counters are simply left behind; this is
//     the gap the paper's attacks (§III) exploit and the Migration
//     Library (internal/core) closes.
package gubaseline

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/pse"
	"repro/internal/seal"
	"repro/internal/sgx"
	"repro/internal/xcrypto"
)

// Baseline errors.
var (
	ErrFrozen        = errors.New("gubaseline: enclave frozen by migration (spin-lock)")
	ErrIdentity      = errors.New("gubaseline: destination enclave identity mismatch")
	ErrImageDecrypt  = errors.New("gubaseline: memory image decryption failed")
	ErrNotInit       = errors.New("gubaseline: library not initialized")
	ErrBadCounterRef = errors.New("gubaseline: unknown counter reference")
)

// Config selects baseline variants analysed in the paper's §III-B.
type Config struct {
	// PersistFreeze controls whether the spin-lock freeze flag is written
	// to persistent storage. Gu et al. do not state this; the paper
	// analyses both possibilities.
	PersistFreeze bool
}

// Library is the Gu et al.-style in-enclave migration library plus plain
// (non-migratable) wrappers for sealing and counters, which is exactly
// what an application using this baseline would have at its disposal.
type Library struct {
	enclave  *sgx.Enclave
	counters *pse.Service
	cfg      Config

	mu       sync.Mutex
	frozen   bool
	memory   []byte           // the enclave's migratable data memory
	refs     map[int]pse.UUID // app counter handle -> hardware UUID
	nextRef  int
	freezeFn func(bool) error // persists the freeze flag, if configured
}

// NewLibrary creates the baseline library for an enclave. persistFreeze
// is invoked to persist the freeze flag when Config.PersistFreeze is set
// (it writes to the application's untrusted storage).
func NewLibrary(enclave *sgx.Enclave, counters *pse.Service, cfg Config, persistFreeze func(bool) error) *Library {
	return &Library{
		enclave:  enclave,
		counters: counters,
		cfg:      cfg,
		refs:     make(map[int]pse.UUID),
		freezeFn: persistFreeze,
	}
}

// RestoreFreeze installs a previously persisted freeze flag (called by
// the application on restart when Config.PersistFreeze is used).
func (l *Library) RestoreFreeze(frozen bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.frozen = frozen
}

// checkReady validates enclave liveness and the spin-lock.
func (l *Library) checkReadyLocked() error {
	if l.frozen {
		return ErrFrozen
	}
	return nil
}

// SetMemory stores the enclave's migratable data memory (the application
// state that Gu et al.'s mechanism transfers).
func (l *Library) SetMemory(data []byte) error {
	if err := l.enclave.ECall(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkReadyLocked(); err != nil {
		return err
	}
	l.memory = append([]byte(nil), data...)
	return nil
}

// Memory returns the enclave's current data memory.
func (l *Library) Memory() ([]byte, error) {
	if err := l.enclave.ECall(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkReadyLocked(); err != nil {
		return nil, err
	}
	return append([]byte(nil), l.memory...), nil
}

// Seal seals data with the NATIVE machine-specific sealing key — after
// migration this data is unrecoverable (the paper's data-loss risk).
func (l *Library) Seal(aad, plaintext []byte) ([]byte, error) {
	if err := l.enclave.ECall(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkReadyLocked(); err != nil {
		return nil, err
	}
	return seal.Seal(l.enclave, sgx.PolicyMRENCLAVE, aad, plaintext)
}

// Unseal reverses Seal on the same machine.
func (l *Library) Unseal(blob []byte) (plaintext, aad []byte, err error) {
	if err := l.enclave.ECall(); err != nil {
		return nil, nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkReadyLocked(); err != nil {
		return nil, nil, err
	}
	return seal.Unseal(l.enclave, blob)
}

// CreateCounter allocates a hardware counter; the handle is only valid on
// this machine and is NOT migrated by the baseline.
func (l *Library) CreateCounter() (int, uint32, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkReadyLocked(); err != nil {
		return 0, 0, err
	}
	uuid, v, err := l.counters.Create(l.enclave)
	if err != nil {
		return 0, 0, err
	}
	ref := l.nextRef
	l.nextRef++
	l.refs[ref] = uuid
	return ref, v, nil
}

// AdoptCounter re-attaches a counter UUID persisted by the application
// (how a restarted baseline app finds its counters again).
func (l *Library) AdoptCounter(uuid pse.UUID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	ref := l.nextRef
	l.nextRef++
	l.refs[ref] = uuid
	return ref
}

// CounterUUID exposes the hardware UUID for persistence by the app.
func (l *Library) CounterUUID(ref int) (pse.UUID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	uuid, ok := l.refs[ref]
	if !ok {
		return pse.UUID{}, ErrBadCounterRef
	}
	return uuid, nil
}

// IncrementCounter increments a hardware counter.
func (l *Library) IncrementCounter(ref int) (uint32, error) {
	return l.IncrementCounterN(ref, 1)
}

// IncrementCounterN performs n consecutive hardware increments in one
// enclave transition. This is the replay primitive a baseline application
// uses to drive a fresh counter up to a previously persisted value after
// a migration (the design the paper rejects for its linear cost): all n
// rate-limited firmware transactions are still charged.
func (l *Library) IncrementCounterN(ref, n int) (uint32, error) {
	l.mu.Lock()
	uuid, ok := l.refs[ref]
	frozen := l.frozen
	l.mu.Unlock()
	if frozen {
		return 0, ErrFrozen
	}
	if !ok {
		return 0, ErrBadCounterRef
	}
	return l.counters.IncrementN(l.enclave, uuid, n)
}

// ReadCounter reads a hardware counter.
func (l *Library) ReadCounter(ref int) (uint32, error) {
	l.mu.Lock()
	uuid, ok := l.refs[ref]
	frozen := l.frozen
	l.mu.Unlock()
	if frozen {
		return 0, ErrFrozen
	}
	if !ok {
		return 0, ErrBadCounterRef
	}
	return l.counters.Read(l.enclave, uuid)
}

// MemoryImage is the encrypted enclave-memory export produced on the
// source machine and consumed on the destination.
type MemoryImage struct {
	MREnclave sgx.Measurement
	DHPub     []byte
	Sealed    []byte
}

// ExportMemory freezes the enclave (spin-locking its workers) and writes
// out the data memory re-encrypted for the same enclave identity on the
// destination, using a DH exchange bound to the enclave measurement.
// destDHPub is the destination library's handshake key (obtained from
// PrepareImport).
func (l *Library) ExportMemory(destDHPub []byte) (*MemoryImage, error) {
	if err := l.enclave.ECall(); err != nil {
		return nil, err
	}
	dh, err := xcrypto.NewKeyExchange()
	if err != nil {
		return nil, fmt.Errorf("export dh: %w", err)
	}
	shared, err := dh.Shared(destDHPub)
	if err != nil {
		return nil, fmt.Errorf("export shared: %w", err)
	}
	l.mu.Lock()
	if l.frozen {
		l.mu.Unlock()
		return nil, ErrFrozen
	}
	// Control thread sets the freeze flag: all worker threads spin.
	l.frozen = true
	memory := append([]byte(nil), l.memory...)
	l.mu.Unlock()

	if l.cfg.PersistFreeze && l.freezeFn != nil {
		if err := l.freezeFn(true); err != nil {
			return nil, fmt.Errorf("persist freeze flag: %w", err)
		}
	}
	mr := l.enclave.MREnclave()
	key := xcrypto.DeriveKey(shared, "gu-memory-image", mr[:], dh.PublicBytes(), destDHPub)
	sealed, err := xcrypto.Encrypt(key[:], memory, mr[:])
	if err != nil {
		return nil, fmt.Errorf("encrypt memory: %w", err)
	}
	return &MemoryImage{MREnclave: mr, DHPub: dh.PublicBytes(), Sealed: sealed}, nil
}

// ImportHandshake is the destination side's half-open DH state.
type ImportHandshake struct {
	dh *xcrypto.KeyExchange
}

// PublicKey returns the handshake key to give to the source.
func (h *ImportHandshake) PublicKey() []byte { return h.dh.PublicBytes() }

// PrepareImport opens the destination side of the memory transfer.
func (l *Library) PrepareImport() (*ImportHandshake, error) {
	if err := l.enclave.ECall(); err != nil {
		return nil, err
	}
	dh, err := xcrypto.NewKeyExchange()
	if err != nil {
		return nil, fmt.Errorf("import dh: %w", err)
	}
	return &ImportHandshake{dh: dh}, nil
}

// ImportMemory installs a migrated memory image into the destination
// enclave. It fails if the image was produced for a different enclave
// identity or has been tampered with.
func (l *Library) ImportMemory(h *ImportHandshake, img *MemoryImage) error {
	if err := l.enclave.ECall(); err != nil {
		return err
	}
	if img == nil || h == nil {
		return ErrImageDecrypt
	}
	if img.MREnclave != l.enclave.MREnclave() {
		return ErrIdentity
	}
	shared, err := h.dh.Shared(img.DHPub)
	if err != nil {
		return fmt.Errorf("import shared: %w", err)
	}
	mr := l.enclave.MREnclave()
	key := xcrypto.DeriveKey(shared, "gu-memory-image", mr[:], img.DHPub, h.PublicKey())
	memory, err := xcrypto.Decrypt(key[:], img.Sealed, mr[:])
	if err != nil {
		return ErrImageDecrypt
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.memory = memory
	return nil
}

// Frozen reports whether the spin-lock is engaged.
func (l *Library) Frozen() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frozen
}
