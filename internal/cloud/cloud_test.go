package cloud_test

import (
	"crypto/ed25519"
	"errors"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/xcrypto"
)

func image(name string) *sgx.Image {
	key := xcrypto.DeriveKey([]byte("cloud-test"), "signer")
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: ed25519.PublicKey(key[:])}
}

func TestDataCenterProvisioning(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, err := dc.AddMachine("A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.AddMachine("A"); err == nil {
		t.Fatal("duplicate machine accepted")
	}
	got, ok := dc.Machine("A")
	if !ok || got != a {
		t.Fatal("machine lookup failed")
	}
	if _, ok := dc.Machine("nope"); ok {
		t.Fatal("phantom machine")
	}
	if a.MEAddress() != "A" {
		t.Fatalf("ME address = %s", a.MEAddress())
	}
}

func TestLaunchAppFailuresCleanUp(t *testing.T) {
	dc, _ := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	a, _ := dc.AddMachine("A")
	before := a.HW.LiveEnclaves()
	// InitRestore with empty storage fails; the enclave must not leak.
	if _, err := a.LaunchApp(image("app"), core.NewMemoryStorage(), core.InitRestore); !errors.Is(err, core.ErrNoBlob) {
		t.Fatalf("got %v", err)
	}
	if a.HW.LiveEnclaves() != before {
		t.Fatal("failed launch leaked an enclave")
	}
}

// TestFullCloudScenario is the paper's complete deployment story: an
// application runs inside a VM; the VM live-migrates (memory moves, the
// enclave dies, because the EPC cannot be copied); the enclave's
// persistent state follows separately through the Migration Enclaves;
// and on the destination the restarted application finds everything
// intact — while the VM's untrusted disk contents (the sealed library
// blob) travelled with the VM.
func TestFullCloudScenario(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	src, err := dc.AddMachine("A")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dc.AddMachine("B")
	if err != nil {
		t.Fatal(err)
	}
	hvSrc := vm.NewHypervisor(src.HW)
	hvDst := vm.NewHypervisor(dst.HW)

	guest, err := hvSrc.CreateVM("app-vm", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Guest disk page 0 stands in for the app's untrusted storage file.
	img := image("vm-app")
	storage := core.NewMemoryStorage()
	app, err := src.LaunchApp(img, storage, core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	guest.AttachEnclave(app.Enclave)

	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := app.Library.SealMigratable(nil, []byte("app keys"))
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.WritePage(0, sealed[:min(len(sealed), vm.PageSize)]); err != nil {
		t.Fatal(err)
	}

	// 1. The application is notified and starts the enclave migration.
	if err := app.Library.StartMigration(dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	// 2. The VM live-migrates: memory moves, the enclave is destroyed.
	migratedVM, elapsed, err := vm.LiveMigrate(guest, hvDst)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("vm migration took no time")
	}
	if app.Enclave.Alive() {
		t.Fatal("enclave survived VM migration")
	}
	// The guest disk (with the sealed blob) arrived.
	page, err := migratedVM.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) == 0 {
		t.Fatal("guest disk lost")
	}

	// 3. The application restarts inside the migrated VM and receives
	// its persistent state from the destination Migration Enclave.
	restored, err := dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatal(err)
	}
	migratedVM.AttachEnclave(restored.Enclave)

	v, err := restored.Library.ReadCounter(ctr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("counter after full scenario = %d, want 4", v)
	}
	pt, _, err := restored.Library.UnsealMigratable(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "app keys" {
		t.Fatal("sealed data mismatch")
	}
	// And the old machine cannot restart the app from the VM's stale
	// disk state (frozen blob).
	if _, err := src.LaunchApp(img, storage, core.InitRestore); !errors.Is(err, core.ErrFrozen) {
		t.Fatalf("stale source restart: %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
