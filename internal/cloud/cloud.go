// Package cloud assembles the full simulated environment of the paper's
// deployment: a data-center operator (cloud provider) running multiple
// SGX machines, each with Platform Services counters, a Quoting Enclave,
// and a provisioned Migration Enclave, all connected by an untrusted
// network. It is the top-level convenience API that examples, benchmarks,
// and integration tests build on.
package cloud

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/attest"
	"repro/internal/core"
	"repro/internal/pse"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// DataCenter is one cloud provider's fleet: a certificate authority for
// Migration Enclave credentials, an EPID group issuer + IAS for remote
// attestation, a shared latency model, and the untrusted network.
type DataCenter struct {
	Provider *attest.Provider
	Issuer   *xcrypto.Authority
	IAS      *attest.IAS
	// Network is the in-memory network (nil when a custom Messenger such
	// as TCP is used); adversary middleware attaches here.
	Network *transport.Network
	// Messenger is the transport Migration Enclaves communicate over.
	Messenger transport.Messenger
	Latency   *sim.Latency

	mu       sync.Mutex
	machines map[string]*Machine
}

// Machine is one physical SGX machine inside a data center, fully
// provisioned: hardware, counter service, QE, and Migration Enclave.
type Machine struct {
	HW       *sgx.Machine
	Counters *pse.Service
	QE       *attest.QuotingEnclave
	ME       *core.MigrationEnclave

	mu   sync.Mutex
	apps map[*App]struct{}
}

// MEAddress returns the machine's Migration Enclave network address.
func (m *Machine) MEAddress() transport.Address { return m.ME.Address() }

// ID returns the machine identifier within the data center.
func (m *Machine) ID() string { return string(m.HW.ID()) }

// Apps returns the live applications currently hosted on the machine
// (launched here and neither terminated nor killed by a restart), in no
// particular order. Fleet orchestration uses this to build its inventory.
// Apps whose enclaves died without Terminate (machine restart) are
// pruned from the registry as they are encountered.
func (m *Machine) Apps() []*App {
	m.mu.Lock()
	defer m.mu.Unlock()
	apps := make([]*App, 0, len(m.apps))
	for a := range m.apps {
		if a.Enclave.Alive() {
			apps = append(apps, a)
		} else {
			delete(m.apps, a)
		}
	}
	return apps
}

// AppCount returns the number of live applications on the machine (the
// load figure placement policies balance on).
func (m *Machine) AppCount() int { return len(m.Apps()) }

// NewDataCenter creates a data center with its own provider identity,
// EPID group, IAS, and network, using the given latency scale.
func NewDataCenter(name string, lat *sim.Latency) (*DataCenter, error) {
	net := transport.NewNetwork(lat)
	dc, err := NewDataCenterWithNetwork(name, lat, net)
	if err != nil {
		return nil, err
	}
	dc.Network = net
	return dc, nil
}

// NewDataCenterWithNetwork creates a data center whose Migration Enclaves
// communicate over a caller-supplied transport (e.g. TCP).
func NewDataCenterWithNetwork(name string, lat *sim.Latency, m transport.Messenger) (*DataCenter, error) {
	provider, err := attest.NewProvider(name)
	if err != nil {
		return nil, fmt.Errorf("provider: %w", err)
	}
	issuer, err := xcrypto.NewAuthority(name + "/epid-group")
	if err != nil {
		return nil, fmt.Errorf("group issuer: %w", err)
	}
	return &DataCenter{
		Provider:  provider,
		Issuer:    issuer,
		IAS:       attest.NewIAS(issuer, lat),
		Messenger: m,
		Latency:   lat,
		machines:  make(map[string]*Machine),
	}, nil
}

// AddMachine provisions one SGX machine: fresh CPU secret, counter
// service, QE membership in the data center's EPID group, and a Migration
// Enclave with a provider credential, registered on the network under the
// machine's name.
func (dc *DataCenter) AddMachine(id string) (*Machine, error) {
	return dc.AddMachineAt(id, transport.Address(id))
}

// AddMachineAt provisions a machine whose Migration Enclave listens on an
// explicit transport address (used with TCP transports, where addresses
// are host:port rather than machine names).
func (dc *DataCenter) AddMachineAt(id string, addr transport.Address) (*Machine, error) {
	// Held for the whole provisioning sequence so a concurrent add of the
	// same ID cannot slip between the duplicate check and the insert.
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if _, exists := dc.machines[id]; exists {
		return nil, fmt.Errorf("cloud: machine %q already exists", id)
	}
	hw, err := sgx.NewMachine(sgx.MachineID(id), dc.Latency)
	if err != nil {
		return nil, fmt.Errorf("machine %s: %w", id, err)
	}
	qe, err := attest.NewQuotingEnclave(hw, dc.Issuer)
	if err != nil {
		return nil, fmt.Errorf("quoting enclave %s: %w", id, err)
	}
	cred, err := dc.Provider.ProvisionME(id)
	if err != nil {
		return nil, fmt.Errorf("provision %s: %w", id, err)
	}
	me, err := core.NewMigrationEnclave(hw, qe, dc.IAS, cred, dc.Messenger, addr)
	if err != nil {
		return nil, fmt.Errorf("migration enclave %s: %w", id, err)
	}
	m := &Machine{
		HW:       hw,
		Counters: pse.NewService(dc.Latency),
		QE:       qe,
		ME:       me,
		apps:     make(map[*App]struct{}),
	}
	dc.machines[id] = m
	return m, nil
}

// Machine returns a previously added machine.
func (dc *DataCenter) Machine(id string) (*Machine, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	m, ok := dc.machines[id]
	return m, ok
}

// Machines returns every machine in the data center, sorted by ID.
func (dc *DataCenter) Machines() []*Machine {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	ms := make([]*Machine, 0, len(dc.machines))
	for _, m := range dc.machines {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID() < ms[j].ID() })
	return ms
}

// App is a migratable application: its enclave instance, its Migration
// Library, and its untrusted storage for the sealed library blob.
type App struct {
	Enclave *sgx.Enclave
	Library *core.Library
	Storage *core.MemoryStorage

	machine *Machine
	image   *sgx.Image
}

// LaunchApp loads the application enclave on the machine and initializes
// its Migration Library in the given state. Storage may be shared across
// launches of the same app (it models the VM's disk, which travels with
// the VM during migration).
func (m *Machine) LaunchApp(img *sgx.Image, storage *core.MemoryStorage, state core.InitState) (*App, error) {
	e, err := m.HW.Load(img)
	if err != nil {
		return nil, fmt.Errorf("load app enclave: %w", err)
	}
	lib := core.NewLibrary(e, m.Counters, storage)
	if err := lib.Init(state, m.ME); err != nil {
		m.HW.Destroy(e)
		return nil, fmt.Errorf("init migration library: %w", err)
	}
	app := &App{Enclave: e, Library: lib, Storage: storage, machine: m, image: img}
	m.mu.Lock()
	m.apps[app] = struct{}{}
	m.mu.Unlock()
	return app, nil
}

// Terminate destroys the app's enclave (application closed / crashed).
func (a *App) Terminate() {
	a.machine.mu.Lock()
	delete(a.machine.apps, a)
	a.machine.mu.Unlock()
	a.machine.HW.Destroy(a.Enclave)
}

// Machine returns the hosting machine.
func (a *App) Machine() *Machine { return a.machine }

// Image returns the enclave image the app was launched from.
func (a *App) Image() *sgx.Image { return a.image }
