// Package cloud assembles the full simulated environment of the paper's
// deployment: a data-center operator (cloud provider) running multiple
// SGX machines, each with Platform Services counters, a Quoting Enclave,
// and a provisioned Migration Enclave, all connected by an untrusted
// network. It is the top-level convenience API that examples, benchmarks,
// and integration tests build on.
package cloud

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/attest"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pse"
	"repro/internal/pserepl"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// Machine lifecycle errors.
var (
	// ErrMachineDown reports an operation on a killed machine.
	ErrMachineDown = errors.New("cloud: machine is down")
	// ErrNoReplica reports a replica operation on a machine that hosts no
	// counter replica.
	ErrNoReplica = errors.New("cloud: machine hosts no counter replica")
	// ErrHasReplica reports an attempt to place a second counter replica
	// on a machine.
	ErrHasReplica = errors.New("cloud: machine already hosts a counter replica")
	// ErrMachineUp reports a recovery of a machine that is still alive:
	// resurrecting a live machine's enclaves would run two copies.
	ErrMachineUp = errors.New("cloud: machine is alive; recovery is for dead machines")
	// ErrNotRackPeer reports a recovery target outside the dead machine's
	// rack group: only rack peers share the escrow and the counters.
	ErrNotRackPeer = errors.New("cloud: recovery target is not a rack peer of the dead machine")
	// ErrInstanceAlive reports a recovery of an enclave instance that is
	// still running somewhere in the data center. Like fleet's
	// redirect-only-to-replace-a-dead-destination rule, instance
	// liveness is the management plane's §V-D judgment call: the binding
	// counter would eventually freeze the older copy, but only after a
	// window in which two copies run.
	ErrInstanceAlive = errors.New("cloud: an enclave with this escrow instance is still running")
)

// DataCenter is one cloud provider's fleet: a certificate authority for
// Migration Enclave credentials, an EPID group issuer + IAS for remote
// attestation, a shared latency model, and the untrusted network.
type DataCenter struct {
	name     string
	Provider *attest.Provider
	Issuer   *xcrypto.Authority
	IAS      *attest.IAS
	// Network is the in-memory network (nil when a custom Messenger such
	// as TCP is used); adversary middleware attaches here.
	Network *transport.Network
	// Messenger is the transport Migration Enclaves communicate over.
	Messenger transport.Messenger
	Latency   *sim.Latency

	mu       sync.Mutex
	machines map[string]*Machine
	groups   map[string]*pserepl.Group
	obs      atomic.Pointer[obs.Observer]
}

// SetObserver installs a telemetry observer on the data center: every
// existing and future Migration Enclave, replica group, and library
// launched here reports traces, metrics, and audit events into it. A
// nil observer (the default) keeps all instrumentation as no-ops.
func (dc *DataCenter) SetObserver(o *obs.Observer) {
	dc.obs.Store(o)
	dc.mu.Lock()
	machines := make([]*Machine, 0, len(dc.machines))
	for _, m := range dc.machines {
		machines = append(machines, m)
	}
	groups := make([]*pserepl.Group, 0, len(dc.groups))
	for _, g := range dc.groups {
		groups = append(groups, g)
	}
	dc.mu.Unlock()
	for _, m := range machines {
		m.ME.SetObserver(o)
	}
	for _, g := range groups {
		g.SetObserver(o)
	}
}

// Observer returns the installed telemetry observer (nil when none).
func (dc *DataCenter) Observer() *obs.Observer { return dc.obs.Load() }

// Machine is one physical SGX machine inside a data center, fully
// provisioned: hardware, counter service, QE, and Migration Enclave.
//
// QE and ME are replaced by Restart; reading them while a concurrent
// Restart runs is not supported (restart a machine only between fleet
// operations, as a real operator would).
type Machine struct {
	HW       *sgx.Machine
	Counters *pse.Service
	QE       *attest.QuotingEnclave
	ME       *core.MigrationEnclave

	dc     *DataCenter
	meAddr transport.Address

	mu      sync.Mutex
	apps    map[*App]struct{}
	killed  bool
	group   *pserepl.Group
	replica *pserepl.Replica
	// lost records the apps that died in the last Kill, with the escrow
	// IDs captured while they were alive: the recovery manifest
	// DataCenter.RecoverMachine (and fleet's recovery mode) resurrects
	// from. Entries are removed as apps are recovered.
	lost []LostApp
}

// LostApp is one enclave that died with its machine: what is needed to
// resurrect it from the rack escrow on a peer.
type LostApp struct {
	Image *sgx.Image
	// EscrowID identifies the instance in the rack escrow; Escrowed is
	// false for apps that were not escrowed (CPU-bound, unrecoverable —
	// they can only come back via Restart + InitRestore on the same
	// machine).
	EscrowID [16]byte
	Escrowed bool
}

// MEAddress returns the machine's Migration Enclave network address.
func (m *Machine) MEAddress() transport.Address { return m.ME.Address() }

// ID returns the machine identifier within the data center.
func (m *Machine) ID() string { return string(m.HW.ID()) }

// Apps returns the live applications currently hosted on the machine
// (launched here and neither terminated nor killed by a restart), in no
// particular order. Fleet orchestration uses this to build its inventory.
// Apps whose enclaves died without Terminate (machine restart) are
// pruned from the registry as they are encountered.
func (m *Machine) Apps() []*App {
	m.mu.Lock()
	defer m.mu.Unlock()
	apps := make([]*App, 0, len(m.apps))
	for a := range m.apps {
		if a.Enclave.Alive() {
			apps = append(apps, a)
		} else {
			delete(m.apps, a)
		}
	}
	return apps
}

// AppCount returns the number of live applications on the machine (the
// load figure placement policies balance on).
func (m *Machine) AppCount() int { return len(m.Apps()) }

// NewDataCenter creates a data center with its own provider identity,
// EPID group, IAS, and network, using the given latency scale.
func NewDataCenter(name string, lat *sim.Latency) (*DataCenter, error) {
	net := transport.NewNetwork(lat)
	dc, err := NewDataCenterWithNetwork(name, lat, net)
	if err != nil {
		return nil, err
	}
	dc.Network = net
	return dc, nil
}

// NewDataCenterWithNetwork creates a data center whose Migration Enclaves
// communicate over a caller-supplied transport (e.g. TCP).
func NewDataCenterWithNetwork(name string, lat *sim.Latency, m transport.Messenger) (*DataCenter, error) {
	provider, err := attest.NewProvider(name)
	if err != nil {
		return nil, fmt.Errorf("provider: %w", err)
	}
	issuer, err := xcrypto.NewAuthority(name + "/epid-group")
	if err != nil {
		return nil, fmt.Errorf("group issuer: %w", err)
	}
	return &DataCenter{
		name:      name,
		Provider:  provider,
		Issuer:    issuer,
		IAS:       attest.NewIAS(issuer, lat),
		Messenger: m,
		Latency:   lat,
		machines:  make(map[string]*Machine),
		groups:    make(map[string]*pserepl.Group),
	}, nil
}

// Name returns the data center's name (its provider identity).
func (dc *DataCenter) Name() string { return dc.name }

// AddMachine provisions one SGX machine: fresh CPU secret, counter
// service, QE membership in the data center's EPID group, and a Migration
// Enclave with a provider credential, registered on the network under the
// machine's name.
func (dc *DataCenter) AddMachine(id string) (*Machine, error) {
	return dc.AddMachineAt(id, transport.Address(id))
}

// AddMachineAt provisions a machine whose Migration Enclave listens on an
// explicit transport address (used with TCP transports, where addresses
// are host:port rather than machine names).
func (dc *DataCenter) AddMachineAt(id string, addr transport.Address) (*Machine, error) {
	// Held for the whole provisioning sequence so a concurrent add of the
	// same ID cannot slip between the duplicate check and the insert.
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if _, exists := dc.machines[id]; exists {
		return nil, fmt.Errorf("cloud: machine %q already exists", id)
	}
	hw, err := sgx.NewMachine(sgx.MachineID(id), dc.Latency)
	if err != nil {
		return nil, fmt.Errorf("machine %s: %w", id, err)
	}
	qe, err := attest.NewQuotingEnclave(hw, dc.Issuer)
	if err != nil {
		return nil, fmt.Errorf("quoting enclave %s: %w", id, err)
	}
	cred, err := dc.Provider.ProvisionME(id)
	if err != nil {
		return nil, fmt.Errorf("provision %s: %w", id, err)
	}
	me, err := core.NewMigrationEnclave(hw, qe, dc.IAS, cred, dc.Messenger, addr)
	if err != nil {
		return nil, fmt.Errorf("migration enclave %s: %w", id, err)
	}
	me.SetObserver(dc.obs.Load())
	m := &Machine{
		HW:       hw,
		Counters: pse.NewService(dc.Latency),
		QE:       qe,
		ME:       me,
		dc:       dc,
		meAddr:   addr,
		apps:     make(map[*App]struct{}),
	}
	dc.machines[id] = m
	return m, nil
}

// replicaAddr is the messenger address of a machine's counter replica.
func replicaAddr(machineID string) transport.Address {
	return transport.Address(machineID + "/ctr-replica")
}

// NewReplicaGroup builds a rack-scoped replicated counter group: a
// quorum of 2f+1 counter replicas, one on each named machine. The named
// machines switch their counter facility to the group, so every app
// launched (or migrated onto) them from now on gets quorum-backed,
// machine-failure-surviving counters; machines outside the group keep
// the plain per-machine service.
func (dc *DataCenter) NewReplicaGroup(name string, f int, machineIDs ...string) (*pserepl.Group, error) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if _, exists := dc.groups[name]; exists {
		return nil, fmt.Errorf("cloud: replica group %q already exists", name)
	}
	members := make([]*Machine, 0, len(machineIDs))
	for _, id := range machineIDs {
		m, ok := dc.machines[id]
		if !ok {
			return nil, fmt.Errorf("cloud: unknown machine %q", id)
		}
		members = append(members, m)
	}
	replicas := make([]*pserepl.Replica, 0, len(members))
	fail := func(err error) (*pserepl.Group, error) {
		for _, r := range replicas {
			r.Close()
		}
		return nil, err
	}
	for _, m := range members {
		m.mu.Lock()
		busy := m.replica != nil || m.group != nil
		down := m.killed
		m.mu.Unlock()
		if busy {
			// Hosting a replica, or merely rack-associated with another
			// group: a machine serves exactly one group's counters, ever —
			// re-wiring its facility would strand every counter its apps
			// created through the old one.
			return fail(fmt.Errorf("%w: %s", ErrHasReplica, m.ID()))
		}
		if down {
			return fail(fmt.Errorf("%w: %s", ErrMachineDown, m.ID()))
		}
		r, err := pserepl.NewReplica(m.ID(), m.HW, m.Counters, dc.Messenger, replicaAddr(m.ID()))
		if err != nil {
			return fail(fmt.Errorf("replica on %s: %w", m.ID(), err))
		}
		replicas = append(replicas, r)
	}
	g, err := pserepl.NewGroup(name, f, dc.Messenger, replicas...)
	if err != nil {
		return fail(err)
	}
	g.SetObserver(dc.obs.Load())
	for i, m := range members {
		m.mu.Lock()
		m.group, m.replica = g, replicas[i]
		m.mu.Unlock()
	}
	dc.groups[name] = g
	return g, nil
}

// ReplicaGroup returns a previously created replica group.
func (dc *DataCenter) ReplicaGroup(name string) (*pserepl.Group, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	g, ok := dc.groups[name]
	return g, ok
}

// ReplicaGroups returns every replica group in the data center, sorted
// by name (the federation layer enumerates them when partnering racks).
func (dc *DataCenter) ReplicaGroups() []*pserepl.Group {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	gs := make([]*pserepl.Group, 0, len(dc.groups))
	for _, g := range dc.groups {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].Name() < gs[j].Name() })
	return gs
}

// DecommissionApp is the escrow garbage collector's operator entry
// point: it destroys a terminated app instance's replicated counters —
// the escrow binding counter and every app counter — and tombstones its
// escrow record on the named rack group, reclaiming the hard counter
// budget and store space the instance would otherwise leak forever.
// The tombstone is permanent and carried through snapshots and reseeds.
//
// Refused while an enclave with this escrow instance still runs
// anywhere in the data center (ErrInstanceAlive): decommissioning a
// live instance would destroy the counters out from under it.
func (dc *DataCenter) DecommissionApp(groupName string, img *sgx.Image, escrowID [16]byte) error {
	g, ok := dc.ReplicaGroup(groupName)
	if !ok {
		return fmt.Errorf("cloud: unknown replica group %q", groupName)
	}
	if live := dc.findInstance(escrowID); live != nil {
		return fmt.Errorf("%w: %s on %s", ErrInstanceAlive, live.Image().Name, live.Machine().ID())
	}
	return core.DecommissionEscrow(g, g.EscrowSealer(), img.Measure(), escrowID)
}

// HandoffReplica moves the counter-replica role hosted on machine srcID
// to machine dstID: a fresh replica on the destination is seeded from
// the quorum's state and swapped into the group, then the old replica is
// retired. This is how a machine that hosts a replica is drained without
// shrinking its group below 2f+1 (fleet runs it before moving enclaves).
// The destination also joins the rack: its counter facility becomes the
// group.
//
// dc.mu is held for the whole handoff (like NewReplicaGroup), so
// concurrent reconfigurations — two orchestrators draining onto the same
// destination, or a racing NewReplicaGroup — cannot both claim one
// machine between the availability check and the placement.
func (dc *DataCenter) HandoffReplica(srcID, dstID string) error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	src, ok := dc.machines[srcID]
	if !ok {
		return fmt.Errorf("cloud: unknown machine %q", srcID)
	}
	dst, ok := dc.machines[dstID]
	if !ok {
		return fmt.Errorf("cloud: unknown machine %q", dstID)
	}
	src.mu.Lock()
	group, old := src.group, src.replica
	src.mu.Unlock()
	if old == nil {
		return fmt.Errorf("%w: %s", ErrNoReplica, srcID)
	}
	dst.mu.Lock()
	// The destination must be free of replica roles AND not already
	// rack-associated with a different group: switching a machine's
	// counter facility would strand every counter its apps created
	// through the old one.
	busy := dst.replica != nil || (dst.group != nil && dst.group != group)
	down := dst.killed
	dst.mu.Unlock()
	if busy {
		return fmt.Errorf("%w: %s", ErrHasReplica, dstID)
	}
	if down {
		return fmt.Errorf("%w: %s", ErrMachineDown, dstID)
	}
	rep, err := pserepl.NewReplica(dstID, dst.HW, dst.Counters, dc.Messenger, replicaAddr(dstID))
	if err != nil {
		return fmt.Errorf("replica on %s: %w", dstID, err)
	}
	if err := group.Handoff(srcID, rep); err != nil {
		rep.Close()
		return err
	}
	dst.mu.Lock()
	dst.group, dst.replica = group, rep
	dst.mu.Unlock()
	src.mu.Lock()
	src.replica = nil
	// The source keeps the group as its counter facility: it is still
	// rack-associated (apps that remain or return use the quorum), it
	// just no longer hosts a share of it.
	src.mu.Unlock()
	old.Close()
	return nil
}

// RecoverMachine is the restart-anywhere recovery path: it re-instantiates
// every escrowed enclave of the dead machine on the named rack peer, by
// fetching each escrowed Table II blob from the quorum, verifying its
// binding counter, and re-sealing it natively on the target's CPU
// (Machine.RecoverApp per app). Counters are untouched — they live in the
// rack's replicated group and survive the machine by construction (PR 3);
// this closes the other half: the library state blobs now survive too.
//
// The dead machine must actually be down (a recovery of a live machine
// would run two copies of every enclave — the binding counters would
// freeze the originals, but the operator asked for something wrong) and
// the target must belong to the same rack group (only peers share the
// escrow and the counter facility). Un-escrowed apps cannot be recovered
// and stay in the dead machine's LostApps manifest; a failed recovery
// leaves the app there too, so the call can be retried.
func (dc *DataCenter) RecoverMachine(deadID, targetID string) ([]*App, error) {
	dead, ok := dc.Machine(deadID)
	if !ok {
		return nil, fmt.Errorf("cloud: unknown machine %q", deadID)
	}
	target, ok := dc.Machine(targetID)
	if !ok {
		return nil, fmt.Errorf("cloud: unknown machine %q", targetID)
	}
	if dead.Alive() {
		return nil, fmt.Errorf("%w: %s", ErrMachineUp, deadID)
	}
	if !target.Alive() {
		return nil, fmt.Errorf("%w: %s", ErrMachineDown, targetID)
	}
	g := dead.Group()
	if g == nil || target.Group() != g {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNotRackPeer, deadID, targetID)
	}
	var recovered []*App
	var errs []error
	for _, la := range dead.LostApps() {
		if !la.Escrowed {
			continue // CPU-bound app: only Restart + InitRestore can bring it back
		}
		app, err := target.RecoverApp(la.Image, la.EscrowID)
		if err != nil {
			// Keep going: one unrecoverable app (e.g. frozen mid-migration)
			// must not block the recoverable ones behind it in the
			// manifest. Failed apps stay in LostApps for a retry.
			errs = append(errs, fmt.Errorf("recover %s on %s: %w", la.Image.Name, targetID, err))
			continue
		}
		dead.DropLost(la.EscrowID)
		recovered = append(recovered, app)
	}
	return recovered, errors.Join(errs...)
}

// Machine returns a previously added machine.
func (dc *DataCenter) Machine(id string) (*Machine, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	m, ok := dc.machines[id]
	return m, ok
}

// Machines returns every machine in the data center, sorted by ID.
func (dc *DataCenter) Machines() []*Machine {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	ms := make([]*Machine, 0, len(dc.machines))
	for _, m := range dc.machines {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID() < ms[j].ID() })
	return ms
}

// CounterFacility returns the counter service apps on this machine are
// wired to: the rack's replicated group when the machine belongs to one,
// the plain per-machine Platform Services manager otherwise.
func (m *Machine) CounterFacility() core.CounterService {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.group != nil {
		return m.group
	}
	return m.Counters
}

// HostsReplica reports whether the machine hosts a counter replica of a
// replicated group (fleet checks this before draining the machine).
func (m *Machine) HostsReplica() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replica != nil
}

// Group returns the replicated counter group this machine belongs to
// (nil when it serves plain per-machine counters).
func (m *Machine) Group() *pserepl.Group {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.group
}

// Alive reports whether the machine is up (not killed).
func (m *Machine) Alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.killed
}

// Kill powers the machine off abruptly (hardware failure, maintenance
// pull): every enclave — apps, QE, Migration Enclave, counter-replica
// agent — dies with its memory, and nothing can launch until Restart.
// Counters on the machine-local Platform Services facility are stranded
// while the machine is down; counters replicated through a group stay
// available from the surviving quorum, and escrowed library state can be
// resurrected on any rack peer (DataCenter.RecoverMachine). The manifest
// of lost apps is captured here, while their escrow IDs are still
// readable.
func (m *Machine) Kill() {
	m.mu.Lock()
	m.killed = true
	m.lost = m.lost[:0]
	for a := range m.apps {
		if !a.Enclave.Alive() {
			continue
		}
		la := LostApp{Image: a.image}
		la.EscrowID, la.Escrowed = a.Library.EscrowID()
		m.lost = append(m.lost, la)
	}
	// The manifest is rebuilt from a map; order it so every recovery
	// path (local, fleet, cross-DC) resurrects in a reproducible order —
	// chaos schedules replay bit-identically only if recoveries do.
	sort.Slice(m.lost, func(i, j int) bool { return m.lost[i].Image.Name < m.lost[j].Image.Name })
	m.mu.Unlock()
	m.HW.Restart()
}

// LostApps returns the manifest of apps that died in the machine's last
// Kill and have not been recovered yet.
func (m *Machine) LostApps() []LostApp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]LostApp(nil), m.lost...)
}

// DropLost removes one recovered app from the lost manifest (the cloud
// and fleet recovery paths call it after a successful resurrection).
func (m *Machine) DropLost(escrowID [16]byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.lost {
		if m.lost[i].Escrowed && m.lost[i].EscrowID == escrowID {
			m.lost = append(m.lost[:i], m.lost[i+1:]...)
			return
		}
	}
}

// Restart boots the machine (back) up: any remaining enclaves are torn
// down (a reboot of a live machine), the Quoting Enclave and Migration
// Enclave are re-provisioned fresh (pending ME state died with its
// enclave memory, exactly the failure model the fleet layer assumes),
// and, if the machine hosts a counter replica, the replica's agent is
// reloaded and re-seeded from its group's quorum before it serves again.
// The CPU secret and the firmware counter state survive, as on real
// hardware.
func (m *Machine) Restart() error {
	m.HW.Restart()
	qe, err := attest.NewQuotingEnclave(m.HW, m.dc.Issuer)
	if err != nil {
		return fmt.Errorf("restart %s: quoting enclave: %w", m.ID(), err)
	}
	cred, err := m.dc.Provider.ProvisionME(m.ID())
	if err != nil {
		return fmt.Errorf("restart %s: provision: %w", m.ID(), err)
	}
	m.dc.Messenger.Unregister(m.meAddr)
	me, err := core.NewMigrationEnclave(m.HW, qe, m.dc.IAS, cred, m.dc.Messenger, m.meAddr)
	if err != nil {
		return fmt.Errorf("restart %s: migration enclave: %w", m.ID(), err)
	}
	me.SetObserver(m.dc.obs.Load())
	m.mu.Lock()
	m.QE, m.ME = qe, me
	m.killed = false
	replica, group := m.replica, m.group
	m.mu.Unlock()
	if replica != nil {
		if err := replica.Restart(); err != nil {
			return fmt.Errorf("restart %s: %w", m.ID(), err)
		}
		if err := group.Reseed(m.ID()); err != nil {
			// The machine is up but its replica stays unsynced (it will
			// not vote with stale values); re-run Reseed once enough of
			// the group is reachable.
			return fmt.Errorf("restart %s: %w", m.ID(), err)
		}
	}
	return nil
}

// App is a migratable application: its enclave instance, its Migration
// Library, and its untrusted storage for the sealed library blob.
type App struct {
	Enclave *sgx.Enclave
	Library *core.Library
	Storage *core.MemoryStorage

	machine *Machine
	image   *sgx.Image
}

// LaunchApp loads the application enclave on the machine and initializes
// its Migration Library in the given state. Storage may be shared across
// launches of the same app (it models the VM's disk, which travels with
// the VM during migration).
//
// On a rack-associated machine the library is wired to the rack's state
// escrow during the launch (the secure provisioning phase): its Table II
// blob is then escrowed with the quorum on every update, making the app
// recoverable on any rack peer after this machine dies.
func (m *Machine) LaunchApp(img *sgx.Image, storage *core.MemoryStorage, state core.InitState) (*App, error) {
	lib, e, err := m.prepareLibrary(img, storage)
	if err != nil {
		return nil, err
	}
	if err := lib.Init(state, m.ME); err != nil {
		m.HW.Destroy(e)
		return nil, fmt.Errorf("init migration library: %w", err)
	}
	return m.registerApp(e, lib, storage, img), nil
}

// RecoverApp resurrects a dead rack peer's enclave on this machine from
// the rack escrow: the restart-anywhere path. escrowID names the lost
// instance (from the dead machine's LostApps manifest); the library
// fetches the escrowed blob from the quorum, verifies its binding
// counter, re-seals natively on this CPU, and continues with all
// counters — they live in the same replicated group — intact.
func (m *Machine) RecoverApp(img *sgx.Image, escrowID [16]byte) (*App, error) {
	return m.RecoverAppCtx(obs.TraceContext{}, img, escrowID)
}

// RecoverAppCtx is RecoverApp under a caller-supplied trace context, so
// the recovery's spans (lib.recover, escrow.get, binding.win) join the
// caller's trace instead of starting a fresh one.
func (m *Machine) RecoverAppCtx(tc obs.TraceContext, img *sgx.Image, escrowID [16]byte) (*App, error) {
	if live := m.dc.findInstance(escrowID); live != nil {
		return nil, fmt.Errorf("%w: %s on %s", ErrInstanceAlive, live.Image().Name, live.Machine().ID())
	}
	storage := core.NewMemoryStorage()
	lib, e, err := m.prepareLibrary(img, storage)
	if err != nil {
		return nil, err
	}
	if err := lib.RecoverCtx(tc, m.ME, escrowID); err != nil {
		m.HW.Destroy(e)
		return nil, fmt.Errorf("recover migration library: %w", err)
	}
	return m.registerApp(e, lib, storage, img), nil
}

// prepareLibrary loads the enclave and builds its library with the
// machine's counter facility and — on rack-associated machines — the
// rack's escrow service and escrow key.
func (m *Machine) prepareLibrary(img *sgx.Image, storage *core.MemoryStorage) (*core.Library, *sgx.Enclave, error) {
	if !m.Alive() {
		return nil, nil, fmt.Errorf("%w: %s", ErrMachineDown, m.ID())
	}
	e, err := m.HW.Load(img)
	if err != nil {
		return nil, nil, fmt.Errorf("load app enclave: %w", err)
	}
	lib := core.NewLibrary(e, m.CounterFacility(), storage)
	lib.SetObserver(m.dc.obs.Load())
	if g := m.Group(); g != nil {
		lib.EnableEscrow(g, g.EscrowSealer())
	}
	return lib, e, nil
}

// findInstance returns a live app with the given escrow instance ID, or
// nil. The check is management-plane bookkeeping (fork-freedom of the
// counters never depends on it); it stops an operator from resurrecting
// an instance that is still running.
func (dc *DataCenter) findInstance(escrowID [16]byte) *App {
	for _, m := range dc.Machines() {
		for _, a := range m.Apps() {
			if id, ok := a.Library.EscrowID(); ok && id == escrowID {
				return a
			}
		}
	}
	return nil
}

// registerApp records a successfully initialized app on the machine.
func (m *Machine) registerApp(e *sgx.Enclave, lib *core.Library, storage *core.MemoryStorage, img *sgx.Image) *App {
	app := &App{Enclave: e, Library: lib, Storage: storage, machine: m, image: img}
	m.mu.Lock()
	m.apps[app] = struct{}{}
	m.mu.Unlock()
	return app
}

// Terminate destroys the app's enclave (application closed / crashed).
func (a *App) Terminate() {
	a.machine.mu.Lock()
	delete(a.machine.apps, a)
	a.machine.mu.Unlock()
	a.machine.HW.Destroy(a.Enclave)
}

// Machine returns the hosting machine.
func (a *App) Machine() *Machine { return a.machine }

// Image returns the enclave image the app was launched from.
func (a *App) Image() *sgx.Image { return a.image }
