package cloud_test

import (
	"errors"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/pse"
	"repro/internal/sgx"
	"repro/internal/sim"
)

// TestKillStrandsLocalCountersNotReplicated is the machine-failure
// story, upgraded for restart-anywhere recovery: killing a machine kills
// its apps and strands everything on its machine-local facilities (both
// the un-replicated counters and the CPU-bound sealed state), while a
// rack machine's apps survive IN FULL — counters from the surviving
// quorum, library state from the rack escrow — and are resurrected on a
// peer with app state intact, not just counter values.
func TestKillStrandsLocalCountersNotReplicated(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"r1", "r2", "r3", "solo"} {
		if _, err := dc.AddMachine(id); err != nil {
			t.Fatal(err)
		}
	}
	group, err := dc.NewReplicaGroup("rack-1", 1, "r1", "r2", "r3")
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := dc.Machine("r1")
	solo, _ := dc.Machine("solo")
	if !r1.HostsReplica() || solo.HostsReplica() {
		t.Fatal("replica placement wrong")
	}

	// One app on the rack machine (quorum-backed counters), one on the
	// standalone machine (plain per-machine counters).
	rackApp, err := r1.LaunchApp(image("rack-app"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	rackCtr, _, err := rackApp.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := rackApp.Library.IncrementCounter(rackCtr); err != nil {
			t.Fatal(err)
		}
	}
	// Application state sealed under the MSK — the part of the app a
	// counter-only replication scheme would lose with the machine.
	rackAppBlob, err := rackApp.Library.SealMigratable([]byte("state"), []byte("orders=42"))
	if err != nil {
		t.Fatal(err)
	}
	soloStorage := core.NewMemoryStorage()
	soloApp, err := solo.LaunchApp(image("solo-app"), soloStorage, core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	soloCtr, _, err := soloApp.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := soloApp.Library.IncrementCounter(soloCtr); err != nil {
			t.Fatal(err)
		}
	}

	// A raw replicated counter lets the operator probe survival directly
	// (the UUID is the capability; the owner identity is public).
	probeEnclave, err := r1.HW.Load(image("probe"))
	if err != nil {
		t.Fatal(err)
	}
	probeOwner := probeEnclave.MREnclave()
	probeUUID, _, err := group.Create(probeEnclave)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := group.IncrementN(probeEnclave, probeUUID, 7); err != nil {
		t.Fatal(err)
	}

	r1.Kill()
	solo.Kill()

	// Apps die with their machines, and nothing launches on a dead one.
	if rackApp.Enclave.Alive() || soloApp.Enclave.Alive() {
		t.Fatal("apps survived machine kill")
	}
	if _, err := solo.LaunchApp(image("late"), core.NewMemoryStorage(), core.InitNew); !errors.Is(err, cloud.ErrMachineDown) {
		t.Fatalf("launch on dead machine: err = %v", err)
	}
	// The un-replicated counter is stranded: every path to it runs
	// through the dead machine.
	if _, err := solo.Counters.Read(soloApp.Enclave, pse.UUID{}); !errors.Is(err, sgx.ErrEnclaveDestroyed) {
		t.Fatalf("stranded counter access: err = %v", err)
	}
	// The replicated counter survives the failure of the machine that
	// created it: the quorum (r2, r3) still serves its value.
	if got, err := group.Inspect(probeOwner, probeUUID); err != nil || got != 7 {
		t.Fatalf("replicated counter after kill: got %d err=%v", got, err)
	}

	// Restart-anywhere: the rack app is resurrected on r2 from the rack
	// escrow, with BOTH its counters and its application state intact.
	// The solo machine has nothing recoverable: its lost app was never
	// escrowed.
	if lost := solo.LostApps(); len(lost) != 1 || lost[0].Escrowed {
		t.Fatalf("solo lost manifest = %+v, want one un-escrowed app", lost)
	}
	recovered, err := dc.RecoverMachine("r1", "r2")
	if err != nil || len(recovered) != 1 {
		t.Fatalf("recover r1 on r2: %d apps err=%v", len(recovered), err)
	}
	revived := recovered[0]
	if got, err := revived.Library.ReadCounter(rackCtr); err != nil || got != 5 {
		t.Fatalf("recovered app counter: got %d err=%v", got, err)
	}
	if got, err := revived.Library.IncrementCounter(rackCtr); err != nil || got != 6 {
		t.Fatalf("recovered app increment: got %d err=%v", got, err)
	}
	if pt, aad, err := revived.Library.UnsealMigratable(rackAppBlob); err != nil ||
		string(pt) != "orders=42" || string(aad) != "state" {
		t.Fatalf("recovered app state: pt=%q aad=%q err=%v", pt, aad, err)
	}

	// Restart r1: the machine re-provisions its enclaves and its replica
	// is re-seeded from the quorum — but the rack app's old sealed blob
	// is now notarized stale by its (destroyed) binding counter, so a
	// zombie restore beside the recovered copy is refused.
	if err := r1.Restart(); err != nil {
		t.Fatal(err)
	}
	if !r1.Alive() {
		t.Fatal("machine not alive after restart")
	}
	if _, err := r1.LaunchApp(image("rack-app"), rackApp.Storage, core.InitRestore); !errors.Is(err, core.ErrRecoveredAway) {
		t.Fatalf("zombie restore after recovery: err = %v, want ErrRecoveredAway", err)
	}

	// With r1 back and re-seeded, the group again tolerates losing a
	// different replica — and the recovered app survives ANOTHER machine
	// failure the same way: recovery chains.
	r2, _ := dc.Machine("r2")
	r2.Kill()
	if got, err := group.Inspect(probeOwner, probeUUID); err != nil || got != 7 {
		t.Fatalf("replicated counter after second failure: got %d err=%v", got, err)
	}
	rerecovered, err := dc.RecoverMachine("r2", "r3")
	if err != nil || len(rerecovered) != 1 {
		t.Fatalf("recover r2 on r3: %d apps err=%v", len(rerecovered), err)
	}
	if got, err := rerecovered[0].Library.ReadCounter(rackCtr); err != nil || got != 6 {
		t.Fatalf("twice-recovered counter: got %d err=%v", got, err)
	}
	if pt, _, err := rerecovered[0].Library.UnsealMigratable(rackAppBlob); err != nil || string(pt) != "orders=42" {
		t.Fatalf("twice-recovered app state: pt=%q err=%v", pt, err)
	}
}

// TestReplicaPlacementRespectsRackAssociation pins the one-group-per-
// machine rule: a machine whose counter facility belongs to one group —
// even after its replica role was handed off — can never be claimed by
// another group, which would strand every counter its apps created.
func TestReplicaPlacementRespectsRackAssociation(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a1", "a2", "a3", "b1", "b2", "b3", "spare"} {
		if _, err := dc.AddMachine(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dc.NewReplicaGroup("rack-a", 1, "a1", "a2", "a3"); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.NewReplicaGroup("rack-b", 1, "b1", "b2", "b3"); err != nil {
		t.Fatal(err)
	}
	// A machine already in a group cannot join another group.
	if _, err := dc.NewReplicaGroup("rack-c", 0, "a1"); !errors.Is(err, cloud.ErrHasReplica) {
		t.Fatalf("second group on a1: err = %v", err)
	}
	// Hand a1's replica role to the spare; a1 stays rack-a-associated.
	if err := dc.HandoffReplica("a1", "spare"); err != nil {
		t.Fatal(err)
	}
	a1, _ := dc.Machine("a1")
	if a1.HostsReplica() || a1.Group() == nil {
		t.Fatal("a1 should be rack-associated without hosting a replica")
	}
	// rack-b must not be able to claim a1 even though it hosts no replica.
	if err := dc.HandoffReplica("b1", "a1"); !errors.Is(err, cloud.ErrHasReplica) {
		t.Fatalf("cross-group handoff onto a1: err = %v", err)
	}
	// But rack-a may hand a role back onto its own associated machine.
	if err := dc.HandoffReplica("spare", "a1"); err != nil {
		t.Fatalf("same-group handoff back onto a1: %v", err)
	}
}

// TestRestartReprovisionsMigrationEnclave checks that a restarted
// machine participates in migrations again: its fresh ME accepts an
// incoming migration end to end.
func TestRestartReprovisionsMigrationEnclave(t *testing.T) {
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	a, err := dc.AddMachine("A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := dc.AddMachine("B")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restart(); err != nil {
		t.Fatal(err)
	}
	if !b.ME.Enclave().Alive() {
		t.Fatal("ME dead after restart")
	}
	app, err := a.LaunchApp(image("mover"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Library.IncrementCounter(ctr); err != nil {
		t.Fatal(err)
	}
	if err := app.Library.StartMigration(b.MEAddress()); err != nil {
		t.Fatal(err)
	}
	restored, err := b.LaunchApp(image("mover"), core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := restored.Library.ReadCounter(ctr); err != nil || got != 1 {
		t.Fatalf("migrated counter on restarted machine: got %d err=%v", got, err)
	}
}
