package cloud

import (
	"crypto/ed25519"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/pserepl"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func decomImage(name string) *sgx.Image {
	key := xcrypto.DeriveKey([]byte("decommission-test"), "signer")
	return &sgx.Image{
		Name:            name,
		Version:         1,
		Code:            []byte("decom:" + name),
		SignerPublicKey: ed25519.PublicKey(key[:]),
	}
}

// TestDecommissionApp: terminating an app used to leak its replicated
// counters and escrow record forever; Decommission reclaims both, the
// tombstone survives reseeds, and the instance can never be
// resurrected.
func TestDecommissionApp(t *testing.T) {
	dc, err := NewDataCenter("decom-dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"r1", "r2", "r3"} {
		if _, err := dc.AddMachine(id); err != nil {
			t.Fatal(err)
		}
	}
	group, err := dc.NewReplicaGroup("rack", 1, "r1", "r2", "r3")
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := dc.Machine("r1")
	img := decomImage("tenant")
	app, err := r1.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := app.Library.CreateCounter(); err != nil {
		t.Fatal(err)
	}
	escrowID, ok := app.Library.EscrowID()
	if !ok {
		t.Fatal("no escrow ID")
	}

	// Refused while the instance is alive.
	if err := dc.DecommissionApp("rack", img, escrowID); !errors.Is(err, ErrInstanceAlive) {
		t.Fatalf("decommission of live instance: got %v, want ErrInstanceAlive", err)
	}

	app.Terminate()
	// The terminated app still holds two replicated counters (app
	// counter + escrow binding) and its escrow record — the leak.
	if n := group.TotalLive(); n != 2 {
		t.Fatalf("counters before decommission = %d, want 2", n)
	}
	if err := dc.DecommissionApp("rack", img, escrowID); err != nil {
		t.Fatalf("decommission: %v", err)
	}
	if n := group.TotalLive(); n != 0 {
		t.Fatalf("counters after decommission = %d, want 0", n)
	}
	if _, _, _, err := group.EscrowGet(img.Measure(), escrowID); !errors.Is(err, pserepl.ErrEscrowDecommissioned) {
		t.Fatalf("escrow record after decommission: got %v, want ErrEscrowDecommissioned", err)
	}

	// No resurrection, ever.
	r2, _ := dc.Machine("r2")
	if _, err := r2.RecoverApp(img, escrowID); err == nil {
		t.Fatal("decommissioned instance resurrected")
	}

	// The tombstone survives a machine restart + reseed: a stale
	// replica cannot re-propagate the record.
	if err := r1.Restart(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := group.EscrowGet(img.Measure(), escrowID); !errors.Is(err, pserepl.ErrEscrowDecommissioned) {
		t.Fatalf("escrow record after reseed: got %v, want ErrEscrowDecommissioned", err)
	}

	// The budget is actually reusable: a fresh app can claim counters.
	app2, err := r1.LaunchApp(decomImage("tenant-2"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := app2.Library.CreateCounter(); err != nil {
		t.Fatalf("create counter after decommission: %v", err)
	}
}
