package cloud_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/pse"
	"repro/internal/sgx"
	"repro/internal/sim"
)

// rackDC builds a data center with one f=1 rack (r1, r2, r3).
func rackDC(t *testing.T) *cloud.DataCenter {
	t.Helper()
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"r1", "r2", "r3"} {
		if _, err := dc.AddMachine(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dc.NewReplicaGroup("rack-1", 1, "r1", "r2", "r3"); err != nil {
		t.Fatal(err)
	}
	return dc
}

// TestRecoverMachineEndToEnd is the acceptance scenario: kill a rack
// machine and recover every enclave on a different machine with counters
// AND application state (migratable-sealed data) intact.
func TestRecoverMachineEndToEnd(t *testing.T) {
	dc := rackDC(t)
	r1, _ := dc.Machine("r1")
	r2, _ := dc.Machine("r2")

	app, err := r1.LaunchApp(image("payroll"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			t.Fatal(err)
		}
	}
	// Application state sealed under the MSK: the app holds the sealed
	// bytes (its VM disk); the MSK travels only inside the escrowed
	// Table II blob.
	appBlob, err := app.Library.SealMigratable([]byte("ledger"), []byte("balance=1337"))
	if err != nil {
		t.Fatal(err)
	}
	secondApp, err := r1.LaunchApp(image("audit"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	auditCtr, _, err := secondApp.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := secondApp.Library.IncrementCounter(auditCtr); err != nil {
		t.Fatal(err)
	}

	// Recovery preconditions are enforced.
	if _, err := dc.RecoverMachine("r1", "r2"); !errors.Is(err, cloud.ErrMachineUp) {
		t.Fatalf("recover of live machine: err = %v", err)
	}
	r1.Kill()
	if len(r1.LostApps()) != 2 {
		t.Fatalf("lost manifest has %d apps, want 2", len(r1.LostApps()))
	}

	recovered, err := dc.RecoverMachine("r1", "r2")
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d apps, want 2", len(recovered))
	}
	if len(r1.LostApps()) != 0 {
		t.Fatalf("lost manifest not drained: %d left", len(r1.LostApps()))
	}
	var payroll *cloud.App
	for _, a := range recovered {
		if a.Image().Name == "payroll" {
			payroll = a
		}
		if a.Machine() != r2 {
			t.Fatalf("app recovered on %s, want r2", a.Machine().ID())
		}
	}
	if payroll == nil {
		t.Fatal("payroll app not recovered")
	}
	// Counters survived with their values (they live in the quorum)...
	if got, err := payroll.Library.ReadCounter(ctr); err != nil || got != 5 {
		t.Fatalf("recovered counter: got %d err=%v", got, err)
	}
	if got, err := payroll.Library.IncrementCounter(ctr); err != nil || got != 6 {
		t.Fatalf("recovered increment: got %d err=%v", got, err)
	}
	// ...and so did the application state: the recovered MSK opens the
	// app's migratable-sealed data.
	pt, aad, err := payroll.Library.UnsealMigratable(appBlob)
	if err != nil || string(pt) != "balance=1337" || string(aad) != "ledger" {
		t.Fatalf("recovered app state: pt=%q aad=%q err=%v", pt, aad, err)
	}
	// New sealing and persistence work on the new CPU.
	if _, _, err := payroll.Library.CreateCounter(); err != nil {
		t.Fatalf("create on recovered library: %v", err)
	}
}

// TestRecoverMachineValidation pins the operator-facing guard rails.
func TestRecoverMachineValidation(t *testing.T) {
	dc := rackDC(t)
	if _, err := dc.AddMachine("solo"); err != nil {
		t.Fatal(err)
	}
	r1, _ := dc.Machine("r1")
	solo, _ := dc.Machine("solo")

	// Recovery onto a machine outside the rack group is refused.
	r1.Kill()
	if _, err := dc.RecoverMachine("r1", "solo"); !errors.Is(err, cloud.ErrNotRackPeer) {
		t.Fatalf("recover onto non-peer: err = %v", err)
	}
	// Recovery of a non-rack machine is refused.
	solo.Kill()
	if _, err := dc.RecoverMachine("solo", "r2"); !errors.Is(err, cloud.ErrNotRackPeer) {
		t.Fatalf("recover of non-rack machine: err = %v", err)
	}
	// Recovery onto a dead machine is refused.
	r3, _ := dc.Machine("r3")
	r3.Kill()
	if _, err := dc.RecoverMachine("r1", "r3"); !errors.Is(err, cloud.ErrMachineDown) {
		t.Fatalf("recover onto dead machine: err = %v", err)
	}
}

// TestRecoverySingleUse pins fork-freedom across the recovery paths:
// resurrect-after-recover fails (the binding counter is consumed), and a
// zombie original — the "dead" machine coming back — freezes instead of
// operating alongside the recovered copy.
func TestRecoverySingleUse(t *testing.T) {
	dc := rackDC(t)
	r1, _ := dc.Machine("r1")
	r3, _ := dc.Machine("r3")

	app, err := r1.LaunchApp(image("ledger"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Library.IncrementCounter(ctr); err != nil {
		t.Fatal(err)
	}
	escrowID, ok := app.Library.EscrowID()
	if !ok {
		t.Fatal("rack app not escrowed")
	}
	group, _ := dc.ReplicaGroup("rack-1")
	owner := app.Enclave.MREnclave()
	// Capture the pre-recovery record: after the recovery consumes its
	// binding counter, this is the "destroyed" record an adversary would
	// replay to resurrect the enclave a second time.
	oldVer, oldBind, oldBlob, err := group.EscrowGet(owner, escrowID)
	if err != nil {
		t.Fatal(err)
	}
	originalStorage := app.Storage
	r1.Kill()

	if _, err := dc.RecoverMachine("r1", "r2"); err != nil {
		t.Fatal(err)
	}
	// A second resurrection while the recovered copy runs is refused by
	// the management plane (the fleet-style liveness judgment call).
	if _, err := r3.RecoverApp(image("ledger"), escrowID); !errors.Is(err, cloud.ErrInstanceAlive) {
		t.Fatalf("second resurrection: err = %v, want ErrInstanceAlive", err)
	}
	// And even bypassing it, resurrecting from the consumed (pre-
	// recovery) record fails in the enclave: its binding counter was
	// destroyed by the recovery's DestroyAndRead and can never be won
	// again.
	lib, enc := newRecoveryLibrary(t, r3, "ledger")
	lib.EnableEscrow(staleEscrow{ver: oldVer, bind: oldBind, blob: oldBlob}, group.EscrowSealer())
	if err := lib.Recover(r3.ME, escrowID); !errors.Is(err, core.ErrEscrowConsumed) {
		t.Fatalf("resurrect-after-destroy: err = %v, want ErrEscrowConsumed", err)
	}
	r3.HW.Destroy(enc)
	// The "dead" machine comes back (operator error: it was alive-ish all
	// along). Its native sealed blob is now notarized stale: the restore
	// must refuse, so no zombie copy runs beside the recovered one.
	if err := r1.Restart(); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.LaunchApp(image("ledger"), originalStorage, core.InitRestore); err == nil {
		t.Fatal("zombie restore succeeded beside recovered copy: fork")
	}
}

// raceCounters wraps a counter service, running trigger once right
// before the first DestroyAndRead — the window between a recovery's
// binding read and its winning destroy.
type raceCounters struct {
	core.CounterService
	trigger func()
	once    sync.Once
}

func (r *raceCounters) DestroyAndRead(e *sgx.Enclave, uuid pse.UUID) (uint32, error) {
	r.once.Do(r.trigger)
	return r.CounterService.DestroyAndRead(e, uuid)
}

// TestRecoveryRacesLiveOriginal pins the one-winner outcome when an
// operator recovers an instance whose original is secretly still alive
// (bypassing the management-plane guards): the original persists between
// the recovery's binding read and its destroy. The recovery must follow
// the binding to the newer record it just captured — recovering the
// LATEST state — and the original must freeze, not run alongside.
func TestRecoveryRacesLiveOriginal(t *testing.T) {
	dc := rackDC(t)
	r1, _ := dc.Machine("r1")
	r2, _ := dc.Machine("r2")
	group, _ := dc.ReplicaGroup("rack-1")

	app, err := r1.LaunchApp(image("hot"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Library.IncrementCounter(ctr); err != nil {
		t.Fatal(err)
	}
	escrowID, _ := app.Library.EscrowID()

	// The recovery's counter service injects an original-side persist
	// (a counter create advances the binding and re-escrows) into the
	// read-to-destroy window.
	var raceErr error
	rc := &raceCounters{CounterService: group, trigger: func() {
		_, _, raceErr = app.Library.CreateCounter()
	}}
	e, err := r2.HW.Load(image("hot"))
	if err != nil {
		t.Fatal(err)
	}
	lib := core.NewLibrary(e, rc, core.NewMemoryStorage())
	lib.EnableEscrow(group, group.EscrowSealer())
	if err := lib.Recover(r2.ME, escrowID); err != nil {
		t.Fatalf("recovery racing live original: %v", err)
	}
	if raceErr != nil {
		t.Fatalf("racing persist: %v", raceErr)
	}
	// The recovery proceeded from the NEWEST record: the counter the
	// racing persist created is present, and values continued.
	if got, err := lib.ReadCounter(ctr); err != nil || got != 1 {
		t.Fatalf("recovered counter: got %d err=%v", got, err)
	}
	if lib.ActiveCounters() != 2 {
		t.Fatalf("recovered %d active counters, want 2 (racing create included)", lib.ActiveCounters())
	}
	// The original is the loser: its next persist finds the binding gone
	// and freezes.
	if _, _, err := app.Library.CreateCounter(); !errors.Is(err, core.ErrRecoveredAway) {
		t.Fatalf("original persist after lost race: err = %v, want ErrRecoveredAway", err)
	}
	if !app.Library.Frozen() {
		t.Fatal("original not frozen after losing the recovery race")
	}
}

// TestEscrowSecurity drives the attacker-facing rejection paths of
// recovery: forged escrow records, replayed stale records (rollback to an
// old state version), and mix-and-matched record fields must all fail
// closed.
func TestEscrowSecurity(t *testing.T) {
	dc := rackDC(t)
	r1, _ := dc.Machine("r1")
	r2, _ := dc.Machine("r2")
	group, _ := dc.ReplicaGroup("rack-1")

	app, err := r1.LaunchApp(image("vault"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	escrowID, _ := app.Library.EscrowID()
	owner := app.Enclave.MREnclave()

	// Capture the current (stale-to-be) record straight from the store,
	// the way a compromised coordinator would.
	staleVer, staleBind, staleBlob, err := group.EscrowGet(owner, escrowID)
	if err != nil {
		t.Fatal(err)
	}
	// The state moves on: another counter, more state versions.
	if _, _, err := app.Library.CreateCounter(); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Library.IncrementCounter(ctr); err != nil {
		t.Fatal(err)
	}

	// Replayed stale escrow: the store itself refuses the version
	// rollback on a quorum...
	if err := group.EscrowPut(owner, escrowID, staleVer, staleBind, staleBlob); err == nil {
		t.Fatal("store accepted a replayed stale escrow record")
	}
	r1.Kill()
	// ...and even a store that served the stale record cannot make a
	// recovery resurrect it: the binding counter is ahead of the sealed
	// version. Model the malicious store directly at the library layer.
	lib, enc := newRecoveryLibrary(t, r2, "vault")
	lib.EnableEscrow(staleEscrow{ver: staleVer, bind: staleBind, blob: staleBlob}, group.EscrowSealer())
	err = lib.Recover(r2.ME, escrowID)
	if !errors.Is(err, core.ErrEscrowStale) {
		t.Fatalf("stale escrow recovery: err = %v, want ErrEscrowStale", err)
	}
	r2.HW.Destroy(enc)
	// The stale rejection read the counter but did not destroy it: the
	// genuine record still recovers afterwards (no denial of recovery).
	recovered, err := dc.RecoverMachine("r1", "r2")
	if err != nil || len(recovered) != 1 {
		t.Fatalf("genuine recovery after stale attempt: %d apps, err=%v", len(recovered), err)
	}
	if got, err := recovered[0].Library.ReadCounter(ctr); err != nil || got != 1 {
		t.Fatalf("recovered counter: got %d err=%v", got, err)
	}

	// Forged escrow record: flip one byte anywhere in the genuine record
	// and the recovery rejects it before touching any counter.
	ver2, bind2, blob2, err := group.EscrowGet(owner, escrowID)
	if err != nil {
		t.Fatal(err)
	}
	r3, _ := dc.Machine("r3")
	for _, flip := range []int{2, len(blob2) / 2, len(blob2) - 1} {
		forged := append([]byte(nil), blob2...)
		forged[flip] ^= 0x40
		lib, enc := newRecoveryLibrary(t, r3, "vault")
		lib.EnableEscrow(staleEscrow{ver: ver2, bind: bind2, blob: forged}, group.EscrowSealer())
		if err := lib.Recover(r3.ME, escrowID); err == nil {
			t.Fatalf("forged escrow record (byte %d) accepted", flip)
		}
		r3.HW.Destroy(enc)
	}
	// Mix-and-match: the genuine blob presented under a lowered version
	// fails the key box's AAD binding (ErrEscrowInvalid), not just the
	// counter check.
	lib2, enc2 := newRecoveryLibrary(t, r3, "vault")
	lib2.EnableEscrow(staleEscrow{ver: ver2 - 1, bind: bind2, blob: blob2}, group.EscrowSealer())
	if err := lib2.Recover(r3.ME, escrowID); !errors.Is(err, core.ErrEscrowInvalid) {
		t.Fatalf("mix-and-match version: err = %v, want ErrEscrowInvalid", err)
	}
	r3.HW.Destroy(enc2)
}

// newRecoveryLibrary hand-builds a library on the machine (bypassing
// LaunchApp) so tests can wire a malicious escrow store.
func newRecoveryLibrary(t *testing.T, m *cloud.Machine, img string) (*core.Library, *sgx.Enclave) {
	t.Helper()
	e, err := m.HW.Load(image(img))
	if err != nil {
		t.Fatal(err)
	}
	return core.NewLibrary(e, m.CounterFacility(), core.NewMemoryStorage()), e
}

// staleEscrow is a malicious escrow store serving one fixed record.
type staleEscrow struct {
	ver  uint32
	bind pse.UUID
	blob []byte
}

func (s staleEscrow) EscrowPut(_ sgx.Measurement, _ [16]byte, _ uint32, _ pse.UUID, _ []byte) error {
	return nil
}

func (s staleEscrow) EscrowGet(_ sgx.Measurement, _ [16]byte) (uint32, pse.UUID, []byte, error) {
	return s.ver, s.bind, s.blob, nil
}
