package seal

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

func newMachine(t *testing.T, id sgx.MachineID) *sgx.Machine {
	t.Helper()
	m, err := sgx.NewMachine(id, sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newImage(t *testing.T, name string, version uint32) *sgx.Image {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &sgx.Image{Name: name, Version: version, Code: []byte(name), SignerPublicKey: pub}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	m := newMachine(t, "A")
	e, _ := m.Load(newImage(t, "app", 1))

	for _, policy := range []sgx.KeyPolicy{sgx.PolicyMRENCLAVE, sgx.PolicyMRSIGNER} {
		t.Run(policy.String(), func(t *testing.T) {
			blob, err := Seal(e, policy, []byte("mac-text"), []byte("secret"))
			if err != nil {
				t.Fatal(err)
			}
			pt, aad, err := Unseal(e, blob)
			if err != nil {
				t.Fatal(err)
			}
			if string(pt) != "secret" || string(aad) != "mac-text" {
				t.Fatalf("round trip mismatch: %q %q", pt, aad)
			}
		})
	}
}

func TestUnsealFailsOnOtherMachine(t *testing.T) {
	img := newImage(t, "app", 1)
	mA := newMachine(t, "A")
	mB := newMachine(t, "B")
	eA, _ := mA.Load(img)
	eB, _ := mB.Load(img)

	blob, err := Seal(eA, sgx.PolicyMRENCLAVE, nil, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Unseal(eB, blob); !errors.Is(err, ErrUnseal) {
		t.Fatalf("cross-machine unseal: got %v, want ErrUnseal", err)
	}
}

func TestUnsealFailsForOtherEnclave(t *testing.T) {
	m := newMachine(t, "A")
	eA, _ := m.Load(newImage(t, "app", 1))
	eB, _ := m.Load(newImage(t, "other", 1))
	blob, _ := Seal(eA, sgx.PolicyMRENCLAVE, nil, []byte("secret"))
	if _, _, err := Unseal(eB, blob); !errors.Is(err, ErrUnseal) {
		t.Fatalf("cross-enclave unseal: got %v", err)
	}
}

func TestMRSIGNERPolicySurvivesUpgrade(t *testing.T) {
	m := newMachine(t, "A")
	pub, _, _ := ed25519.GenerateKey(rand.Reader)
	v1 := &sgx.Image{Name: "app", Version: 1, Code: []byte("v1"), SignerPublicKey: pub}
	v2 := &sgx.Image{Name: "app", Version: 2, Code: []byte("v2"), SignerPublicKey: pub}
	e1, _ := m.Load(v1)
	e2, _ := m.Load(v2)

	blob, _ := Seal(e1, sgx.PolicyMRSIGNER, nil, []byte("carry-over"))
	pt, _, err := Unseal(e2, blob)
	if err != nil {
		t.Fatalf("upgrade unseal: %v", err)
	}
	if string(pt) != "carry-over" {
		t.Fatal("payload mismatch")
	}

	blobE, _ := Seal(e1, sgx.PolicyMRENCLAVE, nil, []byte("pinned"))
	if _, _, err := Unseal(e2, blobE); !errors.Is(err, ErrUnseal) {
		t.Fatalf("MRENCLAVE blob unsealed by upgraded enclave: %v", err)
	}
}

func TestSealedBlobTamperDetected(t *testing.T) {
	m := newMachine(t, "A")
	e, _ := m.Load(newImage(t, "app", 1))
	blob, _ := Seal(e, sgx.PolicyMRENCLAVE, []byte("aad"), []byte("secret"))

	t.Run("flip ciphertext byte", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)-1] ^= 1
		if _, _, err := Unseal(e, bad); !errors.Is(err, ErrUnseal) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("swap AAD", func(t *testing.T) {
		parsed, err := DecodeBlob(blob)
		if err != nil {
			t.Fatal(err)
		}
		parsed.AAD = []byte("altered")
		if _, _, err := Unseal(e, parsed.Encode()); !errors.Is(err, ErrUnseal) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("swap policy", func(t *testing.T) {
		parsed, _ := DecodeBlob(blob)
		parsed.Policy = sgx.PolicyMRSIGNER
		if _, _, err := Unseal(e, parsed.Encode()); !errors.Is(err, ErrUnseal) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		if _, _, err := Unseal(e, []byte("garbage")); !errors.Is(err, ErrBlobFormat) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated chunk", func(t *testing.T) {
		if _, err := DecodeBlob(blob[:len(blob)-3]); !errors.Is(err, ErrBlobFormat) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("trailing junk", func(t *testing.T) {
		if _, err := DecodeBlob(append(append([]byte(nil), blob...), 0x00)); !errors.Is(err, ErrBlobFormat) {
			t.Fatalf("got %v", err)
		}
	})
}

// Sealing does NOT protect against replay: an old blob still unseals.
// This is the property the paper's attacks exploit and monotonic counters
// must fix — assert it explicitly so the simulation can't silently become
// stronger than real SGX.
func TestSealingPermitsReplayByDesign(t *testing.T) {
	m := newMachine(t, "A")
	e, _ := m.Load(newImage(t, "app", 1))
	v1, _ := Seal(e, sgx.PolicyMRENCLAVE, nil, []byte("state v1"))
	_, _ = Seal(e, sgx.PolicyMRENCLAVE, nil, []byte("state v2"))

	pt, _, err := Unseal(e, v1)
	if err != nil {
		t.Fatalf("old blob must still unseal: %v", err)
	}
	if string(pt) != "state v1" {
		t.Fatal("old payload mismatch")
	}
}

func TestSealChargesEGETKEYAndRawDoesNot(t *testing.T) {
	m := newMachine(t, "A")
	e, _ := m.Load(newImage(t, "app", 1))
	lat := m.Latency()
	lat.Reset()
	if _, err := Seal(e, sgx.PolicyMRENCLAVE, nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := lat.Counts()[sim.OpEGetKey]; got != 1 {
		t.Fatalf("native seal EGETKEY count = %d, want 1", got)
	}
	lat.Reset()
	msk := xcrypto.DeriveKey([]byte("msk"), "test")
	if _, err := SealRaw(msk[:], nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := lat.Counts()[sim.OpEGetKey]; got != 0 {
		t.Fatalf("raw seal EGETKEY count = %d, want 0", got)
	}
}

func TestSealRawRoundTripAndKeyBinding(t *testing.T) {
	k1 := xcrypto.DeriveKey([]byte("a"), "k")
	k2 := xcrypto.DeriveKey([]byte("b"), "k")
	blob, err := SealRaw(k1[:], []byte("aad"), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	pt, aad, err := UnsealRaw(k1[:], blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "payload" || string(aad) != "aad" {
		t.Fatal("round trip mismatch")
	}
	if _, _, err := UnsealRaw(k2[:], blob); !errors.Is(err, ErrUnseal) {
		t.Fatalf("wrong key: got %v", err)
	}
}

func TestSealWithKeyIDSeparation(t *testing.T) {
	m := newMachine(t, "A")
	e, _ := m.Load(newImage(t, "app", 1))
	blob, _ := SealWithKeyID(e, sgx.PolicyMRENCLAVE, []byte("k1"), nil, []byte("secret"))
	parsed, _ := DecodeBlob(blob)
	parsed.KeyID = []byte("k2")
	if _, _, err := Unseal(e, parsed.Encode()); !errors.Is(err, ErrUnseal) {
		t.Fatalf("keyID substitution: got %v", err)
	}
}

// Property: seal/unseal round trip for arbitrary payloads and AADs.
func TestSealProperty(t *testing.T) {
	m := newMachine(t, "A")
	e, _ := m.Load(newImage(t, "app", 1))
	f := func(pt, aad []byte) bool {
		blob, err := Seal(e, sgx.PolicyMRENCLAVE, aad, pt)
		if err != nil {
			return false
		}
		got, gotAAD, err := Unseal(e, blob)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt) && bytes.Equal(gotAAD, aad)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
