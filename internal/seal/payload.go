package seal

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/sgx"
	"repro/internal/xcrypto"
)

// sealerCacheLimit bounds the sealer cache; reaching it flushes the cache
// so adversarial key-ID churn cannot grow it without bound.
const sealerCacheLimit = 4096

var (
	sealerMu sync.RWMutex
	sealers  = make(map[[32]byte]*xcrypto.Sealer)
)

// sealerFor returns a cached Sealer for the key, building the AES-GCM key
// schedule at most once per key. The cache is keyed by a SHA-256 digest
// of the key, not the key bytes, so raw key material never sits in a
// process-global table (the cipher instance necessarily embeds its key
// schedule, but that is dropped when the entry is evicted; hot callers
// that want zero lookup cost hold their own Sealer, as the Migration
// Library does for its MSK).
func sealerFor(key []byte) (*xcrypto.Sealer, error) {
	ck := sha256.Sum256(key)
	sealerMu.RLock()
	s, ok := sealers[ck]
	sealerMu.RUnlock()
	if ok {
		return s, nil
	}
	s, err := xcrypto.NewSealer(key)
	if err != nil {
		return nil, err
	}
	sealerMu.Lock()
	if len(sealers) >= sealerCacheLimit {
		sealers = make(map[[32]byte]*xcrypto.Sealer, 64)
	}
	sealers[ck] = s
	sealerMu.Unlock()
	return s, nil
}

// payloadAAD binds the blob header fields into the authenticated data so
// that policy or AAD substitution on the wire is detected.
func payloadAAD(policy sgx.KeyPolicy, keyID, aad []byte) []byte {
	out := make([]byte, 0, len("seal-blob")+1+8+len(keyID)+len(aad))
	out = append(out, "seal-blob"...)
	out = append(out, byte(policy))
	out = appendChunk(out, keyID)
	return appendChunk(out, aad)
}

// encodeSealed produces the encoded sealed blob in a single output buffer:
// header, then the payload chunk encrypted in place.
func encodeSealed(s *xcrypto.Sealer, policy sgx.KeyPolicy, keyID, aad, plaintext []byte) ([]byte, error) {
	out := make([]byte, 0, len(blobMagic)+1+12+len(keyID)+len(aad)+len(plaintext)+s.Overhead())
	out = append(out, blobMagic...)
	out = append(out, byte(policy))
	out = appendChunk(out, keyID)
	out = appendChunk(out, aad)
	lenOff := len(out)
	out = append(out, 0, 0, 0, 0) // payload chunk length, patched below
	out, err := s.SealAppend(out, plaintext, payloadAAD(policy, keyID, aad))
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(out[lenOff:], uint32(len(out)-lenOff-4))
	return out, nil
}

func decryptPayload(s *xcrypto.Sealer, b *Blob) ([]byte, error) {
	return s.Open(b.Payload, payloadAAD(b.Policy, b.KeyID, b.AAD))
}

// SealRaw seals plaintext directly under a caller-provided 16- or 32-byte
// key, with the same blob format and authentication as enclave sealing.
// This is the primitive the Migration Library uses for its migratable
// sealing: the key is the Migration Sealing Key (MSK) instead of an
// EGETKEY result, so no hardware key derivation is charged — which is why
// migratable sealing is slightly FASTER than native sealing in the
// paper's Figure 4. Hot callers that reuse one key hold a StateSealer
// instead, paying neither key schedule nor cache lookup.
func SealRaw(key, aad, plaintext []byte) ([]byte, error) {
	s, err := sealerFor(key)
	if err != nil {
		return nil, err
	}
	return encodeSealed(s, 0 /* no hardware policy: key supplied by caller */, nil, aad, plaintext)
}

// UnsealRaw reverses SealRaw under the caller-provided key.
func UnsealRaw(key, data []byte) (plaintext, aad []byte, err error) {
	s, err := sealerFor(key)
	if err != nil {
		return nil, nil, err
	}
	blob, err := DecodeBlob(data)
	if err != nil {
		return nil, nil, err
	}
	plaintext, err = decryptPayload(s, blob)
	if err != nil {
		return nil, nil, ErrUnseal
	}
	return plaintext, blob.AAD, nil
}
