package seal

import (
	"bytes"

	"repro/internal/xcrypto"
)

// payloadAAD binds the blob header fields into the authenticated data so
// that policy or AAD substitution on the wire is detected.
func payloadAAD(b *Blob) []byte {
	var buf bytes.Buffer
	buf.WriteString("seal-blob")
	buf.WriteByte(byte(b.Policy))
	writeChunk(&buf, b.KeyID)
	writeChunk(&buf, b.AAD)
	return buf.Bytes()
}

func encryptPayload(key, plaintext []byte, b *Blob) ([]byte, error) {
	return xcrypto.Encrypt(key, plaintext, payloadAAD(b))
}

func decryptPayload(key []byte, b *Blob) ([]byte, error) {
	return xcrypto.Decrypt(key, b.Payload, payloadAAD(b))
}

// SealRaw seals plaintext directly under a caller-provided 32-byte key,
// with the same blob format and authentication as enclave sealing. This is
// the primitive the Migration Library uses for its migratable sealing: the
// key is the Migration Sealing Key (MSK) instead of an EGETKEY result, so
// no hardware key derivation is charged — which is why migratable sealing
// is slightly FASTER than native sealing in the paper's Figure 4.
func SealRaw(key, aad, plaintext []byte) ([]byte, error) {
	blob := &Blob{
		Policy: 0, // no hardware policy: key supplied by caller
		AAD:    append([]byte(nil), aad...),
	}
	payload, err := encryptPayload(key, plaintext, blob)
	if err != nil {
		return nil, err
	}
	blob.Payload = payload
	return blob.Encode(), nil
}

// UnsealRaw reverses SealRaw under the caller-provided key.
func UnsealRaw(key, data []byte) (plaintext, aad []byte, err error) {
	blob, err := DecodeBlob(data)
	if err != nil {
		return nil, nil, err
	}
	plaintext, err = decryptPayload(key, blob)
	if err != nil {
		return nil, nil, ErrUnseal
	}
	return plaintext, blob.AAD, nil
}
