package seal

import (
	"repro/internal/xcrypto"
)

// StateSealer is the migratable state-sealing machinery shared by every
// path that seals enclave state under a caller-held raw key instead of an
// EGETKEY result: the Migration Library's sgx_seal_migratable_data
// implementation (key = the MSK), and the rack-escrow pipeline (key = the
// rack escrow key wrapping the MSK, and the MSK itself sealing the
// escrowed Table II blob). It was factored out of the Migration Library /
// ME-to-ME migration path so that escrow and migration provably use one
// sealing construction: the seal.Blob format with header-binding AAD,
// a cipher built exactly once per key, and the owner — not a shared
// cache — controlling the key schedule's lifetime.
//
// A StateSealer is safe for concurrent use.
type StateSealer struct {
	s *xcrypto.Sealer
}

// NewStateSealer builds the cached cipher for a caller-held 16- or
// 32-byte raw sealing key. The caller owns the sealer's lifetime — the
// Migration Library keeps one for exactly as long as it holds the MSK —
// so nothing about the key outlives its owner in any shared table.
func NewStateSealer(key []byte) (*StateSealer, error) {
	s, err := xcrypto.NewSealer(key)
	if err != nil {
		return nil, err
	}
	return &StateSealer{s: s}, nil
}

// Seal seals plaintext under the held key, authenticating aad alongside,
// producing the standard seal.Blob wire format (the migratable-sealing
// hot path: no key schedule, no cache lookup, no EGETKEY).
func (ss *StateSealer) Seal(aad, plaintext []byte) ([]byte, error) {
	return encodeSealed(ss.s, 0 /* no hardware policy: raw key */, nil, aad, plaintext)
}

// Unseal reverses Seal, returning the plaintext and the authenticated
// additional MAC text.
func (ss *StateSealer) Unseal(data []byte) (plaintext, aad []byte, err error) {
	blob, err := DecodeBlob(data)
	if err != nil {
		return nil, nil, err
	}
	plaintext, err = decryptPayload(ss.s, blob)
	if err != nil {
		return nil, nil, ErrUnseal
	}
	return plaintext, blob.AAD, nil
}

// Wrap AEAD-seals a small secret (a key box: e.g. the MSK wrapped under
// the rack escrow key) binding aad, without the blob framing — the raw
// nonce||ciphertext||tag form for embedding inside another codec.
func (ss *StateSealer) Wrap(secret, aad []byte) ([]byte, error) {
	return ss.s.Seal(secret, aad)
}

// Unwrap reverses Wrap.
func (ss *StateSealer) Unwrap(box, aad []byte) ([]byte, error) {
	return ss.s.Open(box, aad)
}
