package seal

import (
	"bytes"
	"testing"

	"repro/internal/xcrypto"
)

// FuzzDecodeBlob asserts the sealed-blob parser never panics on
// attacker-controlled bytes (the untrusted OS supplies every blob), and
// that anything it accepts re-encodes to the identical bytes — the format
// has exactly one representation per value.
func FuzzDecodeBlob(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SGXSEAL1"))
	f.Add([]byte("SGXSEAL1\x01"))
	f.Add(append([]byte("SGXSEAL1\x01"), 0xFF, 0xFF, 0xFF, 0xFF))
	f.Add(bytes.Repeat([]byte{0x41}, 64))
	key := xcrypto.DeriveKey([]byte("fuzz"), "seal-key")
	if blob, err := SealRaw(key[:], []byte("aad"), []byte("payload")); err == nil {
		f.Add(blob)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		b, err := DecodeBlob(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(b.Encode(), raw) {
			t.Fatal("accepted blob is not canonical")
		}
	})
}

// FuzzUnsealRaw drives the full unseal path (parse + AEAD open) with
// arbitrary wire bytes: it must fail cleanly, never panic, and never
// succeed for bytes that are not a genuine sealed blob under the key.
func FuzzUnsealRaw(f *testing.F) {
	key := xcrypto.DeriveKey([]byte("fuzz"), "unseal-key")
	valid, err := SealRaw(key[:], []byte("mac"), []byte("secret"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 128))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 1
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, raw []byte) {
		pt, aad, err := UnsealRaw(key[:], raw)
		if err != nil {
			return
		}
		// Only the authentic blob can open; anything else is forgery.
		if !bytes.Equal(raw, valid) {
			t.Fatalf("forged blob unsealed: pt=%q aad=%q", pt, aad)
		}
	})
}
