// Package seal implements the SGX SDK sealing functions on top of the
// simulated hardware: sgx_seal_data / sgx_unseal_data equivalents that
// encrypt data with AES-GCM under a key obtained via EGETKEY, bound to
// either the enclave identity (MRENCLAVE) or the signing identity
// (MRSIGNER) (paper §II-A4).
//
// As on real SGX, sealing guarantees confidentiality and integrity but NOT
// freshness: an untrusted OS can always hand the enclave an older sealed
// blob. Roll-back protection is the application's job, usually via
// monotonic counters (package pse) — which is exactly the gap the paper's
// migration framework has to preserve and migrate.
package seal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sgx"
)

// Sealing errors.
var (
	ErrBlobFormat   = errors.New("seal: malformed sealed blob")
	ErrUnseal       = errors.New("seal: unsealing failed")
	ErrWrongMachine = errors.New("seal: sealed on a different machine or enclave")
)

// blobMagic identifies sealed blobs on the wire.
var blobMagic = []byte("SGXSEAL1")

// Blob is the serialized sealed-data format: a cleartext header naming the
// key policy plus the AES-GCM ciphertext. The additional MAC text (AAD) is
// carried in the clear but authenticated, mirroring sgx_seal_data's
// additional_MACtext parameter.
type Blob struct {
	Policy  sgx.KeyPolicy
	KeyID   []byte
	AAD     []byte
	Payload []byte // nonce || ciphertext || tag
}

// Encode serializes a blob.
func (b *Blob) Encode() []byte {
	out := make([]byte, 0, len(blobMagic)+1+12+len(b.KeyID)+len(b.AAD)+len(b.Payload))
	out = append(out, blobMagic...)
	out = append(out, byte(b.Policy))
	out = appendChunk(out, b.KeyID)
	out = appendChunk(out, b.AAD)
	out = appendChunk(out, b.Payload)
	return out
}

// DecodeBlob parses a sealed blob. The returned blob's byte fields alias
// the input buffer; callers must not mutate data afterwards.
func DecodeBlob(data []byte) (*Blob, error) {
	if len(data) < len(blobMagic)+1 || !bytes.Equal(data[:len(blobMagic)], blobMagic) {
		return nil, ErrBlobFormat
	}
	rest := data[len(blobMagic):]
	policy := sgx.KeyPolicy(rest[0])
	rest = rest[1:]
	keyID, rest, err := readChunk(rest)
	if err != nil {
		return nil, err
	}
	aad, rest, err := readChunk(rest)
	if err != nil {
		return nil, err
	}
	payload, rest, err := readChunk(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrBlobFormat
	}
	return &Blob{Policy: policy, KeyID: keyID, AAD: aad, Payload: payload}, nil
}

func appendChunk(dst, b []byte) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	dst = append(dst, n[:]...)
	return append(dst, b...)
}

func readChunk(data []byte) (chunk, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, ErrBlobFormat
	}
	n := binary.BigEndian.Uint32(data[:4])
	data = data[4:]
	if uint32(len(data)) < n {
		return nil, nil, ErrBlobFormat
	}
	return data[:n], data[n:], nil
}

// Seal is the sgx_seal_data equivalent: it encrypts plaintext for the
// enclave under the given key policy, authenticating aad alongside.
// The sealing key is fetched via EGETKEY on every call, as the SDK does
// (the EGETKEY latency is charged per call; only the in-enclave cipher
// setup for the resulting key is cached).
func Seal(e *sgx.Enclave, policy sgx.KeyPolicy, aad, plaintext []byte) ([]byte, error) {
	return SealWithKeyID(e, policy, nil, aad, plaintext)
}

// SealWithKeyID seals under a specific key ID, allowing an enclave to keep
// several independent sealing keys.
func SealWithKeyID(e *sgx.Enclave, policy sgx.KeyPolicy, keyID, aad, plaintext []byte) ([]byte, error) {
	key, err := e.GetKey(sgx.KeySeal, policy, keyID)
	if err != nil {
		return nil, fmt.Errorf("seal key: %w", err)
	}
	s, err := sealerFor(key[:])
	if err != nil {
		return nil, err
	}
	return encodeSealed(s, policy, keyID, aad, plaintext)
}

// Unseal is the sgx_unseal_data equivalent. It returns the plaintext and
// the authenticated additional MAC text. Unsealing fails on any other
// machine, any other enclave identity (under MRENCLAVE policy), or any
// tampering with blob contents.
func Unseal(e *sgx.Enclave, data []byte) (plaintext, aad []byte, err error) {
	blob, err := DecodeBlob(data)
	if err != nil {
		return nil, nil, err
	}
	key, err := e.GetKey(sgx.KeySeal, blob.Policy, blob.KeyID)
	if err != nil {
		return nil, nil, fmt.Errorf("unseal key: %w", err)
	}
	s, err := sealerFor(key[:])
	if err != nil {
		return nil, nil, err
	}
	plaintext, err = decryptPayload(s, blob)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrUnseal, err)
	}
	return plaintext, blob.AAD, nil
}
