package core

import (
	"bytes"
	"testing"
)

// Fuzz harnesses for the batch pipeline's decoders — every byte shape
// here arrives from the untrusted network (batch offers with resume
// tickets, offer replies, sealed chunk frames, cumulative status acks,
// aggregated DONE flushes) or from inside the decrypted stream
// (batchRecord). Invariant as in codec_fuzz_test.go: error or a value
// that re-encodes and re-decodes consistently, never a panic.

func batchFuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xB5})
	f.Add([]byte{0xB5, 0x01})
	f.Add([]byte{0xB6, 0xFF, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// Count fields claiming far more entries than the payload holds.
	f.Add([]byte{0xB8, 0x01, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0xB9, 0x01, 0xFF, 0xFF, 0xFF, 0xFF})
}

func fuzzTestQuote() *wireQuote {
	return &wireQuote{Data: make([]byte, 64), Cert: []byte("cert"), Signature: []byte("sig")}
}

func FuzzDecodeBatchOffer(f *testing.F) {
	batchFuzzSeeds(f)
	resume, _ := encodeBatchOffer(&batchOffer{
		Count: 3,
		Resume: &resumeTicket{
			SessionID: []byte("sess-id!"),
			Epoch:     bytes.Repeat([]byte{7}, 16),
			Counter:   9,
			Count:     3,
			MAC:       bytes.Repeat([]byte{1}, 32),
		},
	})
	f.Add(resume)
	fresh, _ := encodeBatchOffer(&batchOffer{Count: 1, Quote: fuzzTestQuote(), DHPub: []byte("dh")})
	f.Add(fresh)
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeBatchOffer(raw)
		if err != nil {
			return
		}
		if (m.Quote == nil) == (m.Resume == nil) {
			t.Fatal("decoded offer has neither or both of quote and resume ticket")
		}
		re, err := encodeBatchOffer(m)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		m2, err := decodeBatchOffer(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if m.Count != m2.Count {
			t.Fatal("count mismatch after round trip")
		}
		if m.Resume != nil && (m2.Resume == nil || m.Resume.Counter != m2.Resume.Counter ||
			!bytes.Equal(m.Resume.SessionID, m2.Resume.SessionID) ||
			!bytes.Equal(m.Resume.Epoch, m2.Resume.Epoch) ||
			!bytes.Equal(m.Resume.MAC, m2.Resume.MAC)) {
			t.Fatal("resume ticket mismatch after round trip")
		}
	})
}

func FuzzDecodeBatchOfferReply(f *testing.F) {
	batchFuzzSeeds(f)
	resumed, _ := encodeBatchOfferReply(&batchOfferReply{
		Resumed: true, BatchID: []byte("batch-id"), ConfirmMAC: bytes.Repeat([]byte{2}, 32),
	})
	f.Add(resumed)
	refused, _ := encodeBatchOfferReply(&batchOfferReply{
		Refused: true, RefuseMAC: bytes.Repeat([]byte{9}, 32),
	})
	f.Add(refused)
	quoted, _ := encodeBatchOfferReply(&batchOfferReply{
		BatchID: []byte("batch-id"), SessionID: []byte("sess"), Epoch: []byte("epoch"),
		Quote: fuzzTestQuote(), DHPub: []byte("dh"), Cert: []byte("cert"), Sig: []byte("sig"),
	})
	f.Add(quoted)
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeBatchOfferReply(raw)
		if err != nil {
			return
		}
		re, err := encodeBatchOfferReply(m)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		m2, err := decodeBatchOfferReply(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if m.Refused != m2.Refused || m.Resumed != m2.Resumed ||
			!bytes.Equal(m.BatchID, m2.BatchID) || !bytes.Equal(m.Epoch, m2.Epoch) ||
			!bytes.Equal(m.RefuseMAC, m2.RefuseMAC) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzDecodeBatchChunk(f *testing.F) {
	batchFuzzSeeds(f)
	valid, _ := encodeBatchChunk(&batchChunk{
		BatchID: []byte("batch-id"), Seq: 5, Cert: []byte("c"), Sig: []byte("s"),
		Sealed: bytes.Repeat([]byte{3}, 48),
	})
	f.Add(valid)
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeBatchChunk(raw)
		if err != nil {
			return
		}
		re, err := encodeBatchChunk(m)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		m2, err := decodeBatchChunk(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if m.Seq != m2.Seq || !bytes.Equal(m.BatchID, m2.BatchID) || !bytes.Equal(m.Sealed, m2.Sealed) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzDecodeBatchStatusList(f *testing.F) {
	batchFuzzSeeds(f)
	valid, _ := encodeBatchStatusList(&batchStatusList{Statuses: []memberStatus{
		{Index: 0, Status: batchStatusStored},
		{Index: 7, Status: batchStatusError, Detail: "identity busy"},
	}})
	f.Add(valid)
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeBatchStatusList(raw)
		if err != nil {
			return
		}
		re, err := encodeBatchStatusList(m)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		m2, err := decodeBatchStatusList(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if len(m.Statuses) != len(m2.Statuses) {
			t.Fatal("status count mismatch after round trip")
		}
		for i := range m.Statuses {
			if m.Statuses[i] != m2.Statuses[i] {
				t.Fatal("status mismatch after round trip")
			}
		}
	})
}

func FuzzDecodeBatchDone(f *testing.F) {
	batchFuzzSeeds(f)
	valid, _ := encodeBatchDoneMessage(&batchDoneMessage{Tokens: [][]byte{
		bytes.Repeat([]byte{4}, 16), bytes.Repeat([]byte{5}, 16),
	}})
	f.Add(valid)
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeBatchDoneMessage(raw)
		if err != nil {
			return
		}
		re, err := encodeBatchDoneMessage(m)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		m2, err := decodeBatchDoneMessage(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if len(m.Tokens) != len(m2.Tokens) {
			t.Fatal("token count mismatch after round trip")
		}
		for i := range m.Tokens {
			if !bytes.Equal(m.Tokens[i], m2.Tokens[i]) {
				t.Fatal("token mismatch after round trip")
			}
		}
	})
}

func FuzzDecodeBatchAbort(f *testing.F) {
	batchFuzzSeeds(f)
	valid, _ := encodeBatchAbort(&batchAbort{
		BatchID: []byte("batch-id"), Sealed: bytes.Repeat([]byte{8}, 27),
	})
	f.Add(valid)
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeBatchAbort(raw)
		if err != nil {
			return
		}
		re, err := encodeBatchAbort(m)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		m2, err := decodeBatchAbort(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if !bytes.Equal(m.BatchID, m2.BatchID) || !bytes.Equal(m.Sealed, m2.Sealed) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzDecodeBatchRecord(f *testing.F) {
	batchFuzzSeeds(f)
	valid, _ := encodeBatchRecord(&batchRecord{
		Index: 2, Compressed: true, Trace: []byte("trace"), Envelope: bytes.Repeat([]byte{6}, 32),
	})
	f.Add(valid)
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeBatchRecord(raw)
		if err != nil {
			return
		}
		re, err := encodeBatchRecord(m)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		m2, err := decodeBatchRecord(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if m.Index != m2.Index || m.Compressed != m2.Compressed ||
			!bytes.Equal(m.Trace, m2.Trace) || !bytes.Equal(m.Envelope, m2.Envelope) {
			t.Fatal("round trip mismatch")
		}
	})
}
