package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/sgx"
	"repro/internal/xcrypto"
)

// Local (Library <-> Migration Enclave) operations, carried over the
// attested channel established at migration_init.
const (
	opMigrateOut    = "migrate-out"
	opFetchIncoming = "fetch-incoming"
	opAckRestored   = "ack-restored"
	opCheckDone     = "check-done"
)

// Local reply statuses.
const (
	statusSent    = "sent"      // data transferred to destination ME
	statusPending = "pending"   // transfer failed; held at source ME
	statusNone    = "none"      // no incoming migration waiting
	statusData    = "data"      // incoming migration data attached
	statusOK      = "ok"        // generic success
	statusDone    = "done"      // DONE confirmation received
	statusWaiting = "in-flight" // migration not yet confirmed
)

// localRequest is a Library -> Migration Enclave message.
type localRequest struct {
	Op    string `json:"op"`
	Dest  string `json:"dest,omitempty"`
	Body  []byte `json:"body,omitempty"`
	Token []byte `json:"token,omitempty"`
}

// localResponse is a Migration Enclave -> Library message.
type localResponse struct {
	Status string `json:"status"`
	Detail string `json:"detail,omitempty"`
	Body   []byte `json:"body,omitempty"`
	Token  []byte `json:"token,omitempty"`
}

func encodeLocalRequest(r *localRequest) ([]byte, error) {
	out, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("encode local request: %w", err)
	}
	return out, nil
}

func decodeLocalRequest(raw []byte) (*localRequest, error) {
	var r localRequest
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDataFormat, err)
	}
	return &r, nil
}

func encodeLocalResponse(r *localResponse) ([]byte, error) {
	out, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("encode local response: %w", err)
	}
	return out, nil
}

func decodeLocalResponse(raw []byte) (*localResponse, error) {
	var r localResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDataFormat, err)
	}
	return &r, nil
}

// Network message kinds between Migration Enclaves (Fig. 2's attest /
// data / DONE arrows).
const (
	kindOffer = "migrate-offer"
	kindData  = "migrate-data"
	kindDone  = "migrate-done"
)

// transcriptContext labels the remote-attestation transcript binding.
const transcriptContext = "me-remote-attestation"

// offerMessage opens the mutual remote attestation: the source ME's quote
// binds its ephemeral DH public key.
type offerMessage struct {
	Quote *wireQuote `json:"quote"`
	DHPub []byte     `json:"dhPub"`
}

// offerReply completes the attestation from the destination side: its
// quote binds both DH keys; the provider certificate and transcript
// signature authenticate the destination machine (R2).
type offerReply struct {
	SessionID string     `json:"sessionID"`
	Quote     *wireQuote `json:"quote"`
	DHPub     []byte     `json:"dhPub"`
	Cert      []byte     `json:"cert"`
	Sig       []byte     `json:"sig"`
}

// dataMessage carries the channel-sealed migration envelope, plus the
// source's provider credential so the destination can authenticate the
// source machine before accepting (mutual authentication).
type dataMessage struct {
	SessionID string `json:"sessionID"`
	Cert      []byte `json:"cert"`
	Sig       []byte `json:"sig"`
	Sealed    []byte `json:"sealed"`
}

// doneMessage confirms restore completion back to the source ME.
type doneMessage struct {
	Token []byte `json:"token"`
}

// wireQuote is the JSON-transportable form of attest.Quote.
type wireQuote struct {
	MREnclave sgx.Measurement `json:"mrenclave"`
	MRSigner  sgx.Measurement `json:"mrsigner"`
	Data      []byte          `json:"data"`
	Cert      []byte          `json:"cert"`
	Signature []byte          `json:"signature"`
}

func marshalJSON(v any) ([]byte, error) {
	out, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("encode protocol message: %w", err)
	}
	return out, nil
}

func unmarshalJSON(raw []byte, v any) error {
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("%w: %v", ErrDataFormat, err)
	}
	return nil
}

// certToWire serializes a certificate for embedding in protocol messages.
func certToWire(c *xcrypto.Certificate) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("%w: missing certificate", ErrDataFormat)
	}
	return c.Encode()
}

// certFromWire parses an embedded certificate.
func certFromWire(raw []byte) (*xcrypto.Certificate, error) {
	return xcrypto.DecodeCertificate(raw)
}
