package core

import (
	"fmt"

	"repro/internal/sgx"
	"repro/internal/xcrypto"
)

// Local (Library <-> Migration Enclave) operations, carried over the
// attested channel established at migration_init.
const (
	opMigrateOut = "migrate-out"
	// opMigrateOutHold stores the outgoing migration at the source ME
	// WITHOUT attempting a transfer: the batch pipeline freezes each
	// enclave just before its chunks are sent and streams the held
	// envelope itself, so the freeze-to-send gap stays per-enclave.
	opMigrateOutHold = "migrate-out-hold"
	opFetchIncoming  = "fetch-incoming"
	opAckRestored    = "ack-restored"
	opCheckDone      = "check-done"
)

// Local reply statuses.
const (
	statusSent    = "sent"      // data transferred to destination ME
	statusPending = "pending"   // transfer failed; held at source ME
	statusHeld    = "held"      // data held at source ME for a batch stream
	statusNone    = "none"      // no incoming migration waiting
	statusData    = "data"      // incoming migration data attached
	statusOK      = "ok"        // generic success
	statusDone    = "done"      // DONE confirmation received
	statusWaiting = "in-flight" // migration not yet confirmed
)

// localRequest is a Library -> Migration Enclave message. Trace carries
// the caller's 16-byte obs.TraceContext (empty when tracing is off) so
// the ME's protocol spans join the library's trace.
type localRequest struct {
	Op    string
	Dest  string
	Body  []byte
	Token []byte
	Trace []byte
}

// localResponse is a Migration Enclave -> Library message. Trace returns
// the context an incoming migration or DONE confirmation traveled with,
// so the restoring library continues the originating trace.
type localResponse struct {
	Status string
	Detail string
	Body   []byte
	Token  []byte
	Trace  []byte
}

func encodeLocalRequest(r *localRequest) ([]byte, error) {
	out := make([]byte, 0, 2+36+len(r.Op)+len(r.Dest)+len(r.Body)+len(r.Token))
	out = appendHeader(out, tagLocalRequest)
	out = appendString(out, r.Op)
	out = appendString(out, r.Dest)
	out = appendBytes(out, r.Body)
	out = appendBytes(out, r.Token)
	out = appendBytes(out, r.Trace)
	return out, nil
}

func decodeLocalRequest(raw []byte) (*localRequest, error) {
	rd := newWireReader(raw)
	if !rd.header(tagLocalRequest) {
		return nil, rd.errState()
	}
	r := &localRequest{
		Op:    rd.string(),
		Dest:  rd.string(),
		Body:  rd.bytes(),
		Token: rd.bytes(),
		Trace: rd.bytes(),
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return r, nil
}

func encodeLocalResponse(r *localResponse) ([]byte, error) {
	out := make([]byte, 0, 2+36+len(r.Status)+len(r.Detail)+len(r.Body)+len(r.Token))
	out = appendHeader(out, tagLocalResponse)
	out = appendString(out, r.Status)
	out = appendString(out, r.Detail)
	out = appendBytes(out, r.Body)
	out = appendBytes(out, r.Token)
	out = appendBytes(out, r.Trace)
	return out, nil
}

func decodeLocalResponse(raw []byte) (*localResponse, error) {
	rd := newWireReader(raw)
	if !rd.header(tagLocalResponse) {
		return nil, rd.errState()
	}
	r := &localResponse{
		Status: rd.string(),
		Detail: rd.string(),
		Body:   rd.bytes(),
		Token:  rd.bytes(),
		Trace:  rd.bytes(),
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return r, nil
}

// Network message kinds between Migration Enclaves (Fig. 2's attest /
// data / DONE arrows).
const (
	kindOffer = "migrate-offer"
	kindData  = "migrate-data"
	kindDone  = "migrate-done"
	// Batched pipeline kinds: one offer (full handshake or session
	// resume), a pipelined chunk stream, and one aggregated DONE.
	kindBatchOffer = "migrate-batch-offer"
	kindBatchChunk = "migrate-batch-chunk"
	kindBatchDone  = "migrate-batch-done"
	kindBatchAbort = "migrate-batch-abort"
)

// transcriptContext labels the remote-attestation transcript binding.
const transcriptContext = "me-remote-attestation"

// offerMessage opens the mutual remote attestation: the source ME's quote
// binds its ephemeral DH public key.
type offerMessage struct {
	Quote *wireQuote
	DHPub []byte
}

// offerReply completes the attestation from the destination side: its
// quote binds both DH keys; the provider certificate and transcript
// signature authenticate the destination machine (R2).
type offerReply struct {
	SessionID string
	Quote     *wireQuote
	DHPub     []byte
	Cert      []byte
	Sig       []byte
}

// dataMessage carries the channel-sealed migration envelope, plus the
// source's provider credential so the destination can authenticate the
// source machine before accepting (mutual authentication).
type dataMessage struct {
	SessionID string
	Cert      []byte
	Sig       []byte
	Sealed    []byte
}

// doneMessage confirms restore completion back to the source ME.
type doneMessage struct {
	Token []byte
}

// wireQuote is the wire-transportable form of attest.Quote.
type wireQuote struct {
	MREnclave sgx.Measurement
	MRSigner  sgx.Measurement
	Data      []byte
	Cert      []byte
	Signature []byte
}

// appendQuote encodes a quote inline (within an already-tagged message).
func appendQuote(dst []byte, q *wireQuote) []byte {
	dst = append(dst, q.MREnclave[:]...)
	dst = append(dst, q.MRSigner[:]...)
	dst = appendBytes(dst, q.Data)
	dst = appendBytes(dst, q.Cert)
	return appendBytes(dst, q.Signature)
}

// quote decodes an inline quote from the reader's cursor.
func (r *wireReader) quote() *wireQuote {
	var q wireQuote
	copy(q.MREnclave[:], r.take(len(q.MREnclave)))
	copy(q.MRSigner[:], r.take(len(q.MRSigner)))
	q.Data = r.bytes()
	q.Cert = r.bytes()
	q.Signature = r.bytes()
	if r.errState() != nil {
		return nil
	}
	return &q
}

func encodeOffer(m *offerMessage) ([]byte, error) {
	if m.Quote == nil {
		return nil, fmt.Errorf("%w: missing quote", ErrDataFormat)
	}
	out := appendHeader(make([]byte, 0, 256+len(m.Quote.Cert)), tagOffer)
	out = appendQuote(out, m.Quote)
	return appendBytes(out, m.DHPub), nil
}

func decodeOffer(raw []byte) (*offerMessage, error) {
	rd := newWireReader(raw)
	if !rd.header(tagOffer) {
		return nil, rd.errState()
	}
	m := &offerMessage{Quote: rd.quote(), DHPub: rd.bytes()}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeOfferReply(m *offerReply) ([]byte, error) {
	if m.Quote == nil {
		return nil, fmt.Errorf("%w: missing quote", ErrDataFormat)
	}
	out := appendHeader(make([]byte, 0, 512+len(m.Quote.Cert)+len(m.Cert)), tagOfferReply)
	out = appendString(out, m.SessionID)
	out = appendQuote(out, m.Quote)
	out = appendBytes(out, m.DHPub)
	out = appendBytes(out, m.Cert)
	return appendBytes(out, m.Sig), nil
}

func decodeOfferReply(raw []byte) (*offerReply, error) {
	rd := newWireReader(raw)
	if !rd.header(tagOfferReply) {
		return nil, rd.errState()
	}
	m := &offerReply{
		SessionID: rd.string(),
		Quote:     rd.quote(),
		DHPub:     rd.bytes(),
		Cert:      rd.bytes(),
		Sig:       rd.bytes(),
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeDataMessage(m *dataMessage) ([]byte, error) {
	out := appendHeader(make([]byte, 0, 64+len(m.SessionID)+len(m.Cert)+len(m.Sig)+len(m.Sealed)), tagDataMessage)
	out = appendString(out, m.SessionID)
	out = appendBytes(out, m.Cert)
	out = appendBytes(out, m.Sig)
	return appendBytes(out, m.Sealed), nil
}

func decodeDataMessage(raw []byte) (*dataMessage, error) {
	rd := newWireReader(raw)
	if !rd.header(tagDataMessage) {
		return nil, rd.errState()
	}
	m := &dataMessage{
		SessionID: rd.string(),
		Cert:      rd.bytes(),
		Sig:       rd.bytes(),
		Sealed:    rd.bytes(),
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeDoneMessage(m *doneMessage) ([]byte, error) {
	out := appendHeader(make([]byte, 0, 8+len(m.Token)), tagDoneMessage)
	return appendBytes(out, m.Token), nil
}

func decodeDoneMessage(raw []byte) (*doneMessage, error) {
	rd := newWireReader(raw)
	if !rd.header(tagDoneMessage) {
		return nil, rd.errState()
	}
	m := &doneMessage{Token: rd.bytes()}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// certToWire serializes a certificate for embedding in protocol messages.
func certToWire(c *xcrypto.Certificate) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("%w: missing certificate", ErrDataFormat)
	}
	return c.Encode()
}

// certFromWire parses an embedded certificate.
func certFromWire(raw []byte) (*xcrypto.Certificate, error) {
	return xcrypto.DecodeCertificate(raw)
}
