package core_test

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
)

// testAppImage builds a deterministic-enough app image for tests.
func testAppImage(t *testing.T, name string) *sgx.Image {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &sgx.Image{Name: name, Version: 1, Code: []byte("code:" + name), SignerPublicKey: pub}
}

// env bundles a one-provider, two-machine world.
type env struct {
	dc  *cloud.DataCenter
	src *cloud.Machine
	dst *cloud.Machine
}

func newEnv(t *testing.T) *env {
	t.Helper()
	dc, err := cloud.NewDataCenter("dc-test", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	src, err := dc.AddMachine("machine-src")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dc.AddMachine("machine-dst")
	if err != nil {
		t.Fatal(err)
	}
	return &env{dc: dc, src: src, dst: dst}
}

func TestLibraryInitNewAndSealing(t *testing.T) {
	e := newEnv(t)
	app, err := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := app.Library.SealMigratable([]byte("mac"), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	pt, aad, err := app.Library.UnsealMigratable(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "secret" || string(aad) != "mac" {
		t.Fatalf("round trip mismatch: %q %q", pt, aad)
	}
}

func TestLibraryRequiresInit(t *testing.T) {
	e := newEnv(t)
	enclave, err := e.src.HW.Load(testAppImage(t, "app"))
	if err != nil {
		t.Fatal(err)
	}
	lib := core.NewLibrary(enclave, e.src.Counters, core.NewMemoryStorage())
	if _, err := lib.SealMigratable(nil, []byte("x")); !errors.Is(err, core.ErrNotInitialized) {
		t.Fatalf("seal before init: %v", err)
	}
	if _, _, err := lib.CreateCounter(); !errors.Is(err, core.ErrNotInitialized) {
		t.Fatalf("create before init: %v", err)
	}
	if err := lib.StartMigration("machine-dst"); !errors.Is(err, core.ErrNotInitialized) {
		t.Fatalf("migrate before init: %v", err)
	}
}

func TestLibraryDoubleInitRejected(t *testing.T) {
	e := newEnv(t)
	app, err := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Library.Init(core.InitNew, e.src.ME); !errors.Is(err, core.ErrAlreadyInitialized) {
		t.Fatalf("double init: %v", err)
	}
}

func TestLibraryCounterLifecycle(t *testing.T) {
	e := newEnv(t)
	app, _ := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitNew)

	id, v, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("initial effective value = %d", v)
	}
	for want := uint32(1); want <= 3; want++ {
		got, err := app.Library.IncrementCounter(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("increment -> %d, want %d", got, want)
		}
	}
	got, err := app.Library.ReadCounter(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("read = %d", got)
	}
	if app.Library.ActiveCounters() != 1 {
		t.Fatalf("active = %d", app.Library.ActiveCounters())
	}
	if err := app.Library.DestroyCounter(id); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Library.ReadCounter(id); !errors.Is(err, core.ErrSlotInactive) {
		t.Fatalf("read destroyed: %v", err)
	}
}

func TestLibraryCounterSlotValidation(t *testing.T) {
	e := newEnv(t)
	app, _ := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitNew)
	if _, err := app.Library.ReadCounter(-1); !errors.Is(err, core.ErrBadSlot) {
		t.Fatalf("negative slot: %v", err)
	}
	if _, err := app.Library.ReadCounter(core.NumCounters); !errors.Is(err, core.ErrBadSlot) {
		t.Fatalf("out-of-range slot: %v", err)
	}
	if _, err := app.Library.IncrementCounter(5); !errors.Is(err, core.ErrSlotInactive) {
		t.Fatalf("inactive slot: %v", err)
	}
}

func TestLibraryRestoreAcrossRestart(t *testing.T) {
	e := newEnv(t)
	storage := core.NewMemoryStorage()
	img := testAppImage(t, "app")
	app, err := e.src.LaunchApp(img, storage, core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Library.IncrementCounter(id); err != nil {
		t.Fatal(err)
	}
	sealed, err := app.Library.SealMigratable(nil, []byte("persisted secret"))
	if err != nil {
		t.Fatal(err)
	}
	app.Terminate()

	// Restart from persisted state: MSK and counters must carry over.
	app2, err := e.src.LaunchApp(img, storage, core.InitRestore)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := app2.Library.UnsealMigratable(sealed)
	if err != nil {
		t.Fatalf("unseal after restart: %v", err)
	}
	if string(pt) != "persisted secret" {
		t.Fatal("payload mismatch after restart")
	}
	got, err := app2.Library.ReadCounter(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("counter after restart = %d, want 1", got)
	}
}

func TestLibraryRestoreRequiresBlob(t *testing.T) {
	e := newEnv(t)
	if _, err := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitRestore); !errors.Is(err, core.ErrNoBlob) {
		t.Fatalf("restore without blob: %v", err)
	}
}

func TestLibraryRestoreRejectsForeignBlob(t *testing.T) {
	e := newEnv(t)
	// App A persists state; app B (different identity) must not restore it.
	storage := core.NewMemoryStorage()
	if _, err := e.src.LaunchApp(testAppImage(t, "appA"), storage, core.InitNew); err != nil {
		t.Fatal(err)
	}
	if _, err := e.src.LaunchApp(testAppImage(t, "appB"), storage, core.InitRestore); err == nil {
		t.Fatal("foreign enclave restored another enclave's state")
	}
}

func TestLibraryInitMigratedWithoutPendingData(t *testing.T) {
	e := newEnv(t)
	if _, err := e.dst.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitMigrated); !errors.Is(err, core.ErrNoPendingMigration) {
		t.Fatalf("init(migrated) without data: %v", err)
	}
}

func TestLibraryCounterOverflowCheck(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	storage := core.NewMemoryStorage()
	app, _ := e.src.LaunchApp(img, storage, core.InitNew)
	id, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	// Drive the effective value near the top by migrating a huge offset:
	// simulate by incrementing once, then migrating to dst where offset
	// is installed; instead, cheaper: directly exercise overflow via many
	// migrations is impractical, so this test uses the exported behaviour:
	// a fresh counter cannot overflow.
	if _, err := app.Library.IncrementCounter(id); err != nil {
		t.Fatal(err)
	}
	// The overflow path itself is unit-tested indirectly through
	// migration round trips in migration_test.go.
}

// Property: migratable sealing round-trips arbitrary payloads.
func TestLibrarySealProperty(t *testing.T) {
	e := newEnv(t)
	app, _ := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitNew)
	f := func(pt, aad []byte) bool {
		blob, err := app.Library.SealMigratable(aad, pt)
		if err != nil {
			return false
		}
		got, gotAAD, err := app.Library.UnsealMigratable(blob)
		if err != nil {
			return false
		}
		return string(got) == string(pt) && string(gotAAD) == string(aad)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryStorageHistory(t *testing.T) {
	s := core.NewMemoryStorage()
	if _, err := s.Load(); !errors.Is(err, core.ErrNoBlob) {
		t.Fatalf("empty load: %v", err)
	}
	_ = s.Save([]byte("v1"))
	_ = s.Save([]byte("v2"))
	cur, err := s.Load()
	if err != nil || string(cur) != "v2" {
		t.Fatalf("load = %q, %v", cur, err)
	}
	old, ok := s.Snapshot(0)
	if !ok || string(old) != "v1" {
		t.Fatalf("snapshot = %q, %v", old, ok)
	}
	if !s.Rollback(0) {
		t.Fatal("rollback failed")
	}
	cur, _ = s.Load()
	if string(cur) != "v1" {
		t.Fatalf("after rollback load = %q", cur)
	}
	if s.Rollback(99) {
		t.Fatal("rollback out of range succeeded")
	}
	if s.Versions() != 3 {
		t.Fatalf("versions = %d", s.Versions())
	}
}

func TestMigrationDataEncodeDecode(t *testing.T) {
	var d core.MigrationData
	d.CountersActive[3] = true
	d.CounterValues[3] = 42
	d.MSK[0] = 0xAA
	raw, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.DecodeMigrationData(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !back.CountersActive[3] || back.CounterValues[3] != 42 || back.MSK[0] != 0xAA {
		t.Fatal("round trip mismatch")
	}
	if _, err := core.DecodeMigrationData([]byte("{bad")); !errors.Is(err, core.ErrDataFormat) {
		t.Fatalf("bad data: %v", err)
	}
}
