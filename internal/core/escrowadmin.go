package core

import (
	"errors"
	"fmt"

	"repro/internal/pse"
	"repro/internal/seal"
	"repro/internal/sgx"
)

// This file is the operator/agent side of the escrow: garbage collection
// of terminated instances (DecommissionEscrow) and the record transform
// behind cross-datacenter escrow mirroring. Both run in trusted
// management components that legitimately hold rack escrow keys — the
// operator's decommission agent, or the federation's mirror agent
// enclave provisioned with both partner racks' keys during federation
// setup (the same in-process provisioning step that installs group keys
// and Migration Enclave credentials everywhere else in the simulation).

// EscrowAdmin is the operator-facing slice of the rack quorum the
// escrow-management paths need: the escrow store itself plus the
// operator-grade counter destroy and the permanent record tombstone
// (implemented by *pserepl.Group).
type EscrowAdmin interface {
	StateEscrow
	// EscrowTombstone permanently decommissions the record on the quorum
	// (carried through snapshots and reseeds; no later put revives it).
	EscrowTombstone(owner sgx.Measurement, id [16]byte) error
	// AdminDestroy destroys a replicated counter on behalf of the named
	// owner without the owning enclave being present.
	AdminDestroy(owner sgx.Measurement, uuid pse.UUID) (uint32, error)
}

// DecommissionEscrow is the escrow garbage collector: when an
// application instance is terminated for good, its escrow record and
// every replicated counter it still owns — the binding counter and the
// app counters — would otherwise be retained forever, bleeding the
// rack's hard counter budget and the escrow store. The operator's
// decommission destroys them and tombstones the record, so the instance
// can never be resurrected (and a stale replica can never re-propagate
// the record: the tombstone is carried through snapshots and reseeds).
//
// The caller is responsible for the §V-D judgment that the instance is
// really gone (the cloud layer refuses to decommission a live one); the
// destroys themselves are safe against concurrency the same way every
// counter destroy is — a racing persist or recovery that loses the
// binding counter fails closed.
func DecommissionEscrow(admin EscrowAdmin, rack *seal.StateSealer, owner sgx.Measurement, id [16]byte) error {
	ver, bind, blob, err := admin.EscrowGet(owner, id)
	if err != nil {
		return fmt.Errorf("fetch escrow record: %w", err)
	}
	st, _, err := openEscrowRecordRaw(rack, owner, id, ver, bind, blob)
	if err != nil {
		return err
	}
	// A frozen record's counters were already destroyed by the migration
	// freeze; only live-instance records still hold counters.
	if st.Frozen == 0 {
		if _, err := admin.AdminDestroy(owner, bind); err != nil && !errors.Is(err, pse.ErrCounterNotFound) {
			return fmt.Errorf("destroy binding counter: %w", err)
		}
		for i := 0; i < NumCounters; i++ {
			if !st.CountersActive[i] {
				continue
			}
			if _, err := admin.AdminDestroy(owner, st.CounterUUIDs[i]); err != nil && !errors.Is(err, pse.ErrCounterNotFound) {
				return fmt.Errorf("destroy counter slot %d: %w", i, err)
			}
		}
	}
	if err := admin.EscrowTombstone(owner, id); err != nil {
		return fmt.Errorf("tombstone escrow record: %w", err)
	}
	return nil
}

// MirrorView is the mirror-relevant shape of one escrow record: which
// counters the instance holds at the origin rack, and the binding the
// record is rollback-bound to. The mirror reads it to know which shadow
// counters the partner rack must provision and advance.
type MirrorView struct {
	Version uint32
	Bind    pse.UUID
	Frozen  bool
	// Slots lists the active counter slots; UUIDs the origin rack's
	// counter UUID for each (parallel slices).
	Slots []int
	UUIDs []pse.UUID
}

// InspectEscrowRecord authenticates a record against the origin rack's
// escrow key and reports its mirror view.
func InspectEscrowRecord(rack *seal.StateSealer, owner sgx.Measurement, id [16]byte, ver uint32, bind pse.UUID, blob []byte) (*MirrorView, error) {
	st, _, err := openEscrowRecordRaw(rack, owner, id, ver, bind, blob)
	if err != nil {
		return nil, err
	}
	v := &MirrorView{Version: ver, Bind: bind, Frozen: st.Frozen != 0}
	for i := 0; i < NumCounters; i++ {
		if st.CountersActive[i] {
			v.Slots = append(v.Slots, i)
			v.UUIDs = append(v.UUIDs, st.CounterUUIDs[i])
		}
	}
	return v, nil
}

// TransformEscrowForMirror re-targets an escrow record from its origin
// rack to a partner rack in a peer data center: the sealed Table II
// state is rewritten to reference the partner's shadow binding counter
// and shadow app counters (shadow maps slot -> partner UUID), re-sealed
// under the same MSK, and the MSK key box re-wrapped under the partner
// rack's escrow key with the AAD re-bound to the shadow binding. The
// version is unchanged — the shadow binding is advanced to exactly this
// version by the mirror, so the partner-side recovery runs the standard
// win-the-binding-at-the-sealed-version protocol without knowing it is
// operating on a mirrored record.
//
// Frozen (migrated-away) records are transformed too, as advisories: a
// recovery attempt at the partner then fails with ErrFrozen instead of
// a bare lookup miss.
func TransformEscrowForMirror(fromRack, toRack *seal.StateSealer, owner sgx.Measurement, id [16]byte, ver uint32, bind pse.UUID, blob []byte, shadowBind pse.UUID, shadow map[int]pse.UUID) ([]byte, error) {
	st, mskSealer, err := openEscrowRecordRaw(fromRack, owner, id, ver, bind, blob)
	if err != nil {
		return nil, err
	}
	st.BindUUID = shadowBind
	if st.Frozen == 0 {
		for i := 0; i < NumCounters; i++ {
			if !st.CountersActive[i] {
				continue
			}
			su, ok := shadow[i]
			if !ok {
				return nil, fmt.Errorf("core: no shadow counter for active slot %d", i)
			}
			st.CounterUUIDs[i] = su
		}
	}
	raw, err := st.encode()
	if err != nil {
		return nil, err
	}
	sealedState, err := mskSealer.Seal(escrowStateAAD, raw)
	if err != nil {
		return nil, fmt.Errorf("re-seal mirrored state: %w", err)
	}
	keyBox, err := toRack.Wrap(st.MSK[:], escrowKeyAAD(owner, id, ver, shadowBind))
	if err != nil {
		return nil, fmt.Errorf("re-wrap MSK for partner rack: %w", err)
	}
	return encodeEscrowRecord(keyBox, sealedState), nil
}
