//go:build !chaosmut

package core

// faultSkipBindingWin gates the chaos mutation self-test's injected
// fault (see chaosfault_mut.go). In normal builds it is a false
// constant, so the compiler removes every gated branch — the production
// recovery path is byte-for-byte unaffected.
const faultSkipBindingWin = false
