package core

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"repro/internal/attest"
	"repro/internal/obs"
	"repro/internal/sgx"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// Migration Enclave errors.
var (
	ErrUnknownSession = errors.New("core: unknown local session")
	ErrPeerIdentity   = errors.New("core: peer migration enclave has a different identity")
	ErrQuoteBinding   = errors.New("core: quote does not bind the handshake keys")
	ErrUnknownToken   = errors.New("core: unknown migration token")
	ErrBadHandshake   = errors.New("core: unknown or expired attestation session")
	// ErrAlreadyPending reports a delivery refused because the destination
	// already holds an unrestored migration for the same enclave identity.
	// The text doubles as the cross-transport marker for this condition
	// (handler errors travel as strings over TCP).
	ErrAlreadyPending = errors.New("core: migration already pending at destination for this enclave identity")
	// ErrMigrationDone reports a retry/redirect of a migration whose DONE
	// confirmation has already arrived: the state was restored at a
	// destination, so re-sending the stale envelope would fork it.
	ErrMigrationDone = errors.New("core: migration already completed; data must not be re-sent")
	// ErrTransferInFlight reports a retry/redirect refused because another
	// transfer of the same migration is currently running; two concurrent
	// sends of one record could deliver it to two destinations. Retry
	// after the in-flight transfer finishes.
	ErrTransferInFlight = errors.New("core: a transfer of this migration is already in flight")
	// ErrEnvelopeConsumed reports a re-delivery refused because the
	// destination already handed this exact envelope to a restoring
	// library. Whether that restore completed is the source record's
	// (done flag's) knowledge, not the destination's: storing the
	// envelope again could fork a completed restore, so it is refused
	// either way.
	ErrEnvelopeConsumed = errors.New("core: this migration's envelope was already fetched at the destination")
)

// MigrationEnclaveVersion is the ME code version; all machines in a data
// center run the same version, so MRENCLAVE values match.
const MigrationEnclaveVersion = 1

// MigrationEnclaveImage returns the Migration Enclave image. It is
// deliberately identical on every machine: during remote attestation each
// ME checks that its peer measures exactly the same (paper §VI-A).
func MigrationEnclaveImage() *sgx.Image {
	return &sgx.Image{
		Name:            "migration-enclave",
		Version:         MigrationEnclaveVersion,
		Code:            []byte("migration enclave: local attestation, remote attestation, store-and-forward"),
		SignerPublicKey: attest.ArchitecturalSignerKey(),
	}
}

// localConn is the ME-side endpoint of one attested app-enclave channel.
type localConn struct {
	session *attest.LocalSession
}

// outgoingRecord is migration data held at the source ME until the DONE
// confirmation arrives (or the transfer is retried/redirected, §V-D).
type outgoingRecord struct {
	envelope *migrationEnvelope
	dest     transport.Address
	sent     bool // reached destination ME (stored there)
	done     bool // destination library confirmed restore
	inFlight bool // a transfer of this record is currently running
	// trace is the migration's trace context (zero when tracing is off);
	// transfers and retries open their protocol spans under it.
	trace obs.TraceContext
}

// incomingRecord is a stored incoming migration plus the trace context it
// traveled with, so the restoring library joins the originating trace.
// batch marks deliveries that arrived via the batch stream: their DONE
// confirmations are queued and flushed in aggregated batchDone messages
// instead of one network exchange each.
type incomingRecord struct {
	env   *migrationEnvelope
	trace obs.TraceContext
	batch bool
}

// handshakeState is the destination ME's remote-attestation session
// between the offer and the data message.
type handshakeState struct {
	channel    *xcrypto.Channel
	transcript []byte
}

// pendingAck tracks an incoming migration delivered to a local library
// but not yet acknowledged; the ack triggers the DONE to the source
// (queued for an aggregated flush when the delivery was batched).
type pendingAck struct {
	envelope *migrationEnvelope
	trace    obs.TraceContext
	batch    bool
}

// MigrationEnclave is the per-machine migration manager (paper §V-B,
// §VI-A). It runs inside its own enclave in the management VM, locally
// attests application enclaves, and speaks the Fig. 2 protocol with peer
// Migration Enclaves over the untrusted network.
type MigrationEnclave struct {
	enclave *sgx.Enclave
	cred    *attest.Credential
	qe      *attest.QuotingEnclave
	ias     *attest.IAS
	net     transport.Messenger
	addr    transport.Address

	// obs records protocol spans; nil disables recording but trace
	// contexts still propagate through unchanged.
	obs *obs.Observer

	mu       sync.Mutex
	locals   map[string]*localConn
	outgoing map[string]*outgoingRecord // key: hex done-token
	incoming map[sgx.Measurement]*incomingRecord
	// restored holds the done-tokens of envelopes fetched by restoring
	// libraries on this machine. Entries are deliberately retained for
	// the ME's lifetime (like outgoing's done records): pruning one would
	// reopen the window where a late re-delivery of that envelope forks
	// the restored enclave.
	restored   map[string]bool // key: hex done-token
	handshakes map[string]*handshakeState
	acks       map[string]*pendingAck // key: local session ID

	// epoch is this ME instance's trust epoch, minted at construction.
	// Session-resume tickets are MAC-bound to the destination's epoch; a
	// restarted ME (a new instance) mints a new epoch, so every
	// pre-restart ticket is refused and the source falls back to a full
	// handshake (see session.go).
	epoch []byte
	// sessions caches resumable attested sessions by destination address
	// (source role); accepted caches them by hex session id (dest role).
	// accepted and rxBatches are populated by untrusted peers, so both
	// are capped (see storeAcceptedLocked / storeRxBatchLocked);
	// admitSeq stamps their entries for least-recently-used eviction.
	sessions  map[string]*resumableSession
	accepted  map[string]*resumableSession
	rxBatches map[string]*batchRecvState // key: hex batch id
	admitSeq  uint64
	// doneQueue accumulates DONE tokens per source-ME address for
	// aggregated batchDone flushes.
	doneQueue map[string][][]byte
}

// NewMigrationEnclave loads the ME on the machine, registers it on the
// network, and equips it with the provider credential provisioned during
// the secure setup phase.
func NewMigrationEnclave(
	machine *sgx.Machine,
	qe *attest.QuotingEnclave,
	ias *attest.IAS,
	cred *attest.Credential,
	net transport.Messenger,
	addr transport.Address,
) (*MigrationEnclave, error) {
	e, err := machine.Load(MigrationEnclaveImage())
	if err != nil {
		return nil, fmt.Errorf("load migration enclave: %w", err)
	}
	epoch, err := xcrypto.RandomBytes(16)
	if err != nil {
		return nil, fmt.Errorf("mint me epoch: %w", err)
	}
	me := &MigrationEnclave{
		enclave:    e,
		cred:       cred,
		qe:         qe,
		ias:        ias,
		net:        net,
		addr:       addr,
		locals:     make(map[string]*localConn),
		outgoing:   make(map[string]*outgoingRecord),
		incoming:   make(map[sgx.Measurement]*incomingRecord),
		restored:   make(map[string]bool),
		handshakes: make(map[string]*handshakeState),
		acks:       make(map[string]*pendingAck),
		epoch:      epoch,
		sessions:   make(map[string]*resumableSession),
		accepted:   make(map[string]*resumableSession),
		rxBatches:  make(map[string]*batchRecvState),
		doneQueue:  make(map[string][][]byte),
	}
	if err := net.Register(addr, me.handleNetwork); err != nil {
		return nil, fmt.Errorf("register migration enclave: %w", err)
	}
	return me, nil
}

// Address returns the ME's network address.
func (me *MigrationEnclave) Address() transport.Address { return me.addr }

// SetObserver installs the ME's observability sink. Call before traffic
// starts (the cloud layer wires it at machine provisioning).
func (me *MigrationEnclave) SetObserver(o *obs.Observer) {
	me.mu.Lock()
	me.obs = o
	me.mu.Unlock()
}

// observer returns the current sink (nil-safe to use directly).
func (me *MigrationEnclave) observer() *obs.Observer {
	me.mu.Lock()
	defer me.mu.Unlock()
	return me.obs
}

// Enclave exposes the ME's own enclave (tests and the management VM).
func (me *MigrationEnclave) Enclave() *sgx.Enclave { return me.enclave }

// ConnectLocal performs mutual local attestation with an application
// enclave on the same machine and opens the long-lived channel. It
// returns the application-side session and the session handle used for
// subsequent LocalCall invocations. The ME records the peer's MRENCLAVE
// for migration matching (§VI-A).
func (me *MigrationEnclave) ConnectLocal(app *sgx.Enclave) (*attest.LocalSession, string, error) {
	appSess, meSess, err := attest.LocalAttest(app, me.enclave)
	if err != nil {
		return nil, "", err
	}
	idBytes, err := xcrypto.RandomBytes(8)
	if err != nil {
		return nil, "", fmt.Errorf("session id: %w", err)
	}
	id := hex.EncodeToString(idBytes)
	me.mu.Lock()
	me.locals[id] = &localConn{session: meSess}
	me.mu.Unlock()
	return appSess, id, nil
}

// LocalCall delivers one sealed request from a locally attested library
// and returns the sealed reply. The wire bytes cross the untrusted OS.
func (me *MigrationEnclave) LocalCall(sessionID string, wire []byte) ([]byte, error) {
	if err := me.enclave.ECall(); err != nil {
		return nil, err
	}
	me.mu.Lock()
	conn, ok := me.locals[sessionID]
	me.mu.Unlock()
	if !ok {
		return nil, ErrUnknownSession
	}
	raw, err := conn.session.Channel.Open(wire)
	if err != nil {
		return nil, fmt.Errorf("open local request: %w", err)
	}
	req, err := decodeLocalRequest(raw)
	if err != nil {
		return nil, err
	}
	resp := me.dispatchLocal(sessionID, conn, req)
	respRaw, err := encodeLocalResponse(resp)
	if err != nil {
		return nil, err
	}
	sealed, err := conn.session.Channel.Seal(respRaw)
	if err != nil {
		return nil, fmt.Errorf("seal local reply: %w", err)
	}
	return sealed, nil
}

// dispatchLocal routes one library request.
func (me *MigrationEnclave) dispatchLocal(sessionID string, conn *localConn, req *localRequest) *localResponse {
	switch req.Op {
	case opMigrateOut:
		return me.handleMigrateOut(conn, req)
	case opMigrateOutHold:
		return me.handleMigrateOutHold(conn, req)
	case opFetchIncoming:
		return me.handleFetchIncoming(sessionID, conn)
	case opAckRestored:
		return me.handleAckRestored(sessionID, req)
	case opCheckDone:
		return me.handleCheckDone(req)
	default:
		return &localResponse{Status: "error", Detail: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// handleMigrateOut stores the outgoing migration and attempts transfer.
func (me *MigrationEnclave) handleMigrateOut(conn *localConn, req *localRequest) *localResponse {
	data, err := DecodeMigrationData(req.Body)
	if err != nil {
		return &localResponse{Status: "error", Detail: err.Error()}
	}
	token, err := xcrypto.RandomBytes(16)
	if err != nil {
		return &localResponse{Status: "error", Detail: err.Error()}
	}
	env := &migrationEnvelope{
		Data: data,
		// The source ME appends the attested MRENCLAVE of the sending
		// library's enclave; the destination ME will only deliver to an
		// enclave with exactly this identity.
		MREnclave: conn.session.PeerMREnclave,
		SourceME:  string(me.addr),
		DoneToken: token,
	}
	sp, tc := me.observer().StartSpan("me.migrate-out", obs.UnmarshalTrace(req.Trace))
	if sp != nil {
		sp.Site = string(me.addr)
		defer sp.End()
	}
	rec := &outgoingRecord{envelope: env, dest: transport.Address(req.Dest), inFlight: true, trace: tc}
	key := hex.EncodeToString(token)
	me.mu.Lock()
	me.outgoing[key] = rec
	me.mu.Unlock()

	err = me.transfer(rec)
	me.mu.Lock()
	rec.inFlight = false
	if err == nil {
		rec.sent = true
	}
	me.mu.Unlock()
	if err != nil {
		// Keep the data for retry (§V-D) and tell the library.
		return &localResponse{Status: statusPending, Detail: err.Error(), Token: token}
	}
	return &localResponse{Status: statusSent, Token: token}
}

// handleMigrateOutHold stores the outgoing migration WITHOUT attempting
// a transfer: the batch pipeline will stream the held envelope itself
// (BatchSender.Add), so the enclave's freeze window starts only just
// before its own chunks go out, independent of batch size.
func (me *MigrationEnclave) handleMigrateOutHold(conn *localConn, req *localRequest) *localResponse {
	data, err := DecodeMigrationData(req.Body)
	if err != nil {
		return &localResponse{Status: "error", Detail: err.Error()}
	}
	token, err := xcrypto.RandomBytes(16)
	if err != nil {
		return &localResponse{Status: "error", Detail: err.Error()}
	}
	env := &migrationEnvelope{
		Data:      data,
		MREnclave: conn.session.PeerMREnclave,
		SourceME:  string(me.addr),
		DoneToken: token,
	}
	sp, tc := me.observer().StartSpan("me.migrate-out", obs.UnmarshalTrace(req.Trace))
	if sp != nil {
		sp.Site = string(me.addr)
		defer sp.End()
	}
	rec := &outgoingRecord{envelope: env, dest: transport.Address(req.Dest), trace: tc}
	me.mu.Lock()
	me.outgoing[hex.EncodeToString(token)] = rec
	me.mu.Unlock()
	return &localResponse{Status: statusHeld, Token: token}
}

// handleFetchIncoming hands stored migration data to a local library
// whose attested identity matches, deleting the stored copy so it can be
// delivered exactly once (fork prevention, R3).
func (me *MigrationEnclave) handleFetchIncoming(sessionID string, conn *localConn) *localResponse {
	me.mu.Lock()
	defer me.mu.Unlock()
	inc, ok := me.incoming[conn.session.PeerMREnclave]
	if !ok {
		return &localResponse{Status: statusNone}
	}
	env := inc.env
	delete(me.incoming, conn.session.PeerMREnclave)
	// Tombstone the token atomically with the delete: from this moment
	// the envelope is being restored, and a re-delivery of the same
	// migration (a retry racing the restore) must never be stored again —
	// it would fork the restored enclave.
	me.restored[hex.EncodeToString(env.DoneToken)] = true
	me.acks[sessionID] = &pendingAck{envelope: env, trace: inc.trace, batch: inc.batch}
	raw, err := env.encode()
	if err != nil {
		return &localResponse{Status: "error", Detail: err.Error()}
	}
	// Hand the migration's trace context to the restoring library so its
	// resume spans join the originating trace.
	return &localResponse{Status: statusData, Body: raw, Trace: inc.trace.Marshal()}
}

// handleAckRestored sends the DONE confirmation back to the source ME.
func (me *MigrationEnclave) handleAckRestored(sessionID string, req *localRequest) *localResponse {
	me.mu.Lock()
	ack, ok := me.acks[sessionID]
	if ok {
		delete(me.acks, sessionID)
	}
	me.mu.Unlock()
	if !ok {
		return &localResponse{Status: "error", Detail: "no delivery awaiting acknowledgement"}
	}
	// Prefer the restoring library's span context (it deepened the trace
	// during restore); fall back to the delivery's own context.
	tc := obs.UnmarshalTrace(req.Trace)
	if !tc.Valid() {
		tc = ack.trace
	}
	sp, tc := me.observer().StartSpan("me.done", tc)
	if sp != nil {
		sp.Site = string(me.addr)
		defer sp.End()
	}
	if ack.batch {
		// Batched delivery: queue the DONE for an aggregated flush instead
		// of one network exchange per restore. The source keeps its copy
		// until the flush lands — the same safe failure mode as a lost
		// single DONE.
		source := ack.envelope.SourceME
		me.mu.Lock()
		me.doneQueue[source] = append(me.doneQueue[source], ack.envelope.DoneToken)
		flush := len(me.doneQueue[source]) >= doneFlushThreshold
		me.mu.Unlock()
		if flush {
			if err := me.FlushDones(transport.Address(source)); err != nil {
				return &localResponse{Status: statusOK, Detail: "restore complete; DONE flush failed: " + err.Error()}
			}
		}
		return &localResponse{Status: statusOK, Detail: "restore complete; confirmation queued"}
	}
	payload, err := encodeDoneMessage(&doneMessage{Token: ack.envelope.DoneToken})
	if err != nil {
		return &localResponse{Status: "error", Detail: err.Error()}
	}
	if _, err := me.net.Send(me.addr, transport.Address(ack.envelope.SourceME), kindDone, obs.Inject(tc, payload)); err != nil {
		// The restore itself succeeded; only the confirmation was lost.
		// The source will keep its copy — a safe failure mode.
		return &localResponse{Status: statusOK, Detail: "restore complete; DONE not delivered: " + err.Error()}
	}
	return &localResponse{Status: statusOK}
}

// handleCheckDone reports whether the DONE confirmation arrived.
func (me *MigrationEnclave) handleCheckDone(req *localRequest) *localResponse {
	me.mu.Lock()
	defer me.mu.Unlock()
	rec, ok := me.outgoing[hex.EncodeToString(req.Token)]
	if !ok {
		// Unknown token: either never existed or already completed and
		// cleaned up. Completed tokens are kept with done=true, so this
		// is an error.
		return &localResponse{Status: "error", Detail: ErrUnknownToken.Error()}
	}
	if rec.done {
		return &localResponse{Status: statusDone}
	}
	return &localResponse{Status: statusWaiting}
}

// doneFlushThreshold triggers an automatic FlushDones once this many
// confirmations are queued for one source ME.
const doneFlushThreshold = 64

// FlushDones sends every queued DONE confirmation for the given source
// ME in one aggregated batchDone exchange. On failure the tokens are
// re-queued (the source keeps its copies; retries converge).
func (me *MigrationEnclave) FlushDones(source transport.Address) error {
	me.mu.Lock()
	tokens := me.doneQueue[string(source)]
	delete(me.doneQueue, string(source))
	me.mu.Unlock()
	if len(tokens) == 0 {
		return nil
	}
	payload, err := encodeBatchDoneMessage(&batchDoneMessage{Tokens: tokens})
	if err == nil {
		_, err = me.net.Send(me.addr, source, kindBatchDone, payload)
	}
	if err != nil {
		me.mu.Lock()
		me.doneQueue[string(source)] = append(tokens, me.doneQueue[string(source)]...)
		me.mu.Unlock()
		return fmt.Errorf("flush batched DONEs: %w", err)
	}
	return nil
}

// QueuedDones reports how many DONE confirmations await flushing to the
// given source ME (tests and operators).
func (me *MigrationEnclave) QueuedDones(source transport.Address) int {
	me.mu.Lock()
	defer me.mu.Unlock()
	return len(me.doneQueue[string(source)])
}

// PendingOutgoing returns the number of outgoing migrations not yet
// confirmed by a DONE from the destination.
func (me *MigrationEnclave) PendingOutgoing() int {
	me.mu.Lock()
	defer me.mu.Unlock()
	n := 0
	for _, rec := range me.outgoing {
		if !rec.done {
			n++
		}
	}
	return n
}

// PendingIncoming returns the number of stored incoming migrations
// waiting for their destination enclave.
func (me *MigrationEnclave) PendingIncoming() int {
	me.mu.Lock()
	defer me.mu.Unlock()
	return len(me.incoming)
}

// OutstandingTokens returns the done-tokens of outgoing migrations that
// have not yet been confirmed, for retry/redirect management by the
// machine operator.
func (me *MigrationEnclave) OutstandingTokens() [][]byte {
	me.mu.Lock()
	defer me.mu.Unlock()
	var tokens [][]byte
	for _, rec := range me.outgoing {
		if !rec.done && rec.envelope != nil {
			tokens = append(tokens, append([]byte(nil), rec.envelope.DoneToken...))
		}
	}
	return tokens
}

// OutgoingStatus reports the state of one outgoing migration: where it
// was last targeted, whether it reached that destination ME, and whether
// the destination library confirmed its restore. Operators use it to
// decide whether a parked migration can safely be redirected (only when
// the data never arrived, or the destination that holds it is gone).
func (me *MigrationEnclave) OutgoingStatus(token []byte) (dest transport.Address, sent, done bool, err error) {
	me.mu.Lock()
	defer me.mu.Unlock()
	rec, ok := me.outgoing[hex.EncodeToString(token)]
	if !ok {
		return "", false, false, ErrUnknownToken
	}
	return rec.dest, rec.sent, rec.done, nil
}

// RetryOutgoing retries the transfer of every unsent outgoing migration
// (skipping any whose transfer is already in flight), returning the
// first error encountered (nil if all succeeded).
func (me *MigrationEnclave) RetryOutgoing() error {
	me.mu.Lock()
	var retry []*outgoingRecord
	for _, rec := range me.outgoing {
		if !rec.sent && !rec.done && !rec.inFlight {
			rec.inFlight = true
			retry = append(retry, rec)
		}
	}
	me.mu.Unlock()
	var firstErr error
	for _, rec := range retry {
		err := me.transfer(rec)
		me.mu.Lock()
		rec.inFlight = false
		if err == nil {
			rec.sent = true
		}
		me.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Redirect re-targets a pending outgoing migration to a different
// destination machine (§V-D: "another destination machine is selected").
// A migration whose DONE confirmation already arrived is refused with
// ErrMigrationDone: its state lives at a destination, and re-sending the
// stale envelope would fork the enclave. Re-targeting a migration that
// was delivered but not yet restored (sent, no DONE) is the operator's
// §V-D judgment call: it is only fork-safe when the previous destination
// machine is gone, which the source ME cannot verify — callers must
// check (as internal/fleet does) before redirecting away from a live
// destination.
func (me *MigrationEnclave) Redirect(token []byte, newDest transport.Address) error {
	me.mu.Lock()
	rec, ok := me.outgoing[hex.EncodeToString(token)]
	switch {
	case !ok:
		me.mu.Unlock()
		return ErrUnknownToken
	case rec.done:
		me.mu.Unlock()
		return ErrMigrationDone
	case rec.inFlight:
		// Another transfer of this record is running; a second concurrent
		// send could deliver the envelope to two destinations.
		me.mu.Unlock()
		return ErrTransferInFlight
	}
	rec.inFlight = true
	rec.dest = newDest
	rec.sent = false
	me.mu.Unlock()

	err := me.transfer(rec)
	me.mu.Lock()
	rec.inFlight = false
	if err == nil {
		rec.sent = true
	}
	me.mu.Unlock()
	return err
}
