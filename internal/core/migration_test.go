package core_test

import (
	"errors"
	"net"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/transport"
)

// migrateApp runs the full Fig. 2 protocol: StartMigration on the source,
// launch on the destination with InitMigrated, and returns the new app.
func migrateApp(t *testing.T, e *env, app *cloud.App, dst *cloud.Machine) *cloud.App {
	t.Helper()
	if err := app.Library.StartMigration(dst.MEAddress()); err != nil {
		t.Fatalf("start migration: %v", err)
	}
	app.Terminate()
	dstApp, err := dst.LaunchApp(app.Image(), core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatalf("launch destination app: %v", err)
	}
	return dstApp
}

func TestEndToEndMigrationPreservesState(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, err := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	// Build up persistent state: two counters and sealed data.
	id0, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	id1, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := app.Library.IncrementCounter(id0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := app.Library.IncrementCounter(id1); err != nil {
		t.Fatal(err)
	}
	sealed, err := app.Library.SealMigratable([]byte("label"), []byte("application state"))
	if err != nil {
		t.Fatal(err)
	}

	dstApp := migrateApp(t, e, app, e.dst)

	// Sealed data decrypts on the destination machine (roll-back-safe
	// migratable sealing, R1/R4).
	pt, aad, err := dstApp.Library.UnsealMigratable(sealed)
	if err != nil {
		t.Fatalf("unseal after migration: %v", err)
	}
	if string(pt) != "application state" || string(aad) != "label" {
		t.Fatal("sealed payload mismatch after migration")
	}
	// Counter effective values continue where the source left off (R4).
	v0, err := dstApp.Library.ReadCounter(id0)
	if err != nil {
		t.Fatal(err)
	}
	if v0 != 5 {
		t.Fatalf("counter0 after migration = %d, want 5", v0)
	}
	v1, err := dstApp.Library.ReadCounter(id1)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 {
		t.Fatalf("counter1 after migration = %d, want 1", v1)
	}
	// And they keep counting monotonically.
	if v, err := dstApp.Library.IncrementCounter(id0); err != nil || v != 6 {
		t.Fatalf("increment after migration = %d, %v", v, err)
	}
}

func TestMigrationDoneConfirmation(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if _, _, err := app.Library.CreateCounter(); err != nil {
		t.Fatal(err)
	}
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	// Before the destination restores, the source still holds the data.
	done, err := app.Library.MigrationComplete()
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("migration reported done before destination restore")
	}
	if e.src.ME.PendingOutgoing() != 1 {
		t.Fatalf("pending outgoing = %d", e.src.ME.PendingOutgoing())
	}
	if e.dst.ME.PendingIncoming() != 1 {
		t.Fatalf("pending incoming = %d", e.dst.ME.PendingIncoming())
	}
	// Destination restores; DONE flows back; source deletes its copy.
	if _, err := e.dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated); err != nil {
		t.Fatal(err)
	}
	done, err = app.Library.MigrationComplete()
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("DONE confirmation not received")
	}
	if e.src.ME.PendingOutgoing() != 0 {
		t.Fatal("source kept pending record after DONE")
	}
	if e.dst.ME.PendingIncoming() != 0 {
		t.Fatal("destination kept data after delivery")
	}
}

func TestSourceFrozenAfterMigration(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	storage := core.NewMemoryStorage()
	app, _ := e.src.LaunchApp(img, storage, core.InitNew)
	id, _, _ := app.Library.CreateCounter()
	_ = id
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	if !app.Library.Frozen() {
		t.Fatal("library not frozen after migration")
	}
	// Every operation refuses.
	if _, err := app.Library.SealMigratable(nil, []byte("x")); !errors.Is(err, core.ErrFrozen) {
		t.Fatalf("seal after migration: %v", err)
	}
	if _, err := app.Library.IncrementCounter(id); !errors.Is(err, core.ErrFrozen) {
		t.Fatalf("increment after migration: %v", err)
	}
	if err := app.Library.StartMigration(e.dst.MEAddress()); !errors.Is(err, core.ErrFrozen) {
		t.Fatalf("second migration: %v", err)
	}
	// Restarting from the (frozen) persisted blob refuses to operate.
	app.Terminate()
	if _, err := e.src.LaunchApp(img, storage, core.InitRestore); !errors.Is(err, core.ErrFrozen) {
		t.Fatalf("restore of frozen state: %v", err)
	}
}

func TestMigrationToUnreachableDestinationStaysPending(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if _, _, err := app.Library.CreateCounter(); err != nil {
		t.Fatal(err)
	}
	err := app.Library.StartMigration("no-such-machine")
	if !errors.Is(err, core.ErrMigrationPending) {
		t.Fatalf("got %v, want ErrMigrationPending", err)
	}
	// Data is held at the source ME; the library is frozen regardless.
	if e.src.ME.PendingOutgoing() != 1 {
		t.Fatal("source ME lost the pending migration")
	}
	if !app.Library.Frozen() {
		t.Fatal("library must freeze before transfer is attempted")
	}
	// Retry still fails (machine does not exist)...
	if err := e.src.ME.RetryOutgoing(); err == nil {
		t.Fatal("retry to unreachable machine succeeded")
	}
}

func TestMigrationRedirectAfterFailure(t *testing.T) {
	e := newEnv(t)
	third, err := e.dc.AddMachine("machine-third")
	if err != nil {
		t.Fatal(err)
	}
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	id, _, _ := app.Library.CreateCounter()
	for i := 0; i < 3; i++ {
		if _, err := app.Library.IncrementCounter(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Library.StartMigration("no-such-machine"); !errors.Is(err, core.ErrMigrationPending) {
		t.Fatalf("got %v", err)
	}
	// §V-D: "until the error is resolved or another destination machine
	// is selected". Select another destination.
	tokens := outstandingTokens(t, e.src.ME)
	if len(tokens) != 1 {
		t.Fatalf("tokens = %d", len(tokens))
	}
	if err := e.src.ME.Redirect(tokens[0], third.MEAddress()); err != nil {
		t.Fatalf("redirect: %v", err)
	}
	dstApp, err := third.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatal(err)
	}
	v, err := dstApp.Library.ReadCounter(id)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("redirected counter = %d, want 3", v)
	}
}

func TestMigrationDataDeliveredExactlyOnce(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	_, _, _ = app.Library.CreateCounter()
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated); err != nil {
		t.Fatal(err)
	}
	// A second instance of the same enclave cannot fetch the data again.
	if _, err := e.dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated); !errors.Is(err, core.ErrNoPendingMigration) {
		t.Fatalf("second delivery: %v", err)
	}
}

func TestMigrationDeliveryRequiresSameMRENCLAVE(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	_, _, _ = app.Library.CreateCounter()
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	// A DIFFERENT enclave (attacker-controlled) asks for the data.
	evil := testAppImage(t, "evil-lookalike")
	if _, err := e.dst.LaunchApp(evil, core.NewMemoryStorage(), core.InitMigrated); !errors.Is(err, core.ErrNoPendingMigration) {
		t.Fatalf("foreign enclave received migration data: %v", err)
	}
	// The data is still waiting for the right identity.
	if e.dst.ME.PendingIncoming() != 1 {
		t.Fatal("migration data lost")
	}
	if _, err := e.dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated); err != nil {
		t.Fatalf("legitimate enclave blocked: %v", err)
	}
}

func TestMigrationAcrossThreeMachines(t *testing.T) {
	// Migrate src -> dst -> third -> back to src, verifying counters
	// accumulate monotonically across hops (including back-migration,
	// which the Gu et al. persisted-flag design cannot support).
	e := newEnv(t)
	third, err := e.dc.AddMachine("machine-third")
	if err != nil {
		t.Fatal(err)
	}
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	id, _, _ := app.Library.CreateCounter()

	hops := []*cloud.Machine{e.dst, third, e.src}
	want := uint32(0)
	for hopIdx, hop := range hops {
		if _, err := app.Library.IncrementCounter(id); err != nil {
			t.Fatalf("hop %d increment: %v", hopIdx, err)
		}
		want++
		app = migrateApp(t, e, app, hop)
		got, err := app.Library.ReadCounter(id)
		if err != nil {
			t.Fatalf("hop %d read: %v", hopIdx, err)
		}
		if got != want {
			t.Fatalf("hop %d counter = %d, want %d", hopIdx, got, want)
		}
	}
}

func TestMigrationOfManyCounters(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	const n = 32
	ids := make([]int, n)
	for i := range ids {
		id, _, err := app.Library.CreateCounter()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		for j := 0; j <= i; j++ {
			if _, err := app.Library.IncrementCounter(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	dstApp := migrateApp(t, e, app, e.dst)
	for i, id := range ids {
		got, err := dstApp.Library.ReadCounter(id)
		if err != nil {
			t.Fatalf("counter %d: %v", i, err)
		}
		if got != uint32(i+1) {
			t.Fatalf("counter %d = %d, want %d", i, got, i+1)
		}
	}
	if dstApp.Library.ActiveCounters() != n {
		t.Fatalf("active = %d", dstApp.Library.ActiveCounters())
	}
}

// outstandingTokens digs pending tokens out of the source ME via its
// exported surface: we reconstruct them from MigrationComplete's token,
// so this helper instead drives Redirect through the library's token.
func outstandingTokens(t *testing.T, me *core.MigrationEnclave) [][]byte {
	t.Helper()
	return me.OutstandingTokens()
}

func TestHardwareCountersFreedOnSource(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	_, _, _ = app.Library.CreateCounter()
	_, _, _ = app.Library.CreateCounter()
	owner := app.Enclave.MREnclave()
	if e.src.Counters.Count(owner) != 2 {
		t.Fatalf("hw counters = %d", e.src.Counters.Count(owner))
	}
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	// All hardware counters destroyed before data export (R3).
	if e.src.Counters.Count(owner) != 0 {
		t.Fatalf("hw counters after migration = %d, want 0", e.src.Counters.Count(owner))
	}
}

// freeTCPAddr reserves an ephemeral port and returns its address.
func freeTCPAddr(t *testing.T) transport.Address {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return transport.Address(addr)
}

func TestMigrationOverTCPTransport(t *testing.T) {
	// The same protocol, but between MEs talking over real TCP sockets.
	lat := sim.NewInstantLatency()
	tcp := transport.NewTCPTransport()
	defer tcp.Close()

	dc, err := cloud.NewDataCenterWithNetwork("dc-tcp", lat, tcp)
	if err != nil {
		t.Fatal(err)
	}
	src, err := dc.AddMachineAt("tcp-src", freeTCPAddr(t))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dc.AddMachineAt("tcp-dst", freeTCPAddr(t))
	if err != nil {
		t.Fatal(err)
	}
	img := testAppImage(t, "app")
	app, err := src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Library.IncrementCounter(id); err != nil {
		t.Fatal(err)
	}
	if err := app.Library.StartMigration(dst.MEAddress()); err != nil {
		t.Fatalf("migrate over tcp: %v", err)
	}
	dstApp, err := dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := dstApp.Library.ReadCounter(id); err != nil || v != 1 {
		t.Fatalf("counter over tcp = %d, %v", v, err)
	}
}
