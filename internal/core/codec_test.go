package core

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pse"
	"repro/internal/sgx"
)

// maxFieldLen keeps generated variable-length fields near the decoder's
// interesting boundaries without making the test slow.
const maxFieldLen = 1 << 12

func TestLocalRequestRoundTrip(t *testing.T) {
	cases := []localRequest{
		{},
		{Op: opMigrateOut, Dest: "machine-b/me", Body: []byte{1, 2, 3}, Token: []byte{9}},
		{Op: strings.Repeat("o", maxFieldLen), Dest: strings.Repeat("d", maxFieldLen),
			Body: bytes.Repeat([]byte{0xAB}, maxFieldLen), Token: bytes.Repeat([]byte{0xCD}, maxFieldLen)},
	}
	for i, in := range cases {
		raw, err := encodeLocalRequest(&in)
		if err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		out, err := decodeLocalRequest(raw)
		if err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
		if !reflect.DeepEqual(&in, out) {
			t.Fatalf("case %d mismatch:\n in=%+v\nout=%+v", i, in, *out)
		}
	}
}

func TestLocalRequestRoundTripProperty(t *testing.T) {
	f := func(op, dest string, body, token []byte) bool {
		in := localRequest{Op: op, Dest: dest, Body: body, Token: token}
		raw, err := encodeLocalRequest(&in)
		if err != nil {
			return false
		}
		out, err := decodeLocalRequest(raw)
		if err != nil {
			return false
		}
		return in.Op == out.Op && in.Dest == out.Dest &&
			bytes.Equal(in.Body, out.Body) && bytes.Equal(in.Token, out.Token)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalResponseRoundTripProperty(t *testing.T) {
	f := func(status, detail string, body, token []byte) bool {
		in := localResponse{Status: status, Detail: detail, Body: body, Token: token}
		raw, err := encodeLocalResponse(&in)
		if err != nil {
			return false
		}
		out, err := decodeLocalResponse(raw)
		if err != nil {
			return false
		}
		return in.Status == out.Status && in.Detail == out.Detail &&
			bytes.Equal(in.Body, out.Body) && bytes.Equal(in.Token, out.Token)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// fullMigrationData builds the boundary case: all 256 counters active
// with extreme values.
func fullMigrationData() *MigrationData {
	var d MigrationData
	for i := range d.CountersActive {
		d.CountersActive[i] = true
		d.CounterValues[i] = math.MaxUint32 - uint32(i)
	}
	for i := range d.MSK {
		d.MSK[i] = byte(0xF0 | i)
	}
	return &d
}

func TestMigrationDataRoundTrip(t *testing.T) {
	cases := []*MigrationData{
		{}, // empty: no counters, zero MSK
		fullMigrationData(),
	}
	// Sparse pattern.
	sparse := &MigrationData{}
	sparse.CountersActive[0] = true
	sparse.CounterValues[0] = 1
	sparse.CountersActive[NumCounters-1] = true
	sparse.CounterValues[NumCounters-1] = math.MaxUint32
	cases = append(cases, sparse)

	for i, in := range cases {
		raw, err := in.Encode()
		if err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		if len(raw) != migrationDataSize {
			t.Fatalf("case %d: encoded %d bytes, want fixed %d", i, len(raw), migrationDataSize)
		}
		out, err := DecodeMigrationData(raw)
		if err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
		if *in != *out {
			t.Fatalf("case %d mismatch", i)
		}
	}
}

func TestLibraryStateRoundTrip(t *testing.T) {
	full := &libraryState{Frozen: 1}
	for i := 0; i < NumCounters; i++ {
		full.CountersActive[i] = i%3 != 0
		full.CounterUUIDs[i] = pse.UUID{ID: uint32(i) * 7}
		for j := range full.CounterUUIDs[i].Nonce {
			full.CounterUUIDs[i].Nonce[j] = byte(i + j)
		}
		full.CounterOffsets[i] = math.MaxUint32 - uint32(i)
	}
	for i := range full.MSK {
		full.MSK[i] = byte(i)
	}
	for i, in := range []*libraryState{{}, full} {
		raw, err := in.encode()
		if err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		if len(raw) != libraryStateSize {
			t.Fatalf("case %d: encoded %d bytes, want fixed %d", i, len(raw), libraryStateSize)
		}
		out, err := decodeLibraryState(raw)
		if err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
		if *in != *out {
			t.Fatalf("case %d mismatch", i)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	var mr sgx.Measurement
	for i := range mr {
		mr[i] = byte(255 - i)
	}
	cases := []*migrationEnvelope{
		{Data: &MigrationData{}},
		{Data: fullMigrationData(), MREnclave: mr,
			SourceME: strings.Repeat("src", 1000), DoneToken: bytes.Repeat([]byte{7}, maxFieldLen)},
	}
	for i, in := range cases {
		raw, err := in.encode()
		if err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		out, err := decodeEnvelope(raw)
		if err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
		if *in.Data != *out.Data || in.MREnclave != out.MREnclave ||
			in.SourceME != out.SourceME || !bytes.Equal(in.DoneToken, out.DoneToken) {
			t.Fatalf("case %d mismatch", i)
		}
	}
	// An envelope without data must refuse to encode.
	if _, err := (&migrationEnvelope{}).encode(); !errors.Is(err, ErrDataFormat) {
		t.Fatalf("nil-data envelope encoded: %v", err)
	}
}

func TestProtocolMessageRoundTrips(t *testing.T) {
	quote := &wireQuote{
		Data:      bytes.Repeat([]byte{1}, 64),
		Cert:      []byte("cert-bytes"),
		Signature: []byte("sig-bytes"),
	}
	for i := range quote.MREnclave {
		quote.MREnclave[i] = byte(i)
		quote.MRSigner[i] = byte(i * 2)
	}

	offer := &offerMessage{Quote: quote, DHPub: []byte("dh-a")}
	rawOffer, err := encodeOffer(offer)
	if err != nil {
		t.Fatal(err)
	}
	gotOffer, err := decodeOffer(rawOffer)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(offer, gotOffer) {
		t.Fatalf("offer mismatch:\n in=%+v\nout=%+v", offer, gotOffer)
	}

	reply := &offerReply{SessionID: "s1", Quote: quote, DHPub: []byte("dh-b"),
		Cert: []byte("c"), Sig: []byte("s")}
	rawReply, err := encodeOfferReply(reply)
	if err != nil {
		t.Fatal(err)
	}
	gotReply, err := decodeOfferReply(rawReply)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reply, gotReply) {
		t.Fatalf("offer reply mismatch")
	}

	data := &dataMessage{SessionID: "s2", Cert: []byte("c2"), Sig: []byte("s2"),
		Sealed: bytes.Repeat([]byte{0xEE}, maxFieldLen)}
	rawData, err := encodeDataMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	gotData, err := decodeDataMessage(rawData)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, gotData) {
		t.Fatalf("data message mismatch")
	}

	done := &doneMessage{Token: []byte("tok")}
	rawDone, err := encodeDoneMessage(done)
	if err != nil {
		t.Fatal(err)
	}
	gotDone, err := decodeDoneMessage(rawDone)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(done, gotDone) {
		t.Fatalf("done message mismatch")
	}
}

// TestDecodersRejectWrongTagAndVersion pins the versioned-header behavior:
// a value of one type never decodes as another, and a bumped format
// version is rejected cleanly.
func TestDecodersRejectWrongTagAndVersion(t *testing.T) {
	raw, err := encodeLocalRequest(&localRequest{Op: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeLocalResponse(raw); !errors.Is(err, ErrDataFormat) {
		t.Fatalf("cross-type decode: %v", err)
	}
	bumped := append([]byte(nil), raw...)
	bumped[1] = wireVersion + 1
	if _, err := decodeLocalRequest(bumped); !errors.Is(err, ErrDataFormat) {
		t.Fatalf("future version accepted: %v", err)
	}
	if _, err := decodeLocalRequest(nil); !errors.Is(err, ErrDataFormat) {
		t.Fatalf("empty input: %v", err)
	}
	// Trailing bytes are rejected, not ignored.
	if _, err := decodeLocalRequest(append(append([]byte(nil), raw...), 0)); !errors.Is(err, ErrDataFormat) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
	// Truncations at every length are rejected without panicking.
	env, err := (&migrationEnvelope{Data: fullMigrationData(), SourceME: "s", DoneToken: []byte("t")}).encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(env); cut += 37 {
		if _, err := decodeEnvelope(env[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
