package core

import (
	"bytes"
	"testing"
)

// Fuzz harnesses for every binary decoder that consumes bytes from the
// untrusted OS or network. The invariant under fuzzing is uniform: a
// decoder either returns an error or a value that re-encodes and decodes
// consistently — it must never panic, whatever the wire bytes.
//
// Seed corpora live in testdata/fuzz/<FuzzName>/ plus the valid
// encodings added here, so `go test` replays them as regression inputs
// and `go test -fuzz` starts from realistic shapes.

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xA1})
	f.Add([]byte{0xA1, 0x01})
	f.Add([]byte{0xA1, 0xFF, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// A length prefix claiming far more data than present.
	f.Add([]byte{0xA3, 0x01, 0xFF, 0xFF, 0xFF, 0xFF})
}

func FuzzDecodeLocalRequest(f *testing.F) {
	fuzzSeeds(f)
	valid, _ := encodeLocalRequest(&localRequest{Op: opMigrateOut, Dest: "m/me", Body: []byte("b"), Token: []byte("t")})
	f.Add(valid)
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := decodeLocalRequest(raw)
		if err != nil {
			return
		}
		re, err := encodeLocalRequest(r)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		r2, err := decodeLocalRequest(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if r.Op != r2.Op || r.Dest != r2.Dest || !bytes.Equal(r.Body, r2.Body) || !bytes.Equal(r.Token, r2.Token) {
			t.Fatal("re-encode round trip mismatch")
		}
	})
}

func FuzzDecodeLocalResponse(f *testing.F) {
	fuzzSeeds(f)
	valid, _ := encodeLocalResponse(&localResponse{Status: statusData, Body: []byte("payload")})
	f.Add(valid)
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := decodeLocalResponse(raw)
		if err != nil {
			return
		}
		if _, err := encodeLocalResponse(r); err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeMigrationData(f *testing.F) {
	fuzzSeeds(f)
	valid, _ := fullMigrationData().Encode()
	f.Add(valid)
	f.Fuzz(func(t *testing.T, raw []byte) {
		d, err := DecodeMigrationData(raw)
		if err != nil {
			return
		}
		re, err := d.Encode()
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		// The format is fixed-width, so a successful decode must
		// re-encode to the identical bytes.
		if !bytes.Equal(raw, re) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}

func FuzzDecodeLibraryState(f *testing.F) {
	fuzzSeeds(f)
	valid, _ := (&libraryState{Frozen: 1}).encode()
	f.Add(valid)
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := decodeLibraryState(raw)
		if err != nil {
			return
		}
		re, err := s.encode()
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		if !bytes.Equal(raw, re) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}

func FuzzDecodeEnvelope(f *testing.F) {
	fuzzSeeds(f)
	valid, _ := (&migrationEnvelope{Data: fullMigrationData(), SourceME: "src/me", DoneToken: []byte("tok")}).encode()
	f.Add(valid)
	f.Fuzz(func(t *testing.T, raw []byte) {
		e, err := decodeEnvelope(raw)
		if err != nil {
			return
		}
		if e.Data == nil {
			t.Fatal("decoded envelope with nil data")
		}
		if _, err := e.encode(); err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeProtocolMessages(f *testing.F) {
	fuzzSeeds(f)
	if off, err := encodeOffer(&offerMessage{Quote: &wireQuote{Data: []byte("d")}, DHPub: []byte("p")}); err == nil {
		f.Add(off)
	}
	if rep, err := encodeOfferReply(&offerReply{SessionID: "s", Quote: &wireQuote{}, DHPub: []byte("p")}); err == nil {
		f.Add(rep)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		// None of these may panic; errors are expected and fine.
		if m, err := decodeOffer(raw); err == nil && m.Quote == nil {
			t.Fatal("offer decoded with nil quote")
		}
		if m, err := decodeOfferReply(raw); err == nil && m.Quote == nil {
			t.Fatal("offer reply decoded with nil quote")
		}
		_, _ = decodeDataMessage(raw)
		_, _ = decodeDoneMessage(raw)
	})
}

func FuzzDecodeEscrowRecord(f *testing.F) {
	fuzzSeeds(f)
	f.Add(encodeEscrowRecord([]byte("wrapped-msk"), []byte("sealed-table-ii-state")))
	f.Add(encodeEscrowRecord(nil, nil))
	f.Fuzz(func(t *testing.T, raw []byte) {
		keyBox, state, err := decodeEscrowRecord(raw)
		if err != nil {
			return
		}
		// An accepted record re-frames to the identical bytes.
		if re := encodeEscrowRecord(keyBox, state); !bytes.Equal(raw, re) {
			t.Fatal("canonical re-encoding differs from accepted input")
		}
	})
}
