//go:build chaosmut

package core

// faultSkipBindingWin, under the chaosmut build tag, removes the
// binding-counter arbitration from Recover: the stale-record check and
// the DestroyAndRead win are both skipped, so a recovery installs
// whatever record the escrow returns without consuming the old binding.
// That is exactly the paper's no-fork mechanism deleted — two recoveries
// of the same instance can then both "succeed" — and the chaos
// checker's mutation self-test asserts the harness catches the
// resulting double resurrection. Never enabled in normal builds.
const faultSkipBindingWin = true
