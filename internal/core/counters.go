package core

import (
	"repro/internal/pse"
	"repro/internal/sgx"
)

// CounterService is the monotonic-counter facility the Migration Library
// builds on: the interface of the per-machine Platform Services manager
// (*pse.Service), also satisfied by the quorum-replicated group
// coordinator (*pserepl.Group). The library — and therefore the whole
// migration protocol — is agnostic to which one backs it; the facility
// only has to keep the pse contract: counters are monotonic, UUIDs are
// capabilities, and a destroyed UUID can never be reused.
type CounterService interface {
	// Create allocates a fresh monotonic counter for the calling enclave
	// with initial value 0 and returns its UUID and value.
	Create(e *sgx.Enclave) (pse.UUID, uint32, error)
	// Read returns the current counter value.
	Read(e *sgx.Enclave, uuid pse.UUID) (uint32, error)
	// Increment adds one to the counter and returns the new value.
	Increment(e *sgx.Enclave, uuid pse.UUID) (uint32, error)
	// IncrementN adds n (>= 1) to the counter in one transaction and
	// returns the new value (the batched form PR 2 added to the firmware
	// model; the escrow recovery path uses it to fast-forward a fresh
	// binding counter to the escrowed version in one round).
	IncrementN(e *sgx.Enclave, uuid pse.UUID, n int) (uint32, error)
	// Destroy permanently removes a counter; its UUID is never reused.
	Destroy(e *sgx.Enclave, uuid pse.UUID) error
	// DestroyAndRead destroys the counter and returns its final value in
	// one transaction (the migration capture primitive, R4).
	DestroyAndRead(e *sgx.Enclave, uuid pse.UUID) (uint32, error)
}

// The per-machine Platform Services manager is the canonical facility.
var _ CounterService = (*pse.Service)(nil)
