package core

import (
	"encoding/hex"
	"fmt"

	"repro/internal/attest"
	"repro/internal/obs"
	"repro/internal/sgx"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// quoteToWire converts an attest.Quote for JSON transport.
func quoteToWire(q *attest.Quote) (*wireQuote, error) {
	cert, err := certToWire(q.PlatformCert)
	if err != nil {
		return nil, err
	}
	return &wireQuote{
		MREnclave: q.MREnclave,
		MRSigner:  q.MRSigner,
		Data:      q.Data[:],
		Cert:      cert,
		Signature: q.Signature,
	}, nil
}

// quoteFromWire reconstructs an attest.Quote.
func quoteFromWire(w *wireQuote) (*attest.Quote, error) {
	if w == nil || len(w.Data) != sgx.ReportDataSize {
		return nil, fmt.Errorf("%w: bad quote", ErrDataFormat)
	}
	cert, err := certFromWire(w.Cert)
	if err != nil {
		return nil, err
	}
	q := &attest.Quote{
		MREnclave:    w.MREnclave,
		MRSigner:     w.MRSigner,
		PlatformCert: cert,
		Signature:    w.Signature,
	}
	copy(q.Data[:], w.Data)
	return q, nil
}

// transfer runs the source side of the Fig. 2 remote protocol for one
// outgoing record: mutual remote attestation with the destination ME,
// provider authentication in both directions, and delivery of the
// channel-sealed migration envelope.
func (me *MigrationEnclave) transfer(rec *outgoingRecord) error {
	me.mu.Lock()
	dest := rec.dest
	trace := rec.trace
	me.mu.Unlock()

	sp, tc := me.observer().StartSpan("me.transfer", trace)
	if sp != nil {
		sp.Site = string(me.addr)
		defer sp.End()
	}

	// --- Attestation round ---------------------------------------------
	dh, err := xcrypto.NewKeyExchange()
	if err != nil {
		return fmt.Errorf("migration dh: %w", err)
	}
	myQuote, err := me.qe.Quote(me.enclave, sgx.MakeReportData(dh.PublicBytes()))
	if err != nil {
		return fmt.Errorf("source quote: %w", err)
	}
	wq, err := quoteToWire(myQuote)
	if err != nil {
		return err
	}
	offerRaw, err := encodeOffer(&offerMessage{Quote: wq, DHPub: dh.PublicBytes()})
	if err != nil {
		return err
	}
	offerSp, offerTC := me.observer().StartSpan("me.offer", tc)
	replyRaw, err := me.net.Send(me.addr, dest, kindOffer, obs.Inject(offerTC, offerRaw))
	offerSp.End()
	if err != nil {
		return fmt.Errorf("send offer: %w", err)
	}
	reply, err := decodeOfferReply(replyRaw)
	if err != nil {
		return err
	}
	peerQuote, err := quoteFromWire(reply.Quote)
	if err != nil {
		return err
	}
	// Verify the peer is a genuine SGX enclave (IAS) running EXACTLY the
	// same Migration Enclave code (MRENCLAVE equality, §VI-A).
	if err := me.ias.Verify(peerQuote); err != nil {
		return fmt.Errorf("verify destination quote: %w", err)
	}
	if peerQuote.MREnclave != me.enclave.MREnclave() {
		return fmt.Errorf("%w: destination %v, expected %v",
			ErrPeerIdentity, peerQuote.MREnclave, me.enclave.MREnclave())
	}
	// The destination quote must bind both handshake keys.
	if peerQuote.Data != sgx.MakeReportData(dh.PublicBytes(), reply.DHPub) {
		return ErrQuoteBinding
	}
	transcript := xcrypto.Transcript(transcriptContext, dh.PublicBytes(), reply.DHPub)
	// Authenticate the destination machine as belonging to the same cloud
	// provider (R2): certificate chain plus signature over the transcript.
	peerCert, err := certFromWire(reply.Cert)
	if err != nil {
		return err
	}
	if err := me.cred.VerifyPeer(peerCert, transcript, reply.Sig); err != nil {
		return fmt.Errorf("authenticate destination: %w", err)
	}
	shared, err := dh.Shared(reply.DHPub)
	if err != nil {
		return fmt.Errorf("shared secret: %w", err)
	}
	channel := xcrypto.NewChannel(shared, transcript, true)

	// --- Data round -----------------------------------------------------
	me.mu.Lock()
	// Re-check completion atomically with the envelope read: a DONE may
	// have arrived during the attestation round (delivered-but-ack-lost
	// migration restored concurrently), and the stale envelope must not
	// leave the machine after that.
	if rec.done || rec.envelope == nil {
		me.mu.Unlock()
		return ErrMigrationDone
	}
	envRaw, err := rec.envelope.encode()
	me.mu.Unlock()
	if err != nil {
		return err
	}
	sealed, err := channel.Seal(envRaw)
	if err != nil {
		return fmt.Errorf("seal migration data: %w", err)
	}
	myCert, err := certToWire(me.cred.Certificate())
	if err != nil {
		return err
	}
	dataRaw, err := encodeDataMessage(&dataMessage{
		SessionID: reply.SessionID,
		Cert:      myCert,
		Sig:       me.cred.Sign(transcript),
		Sealed:    sealed,
	})
	if err != nil {
		return err
	}
	dataSp, dataTC := me.observer().StartSpan("me.data", tc)
	ackRaw, err := me.net.Send(me.addr, dest, kindData, obs.Inject(dataTC, dataRaw))
	dataSp.End()
	if err != nil {
		return fmt.Errorf("send migration data: %w", err)
	}
	ack, err := channel.Open(ackRaw)
	if err != nil {
		return fmt.Errorf("open data ack: %w", err)
	}
	if string(ack) != statusOK {
		return fmt.Errorf("destination rejected migration: %s", ack)
	}
	return nil
}

// handleNetwork is the ME's untrusted-network entry point.
func (me *MigrationEnclave) handleNetwork(msg transport.Message) ([]byte, error) {
	if err := me.enclave.ECall(); err != nil {
		return nil, err
	}
	sp, tc := me.observer().StartSpan("me.handle-"+msg.Kind, msg.Trace)
	if sp != nil {
		sp.Site = string(me.addr)
		defer sp.End()
	}
	switch msg.Kind {
	case kindOffer:
		return me.handleOffer(msg.Payload)
	case kindData:
		return me.handleData(msg.Payload, tc)
	case kindDone:
		return me.handleDone(msg.Payload)
	case kindBatchOffer:
		return me.handleBatchOffer(msg.Payload)
	case kindBatchChunk:
		return me.handleBatchChunk(msg.Payload)
	case kindBatchAbort:
		return me.handleBatchAbort(msg.Payload)
	case kindBatchDone:
		return me.handleBatchDone(msg.Payload)
	default:
		return nil, fmt.Errorf("core: unknown message kind %q", msg.Kind)
	}
}

// handleOffer is the destination side of the attestation round.
func (me *MigrationEnclave) handleOffer(payload []byte) ([]byte, error) {
	offer, err := decodeOffer(payload)
	if err != nil {
		return nil, err
	}
	srcQuote, err := quoteFromWire(offer.Quote)
	if err != nil {
		return nil, err
	}
	if err := me.ias.Verify(srcQuote); err != nil {
		return nil, fmt.Errorf("verify source quote: %w", err)
	}
	if srcQuote.MREnclave != me.enclave.MREnclave() {
		return nil, fmt.Errorf("%w: source %v", ErrPeerIdentity, srcQuote.MREnclave)
	}
	if srcQuote.Data != sgx.MakeReportData(offer.DHPub) {
		return nil, ErrQuoteBinding
	}
	dh, err := xcrypto.NewKeyExchange()
	if err != nil {
		return nil, fmt.Errorf("destination dh: %w", err)
	}
	shared, err := dh.Shared(offer.DHPub)
	if err != nil {
		return nil, fmt.Errorf("shared secret: %w", err)
	}
	transcript := xcrypto.Transcript(transcriptContext, offer.DHPub, dh.PublicBytes())
	channel := xcrypto.NewChannel(shared, transcript, false)

	myQuote, err := me.qe.Quote(me.enclave, sgx.MakeReportData(offer.DHPub, dh.PublicBytes()))
	if err != nil {
		return nil, fmt.Errorf("destination quote: %w", err)
	}
	wq, err := quoteToWire(myQuote)
	if err != nil {
		return nil, err
	}
	idBytes, err := xcrypto.RandomBytes(8)
	if err != nil {
		return nil, err
	}
	sessionID := hex.EncodeToString(idBytes)
	me.mu.Lock()
	me.handshakes[sessionID] = &handshakeState{channel: channel, transcript: transcript}
	me.mu.Unlock()

	myCert, err := certToWire(me.cred.Certificate())
	if err != nil {
		return nil, err
	}
	return encodeOfferReply(&offerReply{
		SessionID: sessionID,
		Quote:     wq,
		DHPub:     dh.PublicBytes(),
		Cert:      myCert,
		Sig:       me.cred.Sign(transcript),
	})
}

// handleData is the destination side of the data round: it authenticates
// the source machine, decrypts the envelope, and stores it for the
// matching local enclave.
func (me *MigrationEnclave) handleData(payload []byte, tc obs.TraceContext) ([]byte, error) {
	msg, err := decodeDataMessage(payload)
	if err != nil {
		return nil, err
	}
	me.mu.Lock()
	hs, ok := me.handshakes[msg.SessionID]
	if ok {
		delete(me.handshakes, msg.SessionID)
	}
	me.mu.Unlock()
	if !ok {
		return nil, ErrBadHandshake
	}
	// Mutual provider authentication: the source must prove it belongs to
	// the same cloud provider before its data is accepted (R2).
	srcCert, err := certFromWire(msg.Cert)
	if err != nil {
		return nil, err
	}
	if err := me.cred.VerifyPeer(srcCert, hs.transcript, msg.Sig); err != nil {
		return nil, fmt.Errorf("authenticate source: %w", err)
	}
	envRaw, err := hs.channel.Open(msg.Sealed)
	if err != nil {
		return nil, fmt.Errorf("open migration data: %w", err)
	}
	env, err := decodeEnvelope(envRaw)
	if err != nil {
		return nil, err
	}
	if err := me.storeIncoming(env, tc, false); err != nil {
		return nil, err
	}

	ack, err := hs.channel.Seal([]byte(statusOK))
	if err != nil {
		return nil, fmt.Errorf("seal data ack: %w", err)
	}
	return ack, nil
}

// handleDone is the source side's receipt of the DONE confirmation: the
// destination library restored successfully, so the source copy of the
// migration data can be deleted safely (§V-D).
func (me *MigrationEnclave) handleDone(payload []byte) ([]byte, error) {
	msg, err := decodeDoneMessage(payload)
	if err != nil {
		return nil, err
	}
	key := hex.EncodeToString(msg.Token)
	me.mu.Lock()
	defer me.mu.Unlock()
	rec, ok := me.outgoing[key]
	if !ok {
		return nil, ErrUnknownToken
	}
	rec.done = true
	// Delete the migration data itself; keep the completion marker so
	// the source library can observe it via MigrationComplete.
	rec.envelope = nil
	return []byte(statusOK), nil
}
