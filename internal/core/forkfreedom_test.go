package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
)

// TestForkFreedomUnderRandomSchedules is a randomized invariant check:
// under ANY interleaving of normal operation, snapshotting, migration,
// termination, and adversarial restarts from stale storage snapshots,
// at most one live enclave instance can successfully advance a given
// counter — the system-wide fork-freedom property behind R3.
//
// The schedule driver plays both the legitimate operator and the
// §III adversary; after every step it probes every live instance.
func TestForkFreedomUnderRandomSchedules(t *testing.T) {
	const (
		schedules = 12
		steps     = 18
	)
	for s := 0; s < schedules; s++ {
		s := s
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + s)))
			runForkFreedomSchedule(t, rng, steps)
		})
	}
}

func runForkFreedomSchedule(t *testing.T, rng *rand.Rand, steps int) {
	t.Helper()
	e := newEnv(t)
	machines := []*cloud.Machine{e.src, e.dst}
	img := testAppImage(t, "fork-freedom")

	// The canonical storage travels with the VM; the adversary keeps
	// every blob ever written.
	storage := core.NewMemoryStorage()
	current, err := e.src.LaunchApp(img, storage, core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ctr, _, err := current.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}

	// Every instance ever launched, including adversarial resurrections.
	instances := []*cloud.App{current}
	machineOf := map[*cloud.App]*cloud.Machine{current: machines[0]}
	curMachine := 0

	// R3's exact boundary: two instances of the same enclave on the SAME
	// machine share the hardware counter, which is possible without any
	// migration (and their states stay mutually detectable through it).
	// What migration must never enable is instances on DIFFERENT machines
	// both advancing "the" counter with divergent state.
	checkInvariant := func(step int) {
		usableMachines := make(map[*cloud.Machine]bool)
		for _, inst := range instances {
			if !inst.Enclave.Alive() {
				continue
			}
			if _, err := inst.Library.IncrementCounter(ctr); err == nil {
				usableMachines[machineOf[inst]] = true
			}
		}
		if len(usableMachines) > 1 {
			t.Fatalf("step %d: counter advanceable on %d machines (cross-machine fork!)",
				step, len(usableMachines))
		}
	}

	for step := 0; step < steps; step++ {
		switch rng.Intn(4) {
		case 0: // normal operation: increment (if this instance still can)
			if current != nil && current.Enclave.Alive() {
				_, _ = current.Library.IncrementCounter(ctr)
			}
		case 1: // migrate to the other machine
			if current == nil || !current.Enclave.Alive() || current.Library.Frozen() {
				continue
			}
			next := (curMachine + 1) % len(machines)
			if err := current.Library.StartMigration(machines[next].MEAddress()); err != nil {
				continue
			}
			current.Terminate()
			app, err := machines[next].LaunchApp(img, storage, core.InitMigrated)
			if err != nil {
				t.Fatalf("step %d: restore failed: %v", step, err)
			}
			current = app
			curMachine = next
			instances = append(instances, app)
			machineOf[app] = machines[next]
		case 2: // crash + legitimate restart from latest storage
			if current == nil || !current.Enclave.Alive() {
				continue
			}
			home := machineOf[current]
			current.Terminate()
			app, err := home.LaunchApp(img, storage, core.InitRestore)
			if err != nil {
				// Frozen or unusable: the enclave stays down.
				current = nil
				continue
			}
			current = app
			instances = append(instances, app)
			machineOf[app] = home
		case 3: // ADVERSARY: resurrect a random historical blob anywhere
			if storage.Versions() == 0 {
				continue
			}
			blob, ok := storage.Snapshot(rng.Intn(storage.Versions()))
			if !ok {
				continue
			}
			staleStorage := core.NewMemoryStorage()
			_ = staleStorage.Save(blob)
			m := machines[rng.Intn(len(machines))]
			app, err := m.LaunchApp(img, staleStorage, core.InitRestore)
			if err != nil {
				continue // refused (frozen / foreign machine): fine
			}
			instances = append(instances, app)
			machineOf[app] = m
		}
		checkInvariant(step)
	}
}
