package core

import (
	"fmt"
)

// Wire messages of the batched migration pipeline (Fig. 2 amortized):
// one batchOffer per (source, dest) batch — carrying either a full
// attestation quote or a resume ticket — then a pipelined stream of
// AEAD-sealed batchChunk frames, and one aggregated batchDone flushing
// many DONE confirmations at once. All messages use the shared wirec
// framing with core's tag/version header and the same length-bomb
// clamps as the single-migration codecs.

// maxBatchCount clamps the member count a batch offer may declare.
const maxBatchCount = 1 << 16

// resumeTicket asks the destination to resume a cached attested session
// instead of re-running the handshake. The MAC binds the session id,
// the destination epoch the source saw at handshake time, the reserved
// counter, and the batch size under the session secret.
type resumeTicket struct {
	SessionID []byte
	Epoch     []byte
	Counter   uint64
	Count     uint32
	MAC       []byte
}

// batchOffer opens a batch: either Resume is present (session resume)
// or Quote+DHPub are (full handshake, same binding as offerMessage).
type batchOffer struct {
	Count  uint32
	Quote  *wireQuote
	DHPub  []byte
	Resume *resumeTicket
}

// batchOfferReply either refuses resumption (Refused — not an error:
// the source falls back to a full handshake), confirms it (Resumed +
// ConfirmMAC), or completes a fresh handshake (Quote/DHPub/Cert/Sig as
// in offerReply, plus the new session's id and the destination epoch).
// RefuseMAC accompanies a refusal from a destination that still holds
// the session secret (proof the refusal is genuine, see resumeRefuseMAC);
// it is absent when the destination lost the session, and the source
// only evicts its cache when the MAC verifies.
type batchOfferReply struct {
	Refused    bool
	Resumed    bool
	BatchID    []byte
	SessionID  []byte
	Epoch      []byte
	Quote      *wireQuote
	DHPub      []byte
	Cert       []byte
	Sig        []byte
	ConfirmMAC []byte
	RefuseMAC  []byte
}

// batchChunk is one sealed frame of the batch stream. Seq is the frame's
// stream position (frames may arrive out of order; the receiver
// reassembles). Cert/Sig are present only on seq 0 of a fresh-handshake
// batch: the source's provider authentication needs the full transcript
// (both DH keys), which does not exist until the offer reply — and the
// receiver consumes frames in order, so no record is delivered before
// the seq-0 authentication passes.
type batchChunk struct {
	BatchID []byte
	Seq     uint64
	Cert    []byte
	Sig     []byte
	Sealed  []byte
}

// Member statuses carried in chunk acks.
const (
	batchStatusStored byte = 1 // envelope stored at the destination ME
	batchStatusError  byte = 2 // refused; Detail carries the reason
)

// memberStatus is one batch member's outcome at the destination.
type memberStatus struct {
	Index  uint32
	Status byte
	Detail string
}

// batchStatusList is the (sealed) payload of a chunk ack: the
// cumulative set of member outcomes so far, so acks are idempotent and
// any single ack suffices to learn everything decided up to it.
type batchStatusList struct {
	Statuses []memberStatus
}

// batchDoneMessage flushes many DONE confirmations to a source ME in
// one exchange.
type batchDoneMessage struct {
	Tokens [][]byte
}

// batchAbort tells the destination a batch stream ended without ever
// completing (the sender's Finish saw fewer acks than the declared
// member count), so the per-batch reassembly state can be freed instead
// of lingering until cap-eviction. Sealed authenticates the abort: it is
// the data stream's frame at the reserved batchAbortSeq position, which
// only the holder of the batch's data key can produce.
type batchAbort struct {
	BatchID []byte
	Sealed  []byte
}

// batchRecord is one enclave's migration inside the stream plaintext:
// the encoded envelope (optionally a compressed frame) plus its trace
// context. Records are length-prefixed and concatenated; chunks cut the
// concatenation at arbitrary byte boundaries.
type batchRecord struct {
	Index      uint32
	Compressed bool
	Trace      []byte
	Envelope   []byte
}

func encodeResumeTicketInline(dst []byte, t *resumeTicket) []byte {
	dst = appendBytes(dst, t.SessionID)
	dst = appendBytes(dst, t.Epoch)
	dst = appendU64(dst, t.Counter)
	dst = appendU32(dst, t.Count)
	return appendBytes(dst, t.MAC)
}

func (r *wireReader) resumeTicket() *resumeTicket {
	t := &resumeTicket{
		SessionID: r.bytes(),
		Epoch:     r.bytes(),
		Counter:   r.u64(),
		Count:     r.u32(),
		MAC:       r.bytes(),
	}
	if r.errState() != nil {
		return nil
	}
	return t
}

func encodeBatchOffer(m *batchOffer) ([]byte, error) {
	if (m.Quote == nil) == (m.Resume == nil) {
		return nil, fmt.Errorf("%w: batch offer needs exactly one of quote or resume ticket", ErrDataFormat)
	}
	out := appendHeader(make([]byte, 0, 256), tagBatchOffer)
	out = appendU32(out, m.Count)
	if m.Resume != nil {
		out = append(out, 1)
		return encodeResumeTicketInline(out, m.Resume), nil
	}
	out = append(out, 0)
	out = appendQuote(out, m.Quote)
	return appendBytes(out, m.DHPub), nil
}

func decodeBatchOffer(raw []byte) (*batchOffer, error) {
	rd := newWireReader(raw)
	if !rd.header(tagBatchOffer) {
		return nil, rd.errState()
	}
	m := &batchOffer{Count: rd.u32()}
	if m.Count == 0 || m.Count > maxBatchCount {
		return nil, fmt.Errorf("%w: batch count %d out of range", ErrDataFormat, m.Count)
	}
	switch rd.u8() {
	case 1:
		m.Resume = rd.resumeTicket()
	case 0:
		m.Quote = rd.quote()
		m.DHPub = rd.bytes()
	default:
		return nil, fmt.Errorf("%w: bad batch offer mode", ErrDataFormat)
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	if rd.errState() != nil {
		return nil, rd.errState()
	}
	return m, nil
}

// Flag bits of the batch offer reply.
const (
	batchReplyRefused byte = 1 << 0
	batchReplyResumed byte = 1 << 1
	batchReplyQuoted  byte = 1 << 2 // fresh-handshake fields present
)

func encodeBatchOfferReply(m *batchOfferReply) ([]byte, error) {
	var flags byte
	if m.Refused {
		flags |= batchReplyRefused
	}
	if m.Resumed {
		flags |= batchReplyResumed
	}
	if m.Quote != nil {
		flags |= batchReplyQuoted
	}
	out := appendHeader(make([]byte, 0, 512), tagBatchReply)
	out = append(out, flags)
	out = appendBytes(out, m.BatchID)
	out = appendBytes(out, m.SessionID)
	out = appendBytes(out, m.Epoch)
	out = appendBytes(out, m.ConfirmMAC)
	out = appendBytes(out, m.RefuseMAC)
	if m.Quote != nil {
		out = appendQuote(out, m.Quote)
		out = appendBytes(out, m.DHPub)
		out = appendBytes(out, m.Cert)
		out = appendBytes(out, m.Sig)
	}
	return out, nil
}

func decodeBatchOfferReply(raw []byte) (*batchOfferReply, error) {
	rd := newWireReader(raw)
	if !rd.header(tagBatchReply) {
		return nil, rd.errState()
	}
	flags := rd.u8()
	m := &batchOfferReply{
		Refused:    flags&batchReplyRefused != 0,
		Resumed:    flags&batchReplyResumed != 0,
		BatchID:    rd.bytes(),
		SessionID:  rd.bytes(),
		Epoch:      rd.bytes(),
		ConfirmMAC: rd.bytes(),
		RefuseMAC:  rd.bytes(),
	}
	if flags&batchReplyQuoted != 0 {
		m.Quote = rd.quote()
		m.DHPub = rd.bytes()
		m.Cert = rd.bytes()
		m.Sig = rd.bytes()
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeBatchChunk(m *batchChunk) ([]byte, error) {
	out := appendHeader(make([]byte, 0, 64+len(m.Cert)+len(m.Sig)+len(m.Sealed)), tagBatchChunk)
	out = appendBytes(out, m.BatchID)
	out = appendU64(out, m.Seq)
	out = appendBytes(out, m.Cert)
	out = appendBytes(out, m.Sig)
	return appendBytes(out, m.Sealed), nil
}

func decodeBatchChunk(raw []byte) (*batchChunk, error) {
	rd := newWireReader(raw)
	if !rd.header(tagBatchChunk) {
		return nil, rd.errState()
	}
	m := &batchChunk{
		BatchID: rd.bytes(),
		Seq:     rd.u64(),
		Cert:    rd.bytes(),
		Sig:     rd.bytes(),
		Sealed:  rd.bytes(),
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeBatchStatusList(m *batchStatusList) ([]byte, error) {
	out := appendHeader(make([]byte, 0, 8+16*len(m.Statuses)), tagBatchStatus)
	out = appendU32(out, uint32(len(m.Statuses)))
	for _, s := range m.Statuses {
		out = appendU32(out, s.Index)
		out = append(out, s.Status)
		out = appendString(out, s.Detail)
	}
	return out, nil
}

func decodeBatchStatusList(raw []byte) (*batchStatusList, error) {
	rd := newWireReader(raw)
	if !rd.header(tagBatchStatus) {
		return nil, rd.errState()
	}
	n := rd.u32()
	// Each status needs at least index(4) + status(1) + detail length(4).
	if !rd.canHold(n, 9) {
		return nil, fmt.Errorf("%w: status count %d exceeds payload", ErrDataFormat, n)
	}
	m := &batchStatusList{Statuses: make([]memberStatus, 0, n)}
	for i := uint32(0); i < n; i++ {
		m.Statuses = append(m.Statuses, memberStatus{
			Index:  rd.u32(),
			Status: rd.u8(),
			Detail: rd.string(),
		})
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeBatchDoneMessage(m *batchDoneMessage) ([]byte, error) {
	out := appendHeader(make([]byte, 0, 8+20*len(m.Tokens)), tagBatchDone)
	out = appendU32(out, uint32(len(m.Tokens)))
	for _, t := range m.Tokens {
		out = appendBytes(out, t)
	}
	return out, nil
}

func decodeBatchDoneMessage(raw []byte) (*batchDoneMessage, error) {
	rd := newWireReader(raw)
	if !rd.header(tagBatchDone) {
		return nil, rd.errState()
	}
	n := rd.u32()
	if !rd.canHold(n, 4) {
		return nil, fmt.Errorf("%w: token count %d exceeds payload", ErrDataFormat, n)
	}
	m := &batchDoneMessage{Tokens: make([][]byte, 0, n)}
	for i := uint32(0); i < n; i++ {
		m.Tokens = append(m.Tokens, rd.bytes())
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeBatchAbort(m *batchAbort) ([]byte, error) {
	out := appendHeader(make([]byte, 0, 16+len(m.BatchID)+len(m.Sealed)), tagBatchAbort)
	out = appendBytes(out, m.BatchID)
	return appendBytes(out, m.Sealed), nil
}

func decodeBatchAbort(raw []byte) (*batchAbort, error) {
	rd := newWireReader(raw)
	if !rd.header(tagBatchAbort) {
		return nil, rd.errState()
	}
	m := &batchAbort{
		BatchID: rd.bytes(),
		Sealed:  rd.bytes(),
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeBatchRecord(m *batchRecord) ([]byte, error) {
	out := appendHeader(make([]byte, 0, 16+len(m.Trace)+len(m.Envelope)), tagBatchRecord)
	out = appendU32(out, m.Index)
	var c byte
	if m.Compressed {
		c = 1
	}
	out = append(out, c)
	out = appendBytes(out, m.Trace)
	return appendBytes(out, m.Envelope), nil
}

func decodeBatchRecord(raw []byte) (*batchRecord, error) {
	rd := newWireReader(raw)
	if !rd.header(tagBatchRecord) {
		return nil, rd.errState()
	}
	m := &batchRecord{Index: rd.u32()}
	switch rd.u8() {
	case 0:
	case 1:
		m.Compressed = true
	default:
		return nil, fmt.Errorf("%w: bad record compression flag", ErrDataFormat)
	}
	m.Trace = rd.bytes()
	m.Envelope = rd.bytes()
	if err := rd.done(); err != nil {
		return nil, err
	}
	return m, nil
}
