package core_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/transport"
)

// --- R2: controlled migration ------------------------------------------

// An attacker running a Migration Enclave provisioned by a DIFFERENT
// provider must not receive migrations, even with valid SGX attestation.
func TestMigrationToForeignProviderRejected(t *testing.T) {
	lat := sim.NewInstantLatency()
	ours, err := cloud.NewDataCenter("dc-ours", lat)
	if err != nil {
		t.Fatal(err)
	}
	src, err := ours.AddMachine("machine-src")
	if err != nil {
		t.Fatal(err)
	}

	// The attacker's machine shares the network and EVEN the same EPID
	// group and IAS (so SGX attestation succeeds), but its ME credential
	// comes from a different provider.
	theirs, err := cloud.NewDataCenterWithNetwork("dc-theirs", lat, ours.Network)
	if err != nil {
		t.Fatal(err)
	}
	theirs.Issuer = ours.Issuer
	theirs.IAS = ours.IAS
	foreign, err := theirs.AddMachine("machine-foreign")
	if err != nil {
		t.Fatal(err)
	}

	img := testAppImage(t, "app")
	app, _ := src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	_, _, _ = app.Library.CreateCounter()

	err = app.Library.StartMigration(foreign.MEAddress())
	if !errors.Is(err, core.ErrMigrationPending) {
		t.Fatalf("migration to foreign provider: got %v, want pending (rejected)", err)
	}
	if !strings.Contains(err.Error(), "authenticate destination") &&
		!strings.Contains(err.Error(), "provider") {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
	// Nothing was stored on the attacker machine.
	if foreign.ME.PendingIncoming() != 0 {
		t.Fatal("foreign ME received migration data")
	}
}

// An adversary who redirects the migration traffic to their own machine
// gains nothing: the protocol authenticates the endpoint, not the address.
func TestRedirectedMigrationRejected(t *testing.T) {
	e := newEnv(t)
	// Attacker-controlled endpoint that records whatever it receives.
	var received [][]byte
	if err := e.dc.Network.Register("attacker", func(msg transport.Message) ([]byte, error) {
		received = append(received, msg.Payload)
		return []byte("ok"), nil
	}); err != nil {
		t.Fatal(err)
	}
	e.dc.Network.SetAdversary(transport.RedirectTo("attacker"))
	defer e.dc.Network.SetAdversary(nil)

	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	_, _, _ = app.Library.CreateCounter()

	err := app.Library.StartMigration(e.dst.MEAddress())
	if !errors.Is(err, core.ErrMigrationPending) {
		t.Fatalf("redirected migration: got %v", err)
	}
	// The attacker saw only the offer (quote + public DH key) — never the
	// migration data, which is sent only after mutual attestation.
	for _, p := range received {
		if strings.Contains(string(p), "msk") || strings.Contains(string(p), "counterValues") {
			t.Fatal("migration data leaked to attacker endpoint")
		}
	}
}

// A man-in-the-middle who tampers with protocol messages cannot make the
// protocol complete; the failure is detected cryptographically.
func TestTamperedProtocolMessagesRejected(t *testing.T) {
	for _, kind := range []string{"migrate-offer", "migrate-data"} {
		t.Run(kind, func(t *testing.T) {
			e := newEnv(t)
			e.dc.Network.SetAdversary(transport.FlipPayloadBit(kind))
			img := testAppImage(t, "app")
			app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
			_, _, _ = app.Library.CreateCounter()
			if err := app.Library.StartMigration(e.dst.MEAddress()); !errors.Is(err, core.ErrMigrationPending) {
				t.Fatalf("tampered %s accepted: %v", kind, err)
			}
			// No data may have landed at the destination.
			if e.dst.ME.PendingIncoming() != 0 {
				t.Fatal("tampered migration stored at destination")
			}
		})
	}
}

// Dropped DONE confirmations must not lose data: the source keeps its
// copy (safe failure), and the destination still restores correctly.
func TestDroppedDoneIsSafe(t *testing.T) {
	e := newEnv(t)
	e.dc.Network.SetAdversary(transport.DropKind("migrate-done"))
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	id, _, _ := app.Library.CreateCounter()
	if _, err := app.Library.IncrementCounter(id); err != nil {
		t.Fatal(err)
	}
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	dstApp, err := e.dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatalf("restore with dropped DONE: %v", err)
	}
	if v, _ := dstApp.Library.ReadCounter(id); v != 1 {
		t.Fatalf("counter = %d", v)
	}
	// Source never learns of completion — data retained, not deleted.
	if e.src.ME.PendingOutgoing() != 1 {
		t.Fatal("source deleted data without DONE")
	}
}

// A forged DONE with a random token must be rejected.
func TestForgedDoneRejected(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	_, _, _ = app.Library.CreateCounter()
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	forged := []byte(`{"token":"YWJjZGVmZ2hpamtsbW5vcA=="}`)
	if _, err := e.dc.Network.Send("attacker", e.src.MEAddress(), "migrate-done", forged); err == nil {
		t.Fatal("forged DONE accepted")
	}
	if e.src.ME.PendingOutgoing() != 1 {
		t.Fatal("forged DONE deleted source data")
	}
}

// Replaying a captured migrate-data message must not re-install the
// migration at the destination (the handshake session is single-use).
func TestReplayedDataMessageRejected(t *testing.T) {
	e := newEnv(t)
	adv := &transport.Interceptor{}
	e.dc.Network.SetAdversary(adv)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	_, _, _ = app.Library.CreateCounter()
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	// Legitimate delivery consumes the stored data.
	if _, err := e.dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated); err != nil {
		t.Fatal(err)
	}
	// Replay the captured migrate-data message.
	var replayed bool
	for _, m := range adv.Captured() {
		if m.Kind == "migrate-data" {
			replayed = true
			if _, err := e.dc.Network.Send(m.From, m.To, m.Kind, m.Payload); err == nil {
				t.Fatal("replayed migrate-data accepted")
			}
		}
	}
	if !replayed {
		t.Fatal("no migrate-data captured")
	}
	if e.dst.ME.PendingIncoming() != 0 {
		t.Fatal("replay re-installed migration data")
	}
}

// The network never carries the MSK or counter values in the clear.
func TestMigrationDataConfidentiality(t *testing.T) {
	e := newEnv(t)
	adv := &transport.Interceptor{}
	e.dc.Network.SetAdversary(adv)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	id, _, _ := app.Library.CreateCounter()
	for i := 0; i < 7; i++ {
		if _, err := app.Library.IncrementCounter(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	for _, m := range adv.Captured() {
		body := string(m.Payload)
		// The envelope JSON field names must never appear in cleartext on
		// the wire; they exist only inside the channel-sealed payload.
		if strings.Contains(body, `"msk"`) || strings.Contains(body, `"counterValues"`) {
			t.Fatalf("migration data visible on the wire in %s", m.Kind)
		}
	}
}

// --- Local channel misuse ------------------------------------------------

func TestLocalCallUnknownSession(t *testing.T) {
	e := newEnv(t)
	if _, err := e.src.ME.LocalCall("no-such-session", []byte("junk")); !errors.Is(err, core.ErrUnknownSession) {
		t.Fatalf("got %v", err)
	}
}

func TestLocalCallGarbageWire(t *testing.T) {
	e := newEnv(t)
	app, err := e.src.HW.Load(testAppImage(t, "app"))
	if err != nil {
		t.Fatal(err)
	}
	_, sessionID, err := e.src.ME.ConnectLocal(app)
	if err != nil {
		t.Fatal(err)
	}
	// Bytes not sealed by the app's channel must be rejected.
	if _, err := e.src.ME.LocalCall(sessionID, []byte("garbage-not-sealed")); err == nil {
		t.Fatal("unauthenticated local request accepted")
	}
}
