package core_test

import (
	"testing"

	"repro/internal/core"
)

// TestBatchFinishFreesDestinationState: a batch that ends short of its
// declared member count (here: one member frozen, one never added, e.g.
// its freeze failed) must not leave reassembly state behind at the
// destination ME — the sender's Finish aborts the stream explicitly.
func TestBatchFinishFreesDestinationState(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, err := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := app.Library.CreateCounter(); err != nil {
		t.Fatal(err)
	}
	if err := app.Library.StartMigrationHeld(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}

	// Declare two members, deliver only one.
	bs, err := e.src.ME.BeginBatch(e.dst.MEAddress(), 2, core.BatchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Add(0, app.Library.MigrationToken()); err != nil {
		t.Fatal(err)
	}
	statuses, err := bs.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if st, ok := statuses[0]; !ok || !st.OK {
		t.Fatalf("member 0 not delivered: %+v", statuses)
	}
	if n := e.dst.ME.ActiveRxBatches(); n != 0 {
		t.Fatalf("destination still holds %d batch reassembly states after short Finish", n)
	}
	// The delivered member is unaffected by the abort: it restores.
	if _, err := e.dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated); err != nil {
		t.Fatalf("restore of delivered member after abort: %v", err)
	}
}

// TestBatchCompletionFreesDestinationState: the completion path (all
// declared members acked) drops the reassembly state without an abort.
func TestBatchCompletionFreesDestinationState(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, err := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Library.StartMigrationHeld(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	bs, err := e.src.ME.BeginBatch(e.dst.MEAddress(), 1, core.BatchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Add(0, app.Library.MigrationToken()); err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Finish(); err != nil {
		t.Fatal(err)
	}
	if n := e.dst.ME.ActiveRxBatches(); n != 0 {
		t.Fatalf("destination holds %d reassembly states after a complete batch", n)
	}
}
