package core_test

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
)

// appState is the Teechan/TrInX-style versioned persistent state: sealed
// together with a counter value, accepted on restore only if the version
// matches the current counter (paper §III).
type appState struct {
	Balance int    `json:"balance"`
	Version uint32 `json:"version"`
}

// persistState increments the version counter and seals state+version
// with the migratable sealing function.
func persistState(t *testing.T, app *cloud.App, counterID int, balance int) []byte {
	t.Helper()
	v, err := app.Library.IncrementCounter(counterID)
	if err != nil {
		t.Fatalf("increment for persist: %v", err)
	}
	raw, err := json.Marshal(appState{Balance: balance, Version: v})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := app.Library.SealMigratable(nil, raw)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// restoreState unseals and version-checks a persisted blob; ok reports
// whether the enclave accepts it as current.
func restoreState(t *testing.T, app *cloud.App, counterID int, blob []byte) (appState, bool) {
	t.Helper()
	raw, _, err := app.Library.UnsealMigratable(blob)
	if err != nil {
		t.Fatalf("unseal state: %v", err)
	}
	var st appState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	cur, err := app.Library.ReadCounter(counterID)
	if err != nil {
		t.Fatalf("read version counter: %v", err)
	}
	return st, st.Version == cur
}

// TestForkAttackPreventedByMigrationLibrary runs the §III-B fork attack
// schedule against OUR scheme and asserts every escape hatch is closed.
func TestForkAttackPreventedByMigrationLibrary(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "payment-app")
	storage := core.NewMemoryStorage()

	// Step 1 (start-stop-restart): create counter, persist v=1.
	app, err := e.src.LaunchApp(img, storage, core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	_ = persistState(t, app, ctr, 100)
	preMigrationBlobs := storage.Versions() // adversary snapshots everything so far
	app.Terminate()
	app, err = e.src.LaunchApp(img, storage, core.InitRestore)
	if err != nil {
		t.Fatal(err)
	}

	// Step 2 (migrate): move to the destination, keep transacting there.
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	app.Terminate()
	dstApp, err := e.dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatal(err)
	}
	_ = persistState(t, dstApp, ctr, 60)
	_ = persistState(t, dstApp, ctr, 10)

	// Step 3 (terminate-restart on source with stale persistent state):
	// the adversary restores the pre-migration library blob on the source.
	for i := 0; i < preMigrationBlobs; i++ {
		staleStorage := core.NewMemoryStorage()
		blob, ok := storage.Snapshot(i)
		if !ok {
			t.Fatalf("missing snapshot %d", i)
		}
		if err := staleStorage.Save(blob); err != nil {
			t.Fatal(err)
		}
		forked, err := e.src.LaunchApp(img, staleStorage, core.InitRestore)
		if err != nil {
			// Restoring may fail outright (e.g. frozen blob) — prevented.
			continue
		}
		// If init succeeded (pre-freeze blob), the counters were
		// destroyed before the migration data left the machine, so every
		// counter operation must fail: the forked instance cannot
		// validate or produce versioned state (R3).
		if _, err := forked.Library.ReadCounter(ctr); err == nil {
			t.Fatalf("fork attack succeeded: stale snapshot %d has a working counter", i)
		}
		if _, err := forked.Library.IncrementCounter(ctr); err == nil {
			t.Fatalf("fork attack succeeded: stale snapshot %d can advance versions", i)
		}
		forked.Terminate()
	}
	// The migrated instance is unaffected and fully operational.
	if v, err := dstApp.Library.ReadCounter(ctr); err != nil || v != 3 {
		t.Fatalf("migrated instance counter = %d, %v", v, err)
	}
}

// TestRollbackAttackPreventedByMigrationLibrary runs the §III-C roll-back
// schedule against OUR scheme: stale sealed state fails the version check
// on the destination because the counter's effective value migrated.
func TestRollbackAttackPreventedByMigrationLibrary(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "payment-app")
	app, err := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	// Step 1+2: persist v=1 (balance 100), then keep operating on the
	// source: v=2 (60), v=3 (10). The adversary records every blob.
	blobV1 := persistState(t, app, ctr, 100)
	_ = persistState(t, app, ctr, 60)
	blobV3 := persistState(t, app, ctr, 10)

	// Step 3: migrate.
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	app.Terminate()
	dstApp, err := e.dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatal(err)
	}

	// Step 4+5: the adversary supplies the original v=1 package. Unlike
	// the baseline (where a fresh destination counter restarts at 1 and
	// matches), the migrated effective counter value is 3, so the stale
	// package is REJECTED and the current one accepted (R4).
	stale, accepted := restoreState(t, dstApp, ctr, blobV1)
	if accepted {
		t.Fatalf("rollback attack succeeded: stale v=%d accepted", stale.Version)
	}
	latest, accepted := restoreState(t, dstApp, ctr, blobV3)
	if !accepted {
		t.Fatal("latest state rejected: counter migration broke continuity")
	}
	if latest.Balance != 10 {
		t.Fatalf("latest balance = %d", latest.Balance)
	}
}

// TestRepeatedMigrationRollbackWindowClosed checks that even across
// multiple migrations (source -> dst -> back), no counter value ever
// regresses, so no historical blob ever becomes valid again.
func TestRepeatedMigrationRollbackWindowClosed(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "payment-app")
	app, err := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	type record struct {
		blob    []byte
		version uint32
	}
	var history []record

	persist := func(a *cloud.App, balance int) {
		blob := persistState(t, a, ctr, balance)
		v, err := a.Library.ReadCounter(ctr)
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, record{blob: blob, version: v})
	}

	persist(app, 100)
	persist(app, 90)
	app2 := migrateApp(t, e, app, e.dst)
	persist(app2, 80)
	app3 := migrateApp(t, e, app2, e.src)
	persist(app3, 70)

	// Only the newest blob passes the version check; every older blob is
	// rejected on the final machine.
	cur, err := app3.Library.ReadCounter(ctr)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range history {
		st, accepted := restoreState(t, app3, ctr, rec.blob)
		wantAccept := rec.version == cur
		if accepted != wantAccept {
			t.Fatalf("blob %d (v=%d, cur=%d): accepted=%v", i, st.Version, cur, accepted)
		}
	}
}

// TestStaleLibraryBlobCannotResurrectCounters: replaying ANY historical
// library blob (not just the frozen one) on the source machine yields an
// unusable library, because the hardware counters backing it are gone.
func TestStaleLibraryBlobCannotResurrectCounters(t *testing.T) {
	e := newEnv(t)
	img := testAppImage(t, "app")
	storage := core.NewMemoryStorage()
	app, _ := e.src.LaunchApp(img, storage, core.InitNew)
	ctr, _, _ := app.Library.CreateCounter()
	for i := 0; i < 4; i++ {
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	app.Terminate()

	versions := storage.Versions()
	var resurrections int
	for i := 0; i < versions; i++ {
		if !storage.Rollback(i) {
			t.Fatalf("rollback to %d failed", i)
		}
		stale, err := e.src.LaunchApp(img, storage, core.InitRestore)
		if errors.Is(err, core.ErrFrozen) {
			continue // frozen blob: refused outright
		}
		if err != nil {
			t.Fatalf("unexpected init error: %v", err)
		}
		if _, err := stale.Library.IncrementCounter(ctr); err == nil {
			resurrections++
		}
		stale.Terminate()
	}
	if resurrections != 0 {
		t.Fatalf("%d stale blobs resurrected a usable counter", resurrections)
	}
}
