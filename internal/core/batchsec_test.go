package core

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/sgx"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// Regression tests for the batch pipeline's destination-side hardening:
// ack-stream nonce reuse on chunk replay, authenticated batch aborts,
// authenticated resume refusals, and the cap eviction of the
// peer-populated tables. These drive the unexported handlers directly on
// a bare MigrationEnclave — none of the paths under test touch the
// enclave, quoting, or IAS machinery.

// newBareME builds a MigrationEnclave with just the state the network
// handlers use (no enclave, no attestation plumbing, nil observer).
func newBareME() *MigrationEnclave {
	return &MigrationEnclave{
		addr:      "bare-me",
		outgoing:  make(map[string]*outgoingRecord),
		incoming:  make(map[sgx.Measurement]*incomingRecord),
		restored:  make(map[string]bool),
		sessions:  make(map[string]*resumableSession),
		accepted:  make(map[string]*resumableSession),
		rxBatches: make(map[string]*batchRecvState),
		doneQueue: make(map[string][][]byte),
	}
}

// installRxBatch derives a batch's directional keys from secret+counter,
// installs the receive state on me, and returns the sender-side sealers.
func installRxBatch(t *testing.T, me *MigrationEnclave, secret []byte, counter uint64, batchID []byte, count uint32) (data, acks *xcrypto.StreamSealer) {
	t.Helper()
	dataKey, ackKey := batchKeys(secret, counter)
	st, err := newBatchRecvState(dataKey, ackKey, nil, false, count)
	if err != nil {
		t.Fatal(err)
	}
	st.authed = true
	me.mu.Lock()
	me.storeRxBatchLocked(batchID, st)
	me.mu.Unlock()
	data, err = xcrypto.NewStreamSealer(dataKey)
	if err != nil {
		t.Fatal(err)
	}
	acks, err = xcrypto.NewStreamSealer(ackKey)
	if err != nil {
		t.Fatal(err)
	}
	return data, acks
}

// sealRecordChunk builds one sealed chunk carrying a single batch record
// at the given index (the envelope is garbage, so the member decodes to
// an error status — which still exercises the full ack path).
func sealRecordChunk(t *testing.T, data *xcrypto.StreamSealer, batchID []byte, seq uint64, index uint32) []byte {
	t.Helper()
	recRaw, err := encodeBatchRecord(&batchRecord{Index: index, Envelope: []byte("not-an-envelope")})
	if err != nil {
		t.Fatal(err)
	}
	payload := appendU32(nil, uint32(len(recRaw)))
	payload = append(payload, recRaw...)
	raw, err := encodeBatchChunk(&batchChunk{
		BatchID: batchID,
		Seq:     seq,
		Sealed:  data.SealAt(seq, payload, batchID),
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestBatchAckReplayReturnsIdenticalCiphertext is the nonce-reuse
// regression: re-presenting a chunk AFTER more records have drained must
// return byte-identical ack ciphertext, never a fresh seal of the grown
// cumulative status list at the same (key, seq).
func TestBatchAckReplayReturnsIdenticalCiphertext(t *testing.T) {
	me := newBareME()
	secret := bytes.Repeat([]byte{0x42}, 32)
	batchID := []byte("batch-id-0123456")
	data, acks := installRxBatch(t, me, secret, 7, batchID, 100)

	chunk0 := sealRecordChunk(t, data, batchID, 0, 0)
	ack0, err := me.handleBatchChunk(chunk0)
	if err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	// More records drain: the cumulative status list grows.
	if _, err := me.handleBatchChunk(sealRecordChunk(t, data, batchID, 1, 1)); err != nil {
		t.Fatalf("second chunk: %v", err)
	}
	replayAck, err := me.handleBatchChunk(chunk0)
	if err != nil {
		t.Fatalf("replayed chunk: %v", err)
	}
	if !bytes.Equal(ack0, replayAck) {
		t.Fatal("replayed chunk produced a different ack ciphertext at the same seq (AES-GCM nonce reuse)")
	}
	// The cached ack still opens to the original one-member status list.
	pt, err := acks.OpenAt(0, replayAck, batchID)
	if err != nil {
		t.Fatalf("open replayed ack: %v", err)
	}
	list, err := decodeBatchStatusList(pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Statuses) != 1 {
		t.Fatalf("replayed ack carries %d statuses, want the original 1", len(list.Statuses))
	}
}

// TestBatchAbortAuthenticatedAndFreesState: only the holder of the
// batch's data key can abort it; a genuine abort frees the reassembly
// state and converges on repeat.
func TestBatchAbortAuthenticatedAndFreesState(t *testing.T) {
	me := newBareME()
	secret := bytes.Repeat([]byte{0x17}, 32)
	batchID := []byte("batch-id-abcdefg")
	data, _ := installRxBatch(t, me, secret, 3, batchID, 4)

	// Forged abort (wrong key) is rejected and the state survives.
	wrongKey, _ := batchKeys(bytes.Repeat([]byte{0x18}, 32), 3)
	forger, err := xcrypto.NewStreamSealer(wrongKey)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := encodeBatchAbort(&batchAbort{
		BatchID: batchID,
		Sealed:  forger.SealAt(batchAbortSeq, []byte(batchAbortLabel), batchID),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := me.handleBatchAbort(forged); err == nil {
		t.Fatal("forged batch abort accepted")
	}
	if me.ActiveRxBatches() != 1 {
		t.Fatal("forged abort freed the batch state")
	}

	// The genuine abort frees the state.
	genuine, err := encodeBatchAbort(&batchAbort{
		BatchID: batchID,
		Sealed:  data.SealAt(batchAbortSeq, []byte(batchAbortLabel), batchID),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := me.handleBatchAbort(genuine); err != nil {
		t.Fatalf("genuine abort: %v", err)
	}
	if me.ActiveRxBatches() != 0 {
		t.Fatal("abort did not free the batch state")
	}
	// A duplicate abort converges silently.
	if _, err := me.handleBatchAbort(genuine); err != nil {
		t.Fatalf("duplicate abort: %v", err)
	}
}

// TestBatchResumeRefusalAuthentication: the destination MACs a refusal
// only when the presented ticket proves possession of the session secret
// (counter replay, stale epoch); refusals of unknown sessions or
// bad-MAC tickets stay unauthenticated so they cannot become an oracle.
func TestBatchResumeRefusalAuthentication(t *testing.T) {
	me := newBareME()
	me.epoch = bytes.Repeat([]byte{0xEE}, 16)
	secret := bytes.Repeat([]byte{0x33}, 32)
	sid := []byte("session-id-00001")
	me.accepted[hex.EncodeToString(sid)] = &resumableSession{
		id: sid, secret: secret, epoch: me.epoch, counter: 5,
	}

	refusalFor := func(t *testing.T, ticket *resumeTicket) *batchOfferReply {
		t.Helper()
		raw, err := encodeBatchOffer(&batchOffer{Count: ticket.Count, Resume: ticket})
		if err != nil {
			t.Fatal(err)
		}
		replyRaw, err := me.handleBatchOffer(raw)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := decodeBatchOfferReply(replyRaw)
		if err != nil {
			t.Fatal(err)
		}
		if !reply.Refused {
			t.Fatal("expected a refusal")
		}
		return reply
	}

	// Counter replay with a valid ticket MAC: refusal must be MACed.
	replayed := &resumeTicket{
		SessionID: sid, Epoch: me.epoch, Counter: 3, Count: 2,
		MAC: resumeMAC(secret, sid, me.epoch, 3, 2),
	}
	reply := refusalFor(t, replayed)
	if !macEqual(reply.RefuseMAC, resumeRefuseMAC(secret, sid, 3)) {
		t.Fatal("secret-holding destination did not authenticate its refusal")
	}

	// Unknown session: nothing to MAC with.
	unknown := &resumeTicket{
		SessionID: []byte("no-such-session!"), Epoch: me.epoch, Counter: 9, Count: 2,
		MAC: bytes.Repeat([]byte{1}, 32),
	}
	if reply := refusalFor(t, unknown); len(reply.RefuseMAC) != 0 {
		t.Fatal("refusal of an unknown session carried a refusal MAC")
	}

	// Valid session but forged ticket MAC: no refusal MAC either.
	badMAC := &resumeTicket{
		SessionID: sid, Epoch: me.epoch, Counter: 9, Count: 2,
		MAC: bytes.Repeat([]byte{2}, 32),
	}
	if reply := refusalFor(t, badMAC); len(reply.RefuseMAC) != 0 {
		t.Fatal("refusal of a secretless ticket carried a refusal MAC")
	}
}

// scriptedNet is a Messenger whose Send is answered by a test callback
// (the on-path attacker / scripted destination).
type scriptedNet struct {
	reply func(kind string, payload []byte) ([]byte, error)
}

func (s *scriptedNet) Register(transport.Address, transport.Handler) error { return nil }
func (s *scriptedNet) Unregister(transport.Address)                        {}
func (s *scriptedNet) Send(_, _ transport.Address, kind string, payload []byte) ([]byte, error) {
	_, inner := obs.Extract(payload)
	return s.reply(kind, inner)
}

// TestForgedRefusalDoesNotEvictCachedSession: an on-path attacker can
// forge an (unauthenticated) refusal, which costs one fresh handshake
// but must NOT evict the source's cached session; only a refusal MACed
// under the session secret may.
func TestForgedRefusalDoesNotEvictCachedSession(t *testing.T) {
	me := newBareME()
	secret := bytes.Repeat([]byte{0x55}, 32)
	sid := []byte("session-id-00002")
	dest := transport.Address("dest-me")
	me.sessions[string(dest)] = &resumableSession{id: sid, secret: secret, counter: 7}

	// Forged refusal: no proof of the session secret.
	me.net = &scriptedNet{reply: func(kind string, _ []byte) ([]byte, error) {
		if kind != kindBatchOffer {
			return nil, fmt.Errorf("unexpected kind %q", kind)
		}
		return encodeBatchOfferReply(&batchOfferReply{Refused: true})
	}}
	bs, err := me.beginResumed(dest, 2, BatchOpts{}, obs.TraceContext{})
	if err != nil || bs != nil {
		t.Fatalf("refusal should fall back (nil, nil), got (%v, %v)", bs, err)
	}
	if me.sessions[string(dest)] == nil {
		t.Fatal("forged refusal evicted the cached session")
	}

	// Authenticated refusal: the destination proves it holds the secret
	// and refuses the exact counter the source reserved — evict.
	me.net = &scriptedNet{reply: func(_ string, payload []byte) ([]byte, error) {
		offer, err := decodeBatchOffer(payload)
		if err != nil {
			return nil, err
		}
		return encodeBatchOfferReply(&batchOfferReply{
			Refused:   true,
			RefuseMAC: resumeRefuseMAC(secret, sid, offer.Resume.Counter),
		})
	}}
	bs, err = me.beginResumed(dest, 2, BatchOpts{}, obs.TraceContext{})
	if err != nil || bs != nil {
		t.Fatalf("refusal should fall back (nil, nil), got (%v, %v)", bs, err)
	}
	if me.sessions[string(dest)] != nil {
		t.Fatal("authenticated refusal did not evict the cached session")
	}
}

// TestDestinationTablesBounded: the peer-populated accepted-session and
// reassembly tables stay under their caps, evicting least-recently-used
// entries first.
func TestDestinationTablesBounded(t *testing.T) {
	me := newBareME()
	for i := 0; i < maxAcceptedSessions+50; i++ {
		sid := []byte(fmt.Sprintf("session-%08d", i))
		me.mu.Lock()
		me.storeAcceptedLocked(&resumableSession{id: sid, secret: []byte("s")})
		me.mu.Unlock()
	}
	if got := me.AcceptedSessions(); got != maxAcceptedSessions {
		t.Fatalf("accepted sessions = %d, want cap %d", got, maxAcceptedSessions)
	}
	// The oldest entries were evicted, the newest survive.
	me.mu.Lock()
	_, oldestAlive := me.accepted[hex.EncodeToString([]byte(fmt.Sprintf("session-%08d", 49)))]
	_, newestAlive := me.accepted[hex.EncodeToString([]byte(fmt.Sprintf("session-%08d", maxAcceptedSessions+49)))]
	me.mu.Unlock()
	if oldestAlive {
		t.Fatal("least-recently-admitted session survived eviction")
	}
	if !newestAlive {
		t.Fatal("newest session was evicted")
	}

	dataKey, ackKey := batchKeys(bytes.Repeat([]byte{9}, 32), 0)
	for i := 0; i < maxRxBatches+20; i++ {
		st, err := newBatchRecvState(dataKey, ackKey, nil, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		me.mu.Lock()
		me.storeRxBatchLocked([]byte(fmt.Sprintf("batch-%08d", i)), st)
		me.mu.Unlock()
	}
	if got := me.ActiveRxBatches(); got != maxRxBatches {
		t.Fatalf("rx batches = %d, want cap %d", got, maxRxBatches)
	}
}
