package core_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestCounterSlotReuseAfterDestroy(t *testing.T) {
	e := newEnv(t)
	app, _ := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitNew)
	id0, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	id1, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if id0 == id1 {
		t.Fatal("two live counters share a slot")
	}
	// Advance counter 1 so we can verify isolation after slot reuse.
	if _, err := app.Library.IncrementCounter(id1); err != nil {
		t.Fatal(err)
	}
	if err := app.Library.DestroyCounter(id0); err != nil {
		t.Fatal(err)
	}
	id2, v, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id0 {
		t.Fatalf("freed slot not reused: got %d want %d", id2, id0)
	}
	if v != 0 {
		t.Fatalf("reused slot starts at %d", v)
	}
	// The reused slot is a fresh hardware counter, not the old one.
	if got, _ := app.Library.ReadCounter(id2); got != 0 {
		t.Fatalf("reused slot reads %d", got)
	}
	if got, _ := app.Library.ReadCounter(id1); got != 1 {
		t.Fatalf("neighbour slot disturbed: %d", got)
	}
}

func TestLibraryConcurrentCounterUse(t *testing.T) {
	e := newEnv(t)
	app, _ := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitNew)
	id, _, err := app.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perW    = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := app.Library.IncrementCounter(id); err != nil {
					t.Errorf("increment: %v", err)
					return
				}
				if _, err := app.Library.ReadCounter(id); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := app.Library.ReadCounter(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != workers*perW {
		t.Fatalf("final value = %d, want %d", got, workers*perW)
	}
}

func TestLibraryConcurrentSealing(t *testing.T) {
	e := newEnv(t)
	app, _ := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitNew)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("payload-%d", w))
			for i := 0; i < 20; i++ {
				blob, err := app.Library.SealMigratable(nil, payload)
				if err != nil {
					t.Errorf("seal: %v", err)
					return
				}
				pt, _, err := app.Library.UnsealMigratable(blob)
				if err != nil {
					t.Errorf("unseal: %v", err)
					return
				}
				if string(pt) != string(payload) {
					t.Errorf("payload mismatch")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestMigrationWithZeroCounters(t *testing.T) {
	// An enclave that only uses migratable sealing (no counters) still
	// migrates: the MSK must carry over.
	e := newEnv(t)
	img := testAppImage(t, "seal-only")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	blob, err := app.Library.SealMigratable(nil, []byte("just sealed data"))
	if err != nil {
		t.Fatal(err)
	}
	dstApp := migrateApp(t, e, app, e.dst)
	pt, _, err := dstApp.Library.UnsealMigratable(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "just sealed data" {
		t.Fatal("payload mismatch")
	}
	if dstApp.Library.ActiveCounters() != 0 {
		t.Fatal("phantom counters after migration")
	}
}

func TestDestinationKeepsFullCounterCapacity(t *testing.T) {
	// The library wraps rather than replaces hardware counters, so the
	// migrated enclave still has the full 256-slot budget (§VI-B).
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if _, _, err := app.Library.CreateCounter(); err != nil {
		t.Fatal(err)
	}
	dstApp := migrateApp(t, e, app, e.dst)
	// Allocate a second counter on the destination: works, and the two
	// stay independent.
	id2, _, err := dstApp.Library.CreateCounter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dstApp.Library.IncrementCounter(id2); err != nil {
		t.Fatal(err)
	}
	if got, _ := dstApp.Library.ReadCounter(0); got != 0 {
		t.Fatalf("migrated counter disturbed: %d", got)
	}
}

func TestSealedDataFromBeforeFirstMigrationSurvivesTwo(t *testing.T) {
	e := newEnv(t)
	third, err := e.dc.AddMachine("machine-3")
	if err != nil {
		t.Fatal(err)
	}
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	blob, err := app.Library.SealMigratable(nil, []byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	app = migrateApp(t, e, app, e.dst)
	app = migrateApp(t, e, app, third)
	pt, _, err := app.Library.UnsealMigratable(blob)
	if err != nil {
		t.Fatalf("unseal after two hops: %v", err)
	}
	if string(pt) != "original" {
		t.Fatal("payload mismatch after two hops")
	}
}

func TestInitMigratedThenRestartUsesRestore(t *testing.T) {
	// After a successful migration the destination's persisted blob is a
	// normal (unfrozen) library state: plain restarts use InitRestore.
	e := newEnv(t)
	img := testAppImage(t, "app")
	app, _ := e.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	ctr, _, _ := app.Library.CreateCounter()
	if _, err := app.Library.IncrementCounter(ctr); err != nil {
		t.Fatal(err)
	}
	if err := app.Library.StartMigration(e.dst.MEAddress()); err != nil {
		t.Fatal(err)
	}
	app.Terminate()
	dstStorage := core.NewMemoryStorage()
	dstApp, err := e.dst.LaunchApp(img, dstStorage, core.InitMigrated)
	if err != nil {
		t.Fatal(err)
	}
	dstApp.Terminate()
	// Plain restart on the destination machine.
	restarted, err := e.dst.LaunchApp(img, dstStorage, core.InitRestore)
	if err != nil {
		t.Fatalf("restart after migration: %v", err)
	}
	if v, err := restarted.Library.ReadCounter(ctr); err != nil || v != 1 {
		t.Fatalf("counter after restart = %d, %v", v, err)
	}
}

func TestInvalidInitState(t *testing.T) {
	e := newEnv(t)
	enclave, err := e.src.HW.Load(testAppImage(t, "app"))
	if err != nil {
		t.Fatal(err)
	}
	lib := core.NewLibrary(enclave, e.src.Counters, core.NewMemoryStorage())
	if err := lib.Init(core.InitState(99), e.src.ME); err == nil {
		t.Fatal("invalid init state accepted")
	}
	if err := lib.Init(core.InitNew, nil); err == nil {
		t.Fatal("nil migration enclave accepted")
	}
}

func TestInitStateString(t *testing.T) {
	for st, want := range map[core.InitState]string{
		core.InitNew:       "new",
		core.InitRestore:   "restore",
		core.InitMigrated:  "migrated",
		core.InitState(42): "unknown",
	} {
		if st.String() != want {
			t.Fatalf("%d.String() = %s", st, st.String())
		}
	}
}

func TestMigrationCompleteRequiresStartedMigration(t *testing.T) {
	e := newEnv(t)
	app, _ := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitNew)
	if _, err := app.Library.MigrationComplete(); err == nil {
		t.Fatal("MigrationComplete before StartMigration succeeded")
	}
}

func TestLibraryOpsFailAfterEnclaveDestroyed(t *testing.T) {
	e := newEnv(t)
	app, _ := e.src.LaunchApp(testAppImage(t, "app"), core.NewMemoryStorage(), core.InitNew)
	app.Terminate()
	if _, err := app.Library.SealMigratable(nil, []byte("x")); err == nil {
		t.Fatal("dead enclave sealed data")
	}
	if _, _, err := app.Library.CreateCounter(); err == nil {
		t.Fatal("dead enclave created counter")
	}
	if err := app.Library.StartMigration(e.dst.MEAddress()); err == nil {
		t.Fatal("dead enclave started migration")
	}
}
