package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/pse"
	"repro/internal/seal"
	"repro/internal/sgx"
	"repro/internal/xcrypto"
)

// Escrow errors.
var (
	// ErrNoEscrow reports an escrow operation on a library that has no
	// escrow service configured (the machine is not rack-associated).
	ErrNoEscrow = errors.New("core: no state escrow configured")
	// ErrEscrowInvalid reports an escrow record that failed authentication
	// or consistency checks: forged, corrupted, or mix-and-matched fields.
	ErrEscrowInvalid = errors.New("core: escrow record failed authentication")
	// ErrEscrowStale reports an escrow record whose binding-counter value
	// does not match the replicated counter: a replayed old state version
	// must never be resurrected (rollback protection for the Table II
	// blob itself).
	ErrEscrowStale = errors.New("core: escrow record does not match the replicated binding counter")
	// ErrEscrowConsumed reports a recovery whose binding counter is
	// already destroyed: the state was recovered (or migrated away)
	// before, and a second resurrection would fork the enclave.
	ErrEscrowConsumed = errors.New("core: escrow binding counter already destroyed; state was recovered or migrated")
	// ErrRecoveredAway reports a library whose state was recovered on
	// another machine while this copy was thought dead: the binding
	// counter is gone, so this copy freezes and must never operate again.
	ErrRecoveredAway = errors.New("core: state was recovered on another machine; this copy is frozen")
	// ErrStateStale reports a restore from a sealed blob older than the
	// binding counter says is current: the untrusted storage replayed
	// stale persistent state.
	ErrStateStale = errors.New("core: sealed library state is stale (binding counter ahead of blob)")
)

// StateEscrow is the rack escrow service the Migration Library pushes its
// sealed Table II blob to on every update: durable storage that — unlike
// the machine-local Storage — survives the machine, because it is backed
// by the rack's replicated counter group (implemented by *pserepl.Group).
// The escrow service is untrusted for everything but availability: blobs
// are sealed, and freshness/single-use come from the binding counter, not
// from the store.
type StateEscrow interface {
	// EscrowPut stores (or supersedes) the escrow record for one enclave
	// instance, committing it on a quorum of rack replicas.
	EscrowPut(owner sgx.Measurement, id [16]byte, version uint32, bind pse.UUID, blob []byte) error
	// EscrowGet fetches the highest-version escrow record a quorum of
	// replicas holds for the instance.
	EscrowGet(owner sgx.Measurement, id [16]byte) (version uint32, bind pse.UUID, blob []byte, err error)
}

// escrowStateAAD labels the MSK-sealed Table II blob inside an escrow
// record, so an escrowed blob can never be confused with (or substituted
// for) a locally persisted one.
var escrowStateAAD = []byte("escrowed-library-state")

// escrowKeyAAD binds the wrapped MSK to every field of its escrow record:
// owner identity, escrow instance, state version, and the binding
// counter's full UUID. Any mix-and-match of a key box with other record
// fields fails AEAD authentication.
func escrowKeyAAD(owner sgx.Measurement, id [16]byte, version uint32, bind pse.UUID) []byte {
	const label = "escrow-msk"
	out := make([]byte, 0, len(label)+len(owner)+len(id)+4+4+len(bind.Nonce))
	out = append(out, label...)
	out = append(out, owner[:]...)
	out = append(out, id[:]...)
	out = appendU32(out, version)
	out = appendU32(out, bind.ID)
	return append(out, bind.Nonce[:]...)
}

// encodeEscrowRecord frames the two sealed components of an escrow
// record: the key box (MSK wrapped under the rack escrow key) and the
// state blob (Table II state sealed under the MSK by the shared
// statesealer).
func encodeEscrowRecord(keyBox, state []byte) []byte {
	out := make([]byte, 0, 2+4+len(keyBox)+4+len(state))
	out = appendHeader(out, tagEscrowRecord)
	out = appendBytes(out, keyBox)
	return appendBytes(out, state)
}

// decodeEscrowRecord parses an escrow record fetched from the (untrusted)
// escrow store. The returned slices alias the input.
func decodeEscrowRecord(raw []byte) (keyBox, state []byte, err error) {
	rd := newWireReader(raw)
	if !rd.header(tagEscrowRecord) {
		return nil, nil, rd.errState()
	}
	keyBox = rd.bytes()
	state = rd.bytes()
	if err := rd.done(); err != nil {
		return nil, nil, err
	}
	return keyBox, state, nil
}

// EnableEscrow wires the library to its rack's escrow service and escrow
// sealing key before Init (or Recover). The rack sealer is provisioned to
// the enclave during the secure setup phase, exactly like Migration
// Enclave credentials and replica group keys: the cloud layer installs it
// in-process when the app is launched on a rack-associated machine.
//
// With escrow enabled, every persisted Table II blob is additionally
// migratable-sealed and pushed to the rack, rollback-bound to a dedicated
// replicated binding counter — so the state survives this CPU, and a dead
// machine's enclaves can be resurrected on any rack peer (Recover).
func (l *Library) EnableEscrow(esc StateEscrow, rack *seal.StateSealer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.escrow = esc
	l.rack = rack
}

// EscrowEnabled reports whether the library escrows its state.
func (l *Library) EscrowEnabled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.escrow != nil
}

// EscrowID returns the library's escrow instance ID (valid once the
// library is initialized with escrow enabled). The cloud layer records it
// per app so a dead machine's enclaves can be looked up in the rack
// escrow.
func (l *Library) EscrowID() ([16]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.escrow == nil || !l.initialized.Load() {
		return [16]byte{}, false
	}
	return l.st.EscrowID, true
}

// initEscrowLocked sets up the escrow identity of a fresh library state
// (InitNew, InitMigrated, and the re-binding step of Recover): a random
// escrow instance ID when none is set, and a fresh replicated binding
// counter. Callers hold mu and have escrow configured.
func (l *Library) initEscrowLocked() error {
	if l.st.EscrowID == ([16]byte{}) {
		idBytes, err := randomEscrowID()
		if err != nil {
			return err
		}
		l.st.EscrowID = idBytes
	}
	bind, _, err := l.counters.Create(l.enclave)
	if err != nil {
		return fmt.Errorf("create escrow binding counter: %w", err)
	}
	l.st.BindUUID = bind
	l.st.BindVer = 0
	return nil
}

// releaseEscrowBindingLocked destroys the library's binding counter,
// best-effort — the cleanup path of an initialization that created one
// and then failed before the library ever served. Callers hold mu.
func (l *Library) releaseEscrowBindingLocked() {
	if l.escrow == nil || l.st.BindUUID.ID == 0 {
		return
	}
	_, _ = l.counters.DestroyAndRead(l.enclave, l.st.BindUUID)
	l.st.BindUUID = pse.UUID{}
	l.st.BindVer = 0
}

// escrowPushLocked seals the encoded Table II state for the rack and puts
// it to the escrow store at the library's current binding version.
// Callers hold mu, have escrow configured, and have already advanced
// st.BindVer to the version being pushed.
func (l *Library) escrowPushLocked(rawState []byte) error {
	sealedState, err := l.mskSealer.Seal(escrowStateAAD, rawState)
	if err != nil {
		return fmt.Errorf("seal escrow state: %w", err)
	}
	owner := l.enclave.MREnclave()
	keyBox, err := l.rack.Wrap(l.st.MSK[:], escrowKeyAAD(owner, l.st.EscrowID, l.st.BindVer, l.st.BindUUID))
	if err != nil {
		return fmt.Errorf("wrap MSK for escrow: %w", err)
	}
	rec := encodeEscrowRecord(keyBox, sealedState)
	if err := l.escrow.EscrowPut(owner, l.st.EscrowID, l.st.BindVer, l.st.BindUUID, rec); err != nil {
		return fmt.Errorf("escrow state blob: %w", err)
	}
	return nil
}

// Recover is the restart-anywhere entry point: it initializes the library
// from the rack-escrowed state of a dead machine's enclave instead of
// local sealed storage or a migration. The caller (the cloud operator's
// recovery path) names the escrow instance; the library fetches the
// escrow record from the quorum, authenticates and unseals it through the
// rack key and the MSK, and — before operating — must WIN the binding
// counter's DestroyAndRead at exactly the sealed version:
//
//   - a forged or tampered record fails AEAD authentication (ErrEscrowInvalid);
//   - a replayed stale record's version is below the live counter
//     (ErrEscrowStale) — and the counter is read before it is destroyed,
//     so a stale record cannot burn the fresh one's binding;
//   - a second resurrection (or recovery of a migrated-away enclave)
//     finds the binding counter destroyed (ErrEscrowConsumed).
//
// Winning the destroy establishes single use exactly like a migration
// freeze: of any set of racing recoveries, the replicated group's
// coordinator-serialized destroy lets exactly one capture the counter at
// the sealed value. The winner re-binds to a fresh counter (version
// continues monotonically), re-seals natively on the new CPU, and
// re-escrows.
func (l *Library) Recover(me *MigrationEnclave, escrowID [16]byte) error {
	return l.RecoverCtx(obs.TraceContext{}, me, escrowID)
}

// RecoverCtx is Recover under an existing trace context: the recovery
// spans (escrow fetch, binding win, resume) join the caller's trace.
func (l *Library) RecoverCtx(tc obs.TraceContext, me *MigrationEnclave, escrowID [16]byte) error {
	if err := l.enclave.ECall(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.initialized.Load() {
		return ErrAlreadyInitialized
	}
	if l.escrow == nil || l.rack == nil {
		return ErrNoEscrow
	}
	if me == nil {
		return errors.New("core: migration enclave required")
	}
	sp, tc := l.obs.StartSpan("lib.recover", tc)
	if sp != nil {
		sp.Site = l.actor()
		defer sp.End()
	}
	session, sessionID, err := me.ConnectLocal(l.enclave)
	if err != nil {
		return fmt.Errorf("attest migration enclave: %w", err)
	}
	l.me, l.session, l.sessionID = me, session, sessionID

	owner := l.enclave.MREnclave()
	getSp, _ := l.obs.StartSpan("escrow.get", tc)
	ver, bind, blob, err := l.escrow.EscrowGet(owner, escrowID)
	getSp.End()
	if err != nil {
		return fmt.Errorf("fetch escrowed state: %w", err)
	}
	st, mskSealer, err := l.openEscrowRecord(owner, escrowID, ver, bind, blob)
	if err != nil {
		return err
	}

	// Binding check, read-before-destroy: a stale record is rejected
	// WITHOUT destroying the live binding counter, so feeding an old
	// record to a recovery cannot make the fresh one unrecoverable.
	// (faultSkipBindingWin deletes the check and the win below under the
	// chaosmut build tag — the chaos mutation self-test.)
	if !faultSkipBindingWin {
		cur, err := l.counters.Read(l.enclave, bind)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrEscrowConsumed, err)
		}
		if cur != ver {
			return fmt.Errorf("%w: record version %d, counter at %d", ErrEscrowStale, ver, cur)
		}
	}

	// Re-bind BEFORE the win: the fresh binding counter is created and
	// fast-forwarded to the record's version while the old binding is
	// still intact, so any failure up to the destroy leaves nothing
	// consumed and the recovery simply retries. (A recovery that then
	// loses the destroy race leaks its pre-created counter — one slot
	// per lost race, reclaimed best-effort below.)
	newBind, _, err := l.counters.Create(l.enclave)
	if err != nil {
		return fmt.Errorf("create escrow binding counter: %w", err)
	}
	dropNewBind := func() { _, _ = l.counters.DestroyAndRead(l.enclave, newBind) }
	if ver > 0 {
		if _, err := l.counters.IncrementN(l.enclave, newBind, int(ver)); err != nil {
			dropNewBind()
			return fmt.Errorf("fast-forward binding counter: %w", err)
		}
	}

	// The win: capture the old binding at exactly the sealed version.
	final := ver
	if !faultSkipBindingWin {
		winSp, _ := l.obs.StartSpan("binding.win", tc)
		final, err = l.counters.DestroyAndRead(l.enclave, bind)
		winSp.End()
		if err != nil {
			dropNewBind()
			return fmt.Errorf("%w: %v", ErrEscrowConsumed, err)
		}
		l.obs.Event(obs.EventBindingWin, l.actor(),
			fmt.Sprintf("won escrow binding %08x at version %d", bind.ID, final), tc)
	}
	if final != ver {
		// An increment raced between read and destroy: the original
		// library was alive and persisted concurrently — and this destroy
		// just froze it (its next persist finds the binding gone). The
		// state it persisted is stamped with exactly the value captured
		// here, so follow the binding: re-fetch and proceed from that
		// newest record instead of stranding both copies. The racing
		// persist's escrow push may still be in flight (the binding
		// commits a few round trips before the record lands), so poll
		// before giving up.
		//
		// Past this point failures are terminal for the instance, not
		// retryable: the binding is consumed, so no later recovery can
		// ever win any record again — they report ErrEscrowConsumed, the
		// truthful state, rather than a retryable-looking ErrEscrowStale.
		// This branch is only reachable when a recovery races a LIVE
		// original, which the management plane refuses (ErrMachineUp /
		// ErrInstanceAlive); the residual hazard is the price of the
		// one-winner destroy, the same §V-D judgment call migration
		// redirects make.
		var ver2 uint32
		var bind2 pse.UUID
		var blob2 []byte
		var gerr error
		for attempt := 0; attempt < 16; attempt++ {
			ver2, bind2, blob2, gerr = l.escrow.EscrowGet(owner, escrowID)
			if gerr == nil && bind2 == bind && ver2 == final {
				break
			}
			time.Sleep(time.Duration(attempt+1) * time.Millisecond)
		}
		if gerr != nil || bind2 != bind || ver2 != final {
			dropNewBind()
			return fmt.Errorf("%w: binding captured at %d but no record at that version arrived", ErrEscrowConsumed, final)
		}
		st, mskSealer, err = l.openEscrowRecord(owner, escrowID, ver2, bind2, blob2)
		if err != nil {
			dropNewBind()
			return fmt.Errorf("%w: %v", ErrEscrowConsumed, err)
		}
		if _, err := l.counters.IncrementN(l.enclave, newBind, int(final-ver)); err != nil {
			dropNewBind()
			return fmt.Errorf("%w: fast-forward failed: %v", ErrEscrowConsumed, err)
		}
		ver = final
	}

	// Won the binding: install the state on the fresh binding counter.
	// The version continues monotonically across binding epochs so the
	// escrow store's supersede rule stays a plain version comparison.
	l.st = *st
	l.mskSealer = mskSealer
	l.st.EscrowID = escrowID
	l.st.BindUUID = newBind
	l.st.BindVer = ver
	// Re-seal natively on THIS machine's CPU and re-escrow at ver+1.
	// Past the win this MUST NOT fail the recovery: the old record can
	// never be won again, so destroying this — now the only — copy over
	// a transient quorum blip would brick the instance. The library is
	// fully consistent in memory (binding at ver matches BindVer); any
	// later control-plane persist re-runs both tiers. The exposure until
	// then is the same window a migration has between freeze and
	// delivery.
	_ = l.persistLocked()
	l.publishAllSlotsLocked()
	l.initialized.Store(true)
	l.obs.Event(obs.EventResurrection, l.actor(),
		fmt.Sprintf("restored from escrow %x at version %d", escrowID[:4], ver), tc)
	return nil
}

// openEscrowRecord authenticates and unseals one escrow record: key box
// under the rack escrow key (AAD-bound to every clear field), state blob
// under the recovered MSK, then cross-checks the sealed fields against
// the store's clear fields (the sealed state is the authority). A frozen
// record reports ErrFrozen: the enclave migrated away after escrowing.
func (l *Library) openEscrowRecord(owner sgx.Measurement, escrowID [16]byte, ver uint32, bind pse.UUID, blob []byte) (*libraryState, *seal.StateSealer, error) {
	st, mskSealer, err := openEscrowRecordRaw(l.rack, owner, escrowID, ver, bind, blob)
	if err != nil {
		return nil, nil, err
	}
	if st.Frozen != 0 {
		return nil, nil, ErrFrozen
	}
	return st, mskSealer, nil
}

// openEscrowRecordRaw is the shared record authentication behind library
// recovery, escrow decommissioning, and federation mirroring. It does
// NOT reject frozen records — callers decide what a frozen (migrated-
// away) record means for them. Every caller runs inside a trusted
// component that legitimately holds the rack escrow key: the recovering
// library, or the operator's decommission/mirror agent enclave the key
// was provisioned to.
func openEscrowRecordRaw(rack *seal.StateSealer, owner sgx.Measurement, escrowID [16]byte, ver uint32, bind pse.UUID, blob []byte) (*libraryState, *seal.StateSealer, error) {
	keyBox, sealedState, err := decodeEscrowRecord(blob)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrEscrowInvalid, err)
	}
	msk, err := rack.Unwrap(keyBox, escrowKeyAAD(owner, escrowID, ver, bind))
	if err != nil || len(msk) != MSKSize {
		return nil, nil, fmt.Errorf("%w: key box rejected", ErrEscrowInvalid)
	}
	mskSealer, err := seal.NewStateSealer(msk)
	if err != nil {
		return nil, nil, fmt.Errorf("msk cipher: %w", err)
	}
	raw, aad, err := mskSealer.Unseal(sealedState)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: state blob rejected", ErrEscrowInvalid)
	}
	if string(aad) != string(escrowStateAAD) {
		return nil, nil, fmt.Errorf("%w: wrong state blob label", ErrEscrowInvalid)
	}
	st, err := decodeLibraryState(raw)
	if err != nil {
		return nil, nil, err
	}
	if st.EscrowID != escrowID || st.BindUUID != bind || st.BindVer != ver ||
		string(st.MSK[:]) != string(msk) {
		return nil, nil, fmt.Errorf("%w: record fields disagree with sealed state", ErrEscrowInvalid)
	}
	return st, mskSealer, nil
}

// randomEscrowID draws a fresh escrow instance identifier.
func randomEscrowID() ([16]byte, error) {
	var id [16]byte
	b, err := xcrypto.RandomBytes(len(id))
	if err != nil {
		return id, fmt.Errorf("escrow id: %w", err)
	}
	copy(id[:], b)
	return id, nil
}
