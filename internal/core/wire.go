package core

import (
	"encoding/binary"
	"fmt"
)

// Compact length-prefixed binary codec for the framework's own data
// structures, in the style of seal.Blob. Every encoded value starts with a
// one-byte type tag and a one-byte format version, so a blob from a
// different structure — or from an older library version — is rejected
// cleanly with ErrDataFormat instead of being misparsed.
//
// This replaces the encoding/json codecs: the Table I/II structures are
// dominated by fixed-width arrays (256 bools, 256 uint32 counters, 256
// UUIDs) that JSON renders as thousands of array elements, making encode/
// decode the most expensive step of every library persist and migration
// envelope. The binary forms are a bitmap plus fixed-width words.

// Wire type tags.
const (
	tagLocalRequest  byte = 0xA1
	tagLocalResponse byte = 0xA2
	tagMigrationData byte = 0xA3
	tagLibraryState  byte = 0xA4
	tagEnvelope      byte = 0xA5
	tagOffer         byte = 0xB1
	tagOfferReply    byte = 0xB2
	tagDataMessage   byte = 0xB3
	tagDoneMessage   byte = 0xB4
)

// wireVersion is the current format version, bumped on any layout change
// so stale sealed blobs and envelopes fail decoding instead of aliasing.
const wireVersion byte = 1

// maxWireField bounds any single variable-length field, defending the
// decoder against length-prefix bombs from the untrusted OS or network.
const maxWireField = 16 << 20

// appendHeader starts an encoded value.
func appendHeader(dst []byte, tag byte) []byte {
	return append(dst, tag, wireVersion)
}

// appendBytes appends a u32 length prefix and the raw bytes.
func appendBytes(dst, b []byte) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	dst = append(dst, n[:]...)
	return append(dst, b...)
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s)))
	dst = append(dst, n[:]...)
	return append(dst, s...)
}

// appendU32 appends one big-endian uint32.
func appendU32(dst []byte, v uint32) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], v)
	return append(dst, n[:]...)
}

// appendBitmap packs a bool array into bytes, LSB-first within each byte.
func appendBitmap(dst []byte, bits *[NumCounters]bool) []byte {
	var packed [NumCounters / 8]byte
	for i, b := range bits {
		if b {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	return append(dst, packed[:]...)
}

// wireReader is a cursor over one encoded value. The first decoding error
// sticks; callers check err once at the end (and fail fast on header
// mismatch). All byte-slice reads alias the input buffer.
type wireReader struct {
	data []byte
	err  error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = ErrDataFormat
	}
}

// header consumes and checks the tag/version header.
func (r *wireReader) header(tag byte) bool {
	if r.err != nil || len(r.data) < 2 {
		r.fail()
		return false
	}
	if r.data[0] != tag {
		r.err = fmt.Errorf("%w: wrong type tag 0x%02x", ErrDataFormat, r.data[0])
		return false
	}
	if r.data[1] != wireVersion {
		r.err = fmt.Errorf("%w: unsupported format version %d", ErrDataFormat, r.data[1])
		return false
	}
	r.data = r.data[2:]
	return true
}

// take consumes n raw bytes.
func (r *wireReader) take(n int) []byte {
	if r.err != nil || n < 0 || len(r.data) < n {
		r.fail()
		return nil
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

// bytes consumes a length-prefixed byte field. Empty fields decode as nil.
func (r *wireReader) bytes() []byte {
	hdr := r.take(4)
	if r.err != nil {
		return nil
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > maxWireField {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	return r.take(int(n))
}

// string consumes a length-prefixed string field.
func (r *wireReader) string() string {
	return string(r.bytes())
}

// u32 consumes one big-endian uint32.
func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// u8 consumes one byte.
func (r *wireReader) u8() byte {
	b := r.take(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

// bitmap consumes a packed bool array.
func (r *wireReader) bitmap(bits *[NumCounters]bool) {
	packed := r.take(NumCounters / 8)
	if r.err != nil {
		return
	}
	for i := range bits {
		bits[i] = packed[i/8]&(1<<(i%8)) != 0
	}
}

// done asserts the value was consumed exactly and returns the final error.
func (r *wireReader) done() error {
	if r.err == nil && len(r.data) != 0 {
		r.err = fmt.Errorf("%w: %d trailing bytes", ErrDataFormat, len(r.data))
	}
	return r.err
}
