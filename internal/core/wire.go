package core

import (
	"fmt"

	"repro/internal/wirec"
)

// Compact length-prefixed binary codec for the framework's own data
// structures, in the style of seal.Blob. Every encoded value starts with a
// one-byte type tag and a one-byte format version, so a blob from a
// different structure — or from an older library version — is rejected
// cleanly with ErrDataFormat instead of being misparsed.
//
// This replaces the encoding/json codecs: the Table I/II structures are
// dominated by fixed-width arrays (256 bools, 256 uint32 counters, 256
// UUIDs) that JSON renders as thousands of array elements, making encode/
// decode the most expensive step of every library persist and migration
// envelope. The binary forms are a bitmap plus fixed-width words.
//
// The framing primitives (headers, length-prefixed fields, fixed-width
// words, and the length-bomb defenses) are the shared internal/wirec
// ones, also used by the pserepl replication and fleet journal codecs;
// this file adds only core's tags, version, and the bitmap form, and
// re-roots decoder errors under ErrDataFormat.

// Wire type tags.
const (
	tagLocalRequest  byte = 0xA1
	tagLocalResponse byte = 0xA2
	tagMigrationData byte = 0xA3
	tagLibraryState  byte = 0xA4
	tagEnvelope      byte = 0xA5
	tagEscrowRecord  byte = 0xA6
	tagOffer         byte = 0xB1
	tagOfferReply    byte = 0xB2
	tagDataMessage   byte = 0xB3
	tagDoneMessage   byte = 0xB4
	tagBatchOffer    byte = 0xB5
	tagBatchReply    byte = 0xB6
	tagBatchChunk    byte = 0xB7
	tagBatchStatus   byte = 0xB8
	tagBatchDone     byte = 0xB9
	tagBatchRecord   byte = 0xBA
	tagBatchAbort    byte = 0xBB
)

// wireVersion is the current format version, bumped on any layout change
// so stale sealed blobs and envelopes fail decoding instead of aliasing.
const wireVersion byte = 1

// appendHeader starts an encoded value.
func appendHeader(dst []byte, tag byte) []byte {
	return wirec.AppendHeader(dst, tag, wireVersion)
}

// appendBytes appends a u32 length prefix and the raw bytes.
func appendBytes(dst, b []byte) []byte {
	return wirec.AppendBytes(dst, b)
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	return wirec.AppendString(dst, s)
}

// appendU32 appends one big-endian uint32.
func appendU32(dst []byte, v uint32) []byte {
	return wirec.AppendU32(dst, v)
}

// appendU64 appends one big-endian uint64.
func appendU64(dst []byte, v uint64) []byte {
	return wirec.AppendU64(dst, v)
}

// appendBitmap packs a bool array into bytes, LSB-first within each byte.
func appendBitmap(dst []byte, bits *[NumCounters]bool) []byte {
	var packed [NumCounters / 8]byte
	for i, b := range bits {
		if b {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	return append(dst, packed[:]...)
}

// wireReader is a cursor over one encoded value: the shared wirec.Reader
// plus core's bitmap form and ErrDataFormat error rooting. The first
// decoding error sticks; callers check err once at the end (and fail
// fast on header mismatch). All byte-slice reads alias the input buffer.
type wireReader struct {
	r wirec.Reader
}

// newWireReader wraps raw wire bytes.
func newWireReader(raw []byte) wireReader {
	return wireReader{r: wirec.MakeReader(raw)}
}

// errState reports the sticky decoding error re-rooted under
// ErrDataFormat (nil if none).
func (r *wireReader) errState() error {
	if err := r.r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrDataFormat, err)
	}
	return nil
}

// header consumes and checks the tag/version header.
func (r *wireReader) header(tag byte) bool {
	return r.r.Header(tag, wireVersion)
}

// take consumes n raw bytes.
func (r *wireReader) take(n int) []byte {
	return r.r.Take(n)
}

// bytes consumes a length-prefixed byte field. Empty fields decode as nil.
func (r *wireReader) bytes() []byte {
	return r.r.Bytes()
}

// string consumes a length-prefixed string field.
func (r *wireReader) string() string {
	return r.r.String()
}

// u32 consumes one big-endian uint32.
func (r *wireReader) u32() uint32 {
	return r.r.U32()
}

// u64 consumes one big-endian uint64.
func (r *wireReader) u64() uint64 {
	return r.r.U64()
}

// canHold reports whether n entries of at least minEntrySize bytes could
// still be present (pre-allocation length-bomb defense).
func (r *wireReader) canHold(n uint32, minEntrySize int) bool {
	return r.r.CanHold(n, minEntrySize)
}

// u8 consumes one byte.
func (r *wireReader) u8() byte {
	return r.r.U8()
}

// bitmap consumes a packed bool array.
func (r *wireReader) bitmap(bits *[NumCounters]bool) {
	packed := r.take(NumCounters / 8)
	if packed == nil {
		return
	}
	for i := range bits {
		bits[i] = packed[i/8]&(1<<(i%8)) != 0
	}
}

// done asserts the value was consumed exactly and returns the final error.
func (r *wireReader) done() error {
	if err := r.r.Done(); err != nil {
		return fmt.Errorf("%w: %v", ErrDataFormat, err)
	}
	return nil
}
