package core

import (
	"errors"
	"sync"
)

// ErrNoBlob reports that untrusted storage holds no library blob.
var ErrNoBlob = errors.New("core: no persisted library state")

// Storage is the UNTRUSTED persistent storage the application provides to
// the Migration Library. The paper hands the sealed library blob "over to
// the untrusted part of the application to store it on the machine"
// (§VI-B). Everything stored here is attacker-controlled: it may be
// replayed, swapped, or deleted — the library must stay safe regardless.
type Storage interface {
	// Save persists the sealed library blob.
	Save(blob []byte) error
	// Load returns the most recently saved blob.
	Load() ([]byte, error)
}

// MemoryStorage is an in-memory Storage that additionally records every
// blob ever saved, so tests and attack scenarios can replay stale state
// exactly the way the paper's adversary does. It is safe for concurrent
// use.
type MemoryStorage struct {
	mu      sync.Mutex
	history [][]byte
}

var _ Storage = (*MemoryStorage)(nil)

// NewMemoryStorage creates an empty storage.
func NewMemoryStorage() *MemoryStorage { return &MemoryStorage{} }

// Save implements Storage, appending to the replay history.
func (s *MemoryStorage) Save(blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.history = append(s.history, append([]byte(nil), blob...))
	return nil
}

// Load implements Storage, returning the latest blob.
func (s *MemoryStorage) Load() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.history) == 0 {
		return nil, ErrNoBlob
	}
	last := s.history[len(s.history)-1]
	return append([]byte(nil), last...), nil
}

// Snapshot returns blob number i from the history (0 = oldest). Attack
// scenarios use it to capture pre-migration state for later replay.
func (s *MemoryStorage) Snapshot(i int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.history) {
		return nil, false
	}
	return append([]byte(nil), s.history[i]...), true
}

// Versions returns the number of blobs saved so far.
func (s *MemoryStorage) Versions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.history)
}

// Rollback makes version i the current blob — the adversary replaying old
// persistent state (the OS controls this storage entirely).
func (s *MemoryStorage) Rollback(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.history) {
		return false
	}
	s.history = append(s.history, append([]byte(nil), s.history[i]...))
	return true
}
