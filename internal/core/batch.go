package core

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sgx"
	"repro/internal/transport"
	"repro/internal/wirec"
	"repro/internal/xcrypto"
)

// Batched migration pipeline (layers 1+2 of the streamed drain path).
//
// One BeginBatch amortizes the whole Fig. 2 control plane over many
// enclaves: a single offer exchange (full mutual attestation, or a
// resume of a cached session — see session.go), then a pipelined stream
// of AEAD-sealed chunks carrying many length-prefixed migration
// records, with cumulative per-member status acks. Each enclave is
// frozen by the caller only immediately before BatchSender.Add streams
// its envelope, and its status arrives with the chunk ack that covered
// it — so batch size never lengthens any single enclave's freeze
// window, it only overlaps more of them with the same wire time.

// Batch pipeline errors.
var (
	// ErrBatchClosed reports an Add after Finish was called.
	ErrBatchClosed = errors.New("core: batch sender already finished")
	// ErrUnknownBatch reports a chunk for an unknown or completed batch.
	ErrUnknownBatch = errors.New("core: unknown or completed batch stream")
)

// Default pipeline shape.
const (
	defaultBatchWindow = 8       // sealed chunks in flight per batch
	defaultChunkBytes  = 8 << 10 // target chunk payload size
)

// Destination-side resource bounds. Both tables are populated by
// untrusted network input (any peer that completes a handshake), so they
// are capped with least-recently-admitted eviction as a backstop against
// peers that open state and vanish; the primary cleanup paths are batch
// completion and the sender's explicit abort.
const (
	// maxAcceptedSessions bounds the destination's resumable-session
	// table. Sessions are one per live (source ME, dest ME) pair, so the
	// cap is far above any real fleet's concurrency.
	maxAcceptedSessions = 256
	// maxRxBatches bounds concurrent per-batch reassembly states. A
	// source runs one batch per destination at a time, so this caps the
	// number of simultaneously-sending peers.
	maxRxBatches = 128
)

// batchAbortSeq is the reserved stream position that authenticates a
// batchAbort: data chunks use sequences counting up from 0 and can never
// reach it, so the abort frame is the only frame ever sealed there.
const batchAbortSeq = ^uint64(0)

// batchAbortLabel is the abort frame's fixed plaintext.
const batchAbortLabel = "batch-abort"

// BatchOpts shapes one batch stream.
type BatchOpts struct {
	// Window is the maximum number of unacknowledged chunks in flight
	// (default 8): chunk N+1 leaves before the ack for N returns.
	Window int
	// ChunkBytes is the target sealed-chunk payload size (default 8 KiB).
	ChunkBytes int
	// Compress applies WAN compression to each envelope beneath the AEAD
	// boundary: the record is compressed, then sealed, so the link only
	// carries ciphertext of the smaller frame.
	Compress bool
	// Link names the WAN link this batch crosses. When set, compression
	// effectiveness is also recorded per link (wan.compress.ratio.<link>),
	// so the fleet can compare how well each path's traffic compresses.
	Link string
	// Trace is the batch's parent trace context.
	Trace obs.TraceContext
}

// BatchMemberStatus is one member's final outcome as seen by the sender.
type BatchMemberStatus struct {
	OK     bool
	Detail string
}

// BatchSender streams one batch of held outgoing migrations to a single
// destination ME. Typical use: BeginBatch, then for each member freeze
// the enclave (opMigrateOutHold via the library) and Add its token;
// consume Delivered for per-member completion; Finish to drain.
type BatchSender struct {
	me       *MigrationEnclave
	dest     transport.Address
	batchID  []byte
	stream   *xcrypto.StreamSealer // data direction (seal)
	acks     *xcrypto.StreamSealer // ack direction (open)
	fresh    bool                  // batch began with a full handshake
	cert     []byte                // seq-0 provider auth (fresh only)
	sig      []byte
	count    int // declared member count (the destination's completion bar)
	compress bool
	link     string
	chunkLen int
	window   int

	sp *obs.Span
	tc obs.TraceContext

	mu        sync.Mutex
	cond      *sync.Cond
	buf       []byte // length-prefixed records awaiting chunking
	nextSeq   uint64
	inFlight  int
	finished  bool
	sendErr   error
	seen      map[uint32]bool // indices whose status was merged
	statuses  map[uint32]BatchMemberStatus
	tokens    map[uint32][]byte
	savings   int64
	compIn    int64 // bytes fed to the compressor
	compOut   int64 // bytes the compressor produced
	delivered chan uint32
}

// BeginBatch opens a batch stream of count members toward dest. It
// first tries to resume a cached attested session with the destination;
// a refusal (e.g. the destination restarted into a new epoch) silently
// falls back to a full mutual remote attestation, which also refreshes
// the cached session.
func (me *MigrationEnclave) BeginBatch(dest transport.Address, count int, opts BatchOpts) (*BatchSender, error) {
	if err := me.enclave.ECall(); err != nil {
		return nil, err
	}
	if count <= 0 || count > maxBatchCount {
		return nil, fmt.Errorf("core: batch size %d out of range [1, %d]", count, maxBatchCount)
	}
	if opts.Window <= 0 {
		opts.Window = defaultBatchWindow
	}
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = defaultChunkBytes
	}
	sp, tc := me.observer().StartSpan("me.batch", opts.Trace)
	if sp != nil {
		sp.Site = string(me.addr)
	}
	bs, err := me.beginResumed(dest, count, opts, tc)
	if err != nil {
		if sp != nil {
			sp.End()
		}
		return nil, err
	}
	if bs == nil {
		// No cached session, or resumption refused: full handshake.
		bs, err = me.beginFresh(dest, count, opts, tc)
		if err != nil {
			if sp != nil {
				sp.End()
			}
			return nil, err
		}
	}
	bs.sp = sp
	bs.tc = tc
	return bs, nil
}

// beginResumed attempts session resumption. It returns (nil, nil) when
// there is no cached session or the destination refused the ticket —
// the caller falls back to a fresh handshake.
func (me *MigrationEnclave) beginResumed(dest transport.Address, count int, opts BatchOpts, tc obs.TraceContext) (*BatchSender, error) {
	me.mu.Lock()
	sess := me.sessions[string(dest)]
	var ctr uint64
	if sess != nil {
		ctr = sess.counter
		sess.counter++
	}
	me.mu.Unlock()
	if sess == nil {
		me.observer().M().Add("me.session.resume.miss", 1)
		return nil, nil
	}
	ticket := &resumeTicket{
		SessionID: sess.id,
		Epoch:     sess.epoch,
		Counter:   ctr,
		Count:     uint32(count),
		MAC:       resumeMAC(sess.secret, sess.id, sess.epoch, ctr, uint32(count)),
	}
	offerRaw, err := encodeBatchOffer(&batchOffer{Count: uint32(count), Resume: ticket})
	if err != nil {
		return nil, err
	}
	offerSp, offerTC := me.observer().StartSpan("me.batch-offer", tc)
	replyRaw, err := me.net.Send(me.addr, dest, kindBatchOffer, obs.Inject(offerTC, offerRaw))
	offerSp.End()
	if err != nil {
		return nil, fmt.Errorf("send batch offer: %w", err)
	}
	reply, err := decodeBatchOfferReply(replyRaw)
	if err != nil {
		return nil, err
	}
	if reply.Refused {
		if macEqual(reply.RefuseMAC, resumeRefuseMAC(sess.secret, sess.id, ctr)) {
			// Authenticated refusal: the destination provably still holds
			// the session secret yet will not honor it (epoch rolled,
			// counter replayed). Drop the cache so future batches
			// handshake fresh immediately.
			me.mu.Lock()
			if me.sessions[string(dest)] == sess {
				delete(me.sessions, string(dest))
			}
			me.mu.Unlock()
		}
		// An unauthenticated refusal proves nothing: it is either a
		// restarted destination that lost the session (and so cannot MAC
		// anything) or an on-path forgery. Keep the cache — the fallback
		// below is a fully authenticated handshake that replaces the
		// session on success, so a forged refusal costs one handshake,
		// never a durable downgrade to per-batch attestation.
		me.observer().M().Add("me.session.resume.refused", 1)
		return nil, nil
	}
	// An accepting destination must prove it holds the session secret and
	// reserved exactly our counter; anything else is an active attack or
	// corruption, not a fallback case.
	if !reply.Resumed || !macEqual(reply.ConfirmMAC, resumeConfirmMAC(sess.secret, sess.id, ctr)) {
		return nil, fmt.Errorf("core: batch resume confirmation failed authentication")
	}
	if len(reply.BatchID) == 0 {
		return nil, fmt.Errorf("%w: resume reply missing batch id", ErrDataFormat)
	}
	me.observer().M().Add("me.session.resumed", 1)
	me.observer().M().Add("me.session.resume.hit", 1)
	dataKey, ackKey := batchKeys(sess.secret, ctr)
	return me.newBatchSender(dest, count, opts, reply.BatchID, dataKey, ackKey, false, nil, nil)
}

// beginFresh runs the full mutual remote attestation (the Fig. 2
// offer round, batch-framed) and caches the resulting session.
func (me *MigrationEnclave) beginFresh(dest transport.Address, count int, opts BatchOpts, tc obs.TraceContext) (*BatchSender, error) {
	dh, err := xcrypto.NewKeyExchange()
	if err != nil {
		return nil, fmt.Errorf("batch dh: %w", err)
	}
	myQuote, err := me.qe.Quote(me.enclave, sgx.MakeReportData(dh.PublicBytes()))
	if err != nil {
		return nil, fmt.Errorf("source quote: %w", err)
	}
	wq, err := quoteToWire(myQuote)
	if err != nil {
		return nil, err
	}
	offerRaw, err := encodeBatchOffer(&batchOffer{Count: uint32(count), Quote: wq, DHPub: dh.PublicBytes()})
	if err != nil {
		return nil, err
	}
	offerSp, offerTC := me.observer().StartSpan("me.batch-offer", tc)
	replyRaw, err := me.net.Send(me.addr, dest, kindBatchOffer, obs.Inject(offerTC, offerRaw))
	offerSp.End()
	if err != nil {
		return nil, fmt.Errorf("send batch offer: %w", err)
	}
	reply, err := decodeBatchOfferReply(replyRaw)
	if err != nil {
		return nil, err
	}
	if reply.Refused || reply.Resumed || reply.Quote == nil {
		return nil, fmt.Errorf("%w: expected handshake reply", ErrDataFormat)
	}
	peerQuote, err := quoteFromWire(reply.Quote)
	if err != nil {
		return nil, err
	}
	// Same peer checks as the single-migration path: genuine enclave
	// (IAS), identical ME code (MRENCLAVE equality), quote binds both
	// handshake keys, and provider authentication over the transcript.
	if err := me.ias.Verify(peerQuote); err != nil {
		return nil, fmt.Errorf("verify destination quote: %w", err)
	}
	if peerQuote.MREnclave != me.enclave.MREnclave() {
		return nil, fmt.Errorf("%w: destination %v, expected %v",
			ErrPeerIdentity, peerQuote.MREnclave, me.enclave.MREnclave())
	}
	if peerQuote.Data != sgx.MakeReportData(dh.PublicBytes(), reply.DHPub) {
		return nil, ErrQuoteBinding
	}
	transcript := xcrypto.Transcript(transcriptContext, dh.PublicBytes(), reply.DHPub)
	peerCert, err := certFromWire(reply.Cert)
	if err != nil {
		return nil, err
	}
	if err := me.cred.VerifyPeer(peerCert, transcript, reply.Sig); err != nil {
		return nil, fmt.Errorf("authenticate destination: %w", err)
	}
	shared, err := dh.Shared(reply.DHPub)
	if err != nil {
		return nil, fmt.Errorf("shared secret: %w", err)
	}
	if len(reply.BatchID) == 0 || len(reply.SessionID) == 0 {
		return nil, fmt.Errorf("%w: handshake reply missing ids", ErrDataFormat)
	}
	secret := deriveSessionSecret(shared, transcript)
	me.mu.Lock()
	me.sessions[string(dest)] = &resumableSession{
		id:      reply.SessionID,
		secret:  secret,
		epoch:   append([]byte(nil), reply.Epoch...),
		counter: 1, // counter 0 keys this batch
	}
	me.mu.Unlock()
	myCert, err := certToWire(me.cred.Certificate())
	if err != nil {
		return nil, err
	}
	dataKey, ackKey := batchKeys(secret, 0)
	return me.newBatchSender(dest, count, opts, reply.BatchID, dataKey, ackKey, true, myCert, me.cred.Sign(transcript))
}

func (me *MigrationEnclave) newBatchSender(dest transport.Address, count int, opts BatchOpts, batchID []byte, dataKey, ackKey [32]byte, fresh bool, cert, sig []byte) (*BatchSender, error) {
	stream, err := xcrypto.NewStreamSealer(dataKey)
	if err != nil {
		return nil, err
	}
	acks, err := xcrypto.NewStreamSealer(ackKey)
	if err != nil {
		return nil, err
	}
	bs := &BatchSender{
		me:        me,
		dest:      dest,
		batchID:   batchID,
		stream:    stream,
		acks:      acks,
		fresh:     fresh,
		cert:      cert,
		sig:       sig,
		count:     count,
		compress:  opts.Compress,
		link:      opts.Link,
		chunkLen:  opts.ChunkBytes,
		window:    opts.Window,
		seen:      make(map[uint32]bool),
		statuses:  make(map[uint32]BatchMemberStatus),
		tokens:    make(map[uint32][]byte),
		delivered: make(chan uint32, count),
	}
	bs.cond = sync.NewCond(&bs.mu)
	return bs, nil
}

// Add streams one held outgoing migration (identified by its done-token
// from opMigrateOutHold) as batch member index. The record is appended
// to the stream and sent as soon as a window slot frees; the enclave's
// freeze clock has already started, so Add is called immediately after
// the freeze.
func (bs *BatchSender) Add(index uint32, token []byte) error {
	me := bs.me
	key := hex.EncodeToString(token)
	me.mu.Lock()
	rec, ok := me.outgoing[key]
	switch {
	case !ok:
		me.mu.Unlock()
		return ErrUnknownToken
	case rec.done || rec.envelope == nil:
		me.mu.Unlock()
		return ErrMigrationDone
	case rec.inFlight:
		me.mu.Unlock()
		return ErrTransferInFlight
	}
	rec.inFlight = true
	rec.dest = bs.dest
	rec.sent = false
	envRaw, err := rec.envelope.encode()
	trace := rec.trace
	me.mu.Unlock()
	abort := func(err error) error {
		me.mu.Lock()
		rec.inFlight = false
		me.mu.Unlock()
		return err
	}
	if err != nil {
		return abort(err)
	}
	compressed := false
	var saved, inBytes, outBytes int64
	if bs.compress {
		inBytes = int64(len(envRaw))
		frame, err := transport.CompressFrame(envRaw)
		if err != nil {
			return abort(err)
		}
		if d := len(envRaw) - len(frame); d > 0 {
			saved = int64(d)
		}
		envRaw = frame
		outBytes = int64(len(envRaw))
		compressed = true
	}
	recRaw, err := encodeBatchRecord(&batchRecord{
		Index:      index,
		Compressed: compressed,
		Trace:      trace.Marshal(),
		Envelope:   envRaw,
	})
	if err != nil {
		return abort(err)
	}
	bs.mu.Lock()
	if bs.finished {
		bs.mu.Unlock()
		return abort(ErrBatchClosed)
	}
	if bs.sendErr != nil {
		err := bs.sendErr
		bs.mu.Unlock()
		return abort(err)
	}
	bs.tokens[index] = append([]byte(nil), token...)
	bs.buf = appendU32(bs.buf, uint32(len(recRaw)))
	bs.buf = append(bs.buf, recRaw...)
	bs.savings += saved
	bs.compIn += inBytes
	bs.compOut += outBytes
	bs.maybeFlushLocked()
	bs.mu.Unlock()
	return nil
}

// maybeFlushLocked cuts and launches chunks while buffered bytes and
// window slots are both available. Cutting greedily keeps the pipeline
// full in both regimes: an idle link drains small chunks immediately
// (short per-enclave latency), a saturated window accumulates records
// into larger, better-amortized chunks.
func (bs *BatchSender) maybeFlushLocked() {
	for len(bs.buf) > 0 && bs.inFlight < bs.window && bs.sendErr == nil {
		n := len(bs.buf)
		if n > bs.chunkLen {
			n = bs.chunkLen
		}
		chunk := append([]byte(nil), bs.buf[:n]...)
		bs.buf = bs.buf[n:]
		seq := bs.nextSeq
		bs.nextSeq++
		bs.inFlight++
		go bs.sendChunk(seq, chunk)
	}
}

// sendChunk seals and sends one chunk, then merges the cumulative
// status ack. Chunk-level failures are not retried here: retry is a
// batch-attempt decision made by the caller (internal/fleet), which
// knows which members were never covered by any ack.
func (bs *BatchSender) sendChunk(seq uint64, chunk []byte) {
	me := bs.me
	sealed := bs.stream.SealAt(seq, chunk, bs.batchID)
	msg := &batchChunk{BatchID: bs.batchID, Seq: seq, Sealed: sealed}
	if bs.fresh && seq == 0 {
		msg.Cert = bs.cert
		msg.Sig = bs.sig
	}
	raw, err := encodeBatchChunk(msg)
	var replyRaw []byte
	if err == nil {
		sp, tc := me.observer().StartSpan("me.batch-chunk", bs.tc)
		replyRaw, err = me.net.Send(me.addr, bs.dest, kindBatchChunk, obs.Inject(tc, raw))
		sp.End()
	}
	var list *batchStatusList
	if err == nil {
		var pt []byte
		if pt, err = bs.acks.OpenAt(seq, replyRaw, bs.batchID); err == nil {
			list, err = decodeBatchStatusList(pt)
		}
	}
	var newlyStored []uint32
	bs.mu.Lock()
	if err != nil {
		if bs.sendErr == nil {
			bs.sendErr = err
		}
	} else {
		// Acks are cumulative and idempotent: merge only unseen indices.
		for _, s := range list.Statuses {
			if bs.seen[s.Index] {
				continue
			}
			bs.seen[s.Index] = true
			st := BatchMemberStatus{OK: s.Status == batchStatusStored, Detail: s.Detail}
			bs.statuses[s.Index] = st
			if st.OK {
				newlyStored = append(newlyStored, s.Index)
			}
		}
	}
	bs.mu.Unlock()
	// Mark stored members sent and publish delivery BEFORE releasing the
	// window slot: Finish only closes delivered once inFlight reaches
	// zero, so these sends can never hit a closed channel. The channel
	// is buffered to the batch size and each index fires once, so the
	// sends never block either.
	for _, idx := range newlyStored {
		bs.markSent(idx)
		bs.delivered <- idx
	}
	bs.mu.Lock()
	bs.inFlight--
	bs.maybeFlushLocked()
	bs.cond.Broadcast()
	bs.mu.Unlock()
}

// markSent records that the member's envelope is stored at the
// destination (the single-path equivalent of transfer returning nil).
func (bs *BatchSender) markSent(index uint32) {
	bs.mu.Lock()
	token := bs.tokens[index]
	bs.mu.Unlock()
	if token == nil {
		return
	}
	me := bs.me
	me.mu.Lock()
	if rec, ok := me.outgoing[hex.EncodeToString(token)]; ok {
		rec.sent = true
		rec.inFlight = false
	}
	me.mu.Unlock()
}

// Delivered streams the indices of members confirmed stored at the
// destination, in delivery order. The channel closes when Finish
// drains; consuming it lets the caller resume each enclave at the
// destination the moment its own data lands, not when the batch ends.
func (bs *BatchSender) Delivered() <-chan uint32 { return bs.delivered }

// Finish closes the batch, waits for in-flight chunks, and returns the
// per-member outcomes. Members absent from the map were never covered
// by an ack (e.g. the link failed mid-stream): their records stay
// frozen-and-held at the source, retryable by token. The returned
// error is the first stream failure, if any.
func (bs *BatchSender) Finish() (map[uint32]BatchMemberStatus, error) {
	bs.mu.Lock()
	bs.finished = true
	bs.maybeFlushLocked()
	for bs.inFlight > 0 || (len(bs.buf) > 0 && bs.sendErr == nil) {
		bs.cond.Wait()
	}
	err := bs.sendErr
	out := make(map[uint32]BatchMemberStatus, len(bs.statuses))
	for k, v := range bs.statuses {
		out[k] = v
	}
	savings := bs.savings
	compIn, compOut := bs.compIn, bs.compOut
	tokens := make([][]byte, 0, len(bs.tokens))
	for _, t := range bs.tokens {
		tokens = append(tokens, t)
	}
	bs.mu.Unlock()
	close(bs.delivered)
	// Release every member's in-flight latch: unacked records go back to
	// held-and-retryable (parked), exactly like a failed single transfer.
	me := bs.me
	me.mu.Lock()
	for _, t := range tokens {
		if rec, ok := me.outgoing[hex.EncodeToString(t)]; ok {
			rec.inFlight = false
		}
	}
	me.mu.Unlock()
	if savings > 0 {
		me.observer().M().Add("wire.bytes.saved", savings)
	}
	if compIn > 0 {
		// Compression effectiveness for the whole batch, as permille of
		// the input that survived (compressed*1000/input). Histograms
		// store time.Duration samples, so the ratio rides as a raw int64:
		// 1000 means incompressible, 250 means 4:1. Recorded globally and,
		// when the caller named the link, per link — the fleet health
		// detectors and cost model read the per-link family.
		ratio := time.Duration(compOut * 1000 / compIn)
		me.observer().M().Histogram("wan.compress.ratio").Observe(ratio)
		if bs.link != "" {
			me.observer().M().Histogram("wan.compress.ratio." + bs.link).Observe(ratio)
		}
	}
	if len(out) < bs.count {
		// The destination drops its reassembly state only when all
		// declared members are acked; this batch ended short (members
		// parked, stream failure, or fewer Adds than declared), so tell
		// it the stream is over. The abort is authenticated by sealing
		// the reserved batchAbortSeq frame of the data stream — only the
		// data-key holder can produce it, and the position can never
		// collide with a chunk. Best-effort: if the link is down too, the
		// destination's cap-based eviction reclaims the state instead.
		sealed := bs.stream.SealAt(batchAbortSeq, []byte(batchAbortLabel), bs.batchID)
		if raw, aerr := encodeBatchAbort(&batchAbort{BatchID: bs.batchID, Sealed: sealed}); aerr == nil {
			_, _ = me.net.Send(me.addr, bs.dest, kindBatchAbort, obs.Inject(bs.tc, raw))
		}
	}
	if bs.sp != nil {
		bs.sp.End()
	}
	return out, err
}

// ---------------------------------------------------------------------
// Destination side
// ---------------------------------------------------------------------

// batchRecvState is the destination ME's per-batch reassembly state.
type batchRecvState struct {
	// admitted is the state's admission order for cap eviction; written
	// at insertion and read at eviction, both under the ME's mu.
	admitted uint64

	mu         sync.Mutex
	stream     *xcrypto.StreamSealer // data direction (open)
	acks       *xcrypto.StreamSealer // ack direction (seal)
	transcript []byte
	fresh      bool
	authed     bool // source provider authenticated (seq 0 of fresh)
	count      uint32
	nextSeq    uint64
	seen       map[uint64]bool
	pending    map[uint64][]byte
	buf        []byte
	statuses   map[uint32]memberStatus
	// ackSent caches the exact sealed ack returned for each chunk seq. A
	// replayed chunk MUST get the identical ciphertext back: the status
	// list is cumulative, so re-sealing at the same seq after more
	// records drained would put two different plaintexts under one
	// (key, nonce) pair — the StreamSealer invariant violation that leaks
	// the GCM auth key.
	ackSent map[uint64][]byte
}

// storeAcceptedLocked admits one destination-side resumable session,
// evicting least-recently-used entries beyond maxAcceptedSessions. It
// returns the eviction count; callers emit metrics after unlocking
// (observer() itself takes me.mu). Requires me.mu held.
func (me *MigrationEnclave) storeAcceptedLocked(sess *resumableSession) int {
	me.admitSeq++
	sess.order = me.admitSeq
	me.accepted[hex.EncodeToString(sess.id)] = sess
	evicted := 0
	for len(me.accepted) > maxAcceptedSessions {
		oldestKey := ""
		var oldest uint64
		for k, s := range me.accepted {
			if oldestKey == "" || s.order < oldest {
				oldestKey, oldest = k, s.order
			}
		}
		delete(me.accepted, oldestKey)
		evicted++
	}
	return evicted
}

// storeRxBatchLocked admits one per-batch reassembly state, evicting the
// least-recently-admitted beyond maxRxBatches (stale states whose sender
// vanished without an abort). Returns the eviction count; requires me.mu
// held.
func (me *MigrationEnclave) storeRxBatchLocked(batchID []byte, st *batchRecvState) int {
	me.admitSeq++
	st.admitted = me.admitSeq
	me.rxBatches[hex.EncodeToString(batchID)] = st
	evicted := 0
	for len(me.rxBatches) > maxRxBatches {
		oldestKey := ""
		var oldest uint64
		for k, s := range me.rxBatches {
			if oldestKey == "" || s.admitted < oldest {
				oldestKey, oldest = k, s.admitted
			}
		}
		delete(me.rxBatches, oldestKey)
		evicted++
	}
	return evicted
}

// ActiveRxBatches reports the number of batch reassembly states currently
// held (tests and operators: a nonzero steady-state value means senders
// are vanishing mid-batch without aborts).
func (me *MigrationEnclave) ActiveRxBatches() int {
	me.mu.Lock()
	defer me.mu.Unlock()
	return len(me.rxBatches)
}

// AcceptedSessions reports the size of the destination-side resumable
// session table (tests and operators).
func (me *MigrationEnclave) AcceptedSessions() int {
	me.mu.Lock()
	defer me.mu.Unlock()
	return len(me.accepted)
}

// storeIncoming applies the destination's fork-prevention rules to one
// decoded envelope and stores it for the matching local enclave. It is
// the shared core of handleData and the batch chunk drain.
func (me *MigrationEnclave) storeIncoming(env *migrationEnvelope, tc obs.TraceContext, batch bool) error {
	me.mu.Lock()
	defer me.mu.Unlock()
	if me.restored[hex.EncodeToString(env.DoneToken)] {
		// This exact envelope was already fetched by a restoring library
		// here (a retry raced the restore); storing it again could fork
		// the restored enclave.
		return ErrEnvelopeConsumed
	}
	existing, exists := me.incoming[env.MREnclave]
	// A re-send of the very same migration (identical done-token — e.g.
	// the previous delivery's ack was lost) is accepted idempotently: the
	// stored copy is kept and acknowledged again, so retries of a
	// delivered-but-unacknowledged transfer converge instead of wedging.
	duplicate := exists && string(existing.env.DoneToken) == string(env.DoneToken)
	if exists && !duplicate {
		// One pending migration per enclave identity: accepting a second,
		// different envelope would silently destroy the first one's only
		// deliverable copy. Refuse; the source ME keeps its copy and can
		// retry once the parked migration has been restored (§V-D).
		return fmt.Errorf("%w (%v)", ErrAlreadyPending, env.MREnclave)
	}
	if !duplicate {
		me.incoming[env.MREnclave] = &incomingRecord{env: env, trace: tc, batch: batch}
	}
	return nil
}

// handleBatchOffer is the destination side of the batch offer round.
func (me *MigrationEnclave) handleBatchOffer(payload []byte) ([]byte, error) {
	offer, err := decodeBatchOffer(payload)
	if err != nil {
		return nil, err
	}
	if offer.Resume != nil {
		return me.handleBatchResume(offer)
	}
	// Fresh handshake: identical peer verification to handleOffer.
	srcQuote, err := quoteFromWire(offer.Quote)
	if err != nil {
		return nil, err
	}
	if err := me.ias.Verify(srcQuote); err != nil {
		return nil, fmt.Errorf("verify source quote: %w", err)
	}
	if srcQuote.MREnclave != me.enclave.MREnclave() {
		return nil, fmt.Errorf("%w: source %v", ErrPeerIdentity, srcQuote.MREnclave)
	}
	if srcQuote.Data != sgx.MakeReportData(offer.DHPub) {
		return nil, ErrQuoteBinding
	}
	dh, err := xcrypto.NewKeyExchange()
	if err != nil {
		return nil, fmt.Errorf("destination dh: %w", err)
	}
	shared, err := dh.Shared(offer.DHPub)
	if err != nil {
		return nil, fmt.Errorf("shared secret: %w", err)
	}
	transcript := xcrypto.Transcript(transcriptContext, offer.DHPub, dh.PublicBytes())
	secret := deriveSessionSecret(shared, transcript)
	myQuote, err := me.qe.Quote(me.enclave, sgx.MakeReportData(offer.DHPub, dh.PublicBytes()))
	if err != nil {
		return nil, fmt.Errorf("destination quote: %w", err)
	}
	wq, err := quoteToWire(myQuote)
	if err != nil {
		return nil, err
	}
	myCert, err := certToWire(me.cred.Certificate())
	if err != nil {
		return nil, err
	}
	sid, err := xcrypto.RandomBytes(16)
	if err != nil {
		return nil, err
	}
	batchID, err := xcrypto.RandomBytes(16)
	if err != nil {
		return nil, err
	}
	dataKey, ackKey := batchKeys(secret, 0)
	st, err := newBatchRecvState(dataKey, ackKey, transcript, true, offer.Count)
	if err != nil {
		return nil, err
	}
	me.mu.Lock()
	evictedSess := me.storeAcceptedLocked(&resumableSession{
		id:      sid,
		secret:  secret,
		epoch:   append([]byte(nil), me.epoch...),
		counter: 0, // counter 0 keys this batch; resumes must exceed it
	})
	evictedRx := me.storeRxBatchLocked(batchID, st)
	epoch := append([]byte(nil), me.epoch...)
	me.mu.Unlock()
	if evictedSess > 0 {
		me.observer().M().Add("me.session.evicted", int64(evictedSess))
	}
	if evictedRx > 0 {
		me.observer().M().Add("me.batch.rx.evicted", int64(evictedRx))
	}
	return encodeBatchOfferReply(&batchOfferReply{
		BatchID:   batchID,
		SessionID: sid,
		Epoch:     epoch,
		Quote:     wq,
		DHPub:     dh.PublicBytes(),
		Cert:      myCert,
		Sig:       me.cred.Sign(transcript),
	})
}

// handleBatchResume decides one resume ticket. Refusals are replies,
// not errors: the source is expected to fall back to a full handshake.
// The epoch check is the fence — a restarted ME minted a new epoch (and
// forgot its accepted table anyway), so no pre-restart ticket verifies.
// Refusals of tickets that DO prove possession of the session secret
// carry a RefuseMAC, so only the true destination can make the source
// evict its cached session; a secretless refusal (restarted ME, or an
// on-path forgery) is unauthenticated and triggers only the fallback.
func (me *MigrationEnclave) handleBatchResume(offer *batchOffer) ([]byte, error) {
	refuse := func(mac []byte) ([]byte, error) {
		me.observer().M().Add("me.session.resume.refused", 1)
		return encodeBatchOfferReply(&batchOfferReply{Refused: true, RefuseMAC: mac})
	}
	t := offer.Resume
	if t == nil || t.Count != offer.Count {
		return refuse(nil)
	}
	me.mu.Lock()
	sess := me.accepted[hex.EncodeToString(t.SessionID)]
	epoch := me.epoch
	me.mu.Unlock()
	if sess == nil {
		return refuse(nil)
	}
	if !macEqual(t.MAC, resumeMAC(sess.secret, t.SessionID, t.Epoch, t.Counter, t.Count)) {
		// The ticket does not prove possession of the session secret;
		// refuse without a MAC (no authenticated-refusal oracle for
		// attacker-chosen tickets).
		return refuse(nil)
	}
	// From here the peer provably holds the secret, so a refusal is MACed:
	// the source may safely evict its cache on seeing it.
	refuseProof := resumeRefuseMAC(sess.secret, t.SessionID, t.Counter)
	if !macEqual(t.Epoch, epoch) {
		return refuse(refuseProof)
	}
	me.mu.Lock()
	if t.Counter <= sess.counter {
		// Counter replay: this use (or a later one) was already accepted.
		me.mu.Unlock()
		return refuse(refuseProof)
	}
	sess.counter = t.Counter
	// LRU touch: sessions that keep resuming resist cap eviction.
	me.admitSeq++
	sess.order = me.admitSeq
	me.mu.Unlock()
	dataKey, ackKey := batchKeys(sess.secret, t.Counter)
	st, err := newBatchRecvState(dataKey, ackKey, nil, false, offer.Count)
	if err != nil {
		return nil, err
	}
	st.authed = true // authenticated at the original handshake
	batchID, err := xcrypto.RandomBytes(16)
	if err != nil {
		return nil, err
	}
	me.mu.Lock()
	evictedRx := me.storeRxBatchLocked(batchID, st)
	me.mu.Unlock()
	if evictedRx > 0 {
		me.observer().M().Add("me.batch.rx.evicted", int64(evictedRx))
	}
	me.observer().M().Add("me.session.resumed", 1)
	return encodeBatchOfferReply(&batchOfferReply{
		Resumed:    true,
		BatchID:    batchID,
		ConfirmMAC: resumeConfirmMAC(sess.secret, t.SessionID, t.Counter),
	})
}

func newBatchRecvState(dataKey, ackKey [32]byte, transcript []byte, fresh bool, count uint32) (*batchRecvState, error) {
	stream, err := xcrypto.NewStreamSealer(dataKey)
	if err != nil {
		return nil, err
	}
	acks, err := xcrypto.NewStreamSealer(ackKey)
	if err != nil {
		return nil, err
	}
	return &batchRecvState{
		stream:     stream,
		acks:       acks,
		transcript: transcript,
		fresh:      fresh,
		count:      count,
		seen:       make(map[uint64]bool),
		pending:    make(map[uint64][]byte),
		statuses:   make(map[uint32]memberStatus),
		ackSent:    make(map[uint64][]byte),
	}, nil
}

// handleBatchChunk decrypts one stream frame, reassembles in order,
// stores every complete record, and replies with the sealed cumulative
// status list. Frames may arrive out of order (the sender pipelines);
// record consumption is strictly in-order, which also guarantees no
// record is delivered before the seq-0 source authentication of a
// fresh-handshake batch has passed.
func (me *MigrationEnclave) handleBatchChunk(payload []byte) ([]byte, error) {
	msg, err := decodeBatchChunk(payload)
	if err != nil {
		return nil, err
	}
	me.mu.Lock()
	st := me.rxBatches[hex.EncodeToString(msg.BatchID)]
	me.mu.Unlock()
	if st == nil {
		return nil, ErrUnknownBatch
	}
	pt, err := st.stream.OpenAt(msg.Seq, msg.Sealed, msg.BatchID)
	if err != nil {
		return nil, fmt.Errorf("open batch chunk: %w", err)
	}
	st.mu.Lock()
	if sealed, ok := st.ackSent[msg.Seq]; ok {
		// Replay of an already-acknowledged frame (duplicate delivery or
		// an attacker re-presenting it): return the identical ciphertext.
		// Sealing a fresh cumulative status list here would reuse the ack
		// stream's (key, seq) nonce with different plaintext.
		st.mu.Unlock()
		return sealed, nil
	}
	if st.fresh && !st.authed && msg.Seq == 0 {
		// Mutual provider authentication (R2), batch-framed: the source
		// proves membership by signing the handshake transcript; the
		// signature rides the first frame because the transcript did not
		// exist until the offer reply.
		srcCert, err := certFromWire(msg.Cert)
		if err != nil {
			st.mu.Unlock()
			return nil, err
		}
		if err := me.cred.VerifyPeer(srcCert, st.transcript, msg.Sig); err != nil {
			st.mu.Unlock()
			return nil, fmt.Errorf("authenticate source: %w", err)
		}
		st.authed = true
	}
	if !st.seen[msg.Seq] {
		st.seen[msg.Seq] = true
		st.pending[msg.Seq] = pt
	}
	if st.authed {
		for {
			next, ok := st.pending[st.nextSeq]
			if !ok {
				break
			}
			delete(st.pending, st.nextSeq)
			st.nextSeq++
			st.buf = append(st.buf, next...)
		}
		if err := me.drainRecordsLocked(st); err != nil {
			st.mu.Unlock()
			return nil, err
		}
	}
	list := make([]memberStatus, 0, len(st.statuses))
	for _, s := range st.statuses {
		list = append(list, s)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Index < list[j].Index })
	complete := uint32(len(st.statuses)) >= st.count
	raw, err := encodeBatchStatusList(&batchStatusList{Statuses: list})
	if err != nil {
		st.mu.Unlock()
		return nil, err
	}
	// Seal and cache under the lock so a concurrent presentation of the
	// same seq cannot race past the ackSent check and seal a second,
	// different frame at this position.
	sealed := st.acks.SealAt(msg.Seq, raw, msg.BatchID)
	st.ackSent[msg.Seq] = sealed
	st.mu.Unlock()
	if complete {
		me.mu.Lock()
		delete(me.rxBatches, hex.EncodeToString(msg.BatchID))
		me.mu.Unlock()
	}
	return sealed, nil
}

// handleBatchAbort frees the reassembly state of a batch whose sender
// finished short of completion. The abort is authenticated by opening
// the reserved batchAbortSeq frame under the batch's data key; anything
// else is rejected, so an off-path attacker cannot shoot down a live
// batch. Unknown batch ids converge silently (already completed, already
// aborted, or evicted).
func (me *MigrationEnclave) handleBatchAbort(payload []byte) ([]byte, error) {
	msg, err := decodeBatchAbort(payload)
	if err != nil {
		return nil, err
	}
	key := hex.EncodeToString(msg.BatchID)
	me.mu.Lock()
	st := me.rxBatches[key]
	me.mu.Unlock()
	if st == nil {
		return []byte(statusOK), nil
	}
	if _, err := st.stream.OpenAt(batchAbortSeq, msg.Sealed, msg.BatchID); err != nil {
		return nil, fmt.Errorf("authenticate batch abort: %w", err)
	}
	me.mu.Lock()
	delete(me.rxBatches, key)
	me.mu.Unlock()
	me.observer().M().Add("me.batch.rx.aborted", 1)
	return []byte(statusOK), nil
}

// drainRecordsLocked parses every complete length-prefixed record out
// of the reassembly buffer and stores its envelope. Per-record refusals
// (fork prevention, decode errors) become member statuses; a corrupted
// record FRAME poisons the whole stream and fails the handler, leaving
// uncovered members parked at the source.
func (me *MigrationEnclave) drainRecordsLocked(st *batchRecvState) error {
	for {
		if len(st.buf) < 4 {
			return nil
		}
		n := int(binary.BigEndian.Uint32(st.buf))
		if n == 0 || n > wirec.MaxField {
			return fmt.Errorf("%w: batch record length %d", ErrDataFormat, n)
		}
		if len(st.buf) < 4+n {
			return nil
		}
		rec, err := decodeBatchRecord(st.buf[4 : 4+n])
		if err != nil {
			return err
		}
		st.buf = st.buf[4+n:]
		status := memberStatus{Index: rec.Index, Status: batchStatusStored}
		envRaw := rec.Envelope
		if rec.Compressed {
			envRaw, err = transport.DecompressFrame(envRaw, 0)
		}
		var env *migrationEnvelope
		if err == nil {
			env, err = decodeEnvelope(envRaw)
		}
		if err == nil {
			err = me.storeIncoming(env, obs.UnmarshalTrace(rec.Trace), true)
		}
		if err != nil {
			status.Status = batchStatusError
			status.Detail = err.Error()
		}
		st.statuses[rec.Index] = status
	}
}

// handleBatchDone applies one aggregated DONE flush. Unknown tokens are
// tolerated: a re-flush after a lost reply must converge, exactly like
// duplicate single DONEs.
func (me *MigrationEnclave) handleBatchDone(payload []byte) ([]byte, error) {
	msg, err := decodeBatchDoneMessage(payload)
	if err != nil {
		return nil, err
	}
	me.mu.Lock()
	defer me.mu.Unlock()
	for _, token := range msg.Tokens {
		if rec, ok := me.outgoing[hex.EncodeToString(token)]; ok {
			rec.done = true
			rec.envelope = nil
		}
	}
	return []byte(statusOK), nil
}
