// Package core implements the paper's contribution: a framework for
// migrating SGX enclaves with persistent state (sealed data and monotonic
// counters) between physical machines.
//
// It has two components, exactly as in the paper's §V:
//
//   - Library: the Migration Library that an enclave developer links into
//     a migratable enclave. It provides migratable versions of the SGX
//     sealing functions (under a Migration Sealing Key, MSK) and of the
//     monotonic counter operations (wrapping hardware counters with a
//     migratable offset), plus the migration_init and migration_start
//     entry points of Listing 1.
//   - MigrationEnclave: the per-machine enclave that locally attests
//     application enclaves, mutually remote-attests and provider-
//     authenticates the peer Migration Enclave, and store-and-forwards
//     migration data (Fig. 1, Fig. 2).
//
// Security requirements R1-R4 of §IV map onto this package as follows:
// R1 through the construction of the migratable primitives from native
// ones; R2 through provider credentials checked during remote
// attestation; R3 through destroy-before-export of source counters plus
// the persisted freeze flag and single-delivery at the destination; R4
// through migrating effective counter values as fresh offsets.
package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/pse"
	"repro/internal/sgx"
)

// NumCounters is the number of counter slots the library manages (the
// SGX per-enclave limit; the library wraps rather than replaces hardware
// counters, so the limit is unchanged — paper §VI-B).
const NumCounters = pse.MaxCounters

// MSKSize is the Migration Sealing Key size in bytes (128-bit, Table I).
const MSKSize = 16

// Data-structure errors.
var (
	ErrDataFormat = errors.New("core: malformed migration data")
)

// MigrationData is the migrated payload, exactly Table I of the paper:
// the set of active counters, their effective values (to be installed as
// offsets on the destination), and the MSK. The source Migration Enclave
// appends the enclave's MRENCLAVE for destination matching (§VI-A).
type MigrationData struct {
	// CountersActive marks which counter slots are in use (Table I:
	// "counters active", bool[256]).
	CountersActive [NumCounters]bool `json:"countersActive"`
	// CounterValues holds the effective counter values at migration time;
	// the destination uses them as its new offsets (Table I: "counter
	// values", uint32[256], "Used as next offset").
	CounterValues [NumCounters]uint32 `json:"counterValues"`
	// MSK is the Migration Sealing Key (Table I: 128-bit SGX key).
	MSK [MSKSize]byte `json:"msk"`
}

// Encode serializes migration data for transfer over the attested channel.
func (d *MigrationData) Encode() ([]byte, error) {
	out, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("encode migration data: %w", err)
	}
	return out, nil
}

// DecodeMigrationData parses migration data.
func DecodeMigrationData(raw []byte) (*MigrationData, error) {
	var d MigrationData
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDataFormat, err)
	}
	return &d, nil
}

// libraryState is the Migration Library's internal persistent data,
// exactly Table II of the paper. It is sealed with the enclave's native
// sealing key and handed to the untrusted application for storage; it is
// reloaded and unsealed on every enclave restart.
type libraryState struct {
	// Frozen is the freeze flag for migration (Table II: uint8). Once
	// set, the library refuses to operate, including after restarts from
	// this blob.
	Frozen uint8 `json:"frozen"`
	// CountersActive marks used counter slots.
	CountersActive [NumCounters]bool `json:"countersActive"`
	// CounterUUIDs holds the SGX counter UUIDs so the library can access
	// (and on migration, destroy) the hardware counters.
	CounterUUIDs [NumCounters]pse.UUID `json:"counterUUIDs"`
	// CounterOffsets holds the migratable offsets added to the hardware
	// values to form effective values.
	CounterOffsets [NumCounters]uint32 `json:"counterOffsets"`
	// MSK is the Migration Sealing Key used by migratable sealing.
	MSK [MSKSize]byte `json:"msk"`
}

func (s *libraryState) encode() ([]byte, error) {
	out, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("encode library state: %w", err)
	}
	return out, nil
}

func decodeLibraryState(raw []byte) (*libraryState, error) {
	var s libraryState
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDataFormat, err)
	}
	return &s, nil
}

// migrationEnvelope is what actually travels between Migration Enclaves:
// the migration data plus the source enclave's MRENCLAVE (appended by the
// source ME for destination matching) and the source ME's address (for
// the DONE confirmation) and completion token.
type migrationEnvelope struct {
	Data      *MigrationData  `json:"data"`
	MREnclave sgx.Measurement `json:"mrenclave"`
	SourceME  string          `json:"sourceME"`
	DoneToken []byte          `json:"doneToken"`
}

func (e *migrationEnvelope) encode() ([]byte, error) {
	out, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("encode envelope: %w", err)
	}
	return out, nil
}

func decodeEnvelope(raw []byte) (*migrationEnvelope, error) {
	var e migrationEnvelope
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDataFormat, err)
	}
	if e.Data == nil {
		return nil, fmt.Errorf("%w: missing data", ErrDataFormat)
	}
	return &e, nil
}
