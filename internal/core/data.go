// Package core implements the paper's contribution: a framework for
// migrating SGX enclaves with persistent state (sealed data and monotonic
// counters) between physical machines.
//
// It has two components, exactly as in the paper's §V:
//
//   - Library: the Migration Library that an enclave developer links into
//     a migratable enclave. It provides migratable versions of the SGX
//     sealing functions (under a Migration Sealing Key, MSK) and of the
//     monotonic counter operations (wrapping hardware counters with a
//     migratable offset), plus the migration_init and migration_start
//     entry points of Listing 1.
//   - MigrationEnclave: the per-machine enclave that locally attests
//     application enclaves, mutually remote-attests and provider-
//     authenticates the peer Migration Enclave, and store-and-forwards
//     migration data (Fig. 1, Fig. 2).
//
// Security requirements R1-R4 of §IV map onto this package as follows:
// R1 through the construction of the migratable primitives from native
// ones; R2 through provider credentials checked during remote
// attestation; R3 through destroy-before-export of source counters plus
// the persisted freeze flag and single-delivery at the destination; R4
// through migrating effective counter values as fresh offsets.
package core

import (
	"errors"
	"fmt"

	"repro/internal/pse"
	"repro/internal/sgx"
)

// NumCounters is the number of counter slots the library manages (the
// SGX per-enclave limit; the library wraps rather than replaces hardware
// counters, so the limit is unchanged — paper §VI-B).
const NumCounters = pse.MaxCounters

// MSKSize is the Migration Sealing Key size in bytes (128-bit, Table I).
const MSKSize = 16

// Data-structure errors.
var (
	ErrDataFormat = errors.New("core: malformed migration data")
)

// MigrationData is the migrated payload, exactly Table I of the paper:
// the set of active counters, their effective values (to be installed as
// offsets on the destination), and the MSK. The source Migration Enclave
// appends the enclave's MRENCLAVE for destination matching (§VI-A).
type MigrationData struct {
	// CountersActive marks which counter slots are in use (Table I:
	// "counters active", bool[256]).
	CountersActive [NumCounters]bool
	// CounterValues holds the effective counter values at migration time;
	// the destination uses them as its new offsets (Table I: "counter
	// values", uint32[256], "Used as next offset").
	CounterValues [NumCounters]uint32
	// MSK is the Migration Sealing Key (Table I: 128-bit SGX key).
	MSK [MSKSize]byte
}

// migrationDataSize is the exact encoded size of MigrationData: header,
// active bitmap, 256 counter words, MSK.
const migrationDataSize = 2 + NumCounters/8 + 4*NumCounters + MSKSize

// appendMigrationData is the allocation-free inner encoder shared with the
// envelope codec.
func (d *MigrationData) append(dst []byte) []byte {
	dst = appendHeader(dst, tagMigrationData)
	dst = appendBitmap(dst, &d.CountersActive)
	for _, v := range d.CounterValues {
		dst = appendU32(dst, v)
	}
	return append(dst, d.MSK[:]...)
}

// decodeInto parses migration data from the reader's cursor.
func (d *MigrationData) decodeInto(rd *wireReader) {
	if !rd.header(tagMigrationData) {
		return
	}
	rd.bitmap(&d.CountersActive)
	for i := range d.CounterValues {
		d.CounterValues[i] = rd.u32()
	}
	copy(d.MSK[:], rd.take(MSKSize))
}

// Encode serializes migration data for transfer over the attested channel.
func (d *MigrationData) Encode() ([]byte, error) {
	return d.append(make([]byte, 0, migrationDataSize)), nil
}

// DecodeMigrationData parses migration data.
func DecodeMigrationData(raw []byte) (*MigrationData, error) {
	var d MigrationData
	rd := newWireReader(raw)
	d.decodeInto(&rd)
	if err := rd.done(); err != nil {
		return nil, err
	}
	return &d, nil
}

// libraryState is the Migration Library's internal persistent data,
// exactly Table II of the paper. It is sealed with the enclave's native
// sealing key and handed to the untrusted application for storage; it is
// reloaded and unsealed on every enclave restart.
type libraryState struct {
	// Frozen is the freeze flag for migration (Table II: uint8). Once
	// set, the library refuses to operate, including after restarts from
	// this blob.
	Frozen uint8
	// CountersActive marks used counter slots.
	CountersActive [NumCounters]bool
	// CounterUUIDs holds the SGX counter UUIDs so the library can access
	// (and on migration, destroy) the hardware counters.
	CounterUUIDs [NumCounters]pse.UUID
	// CounterOffsets holds the migratable offsets added to the hardware
	// values to form effective values.
	CounterOffsets [NumCounters]uint32
	// MSK is the Migration Sealing Key used by migratable sealing.
	MSK [MSKSize]byte
	// EscrowID identifies this enclave instance in the rack escrow (zero
	// when the library does not escrow its state).
	EscrowID [16]byte
	// BindUUID is the replicated binding counter every escrowed state
	// version is rollback-bound to; BindVer is the counter value at the
	// latest persist. Recovery must win the counter's DestroyAndRead at
	// exactly BindVer.
	BindUUID pse.UUID
	BindVer  uint32
}

// uuidSize is the encoded size of one pse.UUID (ID word plus nonce).
const uuidSize = 4 + 16

// libraryStateSize is the exact encoded size of libraryState.
const libraryStateSize = 2 + 1 + NumCounters/8 + NumCounters*uuidSize + 4*NumCounters + MSKSize +
	16 + uuidSize + 4

func (s *libraryState) encode() ([]byte, error) {
	out := make([]byte, 0, libraryStateSize)
	out = appendHeader(out, tagLibraryState)
	out = append(out, s.Frozen)
	out = appendBitmap(out, &s.CountersActive)
	for i := range s.CounterUUIDs {
		out = appendU32(out, s.CounterUUIDs[i].ID)
		out = append(out, s.CounterUUIDs[i].Nonce[:]...)
	}
	for _, v := range s.CounterOffsets {
		out = appendU32(out, v)
	}
	out = append(out, s.MSK[:]...)
	out = append(out, s.EscrowID[:]...)
	out = appendU32(out, s.BindUUID.ID)
	out = append(out, s.BindUUID.Nonce[:]...)
	return appendU32(out, s.BindVer), nil
}

func decodeLibraryState(raw []byte) (*libraryState, error) {
	var s libraryState
	rd := newWireReader(raw)
	if !rd.header(tagLibraryState) {
		return nil, rd.errState()
	}
	s.Frozen = rd.u8()
	rd.bitmap(&s.CountersActive)
	for i := range s.CounterUUIDs {
		s.CounterUUIDs[i].ID = rd.u32()
		copy(s.CounterUUIDs[i].Nonce[:], rd.take(16))
	}
	for i := range s.CounterOffsets {
		s.CounterOffsets[i] = rd.u32()
	}
	copy(s.MSK[:], rd.take(MSKSize))
	copy(s.EscrowID[:], rd.take(16))
	s.BindUUID.ID = rd.u32()
	copy(s.BindUUID.Nonce[:], rd.take(16))
	s.BindVer = rd.u32()
	if err := rd.done(); err != nil {
		return nil, err
	}
	return &s, nil
}

// migrationEnvelope is what actually travels between Migration Enclaves:
// the migration data plus the source enclave's MRENCLAVE (appended by the
// source ME for destination matching) and the source ME's address (for
// the DONE confirmation) and completion token.
type migrationEnvelope struct {
	Data      *MigrationData
	MREnclave sgx.Measurement
	SourceME  string
	DoneToken []byte
}

func (e *migrationEnvelope) encode() ([]byte, error) {
	if e.Data == nil {
		return nil, fmt.Errorf("%w: missing data", ErrDataFormat)
	}
	out := make([]byte, 0, 2+migrationDataSize+len(sgx.Measurement{})+8+len(e.SourceME)+len(e.DoneToken))
	out = appendHeader(out, tagEnvelope)
	out = e.Data.append(out)
	out = append(out, e.MREnclave[:]...)
	out = appendString(out, e.SourceME)
	out = appendBytes(out, e.DoneToken)
	return out, nil
}

func decodeEnvelope(raw []byte) (*migrationEnvelope, error) {
	e := migrationEnvelope{Data: &MigrationData{}}
	rd := newWireReader(raw)
	if !rd.header(tagEnvelope) {
		return nil, rd.errState()
	}
	e.Data.decodeInto(&rd)
	copy(e.MREnclave[:], rd.take(len(e.MREnclave)))
	e.SourceME = rd.string()
	e.DoneToken = rd.bytes()
	if err := rd.done(); err != nil {
		return nil, err
	}
	return &e, nil
}
