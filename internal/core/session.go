package core

import (
	"crypto/subtle"
	"encoding/binary"

	"repro/internal/xcrypto"
)

// Resumable attested sessions (batch pipeline layer 1).
//
// After one successful mutual remote attestation between a (source ME,
// dest ME) pair, both sides cache a session secret derived from the DH
// shared secret AND the attestation transcript. Later batches derive
// fresh directional AEAD keys from that secret plus a strictly
// increasing use counter instead of re-running the quote/IAS round.
//
// The trust argument for resumption is epoch fencing: the secret only
// proves what was true at handshake time. A restarted or recovered ME
// is a NEW trust epoch — its in-memory incoming/outgoing state is gone,
// so replaying a pre-restart session would bypass exactly the freshness
// the restart invalidated. Each ME therefore mints a random epoch value
// at construction and binds it into every resume ticket MAC; a ticket
// carrying any other epoch is refused and the source falls back to a
// full handshake (and since a restarted ME also forgot its accepted-
// session table, even a forged matching epoch would find no secret).

// Key-derivation labels for the session layer. Distinct labels keep the
// resume MACs and the per-batch directional data/ack keys in disjoint
// key spaces even though they share one session secret.
const (
	labelSessionSecret = "me-session-secret"
	labelResumeMAC     = "me-resume-mac"
	labelResumeOK      = "me-resume-ok"
	labelResumeRefuse  = "me-resume-refuse"
	labelBatchData     = "me-batch-data"
	labelBatchAck      = "me-batch-ack"
)

// resumableSession is one cached attested session. On the source side
// counter is the next unused value; on the destination side it is the
// highest value accepted so far (a resume at counter <= accepted is a
// replay and is refused).
type resumableSession struct {
	id      []byte // random session identifier, chosen by the destination
	secret  []byte // 32-byte secret bound to the original transcript
	epoch   []byte // destination ME's epoch at handshake time
	counter uint64
	// order is the destination-side LRU stamp for cap eviction (bumped on
	// admission and on every successful resume); guarded by the ME's mu.
	order uint64
}

// deriveSessionSecret derives the cached session secret from the DH
// shared secret and the full attestation transcript, so the secret is
// bound to the identities and keys that were actually attested.
func deriveSessionSecret(shared, transcript []byte) []byte {
	k := xcrypto.DeriveKey(shared, labelSessionSecret, transcript)
	return k[:]
}

func u64be(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func u32be(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

// resumeMAC authenticates a resume ticket: possession of the session
// secret, bound to the session id, the destination epoch the source
// believes is current, the counter being reserved, and the batch size.
func resumeMAC(secret, sid, epoch []byte, counter uint64, count uint32) []byte {
	k := xcrypto.DeriveKey(secret, labelResumeMAC, sid, epoch, u64be(counter), u32be(count))
	return k[:]
}

// resumeConfirmMAC is the destination's proof-of-acceptance, confirming
// it holds the same secret and accepted exactly this counter.
func resumeConfirmMAC(secret, sid []byte, counter uint64) []byte {
	k := xcrypto.DeriveKey(secret, labelResumeOK, sid, u64be(counter))
	return k[:]
}

// resumeRefuseMAC authenticates a resume REFUSAL: a destination that
// still holds the session secret but will not honor this ticket (epoch
// rolled, counter replayed) proves it is the true peer, so only it can
// make the source evict its cached session. A destination that lost the
// secret (restart) cannot produce it — nor can an on-path attacker — and
// such unauthenticated refusals merely trigger the (authenticated)
// fresh-handshake fallback without evicting the cache.
func resumeRefuseMAC(secret, sid []byte, counter uint64) []byte {
	k := xcrypto.DeriveKey(secret, labelResumeRefuse, sid, u64be(counter))
	return k[:]
}

// batchKeys derives the two directional stream keys for one batch use
// of a session: data flows source -> dest, acks flow dest -> source.
// A fresh counter yields fresh keys, so stream sequence numbers restart
// at zero without nonce reuse.
func batchKeys(secret []byte, counter uint64) (data, ack [32]byte) {
	data = xcrypto.DeriveKey(secret, labelBatchData, u64be(counter))
	ack = xcrypto.DeriveKey(secret, labelBatchAck, u64be(counter))
	return data, ack
}

// macEqual compares MACs in constant time.
func macEqual(a, b []byte) bool {
	return len(a) == len(b) && subtle.ConstantTimeCompare(a, b) == 1
}
