package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/attest"
	"repro/internal/obs"
	"repro/internal/pse"
	"repro/internal/seal"
	"repro/internal/sgx"
	"repro/internal/transport"
	"repro/internal/xcrypto"
)

// Migration Library errors.
var (
	ErrNotInitialized     = errors.New("core: migration library not initialized")
	ErrAlreadyInitialized = errors.New("core: migration library already initialized")
	ErrFrozen             = errors.New("core: library frozen: enclave has been migrated")
	ErrBadSlot            = errors.New("core: invalid counter id")
	ErrSlotInactive       = errors.New("core: counter id not active")
	ErrNoFreeSlot         = errors.New("core: no free counter slot")
	ErrCounterOverflow    = errors.New("core: effective counter value would overflow")
	ErrNoPendingMigration = errors.New("core: no pending incoming migration for this enclave")
	ErrMigrationPending   = errors.New("core: migration data held at source migration enclave pending transfer")
)

// InitState selects how the Migration Library initializes (Listing 1's
// init_state): a brand-new enclave, an enclave restored from persisted
// state after a restart, or the destination of a migration.
type InitState int

// Initialization states.
const (
	// InitNew creates fresh library state (generates the MSK).
	InitNew InitState = iota + 1
	// InitRestore reloads sealed library state from untrusted storage.
	InitRestore
	// InitMigrated receives migration data from the local Migration
	// Enclave (the destination side of Fig. 2).
	InitMigrated
)

// String names the init state.
func (s InitState) String() string {
	switch s {
	case InitNew:
		return "new"
	case InitRestore:
		return "restore"
	case InitMigrated:
		return "migrated"
	default:
		return "unknown"
	}
}

// slotState is the immutable per-slot snapshot the counter data plane
// dereferences with one atomic load. A nil pointer means the slot is not
// usable (inactive, library uninitialized, or frozen — slotErr
// disambiguates on the error path).
type slotState struct {
	uuid   pse.UUID
	offset uint32
}

// Library is the Migration Library linked into a migratable application
// enclave (paper §V-C, §VI-B). It lives in the same protection domain as
// the application enclave and fully trusts it. All methods are safe for
// concurrent use.
//
// Concurrency design: the data plane is lock-free on the library side.
// Counter reads and increments load one per-slot atomic pointer and go
// straight to the hardware counter service (which has its own sharded
// locking); migratable seal/unseal only check two atomic flags and use
// the immutable MSK. Control-plane operations (init, counter create/
// destroy, migration) serialize on mu and publish updated slot
// snapshots. Fork-freedom during migration does not depend on blocking
// readers: the capture uses pse.DestroyAndRead, so a racing increment
// either lands before the destroy — and is part of the exported value —
// or fails against the already-destroyed counter.
type Library struct {
	enclave  *sgx.Enclave
	counters CounterService
	storage  Storage

	initialized atomic.Bool
	frozen      atomic.Bool
	slots       [NumCounters]atomic.Pointer[slotState]

	// mskSealer is the shared statesealer for the MSK, built once at Init.
	// Its lifetime equals the library's hold on the MSK itself, so the
	// key schedule never outlives its owner in a shared cache. Immutable
	// after the initialized flag is observed. It serves both migratable
	// sealing (Listing 2) and the escrowed copy of the Table II blob.
	mskSealer *seal.StateSealer

	mu        sync.Mutex // control plane + ME channel ordering
	st        libraryState
	me        *MigrationEnclave
	session   *attest.LocalSession
	sessionID string
	doneToken []byte

	// escrow and rack are the rack escrow service and escrow sealing key,
	// wired by EnableEscrow before Init on rack-associated machines; nil
	// for CPU-bound (escrow-less) libraries.
	escrow StateEscrow
	rack   *seal.StateSealer

	// obs records control-plane spans and audit events; nil disables
	// recording. The counter data plane is deliberately uninstrumented —
	// the Fig. 3 hot path stays one atomic load plus the counter call.
	obs *obs.Observer
}

// NewLibrary binds the Migration Library to its host enclave, the
// machine's counter facility (the local Platform Services manager or a
// replicated group fronting several machines), and the application's
// untrusted storage for the sealed library blob.
func NewLibrary(enclave *sgx.Enclave, counters CounterService, storage Storage) *Library {
	return &Library{enclave: enclave, counters: counters, storage: storage}
}

// SetObserver installs the library's observability sink. Like
// EnableEscrow it must be wired before Init (the cloud layer does this at
// app launch).
func (l *Library) SetObserver(o *obs.Observer) {
	l.mu.Lock()
	l.obs = o
	l.mu.Unlock()
}

// actor labels this library in audit events by its enclave identity.
func (l *Library) actor() string {
	return fmt.Sprintf("lib:%v", l.enclave.MREnclave())
}

// stateAAD labels the sealed library blob.
var stateAAD = []byte("migration-library-state")

// persistLocked is the two-tier blob pipeline (the durability refactor):
//
//	tier 1 (native): the Table II state is sealed with the enclave's
//	native sealing key and handed to untrusted local storage — fast
//	restarts on the same CPU, exactly the paper's path;
//	tier 2 (escrow): with escrow enabled, the dedicated binding counter
//	is first advanced (the new version's rollback binding), then the
//	same encoded state is migratable-sealed by the MSK statesealer and
//	pushed to the rack's escrow quorum — durability that survives this
//	CPU.
//
// An escrowed library whose binding counter turns out destroyed was
// recovered on another machine while this copy was presumed dead: it
// freezes itself and reports ErrRecoveredAway, the same one-winner
// discipline a migration freeze enforces. Callers hold mu.
func (l *Library) persistLocked() error {
	escrowed := l.escrow != nil && l.st.BindUUID.ID != 0
	if escrowed && l.st.Frozen == 0 {
		v, err := l.counters.Increment(l.enclave, l.st.BindUUID)
		if err != nil {
			if errors.Is(err, pse.ErrCounterNotFound) {
				l.st.Frozen = 1
				l.frozen.Store(true)
				l.publishAllSlotsLocked()
				l.obs.Event(obs.EventZombieRefused, l.actor(), "escrow binding destroyed: state recovered elsewhere", obs.TraceContext{})
				return ErrRecoveredAway
			}
			return fmt.Errorf("advance escrow binding: %w", err)
		}
		l.st.BindVer = v
	}
	raw, err := l.st.encode()
	if err != nil {
		return err
	}
	blob, err := seal.Seal(l.enclave, sgx.PolicyMRENCLAVE, stateAAD, raw)
	if err != nil {
		return fmt.Errorf("seal library state: %w", err)
	}
	if err := l.storage.Save(blob); err != nil {
		return fmt.Errorf("persist library state: %w", err)
	}
	if escrowed {
		if err := l.escrowPushLocked(raw); err != nil {
			if l.st.Frozen != 0 {
				// The frozen (migrated-away) record is advisory: its
				// binding counter is already destroyed, so recovery
				// attempts fail closed with or without it. Do not fail
				// the freeze over an unreachable rack.
				return nil
			}
			// The local tier is persisted and the binding already moved,
			// so until the next successful push the escrow lags one
			// version behind — recovery then fails safe (ErrEscrowStale),
			// never resurrects the older record.
			return err
		}
	}
	return nil
}

// publishSlotLocked exposes one slot's current state to the data plane.
// A frozen library publishes nothing: the Table II blob keeps the active
// flags for the migrated state, but no data operation may use them.
// Callers hold mu.
func (l *Library) publishSlotLocked(id int) {
	if l.st.Frozen == 0 && l.st.CountersActive[id] {
		l.slots[id].Store(&slotState{uuid: l.st.CounterUUIDs[id], offset: l.st.CounterOffsets[id]})
	} else {
		l.slots[id].Store(nil)
	}
}

// publishAllSlotsLocked republishes every slot snapshot. Callers hold mu.
func (l *Library) publishAllSlotsLocked() {
	for i := 0; i < NumCounters; i++ {
		l.publishSlotLocked(i)
	}
}

// Init is migration_init (Listing 1): it must be called every time the
// enclave is loaded, before any other library operation. It opens the
// attested channel to the local Migration Enclave and initializes the
// library state according to initState.
func (l *Library) Init(initState InitState, me *MigrationEnclave) error {
	if err := l.enclave.ECall(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.initialized.Load() {
		return ErrAlreadyInitialized
	}
	if me == nil {
		return errors.New("core: migration enclave required")
	}
	// Local attestation to the Migration Enclave; the channel stays open
	// for the lifetime of the enclave (paper §VI-A).
	session, sessionID, err := me.ConnectLocal(l.enclave)
	if err != nil {
		return fmt.Errorf("attest migration enclave: %w", err)
	}
	l.me, l.session, l.sessionID = me, session, sessionID

	switch initState {
	case InitNew:
		mskBytes, err := xcrypto.RandomBytes(MSKSize)
		if err != nil {
			return fmt.Errorf("generate MSK: %w", err)
		}
		l.st = libraryState{}
		copy(l.st.MSK[:], mskBytes)
		if l.escrow != nil {
			if err := l.initEscrowLocked(); err != nil {
				return err
			}
		}
	case InitRestore:
		blob, err := l.storage.Load()
		if err != nil {
			return fmt.Errorf("load library state: %w", err)
		}
		raw, aad, err := seal.Unseal(l.enclave, blob)
		if err != nil {
			return fmt.Errorf("unseal library state: %w", err)
		}
		if string(aad) != string(stateAAD) {
			return fmt.Errorf("%w: wrong blob label", ErrDataFormat)
		}
		st, err := decodeLibraryState(raw)
		if err != nil {
			return err
		}
		if st.Frozen != 0 {
			// The enclave was migrated away; this state must never
			// operate again (paper §VI-B, Table II).
			return ErrFrozen
		}
		if l.escrow != nil && st.BindUUID.ID != 0 {
			// The binding counter notarizes the latest persisted version:
			// a destroyed binding means the state was recovered on
			// another machine (this copy must stay dead), a value ahead
			// of the blob means the untrusted storage replayed stale
			// state. Escrowed libraries therefore get freshness for the
			// Table II blob itself, which native sealing alone never had.
			cur, err := l.counters.Read(l.enclave, st.BindUUID)
			if err != nil {
				if errors.Is(err, pse.ErrCounterNotFound) {
					l.obs.Event(obs.EventZombieRefused, l.actor(), "restart refused: escrow binding destroyed", obs.TraceContext{})
					return ErrRecoveredAway
				}
				return fmt.Errorf("verify escrow binding: %w", err)
			}
			if cur != st.BindVer {
				return fmt.Errorf("%w: blob at version %d, binding counter at %d",
					ErrStateStale, st.BindVer, cur)
			}
		}
		l.st = *st
	case InitMigrated:
		if err := l.receiveMigrationLocked(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: invalid init state %d", initState)
	}
	// InitMigrated built the sealer inside receiveMigrationLocked (it
	// must exist before the post-restore persist and, more importantly,
	// before the DONE that lets the source delete its copy); the other
	// paths build it here.
	if l.mskSealer == nil {
		sealer, err := seal.NewStateSealer(l.st.MSK[:])
		if err != nil {
			return fmt.Errorf("msk cipher: %w", err)
		}
		l.mskSealer = sealer
	}
	if initState == InitNew {
		// The first persist runs with the MSK sealer in place so the
		// escrow tier can push the sealed state alongside the native
		// tier. A failed first persist releases the just-created binding
		// counter (best-effort): the enclave will be destroyed, and a
		// leaked binding would bleed the rack's hard counter budget one
		// slot per launch retry.
		if err := l.persistLocked(); err != nil {
			l.releaseEscrowBindingLocked()
			return err
		}
	}
	// Publish the data-plane snapshots only once the whole init
	// succeeded, then flip the initialized flag: readers that observe
	// initialized therefore also observe the slots, the MSK, and its
	// cached cipher.
	l.publishAllSlotsLocked()
	l.initialized.Store(true)
	return nil
}

// receiveMigrationLocked fetches pending migration data from the local
// Migration Enclave, re-creates the counters with the migrated effective
// values as offsets, installs the MSK, persists, and acknowledges.
func (l *Library) receiveMigrationLocked() error {
	reply, err := l.localCallLocked(&localRequest{Op: opFetchIncoming})
	if err != nil {
		return err
	}
	if reply.Status == statusNone {
		return ErrNoPendingMigration
	}
	env, err := decodeEnvelope(reply.Body)
	if err != nil {
		return err
	}
	// The migration's trace context rode along with the envelope; the
	// restore span joins it, so one trace covers freeze through resume.
	sp, tc := l.obs.StartSpan("lib.resume", obs.UnmarshalTrace(reply.Trace))
	if sp != nil {
		sp.Site = l.actor()
		defer sp.End()
	}
	l.st = libraryState{}
	l.st.MSK = env.Data.MSK
	for i := 0; i < NumCounters; i++ {
		if !env.Data.CountersActive[i] {
			continue
		}
		// Fresh hardware counter starts at 0; the migrated effective
		// value becomes the offset, so effective values continue exactly
		// where the source left off (paper §VI-B: constant-time per
		// counter, regardless of its value).
		uuid, _, err := l.counters.Create(l.enclave)
		if err != nil {
			return fmt.Errorf("re-create counter %d: %w", i, err)
		}
		l.st.CountersActive[i] = true
		l.st.CounterUUIDs[i] = uuid
		l.st.CounterOffsets[i] = env.Data.CounterValues[i]
	}
	// A migrated-in enclave landing on a rack machine starts a fresh
	// escrow instance (new binding counter, new escrow ID): its previous
	// machine's escrow — if any — died with its binding at the freeze.
	// The MSK sealer must exist before the persist so the escrow tier can
	// push alongside the native tier.
	if l.escrow != nil {
		if err := l.initEscrowLocked(); err != nil {
			return err
		}
	}
	sealer, err := seal.NewStateSealer(l.st.MSK[:])
	if err != nil {
		return fmt.Errorf("msk cipher: %w", err)
	}
	l.mskSealer = sealer
	if err := l.persistLocked(); err != nil {
		l.releaseEscrowBindingLocked()
		return err
	}
	// DONE: confirm the restore so the source can delete its copy.
	if _, err := l.localCallLocked(&localRequest{Op: opAckRestored, Trace: tc.Marshal()}); err != nil {
		return fmt.Errorf("acknowledge migration: %w", err)
	}
	return nil
}

// ready validates the common preconditions of every data operation. It
// reads only the atomic flags, so it is safe with or without mu held.
func (l *Library) ready() error {
	if !l.initialized.Load() {
		return ErrNotInitialized
	}
	if l.frozen.Load() {
		return ErrFrozen
	}
	return nil
}

// slotErr explains a nil slot snapshot on the data plane, in the same
// precedence order readyLocked uses.
func (l *Library) slotErr() error {
	if !l.initialized.Load() {
		return ErrNotInitialized
	}
	if l.frozen.Load() {
		return ErrFrozen
	}
	return ErrSlotInactive
}

// localCallLocked sends one request to the Migration Enclave over the
// attested channel and decodes the reply. Callers hold mu.
func (l *Library) localCallLocked(req *localRequest) (*localResponse, error) {
	raw, err := encodeLocalRequest(req)
	if err != nil {
		return nil, err
	}
	wire, err := l.session.Channel.Seal(raw)
	if err != nil {
		return nil, fmt.Errorf("seal local request: %w", err)
	}
	replyWire, err := l.me.LocalCall(l.sessionID, wire)
	if err != nil {
		return nil, err
	}
	replyRaw, err := l.session.Channel.Open(replyWire)
	if err != nil {
		return nil, fmt.Errorf("open local reply: %w", err)
	}
	return decodeLocalResponse(replyRaw)
}

// SealMigratable is sgx_seal_migratable_data (Listing 2): identical
// parameters to the native sealing function, but the encryption key is
// the MSK, so the blob stays decryptable after migration. No EGETKEY is
// needed, which makes it marginally faster than native sealing (Fig. 4).
// The MSK is immutable once the initialized flag is observed, so no lock
// is taken.
func (l *Library) SealMigratable(additionalMACText, plaintext []byte) ([]byte, error) {
	if err := l.enclave.ECall(); err != nil {
		return nil, err
	}
	if err := l.ready(); err != nil {
		return nil, err
	}
	return l.mskSealer.Seal(additionalMACText, plaintext)
}

// UnsealMigratable is sgx_unseal_migratable_data (Listing 2).
func (l *Library) UnsealMigratable(blob []byte) (plaintext, additionalMACText []byte, err error) {
	if err := l.enclave.ECall(); err != nil {
		return nil, nil, err
	}
	if err := l.ready(); err != nil {
		return nil, nil, err
	}
	return l.mskSealer.Unseal(blob)
}

// CreateCounter is sgx_create_migratable_counter (Listing 2): it wraps a
// hardware counter and returns the library-assigned counter id plus the
// initial effective value. The developer stores only the small id, not
// the SGX UUID (§VI-B). Creating persists the library blob (the paper's
// "additional sealing of the internal data buffer").
func (l *Library) CreateCounter() (id int, value uint32, err error) {
	if err := l.enclave.ECall(); err != nil {
		return 0, 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.ready(); err != nil {
		return 0, 0, err
	}
	slot := -1
	for i := 0; i < NumCounters; i++ {
		if !l.st.CountersActive[i] {
			slot = i
			break
		}
	}
	if slot < 0 {
		return 0, 0, ErrNoFreeSlot
	}
	uuid, hw, err := l.counters.Create(l.enclave)
	if err != nil {
		return 0, 0, fmt.Errorf("create hardware counter: %w", err)
	}
	l.st.CountersActive[slot] = true
	l.st.CounterUUIDs[slot] = uuid
	l.st.CounterOffsets[slot] = 0
	if err := l.persistLocked(); err != nil {
		return 0, 0, err
	}
	l.publishSlotLocked(slot)
	return slot, hw, nil
}

// DestroyCounter is sgx_destroy_migratable_counter (Listing 2).
func (l *Library) DestroyCounter(id int) error {
	if err := l.enclave.ECall(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.ready(); err != nil {
		return err
	}
	if err := l.checkSlotLocked(id); err != nil {
		return err
	}
	// Unpublish first so the data plane stops handing out the UUID, then
	// destroy the hardware counter.
	l.slots[id].Store(nil)
	if err := l.counters.Destroy(l.enclave, l.st.CounterUUIDs[id]); err != nil {
		l.publishSlotLocked(id) // destroy failed; the slot stays active
		return fmt.Errorf("destroy hardware counter: %w", err)
	}
	l.st.CountersActive[id] = false
	l.st.CounterUUIDs[id] = pse.UUID{}
	l.st.CounterOffsets[id] = 0
	return l.persistLocked()
}

// IncrementCounter is sgx_increment_migratable_counter (Listing 2): it
// increments the hardware counter and returns the effective value
// (hardware + offset), guarding against overflow of the effective value.
func (l *Library) IncrementCounter(id int) (uint32, error) {
	if err := l.enclave.ECall(); err != nil {
		return 0, err
	}
	if id < 0 || id >= NumCounters {
		return 0, ErrBadSlot
	}
	s := l.slots[id].Load()
	if s == nil {
		return 0, l.slotErr()
	}
	hw, err := l.counters.Increment(l.enclave, s.uuid)
	if err != nil {
		return 0, fmt.Errorf("increment hardware counter: %w", err)
	}
	return effective(s.offset, hw)
}

// ReadCounter is sgx_read_migratable_counter (Listing 2).
func (l *Library) ReadCounter(id int) (uint32, error) {
	if err := l.enclave.ECall(); err != nil {
		return 0, err
	}
	if id < 0 || id >= NumCounters {
		return 0, ErrBadSlot
	}
	s := l.slots[id].Load()
	if s == nil {
		return 0, l.slotErr()
	}
	hw, err := l.counters.Read(l.enclave, s.uuid)
	if err != nil {
		return 0, fmt.Errorf("read hardware counter: %w", err)
	}
	return effective(s.offset, hw)
}

func (l *Library) checkSlotLocked(id int) error {
	if id < 0 || id >= NumCounters {
		return ErrBadSlot
	}
	if !l.st.CountersActive[id] {
		return ErrSlotInactive
	}
	return nil
}

// effective computes hardware + offset with overflow protection (the
// extra check the paper attributes increment overhead to).
func effective(offset, hw uint32) (uint32, error) {
	if offset > 0 && hw > ^uint32(0)-offset {
		return 0, ErrCounterOverflow
	}
	return hw + offset, nil
}

// StartMigration is migration_start (Listing 1): it freezes the library,
// destroys the hardware counters on this machine (fork prevention, R3 —
// the process "does not proceed until it receives the SGX_SUCCESS return
// code"), and hands the migration data to the local Migration Enclave
// addressed to the destination machine's Migration Enclave.
//
// If the Migration Enclave cannot reach the destination, StartMigration
// returns ErrMigrationPending: the data stays at the source ME until the
// error is resolved or the migration is redirected (§V-D); the library
// remains frozen either way.
func (l *Library) StartMigration(dest transport.Address) error {
	return l.StartMigrationCtx(obs.TraceContext{}, dest)
}

// StartMigrationCtx is StartMigration under an existing trace context:
// the freeze span and the whole downstream protocol (offer, data, WAN
// hops, destination restore, DONE) join the caller's trace. A zero
// context starts a fresh trace when an observer is installed.
func (l *Library) StartMigrationCtx(tc obs.TraceContext, dest transport.Address) error {
	return l.startMigration(tc, dest, false)
}

// StartMigrationHeld freezes and exports exactly like StartMigration but
// leaves the migration data HELD at the source Migration Enclave instead
// of transferring it: the batch pipeline streams the held envelope via
// BatchSender.Add, so many enclaves share one attested stream while each
// freeze window stays its own. The fork-prevention sequence (counter
// destruction before any data leaves, R3/R4) is identical.
func (l *Library) StartMigrationHeld(dest transport.Address) error {
	return l.startMigration(obs.TraceContext{}, dest, true)
}

// StartMigrationHeldCtx is StartMigrationHeld under an existing trace.
func (l *Library) StartMigrationHeldCtx(tc obs.TraceContext, dest transport.Address) error {
	return l.startMigration(tc, dest, true)
}

func (l *Library) startMigration(tc obs.TraceContext, dest transport.Address, hold bool) error {
	if err := l.enclave.ECall(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.ready(); err != nil {
		return err
	}
	sp, tc := l.obs.StartSpan("lib.freeze", tc)
	if sp != nil {
		sp.Site = l.actor()
		defer sp.End()
	}

	// 1. Pre-flight: read every effective counter value before destroying
	// anything, so an already-overflowed counter aborts the migration
	// while the library is still fully operational.
	for i := 0; i < NumCounters; i++ {
		if !l.st.CountersActive[i] {
			continue
		}
		hw, err := l.counters.Read(l.enclave, l.st.CounterUUIDs[i])
		if err != nil {
			return fmt.Errorf("read counter %d for migration: %w", i, err)
		}
		if _, err := effective(l.st.CounterOffsets[i], hw); err != nil {
			return err
		}
	}

	// 2. Destroy all hardware counters, capturing each counter's final
	// value in the same firmware transaction: a concurrent increment is
	// either included in the exported value or fails against the
	// destroyed counter, so no acknowledged increment is ever rolled
	// back (R4). Every destroy must succeed before any data leaves the
	// machine; SGX guarantees destroyed counters can never be accessed
	// again, so a restarted stale library cannot fork (R3).
	var data MigrationData
	data.MSK = l.st.MSK
	for i := 0; i < NumCounters; i++ {
		if !l.st.CountersActive[i] {
			continue
		}
		final, err := l.counters.DestroyAndRead(l.enclave, l.st.CounterUUIDs[i])
		if err != nil {
			return fmt.Errorf("destroy counter %d before migration: %w", i, err)
		}
		eff, err := effective(l.st.CounterOffsets[i], final)
		if err != nil {
			// Increments raced the pre-flight check past the top; export
			// the saturated maximum so the value still never regresses.
			eff = ^uint32(0)
		}
		data.CountersActive[i] = true
		data.CounterValues[i] = eff
	}
	// The escrow binding counter is destroyed with the app counters: from
	// this moment no escrowed copy of this enclave's state can ever win a
	// recovery (the blob is useless without capturing the counter at
	// exactly the sealed value), so the migrated-away state cannot be
	// resurrected on a rack peer while it lives on at the destination.
	if l.escrow != nil && l.st.BindUUID.ID != 0 {
		if _, err := l.counters.DestroyAndRead(l.enclave, l.st.BindUUID); err != nil {
			if errors.Is(err, pse.ErrCounterNotFound) {
				// Already destroyed: a recovery won the counter first —
				// this copy was resurrected elsewhere and must not export
				// state.
				l.st.Frozen = 1
				l.frozen.Store(true)
				l.publishAllSlotsLocked()
				l.obs.Event(obs.EventZombieRefused, l.actor(), "migration refused: escrow binding already destroyed by recovery", tc)
				return ErrRecoveredAway
			}
			return fmt.Errorf("destroy escrow binding before migration: %w", err)
		}
	}

	// 3. Freeze, unpublish the data plane, and persist, so restarts of
	// this enclave refuse to run and concurrent operations fail with
	// ErrFrozen from here on. The frozen blob is escrowed too (tier 2 of
	// persistLocked): recovery attempts then report ErrFrozen instead of
	// a bare binding failure.
	l.st.Frozen = 1
	l.frozen.Store(true)
	l.publishAllSlotsLocked()
	if l.escrow != nil && l.st.BindUUID.ID != 0 {
		l.st.BindVer++ // supersedes the pre-freeze record in the store
	}
	if err := l.persistLocked(); err != nil {
		return err
	}
	l.obs.Event(obs.EventFreeze, l.actor(), "frozen for migration to "+string(dest), tc)

	// 4. Ship the migration data to the Migration Enclave (held batches
	// stop at the ME; the batch stream moves the envelope itself).
	raw, err := data.Encode()
	if err != nil {
		return err
	}
	op := opMigrateOut
	if hold {
		op = opMigrateOutHold
	}
	reply, err := l.localCallLocked(&localRequest{
		Op:    op,
		Dest:  string(dest),
		Body:  raw,
		Trace: tc.Marshal(),
	})
	if err != nil {
		return fmt.Errorf("send migration data: %w", err)
	}
	l.doneToken = reply.Token
	if reply.Status == statusPending {
		return fmt.Errorf("%w: %s", ErrMigrationPending, reply.Detail)
	}
	return nil
}

// MigrationComplete asks the local Migration Enclave whether the DONE
// confirmation for this library's migration has arrived from the
// destination (the final arrow of Fig. 2).
func (l *Library) MigrationComplete() (bool, error) {
	if err := l.enclave.ECall(); err != nil {
		return false, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.initialized.Load() {
		return false, ErrNotInitialized
	}
	if l.doneToken == nil {
		return false, errors.New("core: no migration started")
	}
	reply, err := l.localCallLocked(&localRequest{Op: opCheckDone, Token: l.doneToken})
	if err != nil {
		return false, err
	}
	return reply.Status == statusDone, nil
}

// MigrationToken returns a copy of the done-token of the migration this
// library started, or nil if none was started. The machine operator uses
// it with MigrationEnclave.Redirect / OutstandingTokens to retry or
// re-target a pending migration (§V-D).
func (l *Library) MigrationToken() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.doneToken == nil {
		return nil
	}
	return append([]byte(nil), l.doneToken...)
}

// Frozen reports whether the library has been frozen by a migration.
func (l *Library) Frozen() bool {
	return l.frozen.Load()
}

// ActiveCounters returns the number of active counter slots.
func (l *Library) ActiveCounters() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := 0; i < NumCounters; i++ {
		if l.st.CountersActive[i] {
			n++
		}
	}
	return n
}
