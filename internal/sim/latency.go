// Package sim provides the simulation kernel shared by the SGX substrate:
// a calibrated latency model for the hardware and firmware operations the
// paper's evaluation depends on, and a pluggable clock so unit tests run
// instantly while benchmarks reproduce the paper's timing shape.
//
// The absolute costs are calibrated against the paper's Figure 3 and
// Figure 4: Platform Services monotonic-counter operations are rate-limited
// firmware transactions in the 60-250 ms range, EGETKEY is tens of
// microseconds, and an ECALL boundary crossing is a few microseconds.
// Scale lets benchmarks trade fidelity for runtime (see EXPERIMENTS.md).
package sim

import (
	"sync"
	"time"
)

// Op identifies a simulated hardware or firmware operation with a
// latency cost. Costs are paid through a Latency model.
type Op int

// Simulated operations.
const (
	OpECall Op = iota + 1
	OpOCall
	OpEGetKey
	OpEReport
	OpCounterCreate
	OpCounterRead
	OpCounterIncrement
	OpCounterDestroy
	OpQuote
	OpIASVerify
	OpNetworkRTT
	OpVMPageCopy // per 4 KiB page
)

// String returns the operation name for diagnostics.
func (o Op) String() string {
	switch o {
	case OpECall:
		return "ecall"
	case OpOCall:
		return "ocall"
	case OpEGetKey:
		return "egetkey"
	case OpEReport:
		return "ereport"
	case OpCounterCreate:
		return "counter-create"
	case OpCounterRead:
		return "counter-read"
	case OpCounterIncrement:
		return "counter-increment"
	case OpCounterDestroy:
		return "counter-destroy"
	case OpQuote:
		return "quote"
	case OpIASVerify:
		return "ias-verify"
	case OpNetworkRTT:
		return "network-rtt"
	case OpVMPageCopy:
		return "vm-page-copy"
	default:
		return "unknown-op"
	}
}

// PaperCosts returns the per-operation costs calibrated to the paper's
// measurements (Intel ME counter latencies dominate; EGETKEY explains why
// migratable sealing is slightly faster than native sealing in Fig. 4).
func PaperCosts() map[Op]time.Duration {
	return map[Op]time.Duration{
		OpECall:            3 * time.Microsecond,
		OpOCall:            3 * time.Microsecond,
		OpEGetKey:          35 * time.Microsecond,
		OpEReport:          10 * time.Microsecond,
		OpCounterCreate:    240 * time.Millisecond,
		OpCounterRead:      60 * time.Millisecond,
		OpCounterIncrement: 95 * time.Millisecond,
		OpCounterDestroy:   200 * time.Millisecond,
		OpQuote:            15 * time.Millisecond,
		OpIASVerify:        40 * time.Millisecond,
		OpNetworkRTT:       500 * time.Microsecond,
		OpVMPageCopy:       2 * time.Microsecond,
	}
}

// Latency charges simulated operation costs. The zero value is unusable;
// construct with NewLatency. Latency is safe for concurrent use.
type Latency struct {
	mu    sync.Mutex
	costs map[Op]time.Duration
	scale float64
	sleep func(time.Duration)

	charged map[Op]int
	total   time.Duration
}

// NewLatency builds a latency model with the paper-calibrated costs and
// the given scale factor. Scale 0 charges no real time (unit tests);
// scale 1 reproduces paper-magnitude costs; intermediate scales preserve
// ratios while shortening wall-clock time.
func NewLatency(scale float64) *Latency {
	return &Latency{
		costs:   PaperCosts(),
		scale:   scale,
		sleep:   time.Sleep,
		charged: make(map[Op]int),
	}
}

// NewInstantLatency is shorthand for NewLatency(0): all costs are
// accounted but no real time passes.
func NewInstantLatency() *Latency { return NewLatency(0) }

// SetCost overrides the cost of one operation (ablation studies).
func (l *Latency) SetCost(op Op, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.costs[op] = d
}

// Cost returns the unscaled cost of an operation.
func (l *Latency) Cost(op Op) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.costs[op]
}

// Scale returns the configured scale factor.
func (l *Latency) Scale() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.scale
}

// Charge pays for one operation: it records the virtual cost and sleeps
// for cost*scale of real time.
func (l *Latency) Charge(op Op) {
	l.ChargeN(op, 1)
}

// ChargeN pays for n consecutive operations of the same kind.
func (l *Latency) ChargeN(op Op, n int) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	cost := l.costs[op]
	l.charged[op] += n
	virtual := time.Duration(n) * cost
	l.total += virtual
	scale := l.scale
	sleep := l.sleep
	l.mu.Unlock()

	if scale > 0 && virtual > 0 {
		sleep(time.Duration(float64(virtual) * scale))
	}
}

// VirtualTotal returns the accumulated virtual (unscaled) time charged.
func (l *Latency) VirtualTotal() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Counts returns a copy of the per-operation charge counts, which tests
// use to assert that a code path performed exactly the expected hardware
// operations (e.g. one EGETKEY for native sealing, zero for migratable).
func (l *Latency) Counts() map[Op]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[Op]int, len(l.charged))
	for k, v := range l.charged {
		out[k] = v
	}
	return out
}

// Reset clears accumulated accounting but keeps costs and scale.
func (l *Latency) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.charged = make(map[Op]int)
	l.total = 0
}
