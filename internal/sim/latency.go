// Package sim provides the simulation kernel shared by the SGX substrate:
// a calibrated latency model for the hardware and firmware operations the
// paper's evaluation depends on, and a pluggable clock so unit tests run
// instantly while benchmarks reproduce the paper's timing shape.
//
// The absolute costs are calibrated against the paper's Figure 3 and
// Figure 4: Platform Services monotonic-counter operations are rate-limited
// firmware transactions in the 60-250 ms range, EGETKEY is tens of
// microseconds, and an ECALL boundary crossing is a few microseconds.
// Scale lets benchmarks trade fidelity for runtime (see EXPERIMENTS.md).
package sim

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies a simulated hardware or firmware operation with a
// latency cost. Costs are paid through a Latency model.
type Op int

// Simulated operations.
const (
	OpECall Op = iota + 1
	OpOCall
	OpEGetKey
	OpEReport
	OpCounterCreate
	OpCounterRead
	OpCounterIncrement
	OpCounterDestroy
	OpQuote
	OpIASVerify
	OpNetworkRTT
	OpVMPageCopy // per 4 KiB page
	// OpReplicaApply is the replica-side bookkeeping of one replicated
	// counter message (validate the group UUID capability and owner,
	// update the slot table inside the agent enclave) — charged per
	// replication hop on top of the network RTT and the firmware
	// transaction itself.
	OpReplicaApply
	// OpWANHop is one traversal of an inter-datacenter WAN link: the
	// round-trip propagation delay between two federated sites. Each
	// transport.WANLink owns its own Latency model and sets this op's
	// cost to the link's configured RTT, so per-link accounting (hop
	// counts, virtual time) stays separable from the intra-DC model.
	OpWANHop
	// OpWANByte is one payload byte serialized onto the WAN link (the
	// bandwidth model): cost = 1/bandwidth, charged per request and
	// reply byte via ChargeN, so large escrow blobs and migration
	// envelopes pay their transmission time while small control
	// messages stay RTT-bound.
	OpWANByte
)

// maxOp bounds the dense per-op accounting arrays. Ops outside [0, maxOp)
// fall back to a mutex-protected overflow table, so arbitrary Op values
// stay correct, just slower.
const maxOp = 32

// String returns the operation name for diagnostics.
func (o Op) String() string {
	switch o {
	case OpECall:
		return "ecall"
	case OpOCall:
		return "ocall"
	case OpEGetKey:
		return "egetkey"
	case OpEReport:
		return "ereport"
	case OpCounterCreate:
		return "counter-create"
	case OpCounterRead:
		return "counter-read"
	case OpCounterIncrement:
		return "counter-increment"
	case OpCounterDestroy:
		return "counter-destroy"
	case OpQuote:
		return "quote"
	case OpIASVerify:
		return "ias-verify"
	case OpNetworkRTT:
		return "network-rtt"
	case OpVMPageCopy:
		return "vm-page-copy"
	case OpReplicaApply:
		return "replica-apply"
	case OpWANHop:
		return "wan-hop"
	case OpWANByte:
		return "wan-byte"
	default:
		return "unknown-op"
	}
}

// PaperCosts returns the per-operation costs calibrated to the paper's
// measurements (Intel ME counter latencies dominate; EGETKEY explains why
// migratable sealing is slightly faster than native sealing in Fig. 4).
func PaperCosts() map[Op]time.Duration {
	return map[Op]time.Duration{
		OpECall:            3 * time.Microsecond,
		OpOCall:            3 * time.Microsecond,
		OpEGetKey:          35 * time.Microsecond,
		OpEReport:          10 * time.Microsecond,
		OpCounterCreate:    240 * time.Millisecond,
		OpCounterRead:      60 * time.Millisecond,
		OpCounterIncrement: 95 * time.Millisecond,
		OpCounterDestroy:   200 * time.Millisecond,
		OpQuote:            15 * time.Millisecond,
		OpIASVerify:        40 * time.Millisecond,
		OpNetworkRTT:       500 * time.Microsecond,
		OpVMPageCopy:       2 * time.Microsecond,
		OpReplicaApply:     8 * time.Microsecond,
		// Defaults for a mid-continental link (50 ms RTT, 1 Gbps);
		// transport.WANLink overrides both per link from its config.
		OpWANHop:  50 * time.Millisecond,
		OpWANByte: 8 * time.Nanosecond,
	}
}

// Latency charges simulated operation costs. The zero value is unusable;
// construct with NewLatency. Latency is safe for concurrent use.
//
// Charge is on the hot path of every simulated hardware operation (an
// ECALL is charged on every enclave entry), so the accounting uses dense
// per-op atomic counters instead of a shared mutex: concurrent enclaves
// charging disjoint — or even identical — operations never serialize.
type Latency struct {
	scale atomic.Uint64 // float64 bits; atomic so SetScale races with no charge
	sleep func(time.Duration)

	costs   [maxOp]atomic.Int64 // nanoseconds per op
	charged [maxOp]atomic.Int64

	// banked virtual time: SetCost banks each op's accrued virtual time
	// at the outgoing cost (bankedNanos) and records how many charges
	// were priced in (bankedCount), so past charges keep the cost that
	// was in effect when they happened while the hot ChargeN path stays
	// a single atomic add. VirtualTotal prices only the un-banked
	// remainder at the current cost.
	bankedNanos atomic.Int64
	bankedCount [maxOp]int64 // guarded by mu

	// Overflow accounting for Op values outside the dense range. These
	// charges are priced into bankedNanos at charge time (they already
	// hold mu, so exact accounting is free).
	mu           sync.Mutex
	extraCosts   map[Op]time.Duration
	extraCharged map[Op]int
}

// NewLatency builds a latency model with the paper-calibrated costs and
// the given scale factor. Scale 0 charges no real time (unit tests);
// scale 1 reproduces paper-magnitude costs; intermediate scales preserve
// ratios while shortening wall-clock time.
func NewLatency(scale float64) *Latency {
	l := &Latency{
		sleep: time.Sleep,
	}
	l.scale.Store(math.Float64bits(scale))
	for op, d := range PaperCosts() {
		l.SetCost(op, d)
	}
	return l
}

// NewInstantLatency is shorthand for NewLatency(0): all costs are
// accounted but no real time passes.
func NewInstantLatency() *Latency { return NewLatency(0) }

// dense reports whether an op lands in the array-backed fast path.
func dense(op Op) bool { return op >= 0 && int(op) < maxOp }

// SetCost overrides the cost of one operation (ablation studies). The
// op's charges so far stay priced at the outgoing cost: they are banked
// before the new cost takes effect.
func (l *Latency) SetCost(op Op, d time.Duration) {
	if dense(op) {
		l.mu.Lock()
		old := l.costs[op].Load()
		n := l.charged[op].Load()
		if delta := n - l.bankedCount[op]; delta != 0 && old != 0 {
			l.bankedNanos.Add(delta * old)
		}
		l.bankedCount[op] = n
		l.costs[op].Store(int64(d))
		l.mu.Unlock()
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.extraCosts == nil {
		l.extraCosts = make(map[Op]time.Duration)
	}
	l.extraCosts[op] = d
}

// Cost returns the unscaled cost of an operation.
func (l *Latency) Cost(op Op) time.Duration {
	if dense(op) {
		return time.Duration(l.costs[op].Load())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.extraCosts[op]
}

// Scale returns the configured scale factor.
func (l *Latency) Scale() float64 { return math.Float64frombits(l.scale.Load()) }

// SetScale changes the scale factor for subsequent charges. Benchmarks
// use it to provision large worlds instantly (scale 0) and then pay
// paper-magnitude latencies only for the measured phase; virtual-time
// accounting is unaffected, since it is recorded unscaled.
func (l *Latency) SetScale(scale float64) { l.scale.Store(math.Float64bits(scale)) }

// Charge pays for one operation: it records the virtual cost and sleeps
// for cost*scale of real time.
func (l *Latency) Charge(op Op) {
	l.ChargeN(op, 1)
}

// ChargeN pays for n consecutive operations of the same kind. At scale 0
// (the unit-test and framework-cost-benchmark configuration) the fast
// path is a single atomic add; the virtual total is derived lazily in
// VirtualTotal from the per-op counts and the cost table.
func (l *Latency) ChargeN(op Op, n int) {
	if n <= 0 {
		return
	}
	if dense(op) {
		l.charged[op].Add(int64(n))
		scale := l.Scale()
		if scale == 0 {
			return
		}
		if virtual := time.Duration(n) * time.Duration(l.costs[op].Load()); virtual > 0 {
			l.sleep(time.Duration(float64(virtual) * scale))
		}
		return
	}
	l.mu.Lock()
	cost := l.extraCosts[op]
	if l.extraCharged == nil {
		l.extraCharged = make(map[Op]int)
	}
	l.extraCharged[op] += n
	l.bankedNanos.Add(int64(n) * int64(cost))
	l.mu.Unlock()
	if virtual := time.Duration(n) * cost; virtual > 0 {
		if scale := l.Scale(); scale > 0 {
			l.sleep(time.Duration(float64(virtual) * scale))
		}
	}
}

// VirtualTotal returns the accumulated virtual (unscaled) time charged,
// priced at the cost in effect when each charge happened: time banked at
// SetCost boundaries plus the un-banked remainder at current costs.
func (l *Latency) VirtualTotal() time.Duration {
	l.mu.Lock()
	total := time.Duration(l.bankedNanos.Load())
	for op := 0; op < maxOp; op++ {
		if n := l.charged[op].Load() - l.bankedCount[op]; n != 0 {
			total += time.Duration(n) * time.Duration(l.costs[op].Load())
		}
	}
	l.mu.Unlock()
	return total
}

// Counts returns a copy of the per-operation charge counts, which tests
// use to assert that a code path performed exactly the expected hardware
// operations (e.g. one EGETKEY for native sealing, zero for migratable).
func (l *Latency) Counts() map[Op]int {
	out := make(map[Op]int)
	for op := 0; op < maxOp; op++ {
		if n := l.charged[op].Load(); n != 0 {
			out[Op(op)] = int(n)
		}
	}
	l.mu.Lock()
	for op, n := range l.extraCharged {
		if n != 0 {
			out[op] = n
		}
	}
	l.mu.Unlock()
	return out
}

// Reset clears accumulated accounting but keeps costs and scale.
func (l *Latency) Reset() {
	l.mu.Lock()
	for op := 0; op < maxOp; op++ {
		l.charged[op].Store(0)
		l.bankedCount[op] = 0
	}
	l.bankedNanos.Store(0)
	l.extraCharged = nil
	l.mu.Unlock()
}
