package sim

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyAccounting(t *testing.T) {
	l := NewInstantLatency()
	l.Charge(OpCounterIncrement)
	l.Charge(OpCounterIncrement)
	l.Charge(OpEGetKey)
	counts := l.Counts()
	if counts[OpCounterIncrement] != 2 {
		t.Fatalf("increment count = %d, want 2", counts[OpCounterIncrement])
	}
	if counts[OpEGetKey] != 1 {
		t.Fatalf("egetkey count = %d, want 1", counts[OpEGetKey])
	}
	want := 2*PaperCosts()[OpCounterIncrement] + PaperCosts()[OpEGetKey]
	if l.VirtualTotal() != want {
		t.Fatalf("virtual total = %v, want %v", l.VirtualTotal(), want)
	}
}

func TestLatencyChargeN(t *testing.T) {
	l := NewInstantLatency()
	l.ChargeN(OpVMPageCopy, 1000)
	if l.Counts()[OpVMPageCopy] != 1000 {
		t.Fatalf("count = %d", l.Counts()[OpVMPageCopy])
	}
	l.ChargeN(OpVMPageCopy, 0)
	l.ChargeN(OpVMPageCopy, -5)
	if l.Counts()[OpVMPageCopy] != 1000 {
		t.Fatal("non-positive n must not charge")
	}
}

func TestLatencyScaleSleeps(t *testing.T) {
	l := NewLatency(1.0)
	var slept time.Duration
	l.sleep = func(d time.Duration) { slept += d }
	l.Charge(OpCounterRead)
	if slept != PaperCosts()[OpCounterRead] {
		t.Fatalf("slept %v, want %v", slept, PaperCosts()[OpCounterRead])
	}
	l2 := NewLatency(0.5)
	var slept2 time.Duration
	l2.sleep = func(d time.Duration) { slept2 += d }
	l2.Charge(OpCounterRead)
	if slept2 != PaperCosts()[OpCounterRead]/2 {
		t.Fatalf("slept %v, want half cost", slept2)
	}
}

func TestLatencyZeroScaleDoesNotSleep(t *testing.T) {
	l := NewInstantLatency()
	l.sleep = func(time.Duration) { t.Fatal("sleep called at scale 0") }
	l.Charge(OpCounterCreate)
}

func TestLatencySetCost(t *testing.T) {
	l := NewInstantLatency()
	l.SetCost(OpCounterRead, time.Second)
	if l.Cost(OpCounterRead) != time.Second {
		t.Fatal("SetCost not applied")
	}
	l.Charge(OpCounterRead)
	if l.VirtualTotal() != time.Second {
		t.Fatalf("virtual total = %v", l.VirtualTotal())
	}
}

func TestLatencyReset(t *testing.T) {
	l := NewInstantLatency()
	l.Charge(OpQuote)
	l.Reset()
	if l.VirtualTotal() != 0 || len(l.Counts()) != 0 {
		t.Fatal("reset did not clear accounting")
	}
	if l.Cost(OpQuote) == 0 {
		t.Fatal("reset cleared cost table")
	}
}

func TestLatencyConcurrentCharges(t *testing.T) {
	l := NewInstantLatency()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Charge(OpECall)
			}
		}()
	}
	wg.Wait()
	if got := l.Counts()[OpECall]; got != 1600 {
		t.Fatalf("concurrent count = %d, want 1600", got)
	}
}

func TestOpString(t *testing.T) {
	ops := []Op{
		OpECall, OpOCall, OpEGetKey, OpEReport, OpCounterCreate, OpCounterRead,
		OpCounterIncrement, OpCounterDestroy, OpQuote, OpIASVerify, OpNetworkRTT,
		OpVMPageCopy,
	}
	seen := make(map[string]bool, len(ops))
	for _, op := range ops {
		s := op.String()
		if s == "unknown-op" || seen[s] {
			t.Fatalf("bad or duplicate name for op %d: %q", op, s)
		}
		seen[s] = true
	}
	if Op(999).String() != "unknown-op" {
		t.Fatal("unknown op name")
	}
}

func TestPaperCostsOrdering(t *testing.T) {
	c := PaperCosts()
	// The shape the paper depends on: counter ops are the slow ones, and
	// EGETKEY is slower than nothing but far cheaper than any counter op.
	for _, op := range []Op{OpCounterCreate, OpCounterRead, OpCounterIncrement, OpCounterDestroy} {
		if c[op] <= c[OpEGetKey] {
			t.Fatalf("%v (%v) must cost more than EGETKEY (%v)", op, c[op], c[OpEGetKey])
		}
	}
	if c[OpCounterCreate] <= c[OpCounterIncrement] {
		t.Fatal("create must cost more than increment")
	}
	if c[OpCounterIncrement] <= c[OpCounterRead] {
		t.Fatal("increment must cost more than read")
	}
}

// TestSetCostAfterChargeKeepsHistoricalPricing pins the charge-time
// pricing semantics: changing an op's cost must not reprice charges that
// already happened (ablation sweeps rely on VirtualTotal deltas).
func TestSetCostAfterChargeKeepsHistoricalPricing(t *testing.T) {
	l := NewInstantLatency()
	l.SetCost(OpQuote, time.Millisecond)
	l.Charge(OpQuote)
	l.SetCost(OpQuote, 2*time.Millisecond)
	if got := l.VirtualTotal(); got != time.Millisecond {
		t.Fatalf("virtual total after repricing = %v, want 1ms", got)
	}
	l.Charge(OpQuote)
	if got := l.VirtualTotal(); got != 3*time.Millisecond {
		t.Fatalf("virtual total = %v, want 3ms", got)
	}
	// Zeroing the cost must not erase already-charged time either.
	l.SetCost(OpQuote, 0)
	if got := l.VirtualTotal(); got != 3*time.Millisecond {
		t.Fatalf("virtual total after zeroing = %v, want 3ms", got)
	}
	if l.Counts()[OpQuote] != 2 {
		t.Fatalf("counts = %d, want 2", l.Counts()[OpQuote])
	}
	l.Reset()
	if l.VirtualTotal() != 0 {
		t.Fatal("reset did not clear banked time")
	}
}
