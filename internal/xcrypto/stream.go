package xcrypto

import (
	"crypto/cipher"
	"encoding/binary"
)

// StreamSealer seals and opens the frames of one direction of a chunked,
// pipelined stream. Unlike Channel — whose Open enforces strict in-order
// delivery — a StreamSealer carries the sequence number explicitly per
// frame: the sender may have many frames in flight and the receiver may
// decrypt them in any order, deduplicating and reassembling above this
// layer. Safety rests on the caller never sealing two different frames at
// the same sequence under one key; derive a fresh directional key per
// stream (e.g. from a session secret plus a use counter) and start at 0.
//
// The nonce is the sequence number itself and the sequence is additionally
// bound as AAD (prefixed to the caller's own AAD), so a frame can neither
// be replayed at another position nor migrated between streams that bind
// distinct AAD. A StreamSealer is safe for concurrent use.
type StreamSealer struct {
	aead cipher.AEAD
}

// NewStreamSealer builds a sealer for one stream direction.
func NewStreamSealer(key [32]byte) (*StreamSealer, error) {
	aead, err := NewAESGCM(key[:])
	if err != nil {
		return nil, err
	}
	return &StreamSealer{aead: aead}, nil
}

// Overhead returns the bytes SealAt adds beyond the plaintext length.
func (s *StreamSealer) Overhead() int { return s.aead.Overhead() }

// streamAAD prefixes the sequence number to the caller's AAD.
func streamAAD(seq uint64, aad []byte) []byte {
	full := make([]byte, 8, 8+len(aad))
	binary.BigEndian.PutUint64(full, seq)
	return append(full, aad...)
}

// SealAt encrypts one frame at stream position seq, binding seq and aad.
func (s *StreamSealer) SealAt(seq uint64, plaintext, aad []byte) []byte {
	nonce := channelNonce(seq)
	return s.aead.Seal(nil, nonce[:], plaintext, streamAAD(seq, aad))
}

// OpenAt decrypts the frame sealed at position seq. A frame presented at
// any other position, or from a stream with different AAD, fails
// authentication.
func (s *StreamSealer) OpenAt(seq uint64, wire, aad []byte) ([]byte, error) {
	nonce := channelNonce(seq)
	plaintext, err := s.aead.Open(nil, nonce[:], wire, streamAAD(seq, aad))
	if err != nil {
		return nil, ErrReplayOrDecrypt(err)
	}
	return plaintext, nil
}
