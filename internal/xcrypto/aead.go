package xcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Errors returned by AEAD sealing and secure channels.
var (
	ErrCiphertextShort = errors.New("xcrypto: ciphertext too short")
	ErrDecrypt         = errors.New("xcrypto: decryption failed")
	ErrReplay          = errors.New("xcrypto: message replayed or out of order")
	ErrChannelClosed   = errors.New("xcrypto: channel closed")
)

// NewAESGCM returns an AES-GCM AEAD for a 16- or 32-byte key.
func NewAESGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("aes cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("gcm: %w", err)
	}
	return aead, nil
}

// Sealer is an AES-GCM encryptor with the key schedule built exactly once.
// Constructing the cipher and GCM instance costs more than encrypting a
// small message, so every hot path that reuses a key (sealing keys, the
// Migration Sealing Key, channel keys) should hold a Sealer instead of
// calling Encrypt/Decrypt. A Sealer is safe for concurrent use.
type Sealer struct {
	aead cipher.AEAD
}

// NewSealer builds a Sealer for a 16- or 32-byte key.
func NewSealer(key []byte) (*Sealer, error) {
	aead, err := NewAESGCM(key)
	if err != nil {
		return nil, err
	}
	return &Sealer{aead: aead}, nil
}

// Overhead returns the bytes Seal adds beyond the plaintext length
// (nonce plus authentication tag).
func (s *Sealer) Overhead() int { return s.aead.NonceSize() + s.aead.Overhead() }

// SealAppend encrypts plaintext, binding aad, and appends the random
// nonce followed by the ciphertext and tag to dst, reusing dst's spare
// capacity when possible. It returns the extended buffer.
func (s *Sealer) SealAppend(dst, plaintext, aad []byte) ([]byte, error) {
	ns := s.aead.NonceSize()
	off := len(dst)
	if need := off + ns + len(plaintext) + s.aead.Overhead(); cap(dst) < need {
		grown := make([]byte, off, need)
		copy(grown, dst)
		dst = grown
	}
	nonce := dst[off : off+ns]
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("nonce: %w", err)
	}
	return s.aead.Seal(dst[:off+ns], nonce, plaintext, aad), nil
}

// Seal encrypts plaintext with a fresh random nonce prepended, the same
// wire format as Encrypt.
func (s *Sealer) Seal(plaintext, aad []byte) ([]byte, error) {
	return s.SealAppend(nil, plaintext, aad)
}

// Open reverses Seal. It returns ErrDecrypt if authentication fails.
func (s *Sealer) Open(ciphertext, aad []byte) ([]byte, error) {
	ns := s.aead.NonceSize()
	if len(ciphertext) < ns {
		return nil, ErrCiphertextShort
	}
	nonce, body := ciphertext[:ns], ciphertext[ns:]
	plaintext, err := s.aead.Open(nil, nonce, body, aad)
	if err != nil {
		return nil, ErrReplayOrDecrypt(err)
	}
	return plaintext, nil
}

// Encrypt seals plaintext with AES-GCM under key, binding aad. The random
// nonce is prepended to the returned ciphertext. It is a compatibility
// wrapper that builds the key schedule per call; hold a Sealer when the
// key is reused.
func Encrypt(key, plaintext, aad []byte) ([]byte, error) {
	s, err := NewSealer(key)
	if err != nil {
		return nil, err
	}
	return s.Seal(plaintext, aad)
}

// Decrypt reverses Encrypt. It returns ErrDecrypt if authentication fails.
func Decrypt(key, ciphertext, aad []byte) ([]byte, error) {
	s, err := NewSealer(key)
	if err != nil {
		return nil, err
	}
	return s.Open(ciphertext, aad)
}

// ErrReplayOrDecrypt normalizes AEAD open failures to ErrDecrypt while
// keeping the underlying detail wrapped for diagnostics.
func ErrReplayOrDecrypt(err error) error {
	return fmt.Errorf("%w: %v", ErrDecrypt, err)
}

// channelNonceSize is the AES-GCM nonce size used by Channel.
const channelNonceSize = 12

// Channel is a bidirectional secure channel built over a shared secret,
// as established between two enclaves by attested Diffie-Hellman. Each
// direction uses an independent key and a strictly increasing sequence
// number, so replayed, reordered, or cross-directional messages are
// rejected. Channel is safe for concurrent use.
//
// The directional AEADs are built once at channel construction, and the
// nonce is the sequence counter itself (unique per direction because each
// direction has its own key and a strictly increasing sequence), so a
// message costs neither a key schedule nor a crypto/rand read.
type Channel struct {
	mu      sync.Mutex
	send    cipher.AEAD
	recv    cipher.AEAD
	sendSeq uint64
	recvSeq uint64
	closed  bool
}

// ChannelPair derives the two endpoints of a secure channel from a shared
// secret and a transcript binding. initiator and responder views agree on
// the directional keys but swap their roles.
func ChannelPair(sharedSecret, transcript []byte) (initiator, responder *Channel) {
	kInit := DeriveKey(sharedSecret, "channel-initiator", transcript)
	kResp := DeriveKey(sharedSecret, "channel-responder", transcript)
	aInit, err := NewAESGCM(kInit[:])
	if err != nil {
		// Unreachable: DeriveKey always returns a 32-byte key.
		panic(fmt.Sprintf("xcrypto: channel aead: %v", err))
	}
	aResp, err := NewAESGCM(kResp[:])
	if err != nil {
		panic(fmt.Sprintf("xcrypto: channel aead: %v", err))
	}
	initiator = &Channel{send: aInit, recv: aResp}
	responder = &Channel{send: aResp, recv: aInit}
	return initiator, responder
}

// NewChannel builds one endpoint of a secure channel. Pass isInitiator
// according to the endpoint's role in the key agreement; the two sides
// must disagree on it.
func NewChannel(sharedSecret, transcript []byte, isInitiator bool) *Channel {
	init, resp := ChannelPair(sharedSecret, transcript)
	if isInitiator {
		return init
	}
	return resp
}

// channelNonce expands a sequence number into the deterministic per-message
// nonce. Uniqueness holds per direction because sequence numbers never
// repeat under one directional key.
func channelNonce(seq uint64) [channelNonceSize]byte {
	var nonce [channelNonceSize]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	return nonce
}

// Seal encrypts a message for the peer, binding the channel sequence
// number so the peer can detect replays and reordering.
func (c *Channel) Seal(plaintext []byte) ([]byte, error) {
	return c.SealAppend(nil, plaintext)
}

// SealAppend is Seal appending to dst, reusing its spare capacity.
func (c *Channel) SealAppend(dst, plaintext []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrChannelClosed
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], c.sendSeq)
	off := len(dst)
	if need := off + 8 + len(plaintext) + c.send.Overhead(); cap(dst) < need {
		grown := make([]byte, off, need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, hdr[:]...)
	nonce := channelNonce(c.sendSeq)
	out := c.send.Seal(dst, nonce[:], plaintext, hdr[:])
	c.sendSeq++
	return out, nil
}

// Open decrypts a message from the peer. Messages must arrive in order;
// any replay or gap is rejected with ErrReplay.
func (c *Channel) Open(wire []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrChannelClosed
	}
	if len(wire) < 8 {
		return nil, ErrCiphertextShort
	}
	seq := binary.BigEndian.Uint64(wire[:8])
	if seq != c.recvSeq {
		return nil, fmt.Errorf("%w: got seq %d want %d", ErrReplay, seq, c.recvSeq)
	}
	nonce := channelNonce(seq)
	plaintext, err := c.recv.Open(nil, nonce[:], wire[8:], wire[:8])
	if err != nil {
		return nil, ErrReplayOrDecrypt(err)
	}
	c.recvSeq++
	return plaintext, nil
}

// Close renders the channel unusable. Further Seal/Open calls fail.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.send = nil
	c.recv = nil
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, buf); err != nil {
		return nil, fmt.Errorf("random: %w", err)
	}
	return buf, nil
}
