package xcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Errors returned by AEAD sealing and secure channels.
var (
	ErrCiphertextShort = errors.New("xcrypto: ciphertext too short")
	ErrDecrypt         = errors.New("xcrypto: decryption failed")
	ErrReplay          = errors.New("xcrypto: message replayed or out of order")
	ErrChannelClosed   = errors.New("xcrypto: channel closed")
)

// NewAESGCM returns an AES-GCM AEAD for a 16- or 32-byte key.
func NewAESGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("aes cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("gcm: %w", err)
	}
	return aead, nil
}

// Encrypt seals plaintext with AES-GCM under key, binding aad. The random
// nonce is prepended to the returned ciphertext.
func Encrypt(key, plaintext, aad []byte) ([]byte, error) {
	aead, err := NewAESGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, plaintext, aad), nil
}

// Decrypt reverses Encrypt. It returns ErrDecrypt if authentication fails.
func Decrypt(key, ciphertext, aad []byte) ([]byte, error) {
	aead, err := NewAESGCM(key)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrCiphertextShort
	}
	nonce, body := ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():]
	plaintext, err := aead.Open(nil, nonce, body, aad)
	if err != nil {
		return nil, ErrReplayOrDecrypt(err)
	}
	return plaintext, nil
}

// ErrReplayOrDecrypt normalizes AEAD open failures to ErrDecrypt while
// keeping the underlying detail wrapped for diagnostics.
func ErrReplayOrDecrypt(err error) error {
	return fmt.Errorf("%w: %v", ErrDecrypt, err)
}

// Channel is a bidirectional secure channel built over a shared secret,
// as established between two enclaves by attested Diffie-Hellman. Each
// direction uses an independent key and a strictly increasing sequence
// number, so replayed, reordered, or cross-directional messages are
// rejected. Channel is safe for concurrent use.
type Channel struct {
	mu      sync.Mutex
	sendKey [32]byte
	recvKey [32]byte
	sendSeq uint64
	recvSeq uint64
	closed  bool
}

// ChannelPair derives the two endpoints of a secure channel from a shared
// secret and a transcript binding. initiator and responder views agree on
// the directional keys but swap their roles.
func ChannelPair(sharedSecret, transcript []byte) (initiator, responder *Channel) {
	kInit := DeriveKey(sharedSecret, "channel-initiator", transcript)
	kResp := DeriveKey(sharedSecret, "channel-responder", transcript)
	initiator = &Channel{sendKey: kInit, recvKey: kResp}
	responder = &Channel{sendKey: kResp, recvKey: kInit}
	return initiator, responder
}

// NewChannel builds one endpoint of a secure channel. Pass isInitiator
// according to the endpoint's role in the key agreement; the two sides
// must disagree on it.
func NewChannel(sharedSecret, transcript []byte, isInitiator bool) *Channel {
	init, resp := ChannelPair(sharedSecret, transcript)
	if isInitiator {
		return init
	}
	return resp
}

// Seal encrypts a message for the peer, binding the channel sequence
// number so the peer can detect replays and reordering.
func (c *Channel) Seal(plaintext []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrChannelClosed
	}
	var aad [8]byte
	binary.BigEndian.PutUint64(aad[:], c.sendSeq)
	ct, err := Encrypt(c.sendKey[:], plaintext, aad[:])
	if err != nil {
		return nil, err
	}
	c.sendSeq++
	out := make([]byte, 8+len(ct))
	copy(out, aad[:])
	copy(out[8:], ct)
	return out, nil
}

// Open decrypts a message from the peer. Messages must arrive in order;
// any replay or gap is rejected with ErrReplay.
func (c *Channel) Open(wire []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrChannelClosed
	}
	if len(wire) < 8 {
		return nil, ErrCiphertextShort
	}
	seq := binary.BigEndian.Uint64(wire[:8])
	if seq != c.recvSeq {
		return nil, fmt.Errorf("%w: got seq %d want %d", ErrReplay, seq, c.recvSeq)
	}
	plaintext, err := Decrypt(c.recvKey[:], wire[8:], wire[:8])
	if err != nil {
		return nil, err
	}
	c.recvSeq++
	return plaintext, nil
}

// Close renders the channel unusable. Further Seal/Open calls fail.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.sendKey = [32]byte{}
	c.recvKey = [32]byte{}
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, buf); err != nil {
		return nil, fmt.Errorf("random: %w", err)
	}
	return buf, nil
}
