package xcrypto

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
	"testing/quick"
)

// TestHKDFRFC5869Vector1 checks the first RFC 5869 test vector (SHA-256).
func TestHKDFRFC5869Vector1(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	wantPRK, _ := hex.DecodeString(
		"077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM, _ := hex.DecodeString(
		"3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := HKDFExtract(salt, ikm)
	if !bytes.Equal(prk, wantPRK) {
		t.Fatalf("PRK = %x, want %x", prk, wantPRK)
	}
	okm, err := HKDFExpand(prk, info, 42)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

// TestHKDFRFC5869Vector3 checks the zero-salt, zero-info vector.
func TestHKDFRFC5869Vector3(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM, _ := hex.DecodeString(
		"8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	okm, err := HKDF(ikm, nil, nil, 42)
	if err != nil {
		t.Fatalf("hkdf: %v", err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

func TestHKDFExpandLengthLimit(t *testing.T) {
	prk := HKDFExtract(nil, []byte("secret"))
	if _, err := HKDFExpand(prk, nil, 255*HashSize); err != nil {
		t.Fatalf("max length should succeed: %v", err)
	}
	if _, err := HKDFExpand(prk, nil, 255*HashSize+1); !errors.Is(err, ErrHKDFLength) {
		t.Fatalf("over-long expand: got %v, want ErrHKDFLength", err)
	}
	if _, err := HKDFExpand(prk, nil, -1); !errors.Is(err, ErrHKDFLength) {
		t.Fatalf("negative expand: got %v, want ErrHKDFLength", err)
	}
}

func TestHKDFExpandLengths(t *testing.T) {
	prk := HKDFExtract(nil, []byte("secret"))
	for _, n := range []int{0, 1, 31, 32, 33, 64, 100, 255} {
		okm, err := HKDFExpand(prk, []byte("ctx"), n)
		if err != nil {
			t.Fatalf("expand(%d): %v", n, err)
		}
		if len(okm) != n {
			t.Fatalf("expand(%d): got %d bytes", n, len(okm))
		}
	}
}

// TestDeriveKeyDomainSeparation asserts that distinct labels or contexts
// yield distinct keys, and identical inputs are deterministic.
func TestDeriveKeyDomainSeparation(t *testing.T) {
	secret := []byte("machine-secret")
	a := DeriveKey(secret, "seal", []byte("enclaveA"))
	b := DeriveKey(secret, "seal", []byte("enclaveB"))
	c := DeriveKey(secret, "report", []byte("enclaveA"))
	d := DeriveKey(secret, "seal", []byte("enclaveA"))
	if a == b {
		t.Fatal("different context produced the same key")
	}
	if a == c {
		t.Fatal("different label produced the same key")
	}
	if a != d {
		t.Fatal("derivation is not deterministic")
	}
}

// TestDeriveKeyContextPrefixing verifies that ["ab","c"] and ["a","bc"]
// do not collide thanks to length prefixing.
func TestDeriveKeyContextPrefixing(t *testing.T) {
	secret := []byte("s")
	a := DeriveKey(secret, "l", []byte("ab"), []byte("c"))
	b := DeriveKey(secret, "l", []byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("context concatenation ambiguity: keys collide")
	}
}

// Property: DeriveKey never collides for different secrets on a sample of
// random inputs (quick-checked injectivity smoke test).
func TestDeriveKeyDistinctSecretsProperty(t *testing.T) {
	f := func(s1, s2 []byte) bool {
		if bytes.Equal(s1, s2) {
			return true
		}
		return DeriveKey(s1, "x") != DeriveKey(s2, "x")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
