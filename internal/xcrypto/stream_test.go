package xcrypto

import (
	"bytes"
	"errors"
	"testing"
)

// TestStreamSealerOutOfOrder: the whole point of StreamSealer over
// Channel is that frames sealed at explicit positions open in any
// order — the batch stream pipelines chunks and acks race.
func TestStreamSealerOutOfOrder(t *testing.T) {
	key := DeriveKey([]byte("stream-test"), "key")
	s, err := NewStreamSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewStreamSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	aad := []byte("batch-id")
	frames := make([][]byte, 8)
	for i := range frames {
		frames[i] = s.SealAt(uint64(i), []byte{byte(i), 0xAA}, aad)
	}
	for _, i := range []int{5, 0, 7, 2, 1, 6, 3, 4} {
		pt, err := r.OpenAt(uint64(i), frames[i], aad)
		if err != nil {
			t.Fatalf("open frame %d out of order: %v", i, err)
		}
		if !bytes.Equal(pt, []byte{byte(i), 0xAA}) {
			t.Fatalf("frame %d: wrong plaintext", i)
		}
	}
	// Re-opening is allowed (the AEAD is stateless); it is the caller's
	// dedup table that rejects replays, tested at the core layer.
	if _, err := r.OpenAt(3, frames[3], aad); err != nil {
		t.Fatalf("re-open: %v", err)
	}
}

// TestStreamSealerBindings: a frame is bound to its position, its AAD,
// and its key; moving it anywhere else must fail, as must tampering.
func TestStreamSealerBindings(t *testing.T) {
	key := DeriveKey([]byte("stream-test"), "key")
	s, _ := NewStreamSealer(key)
	aad := []byte("batch-id")
	ct := s.SealAt(4, []byte("payload"), aad)

	if _, err := s.OpenAt(5, ct, aad); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("frame accepted at wrong position: %v", err)
	}
	if _, err := s.OpenAt(4, ct, []byte("other-batch")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("frame accepted under wrong AAD: %v", err)
	}
	tampered := append([]byte(nil), ct...)
	tampered[len(tampered)/2] ^= 1
	if _, err := s.OpenAt(4, tampered, aad); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("tampered frame accepted: %v", err)
	}
	otherKey := DeriveKey([]byte("stream-test"), "other")
	o, _ := NewStreamSealer(otherKey)
	if _, err := o.OpenAt(4, ct, aad); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("frame accepted under wrong key: %v", err)
	}
}

// TestStreamSealerDirectionalKeys: the data and ack directions of one
// batch derive distinct keys, so a reflected frame never opens.
func TestStreamSealerDirectionalKeys(t *testing.T) {
	secret := []byte("shared-session-secret")
	dataKey := DeriveKey(secret, "dir-test-data", []byte{1})
	ackKey := DeriveKey(secret, "dir-test-ack", []byte{1})
	data, _ := NewStreamSealer(dataKey)
	ack, _ := NewStreamSealer(ackKey)
	ct := data.SealAt(0, []byte("chunk"), nil)
	if _, err := ack.OpenAt(0, ct, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("reflected frame opened under the ack key: %v", err)
	}
}
