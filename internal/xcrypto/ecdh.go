package xcrypto

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
)

// ErrBadPublicKey reports a malformed or off-curve peer public key.
var ErrBadPublicKey = errors.New("xcrypto: invalid ECDH public key")

// KeyExchange holds one party's ephemeral ECDH key pair (NIST P-256).
// It is the key-agreement half of the attested Diffie-Hellman handshake
// that enclaves use to establish secure channels (paper §V-B, §VI-A).
type KeyExchange struct {
	priv *ecdh.PrivateKey
}

// NewKeyExchange generates a fresh ephemeral P-256 key pair.
func NewKeyExchange() (*KeyExchange, error) {
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("ecdh keygen: %w", err)
	}
	return &KeyExchange{priv: priv}, nil
}

// PublicBytes returns the encoded public key to send to the peer.
func (k *KeyExchange) PublicBytes() []byte {
	return k.priv.PublicKey().Bytes()
}

// Shared computes the raw ECDH shared secret with the peer's public key.
func (k *KeyExchange) Shared(peerPublic []byte) ([]byte, error) {
	pub, err := ecdh.P256().NewPublicKey(peerPublic)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPublicKey, err)
	}
	secret, err := k.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("ecdh: %w", err)
	}
	return secret, nil
}

// Transcript canonically binds the two public keys of a handshake (and an
// optional context) so that derived channel keys are bound to exactly this
// exchange. Both sides must pass the keys in initiator-first order.
func Transcript(context string, initiatorPub, responderPub []byte) []byte {
	out := make([]byte, 0, len(context)+len(initiatorPub)+len(responderPub)+6)
	out = append(out, byte(len(context)>>8), byte(len(context)))
	out = append(out, context...)
	out = append(out, byte(len(initiatorPub)>>8), byte(len(initiatorPub)))
	out = append(out, initiatorPub...)
	out = append(out, byte(len(responderPub)>>8), byte(len(responderPub)))
	out = append(out, responderPub...)
	return out
}
