package xcrypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testKey() []byte {
	k := DeriveKey([]byte("test"), "key")
	return k[:]
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	tests := []struct {
		name      string
		plaintext []byte
		aad       []byte
	}{
		{"empty", nil, nil},
		{"small", []byte("hello"), nil},
		{"with aad", []byte("hello"), []byte("context")},
		{"large", bytes.Repeat([]byte{0xAB}, 100_000), []byte("big")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ct, err := Encrypt(testKey(), tt.plaintext, tt.aad)
			if err != nil {
				t.Fatalf("encrypt: %v", err)
			}
			pt, err := Decrypt(testKey(), ct, tt.aad)
			if err != nil {
				t.Fatalf("decrypt: %v", err)
			}
			if !bytes.Equal(pt, tt.plaintext) {
				t.Fatalf("round trip mismatch: got %d bytes, want %d", len(pt), len(tt.plaintext))
			}
		})
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	ct, err := Encrypt(testKey(), []byte("secret data"), []byte("aad"))
	if err != nil {
		t.Fatalf("encrypt: %v", err)
	}
	t.Run("flipped ciphertext bit", func(t *testing.T) {
		bad := append([]byte(nil), ct...)
		bad[len(bad)-1] ^= 1
		if _, err := Decrypt(testKey(), bad, []byte("aad")); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("got %v, want ErrDecrypt", err)
		}
	})
	t.Run("wrong aad", func(t *testing.T) {
		if _, err := Decrypt(testKey(), ct, []byte("other")); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("got %v, want ErrDecrypt", err)
		}
	})
	t.Run("wrong key", func(t *testing.T) {
		other := DeriveKey([]byte("other"), "key")
		if _, err := Decrypt(other[:], ct, []byte("aad")); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("got %v, want ErrDecrypt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := Decrypt(testKey(), ct[:4], []byte("aad")); !errors.Is(err, ErrCiphertextShort) {
			t.Fatalf("got %v, want ErrCiphertextShort", err)
		}
	})
}

func TestChannelBidirectional(t *testing.T) {
	secret := []byte("shared")
	a, b := ChannelPair(secret, []byte("transcript"))

	for i := 0; i < 5; i++ {
		msg := []byte{byte(i), 'x'}
		wire, err := a.Seal(msg)
		if err != nil {
			t.Fatalf("seal %d: %v", i, err)
		}
		got, err := b.Open(wire)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("msg %d mismatch", i)
		}
	}
	// Reverse direction interleaved.
	wire, err := b.Seal([]byte("reply"))
	if err != nil {
		t.Fatalf("seal reply: %v", err)
	}
	got, err := a.Open(wire)
	if err != nil {
		t.Fatalf("open reply: %v", err)
	}
	if string(got) != "reply" {
		t.Fatalf("reply mismatch: %q", got)
	}
}

func TestChannelRejectsReplay(t *testing.T) {
	a, b := ChannelPair([]byte("s"), []byte("t"))
	wire, err := a.Seal([]byte("m1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(wire); err != nil {
		t.Fatalf("first open: %v", err)
	}
	if _, err := b.Open(wire); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: got %v, want ErrReplay", err)
	}
}

func TestChannelRejectsReorder(t *testing.T) {
	a, b := ChannelPair([]byte("s"), []byte("t"))
	w1, _ := a.Seal([]byte("m1"))
	w2, _ := a.Seal([]byte("m2"))
	if _, err := b.Open(w2); !errors.Is(err, ErrReplay) {
		t.Fatalf("out-of-order open: got %v, want ErrReplay", err)
	}
	if _, err := b.Open(w1); err != nil {
		t.Fatalf("in-order open after rejection: %v", err)
	}
}

func TestChannelRejectsCrossDirection(t *testing.T) {
	a, _ := ChannelPair([]byte("s"), []byte("t"))
	wire, _ := a.Seal([]byte("m"))
	// The sender itself must not accept its own message (reflection).
	if _, err := a.Open(wire); err == nil {
		t.Fatal("reflected message accepted")
	}
}

func TestChannelTranscriptBinding(t *testing.T) {
	a, _ := ChannelPair([]byte("s"), []byte("transcript-1"))
	_, b := ChannelPair([]byte("s"), []byte("transcript-2"))
	wire, _ := a.Seal([]byte("m"))
	if _, err := b.Open(wire); err == nil {
		t.Fatal("message accepted across different transcripts")
	}
}

func TestChannelClose(t *testing.T) {
	a, b := ChannelPair([]byte("s"), []byte("t"))
	a.Close()
	if _, err := a.Seal([]byte("m")); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("seal on closed: got %v", err)
	}
	if _, err := a.Open(nil); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("open on closed: got %v", err)
	}
	wire, err := b.Seal([]byte("m"))
	if err != nil {
		t.Fatalf("peer seal: %v", err)
	}
	_ = wire
}

// Property: round trip holds for arbitrary payloads and AADs.
func TestEncryptDecryptProperty(t *testing.T) {
	f := func(pt, aad []byte) bool {
		ct, err := Encrypt(testKey(), pt, aad)
		if err != nil {
			return false
		}
		got, err := Decrypt(testKey(), ct, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBytes(t *testing.T) {
	a, err := RandomBytes(32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomBytes(32)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two random draws equal")
	}
	if len(a) != 32 {
		t.Fatalf("len = %d", len(a))
	}
}
