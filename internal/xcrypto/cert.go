package xcrypto

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned by certificate issuance and verification.
var (
	ErrBadSignature  = errors.New("xcrypto: bad certificate signature")
	ErrWrongIssuer   = errors.New("xcrypto: certificate issued by unknown authority")
	ErrCertExpired   = errors.New("xcrypto: certificate expired")
	ErrCertRevoked   = errors.New("xcrypto: certificate revoked")
	ErrBadCertFormat = errors.New("xcrypto: malformed certificate")
)

// Certificate binds a subject name and public key to an issuer signature.
// It is deliberately minimal: the cloud-provider setup phase (paper §V-B)
// and the simulated EPID group-membership credentials both need only
// "authority X vouches for key K with role R".
type Certificate struct {
	Subject   string    `json:"subject"`
	Role      string    `json:"role"`
	PublicKey []byte    `json:"publicKey"`
	Issuer    string    `json:"issuer"`
	NotAfter  time.Time `json:"notAfter"`
	Signature []byte    `json:"signature"`
}

// signingBytes returns the canonical byte string covered by the signature.
func (c *Certificate) signingBytes() []byte {
	var buf bytes.Buffer
	writeLV := func(b []byte) {
		buf.WriteByte(byte(len(b) >> 8))
		buf.WriteByte(byte(len(b)))
		buf.Write(b)
	}
	writeLV([]byte(c.Subject))
	writeLV([]byte(c.Role))
	writeLV(c.PublicKey)
	writeLV([]byte(c.Issuer))
	writeLV([]byte(c.NotAfter.UTC().Format(time.RFC3339)))
	return buf.Bytes()
}

// Encode serializes the certificate for transport.
func (c *Certificate) Encode() ([]byte, error) {
	return json.Marshal(c)
}

// DecodeCertificate parses a certificate produced by Encode.
func DecodeCertificate(data []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCertFormat, err)
	}
	return &c, nil
}

// Authority is a certificate issuer, e.g. the data-center operator that
// provisions Migration Enclaves during the secure setup phase, or the
// group issuer of the simulated EPID scheme. Revocation state is
// mutex-guarded: operators revoke from management goroutines while
// handshakes verify concurrently.
type Authority struct {
	name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey

	mu      sync.Mutex
	revoked map[string]bool
}

// NewAuthority creates an authority with a fresh Ed25519 key pair.
func NewAuthority(name string) (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("authority keygen: %w", err)
	}
	return &Authority{name: name, priv: priv, pub: pub, revoked: make(map[string]bool)}, nil
}

// Name returns the authority's name, used as the Issuer field.
func (a *Authority) Name() string { return a.name }

// PublicKey returns the authority's verification key.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Issue signs a certificate over the subject's public key.
func (a *Authority) Issue(subject, role string, publicKey []byte, ttl time.Duration) (*Certificate, error) {
	if len(publicKey) == 0 {
		return nil, fmt.Errorf("%w: empty public key", ErrBadCertFormat)
	}
	cert := &Certificate{
		Subject:   subject,
		Role:      role,
		PublicKey: append([]byte(nil), publicKey...),
		Issuer:    a.name,
		NotAfter:  time.Now().Add(ttl),
	}
	cert.Signature = ed25519.Sign(a.priv, cert.signingBytes())
	return cert, nil
}

// Revoke marks a subject's certificates as revoked (EPID supports
// revocation of compromised members; we model it per subject name).
func (a *Authority) Revoke(subject string) {
	a.mu.Lock()
	a.revoked[subject] = true
	a.mu.Unlock()
}

// IsRevoked reports whether a subject's certificates are revoked. It is
// the authority's online revocation feed: federated verifiers consult
// it so a peer provider's per-machine revocations take effect across
// sites too.
func (a *Authority) IsRevoked(subject string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.revoked[subject]
}

// Verifier checks certificates against a trusted authority public key.
// It memoizes successful signature checks (the Ed25519 math dominates a
// migration handshake, and the same platform/provider certificates are
// re-presented on every transfer); expiry and revocation are still
// evaluated on every call, so revoking a cached certificate takes effect
// immediately. Verifier is safe for concurrent use.
type Verifier struct {
	issuer  string
	pub     ed25519.PublicKey
	now     func() time.Time
	revoked func(subject string) bool

	mu   sync.RWMutex
	seen map[string]bool // signingBytes||signature -> signature valid
}

// verifierCacheLimit bounds the memoized signature checks; reaching it
// flushes the cache so adversarial certificate churn cannot grow it.
const verifierCacheLimit = 4096

// NewVerifier builds a verifier trusting the given authority.
func NewVerifier(a *Authority) *Verifier {
	return &Verifier{
		issuer:  a.name,
		pub:     a.pub,
		now:     time.Now,
		revoked: a.IsRevoked,
	}
}

// NewVerifierFromKey builds a verifier from a bare issuer name and key,
// for parties that only hold the authority's public material (no
// revocation feed: nothing is ever considered revoked).
func NewVerifierFromKey(issuer string, pub ed25519.PublicKey) *Verifier {
	return NewVerifierFromKeyFunc(issuer, pub, nil)
}

// NewVerifierFromKeyFunc builds a verifier from the authority's public
// material plus an online revocation feed (nil means none) — how a
// federated site honors a peer authority's per-subject revocations
// without holding the peer's private state.
func NewVerifierFromKeyFunc(issuer string, pub ed25519.PublicKey, revoked func(subject string) bool) *Verifier {
	if revoked == nil {
		revoked = func(string) bool { return false }
	}
	return &Verifier{
		issuer:  issuer,
		pub:     pub,
		now:     time.Now,
		revoked: revoked,
	}
}

// Verify checks issuer, signature, expiry, and revocation.
func (v *Verifier) Verify(c *Certificate) error {
	if c == nil {
		return ErrBadCertFormat
	}
	if c.Issuer != v.issuer {
		return fmt.Errorf("%w: issuer %q", ErrWrongIssuer, c.Issuer)
	}
	// The cache key covers every signed field AND the signature, so a
	// forged certificate can never alias a cached valid one.
	signed := c.signingBytes()
	key := string(signed) + string(c.Signature)
	v.mu.RLock()
	ok, cached := v.seen[key]
	v.mu.RUnlock()
	if !cached {
		ok = ed25519.Verify(v.pub, signed, c.Signature)
		if ok {
			// Only positive results are cached: a signature valid for these
			// bytes stays valid forever, while failures stay cheap to retry.
			v.mu.Lock()
			if v.seen == nil || len(v.seen) >= verifierCacheLimit {
				v.seen = make(map[string]bool, 16)
			}
			v.seen[key] = true
			v.mu.Unlock()
		}
	}
	if !ok {
		return ErrBadSignature
	}
	if v.now().After(c.NotAfter) {
		return ErrCertExpired
	}
	if v.revoked(c.Subject) {
		return fmt.Errorf("%w: subject %q", ErrCertRevoked, c.Subject)
	}
	return nil
}

// Signer is a certified signing key pair, e.g. a Migration Enclave's
// provider-provisioned identity key.
type Signer struct {
	priv ed25519.PrivateKey
	Cert *Certificate
}

// NewCertifiedSigner generates a key pair and has the authority certify it.
func NewCertifiedSigner(a *Authority, subject, role string, ttl time.Duration) (*Signer, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("signer keygen: %w", err)
	}
	cert, err := a.Issue(subject, role, pub, ttl)
	if err != nil {
		return nil, err
	}
	return &Signer{priv: priv, Cert: cert}, nil
}

// Sign signs a message with the certified key.
func (s *Signer) Sign(msg []byte) []byte {
	return ed25519.Sign(s.priv, msg)
}

// VerifyWithCert checks sig over msg against the public key in cert.
// The caller must separately Verify the certificate chain.
func VerifyWithCert(cert *Certificate, msg, sig []byte) error {
	if cert == nil || len(cert.PublicKey) != ed25519.PublicKeySize {
		return ErrBadCertFormat
	}
	if !ed25519.Verify(ed25519.PublicKey(cert.PublicKey), msg, sig) {
		return ErrBadSignature
	}
	return nil
}
