package xcrypto

import (
	"errors"
	"testing"
	"time"
)

func TestCertificateIssueVerify(t *testing.T) {
	ca, err := NewAuthority("datacenter-1")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := NewCertifiedSigner(ca, "machine-A/ME", "migration-enclave", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(ca)
	if err := v.Verify(signer.Cert); err != nil {
		t.Fatalf("verify: %v", err)
	}
	msg := []byte("attestation transcript")
	sig := signer.Sign(msg)
	if err := VerifyWithCert(signer.Cert, msg, sig); err != nil {
		t.Fatalf("signature: %v", err)
	}
}

func TestCertificateRejectsTampering(t *testing.T) {
	ca, _ := NewAuthority("dc")
	signer, _ := NewCertifiedSigner(ca, "m", "me", time.Hour)
	v := NewVerifier(ca)

	t.Run("altered subject", func(t *testing.T) {
		c := *signer.Cert
		c.Subject = "attacker"
		if err := v.Verify(&c); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("got %v, want ErrBadSignature", err)
		}
	})
	t.Run("altered role", func(t *testing.T) {
		c := *signer.Cert
		c.Role = "root"
		if err := v.Verify(&c); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("got %v, want ErrBadSignature", err)
		}
	})
	t.Run("wrong signature over message", func(t *testing.T) {
		if err := VerifyWithCert(signer.Cert, []byte("msg"), []byte("junk-signature-xxx")); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("got %v, want ErrBadSignature", err)
		}
	})
	t.Run("nil cert", func(t *testing.T) {
		if err := v.Verify(nil); !errors.Is(err, ErrBadCertFormat) {
			t.Fatalf("got %v, want ErrBadCertFormat", err)
		}
	})
}

func TestCertificateForeignIssuerRejected(t *testing.T) {
	ours, _ := NewAuthority("dc-ours")
	theirs, _ := NewAuthority("dc-theirs")
	foreign, _ := NewCertifiedSigner(theirs, "attacker-machine/ME", "migration-enclave", time.Hour)
	v := NewVerifier(ours)
	if err := v.Verify(foreign.Cert); !errors.Is(err, ErrWrongIssuer) {
		t.Fatalf("got %v, want ErrWrongIssuer", err)
	}
}

// A forged certificate claiming our issuer name but signed by another key
// must fail the signature check — name squatting is not enough.
func TestCertificateIssuerNameSquatting(t *testing.T) {
	ours, _ := NewAuthority("dc")
	fake, _ := NewAuthority("dc")
	squatted, _ := NewCertifiedSigner(fake, "evil/ME", "migration-enclave", time.Hour)
	v := NewVerifier(ours)
	if err := v.Verify(squatted.Cert); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
}

func TestCertificateExpiry(t *testing.T) {
	ca, _ := NewAuthority("dc")
	signer, _ := NewCertifiedSigner(ca, "m", "me", time.Millisecond)
	v := NewVerifier(ca)
	v.now = func() time.Time { return time.Now().Add(time.Hour) }
	if err := v.Verify(signer.Cert); !errors.Is(err, ErrCertExpired) {
		t.Fatalf("got %v, want ErrCertExpired", err)
	}
}

func TestCertificateRevocation(t *testing.T) {
	ca, _ := NewAuthority("dc")
	signer, _ := NewCertifiedSigner(ca, "compromised", "me", time.Hour)
	v := NewVerifier(ca)
	if err := v.Verify(signer.Cert); err != nil {
		t.Fatalf("pre-revocation verify: %v", err)
	}
	ca.Revoke("compromised")
	if err := v.Verify(signer.Cert); !errors.Is(err, ErrCertRevoked) {
		t.Fatalf("got %v, want ErrCertRevoked", err)
	}
}

func TestCertificateEncodeDecode(t *testing.T) {
	ca, _ := NewAuthority("dc")
	signer, _ := NewCertifiedSigner(ca, "m", "me", time.Hour)
	data, err := signer.Cert.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewVerifier(ca).Verify(back); err != nil {
		t.Fatalf("verify decoded: %v", err)
	}
	if _, err := DecodeCertificate([]byte("{not json")); !errors.Is(err, ErrBadCertFormat) {
		t.Fatalf("got %v, want ErrBadCertFormat", err)
	}
}

func TestVerifierFromKey(t *testing.T) {
	ca, _ := NewAuthority("dc")
	signer, _ := NewCertifiedSigner(ca, "m", "me", time.Hour)
	v := NewVerifierFromKey("dc", ca.PublicKey())
	if err := v.Verify(signer.Cert); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestKeyExchangeSharedSecret(t *testing.T) {
	a, err := NewKeyExchange()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKeyExchange()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.Shared(b.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Shared(a.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if string(sa) != string(sb) {
		t.Fatal("shared secrets differ")
	}
	if _, err := a.Shared([]byte{1, 2, 3}); !errors.Is(err, ErrBadPublicKey) {
		t.Fatalf("bad pubkey: got %v", err)
	}
}

func TestTranscriptUnambiguous(t *testing.T) {
	a := Transcript("ctx", []byte("ab"), []byte("c"))
	b := Transcript("ctx", []byte("a"), []byte("bc"))
	if string(a) == string(b) {
		t.Fatal("transcript encoding ambiguous")
	}
	c := Transcript("ctx2", []byte("ab"), []byte("c"))
	if string(a) == string(c) {
		t.Fatal("transcript ignores context")
	}
}
