// Package xcrypto provides the cryptographic substrate shared by the
// simulated SGX hardware and the migration framework: HKDF key derivation,
// ECDH key agreement, authenticated-encryption channels with replay
// protection, and a minimal Ed25519 certificate scheme used both for the
// cloud-provider setup phase and for the simulated EPID group signatures.
//
// Everything is built on the Go standard library only.
package xcrypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

// HashSize is the output size of the hash underlying all derivations.
const HashSize = sha256.Size

// ErrHKDFLength reports a requested expansion longer than HKDF permits.
var ErrHKDFLength = errors.New("xcrypto: hkdf expansion too long")

// HKDFExtract implements the extract step of RFC 5869 with HMAC-SHA256.
// A nil salt is replaced by a string of zero bytes as the RFC specifies.
func HKDFExtract(salt, ikm []byte) []byte {
	if salt == nil {
		salt = make([]byte, HashSize)
	}
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// HKDFExpand implements the expand step of RFC 5869 with HMAC-SHA256.
// It returns length bytes of output keyed by prk and bound to info.
func HKDFExpand(prk, info []byte, length int) ([]byte, error) {
	if length < 0 || length > 255*HashSize {
		return nil, ErrHKDFLength
	}
	var (
		out  = make([]byte, 0, length)
		prev []byte
	)
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(prev)
		mac.Write(info)
		mac.Write([]byte{counter})
		prev = mac.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length], nil
}

// HKDF performs extract-then-expand in one call.
func HKDF(secret, salt, info []byte, length int) ([]byte, error) {
	prk := HKDFExtract(salt, secret)
	okm, err := HKDFExpand(prk, info, length)
	if err != nil {
		return nil, fmt.Errorf("hkdf expand: %w", err)
	}
	return okm, nil
}

// DeriveKey derives a fixed 32-byte key from a secret bound to a label and
// an arbitrary sequence of context strings. It is the single derivation
// primitive used for all simulated SGX key material (sealing keys, report
// keys, counter nonces), which guarantees domain separation between users.
func DeriveKey(secret []byte, label string, context ...[]byte) [32]byte {
	info := make([]byte, 0, 64)
	info = append(info, []byte(label)...)
	for _, c := range context {
		// Length-prefix each context element so that concatenation
		// ambiguity cannot alias two distinct contexts.
		info = append(info, byte(len(c)>>8), byte(len(c)))
		info = append(info, c...)
	}
	okm, err := HKDF(secret, nil, info, 32)
	if err != nil {
		// Unreachable: 32 <= 255*HashSize and inputs are well formed.
		panic(fmt.Sprintf("xcrypto: derive key: %v", err))
	}
	var key [32]byte
	copy(key[:], okm)
	return key
}
