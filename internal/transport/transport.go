// Package transport carries messages between machines in the simulation.
//
// It provides two interchangeable implementations of the Messenger
// interface: an in-memory network with a pluggable adversary middleware
// (the default for tests and attack scenarios — the paper's adversary
// controls the network completely), and a real TCP transport for running
// the migration protocol between processes.
//
// Everything that crosses a Messenger is untrusted: the Migration
// Enclaves and Libraries layer their own attested encrypted channels on
// top (paper §V-D: "all interaction between the enclaves takes place via
// untrusted channels").
package transport

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Transport errors.
var (
	ErrUnknownEndpoint = errors.New("transport: unknown endpoint")
	ErrDropped         = errors.New("transport: message dropped by adversary")
	ErrAlreadyBound    = errors.New("transport: address already bound")
)

// Address names a network endpoint (a machine's Migration Enclave).
type Address string

// Message is one request crossing the network.
//
// Trace carries the distributed-trace context extracted from the in-band
// envelope (obs.Inject on the sender side). Transports strip the envelope
// before invoking handlers, so Payload is always the inner protocol bytes
// — handlers that decrypt or decode their payloads never see the prefix.
// Messages sent without a trace arrive with the zero context.
type Message struct {
	From    Address          `json:"from"`
	To      Address          `json:"to"`
	Kind    string           `json:"kind"`
	Payload []byte           `json:"payload"`
	Trace   obs.TraceContext `json:"trace,omitzero"`
}

// Handler processes a request and produces a reply payload.
type Handler func(msg Message) ([]byte, error)

// Messenger is the request/response abstraction the Migration Enclaves
// and counter-replication endpoints use; implemented by Network
// (in-memory) and TCPTransport.
type Messenger interface {
	// Register binds a handler to an address.
	Register(addr Address, h Handler) error
	// Unregister removes an endpoint (machine decommissioned or
	// restarting; the address may be re-registered afterwards).
	Unregister(addr Address)
	// Send delivers a request and returns the peer's reply.
	Send(from, to Address, kind string, payload []byte) ([]byte, error)
}

// Adversary observes and manipulates network traffic. Implementations may
// record, modify, drop (return ErrDropped), or redirect messages. A nil
// adversary passes everything through untouched.
type Adversary interface {
	// OnRequest runs before delivery; it may mutate the message.
	OnRequest(msg *Message) error
	// OnResponse runs after the handler; it may mutate the reply.
	OnResponse(msg Message, reply *[]byte) error
}

// Network is the in-memory Messenger. It is safe for concurrent use.
type Network struct {
	lat *sim.Latency

	mu        sync.Mutex
	endpoints map[Address]Handler
	adversary Adversary
}

var _ Messenger = (*Network)(nil)

// NewNetwork creates an in-memory network charging lat per round trip.
func NewNetwork(lat *sim.Latency) *Network {
	return &Network{lat: lat, endpoints: make(map[Address]Handler)}
}

// SetAdversary installs (or clears, with nil) the adversary middleware.
func (n *Network) SetAdversary(a Adversary) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.adversary = a
}

// Register binds a handler to an address.
func (n *Network) Register(addr Address, h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.endpoints[addr]; exists {
		return fmt.Errorf("%w: %s", ErrAlreadyBound, addr)
	}
	n.endpoints[addr] = h
	return nil
}

// Unregister removes an endpoint (machine decommissioned).
func (n *Network) Unregister(addr Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, addr)
}

// Send delivers a request through the adversary to the target handler and
// returns the (also adversary-mediated) reply.
func (n *Network) Send(from, to Address, kind string, payload []byte) ([]byte, error) {
	n.lat.Charge(sim.OpNetworkRTT)
	tc, inner := obs.Extract(payload)
	msg := Message{From: from, To: to, Kind: kind, Payload: append([]byte(nil), inner...), Trace: tc}

	n.mu.Lock()
	adv := n.adversary
	n.mu.Unlock()

	if adv != nil {
		if err := adv.OnRequest(&msg); err != nil {
			return nil, err
		}
	}

	n.mu.Lock()
	h, ok := n.endpoints[msg.To]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEndpoint, msg.To)
	}

	reply, err := h(msg)
	if err != nil {
		return nil, err
	}
	if adv != nil {
		if err := adv.OnResponse(msg, &reply); err != nil {
			return nil, err
		}
	}
	return reply, nil
}
