package transport

import (
	"bytes"
	"compress/flate"
	"errors"
	"testing"

	"repro/internal/wirec"
)

// TestCompressFrameRoundTrip: compressible, incompressible, and empty
// payloads all survive the frame round trip; compressible ones shrink.
func TestCompressFrameRoundTrip(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"tiny":         []byte("x"),
		"compressible": bytes.Repeat([]byte("migration envelope "), 512),
		"binary": func() []byte {
			b := make([]byte, 1024)
			for i := range b {
				b[i] = byte(i * 7)
			}
			return b
		}(),
	}
	for name, raw := range cases {
		frame, err := CompressFrame(raw)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		got, err := DecompressFrame(frame, 0)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, raw) {
			t.Fatalf("%s: round trip mismatch", name)
		}
		// Framing never inflates beyond the fixed header.
		if len(frame) > len(raw)+7 {
			t.Fatalf("%s: frame %d bytes for %d-byte payload", name, len(frame), len(raw))
		}
	}
	big := bytes.Repeat([]byte("migration envelope "), 512)
	frame, _ := CompressFrame(big)
	if len(frame) >= len(big) {
		t.Fatalf("compressible payload did not shrink: %d >= %d", len(frame), len(big))
	}
}

// TestDecompressFrameClamps: a frame may neither declare more than the
// caller's limit nor decode to a different length than it declared.
func TestDecompressFrameClamps(t *testing.T) {
	raw := bytes.Repeat([]byte("a"), 4096)
	frame, err := CompressFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Caller limit below the declared length: rejected before allocation.
	if _, err := DecompressFrame(frame, 1024); !errors.Is(err, ErrFrameFormat) {
		t.Fatalf("undersized limit not enforced: %v", err)
	}
	if _, err := DecompressFrame(frame, len(raw)); err != nil {
		t.Fatalf("exact limit rejected: %v", err)
	}

	// A deflate bomb lying about its length: declares 16 bytes, decodes
	// to 64 KiB. Must be rejected, not truncated.
	var bomb bytes.Buffer
	w, _ := flate.NewWriter(&bomb, flate.BestSpeed)
	w.Write(make([]byte, 64<<10))
	w.Close()
	lying := wirec.AppendHeader(nil, 0xE2, 1)
	lying = append(lying, 1) // frameDeflate
	lying = wirec.AppendU32(lying, 16)
	lying = append(lying, bomb.Bytes()...)
	if _, err := DecompressFrame(lying, 0); !errors.Is(err, ErrFrameFormat) {
		t.Fatalf("over-length deflate stream accepted: %v", err)
	}

	// A stored frame whose body is shorter than declared.
	short := wirec.AppendHeader(nil, 0xE2, 1)
	short = append(short, 0) // frameStored
	short = wirec.AppendU32(short, 100)
	short = append(short, []byte("only-a-few")...)
	if _, err := DecompressFrame(short, 0); !errors.Is(err, ErrFrameFormat) {
		t.Fatalf("short stored body accepted: %v", err)
	}

	// Unknown method byte.
	bad := wirec.AppendHeader(nil, 0xE2, 1)
	bad = append(bad, 9)
	bad = wirec.AppendU32(bad, 0)
	if _, err := DecompressFrame(bad, 0); !errors.Is(err, ErrFrameFormat) {
		t.Fatalf("unknown method accepted: %v", err)
	}

	// Oversized input refuses to frame at all.
	if _, err := CompressFrame(make([]byte, MaxFrameDecoded+1)); !errors.Is(err, ErrFrameFormat) {
		t.Fatalf("oversized payload framed: %v", err)
	}
}

// FuzzDecompressFrame: the frame header decoder consumes bytes produced
// by the remote peer (inside the AEAD, but a compromised-yet-attested
// peer still counts as hostile input for memory safety). It must never
// panic and never return more than the clamp.
func FuzzDecompressFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xE2})
	f.Add([]byte{0xE2, 0x01})
	f.Add([]byte{0xE2, 0x01, 0x01, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0xE2, 0x01, 0x00, 0x00, 0x00, 0x00, 0x10})
	valid, _ := CompressFrame(bytes.Repeat([]byte("seed "), 64))
	f.Add(valid)
	stored, _ := CompressFrame([]byte{0x00, 0x01, 0x02})
	f.Add(stored)
	f.Fuzz(func(t *testing.T, raw []byte) {
		out, err := DecompressFrame(raw, 1<<16)
		if err != nil {
			return
		}
		if len(out) > 1<<16 {
			t.Fatalf("decoded %d bytes past the clamp", len(out))
		}
		// A successfully decoded frame re-frames and round-trips.
		re, err := CompressFrame(out)
		if err != nil {
			t.Fatalf("decoded payload does not re-frame: %v", err)
		}
		back, err := DecompressFrame(re, 0)
		if err != nil || !bytes.Equal(back, out) {
			t.Fatalf("re-framed payload does not round trip: %v", err)
		}
	})
}
