package transport

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestWANLinkMetrics drives one link through delivery, loss, and an
// administrative partition, asserting the per-link wan.link.* families
// the health detectors consume.
func TestWANLinkMetrics(t *testing.T) {
	a := NewNetwork(sim.NewInstantLatency())
	b := NewNetwork(sim.NewInstantLatency())
	o := obs.NewObserver()
	link := NewWANLink("ab", a, b, WANConfig{Loss: 0.5, Seed: 7})
	link.SetObserver(o)

	if err := b.Register("svc", func(Message) ([]byte, error) { return []byte("ok"), nil }); err != nil {
		t.Fatal(err)
	}
	if err := link.Export(SideB, "svc"); err != nil {
		t.Fatal(err)
	}

	const attempts = 40
	delivered, lost := 0, 0
	for i := 0; i < attempts; i++ {
		if _, err := a.Send("c", "svc", "k", nil); err != nil {
			lost++
		} else {
			delivered++
		}
	}
	if delivered == 0 || lost == 0 {
		t.Fatalf("loss 0.5 over %d sends: %d delivered %d lost", attempts, delivered, lost)
	}
	snap := o.M().Snapshot()
	if got := snap.Counters["wan.link.msgs.ab"]; got != int64(delivered) {
		t.Errorf("wan.link.msgs.ab = %d, want %d", got, delivered)
	}
	if got := snap.Counters["wan.link.lost.ab"]; got != int64(lost) {
		t.Errorf("wan.link.lost.ab = %d, want %d", got, lost)
	}
	if got := snap.Gauges["wan.link.down.ab"]; got != 0 {
		t.Errorf("wan.link.down.ab = %d while up", got)
	}

	// Partition: sends are refused (not lost) and the gauge flips.
	link.SetDown(true)
	for i := 0; i < 3; i++ {
		if _, err := a.Send("c", "svc", "k", nil); err == nil {
			t.Fatal("send succeeded across a down link")
		}
	}
	snap = o.M().Snapshot()
	if got := snap.Gauges["wan.link.down.ab"]; got != 1 {
		t.Errorf("wan.link.down.ab = %d while down, want 1", got)
	}
	if got := snap.Counters["wan.link.refused.ab"]; got != 3 {
		t.Errorf("wan.link.refused.ab = %d, want 3", got)
	}
	if got := snap.Counters["wan.link.msgs.ab"]; got != int64(delivered) {
		t.Errorf("refused sends counted as delivered: %d", got)
	}

	link.SetDown(false)
	snap = o.M().Snapshot()
	if got := snap.Gauges["wan.link.down.ab"]; got != 0 {
		t.Errorf("wan.link.down.ab = %d after heal, want 0", got)
	}
}
