package transport

import "sync"

// Interceptor is a composable Adversary whose behaviour is given by
// optional function fields; nil fields pass traffic through. It also
// records every message it sees, so attack scenarios can capture protocol
// messages for later replay.
type Interceptor struct {
	// Request, if set, runs before delivery and may mutate or drop.
	Request func(msg *Message) error
	// Response, if set, runs on the reply and may mutate or drop.
	Response func(msg Message, reply *[]byte) error

	mu       sync.Mutex
	captured []Message
}

var _ Adversary = (*Interceptor)(nil)

// OnRequest implements Adversary.
func (i *Interceptor) OnRequest(msg *Message) error {
	i.mu.Lock()
	cp := *msg
	cp.Payload = append([]byte(nil), msg.Payload...)
	i.captured = append(i.captured, cp)
	i.mu.Unlock()
	if i.Request != nil {
		return i.Request(msg)
	}
	return nil
}

// OnResponse implements Adversary.
func (i *Interceptor) OnResponse(msg Message, reply *[]byte) error {
	if i.Response != nil {
		return i.Response(msg, reply)
	}
	return nil
}

// Captured returns copies of all requests observed so far.
func (i *Interceptor) Captured() []Message {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]Message, len(i.captured))
	for idx, m := range i.captured {
		out[idx] = m
		out[idx].Payload = append([]byte(nil), m.Payload...)
	}
	return out
}

// DropKind returns an adversary that drops every request of one kind —
// the paper's denial-of-service capability (out of scope as an attack
// goal, but the protocol must fail safe under it).
func DropKind(kind string) *Interceptor {
	return &Interceptor{Request: func(msg *Message) error {
		if msg.Kind == kind {
			return ErrDropped
		}
		return nil
	}}
}

// RedirectTo returns an adversary that rewrites every request's
// destination — modelling an attacker who tries to steer a migration to a
// machine under their control (must be defeated by R2 authentication).
func RedirectTo(target Address) *Interceptor {
	return &Interceptor{Request: func(msg *Message) error {
		msg.To = target
		return nil
	}}
}

// FlipPayloadBit returns an adversary that corrupts one byte of every
// request payload of the given kind.
func FlipPayloadBit(kind string) *Interceptor {
	return &Interceptor{Request: func(msg *Message) error {
		if msg.Kind == kind && len(msg.Payload) > 0 {
			msg.Payload[len(msg.Payload)/2] ^= 0x80
		}
		return nil
	}}
}
