package transport

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestWANLinkBridgesAndCharges: an address exported from side B is
// reachable from side A's messenger, the exchange pays one OpWANHop and
// per-byte bandwidth costs, and stats count traffic.
func TestWANLinkBridgesAndCharges(t *testing.T) {
	a := NewNetwork(sim.NewInstantLatency())
	b := NewNetwork(sim.NewInstantLatency())
	link := NewWANLink("a~b", a, b, WANConfig{RTT: 50 * time.Millisecond, Bandwidth: 1 << 20})

	if err := b.Register("svc", func(msg Message) ([]byte, error) {
		return append([]byte("echo:"), msg.Payload...), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := link.Export(SideB, "svc"); err != nil {
		t.Fatal(err)
	}
	reply, err := a.Send("client", "svc", "ping", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hello" {
		t.Fatalf("reply = %q", reply)
	}
	counts := link.Latency().Counts()
	if counts[sim.OpWANHop] != 1 {
		t.Fatalf("hops = %d, want 1", counts[sim.OpWANHop])
	}
	wantBytes := len("hello") + len("echo:hello")
	if counts[sim.OpWANByte] != wantBytes {
		t.Fatalf("bytes charged = %d, want %d", counts[sim.OpWANByte], wantBytes)
	}
	if msgs, bytes := link.Stats(); msgs != 1 || bytes != int64(wantBytes) {
		t.Fatalf("stats = %d msgs %d bytes", msgs, bytes)
	}

	// The far side does NOT see side-A-only addresses: exports are
	// directional and explicit.
	if _, err := b.Send("x", "a-only", "k", nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("unexported address reachable: %v", err)
	}
}

// TestWANLinkDownAndLoss: a partitioned link refuses with ErrLinkDown;
// a lossy link drops deterministically with ErrDropped.
func TestWANLinkDownAndLoss(t *testing.T) {
	a := NewNetwork(sim.NewInstantLatency())
	b := NewNetwork(sim.NewInstantLatency())
	link := NewWANLink("a~b", a, b, WANConfig{Loss: 0.5, Seed: 7})
	if err := b.Register("svc", func(Message) ([]byte, error) { return []byte("ok"), nil }); err != nil {
		t.Fatal(err)
	}
	if err := link.Export(SideB, "svc"); err != nil {
		t.Fatal(err)
	}

	link.SetDown(true)
	if _, err := a.Send("c", "svc", "k", nil); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("down link: %v", err)
	}
	link.SetDown(false)

	drops, oks := 0, 0
	for i := 0; i < 200; i++ {
		_, err := a.Send("c", "svc", "k", nil)
		switch {
		case err == nil:
			oks++
		case errors.Is(err, ErrDropped):
			drops++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if drops == 0 || oks == 0 {
		t.Fatalf("loss model inert: %d drops, %d oks", drops, oks)
	}
}

// TestWANLinkOverTCPCarrier routes the bridge hop itself over a real
// TCPTransport between the two in-memory sites.
func TestWANLinkOverTCPCarrier(t *testing.T) {
	a := NewNetwork(sim.NewInstantLatency())
	b := NewNetwork(sim.NewInstantLatency())
	carrier := NewTCPTransport()
	defer carrier.Close()

	link := NewWANLink("a~b", a, b, WANConfig{})
	if err := link.UseCarrier(carrier, "127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("svc", func(msg Message) ([]byte, error) {
		return append([]byte("tcp:"), msg.Payload...), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := link.Export(SideB, "svc"); err != nil {
		t.Fatal(err)
	}
	reply, err := a.Send("client", "svc", "ping", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "tcp:x" {
		t.Fatalf("reply = %q", reply)
	}
}
