package transport

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestNetworkStripsTraceEnvelope: a Send whose payload carries an
// injected trace envelope delivers the INNER payload to the handler with
// the context surfaced on Message.Trace; un-enveloped payloads arrive
// with a zero context.
func TestNetworkStripsTraceEnvelope(t *testing.T) {
	net := NewNetwork(sim.NewInstantLatency())
	var got Message
	if err := net.Register("svc", func(msg Message) ([]byte, error) {
		got = msg
		return []byte("ok"), nil
	}); err != nil {
		t.Fatal(err)
	}

	tc := obs.TraceContext{TraceID: 0xABCD, SpanID: 7}
	if _, err := net.Send("client", "svc", "ping", obs.Inject(tc, []byte("inner"))); err != nil {
		t.Fatal(err)
	}
	if got.Trace != tc {
		t.Fatalf("handler saw trace %+v, want %+v", got.Trace, tc)
	}
	if !bytes.Equal(got.Payload, []byte("inner")) {
		t.Fatalf("handler saw payload %q, want the stripped inner payload", got.Payload)
	}

	if _, err := net.Send("client", "svc", "ping", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if got.Trace.Valid() {
		t.Fatalf("plain payload produced trace %+v", got.Trace)
	}
	if !bytes.Equal(got.Payload, []byte("plain")) {
		t.Fatalf("plain payload altered: %q", got.Payload)
	}
}

// TestTCPTransportStripsTraceEnvelope: the envelope survives the real
// socket hop and is stripped before the handler runs.
func TestTCPTransportStripsTraceEnvelope(t *testing.T) {
	tt := NewTCPTransport()
	defer tt.Close()
	var got Message
	if err := tt.Register("127.0.0.1:0", func(msg Message) ([]byte, error) {
		got = msg
		return []byte("ok"), nil
	}); err != nil {
		t.Fatal(err)
	}
	addr, ok := tt.BoundAddr("127.0.0.1:0")
	if !ok {
		t.Fatal("bound address missing")
	}

	tc := obs.TraceContext{TraceID: 99, SpanID: 3}
	if _, err := tt.Send("client", addr, "ping", obs.Inject(tc, []byte("tcp inner"))); err != nil {
		t.Fatal(err)
	}
	if got.Trace != tc {
		t.Fatalf("handler saw trace %+v, want %+v", got.Trace, tc)
	}
	if !bytes.Equal(got.Payload, []byte("tcp inner")) {
		t.Fatalf("handler saw payload %q", got.Payload)
	}
}

// TestWANLinkPropagatesTrace: a trace crosses the WAN bridge intact, the
// forwarder's wan.hop span joins the sender's trace, and the handler on
// the far side sees the stripped payload.
func TestWANLinkPropagatesTrace(t *testing.T) {
	a := NewNetwork(sim.NewInstantLatency())
	b := NewNetwork(sim.NewInstantLatency())
	link := NewWANLink("a~b", a, b, WANConfig{})
	observer := obs.NewObserver()
	link.SetObserver(observer)

	var got Message
	if err := b.Register("svc", func(msg Message) ([]byte, error) {
		got = msg
		return []byte("ok"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := link.Export(SideB, "svc"); err != nil {
		t.Fatal(err)
	}

	tc := obs.TraceContext{TraceID: 0x1234, SpanID: 1}
	if _, err := a.Send("client", "svc", "ping", obs.Inject(tc, []byte("wan inner"))); err != nil {
		t.Fatal(err)
	}
	if got.Trace.TraceID != tc.TraceID {
		t.Fatalf("handler trace ID %x, want %x", got.Trace.TraceID, tc.TraceID)
	}
	if !bytes.Equal(got.Payload, []byte("wan inner")) {
		t.Fatalf("handler saw payload %q", got.Payload)
	}

	spans := observer.Tracer.Spans()
	if len(spans) != 1 || spans[0].Name != "wan.hop" {
		t.Fatalf("spans = %+v, want one wan.hop", spans)
	}
	if spans[0].TraceID != tc.TraceID || spans[0].ParentID != tc.SpanID {
		t.Fatalf("wan.hop span did not join the trace: %+v", spans[0])
	}
	// The handler's parent must be the hop span, not the original sender:
	// the hop deepened the context.
	if got.Trace.SpanID != spans[0].SpanID {
		t.Fatalf("handler parent span %d, want hop span %d", got.Trace.SpanID, spans[0].SpanID)
	}
}

// TestWANLinkPropagatesTraceOverTCPCarrier: same contract with the
// bridge hop routed through a real TCP transport — the envelope rides
// the carrier frame and re-emerges on the home side.
func TestWANLinkPropagatesTraceOverTCPCarrier(t *testing.T) {
	a := NewNetwork(sim.NewInstantLatency())
	b := NewNetwork(sim.NewInstantLatency())
	carrier := NewTCPTransport()
	defer carrier.Close()

	link := NewWANLink("a~b", a, b, WANConfig{})
	if err := link.UseCarrier(carrier, "127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	observer := obs.NewObserver()
	link.SetObserver(observer)

	var got Message
	if err := b.Register("svc", func(msg Message) ([]byte, error) {
		got = msg
		return []byte("ok"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := link.Export(SideB, "svc"); err != nil {
		t.Fatal(err)
	}

	tc := obs.TraceContext{TraceID: 0x777, SpanID: 2}
	if _, err := a.Send("client", "svc", "ping", obs.Inject(tc, []byte("carried"))); err != nil {
		t.Fatal(err)
	}
	if got.Trace.TraceID != tc.TraceID {
		t.Fatalf("trace lost across the carrier: %+v", got.Trace)
	}
	if !bytes.Equal(got.Payload, []byte("carried")) {
		t.Fatalf("payload across carrier = %q", got.Payload)
	}
	spans := observer.Tracer.Spans()
	if len(spans) != 1 || spans[0].Name != "wan.hop" || spans[0].TraceID != tc.TraceID {
		t.Fatalf("spans = %+v, want one wan.hop in the sender's trace", spans)
	}
}
