package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// TCP framing errors.
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds limit")
	ErrClosed        = errors.New("transport: transport closed")
)

// maxFrame bounds a single request or reply frame (16 MiB: a migration
// payload is small — Table I is ~1.3 KiB — but sealed app data may ride
// along).
const maxFrame = 16 << 20

// tcpEnvelope is the wire format for requests and replies.
type tcpEnvelope struct {
	From    string `json:"from,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	Error   string `json:"error,omitempty"`
}

// TCPTransport is a Messenger over real TCP sockets. Register starts a
// listener on the address (host:port); Send dials the target. Frames are
// 4-byte big-endian length-prefixed JSON envelopes.
//
// TCPTransport carries the same untrusted bytes as Network: all security
// comes from the attested channels layered above.
type TCPTransport struct {
	dialTimeout time.Duration
	sendTimeout time.Duration

	mu        sync.Mutex
	listeners map[Address]net.Listener
	wg        sync.WaitGroup
	closed    bool
}

var _ Messenger = (*TCPTransport)(nil)

// NewTCPTransport creates a TCP messenger.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		dialTimeout: 5 * time.Second,
		sendTimeout: 2 * time.Minute,
		listeners:   make(map[Address]net.Listener),
	}
}

// SetSendTimeout overrides the per-exchange deadline. The default (2
// minutes) accommodates handler-side simulated firmware latencies — a
// full 256-counter reseed at paper-scale costs is over a minute — while
// still bounding a hung peer; lower it for latency-sensitive setups at
// scale 0.
func (t *TCPTransport) SetSendTimeout(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d > 0 {
		t.sendTimeout = d
	}
}

// Register starts serving handler h on the TCP address addr.
func (t *TCPTransport) Register(addr Address, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if _, exists := t.listeners[addr]; exists {
		return fmt.Errorf("%w: %s", ErrAlreadyBound, addr)
	}
	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	t.listeners[addr] = ln
	t.wg.Add(1)
	go t.serve(ln, addr, h)
	return nil
}

// Unregister stops the listener serving addr. In-flight connections
// drain on their own; the address may be registered again afterwards.
func (t *TCPTransport) Unregister(addr Address) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ln, ok := t.listeners[addr]; ok {
		_ = ln.Close()
		delete(t.listeners, addr)
	}
}

// rebind re-keys a listener registered under `from` to the address `to`
// (the resolved port-0 bind address), so Unregister and BoundAddr work
// against the address peers actually dial.
func (t *TCPTransport) rebind(from, to Address) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ln, ok := t.listeners[from]; ok {
		delete(t.listeners, from)
		t.listeners[to] = ln
	}
}

// BoundAddr returns the actual listen address for addr (useful when
// registering with port 0).
func (t *TCPTransport) BoundAddr(addr Address) (Address, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ln, ok := t.listeners[addr]
	if !ok {
		return "", false
	}
	return Address(ln.Addr().String()), true
}

func (t *TCPTransport) serve(ln net.Listener, addr Address, h Handler) {
	defer t.wg.Done()
	var connWG sync.WaitGroup
	defer connWG.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			defer conn.Close()
			t.handleConn(conn, addr, h)
		}()
	}
}

func (t *TCPTransport) handleConn(conn net.Conn, addr Address, h Handler) {
	for {
		var req tcpEnvelope
		if err := readFrame(conn, &req); err != nil {
			return
		}
		// The trace envelope rides inside the framed payload bytes; strip
		// it here so handlers see only the protocol payload.
		tc, inner := obs.Extract(req.Payload)
		msg := Message{
			From:    Address(req.From),
			To:      addr,
			Kind:    req.Kind,
			Payload: inner,
			Trace:   tc,
		}
		reply, err := h(msg)
		resp := tcpEnvelope{Payload: reply}
		if err != nil {
			resp.Error = err.Error()
			resp.Payload = nil
		}
		if err := writeFrame(conn, &resp); err != nil {
			return
		}
	}
}

// Send dials the destination, performs one request/response, and closes.
// The whole exchange runs under a deadline: a peer that accepts the
// connection but never replies produces an error instead of wedging the
// caller forever (quorum broadcasts hold locks across Send, so a hung
// exchange would otherwise stall every operation behind them).
func (t *TCPTransport) Send(from, to Address, kind string, payload []byte) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", string(to), t.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnknownEndpoint, to, err)
	}
	defer conn.Close()
	t.mu.Lock()
	deadline := t.sendTimeout
	t.mu.Unlock()
	_ = conn.SetDeadline(time.Now().Add(deadline))
	req := tcpEnvelope{From: string(from), Kind: kind, Payload: payload}
	if err := writeFrame(conn, &req); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	var resp tcpEnvelope
	if err := readFrame(conn, &resp); err != nil {
		return nil, fmt.Errorf("receive: %w", err)
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	return resp.Payload, nil
}

// Close stops all listeners and waits for connection goroutines to exit.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	t.closed = true
	for addr, ln := range t.listeners {
		_ = ln.Close()
		delete(t.listeners, addr)
	}
	t.mu.Unlock()
	t.wg.Wait()
}

func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("marshal frame: %w", err)
	}
	if len(body) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
