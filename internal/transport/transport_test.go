package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sim"
)

func echoHandler(msg Message) ([]byte, error) {
	return append([]byte("echo:"), msg.Payload...), nil
}

func TestNetworkRequestResponse(t *testing.T) {
	n := NewNetwork(sim.NewInstantLatency())
	if err := n.Register("B", echoHandler); err != nil {
		t.Fatal(err)
	}
	reply, err := n.Send("A", "B", "ping", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hello" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestNetworkUnknownEndpoint(t *testing.T) {
	n := NewNetwork(sim.NewInstantLatency())
	if _, err := n.Send("A", "nowhere", "ping", nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("got %v", err)
	}
}

func TestNetworkDuplicateBind(t *testing.T) {
	n := NewNetwork(sim.NewInstantLatency())
	if err := n.Register("B", echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("B", echoHandler); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("got %v", err)
	}
	n.Unregister("B")
	if err := n.Register("B", echoHandler); err != nil {
		t.Fatalf("rebind after unregister: %v", err)
	}
}

func TestNetworkHandlerError(t *testing.T) {
	n := NewNetwork(sim.NewInstantLatency())
	wantErr := errors.New("handler refused")
	_ = n.Register("B", func(Message) ([]byte, error) { return nil, wantErr })
	if _, err := n.Send("A", "B", "x", nil); !errors.Is(err, wantErr) {
		t.Fatalf("got %v", err)
	}
}

func TestInterceptorCaptures(t *testing.T) {
	n := NewNetwork(sim.NewInstantLatency())
	_ = n.Register("B", echoHandler)
	adv := &Interceptor{}
	n.SetAdversary(adv)
	if _, err := n.Send("A", "B", "k1", []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send("A", "B", "k2", []byte("m2")); err != nil {
		t.Fatal(err)
	}
	cap := adv.Captured()
	if len(cap) != 2 || cap[0].Kind != "k1" || string(cap[1].Payload) != "m2" {
		t.Fatalf("captured = %+v", cap)
	}
	// Captured copies are isolated from later mutation.
	cap[0].Payload[0] = 'X'
	if string(adv.Captured()[0].Payload) != "m1" {
		t.Fatal("capture aliases live payload")
	}
}

func TestAdversaryDrop(t *testing.T) {
	n := NewNetwork(sim.NewInstantLatency())
	_ = n.Register("B", echoHandler)
	n.SetAdversary(DropKind("migrate"))
	if _, err := n.Send("A", "B", "migrate", []byte("data")); !errors.Is(err, ErrDropped) {
		t.Fatalf("got %v", err)
	}
	if _, err := n.Send("A", "B", "other", nil); err != nil {
		t.Fatalf("unrelated kind dropped: %v", err)
	}
}

func TestAdversaryRedirect(t *testing.T) {
	n := NewNetwork(sim.NewInstantLatency())
	_ = n.Register("B", func(Message) ([]byte, error) { return []byte("B"), nil })
	_ = n.Register("evil", func(Message) ([]byte, error) { return []byte("evil"), nil })
	n.SetAdversary(RedirectTo("evil"))
	reply, err := n.Send("A", "B", "migrate", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "evil" {
		t.Fatalf("redirect did not take effect: %q", reply)
	}
}

func TestAdversaryTamper(t *testing.T) {
	n := NewNetwork(sim.NewInstantLatency())
	var got []byte
	_ = n.Register("B", func(msg Message) ([]byte, error) {
		got = msg.Payload
		return nil, nil
	})
	n.SetAdversary(FlipPayloadBit("migrate"))
	orig := []byte("sensitive-protocol-bytes")
	if _, err := n.Send("A", "B", "migrate", orig); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("payload not tampered")
	}
}

func TestAdversaryResponseTamper(t *testing.T) {
	n := NewNetwork(sim.NewInstantLatency())
	_ = n.Register("B", echoHandler)
	n.SetAdversary(&Interceptor{Response: func(_ Message, reply *[]byte) error {
		*reply = []byte("forged")
		return nil
	}})
	reply, err := n.Send("A", "B", "x", []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "forged" {
		t.Fatal("response tampering did not apply")
	}
}

func TestNetworkChargesRTT(t *testing.T) {
	lat := sim.NewInstantLatency()
	n := NewNetwork(lat)
	_ = n.Register("B", echoHandler)
	_, _ = n.Send("A", "B", "x", nil)
	_, _ = n.Send("A", "B", "x", nil)
	if lat.Counts()[sim.OpNetworkRTT] != 2 {
		t.Fatalf("RTT count = %d", lat.Counts()[sim.OpNetworkRTT])
	}
}

func TestNetworkConcurrentSends(t *testing.T) {
	n := NewNetwork(sim.NewInstantLatency())
	_ = n.Register("B", echoHandler)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("m%d", i))
			reply, err := n.Send("A", "B", "x", payload)
			if err != nil {
				t.Errorf("send: %v", err)
				return
			}
			if string(reply) != "echo:"+string(payload) {
				t.Errorf("reply mismatch: %q", reply)
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPTransportRoundTrip(t *testing.T) {
	tt := NewTCPTransport()
	defer tt.Close()
	if err := tt.Register("127.0.0.1:0", echoHandler); err != nil {
		t.Fatal(err)
	}
	addr, ok := tt.BoundAddr("127.0.0.1:0")
	if !ok {
		t.Fatal("bound address missing")
	}
	reply, err := tt.Send("client", addr, "ping", []byte("over tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:over tcp" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestTCPTransportHandlerError(t *testing.T) {
	tt := NewTCPTransport()
	defer tt.Close()
	if err := tt.Register("127.0.0.1:0", func(Message) ([]byte, error) {
		return nil, errors.New("refused by policy")
	}); err != nil {
		t.Fatal(err)
	}
	addr, _ := tt.BoundAddr("127.0.0.1:0")
	_, err := tt.Send("client", addr, "x", nil)
	if err == nil || err.Error() != "refused by policy" {
		t.Fatalf("got %v", err)
	}
}

func TestTCPTransportUnknownTarget(t *testing.T) {
	tt := NewTCPTransport()
	defer tt.Close()
	if _, err := tt.Send("client", "127.0.0.1:1", "x", nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("got %v", err)
	}
}

func TestTCPTransportLargePayload(t *testing.T) {
	tt := NewTCPTransport()
	defer tt.Close()
	if err := tt.Register("127.0.0.1:0", echoHandler); err != nil {
		t.Fatal(err)
	}
	addr, _ := tt.BoundAddr("127.0.0.1:0")
	payload := bytes.Repeat([]byte{0x42}, 1<<20)
	reply, err := tt.Send("client", addr, "big", payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != len(payload)+5 {
		t.Fatalf("reply len = %d", len(reply))
	}
}

func TestTCPTransportCloseRejectsRegister(t *testing.T) {
	tt := NewTCPTransport()
	tt.Close()
	if err := tt.Register("127.0.0.1:0", echoHandler); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
}
