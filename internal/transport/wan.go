package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wirec"
)

// WAN link errors.
var (
	// ErrLinkDown reports a message refused because the WAN link is
	// administratively or physically down (partition). The payload never
	// left the sending site; retrying after the link heals is safe.
	ErrLinkDown = errors.New("transport: wan link down")
	// ErrNotExported reports an export conflict or an unexport of an
	// address the link does not carry.
	ErrNotExported = errors.New("transport: address not exported on this wan link")
)

// WANConfig shapes one inter-datacenter link.
type WANConfig struct {
	// RTT is the round-trip propagation delay of the link (charged once
	// per request/response exchange as sim.OpWANHop).
	RTT time.Duration
	// Bandwidth is the usable link bandwidth in bytes per second; request
	// and reply payload bytes are charged sim.OpWANByte at 1/Bandwidth
	// each. Zero means unconstrained (no per-byte charge).
	Bandwidth int64
	// Loss is the probability in [0, 1) that one exchange is dropped by
	// the link (the message errors with ErrDropped and never reaches the
	// far side; the sender retries like any transport failure).
	Loss float64
	// Seed makes the loss process deterministic for tests; 0 seeds from
	// the link name.
	Seed int64
	// Rand, when set, replaces the link's own loss RNG entirely (Seed is
	// then ignored). Chaos harnesses inject a source derived from the
	// schedule seed so a whole run — including every loss draw — replays
	// bit-identically. The link serializes access; the source need not be
	// safe for concurrent use by other parties.
	Rand *rand.Rand
	// Scale is the latency-model scale factor for the link's own
	// sim.Latency (same convention as sim.NewLatency: 0 accounts without
	// sleeping, 1 reproduces the configured delays in wall time).
	Scale float64
}

// wanSide names one end of a link.
type wanSide struct {
	local  Messenger // messenger the exported address actually lives on
	remote Messenger // messenger the forwarder is registered on
}

// WANLink bridges two Messengers — typically two data centers' networks —
// into one address space with WAN economics: every exchange that crosses
// the link is charged one sim.OpWANHop (the configured RTT) plus one
// sim.OpWANByte per payload byte in either direction (the bandwidth
// model), and may be dropped outright by the loss process or refused
// while the link is partitioned (SetDown).
//
// Export makes an address that is registered on one side reachable from
// the other by installing a forwarding handler there; everything above
// the Messenger interface (Migration Enclave handshakes, replication
// traffic, escrow mirroring) then works across the link unchanged. The
// bytes crossing the link are as untrusted as on any Messenger — all
// security still comes from the attested channels layered above.
//
// An optional Carrier (typically a *TCPTransport) routes the bridged
// exchanges through a real transport hop between the two sites instead
// of an in-process call, so the same link can span OS processes.
type WANLink struct {
	name string
	cfg  WANConfig
	lat  *sim.Latency

	// carrier, when non-nil, is the transport the bridge hop itself rides
	// on; carrierAddr[side] is the carrier endpoint delivering into that
	// side's messenger.
	carrier     Messenger
	carrierAddr [2]Address

	mu      sync.Mutex
	rng     *rand.Rand
	down    bool
	exports [2]map[Address]bool // exports[i]: addresses of side i visible from the other side

	msgs  atomic.Int64
	bytes atomic.Int64

	// obs, when set, records one "wan.hop" span per bridged exchange;
	// the trace context always propagates across the link regardless.
	obs atomic.Pointer[obs.Observer]

	// Per-link metric names, precomputed so the forwarding path does one
	// registry lookup per exchange and no string concatenation. The
	// wan.link.* families feed the link health detector
	// (internal/obs/health).
	mMsgs, mLost, mRefused, mErrors, gDown string

	a, b Messenger
}

// Link sides.
const (
	SideA = 0
	SideB = 1
)

// NewWANLink creates a link between messengers a and b. The link's own
// latency model is created at cfg.Scale with OpWANHop set to cfg.RTT and
// OpWANByte to 1/cfg.Bandwidth.
func NewWANLink(name string, a, b Messenger, cfg WANConfig) *WANLink {
	lat := sim.NewLatency(cfg.Scale)
	if cfg.RTT > 0 {
		lat.SetCost(sim.OpWANHop, cfg.RTT)
	}
	if cfg.Bandwidth > 0 {
		lat.SetCost(sim.OpWANByte, time.Duration(float64(time.Second)/float64(cfg.Bandwidth)))
	} else {
		lat.SetCost(sim.OpWANByte, 0)
	}
	rng := cfg.Rand
	if rng == nil {
		seed := cfg.Seed
		if seed == 0 {
			for _, c := range name {
				seed = seed*131 + int64(c)
			}
		}
		rng = rand.New(rand.NewSource(seed))
	}
	l := &WANLink{
		name:     name,
		cfg:      cfg,
		lat:      lat,
		rng:      rng,
		a:        a,
		b:        b,
		mMsgs:    "wan.link.msgs." + name,
		mLost:    "wan.link.lost." + name,
		mRefused: "wan.link.refused." + name,
		mErrors:  "wan.link.errors." + name,
		gDown:    "wan.link.down." + name,
	}
	l.exports[SideA] = make(map[Address]bool)
	l.exports[SideB] = make(map[Address]bool)
	return l
}

// UseCarrier routes the bridge hop through a real transport (e.g. a
// *TCPTransport): one carrier endpoint per side is registered on the
// given listen addresses (host:port; port 0 picks a free port), and every
// bridged exchange crosses it as a framed forward. Must be called before
// the first Export.
func (l *WANLink) UseCarrier(carrier Messenger, listenA, listenB Address) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.exports[SideA]) > 0 || len(l.exports[SideB]) > 0 {
		return fmt.Errorf("transport: wan link %s: carrier must be set before exports", l.name)
	}
	for side, listen := range [2]Address{listenA, listenB} {
		dst := l.sideMessenger(side)
		h := func(msg Message) ([]byte, error) {
			to, kind, payload, err := decodeWANForward(msg.Payload)
			if err != nil {
				return nil, err
			}
			// Re-inject the trace context that crossed the carrier hop so
			// it survives into the destination messenger.
			return dst.Send(msg.From, to, kind, obs.Inject(msg.Trace, payload))
		}
		if err := carrier.Register(listen, h); err != nil {
			return fmt.Errorf("wan carrier %s: %w", l.name, err)
		}
		bound := listen
		if t, ok := carrier.(*TCPTransport); ok {
			if ba, ok := t.BoundAddr(listen); ok {
				bound = ba
			}
		}
		// The carrier serves on the bound (resolved) address; re-home the
		// registration there so Send can dial it.
		if bound != listen {
			if t, ok := carrier.(*TCPTransport); ok {
				t.rebind(listen, bound)
			}
		}
		l.carrierAddr[side] = bound
	}
	l.carrier = carrier
	return nil
}

// sideMessenger returns the messenger of one side.
func (l *WANLink) sideMessenger(side int) Messenger {
	if side == SideA {
		return l.a
	}
	return l.b
}

// Name returns the link name.
func (l *WANLink) Name() string { return l.name }

// Latency exposes the link's latency model (per-link hop and byte
// accounting; tests and benchmarks read Counts / VirtualTotal).
func (l *WANLink) Latency() *sim.Latency { return l.lat }

// Stats returns the total exchanges and payload bytes carried.
func (l *WANLink) Stats() (msgs, bytes int64) {
	return l.msgs.Load(), l.bytes.Load()
}

// SetObserver installs (or clears, with nil) the link's observer. With
// one set, every bridged exchange records a "wan.hop" span joined into
// the sender's trace plus the per-link wan.link.* counters the health
// plane watches.
func (l *WANLink) SetObserver(o *obs.Observer) {
	l.obs.Store(o)
	if o != nil {
		// Materialize the down gauge immediately so the link is visible
		// to the health plane before its first exchange.
		o.M().SetGauge(l.gDown, boolGauge(l.Down()))
	}
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// SetDown partitions (true) or heals (false) the link. While down, every
// bridged exchange fails with ErrLinkDown without crossing.
func (l *WANLink) SetDown(down bool) {
	l.mu.Lock()
	l.down = down
	l.mu.Unlock()
	l.obs.Load().M().SetGauge(l.gDown, boolGauge(down))
}

// Down reports whether the link is partitioned.
func (l *WANLink) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// Export makes addr — registered on messenger side `side` (SideA/SideB) —
// reachable from the other side: a forwarding handler under the same
// address is registered on the opposite messenger. Fails if the opposite
// side already binds the address (the two sites' namespaces collide).
func (l *WANLink) Export(side int, addr Address) error {
	if side != SideA && side != SideB {
		return fmt.Errorf("transport: invalid wan side %d", side)
	}
	far := l.sideMessenger(1 - side)
	if err := far.Register(addr, l.forwarder(side, addr)); err != nil {
		return fmt.Errorf("wan export %s: %w", addr, err)
	}
	l.mu.Lock()
	l.exports[side][addr] = true
	l.mu.Unlock()
	return nil
}

// Unexport withdraws an exported address from the far side.
func (l *WANLink) Unexport(side int, addr Address) error {
	if side != SideA && side != SideB {
		return fmt.Errorf("transport: invalid wan side %d", side)
	}
	l.mu.Lock()
	ok := l.exports[side][addr]
	delete(l.exports[side], addr)
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExported, addr)
	}
	l.sideMessenger(1 - side).Unregister(addr)
	return nil
}

// tagWANForward frames one bridged exchange on a carrier transport
// (0xE* block: transport).
const tagWANForward byte = 0xE1

// wanForwardVersion is bumped on layout changes.
const wanForwardVersion byte = 1

// encodeWANForward frames a bridged exchange for the carrier hop.
func encodeWANForward(to Address, kind string, payload []byte) []byte {
	out := make([]byte, 0, 2+4+len(to)+4+len(kind)+4+len(payload))
	out = wirec.AppendHeader(out, tagWANForward, wanForwardVersion)
	out = wirec.AppendString(out, string(to))
	out = wirec.AppendString(out, kind)
	return wirec.AppendBytes(out, payload)
}

// decodeWANForward parses a carrier forward frame.
func decodeWANForward(raw []byte) (to Address, kind string, payload []byte, err error) {
	rd := wirec.NewReader(raw)
	if !rd.Header(tagWANForward, wanForwardVersion) {
		return "", "", nil, fmt.Errorf("transport: bad wan forward: %w", rd.Err())
	}
	to = Address(rd.String())
	kind = rd.String()
	payload = rd.Bytes()
	if err := rd.Done(); err != nil {
		return "", "", nil, fmt.Errorf("transport: bad wan forward: %w", err)
	}
	return to, kind, payload, nil
}

// forwarder builds the far-side handler that carries one exchange over
// the link to the home side of addr.
func (l *WANLink) forwarder(homeSide int, addr Address) Handler {
	return func(msg Message) ([]byte, error) {
		l.mu.Lock()
		down := l.down
		lost := l.cfg.Loss > 0 && l.rng.Float64() < l.cfg.Loss
		l.mu.Unlock()
		met := l.obs.Load().M()
		if down {
			met.Add(l.mRefused, 1)
			return nil, fmt.Errorf("%w: %s", ErrLinkDown, l.name)
		}
		if lost {
			met.Add(l.mLost, 1)
			return nil, fmt.Errorf("%w: lost on wan link %s", ErrDropped, l.name)
		}
		met.Add(l.mMsgs, 1)
		l.lat.Charge(sim.OpWANHop)
		l.lat.ChargeN(sim.OpWANByte, len(msg.Payload))
		l.msgs.Add(1)
		l.bytes.Add(int64(len(msg.Payload)))

		// The local messenger stripped the sender's trace envelope into
		// msg.Trace; record the hop and re-inject the (possibly deepened)
		// context so it crosses to the far side.
		tc := msg.Trace
		sp, tc := l.obs.Load().StartSpan("wan.hop", tc)
		if sp != nil {
			sp.Site = l.name
			defer sp.End()
		}

		var reply []byte
		var err error
		if l.carrier != nil {
			fwd := encodeWANForward(addr, msg.Kind, msg.Payload)
			reply, err = l.carrier.Send(msg.From, l.carrierAddr[homeSide], "wan-fwd", obs.Inject(tc, fwd))
		} else {
			reply, err = l.sideMessenger(homeSide).Send(msg.From, addr, msg.Kind, obs.Inject(tc, msg.Payload))
		}
		if err != nil {
			met.Add(l.mErrors, 1)
			return nil, err
		}
		l.lat.ChargeN(sim.OpWANByte, len(reply))
		l.bytes.Add(int64(len(reply)))
		return reply, nil
	}
}
