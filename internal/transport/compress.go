package transport

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/wirec"
)

// Compressed frames: the WAN-compression container applied beneath the
// AEAD boundary. The sealer side compresses the plaintext and seals the
// frame, so the link only ever sees ciphertext of the (smaller) frame —
// the bandwidth charge (sim.OpWANByte) shrinks without the compressor
// ever running on attacker-visible data. A frame that would not shrink is
// stored verbatim, so framing never inflates a payload by more than the
// fixed header.

// Frame errors.
var (
	// ErrFrameFormat reports a malformed or oversized compressed frame.
	ErrFrameFormat = errors.New("transport: malformed compressed frame")
)

// tagCompressedFrame identifies a compressed frame (0xE* block: transport).
const tagCompressedFrame byte = 0xE2

// compressedFrameVersion is bumped on layout changes.
const compressedFrameVersion byte = 1

// Frame storage methods.
const (
	frameStored  byte = 0 // body is the original bytes verbatim
	frameDeflate byte = 1 // body is a DEFLATE stream of the original bytes
)

// MaxFrameDecoded clamps the original length a frame may declare, the
// decompression-bomb analogue of wirec.MaxField: a hostile frame cannot
// make DecompressFrame allocate or inflate beyond this.
const MaxFrameDecoded = wirec.MaxField

// flateWriters and flateReaders recycle DEFLATE codec state between
// frames. A flate.Writer carries over a megabyte of zero-initialized
// match tables, and allocating one per frame was the single largest CPU
// cost of a batched drain (≈80% of on-core time went to zeroing
// compressor state); Reset reuses the tables instead.
var (
	flateWriters sync.Pool
	flateReaders sync.Pool
)

// CompressFrame wraps raw in a compressed frame, DEFLATE-compressed when
// that is smaller and stored verbatim otherwise. The declared original
// length must fit MaxFrameDecoded (larger inputs are stored-framed only
// by callers that split first; this package's callers never exceed it).
func CompressFrame(raw []byte) ([]byte, error) {
	if len(raw) > MaxFrameDecoded {
		return nil, fmt.Errorf("%w: %d bytes exceeds frame limit", ErrFrameFormat, len(raw))
	}
	header := func(method byte) []byte {
		out := make([]byte, 0, 2+1+4+len(raw))
		out = wirec.AppendHeader(out, tagCompressedFrame, compressedFrameVersion)
		out = append(out, method)
		return wirec.AppendU32(out, uint32(len(raw)))
	}
	var buf bytes.Buffer
	w, _ := flateWriters.Get().(*flate.Writer)
	if w == nil {
		var err error
		w, err = flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("transport: flate writer: %w", err)
		}
	} else {
		w.Reset(&buf)
	}
	defer flateWriters.Put(w)
	if _, err := w.Write(raw); err != nil {
		return nil, fmt.Errorf("transport: compress frame: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("transport: compress frame: %w", err)
	}
	if buf.Len() < len(raw) {
		return append(header(frameDeflate), buf.Bytes()...), nil
	}
	return append(header(frameStored), raw...), nil
}

// DecompressFrame reverses CompressFrame. The declared original length is
// clamped to min(max, MaxFrameDecoded) before any allocation, and a
// DEFLATE body that decodes to anything but exactly that length is
// rejected — a frame can neither bomb the decoder nor lie about its size.
// max <= 0 means MaxFrameDecoded.
func DecompressFrame(frame []byte, max int) ([]byte, error) {
	if max <= 0 || max > MaxFrameDecoded {
		max = MaxFrameDecoded
	}
	rd := wirec.NewReader(frame)
	if !rd.Header(tagCompressedFrame, compressedFrameVersion) {
		return nil, fmt.Errorf("%w: %v", ErrFrameFormat, rd.Err())
	}
	method := rd.U8()
	origLen := int(rd.U32())
	body := rd.Take(rd.Remaining())
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFrameFormat, err)
	}
	if origLen > max {
		return nil, fmt.Errorf("%w: declared length %d exceeds limit %d", ErrFrameFormat, origLen, max)
	}
	switch method {
	case frameStored:
		if len(body) != origLen {
			return nil, fmt.Errorf("%w: stored body %d bytes, declared %d", ErrFrameFormat, len(body), origLen)
		}
		return append([]byte(nil), body...), nil
	case frameDeflate:
		fr, _ := flateReaders.Get().(io.ReadCloser)
		if fr == nil {
			fr = flate.NewReader(bytes.NewReader(body))
		} else if err := fr.(flate.Resetter).Reset(bytes.NewReader(body), nil); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFrameFormat, err)
		}
		defer func() {
			fr.Close()
			flateReaders.Put(fr)
		}()
		out := make([]byte, 0, origLen)
		// Read one byte past the declared length so over-length streams are
		// detected instead of silently truncated.
		lr := io.LimitReader(fr, int64(origLen)+1)
		buf := make([]byte, 4096)
		for {
			n, err := lr.Read(buf)
			out = append(out, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFrameFormat, err)
			}
		}
		if len(out) != origLen {
			return nil, fmt.Errorf("%w: deflate body decoded to %d bytes, declared %d", ErrFrameFormat, len(out), origLen)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown method %d", ErrFrameFormat, method)
	}
}
