// Package stats implements the statistics the paper's evaluation uses:
// sample means with 99% confidence intervals (Figures 3 and 4 plot the
// mean of 1000 runs with 99% CI error bars) and the one-tailed Welch
// t-test used to decide whether the Migration Library's overhead is
// statistically significant (§VII-B: increment p ≈ 0, read p ≈ 0.12).
//
// Student's t distribution is computed from the regularized incomplete
// beta function (continued-fraction expansion), stdlib only.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrSampleSize reports too few samples for the requested statistic.
var ErrSampleSize = errors.New("stats: not enough samples")

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the sample median.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Summary is a sample described by its mean and confidence interval.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	CIHalf   float64 // half-width of the confidence interval
	ConfProb float64 // e.g. 0.99
}

// String formats the summary as "mean ± half (N=n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.6g ± %.2g (N=%d, %.0f%% CI)", s.Mean, s.CIHalf, s.N, s.ConfProb*100)
}

// Summarize computes the mean and a conf-level confidence interval using
// the t distribution ("the true mean value is within the confidence
// interval bar with 99% probability", §VII-B).
func Summarize(xs []float64, conf float64) (Summary, error) {
	if len(xs) < 2 {
		return Summary{}, ErrSampleSize
	}
	if conf <= 0 || conf >= 1 {
		return Summary{}, fmt.Errorf("stats: invalid confidence level %v", conf)
	}
	n := len(xs)
	mean := Mean(xs)
	sd := StdDev(xs)
	tcrit := TQuantile(1-(1-conf)/2, float64(n-1))
	return Summary{
		N:        n,
		Mean:     mean,
		StdDev:   sd,
		CIHalf:   tcrit * sd / math.Sqrt(float64(n)),
		ConfProb: conf,
	}, nil
}

// TTestResult is the outcome of a one-tailed Welch t-test with
// H1: mean(a) > mean(b).
type TTestResult struct {
	T          float64
	DF         float64
	POneTailed float64
	// Significant is true when POneTailed < 0.01 (the paper's level).
	Significant bool
}

// WelchTTest runs the unequal-variance t-test, one-tailed in the
// direction mean(a) > mean(b) — the paper's "1-tailed t-test to check if
// the differences are statistically significant".
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrSampleSize
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se2 := va/na + vb/nb
	if se2 == 0 {
		// Identical constant samples: no evidence of difference.
		return TTestResult{T: 0, DF: na + nb - 2, POneTailed: 0.5}, nil
	}
	t := (ma - mb) / math.Sqrt(se2)
	// Welch–Satterthwaite degrees of freedom.
	df := se2 * se2 / ((va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1)))
	p := 1 - TCDF(t, df)
	return TTestResult{T: t, DF: df, POneTailed: p, Significant: p < 0.01}, nil
}

// TCDF is the cumulative distribution function of Student's t with df
// degrees of freedom.
func TCDF(t, df float64) float64 {
	if math.IsNaN(t) || df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	ib := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - ib
	}
	return ib
}

// TQuantile returns the p-quantile of Student's t with df degrees of
// freedom, by bisection on TCDF (robust; speed is irrelevant here).
func TQuantile(p, df float64) float64 {
	if p <= 0 || p >= 1 || df <= 0 {
		return math.NaN()
	}
	lo, hi := -1e6, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta is the regularized incomplete beta function I_x(a, b),
// computed via the continued-fraction expansion (Numerical Recipes §6.4).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
