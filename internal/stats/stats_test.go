package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", got)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %v", got)
	}
	if got := Median(xs); got != 4.5 {
		t.Fatalf("median = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) || !math.IsNaN(Median(nil)) {
		t.Fatal("degenerate inputs must be NaN")
	}
}

// Known values of the t distribution (standard tables).
func TestTCDFKnownValues(t *testing.T) {
	tests := []struct {
		t, df, want float64
	}{
		{0, 5, 0.5},
		{1, 1, 0.75},        // t(1) CDF at 1 is 3/4 (Cauchy)
		{2.015, 5, 0.95},    // 95th percentile of t(5)
		{2.576, 1e6, 0.995}, // converges to normal for huge df
		{-2.015, 5, 0.05},   // symmetry
		{12.706, 1, 0.975},  // 97.5th percentile of t(1)
		{1.645, 1e6, 0.95},  // normal limit
		{3.169, 10, 0.995},  // 99.5th percentile of t(10)
	}
	for _, tt := range tests {
		if got := TCDF(tt.t, tt.df); !almostEqual(got, tt.want, 2e-3) {
			t.Errorf("TCDF(%v, %v) = %v, want %v", tt.t, tt.df, got, tt.want)
		}
	}
}

func TestTQuantileInvertsTCDF(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 30, 999} {
		for _, p := range []float64{0.05, 0.5, 0.9, 0.975, 0.995} {
			q := TQuantile(p, df)
			if got := TCDF(q, df); !almostEqual(got, p, 1e-9) {
				t.Errorf("TCDF(TQuantile(%v, %v)) = %v", p, df, got)
			}
		}
	}
	if !math.IsNaN(TQuantile(0, 5)) || !math.IsNaN(TQuantile(1.5, 5)) {
		t.Fatal("invalid p must yield NaN")
	}
}

func TestSummarizeCI(t *testing.T) {
	// For N=1000 samples from a known distribution, the 99% CI should be
	// t_{0.995,999} * sd/sqrt(n) wide.
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	s, err := Summarize(xs, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Mean, 10, 0.15) {
		t.Fatalf("mean = %v", s.Mean)
	}
	want := TQuantile(0.995, 999) * s.StdDev / math.Sqrt(1000)
	if !almostEqual(s.CIHalf, want, 1e-12) {
		t.Fatalf("CI half = %v, want %v", s.CIHalf, want)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
	if _, err := Summarize([]float64{1}, 0.99); !errors.Is(err, ErrSampleSize) {
		t.Fatalf("tiny sample: %v", err)
	}
	if _, err := Summarize(xs, 1.5); err == nil {
		t.Fatal("bad confidence accepted")
	}
}

func TestWelchTTestDetectsDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	slow := make([]float64, 500)
	fast := make([]float64, 500)
	for i := range slow {
		slow[i] = 112 + 5*rng.NormFloat64() // ~12% slower, like Fig. 3 increment
		fast[i] = 100 + 5*rng.NormFloat64()
	}
	res, err := WelchTTest(slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant || res.POneTailed > 1e-6 {
		t.Fatalf("clear difference not significant: p=%v", res.POneTailed)
	}
	if res.T <= 0 {
		t.Fatalf("t = %v", res.T)
	}
}

func TestWelchTTestNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = 100 + 5*rng.NormFloat64()
		b[i] = 100 + 5*rng.NormFloat64()
	}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant && res.POneTailed < 0.001 {
		t.Fatalf("identical populations reported wildly significant: p=%v", res.POneTailed)
	}
}

func TestWelchTTestEdgeCases(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrSampleSize) {
		t.Fatalf("tiny sample: %v", err)
	}
	res, err := WelchTTest([]float64{5, 5, 5}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.POneTailed != 0.5 {
		t.Fatalf("constant samples p = %v, want 0.5", res.POneTailed)
	}
}

// Property: TCDF is monotone in t and bounded in [0, 1].
func TestTCDFMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 50)
		b = math.Mod(b, 50)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		cl, ch := TCDF(lo, 7), TCDF(hi, 7)
		return cl >= 0 && ch <= 1 && cl <= ch+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the CI shrinks as the sample grows.
func TestCIShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	big := make([]float64, 4000)
	for i := range big {
		big[i] = rng.NormFloat64()
	}
	small, _ := Summarize(big[:100], 0.99)
	large, _ := Summarize(big, 0.99)
	if large.CIHalf >= small.CIHalf {
		t.Fatalf("CI did not shrink: %v -> %v", small.CIHalf, large.CIHalf)
	}
}
