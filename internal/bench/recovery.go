package bench

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/pse"
	"repro/internal/sim"
)

// RecoverySweep measures restart-anywhere recovery (ISSUE 4): the
// kill-to-recovered latency of resurrecting an enclave on a rack peer
// from the escrowed Table II blob, swept over the replication factor f,
// plus the raw escrow put+get round trip swept over the blob size (the
// state blob itself is fixed-size, so the size axis is driven through
// the store directly).
//
// The recovery latency is dominated by the binding-counter handshake
// (one quorum read, one quorum destroy, one create, one fast-forward)
// plus the re-persist on the new CPU (escrow put + native seal) — about
// six quorum round trips, each paid once regardless of f thanks to the
// parallel broadcast with early-quorum return.
func RecoverySweep(cfg Config) ([]Row, error) {
	var rows []Row
	for _, f := range []int{1, 2} {
		samples, err := recoverySamples(cfg, f)
		if err != nil {
			return nil, fmt.Errorf("recover f=%d: %w", f, err)
		}
		row, err := compare(fmt.Sprintf("recover-f%d-%drep", f, 2*f+1), samples, nil, cfg.Confidence)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		samples, err := escrowRoundTripSamples(cfg, 1, size)
		if err != nil {
			return nil, fmt.Errorf("escrow rt %dB: %w", size, err)
		}
		row, err := compare(fmt.Sprintf("escrow-rt-%dKiB", size>>10), samples, nil, cfg.Confidence)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// recoverySamples times kill→recovered for one enclave per iteration:
// launch on rack-0, kill the machine, resurrect on rack-1, then restart
// rack-0 (replica reseed included) for the next round. Each round
// permanently consumes rack counter budget (the app counter and the
// binding counter outlive the terminated enclave by design), so the
// data center is recycled every recoverChunk rounds to stay under the
// facility limit.
const recoverChunk = 50

func recoverySamples(cfg Config, f int) ([]float64, error) {
	out := make([]float64, 0, cfg.N)
	for len(out) < cfg.N {
		rounds := cfg.N - len(out)
		if rounds > recoverChunk {
			rounds = recoverChunk
		}
		chunk, err := recoveryChunk(cfg, f, rounds, len(out) == 0)
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// recoveryChunk runs rounds kill→recover cycles in a fresh data center.
func recoveryChunk(cfg Config, f, rounds int, warmup bool) ([]float64, error) {
	dc, ids, err := rackDC(fmt.Sprintf("recover-bench-f%d", f), f, true, cfg.Scale)
	if err != nil {
		return nil, err
	}
	host, _ := dc.Machine(ids[0])
	target, _ := dc.Machine(ids[1])

	out := make([]float64, 0, rounds)
	start := 0
	if warmup {
		start = -1 // one unmeasured warm-up round in the first chunk
	}
	for i := start; i < rounds; i++ {
		app, err := host.LaunchApp(appImage(fmt.Sprintf("recover-f%d", f)), core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			return nil, err
		}
		ctr, _, err := app.Library.CreateCounter()
		if err != nil {
			return nil, err
		}
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			return nil, err
		}
		host.Kill()
		t0 := time.Now()
		recovered, err := dc.RecoverMachine(host.ID(), target.ID())
		dt := time.Since(t0).Seconds()
		if err != nil {
			return nil, err
		}
		if len(recovered) != 1 {
			return nil, fmt.Errorf("recovered %d apps, want 1", len(recovered))
		}
		if i >= 0 {
			out = append(out, dt)
		}
		recovered[0].Terminate()
		if err := host.Restart(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rackDC builds the benchmarks' shared rack shape: 2f+1 machines named
// rack-0..rack-2f, optionally joined into one replica group.
func rackDC(name string, f int, grouped bool, scale float64) (*cloud.DataCenter, []string, error) {
	dc, err := cloud.NewDataCenter(name, sim.NewLatency(scale))
	if err != nil {
		return nil, nil, err
	}
	n := 2*f + 1
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("rack-%d", i)
		if _, err := dc.AddMachine(id); err != nil {
			return nil, nil, err
		}
		ids = append(ids, id)
	}
	if grouped {
		if _, err := dc.NewReplicaGroup("bench-rack", f, ids...); err != nil {
			return nil, nil, err
		}
	}
	return dc, ids, nil
}

// escrowRoundTripSamples times one escrow put + quorum get of a blob of
// the given size through a 2f+1 group.
func escrowRoundTripSamples(cfg Config, f, size int) ([]float64, error) {
	dc, _, err := rackDC(fmt.Sprintf("escrow-bench-%d", size), f, true, cfg.Scale)
	if err != nil {
		return nil, err
	}
	group, _ := dc.ReplicaGroup("bench-rack")
	blob := make([]byte, size)
	for i := range blob {
		blob[i] = byte(i)
	}
	var owner = appImage("escrow-bench").Measure()
	id := [16]byte{0xEC}
	bind := pse.UUID{ID: 1}
	version := uint32(0)
	return sample(cfg.N, func() error {
		version++
		if err := group.EscrowPut(owner, id, version, bind, blob); err != nil {
			return err
		}
		_, _, got, err := group.EscrowGet(owner, id)
		if err != nil {
			return err
		}
		if len(got) != size {
			return fmt.Errorf("got %d bytes, want %d", len(got), size)
		}
		return nil
	})
}
