// Package bench implements the paper's evaluation experiments (§VII-B):
// the counter-operation timings of Figure 3, the initialization and
// sealing timings of Figure 4, and the enclave-migration overhead
// measurement, each as a reusable runner shared by the root-level
// testing.B benchmarks and the cmd/benchfig table generator.
//
// Methodology mirrors the paper: each operation is measured as one
// ECALL, repeated N times (the paper uses N=1000); results are reported
// as means with 99% confidence intervals, and the Migration Library is
// compared against the native SGX primitives with a one-tailed Welch
// t-test.
package bench

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pse"
	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xcrypto"
)

// Config controls an experiment run.
type Config struct {
	// N is the number of measured iterations per operation (paper: 1000).
	N int
	// Scale is the latency-model scale factor (0 = no simulated latency,
	// 1 = paper-magnitude Platform Services latencies).
	Scale float64
	// Confidence is the CI level (paper: 0.99).
	Confidence float64
	// BatchSize is the fleet orchestrator batch width the WAN drain
	// scenarios run at (fleet.Config.BatchSize). Zero means the batched
	// default (64); 1 forces the classic one-migration-per-session path,
	// which is what the CI smoke compares against.
	BatchSize int
	// Metrics, when set, additionally receives each experiment's raw
	// sample durations as latency histograms ("fig3.increment.library",
	// "fig3.increment.baseline", ...) and the run's simulated-cost op
	// tallies as gauges ("sim.op.<name>"). Recording happens after the
	// timed loops, off the measured path; nil (the default) records
	// nothing.
	Metrics *obs.Metrics `json:"-"`
}

// record folds one experiment's per-op sample sets into the configured
// metrics registry under "<prefix>.<op>.<variant>".
func (c Config) record(prefix, variant string, samples map[string][]float64) {
	if c.Metrics == nil {
		return
	}
	for op, vals := range samples {
		h := c.Metrics.Histogram(prefix + "." + op + "." + variant)
		for _, s := range vals {
			h.Observe(time.Duration(s * float64(time.Second)))
		}
	}
}

// recordSimCounts mirrors the latency model's charged-op tallies into
// gauges, so a metrics snapshot carries the cost-model evidence next to
// the wall-clock histograms.
func (c Config) recordSimCounts(lat *sim.Latency) {
	if c.Metrics == nil {
		return
	}
	for op, n := range lat.Counts() {
		c.Metrics.SetGauge("sim.op."+op.String(), int64(n))
	}
}

// DefaultConfig returns the paper's methodology at a wall-clock-friendly
// scale (see EXPERIMENTS.md for the scale discussion).
func DefaultConfig() Config {
	return Config{N: 1000, Scale: 0, Confidence: 0.99}
}

// Row is one measured operation: Migration Library vs. native baseline.
type Row struct {
	Name        string
	Library     stats.Summary
	Baseline    stats.Summary
	HasBaseline bool
	// PValue is the one-tailed Welch t-test p-value for
	// H1: library slower than baseline.
	PValue float64
	// OverheadPct is (libMean - baseMean) / baseMean * 100.
	OverheadPct float64
}

// String formats the row for table output.
func (r Row) String() string {
	if !r.HasBaseline {
		return fmt.Sprintf("%-24s lib=%-34s (no baseline)", r.Name, r.Library)
	}
	return fmt.Sprintf("%-24s lib=%-34s base=%-34s overhead=%+6.2f%% p=%.4f",
		r.Name, r.Library, r.Baseline, r.OverheadPct, r.PValue)
}

// appSigner is the deterministic signer for benchmark app images.
func appSigner() ed25519.PublicKey {
	key := xcrypto.DeriveKey([]byte("bench-app-signer"), "ed25519-pub")
	return key[:]
}

// appImage builds the benchmark application enclave image.
func appImage(name string) *sgx.Image {
	return &sgx.Image{Name: name, Version: 1, Code: []byte("bench:" + name), SignerPublicKey: appSigner()}
}

// world is the provisioned two-machine environment benchmarks run in.
type world struct {
	dc  *cloud.DataCenter
	src *cloud.Machine
	dst *cloud.Machine
}

func newWorld(scale float64) (*world, error) {
	dc, err := cloud.NewDataCenter("bench-dc", sim.NewLatency(scale))
	if err != nil {
		return nil, err
	}
	src, err := dc.AddMachine("bench-src")
	if err != nil {
		return nil, err
	}
	dst, err := dc.AddMachine("bench-dst")
	if err != nil {
		return nil, err
	}
	return &world{dc: dc, src: src, dst: dst}, nil
}

// sample measures f n times and returns per-call durations in seconds.
// A few unmeasured warm-up calls run first so cold caches and first-use
// allocations do not skew small samples.
func sample(n int, f func() error) ([]float64, error) {
	for i := 0; i < 3; i++ {
		if err := f(); err != nil {
			return nil, err
		}
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return nil, err
		}
		out = append(out, time.Since(start).Seconds())
	}
	return out, nil
}

// compare builds a Row from two sample sets.
func compare(name string, lib, base []float64, conf float64) (Row, error) {
	ls, err := stats.Summarize(lib, conf)
	if err != nil {
		return Row{}, fmt.Errorf("%s library summary: %w", name, err)
	}
	row := Row{Name: name, Library: ls}
	if base == nil {
		return row, nil
	}
	bs, err := stats.Summarize(base, conf)
	if err != nil {
		return Row{}, fmt.Errorf("%s baseline summary: %w", name, err)
	}
	tt, err := stats.WelchTTest(lib, base)
	if err != nil {
		return Row{}, fmt.Errorf("%s t-test: %w", name, err)
	}
	row.Baseline = bs
	row.HasBaseline = true
	row.PValue = tt.POneTailed
	if bs.Mean > 0 {
		row.OverheadPct = (ls.Mean - bs.Mean) / bs.Mean * 100
	}
	return row, nil
}

// Fig3 measures the four monotonic counter operations through the
// Migration Library and through the native Platform Services interface
// (paper Figure 3).
func Fig3(cfg Config) ([]Row, error) {
	w, err := newWorld(cfg.Scale)
	if err != nil {
		return nil, err
	}
	app, err := w.src.LaunchApp(appImage("fig3-lib"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return nil, err
	}
	baseEnclave, err := w.src.HW.Load(appImage("fig3-base"))
	if err != nil {
		return nil, err
	}

	ops := []string{"create", "increment", "read", "destroy"}
	libSamples := make(map[string][]float64, len(ops))
	baseSamples := make(map[string][]float64, len(ops))

	for i := 0; i < cfg.N; i++ {
		// Library path: one full lifecycle per iteration.
		if err := measureInto(libSamples, "create", func() error {
			_, _, err := app.Library.CreateCounter()
			return err
		}); err != nil {
			return nil, err
		}
		// The freshly created counter always lands in slot 0 because the
		// previous iteration destroyed it.
		if err := measureInto(libSamples, "increment", func() error {
			_, err := app.Library.IncrementCounter(0)
			return err
		}); err != nil {
			return nil, err
		}
		if err := measureInto(libSamples, "read", func() error {
			_, err := app.Library.ReadCounter(0)
			return err
		}); err != nil {
			return nil, err
		}
		if err := measureInto(libSamples, "destroy", func() error {
			return app.Library.DestroyCounter(0)
		}); err != nil {
			return nil, err
		}

		// Baseline path: raw Platform Services counters.
		var uuid pse.UUID
		if err := measureInto(baseSamples, "create", func() error {
			u, _, err := w.src.Counters.Create(baseEnclave)
			uuid = u
			return err
		}); err != nil {
			return nil, err
		}
		if err := measureInto(baseSamples, "increment", func() error {
			_, err := w.src.Counters.Increment(baseEnclave, uuid)
			return err
		}); err != nil {
			return nil, err
		}
		if err := measureInto(baseSamples, "read", func() error {
			_, err := w.src.Counters.Read(baseEnclave, uuid)
			return err
		}); err != nil {
			return nil, err
		}
		if err := measureInto(baseSamples, "destroy", func() error {
			return w.src.Counters.Destroy(baseEnclave, uuid)
		}); err != nil {
			return nil, err
		}
	}

	rows := make([]Row, 0, len(ops))
	for _, op := range ops {
		row, err := compare("counter-"+op, libSamples[op], baseSamples[op], cfg.Confidence)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	cfg.record("fig3", "library", libSamples)
	cfg.record("fig3", "baseline", baseSamples)
	cfg.recordSimCounts(w.dc.Latency)
	return rows, nil
}

// measureInto appends one timed call to the named sample set.
func measureInto(samples map[string][]float64, name string, f func() error) error {
	start := time.Now()
	if err := f(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	samples[name] = append(samples[name], time.Since(start).Seconds())
	return nil
}
