package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pse"
)

// AblationResult compares the paper's two candidate designs for
// restoring a monotonic counter on the destination machine (§VI-B):
//
//   - Offset: create one fresh hardware counter and install the migrated
//     effective value as an offset — constant cost per counter.
//   - Replay: create a fresh hardware counter and increment it until it
//     reaches the migrated value — cost linear in the counter value,
//     each increment a rate-limited ME transaction. The paper rejects
//     this design for exactly that reason.
//
// Costs are reported in VIRTUAL time (the latency model's unscaled
// accounting), so the comparison is deterministic and independent of
// the -scale setting.
type AblationResult struct {
	CounterValue  uint32
	OffsetVirtual time.Duration
	ReplayVirtual time.Duration
}

// RestoreAblation measures both restore strategies for a counter whose
// migrated effective value is counterValue.
func RestoreAblation(counterValue uint32) (*AblationResult, error) {
	w, err := newWorld(0)
	if err != nil {
		return nil, err
	}
	lat := w.src.HW.Latency()
	enclave, err := w.src.HW.Load(appImage("ablation"))
	if err != nil {
		return nil, err
	}

	// Offset design: one hardware create; the offset installation is a
	// pure in-enclave assignment.
	lat.Reset()
	if _, _, err := w.src.Counters.Create(enclave); err != nil {
		return nil, fmt.Errorf("offset create: %w", err)
	}
	offset := lat.VirtualTotal()

	// Replay design: create, then counterValue rate-limited increments.
	// IncrementN batches the replay into one enclave transition while
	// still charging every firmware increment, so the measured virtual
	// cost keeps the paper's linear shape without counterValue ECALLs of
	// real benchmark time.
	lat.Reset()
	uuid, _, err := w.src.Counters.Create(enclave)
	if err != nil {
		return nil, fmt.Errorf("replay create: %w", err)
	}
	if counterValue > 0 {
		if _, err := w.src.Counters.IncrementN(enclave, uuid, int(counterValue)); err != nil {
			return nil, fmt.Errorf("replay increments: %w", err)
		}
	}
	replay := lat.VirtualTotal()

	return &AblationResult{
		CounterValue:  counterValue,
		OffsetVirtual: offset,
		ReplayVirtual: replay,
	}, nil
}

// MigrationRestoreVirtual measures the virtual hardware cost of a full
// migration restore with n active counters under the offset design, as
// deployed in the Migration Library (each counter: one create on the
// destination, one destroy on the source).
func MigrationRestoreVirtual(n int) (time.Duration, error) {
	w, err := newWorld(0)
	if err != nil {
		return 0, err
	}
	img := appImage("ablation-full")
	app, err := w.src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return 0, err
	}
	if n < 1 || n > pse.MaxCounters {
		return 0, fmt.Errorf("n out of range: %d", n)
	}
	for i := 0; i < n; i++ {
		if _, _, err := app.Library.CreateCounter(); err != nil {
			return 0, err
		}
	}
	lat := w.src.HW.Latency()
	lat.Reset()
	if err := app.Library.StartMigration(w.dst.MEAddress()); err != nil {
		return 0, err
	}
	if _, err := w.dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated); err != nil {
		return 0, err
	}
	return lat.VirtualTotal(), nil
}
