package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
)

// Drain100kResult is the outcome of the 100k-enclave drain scenario:
// one source machine evacuated across a 200 ms WAN link through the
// batched migration pipeline. Run at Scale 1 the Wall clock is the
// simulated time itself — the scenario's claim is that a hundred
// thousand enclaves cross a continent in minutes, not hours, because
// session resume, chunked streams, and compression amortize the
// per-migration exchanges that the classic path pays at full price.
type Drain100kResult struct {
	Apps       int           `json:"apps"`
	Completed  int           `json:"completed"`
	BatchSize  int           `json:"batch_size"`
	RTTMS      int           `json:"rtt_ms"`
	Scale      float64       `json:"scale"`
	Wall       time.Duration `json:"wall_ns"`
	Minutes    float64       `json:"minutes"`
	Throughput float64       `json:"throughput_migps"`
	WireMB     float64       `json:"wire_mb"`
}

func (r *Drain100kResult) String() string {
	return fmt.Sprintf("drain %d enclaves @%dms RTT batch=%d scale=%v: %.2f min (%.1f mig/s, %.1f MiB on the wire)",
		r.Apps, r.RTTMS, r.BatchSize, r.Scale, r.Minutes, r.Throughput, r.WireMB)
}

// Drain100k evacuates `apps` enclaves (default 100 000) from one
// machine over a 200 ms WAN link with the batched pipeline and reports
// how long the drain took. The world is provisioned at scale 0 — the
// launches are setup, not the measurement — and the configured scale is
// switched on only for the drain itself.
func Drain100k(cfg Config, apps int) (*Drain100kResult, error) {
	if apps <= 0 {
		apps = 100_000
	}
	const rttMS = 200
	batch := wanBatch(cfg)
	fed, dcA, dcB, _, err := wanWorld("drain100k", rttMS, 0, false)
	if err != nil {
		return nil, err
	}
	defer fed.Close()
	a1, _ := dcA.Machine("a1")
	for i := 0; i < apps; i++ {
		// Distinct images per enclave: a batch stores one pending envelope
		// per MRENCLAVE at the destination, and a real fleet drains many
		// applications, not one replicated binary.
		if _, err := a1.LaunchApp(appImage(fmt.Sprintf("d100k-%06d", i)), core.NewMemoryStorage(), core.InitNew); err != nil {
			return nil, err
		}
	}
	link, _ := fed.Link(dcA.Name(), dcB.Name())
	var remotes []fleet.RemoteTarget
	for _, id := range []string{"b1", "b2", "b3"} {
		m, _ := dcB.Machine(id)
		remotes = append(remotes, fleet.RemoteTarget{Machine: m, Link: link.Name()})
	}
	dcA.Latency.SetScale(cfg.Scale)
	dcB.Latency.SetScale(cfg.Scale)
	link.Latency().SetScale(cfg.Scale)

	plan := fleet.Plan{Intent: fleet.IntentEvacuate, Sources: []string{"a1"}, RemoteTargets: remotes}
	// Eight batched sessions in flight on the link: wider than the sweep's
	// cap of 4 because a machine-scale evacuation is exactly when an
	// operator would provision extra WAN concurrency.
	orch := fleet.New(dcA, fleet.Config{
		Workers:   32,
		BatchSize: batch,
		LinkCap:   map[string]int{link.Name(): 8},
	})
	_, wire0 := link.Stats()
	report, err := orch.Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	if report.Completed != apps {
		return nil, fmt.Errorf("drain100k completed %d of %d (failed %d)", report.Completed, apps, report.Failed)
	}
	_, wire1 := link.Stats()
	return &Drain100kResult{
		Apps:       apps,
		Completed:  report.Completed,
		BatchSize:  batch,
		RTTMS:      rttMS,
		Scale:      cfg.Scale,
		Wall:       report.Wall,
		Minutes:    report.Wall.Minutes(),
		Throughput: report.Throughput,
		WireMB:     float64(wire1-wire0) / (1 << 20),
	}, nil
}
