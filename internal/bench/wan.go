package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/transport"
)

// WANRTTsMS are the link round-trip times the sweep measures at, in
// milliseconds: metro, regional, continental, cross-continental, and
// intercontinental distances (the repo's Fig. 4-style x-axis for the
// federation).
var WANRTTsMS = []int{1, 5, 25, 50, 100, 200}

// WANSweep measures the federation across the RTT axis, the ROADMAP's
// cross-datacenter item: cross-DC drain throughput (migrations/s of
// evacuating a machine over the WAN link, fleet orchestrator with
// remote targets) and cross-DC kill-to-recovered latency (mirrored
// escrow + origin-binding arbitration + partner-side resurrection),
// each at every RTT point. Drain rows report migrations per second;
// recovery rows report seconds per recovery, like RecoverySweep.
func WANSweep(cfg Config) ([]Row, error) {
	var rows []Row
	for _, rtt := range WANRTTsMS {
		drain, err := wanDrainSamples(cfg, rtt)
		if err != nil {
			return nil, fmt.Errorf("wan drain %dms: %w", rtt, err)
		}
		row, err := compare(fmt.Sprintf("wan-drain-%dms-migps", rtt), drain, nil, cfg.Confidence)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, rtt := range WANRTTsMS {
		rec, err := wanRecoverySamples(cfg, rtt)
		if err != nil {
			return nil, fmt.Errorf("wan recover %dms: %w", rtt, err)
		}
		row, err := compare(fmt.Sprintf("wan-recover-%dms", rtt), rec, nil, cfg.Confidence)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// wanWorld builds a two-site federation: dc-a/dc-b with three machines
// each, optionally one f=1 rack per site with an escrow mirror a->b.
func wanWorld(name string, rttMS int, scale float64, racks bool) (fed *federation.Federation, dcA, dcB *cloud.DataCenter, mirror *federation.Mirror, err error) {
	fed = federation.New(name)
	dcs := make([]*cloud.DataCenter, 0, 2)
	for _, dcName := range []string{name + "-a", name + "-b"} {
		dc, err := cloud.NewDataCenter(dcName, sim.NewLatency(scale))
		if err != nil {
			return nil, nil, nil, nil, err
		}
		prefix := dcName[len(dcName)-1:]
		ids := make([]string, 0, 3)
		for i := 1; i <= 3; i++ {
			id := fmt.Sprintf("%s%d", prefix, i)
			if _, err := dc.AddMachine(id); err != nil {
				return nil, nil, nil, nil, err
			}
			ids = append(ids, id)
		}
		if racks {
			if _, err := dc.NewReplicaGroup("rack-"+prefix, 1, ids...); err != nil {
				return nil, nil, nil, nil, err
			}
		}
		if err := fed.Admit(dc); err != nil {
			return nil, nil, nil, nil, err
		}
		dcs = append(dcs, dc)
	}
	cfg := transport.WANConfig{
		RTT:       time.Duration(rttMS) * time.Millisecond,
		Bandwidth: 1 << 30, // 1 GiB/s
		Scale:     scale,
	}
	if _, err := fed.Connect(dcs[0].Name(), dcs[1].Name(), cfg); err != nil {
		return nil, nil, nil, nil, err
	}
	if racks {
		m, err := fed.PartnerGroups(dcs[0].Name(), "rack-a", dcs[1].Name(), "rack-b")
		if err != nil {
			return nil, nil, nil, nil, err
		}
		mirror = m
	}
	return fed, dcs[0], dcs[1], mirror, nil
}

// wanBatch resolves the orchestrator batch width the drain rows run at:
// Config.BatchSize, defaulting to 64 (the streamed pipeline). 1 forces
// the classic one-migration-per-session path, preserved for the CI smoke
// that asserts batching actually pays for itself.
func wanBatch(cfg Config) int {
	if cfg.BatchSize <= 0 {
		return 64
	}
	return cfg.BatchSize
}

// wanDrainSamples runs R cross-DC evacuations of K enclaves each and
// reports per-run throughput (migrations per second of wall time).
// Batched runs drain a larger fleet: the pipeline's whole point is
// amortizing the session handshake and the per-exchange RTTs across
// many members, so it needs enough members per (source, dest) stream
// for the amortization to show.
func wanDrainSamples(cfg Config, rttMS int) ([]float64, error) {
	batch := wanBatch(cfg)
	apps, workers := 12, 8
	if batch > 1 {
		apps, workers = 96, 32
	}
	runs := cfg.N / 25
	if runs < 2 {
		runs = 2
	}
	if runs > 8 {
		runs = 8
	}
	out := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		fed, dcA, dcB, _, err := wanWorld(fmt.Sprintf("wandrain-%d-%d", rttMS, r), rttMS, cfg.Scale, false)
		if err != nil {
			return nil, err
		}
		a1, _ := dcA.Machine("a1")
		for i := 0; i < apps; i++ {
			app, err := a1.LaunchApp(appImage(fmt.Sprintf("wan-%02d", i)), core.NewMemoryStorage(), core.InitNew)
			if err != nil {
				return nil, err
			}
			if _, _, err := app.Library.CreateCounter(); err != nil {
				return nil, err
			}
		}
		link, _ := fed.Link(dcA.Name(), dcB.Name())
		var remotes []fleet.RemoteTarget
		for _, id := range []string{"b1", "b2", "b3"} {
			m, _ := dcB.Machine(id)
			remotes = append(remotes, fleet.RemoteTarget{Machine: m, Link: link.Name()})
		}
		plan := fleet.Plan{Intent: fleet.IntentEvacuate, Sources: []string{"a1"}, RemoteTargets: remotes}
		// Four concurrent deliveries per link: the per-link cap a real
		// constrained WAN would demand, and the knob that makes the
		// throughput-vs-RTT tradeoff visible. A batched session counts as
		// one delivery against the cap — amortization inside the slot is
		// exactly the win being measured.
		orch := fleet.New(dcA, fleet.Config{Workers: workers, BatchSize: batch, LinkCap: map[string]int{link.Name(): 4}})
		report, err := orch.Execute(context.Background(), plan)
		if err != nil {
			return nil, err
		}
		if report.Completed != apps {
			return nil, fmt.Errorf("drain completed %d of %d", report.Completed, apps)
		}
		out = append(out, report.Throughput)
		fed.Close()
	}
	return out, nil
}

// wanRecoverySamples times cross-DC kill→recovered per round: launch in
// dc-a, mirror, kill the host, resurrect on the partner rack in dc-b.
// Each round consumes counter budget in both racks (binding + shadow
// sets outlive the round), so worlds are recycled every chunk.
const wanRecoverChunk = 24

func wanRecoverySamples(cfg Config, rttMS int) ([]float64, error) {
	n := cfg.N
	if n > 40 {
		n = 40 // recovery rounds are expensive; the curve needs shape, not volume
	}
	if n < 4 {
		n = 4
	}
	out := make([]float64, 0, n)
	chunk := 0
	for len(out) < n {
		rounds := n - len(out)
		if rounds > wanRecoverChunk {
			rounds = wanRecoverChunk
		}
		samples, err := wanRecoveryChunk(cfg, rttMS, chunk, rounds, len(out) == 0)
		if err != nil {
			return nil, err
		}
		out = append(out, samples...)
		chunk++
	}
	return out, nil
}

func wanRecoveryChunk(cfg Config, rttMS, chunk, rounds int, warmup bool) ([]float64, error) {
	fed, dcA, dcB, mirror, err := wanWorld(fmt.Sprintf("wanrec-%d-%d", rttMS, chunk), rttMS, cfg.Scale, true)
	if err != nil {
		return nil, err
	}
	defer fed.Close()
	a1, _ := dcA.Machine("a1")
	_ = dcB
	out := make([]float64, 0, rounds)
	start := 0
	if warmup {
		start = -1
	}
	for i := start; i < rounds; i++ {
		app, err := a1.LaunchApp(appImage(fmt.Sprintf("wanrec-%d-%d-%d", rttMS, chunk, i)), core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			return nil, err
		}
		ctr, _, err := app.Library.CreateCounter()
		if err != nil {
			return nil, err
		}
		if _, err := app.Library.IncrementCounter(ctr); err != nil {
			return nil, err
		}
		if err := mirror.Flush(); err != nil {
			return nil, err
		}
		a1.Kill()
		t0 := time.Now()
		recovered, err := fed.RecoverMachine(dcA.Name(), "a1", dcB.Name(), "b1", false)
		dt := time.Since(t0).Seconds()
		if err != nil {
			return nil, err
		}
		if len(recovered) != 1 {
			return nil, fmt.Errorf("recovered %d apps, want 1", len(recovered))
		}
		if i >= 0 {
			out = append(out, dt)
		}
		recovered[0].Terminate()
		if err := a1.Restart(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
