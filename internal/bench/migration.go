package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vm"
)

// MigrationResult is the §VII-B migration-overhead measurement: the
// enclave-migration time on top of VM migration (paper: 0.47 ± 0.035 s
// over 1000 migrations), with the VM memory-copy time for context.
type MigrationResult struct {
	// Enclave summarizes the enclave-migration overhead per migration:
	// local attestation + transfer through both MEs + restore + DONE.
	Enclave stats.Summary
	// VMCopyVirtual is the virtual (model) time to live-migrate the
	// reference VM's memory, the baseline the overhead is compared to.
	VMCopyVirtual time.Duration
	// VMMemoryBytes is the reference VM memory size.
	VMMemoryBytes int
}

// MigrationOverhead measures cfg.N complete enclave migrations between
// two machines: each iteration creates state on the source, migrates,
// and restores on the destination, timing everything the migration
// framework adds on top of plain VM migration.
func MigrationOverhead(cfg Config) (*MigrationResult, error) {
	w, err := newWorld(cfg.Scale)
	if err != nil {
		return nil, err
	}
	img := appImage("migrate-bench")

	samples := make([]float64, 0, cfg.N)
	src, dst := w.src, w.dst
	for i := 0; i < cfg.N; i++ {
		app, err := src.LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
		if err != nil {
			return nil, fmt.Errorf("iteration %d launch: %w", i, err)
		}
		if _, _, err := app.Library.CreateCounter(); err != nil {
			return nil, err
		}
		if _, err := app.Library.IncrementCounter(0); err != nil {
			return nil, err
		}

		start := time.Now()
		if err := app.Library.StartMigration(dst.MEAddress()); err != nil {
			return nil, fmt.Errorf("iteration %d migrate: %w", i, err)
		}
		app.Terminate()
		dstApp, err := dst.LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
		if err != nil {
			return nil, fmt.Errorf("iteration %d restore: %w", i, err)
		}
		samples = append(samples, time.Since(start).Seconds())

		// Release the restored hardware counter so arbitrarily large N
		// never exhausts the destination's 256-counter budget.
		if err := dstApp.Library.DestroyCounter(0); err != nil {
			return nil, fmt.Errorf("iteration %d cleanup: %w", i, err)
		}
		dstApp.Terminate()
		// Swap roles so the next iteration migrates back (and the
		// destination-side state never accumulates).
		src, dst = dst, src
	}
	summary, err := stats.Summarize(samples, cfg.Confidence)
	if err != nil {
		return nil, err
	}
	cfg.record("migration", "overhead", map[string][]float64{"end-to-end": samples})
	cfg.recordSimCounts(w.dc.Latency)

	// Reference VM migration: a 1 GiB guest.
	const vmBytes = 1 << 30
	hvA := vm.NewHypervisor(w.src.HW)
	hvB := vm.NewHypervisor(w.dst.HW)
	guest, err := hvA.CreateVM("reference", vmBytes)
	if err != nil {
		return nil, err
	}
	_, copyTime, err := vm.LiveMigrate(guest, hvB)
	if err != nil {
		return nil, err
	}
	return &MigrationResult{
		Enclave:       summary,
		VMCopyVirtual: copyTime,
		VMMemoryBytes: vmBytes,
	}, nil
}
