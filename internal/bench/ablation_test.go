package bench

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestRestoreAblationConstantVsLinear(t *testing.T) {
	small, err := RestoreAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RestoreAblation(500)
	if err != nil {
		t.Fatal(err)
	}
	// The offset design is constant regardless of the counter value.
	if small.OffsetVirtual != large.OffsetVirtual {
		t.Fatalf("offset cost varies with value: %v vs %v", small.OffsetVirtual, large.OffsetVirtual)
	}
	// The replay design is linear in the counter value.
	if large.ReplayVirtual <= small.ReplayVirtual {
		t.Fatal("replay cost not increasing with counter value")
	}
	// Expected cost: one create plus 500 increments (each increment also
	// pays an ECALL boundary crossing, so allow a small tolerance).
	wantLarge := small.OffsetVirtual + 500*sim.PaperCosts()[sim.OpCounterIncrement]
	if diff := large.ReplayVirtual - wantLarge; diff < 0 || diff > 10*time.Millisecond {
		t.Fatalf("replay(500) = %v, want ~%v", large.ReplayVirtual, wantLarge)
	}
	// The paper's point: for any realistic counter value the offset
	// design wins by orders of magnitude.
	if large.ReplayVirtual < 100*large.OffsetVirtual {
		t.Fatalf("offset advantage too small: %v vs %v", large.OffsetVirtual, large.ReplayVirtual)
	}
}

func TestMigrationRestoreVirtualScalesWithCounters(t *testing.T) {
	one, err := MigrationRestoreVirtual(1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := MigrationRestoreVirtual(8)
	if err != nil {
		t.Fatal(err)
	}
	if eight <= one {
		t.Fatalf("8-counter migration (%v) not costlier than 1-counter (%v)", eight, one)
	}
	// Cost is linear in the number of counters, never in their values:
	// per counter one read+destroy on the source and one create on the
	// destination.
	perCounter := sim.PaperCosts()[sim.OpCounterRead] +
		sim.PaperCosts()[sim.OpCounterDestroy] + sim.PaperCosts()[sim.OpCounterCreate]
	want := 7 * perCounter
	if diff := eight - one - want; diff < 0 || diff > 10*time.Millisecond {
		t.Fatalf("marginal counter cost = %v, want ~%v", eight-one, want)
	}
	if _, err := MigrationRestoreVirtual(0); err == nil {
		t.Fatal("n=0 accepted")
	}
}
