package bench

import (
	"fmt"

	"repro/internal/core"
)

// ReplicationSweep measures the increment-latency cost of replicating
// the Platform Services counter facility (ROADMAP "Counter-service
// replication"): the same Migration Library increment is driven against
// the plain per-machine service (the f=0 baseline) and against
// quorum-replicated groups with f=1 (3 replicas) and f=2 (5 replicas).
// Each replicated increment fans out to all 2f+1 replicas in parallel
// and commits on a majority, so the added cost per increment is one
// network round trip plus the replica-side apply, paid once regardless
// of f — while tolerating f machine failures.
func ReplicationSweep(cfg Config) ([]Row, error) {
	base, err := replIncrementSamples(cfg, 0, false)
	if err != nil {
		return nil, fmt.Errorf("f=0 baseline: %w", err)
	}
	baseRow, err := compare("repl-increment-f0-local", base, nil, cfg.Confidence)
	if err != nil {
		return nil, err
	}
	rows := []Row{baseRow}
	for f := 1; f <= 2; f++ {
		lib, err := replIncrementSamples(cfg, f, true)
		if err != nil {
			return nil, fmt.Errorf("f=%d: %w", f, err)
		}
		row, err := compare(fmt.Sprintf("repl-increment-f%d-%drep", f, 2*f+1), lib, base, cfg.Confidence)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// replIncrementSamples measures N library increments on a machine whose
// counter facility is either the plain local service (replicated=false)
// or a 2f+1 replica group that includes the app's machine.
func replIncrementSamples(cfg Config, f int, replicated bool) ([]float64, error) {
	dc, ids, err := rackDC(fmt.Sprintf("repl-bench-f%d", f), f, replicated, cfg.Scale)
	if err != nil {
		return nil, err
	}
	host, _ := dc.Machine(ids[0])
	app, err := host.LaunchApp(appImage(fmt.Sprintf("repl-f%d", f)), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return nil, err
	}
	ctr, _, err := app.Library.CreateCounter()
	if err != nil {
		return nil, err
	}
	return sample(cfg.N, func() error {
		_, err := app.Library.IncrementCounter(ctr)
		return err
	})
}
