package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seal"
	"repro/internal/sgx"
)

// Payload sizes of the paper's Figure 4 sealing experiment.
const (
	SmallPayload = 100        // "100" in Fig. 4: 100 bytes
	LargePayload = 100 * 1024 // "100kB"
)

// Fig4 measures library initialization (new and restore) and the sealing
// and unsealing operations at 100 B and 100 kB, Migration Library vs.
// native SGX sealing (paper Figure 4).
func Fig4(cfg Config) ([]Row, error) {
	w, err := newWorld(cfg.Scale)
	if err != nil {
		return nil, err
	}

	var rows []Row
	libSamples := make(map[string][]float64)
	baseSamples := make(map[string][]float64)

	// --- Initialization: no baseline exists (the paper notes the same).
	initNew, err := sample(cfg.N, func() error {
		e, err := w.src.HW.Load(appImage("fig4-init"))
		if err != nil {
			return err
		}
		lib := core.NewLibrary(e, w.src.Counters, core.NewMemoryStorage())
		if err := lib.Init(core.InitNew, w.src.ME); err != nil {
			return err
		}
		w.src.HW.Destroy(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	libSamples["init-new"] = initNew
	row, err := compare("init-new", initNew, nil, cfg.Confidence)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// Restore: measure Init(InitRestore) with a persisted blob.
	restoreStorage := core.NewMemoryStorage()
	{
		e, err := w.src.HW.Load(appImage("fig4-restore"))
		if err != nil {
			return nil, err
		}
		lib := core.NewLibrary(e, w.src.Counters, restoreStorage)
		if err := lib.Init(core.InitNew, w.src.ME); err != nil {
			return nil, err
		}
		w.src.HW.Destroy(e)
	}
	initRestore, err := sample(cfg.N, func() error {
		e, err := w.src.HW.Load(appImage("fig4-restore"))
		if err != nil {
			return err
		}
		lib := core.NewLibrary(e, w.src.Counters, restoreStorage)
		if err := lib.Init(core.InitRestore, w.src.ME); err != nil {
			return err
		}
		w.src.HW.Destroy(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	libSamples["init-restore"] = initRestore
	row, err = compare("init-restore", initRestore, nil, cfg.Confidence)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// --- Sealing: library (MSK) vs. native SGX sealing.
	app, err := w.src.LaunchApp(appImage("fig4-seal"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		return nil, err
	}
	baseEnclave, err := w.src.HW.Load(appImage("fig4-seal-base"))
	if err != nil {
		return nil, err
	}

	for _, size := range []struct {
		label string
		bytes int
	}{{"100B", SmallPayload}, {"100kB", LargePayload}} {
		payload := make([]byte, size.bytes)
		for i := range payload {
			payload[i] = byte(i)
		}

		libSeal, err := sample(cfg.N, func() error {
			_, err := app.Library.SealMigratable(nil, payload)
			return err
		})
		if err != nil {
			return nil, err
		}
		baseSeal, err := sample(cfg.N, func() error {
			_, err := seal.Seal(baseEnclave, sgx.PolicyMRENCLAVE, nil, payload)
			return err
		})
		if err != nil {
			return nil, err
		}
		libSamples["seal-"+size.label], baseSamples["seal-"+size.label] = libSeal, baseSeal
		row, err := compare("seal-"+size.label, libSeal, baseSeal, cfg.Confidence)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)

		libBlob, err := app.Library.SealMigratable(nil, payload)
		if err != nil {
			return nil, err
		}
		baseBlob, err := seal.Seal(baseEnclave, sgx.PolicyMRENCLAVE, nil, payload)
		if err != nil {
			return nil, err
		}
		libUnseal, err := sample(cfg.N, func() error {
			_, _, err := app.Library.UnsealMigratable(libBlob)
			return err
		})
		if err != nil {
			return nil, err
		}
		baseUnseal, err := sample(cfg.N, func() error {
			_, _, err := seal.Unseal(baseEnclave, baseBlob)
			return err
		})
		if err != nil {
			return nil, err
		}
		libSamples["unseal-"+size.label], baseSamples["unseal-"+size.label] = libUnseal, baseUnseal
		row, err = compare("unseal-"+size.label, libUnseal, baseUnseal, cfg.Confidence)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	cfg.record("fig4", "library", libSamples)
	cfg.record("fig4", "baseline", baseSamples)
	cfg.recordSimCounts(w.dc.Latency)
	return rows, nil
}

// TableSizes reports the wire sizes of the paper's Table I (migration
// data) and Table II (library internal state) structures as implemented.
func TableSizes() (migrationDataBytes, libraryBlobBytes int, err error) {
	var d core.MigrationData
	raw, err := d.Encode()
	if err != nil {
		return 0, 0, fmt.Errorf("encode migration data: %w", err)
	}
	migrationDataBytes = len(raw)

	// The sealed library blob: measure through a real library instance.
	w, err := newWorld(0)
	if err != nil {
		return 0, 0, err
	}
	storage := core.NewMemoryStorage()
	if _, err := w.src.LaunchApp(appImage("table2"), storage, core.InitNew); err != nil {
		return 0, 0, err
	}
	blob, err := storage.Load()
	if err != nil {
		return 0, 0, err
	}
	return migrationDataBytes, len(blob), nil
}
