package bench

import (
	"testing"
)

// smallConfig keeps unit-test runtime negligible (instant latency model).
func smallConfig() Config {
	return Config{N: 25, Scale: 0, Confidence: 0.99}
}

func TestFig3Runner(t *testing.T) {
	rows, err := Fig3(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantNames := []string{"counter-create", "counter-increment", "counter-read", "counter-destroy"}
	for i, row := range rows {
		if row.Name != wantNames[i] {
			t.Fatalf("row %d = %s", i, row.Name)
		}
		if !row.HasBaseline {
			t.Fatalf("%s missing baseline", row.Name)
		}
		if row.Library.N != 25 || row.Baseline.N != 25 {
			t.Fatalf("%s sample sizes %d/%d", row.Name, row.Library.N, row.Baseline.N)
		}
		if row.Library.Mean <= 0 || row.Baseline.Mean <= 0 {
			t.Fatalf("%s non-positive means", row.Name)
		}
		if row.String() == "" {
			t.Fatal("empty row string")
		}
	}
}

func TestFig4Runner(t *testing.T) {
	rows, err := Fig4(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, name := range []string{"init-new", "init-restore"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if r.HasBaseline {
			t.Fatalf("%s should have no baseline", name)
		}
	}
	for _, name := range []string{"seal-100B", "seal-100kB", "unseal-100B", "unseal-100kB"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if !r.HasBaseline {
			t.Fatalf("%s missing baseline", name)
		}
	}
	// Fig. 4 shape: large payloads cost more than small ones.
	if byName["seal-100kB"].Library.Mean <= byName["seal-100B"].Library.Mean {
		t.Fatal("100kB seal not slower than 100B seal")
	}
}

func TestMigrationOverheadRunner(t *testing.T) {
	cfg := smallConfig()
	cfg.N = 10
	res, err := MigrationOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Enclave.N != 10 {
		t.Fatalf("samples = %d", res.Enclave.N)
	}
	if res.Enclave.Mean <= 0 {
		t.Fatal("non-positive migration time")
	}
	if res.VMCopyVirtual <= 0 {
		t.Fatal("no VM copy time")
	}
	if res.VMMemoryBytes != 1<<30 {
		t.Fatalf("vm size = %d", res.VMMemoryBytes)
	}
}

func TestTableSizes(t *testing.T) {
	mig, blob, err := TableSizes()
	if err != nil {
		t.Fatal(err)
	}
	// Table I carries 256 bools + 256 uint32 + 16-byte key: the JSON
	// encoding is over a kilobyte but bounded.
	if mig < 512 || mig > 64*1024 {
		t.Fatalf("migration data size = %d", mig)
	}
	if blob < 512 || blob > 128*1024 {
		t.Fatalf("library blob size = %d", blob)
	}
}

// The Fig. 4 headline claim: migratable sealing is not slower than
// native sealing (it skips EGETKEY). With the instant latency model this
// is noisy, so assert only the weak direction on a decent sample.
func TestMigratableSealNotSlowerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-shape test")
	}
	cfg := Config{N: 300, Scale: 0, Confidence: 0.99}
	rows, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Name == "seal-100kB" {
			// Allow generous noise: the library must not be more than
			// 50% slower than native sealing on large payloads.
			if r.OverheadPct > 50 {
				t.Fatalf("migratable sealing much slower than native: %+.1f%%", r.OverheadPct)
			}
		}
	}
}

func TestReplicationSweepRunner(t *testing.T) {
	rows, err := ReplicationSweep(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "repl-increment-f0-local" || rows[0].HasBaseline {
		t.Fatalf("baseline row = %+v", rows[0])
	}
	for _, row := range rows[1:] {
		if !row.HasBaseline {
			t.Fatalf("%s missing f=0 baseline", row.Name)
		}
		if row.Library.N != 25 || row.Library.Mean <= 0 {
			t.Fatalf("%s bad samples", row.Name)
		}
	}
}
