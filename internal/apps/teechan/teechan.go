// Package teechan implements a Teechan-style payment channel (Lind et
// al. [3], one of the paper's two motivating applications): two enclaves
// hold a full-duplex off-chain channel and exchange funds with single
// messages. Each endpoint persists its balance state "encrypted under a
// key and stored with a non-replayable version number from the hardware
// monotonic counter" — realized here with the Migration Library's
// migratable sealing and migratable counters, which is what makes the
// channel SAFELY migratable between machines (paper §III-B shows how a
// naive migration mechanism forks it).
package teechan

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Channel errors.
var (
	ErrInsufficientFunds = errors.New("teechan: insufficient channel balance")
	ErrStaleState        = errors.New("teechan: persisted state is stale (version mismatch)")
	ErrBadPayment        = errors.New("teechan: invalid payment message")
	ErrOutOfOrder        = errors.New("teechan: payment sequence out of order")
	ErrClosed            = errors.New("teechan: channel closed")
)

// state is the endpoint's channel view, sealed on persist.
type state struct {
	Name         string `json:"name"`
	Peer         string `json:"peer"`
	MyBalance    int64  `json:"myBalance"`
	TheirBalance int64  `json:"theirBalance"`
	NextSendSeq  uint64 `json:"nextSendSeq"`
	NextRecvSeq  uint64 `json:"nextRecvSeq"`
	Closed       bool   `json:"closed"`
	Version      uint32 `json:"version"`
}

// Payment is the single channel message transferring funds.
type Payment struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Amount int64  `json:"amount"`
	Seq    uint64 `json:"seq"`
}

// Endpoint is one side of a payment channel, living inside a migratable
// enclave. It is safe for concurrent use.
type Endpoint struct {
	lib *core.Library

	mu        sync.Mutex
	st        state
	counterID int
}

// stateAAD labels sealed channel state.
var stateAAD = []byte("teechan-channel-state")

// Open creates a channel endpoint funded with myDeposit on our side and
// theirDeposit on the peer's side. It allocates the version counter.
func Open(lib *core.Library, name, peer string, myDeposit, theirDeposit int64) (*Endpoint, error) {
	if myDeposit < 0 || theirDeposit < 0 {
		return nil, fmt.Errorf("%w: negative deposit", ErrBadPayment)
	}
	ctr, _, err := lib.CreateCounter()
	if err != nil {
		return nil, fmt.Errorf("allocate version counter: %w", err)
	}
	return &Endpoint{
		lib: lib,
		st: state{
			Name:         name,
			Peer:         peer,
			MyBalance:    myDeposit,
			TheirBalance: theirDeposit,
		},
		counterID: ctr,
	}, nil
}

// Name returns the endpoint name.
func (e *Endpoint) Name() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st.Name
}

// Balances returns (mine, theirs).
func (e *Endpoint) Balances() (int64, int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st.MyBalance, e.st.TheirBalance
}

// Pay produces a payment message moving amount to the peer.
func (e *Endpoint) Pay(amount int64) (*Payment, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st.Closed {
		return nil, ErrClosed
	}
	if amount <= 0 {
		return nil, fmt.Errorf("%w: non-positive amount", ErrBadPayment)
	}
	if amount > e.st.MyBalance {
		return nil, ErrInsufficientFunds
	}
	p := &Payment{From: e.st.Name, To: e.st.Peer, Amount: amount, Seq: e.st.NextSendSeq}
	e.st.MyBalance -= amount
	e.st.TheirBalance += amount
	e.st.NextSendSeq++
	return p, nil
}

// Receive applies an incoming payment from the peer.
func (e *Endpoint) Receive(p *Payment) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st.Closed {
		return ErrClosed
	}
	if p == nil || p.From != e.st.Peer || p.To != e.st.Name || p.Amount <= 0 {
		return ErrBadPayment
	}
	if p.Seq != e.st.NextRecvSeq {
		return fmt.Errorf("%w: got %d want %d", ErrOutOfOrder, p.Seq, e.st.NextRecvSeq)
	}
	e.st.MyBalance += p.Amount
	e.st.TheirBalance -= p.Amount
	e.st.NextRecvSeq++
	return nil
}

// Close finalizes the channel, returning the settlement balances.
func (e *Endpoint) Close() (mine, theirs int64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st.Closed {
		return 0, 0, ErrClosed
	}
	e.st.Closed = true
	return e.st.MyBalance, e.st.TheirBalance, nil
}

// Persist increments the version counter and seals the channel state
// with the migratable sealing key, exactly the Teechan persistence
// pattern the paper quotes. The returned blob goes to untrusted storage.
func (e *Endpoint) Persist() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, err := e.lib.IncrementCounter(e.counterID)
	if err != nil {
		return nil, fmt.Errorf("advance version counter: %w", err)
	}
	e.st.Version = v
	raw, err := json.Marshal(&e.st)
	if err != nil {
		return nil, fmt.Errorf("encode channel state: %w", err)
	}
	blob, err := e.lib.SealMigratable(stateAAD, raw)
	if err != nil {
		return nil, fmt.Errorf("seal channel state: %w", err)
	}
	return blob, nil
}

// Restore reloads a persisted channel endpoint, accepting the blob only
// if its version number matches the current effective counter value —
// the roll-back/fork check that the migration framework keeps meaningful
// across machines.
func Restore(lib *core.Library, counterID int, blob []byte) (*Endpoint, error) {
	raw, aad, err := lib.UnsealMigratable(blob)
	if err != nil {
		return nil, fmt.Errorf("unseal channel state: %w", err)
	}
	if string(aad) != string(stateAAD) {
		return nil, ErrBadPayment
	}
	var st state
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("decode channel state: %w", err)
	}
	current, err := lib.ReadCounter(counterID)
	if err != nil {
		return nil, fmt.Errorf("read version counter: %w", err)
	}
	if st.Version != current {
		return nil, fmt.Errorf("%w: blob v=%d counter=%d", ErrStaleState, st.Version, current)
	}
	return &Endpoint{lib: lib, st: st, counterID: counterID}, nil
}

// CounterID exposes the endpoint's version counter handle (stored by the
// application alongside the sealed blob).
func (e *Endpoint) CounterID() int { return e.counterID }
