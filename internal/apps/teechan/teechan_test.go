package teechan

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
)

type world struct {
	dc       *cloud.DataCenter
	machines []*cloud.Machine
}

func newWorld(t *testing.T, n int) *world {
	t.Helper()
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	w := &world{dc: dc}
	for i := 0; i < n; i++ {
		m, err := dc.AddMachine(string(rune('A' + i)))
		if err != nil {
			t.Fatal(err)
		}
		w.machines = append(w.machines, m)
	}
	return w
}

func appImage(t *testing.T, name string) *sgx.Image {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: pub}
}

func launch(t *testing.T, m *cloud.Machine, name string) *cloud.App {
	t.Helper()
	app, err := m.LaunchApp(appImage(t, name), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestChannelPayments(t *testing.T) {
	w := newWorld(t, 1)
	alice := launch(t, w.machines[0], "alice")
	bob := launch(t, w.machines[0], "bob")

	chA, err := Open(alice.Library, "alice", "bob", 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	chB, err := Open(bob.Library, "bob", "alice", 50, 100)
	if err != nil {
		t.Fatal(err)
	}

	// Alice pays Bob 30; Bob pays back 10.
	p1, err := chA.Pay(30)
	if err != nil {
		t.Fatal(err)
	}
	if err := chB.Receive(p1); err != nil {
		t.Fatal(err)
	}
	p2, err := chB.Pay(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := chA.Receive(p2); err != nil {
		t.Fatal(err)
	}
	aMine, aTheirs := chA.Balances()
	bMine, bTheirs := chB.Balances()
	if aMine != 80 || aTheirs != 70 {
		t.Fatalf("alice view: %d/%d", aMine, aTheirs)
	}
	if bMine != 70 || bTheirs != 80 {
		t.Fatalf("bob view: %d/%d", bMine, bTheirs)
	}
	// Conservation of funds.
	if aMine+aTheirs != 150 || bMine+bTheirs != 150 {
		t.Fatal("funds not conserved")
	}
}

func TestChannelValidation(t *testing.T) {
	w := newWorld(t, 1)
	alice := launch(t, w.machines[0], "alice")
	ch, err := Open(alice.Library, "alice", "bob", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Pay(0); !errors.Is(err, ErrBadPayment) {
		t.Fatalf("zero pay: %v", err)
	}
	if _, err := ch.Pay(11); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("overdraft: %v", err)
	}
	if err := ch.Receive(&Payment{From: "mallory", To: "alice", Amount: 5}); !errors.Is(err, ErrBadPayment) {
		t.Fatalf("forged sender: %v", err)
	}
	if err := ch.Receive(&Payment{From: "bob", To: "alice", Amount: 5, Seq: 7}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("gap seq: %v", err)
	}
	if _, err := Open(alice.Library, "a", "b", -1, 0); !errors.Is(err, ErrBadPayment) {
		t.Fatalf("negative deposit: %v", err)
	}
}

func TestChannelReplayedPaymentRejected(t *testing.T) {
	w := newWorld(t, 1)
	alice := launch(t, w.machines[0], "alice")
	bob := launch(t, w.machines[0], "bob")
	chA, _ := Open(alice.Library, "alice", "bob", 100, 0)
	chB, _ := Open(bob.Library, "bob", "alice", 0, 100)
	p, _ := chA.Pay(10)
	if err := chB.Receive(p); err != nil {
		t.Fatal(err)
	}
	if err := chB.Receive(p); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("replayed payment: %v", err)
	}
}

func TestChannelPersistRestore(t *testing.T) {
	w := newWorld(t, 1)
	alice := launch(t, w.machines[0], "alice")
	ch, _ := Open(alice.Library, "alice", "bob", 100, 50)
	if _, err := ch.Pay(25); err != nil {
		t.Fatal(err)
	}
	blob, err := ch.Persist()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Restore(alice.Library, ch.CounterID(), blob)
	if err != nil {
		t.Fatal(err)
	}
	mine, theirs := back.Balances()
	if mine != 75 || theirs != 75 {
		t.Fatalf("restored balances: %d/%d", mine, theirs)
	}
}

func TestChannelStaleBlobRejected(t *testing.T) {
	w := newWorld(t, 1)
	alice := launch(t, w.machines[0], "alice")
	ch, _ := Open(alice.Library, "alice", "bob", 100, 0)
	old, err := ch.Persist() // v=1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Pay(60); err != nil {
		t.Fatal(err)
	}
	fresh, err := ch.Persist() // v=2
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(alice.Library, ch.CounterID(), old); !errors.Is(err, ErrStaleState) {
		t.Fatalf("stale blob accepted: %v", err)
	}
	if _, err := Restore(alice.Library, ch.CounterID(), fresh); err != nil {
		t.Fatalf("fresh blob rejected: %v", err)
	}
}

// TestChannelSurvivesMigration is the paper's headline scenario: a
// Teechan endpoint migrates with its persistent state intact, and stale
// pre-migration state remains unusable everywhere.
func TestChannelSurvivesMigration(t *testing.T) {
	w := newWorld(t, 2)
	img := appImage(t, "teechan-node")
	srcApp, err := w.machines[0].LaunchApp(img, core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Open(srcApp.Library, "alice", "bob", 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Pay(40); err != nil {
		t.Fatal(err)
	}
	oldBlob, err := ch.Persist() // v=1, balance 60 — adversary snapshots this
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Pay(10); err != nil {
		t.Fatal(err)
	}
	blob, err := ch.Persist() // v=2, balance 50
	if err != nil {
		t.Fatal(err)
	}

	// Migrate the enclave.
	if err := srcApp.Library.StartMigration(w.machines[1].MEAddress()); err != nil {
		t.Fatal(err)
	}
	srcApp.Terminate()
	dstApp, err := w.machines[1].LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatal(err)
	}

	// Latest state restores on the destination.
	restored, err := Restore(dstApp.Library, ch.CounterID(), blob)
	if err != nil {
		t.Fatalf("restore after migration: %v", err)
	}
	mine, _ := restored.Balances()
	if mine != 50 {
		t.Fatalf("balance after migration = %d", mine)
	}
	// The stale blob (higher balance!) is rejected — roll-back prevented.
	if _, err := Restore(dstApp.Library, ch.CounterID(), oldBlob); !errors.Is(err, ErrStaleState) {
		t.Fatalf("stale blob accepted after migration: %v", err)
	}
	// The channel keeps operating: payments and persists continue.
	if _, err := restored.Pay(5); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Persist(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelClose(t *testing.T) {
	w := newWorld(t, 1)
	alice := launch(t, w.machines[0], "alice")
	ch, _ := Open(alice.Library, "alice", "bob", 100, 50)
	mine, theirs, err := ch.Close()
	if err != nil || mine != 100 || theirs != 50 {
		t.Fatalf("close: %d/%d %v", mine, theirs, err)
	}
	if _, err := ch.Pay(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("pay after close: %v", err)
	}
	if _, _, err := ch.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}
