package trinx

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sgx"
	"repro/internal/sim"
)

func newCloud(t *testing.T, machines int) (*cloud.DataCenter, []*cloud.Machine) {
	t.Helper()
	dc, err := cloud.NewDataCenter("dc", sim.NewInstantLatency())
	if err != nil {
		t.Fatal(err)
	}
	var ms []*cloud.Machine
	for i := 0; i < machines; i++ {
		m, err := dc.AddMachine(fmt.Sprintf("m%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	return dc, ms
}

func appImage(t *testing.T, name string) *sgx.Image {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &sgx.Image{Name: name, Version: 1, Code: []byte(name), SignerPublicKey: pub}
}

func newService(t *testing.T, m *cloud.Machine) (*Service, *cloud.App) {
	t.Helper()
	app, err := m.LaunchApp(appImage(t, "trinx-replica"), core.NewMemoryStorage(), core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(app.Library)
	if err != nil {
		t.Fatal(err)
	}
	return svc, app
}

func TestCertifyAndVerify(t *testing.T) {
	_, ms := newCloud(t, 1)
	svc, _ := newService(t, ms[0])
	ctr := svc.CreateCounter()

	msg := []byte("ORDER request #1")
	cert, err := svc.Certify(ctr, msg)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Value != 1 {
		t.Fatalf("first value = %d", cert.Value)
	}
	if err := svc.Verify(cert, msg); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := svc.Verify(cert, []byte("different message")); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("wrong message verified: %v", err)
	}
	bad := *cert
	bad.Value = 2
	if err := svc.Verify(&bad, msg); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("altered value verified: %v", err)
	}
	if err := svc.Verify(nil, msg); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("nil cert: %v", err)
	}
}

func TestCounterValuesNeverReused(t *testing.T) {
	_, ms := newCloud(t, 1)
	svc, _ := newService(t, ms[0])
	ctr := svc.CreateCounter()
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		cert, err := svc.Certify(ctr, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if seen[cert.Value] {
			t.Fatalf("value %d reused", cert.Value)
		}
		seen[cert.Value] = true
	}
	if _, err := svc.Certify(999, nil); !errors.Is(err, ErrUnknownCounter) {
		t.Fatalf("unknown counter: %v", err)
	}
}

func TestLogDetectsEquivocationAndGaps(t *testing.T) {
	_, ms := newCloud(t, 1)
	svc, _ := newService(t, ms[0])
	ctr := svc.CreateCounter()
	log := NewLog(svc.ExportKey(), ctr)

	c1, _ := svc.Certify(ctr, []byte("op1"))
	c2, _ := svc.Certify(ctr, []byte("op2"))
	c3, _ := svc.Certify(ctr, []byte("op3"))

	if err := log.Append(c1, []byte("op1")); err != nil {
		t.Fatal(err)
	}
	// Gap: skipping c2.
	if err := log.Append(c3, []byte("op3")); !errors.Is(err, ErrGap) {
		t.Fatalf("gap accepted: %v", err)
	}
	if err := log.Append(c2, []byte("op2")); err != nil {
		t.Fatal(err)
	}
	// Replay/equivocation: an old value again.
	if err := log.Append(c1, []byte("op1")); !errors.Is(err, ErrEquivocation) {
		t.Fatalf("equivocation accepted: %v", err)
	}
	if err := log.Append(c3, []byte("op3")); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 3 {
		t.Fatalf("log len = %d", log.Len())
	}
	if e, ok := log.Entry(1); !ok || string(e) != "op2" {
		t.Fatalf("entry 1 = %q %v", e, ok)
	}
	if _, ok := log.Entry(99); ok {
		t.Fatal("oob entry")
	}
}

func TestPersistRestoreRejectsStaleState(t *testing.T) {
	_, ms := newCloud(t, 1)
	svc, app := newService(t, ms[0])
	ctr := svc.CreateCounter()
	if _, err := svc.Certify(ctr, []byte("op1")); err != nil {
		t.Fatal(err)
	}
	stale, err := svc.Persist() // v=1, counter next=2
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Certify(ctr, []byte("op2")); err != nil {
		t.Fatal(err)
	}
	fresh, err := svc.Persist() // v=2, counter next=3
	if err != nil {
		t.Fatal(err)
	}
	// The stale state would let the replica re-issue value 2 — the exact
	// replay the TrInX platform assumption forbids. It must be rejected.
	if _, err := Restore(app.Library, svc.CounterID(), stale); !errors.Is(err, ErrStaleState) {
		t.Fatalf("stale restore: %v", err)
	}
	back, err := Restore(app.Library, svc.CounterID(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := back.Certify(ctr, []byte("op3"))
	if err != nil {
		t.Fatal(err)
	}
	if cert.Value != 3 {
		t.Fatalf("restored next value = %d, want 3", cert.Value)
	}
}

// TestReplicaMigrationPreservesNoEquivocation is the Hybster scenario:
// a replica's TrInX subsystem migrates between machines, and across the
// whole history no counter value is ever issued twice — a correct
// verifier log accepts the full sequence with no equivocation or gap.
func TestReplicaMigrationPreservesNoEquivocation(t *testing.T) {
	_, ms := newCloud(t, 2)
	img := appImage(t, "trinx-replica")
	storage := core.NewMemoryStorage()
	app, err := ms[0].LaunchApp(img, storage, core.InitNew)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(app.Library)
	if err != nil {
		t.Fatal(err)
	}
	ctr := svc.CreateCounter()
	log := NewLog(svc.ExportKey(), ctr)

	// Certify a few operations on the source.
	for i := 0; i < 3; i++ {
		msg := []byte(fmt.Sprintf("pre-migration op %d", i))
		cert, err := svc.Certify(ctr, msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(cert, msg); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := svc.Persist()
	if err != nil {
		t.Fatal(err)
	}

	// Migrate the replica enclave.
	if err := app.Library.StartMigration(ms[1].MEAddress()); err != nil {
		t.Fatal(err)
	}
	app.Terminate()
	dstApp, err := ms[1].LaunchApp(img, core.NewMemoryStorage(), core.InitMigrated)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(dstApp.Library, svc.CounterID(), blob)
	if err != nil {
		t.Fatalf("restore on destination: %v", err)
	}

	// Continue certifying on the destination: the verifier log accepts
	// the continuation seamlessly — values 4, 5, 6 with no reuse.
	for i := 3; i < 6; i++ {
		msg := []byte(fmt.Sprintf("post-migration op %d", i))
		cert, err := restored.Certify(ctr, msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(cert, msg); err != nil {
			t.Fatalf("post-migration append %d: %v", i, err)
		}
	}
	if log.Len() != 6 {
		t.Fatalf("log len = %d", log.Len())
	}
}
