// Package trinx implements a TrInX-style trusted counter subsystem
// (Behl et al., "Hybrids on Steroids: SGX-based high performance BFT" —
// the paper's second motivating application, §III-B). TrInX provides
// trusted counters that certify message ordering for a BFT protocol:
// each certification binds a message to a strictly increasing counter
// value under a MAC key held only inside the enclave, so a replica
// cannot equivocate (assign the same counter value to two messages).
//
// The subsystem relies on the platform preventing "undetected replay
// attacks where an adversary saves the (encrypted) state of a trusted
// subsystem and starts a new instance using the exact same state".
// That protection comes from sealing + hardware monotonic counters —
// here the Migration Library's migratable versions, which keep the
// guarantee intact across machine migration.
package trinx

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/xcrypto"
)

// TrInX errors.
var (
	ErrBadCertificate = errors.New("trinx: certificate verification failed")
	ErrUnknownCounter = errors.New("trinx: unknown trusted counter")
	ErrStaleState     = errors.New("trinx: persisted state is stale (version mismatch)")
	ErrEquivocation   = errors.New("trinx: counter value already certified (equivocation)")
	ErrGap            = errors.New("trinx: certificate sequence has a gap")
)

// Certificate binds a message to a counter value under the service key.
type Certificate struct {
	Counter uint64 `json:"counter"`
	Value   uint64 `json:"value"`
	Digest  []byte `json:"digest"`
	MAC     []byte `json:"mac"`
}

// serviceState is the persistent TrInX state: the MAC key and the next
// value of every trusted counter, versioned by a migratable hardware
// counter exactly as the paper prescribes.
type serviceState struct {
	Key      []byte            `json:"key"`
	Counters map[uint64]uint64 `json:"counters"` // counter id -> next value
	Next     uint64            `json:"next"`
	Version  uint32            `json:"version"`
}

// Service is the in-enclave TrInX subsystem.
type Service struct {
	lib *core.Library

	mu        sync.Mutex
	st        serviceState
	counterID int // the Migration Library version counter
}

var stateAAD = []byte("trinx-service-state")

// New creates the subsystem inside a migratable enclave: it generates
// the MAC key and allocates the hardware version counter.
func New(lib *core.Library) (*Service, error) {
	key, err := xcrypto.RandomBytes(32)
	if err != nil {
		return nil, fmt.Errorf("trinx key: %w", err)
	}
	ctr, _, err := lib.CreateCounter()
	if err != nil {
		return nil, fmt.Errorf("trinx version counter: %w", err)
	}
	return &Service{
		lib:       lib,
		st:        serviceState{Key: key, Counters: make(map[uint64]uint64)},
		counterID: ctr,
	}, nil
}

// CreateCounter allocates a trusted (logical) counter and returns its id.
// TrInX counters are distinct from SGX hardware counters (§III-B): they
// live in enclave memory and are protected by the versioned state.
func (s *Service) CreateCounter() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Next++
	id := s.st.Next
	s.st.Counters[id] = 1
	return id
}

// certMAC computes the MAC over (counter, value, digest).
func certMAC(key []byte, counter, value uint64, digest []byte) []byte {
	mac := hmac.New(sha256.New, key)
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], counter)
	binary.BigEndian.PutUint64(buf[8:], value)
	mac.Write(buf[:])
	mac.Write(digest)
	return mac.Sum(nil)
}

// Certify assigns the next value of the trusted counter to the message
// and returns the certificate. Values are never reused: assigning the
// same value to two messages (equivocation) is impossible through this
// interface, and the anti-rollback protection keeps it impossible across
// crashes and migrations.
func (s *Service) Certify(counter uint64, message []byte) (*Certificate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next, ok := s.st.Counters[counter]
	if !ok {
		return nil, ErrUnknownCounter
	}
	digest := sha256.Sum256(message)
	cert := &Certificate{
		Counter: counter,
		Value:   next,
		Digest:  digest[:],
		MAC:     certMAC(s.st.Key, counter, next, digest[:]),
	}
	s.st.Counters[counter] = next + 1
	return cert, nil
}

// Verify checks a certificate against a message. In Hybster, replicas
// share the verification keys via attested channels; here the service
// verifies its own certificates (sufficient for the single-subsystem
// experiments; see package hybster-lite in the examples for the
// replicated use).
func (s *Service) Verify(cert *Certificate, message []byte) error {
	s.mu.Lock()
	key := append([]byte(nil), s.st.Key...)
	s.mu.Unlock()
	return VerifyWithKey(key, cert, message)
}

// VerifyWithKey checks a certificate with an explicitly shared key (how
// peer replicas verify after exchanging keys over attested channels).
func VerifyWithKey(key []byte, cert *Certificate, message []byte) error {
	if cert == nil {
		return ErrBadCertificate
	}
	digest := sha256.Sum256(message)
	if !bytes.Equal(digest[:], cert.Digest) {
		return ErrBadCertificate
	}
	want := certMAC(key, cert.Counter, cert.Value, cert.Digest)
	if !hmac.Equal(want, cert.MAC) {
		return ErrBadCertificate
	}
	return nil
}

// ExportKey hands out the MAC key for replica-to-replica verification
// (over an attested channel in the real system).
func (s *Service) ExportKey() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.st.Key...)
}

// Persist seals the TrInX state with a fresh version number. Must be
// called before the enclave terminates (and is called by the replication
// layer after batches of certifications).
func (s *Service) Persist() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.lib.IncrementCounter(s.counterID)
	if err != nil {
		return nil, fmt.Errorf("advance version counter: %w", err)
	}
	s.st.Version = v
	raw, err := json.Marshal(&s.st)
	if err != nil {
		return nil, fmt.Errorf("encode trinx state: %w", err)
	}
	blob, err := s.lib.SealMigratable(stateAAD, raw)
	if err != nil {
		return nil, fmt.Errorf("seal trinx state: %w", err)
	}
	return blob, nil
}

// Restore reloads persisted TrInX state, enforcing the version check that
// blocks the replay attack quoted in the package comment.
func Restore(lib *core.Library, counterID int, blob []byte) (*Service, error) {
	raw, aad, err := lib.UnsealMigratable(blob)
	if err != nil {
		return nil, fmt.Errorf("unseal trinx state: %w", err)
	}
	if string(aad) != string(stateAAD) {
		return nil, ErrBadCertificate
	}
	var st serviceState
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("decode trinx state: %w", err)
	}
	current, err := lib.ReadCounter(counterID)
	if err != nil {
		return nil, fmt.Errorf("read version counter: %w", err)
	}
	if st.Version != current {
		return nil, fmt.Errorf("%w: blob v=%d counter=%d", ErrStaleState, st.Version, current)
	}
	if st.Counters == nil {
		st.Counters = make(map[uint64]uint64)
	}
	return &Service{lib: lib, st: st, counterID: counterID}, nil
}

// CounterID returns the version-counter handle for persistence.
func (s *Service) CounterID() int { return s.counterID }

// Log is a minimal Hybster-style ordered log: entries are appended only
// with gapless, verified certificates from a given replica key, which is
// what makes equivocation and replay detectable by correct replicas.
type Log struct {
	key     []byte
	counter uint64

	mu      sync.Mutex
	entries [][]byte
	next    uint64
}

// NewLog creates a verifier-side log for one (replica key, counter).
func NewLog(key []byte, counter uint64) *Log {
	return &Log{key: key, counter: counter, next: 1}
}

// Append verifies the certificate and enforces gapless ordering.
func (l *Log) Append(cert *Certificate, message []byte) error {
	if err := VerifyWithKey(l.key, cert, message); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if cert.Counter != l.counter {
		return ErrBadCertificate
	}
	switch {
	case cert.Value < l.next:
		return fmt.Errorf("%w: value %d reused", ErrEquivocation, cert.Value)
	case cert.Value > l.next:
		return fmt.Errorf("%w: expected %d got %d", ErrGap, l.next, cert.Value)
	}
	l.entries = append(l.entries, append([]byte(nil), message...))
	l.next++
	return nil
}

// Len returns the number of committed entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entry returns committed entry i.
func (l *Log) Entry(i int) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.entries) {
		return nil, false
	}
	return append([]byte(nil), l.entries[i]...), true
}
