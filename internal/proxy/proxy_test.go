package proxy

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// echoUnixServer runs a line-echo service on a Unix socket, standing in
// for the Platform Services enclave endpoint.
func echoUnixServer(t *testing.T, socket string) {
	t.Helper()
	ln, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() {
		_ = ln.Close()
		wg.Wait()
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					fmt.Fprintf(conn, "pse:%s\n", sc.Text())
				}
			}()
		}
	}()
}

func roundTrip(t *testing.T, network, addr, msg string) string {
	t.Helper()
	conn, err := net.Dial(network, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s\n", msg); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func TestForwarderTCPToUnix(t *testing.T) {
	dir := t.TempDir()
	pseSocket := filepath.Join(dir, "pse.sock")
	echoUnixServer(t, pseSocket)

	fw, err := NewForwarder("tcp", "127.0.0.1:0", "unix", pseSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()

	if got := roundTrip(t, "tcp", fw.Addr().String(), "hello"); got != "pse:hello" {
		t.Fatalf("got %q", got)
	}
}

func TestProxyPairFullPath(t *testing.T) {
	// SDK (unix) -> guest proxy -> TCP -> management proxy -> PSE (unix):
	// the exact §VI-C topology.
	dir := t.TempDir()
	pseSocket := filepath.Join(dir, "pse.sock")
	guestSocket := filepath.Join(dir, "sdk.sock")
	echoUnixServer(t, pseSocket)

	pair, err := NewPair(guestSocket, pseSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()

	if got := roundTrip(t, "unix", guestSocket, "create-counter"); got != "pse:create-counter" {
		t.Fatalf("got %q", got)
	}
}

func TestProxyPairConcurrentClients(t *testing.T) {
	dir := t.TempDir()
	pseSocket := filepath.Join(dir, "pse.sock")
	guestSocket := filepath.Join(dir, "sdk.sock")
	echoUnixServer(t, pseSocket)
	pair, err := NewPair(guestSocket, pseSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := fmt.Sprintf("req-%d", i)
			if got := roundTrip(t, "unix", guestSocket, msg); got != "pse:"+msg {
				t.Errorf("client %d got %q", i, got)
			}
		}(i)
	}
	wg.Wait()
}

// TestTwoForwarderChainConcurrent builds the §VI-C topology from two
// explicitly chained Forwarders — SDK Unix socket → guest forwarder →
// TCP → management forwarder → PSE Unix socket — and hammers it with
// concurrent connections, each doing several sequential round trips, so
// both hops multiplex many live connections at once.
func TestTwoForwarderChainConcurrent(t *testing.T) {
	dir := t.TempDir()
	pseSocket := filepath.Join(dir, "pse.sock")
	guestSocket := filepath.Join(dir, "sdk.sock")
	echoUnixServer(t, pseSocket)

	// Management-VM side: TCP in, PSE Unix socket out.
	mgmt, err := NewForwarder("tcp", "127.0.0.1:0", "unix", pseSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer mgmt.Close()
	// Guest-VM side: SDK Unix socket in, management TCP out.
	guest, err := NewForwarder("unix", guestSocket, "tcp", mgmt.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer guest.Close()

	const (
		clients       = 32
		perConnection = 20
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("unix", guestSocket)
			if err != nil {
				t.Errorf("client %d: dial: %v", i, err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			// Several request/response exchanges over one connection,
			// like the SDK's repeated counter transactions.
			for j := 0; j < perConnection; j++ {
				msg := fmt.Sprintf("c%d-op%d", i, j)
				if _, err := fmt.Fprintf(conn, "%s\n", msg); err != nil {
					t.Errorf("client %d: write: %v", i, err)
					return
				}
				line, err := r.ReadString('\n')
				if err != nil {
					t.Errorf("client %d: read: %v", i, err)
					return
				}
				if got := strings.TrimSpace(line); got != "pse:"+msg {
					t.Errorf("client %d: got %q, want %q", i, got, "pse:"+msg)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestForwarderUpstreamDown(t *testing.T) {
	dir := t.TempDir()
	fw, err := NewForwarder("tcp", "127.0.0.1:0", "unix", filepath.Join(dir, "nonexistent.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	conn, err := net.Dial("tcp", fw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The proxy drops the connection; reading yields EOF promptly.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected closed connection")
	}
}

func TestForwarderDoubleClose(t *testing.T) {
	fw, err := NewForwarder("tcp", "127.0.0.1:0", "tcp", "127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}
