// Package proxy implements the two-proxy topology of the paper's §VI-C:
// the SGX SDK talks to the Platform Services enclaves over a Unix socket,
// but in a virtualized deployment the Platform Services live in the
// management VM. One proxy inside the guest VM accepts the SDK's Unix-
// socket connections and forwards them over TCP; a second proxy inside
// the management VM accepts those TCP connections and forwards them to
// the Platform Services' real Unix socket.
//
// As the paper notes, the original Unix-socket hop is already exposed to
// the untrusted OS, so inserting two untrusted proxies does not change
// the security guarantees — everything that matters is protected by the
// enclave-level channels above.
package proxy

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// ErrClosed reports use of a closed forwarder.
var ErrClosed = errors.New("proxy: forwarder closed")

// Forwarder accepts connections on one address and pipes each one
// bidirectionally to a dial target. It is protocol-agnostic.
type Forwarder struct {
	listener net.Listener
	dialNet  string
	dialAddr string

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewForwarder starts a forwarder listening on (listenNet, listenAddr)
// and forwarding each accepted connection to (dialNet, dialAddr).
// Supported networks are "unix" and "tcp".
func NewForwarder(listenNet, listenAddr, dialNet, dialAddr string) (*Forwarder, error) {
	ln, err := net.Listen(listenNet, listenAddr)
	if err != nil {
		return nil, fmt.Errorf("proxy listen %s/%s: %w", listenNet, listenAddr, err)
	}
	f := &Forwarder{
		listener: ln,
		dialNet:  dialNet,
		dialAddr: dialAddr,
		conns:    make(map[net.Conn]struct{}),
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the actual listen address (useful for port 0).
func (f *Forwarder) Addr() net.Addr { return f.listener.Addr() }

func (f *Forwarder) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.listener.Accept()
		if err != nil {
			return // listener closed
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			_ = conn.Close()
			return
		}
		f.conns[conn] = struct{}{}
		f.mu.Unlock()
		f.wg.Add(1)
		go f.pipe(conn)
	}
}

// pipe connects one accepted connection to the dial target and copies
// bytes in both directions until either side closes.
func (f *Forwarder) pipe(client net.Conn) {
	defer f.wg.Done()
	defer f.forget(client)
	defer client.Close()

	upstream, err := net.Dial(f.dialNet, f.dialAddr)
	if err != nil {
		return // client connection dropped; SDK will retry
	}
	defer upstream.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = io.Copy(upstream, client)
		// Half-close towards upstream if supported, so request/response
		// protocols that signal end-of-request by close still work.
		if cw, ok := upstream.(interface{ CloseWrite() error }); ok {
			_ = cw.CloseWrite()
		}
	}()
	_, _ = io.Copy(client, upstream)
	if cw, ok := client.(interface{ CloseWrite() error }); ok {
		_ = cw.CloseWrite()
	}
	<-done
}

func (f *Forwarder) forget(conn net.Conn) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.conns, conn)
}

// Close stops accepting, tears down active connections, and waits for
// all goroutines to exit.
func (f *Forwarder) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.closed = true
	for conn := range f.conns {
		_ = conn.Close()
	}
	f.mu.Unlock()
	err := f.listener.Close()
	f.wg.Wait()
	return err
}

// Pair is the paper's two-proxy deployment: guest-side Unix listener
// forwarding over TCP into the management VM, which forwards to the
// Platform Services Unix socket.
type Pair struct {
	// GuestSide accepts the SDK's Unix-socket connections in the guest VM.
	GuestSide *Forwarder
	// ManagementSide accepts TCP from guests and forwards to the PSE.
	ManagementSide *Forwarder
}

// NewPair wires the full guest→management→PSE path:
// guestSocket (unix, created) → mgmt TCP (loopback, created) → pseSocket
// (unix, must already have the Platform Services listening).
func NewPair(guestSocket, pseSocket string) (*Pair, error) {
	mgmt, err := NewForwarder("tcp", "127.0.0.1:0", "unix", pseSocket)
	if err != nil {
		return nil, fmt.Errorf("management proxy: %w", err)
	}
	guest, err := NewForwarder("unix", guestSocket, "tcp", mgmt.Addr().String())
	if err != nil {
		_ = mgmt.Close()
		return nil, fmt.Errorf("guest proxy: %w", err)
	}
	return &Pair{GuestSide: guest, ManagementSide: mgmt}, nil
}

// Close tears down both proxies.
func (p *Pair) Close() error {
	err1 := p.GuestSide.Close()
	err2 := p.ManagementSide.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
