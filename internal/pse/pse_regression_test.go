package pse

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestCreateDestroyCyclesKeepSteadyStateMemory is the regression test for
// the unbounded destroyed-ID map the service used to keep: every
// create+destroy cycle leaked one tombstone entry forever. With the
// monotonic-ID invariant ("issued and not live ⇒ destroyed") the service
// must hold NO per-cycle state once a counter is destroyed, which this
// test asserts structurally against the internal tables.
func TestCreateDestroyCyclesKeepSteadyStateMemory(t *testing.T) {
	f := newFixture(t)
	const cycles = 10_000

	var lastID uint32
	for i := 0; i < cycles; i++ {
		uuid, _, err := f.service.Create(f.enclave)
		if err != nil {
			t.Fatalf("cycle %d create: %v", i, err)
		}
		if uuid.ID <= lastID {
			t.Fatalf("cycle %d: counter ID %d not strictly increasing (last %d)", i, uuid.ID, lastID)
		}
		lastID = uuid.ID
		if err := f.service.Destroy(f.enclave, uuid); err != nil {
			t.Fatalf("cycle %d destroy: %v", i, err)
		}
		// The destroyed UUID must stay dead despite having no tombstone.
		if _, err := f.service.Increment(f.enclave, uuid); !errors.Is(err, ErrCounterNotFound) {
			t.Fatalf("cycle %d: destroyed counter usable: %v", i, err)
		}
	}

	// Steady-state memory shape: no live counters, no per-owner residue,
	// and — the point of the fix — no table anywhere that grew with the
	// number of lifetime cycles.
	if live := f.service.TotalLive(); live != 0 {
		t.Fatalf("live counters after %d cycles = %d, want 0", cycles, live)
	}
	for i := range f.service.shards {
		if n := len(f.service.shards[i].counters); n != 0 {
			t.Fatalf("shard %d holds %d entries after all destroys", i, n)
		}
	}
	f.service.ownerMu.Lock()
	owners := len(f.service.perOwner)
	f.service.ownerMu.Unlock()
	if owners != 0 {
		t.Fatalf("perOwner holds %d entries after all destroys, want 0", owners)
	}
}

// TestIncrementN covers the batched replay primitive: n firmware
// increments in one enclave transition, overflow-checked.
func TestIncrementN(t *testing.T) {
	f := newFixture(t)
	uuid, _, err := f.service.Create(f.enclave)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.service.IncrementN(f.enclave, uuid, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1000 {
		t.Fatalf("IncrementN(1000) = %d", got)
	}
	// The full rate-limited cost must be charged, not just one op.
	if n := f.machine.Latency().Counts()[sim.OpCounterIncrement]; n != 1000 {
		t.Fatalf("charged %d increments, want 1000", n)
	}
	if _, err := f.service.IncrementN(f.enclave, uuid, 0); !errors.Is(err, ErrBadIncrement) {
		t.Fatalf("n=0: got %v", err)
	}
	if _, err := f.service.IncrementN(f.enclave, uuid, -3); !errors.Is(err, ErrBadIncrement) {
		t.Fatalf("n<0: got %v", err)
	}
	// Overflow: value+n beyond uint32 max is refused without advancing.
	big, err := f.service.IncrementN(f.enclave, uuid, int(^uint32(0)-1000))
	if err != nil {
		t.Fatal(err)
	}
	if big != ^uint32(0) {
		t.Fatalf("value = %d, want max", big)
	}
	if _, err := f.service.IncrementN(f.enclave, uuid, 1); !errors.Is(err, ErrCounterOverflow) {
		t.Fatalf("overflowing IncrementN: got %v", err)
	}
}

// TestDestroyAndRead covers the atomic capture+destroy used by migration.
func TestDestroyAndRead(t *testing.T) {
	f := newFixture(t)
	uuid, _, err := f.service.Create(f.enclave)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := f.service.Increment(f.enclave, uuid); err != nil {
			t.Fatal(err)
		}
	}
	final, err := f.service.DestroyAndRead(f.enclave, uuid)
	if err != nil {
		t.Fatal(err)
	}
	if final != 7 {
		t.Fatalf("final value = %d, want 7", final)
	}
	if _, err := f.service.Read(f.enclave, uuid); !errors.Is(err, ErrCounterNotFound) {
		t.Fatalf("read after DestroyAndRead: %v", err)
	}
	if _, err := f.service.DestroyAndRead(f.enclave, uuid); !errors.Is(err, ErrCounterNotFound) {
		t.Fatalf("double DestroyAndRead: %v", err)
	}
}

// TestIncrementNRejectsUint32Truncation: n beyond the counter's 32-bit
// range must be refused, not silently truncated modulo 2^32.
func TestIncrementNRejectsUint32Truncation(t *testing.T) {
	f := newFixture(t)
	uuid, _, err := f.service.Create(f.enclave)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.service.Increment(f.enclave, uuid); err != nil {
		t.Fatal(err)
	}
	n := int(^uint32(0)) + 1 // 2^32: uint32(n) == 0
	if _, err := f.service.IncrementN(f.enclave, uuid, n); !errors.Is(err, ErrCounterOverflow) {
		t.Fatalf("IncrementN(2^32): got %v, want ErrCounterOverflow", err)
	}
	if v, err := f.service.Read(f.enclave, uuid); err != nil || v != 1 {
		t.Fatalf("counter advanced by refused increment: %d, %v", v, err)
	}
}

// TestCounterIDExhaustionRefusedNotWrapped: once 2^32 IDs have been
// issued, Create must fail rather than reuse an ID (reuse would
// resurrect destroyed UUIDs and break fork prevention).
func TestCounterIDExhaustionRefusedNotWrapped(t *testing.T) {
	f := newFixture(t)
	f.service.nextID.Store(uint64(^uint32(0)) - 1) // pretend 2^32-2 IDs issued
	uuid, _, err := f.service.Create(f.enclave)
	if err != nil {
		t.Fatal(err)
	}
	if uuid.ID != ^uint32(0) {
		t.Fatalf("last ID = %d", uuid.ID)
	}
	if _, _, err := f.service.Create(f.enclave); !errors.Is(err, ErrIDsExhausted) {
		t.Fatalf("create after exhaustion: got %v, want ErrIDsExhausted", err)
	}
	// The refused create must not leak per-owner budget.
	if got := f.service.Count(f.enclave.MREnclave()); got != 1 {
		t.Fatalf("owner budget after refused create = %d, want 1", got)
	}
}
