package pse

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"sync"
	"testing"

	"repro/internal/sgx"
	"repro/internal/sim"
)

type fixture struct {
	machine   *sgx.Machine
	service   *Service
	enclave   *sgx.Enclave
	origImage *sgx.Image
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	lat := sim.NewInstantLatency()
	m, err := sgx.NewMachine("A", lat)
	if err != nil {
		t.Fatal(err)
	}
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	img := &sgx.Image{Name: "app", Code: []byte("code"), SignerPublicKey: pub}
	e, err := m.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{machine: m, service: NewService(lat), enclave: e, origImage: img}
}

func (f *fixture) loadOther(t *testing.T, name string) *sgx.Enclave {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	e, err := f.machine.Load(&sgx.Image{Name: name, Code: []byte(name), SignerPublicKey: pub})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCounterLifecycle(t *testing.T) {
	f := newFixture(t)
	uuid, v, err := f.service.Create(f.enclave)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("initial value = %d, want 0", v)
	}
	for want := uint32(1); want <= 5; want++ {
		got, err := f.service.Increment(f.enclave, uuid)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("increment -> %d, want %d", got, want)
		}
	}
	got, err := f.service.Read(f.enclave, uuid)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("read = %d, want 5", got)
	}
	if err := f.service.Destroy(f.enclave, uuid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.service.Read(f.enclave, uuid); !errors.Is(err, ErrCounterNotFound) {
		t.Fatalf("read after destroy: got %v", err)
	}
}

func TestDestroyedUUIDNeverReusable(t *testing.T) {
	f := newFixture(t)
	uuid, _, _ := f.service.Create(f.enclave)
	for i := 0; i < 3; i++ {
		if _, err := f.service.Increment(f.enclave, uuid); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.service.Destroy(f.enclave, uuid); err != nil {
		t.Fatal(err)
	}
	// New counters never resurrect the destroyed UUID.
	for i := 0; i < 10; i++ {
		nu, _, err := f.service.Create(f.enclave)
		if err != nil {
			t.Fatal(err)
		}
		if nu.ID == uuid.ID {
			t.Fatal("destroyed counter ID reissued")
		}
	}
	if _, err := f.service.Increment(f.enclave, uuid); !errors.Is(err, ErrCounterNotFound) {
		t.Fatalf("destroyed counter usable: %v", err)
	}
}

func TestCounterNonceRequired(t *testing.T) {
	f := newFixture(t)
	uuid, _, _ := f.service.Create(f.enclave)
	forged := uuid
	forged.Nonce[0] ^= 1
	if _, err := f.service.Read(f.enclave, forged); !errors.Is(err, ErrCounterNotFound) {
		t.Fatalf("forged nonce accepted: %v", err)
	}
}

func TestCounterOwnershipEnforced(t *testing.T) {
	f := newFixture(t)
	other := f.loadOther(t, "other")
	uuid, _, _ := f.service.Create(f.enclave)
	if _, err := f.service.Read(other, uuid); !errors.Is(err, ErrNotOwner) && !errors.Is(err, ErrCounterNotFound) {
		t.Fatalf("foreign enclave accessed counter: %v", err)
	}
}

func TestCounterLimit(t *testing.T) {
	f := newFixture(t)
	uuids := make([]UUID, 0, MaxCounters)
	for i := 0; i < MaxCounters; i++ {
		u, _, err := f.service.Create(f.enclave)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		uuids = append(uuids, u)
	}
	if _, _, err := f.service.Create(f.enclave); !errors.Is(err, ErrCounterLimit) {
		t.Fatalf("257th create: got %v", err)
	}
	// Another enclave identity has its own budget.
	other := f.loadOther(t, "other")
	if _, _, err := f.service.Create(other); err != nil {
		t.Fatalf("other identity create: %v", err)
	}
	// Destroying frees budget.
	if err := f.service.Destroy(f.enclave, uuids[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.service.Create(f.enclave); err != nil {
		t.Fatalf("create after destroy: %v", err)
	}
}

func TestCountersSurviveEnclaveRestart(t *testing.T) {
	f := newFixture(t)
	uuid, _, _ := f.service.Create(f.enclave)
	_, _ = f.service.Increment(f.enclave, uuid)

	// Restart: destroy the instance, load the same image again. The same
	// enclave identity (same image) reattaches to its counter.
	f.machine.Destroy(f.enclave)
	e2 := f.reloadSame(t)
	got, err := f.service.Read(e2, uuid)
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if got != 1 {
		t.Fatalf("value after restart = %d, want 1", got)
	}
}

// reloadSame loads a fresh instance with the exact identity of f.enclave.
func (f *fixture) reloadSame(t *testing.T) *sgx.Enclave {
	t.Helper()
	// Identity is determined by the image; the fixture keeps none, so we
	// use the trick that counters are keyed by MRENCLAVE: load an image
	// that measures identically. We must retain the original image.
	if f.origImage == nil {
		t.Fatal("fixture missing original image")
	}
	e, err := f.machine.Load(f.origImage)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCounterMonotoneUnderConcurrency(t *testing.T) {
	f := newFixture(t)
	uuid, _, _ := f.service.Create(f.enclave)
	const (
		workers = 8
		perW    = 50
	)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				if _, err := f.service.Increment(f.enclave, uuid); err != nil {
					t.Errorf("increment: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := f.service.Read(f.enclave, uuid)
	if err != nil {
		t.Fatal(err)
	}
	if got != workers*perW {
		t.Fatalf("final value = %d, want %d", got, workers*perW)
	}
}

func TestCounterLatencyCharged(t *testing.T) {
	f := newFixture(t)
	lat := f.machine.Latency()
	lat.Reset()
	uuid, _, _ := f.service.Create(f.enclave)
	_, _ = f.service.Increment(f.enclave, uuid)
	_, _ = f.service.Read(f.enclave, uuid)
	_ = f.service.Destroy(f.enclave, uuid)
	counts := lat.Counts()
	for op, want := range map[sim.Op]int{
		sim.OpCounterCreate:    1,
		sim.OpCounterIncrement: 1,
		sim.OpCounterRead:      1,
		sim.OpCounterDestroy:   1,
	} {
		if counts[op] != want {
			t.Fatalf("%v charged %d times, want %d", op, counts[op], want)
		}
	}
}

func TestDeadEnclaveCannotUseCounters(t *testing.T) {
	f := newFixture(t)
	uuid, _, _ := f.service.Create(f.enclave)
	f.machine.Destroy(f.enclave)
	if _, err := f.service.Read(f.enclave, uuid); !errors.Is(err, sgx.ErrEnclaveDestroyed) {
		t.Fatalf("dead enclave read: %v", err)
	}
}

func TestCounterCountAccounting(t *testing.T) {
	f := newFixture(t)
	owner := f.enclave.MREnclave()
	if f.service.Count(owner) != 0 {
		t.Fatal("fresh service has counters")
	}
	u1, _, _ := f.service.Create(f.enclave)
	u2, _, _ := f.service.Create(f.enclave)
	if f.service.Count(owner) != 2 || f.service.TotalLive() != 2 {
		t.Fatalf("count = %d live = %d", f.service.Count(owner), f.service.TotalLive())
	}
	_ = f.service.Destroy(f.enclave, u1)
	_ = f.service.Destroy(f.enclave, u2)
	if f.service.Count(owner) != 0 || f.service.TotalLive() != 0 {
		t.Fatal("destroy accounting wrong")
	}
}
