// Package pse simulates the Intel Platform Services Enclave's monotonic
// counter facility (paper §II-A5): up to 256 hardware-backed counters per
// enclave identity, addressed by a UUID consisting of a counter ID and a
// nonce. Counters are maintained by platform firmware (the Intel
// Management Engine), which makes them
//
//   - machine-local: they do not exist on any other machine,
//   - monotonic: they can never be decremented,
//   - non-recreatable: a destroyed counter's UUID can never be reissued,
//     so an attacker cannot destroy a counter and mint a fresh one with
//     the same identifier but a lower value, and
//   - slow: every operation is a rate-limited firmware transaction, which
//     dominates the costs in the paper's Figure 3.
//
// The service survives both enclave restarts and machine reboots, exactly
// like the ME-backed counters it models.
package pse

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

// MaxCounters is the per-enclave-identity counter limit (256 on SGX).
const MaxCounters = 256

// Counter service errors.
var (
	ErrCounterNotFound = errors.New("pse: counter does not exist")
	ErrCounterLimit    = errors.New("pse: counter limit reached")
	ErrNotOwner        = errors.New("pse: counter owned by a different enclave")
	ErrCounterOverflow = errors.New("pse: counter value overflow")
	ErrUUIDReuse       = errors.New("pse: counter UUID was destroyed and cannot be reused")
	ErrBadIncrement    = errors.New("pse: invalid increment count")
	ErrIDsExhausted    = errors.New("pse: counter ID space exhausted")
)

// UUID identifies a monotonic counter: the counter ID names it, the nonce
// proves the caller created it (paper §II-A5).
type UUID struct {
	ID    uint32
	Nonce [16]byte
}

// String renders the UUID for diagnostics.
func (u UUID) String() string { return fmt.Sprintf("ctr-%d-%x", u.ID, u.Nonce[:4]) }

// counter is one firmware-held monotonic counter.
type counter struct {
	uuid  UUID
	owner sgx.Measurement
	value uint32
}

// numShards splits the counter table so concurrent operations on distinct
// counter IDs do not serialize behind one lock. Power of two so the shard
// index is a mask.
const numShards = 16

// shard is one lock-striped slice of the counter table.
type shard struct {
	mu       sync.Mutex
	counters map[uint32]*counter
}

// Service is the per-machine Platform Services counter manager.
// It is safe for concurrent use.
//
// Destroyed counters keep no tombstone state: counter IDs are allocated
// from a monotonically increasing sequence and never reused, so the
// invariant "id was ever issued (id <= nextID) and is not live ⇒ it was
// destroyed" replaces the unbounded destroyed-ID set a naive
// implementation would leak one entry into per create/destroy cycle.
type Service struct {
	lat *sim.Latency

	// nextID is 64-bit so exhaustion of the 32-bit UUID.ID space is
	// detected instead of wrapping — a wrapped sequence would reissue
	// IDs and break the never-reused invariant everything above relies
	// on.
	nextID atomic.Uint64
	shards [numShards]shard

	// ownerMu guards the per-identity budget accounting (Create/Destroy
	// only — the slow, rare operations).
	ownerMu  sync.Mutex
	perOwner map[sgx.Measurement]int
}

// NewService creates the counter service for one machine.
func NewService(lat *sim.Latency) *Service {
	s := &Service{
		lat:      lat,
		perOwner: make(map[sgx.Measurement]int),
	}
	for i := range s.shards {
		s.shards[i].counters = make(map[uint32]*counter)
	}
	return s
}

// shardFor returns the shard owning a counter ID.
func (s *Service) shardFor(id uint32) *shard {
	return &s.shards[id&(numShards-1)]
}

// Create allocates a fresh monotonic counter for the calling enclave with
// initial value 0 and returns its UUID and value.
func (s *Service) Create(e *sgx.Enclave) (UUID, uint32, error) {
	if err := e.ECall(); err != nil {
		return UUID{}, 0, err
	}
	s.lat.Charge(sim.OpCounterCreate)
	owner := e.MREnclave()
	nonce, err := xcrypto.RandomBytes(16)
	if err != nil {
		return UUID{}, 0, fmt.Errorf("counter nonce: %w", err)
	}

	// Reserve budget under the owner lock, then insert into the shard.
	s.ownerMu.Lock()
	if s.perOwner[owner] >= MaxCounters {
		s.ownerMu.Unlock()
		return UUID{}, 0, ErrCounterLimit
	}
	s.perOwner[owner]++
	s.ownerMu.Unlock()

	id := s.nextID.Add(1)
	if id > uint64(^uint32(0)) {
		// 2^32 counters were issued over this machine's lifetime; refuse
		// rather than reuse an ID (which would resurrect destroyed UUIDs).
		s.ownerMu.Lock()
		s.perOwner[owner]--
		if s.perOwner[owner] == 0 {
			delete(s.perOwner, owner)
		}
		s.ownerMu.Unlock()
		return UUID{}, 0, ErrIDsExhausted
	}
	c := &counter{owner: owner}
	c.uuid.ID = uint32(id)
	copy(c.uuid.Nonce[:], nonce)
	sh := s.shardFor(c.uuid.ID)
	sh.mu.Lock()
	sh.counters[c.uuid.ID] = c
	sh.mu.Unlock()
	return c.uuid, c.value, nil
}

// lookupLocked fetches a counter from a shard, enforcing UUID (ID+nonce)
// and owner checks. Callers hold the shard lock.
func (sh *shard) lookupLocked(e *sgx.Enclave, uuid UUID) (*counter, error) {
	c, ok := sh.counters[uuid.ID]
	if !ok {
		// Either never issued (id > nextID) or destroyed: by the monotonic
		// ID invariant, absence from the live table is the tombstone.
		return nil, ErrCounterNotFound
	}
	// Constant-time nonce check (branch-free fold, cheaper than
	// subtle.ConstantTimeCompare for a fixed 16-byte array): the nonce is
	// the only capability guarding a counter against a same-identity
	// clone, so the comparison must not leak matching prefixes through
	// timing. Wrong nonce reports not-found rather than leaking the
	// counter's existence.
	x := binary.LittleEndian.Uint64(c.uuid.Nonce[0:8]) ^ binary.LittleEndian.Uint64(uuid.Nonce[0:8])
	y := binary.LittleEndian.Uint64(c.uuid.Nonce[8:16]) ^ binary.LittleEndian.Uint64(uuid.Nonce[8:16])
	if x|y != 0 {
		return nil, ErrCounterNotFound
	}
	if !e.IsMREnclave(c.owner) {
		return nil, ErrNotOwner
	}
	return c, nil
}

// Read returns the current counter value.
func (s *Service) Read(e *sgx.Enclave, uuid UUID) (uint32, error) {
	if err := e.ECall(); err != nil {
		return 0, err
	}
	s.lat.Charge(sim.OpCounterRead)
	sh := s.shardFor(uuid.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, err := sh.lookupLocked(e, uuid)
	if err != nil {
		return 0, err
	}
	return c.value, nil
}

// Increment adds one to the counter and returns the new value. The
// firmware guarantees the counter can never go backwards.
func (s *Service) Increment(e *sgx.Enclave, uuid UUID) (uint32, error) {
	if err := e.ECall(); err != nil {
		return 0, err
	}
	s.lat.Charge(sim.OpCounterIncrement)
	sh := s.shardFor(uuid.ID)
	sh.mu.Lock()
	c, err := sh.lookupLocked(e, uuid)
	if err != nil {
		sh.mu.Unlock()
		return 0, err
	}
	if c.value == ^uint32(0) {
		sh.mu.Unlock()
		return 0, ErrCounterOverflow
	}
	c.value++
	v := c.value
	sh.mu.Unlock()
	return v, nil
}

// IncrementN adds n to the counter as n consecutive firmware increments in
// one enclave transition, returning the final value. The full rate-limited
// cost of n increments is charged, but only one ECALL boundary crossing is
// paid — the batching primitive replay-style counter restores (e.g. the
// gubaseline ablation) use to avoid n round trips.
func (s *Service) IncrementN(e *sgx.Enclave, uuid UUID, n int) (uint32, error) {
	if n < 1 {
		return 0, fmt.Errorf("%w: %d", ErrBadIncrement, n)
	}
	if uint64(n) > uint64(^uint32(0)) {
		// More increments than the 32-bit counter could ever absorb; a
		// silent uint32 truncation below would acknowledge increments
		// that never happened.
		return 0, ErrCounterOverflow
	}
	if err := e.ECall(); err != nil {
		return 0, err
	}
	s.lat.ChargeN(sim.OpCounterIncrement, n)
	sh := s.shardFor(uuid.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, err := sh.lookupLocked(e, uuid)
	if err != nil {
		return 0, err
	}
	if uint32(n) > ^uint32(0)-c.value {
		return 0, ErrCounterOverflow
	}
	c.value += uint32(n)
	return c.value, nil
}

// Destroy permanently removes a counter. Its UUID can never be reused:
// IDs come from a monotonic sequence, so any later access fails, which is
// the property the Migration Library's fork prevention rests on (§VI-B).
func (s *Service) Destroy(e *sgx.Enclave, uuid UUID) error {
	_, err := s.DestroyAndRead(e, uuid)
	return err
}

// DestroyAndRead destroys the counter and returns its final value, both
// within one shard-atomic firmware transaction (the destroy response
// carries the final value, so no separate read is charged). The Migration
// Library's migration capture uses this so that a concurrent increment
// either lands before the destroy — and is included in the exported
// value — or fails against the destroyed counter; no increment can slip
// between a separate read and destroy and be silently rolled back (R4).
func (s *Service) DestroyAndRead(e *sgx.Enclave, uuid UUID) (uint32, error) {
	if err := e.ECall(); err != nil {
		return 0, err
	}
	s.lat.Charge(sim.OpCounterDestroy)
	sh := s.shardFor(uuid.ID)
	sh.mu.Lock()
	c, err := sh.lookupLocked(e, uuid)
	if err != nil {
		sh.mu.Unlock()
		return 0, err
	}
	delete(sh.counters, uuid.ID)
	final := c.value
	sh.mu.Unlock()

	s.ownerMu.Lock()
	s.perOwner[c.owner]--
	if s.perOwner[c.owner] == 0 {
		delete(s.perOwner, c.owner)
	}
	s.ownerMu.Unlock()
	return final, nil
}

// Count returns the number of live counters owned by the given identity.
func (s *Service) Count(owner sgx.Measurement) int {
	s.ownerMu.Lock()
	defer s.ownerMu.Unlock()
	return s.perOwner[owner]
}

// TotalLive returns the number of live counters on the machine.
func (s *Service) TotalLive() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.counters)
		sh.mu.Unlock()
	}
	return n
}
