// Package pse simulates the Intel Platform Services Enclave's monotonic
// counter facility (paper §II-A5): up to 256 hardware-backed counters per
// enclave identity, addressed by a UUID consisting of a counter ID and a
// nonce. Counters are maintained by platform firmware (the Intel
// Management Engine), which makes them
//
//   - machine-local: they do not exist on any other machine,
//   - monotonic: they can never be decremented,
//   - non-recreatable: a destroyed counter's UUID can never be reissued,
//     so an attacker cannot destroy a counter and mint a fresh one with
//     the same identifier but a lower value, and
//   - slow: every operation is a rate-limited firmware transaction, which
//     dominates the costs in the paper's Figure 3.
//
// The service survives both enclave restarts and machine reboots, exactly
// like the ME-backed counters it models.
package pse

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"

	"repro/internal/sgx"
	"repro/internal/sim"
	"repro/internal/xcrypto"
)

// MaxCounters is the per-enclave-identity counter limit (256 on SGX).
const MaxCounters = 256

// Counter service errors.
var (
	ErrCounterNotFound = errors.New("pse: counter does not exist")
	ErrCounterLimit    = errors.New("pse: counter limit reached")
	ErrNotOwner        = errors.New("pse: counter owned by a different enclave")
	ErrCounterOverflow = errors.New("pse: counter value overflow")
	ErrUUIDReuse       = errors.New("pse: counter UUID was destroyed and cannot be reused")
)

// UUID identifies a monotonic counter: the counter ID names it, the nonce
// proves the caller created it (paper §II-A5).
type UUID struct {
	ID    uint32
	Nonce [16]byte
}

// String renders the UUID for diagnostics.
func (u UUID) String() string { return fmt.Sprintf("ctr-%d-%x", u.ID, u.Nonce[:4]) }

// counter is one firmware-held monotonic counter.
type counter struct {
	uuid  UUID
	owner sgx.Measurement
	value uint32
}

// Service is the per-machine Platform Services counter manager.
// It is safe for concurrent use.
type Service struct {
	lat *sim.Latency

	mu        sync.Mutex
	counters  map[uint32]*counter
	perOwner  map[sgx.Measurement]int
	nextID    uint32
	destroyed map[uint32]bool
}

// NewService creates the counter service for one machine.
func NewService(lat *sim.Latency) *Service {
	return &Service{
		lat:       lat,
		counters:  make(map[uint32]*counter),
		perOwner:  make(map[sgx.Measurement]int),
		destroyed: make(map[uint32]bool),
	}
}

// Create allocates a fresh monotonic counter for the calling enclave with
// initial value 0 and returns its UUID and value.
func (s *Service) Create(e *sgx.Enclave) (UUID, uint32, error) {
	if err := e.ECall(); err != nil {
		return UUID{}, 0, err
	}
	s.lat.Charge(sim.OpCounterCreate)
	s.mu.Lock()
	defer s.mu.Unlock()
	owner := e.MREnclave()
	if s.perOwner[owner] >= MaxCounters {
		return UUID{}, 0, ErrCounterLimit
	}
	nonce, err := xcrypto.RandomBytes(16)
	if err != nil {
		return UUID{}, 0, fmt.Errorf("counter nonce: %w", err)
	}
	s.nextID++
	c := &counter{owner: owner}
	c.uuid.ID = s.nextID
	copy(c.uuid.Nonce[:], nonce)
	s.counters[c.uuid.ID] = c
	s.perOwner[owner]++
	return c.uuid, c.value, nil
}

// lookup fetches a counter, enforcing UUID (ID+nonce) and owner checks.
func (s *Service) lookup(e *sgx.Enclave, uuid UUID) (*counter, error) {
	if s.destroyed[uuid.ID] {
		return nil, ErrCounterNotFound
	}
	c, ok := s.counters[uuid.ID]
	if !ok {
		return nil, ErrCounterNotFound
	}
	if subtle.ConstantTimeCompare(c.uuid.Nonce[:], uuid.Nonce[:]) != 1 {
		// Wrong nonce: the caller did not create this counter. Report
		// not-found rather than leaking its existence.
		return nil, ErrCounterNotFound
	}
	if c.owner != e.MREnclave() {
		return nil, ErrNotOwner
	}
	return c, nil
}

// Read returns the current counter value.
func (s *Service) Read(e *sgx.Enclave, uuid UUID) (uint32, error) {
	if err := e.ECall(); err != nil {
		return 0, err
	}
	s.lat.Charge(sim.OpCounterRead)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.lookup(e, uuid)
	if err != nil {
		return 0, err
	}
	return c.value, nil
}

// Increment adds one to the counter and returns the new value. The
// firmware guarantees the counter can never go backwards.
func (s *Service) Increment(e *sgx.Enclave, uuid UUID) (uint32, error) {
	if err := e.ECall(); err != nil {
		return 0, err
	}
	s.lat.Charge(sim.OpCounterIncrement)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.lookup(e, uuid)
	if err != nil {
		return 0, err
	}
	if c.value == ^uint32(0) {
		return 0, ErrCounterOverflow
	}
	c.value++
	return c.value, nil
}

// Destroy permanently removes a counter. Its UUID can never be reused:
// any later access fails, which is the property the Migration Library's
// fork prevention rests on (paper §VI-B).
func (s *Service) Destroy(e *sgx.Enclave, uuid UUID) error {
	if err := e.ECall(); err != nil {
		return err
	}
	s.lat.Charge(sim.OpCounterDestroy)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.lookup(e, uuid)
	if err != nil {
		return err
	}
	delete(s.counters, uuid.ID)
	s.destroyed[uuid.ID] = true
	s.perOwner[c.owner]--
	return nil
}

// Count returns the number of live counters owned by the given identity.
func (s *Service) Count(owner sgx.Measurement) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perOwner[owner]
}

// TotalLive returns the number of live counters on the machine.
func (s *Service) TotalLive() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.counters)
}
