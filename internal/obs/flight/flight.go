// Package flight is the fleet's black-box flight recorder. The passive
// telemetry rings (internal/obs) evict old spans and events, so by the
// time a human investigates an incident the evidence is usually gone;
// this package captures a self-contained, tagged+versioned binary bundle
// — recent spans and audit events, the open-span set, a full metrics
// snapshot, SLO verdicts, health states, and the fleet journal tail — at
// the exact moment a trigger fires: an SLO violation, a security audit
// event, a chaos invariant breach, a fleet plan failure, or an entity
// reaching critical health.
//
// Bundles decode with the same hostile-input discipline as the rest of
// the repo's wire formats (wirec length clamps, fuzzed decoder): a black
// box pulled off a crashed deployment must never be able to crash the
// tool reading it.
package flight

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/wirec"
)

// Trigger kinds.
const (
	TriggerSLOViolation   = "slo-violation"
	TriggerSecurityEvent  = "security-event"
	TriggerChaosViolation = "chaos-violation"
	TriggerPlanFailure    = "plan-failure"
	TriggerHealthCritical = "health-critical"
	TriggerManual         = "manual"
)

// Trigger records why a bundle was captured.
type Trigger struct {
	// Kind is one of the Trigger* constants.
	Kind string `json:"kind"`
	// Actor is the component that tripped the recorder.
	Actor string `json:"actor,omitempty"`
	// Detail is free-form context (the violated objective, the audit
	// event detail, the failed plan).
	Detail string `json:"detail,omitempty"`
	// UnixNs is the trigger instant.
	UnixNs int64 `json:"unix_ns"`
}

// SLOVerdict is one objective's evaluation at capture time (a flattened
// copy of analyze.Verdict — flight cannot import analyze, which imports
// flight).
type SLOVerdict struct {
	Name     string `json:"name"`
	Metric   string `json:"metric"`
	ActualNs int64  `json:"actual_ns"`
	MaxNs    int64  `json:"max_ns"`
	Violated bool   `json:"violated"`
	Missing  bool   `json:"missing,omitempty"`
}

// Bundle is one black-box capture.
type Bundle struct {
	// CreatedUnixNs is the capture instant.
	CreatedUnixNs int64 `json:"created_unix_ns"`
	// Trigger is why the capture happened.
	Trigger Trigger `json:"trigger"`
	// Note is optional operator context.
	Note string `json:"note,omitempty"`
	// Health is the per-entity state set at capture time.
	Health []health.EntityHealth `json:"health,omitempty"`
	// Spans is the tail of the finished-span ring (most recent last).
	Spans []obs.Span `json:"spans,omitempty"`
	// Open is the in-flight span set — what was still running when the
	// trigger fired.
	Open []obs.OpenSpan `json:"open,omitempty"`
	// Events is the tail of the audit event ring.
	Events []obs.AuditEvent `json:"events,omitempty"`
	// Metrics is the full registry snapshot.
	Metrics obs.Snapshot `json:"metrics"`
	// SLO is the most recent objective evaluation.
	SLO []SLOVerdict `json:"slo,omitempty"`
	// Journal is an opaque encoded fleet journal tail
	// (fleet.DecodeJournal reads it); empty when no planner is attached.
	Journal []byte `json:"journal,omitempty"`
}

// CaptureOpts bounds and enriches a capture.
type CaptureOpts struct {
	// MaxSpans / MaxEvents bound how much ring tail the bundle carries
	// (defaults 512 each; <0 means none).
	MaxSpans  int
	MaxEvents int
	// Health, SLO, Journal, Note are attached verbatim.
	Health  []health.EntityHealth
	SLO     []SLOVerdict
	Journal []byte
	Note    string
}

// Capture snapshots o into a bundle. now is the capture instant; a zero
// trig.UnixNs is stamped with it.
func Capture(o *obs.Observer, trig Trigger, now time.Time, opts CaptureOpts) *Bundle {
	if trig.UnixNs == 0 {
		trig.UnixNs = now.UnixNano()
	}
	if opts.MaxSpans == 0 {
		opts.MaxSpans = 512
	}
	if opts.MaxEvents == 0 {
		opts.MaxEvents = 512
	}
	b := &Bundle{
		CreatedUnixNs: now.UnixNano(),
		Trigger:       trig,
		Note:          opts.Note,
		Health:        opts.Health,
		SLO:           opts.SLO,
		Journal:       opts.Journal,
	}
	if o != nil {
		spans := o.Tracer.Spans()
		if opts.MaxSpans > 0 && len(spans) > opts.MaxSpans {
			spans = spans[len(spans)-opts.MaxSpans:]
		} else if opts.MaxSpans < 0 {
			spans = nil
		}
		b.Spans = spans
		b.Open = o.Tracer.OpenSpans()
		events := o.Events.Events()
		if opts.MaxEvents > 0 && len(events) > opts.MaxEvents {
			events = events[len(events)-opts.MaxEvents:]
		} else if opts.MaxEvents < 0 {
			events = nil
		}
		b.Events = events
		b.Metrics = o.M().Snapshot()
	}
	return b
}

// Flight bundle codec: tag 0xBF version 1 (0xB* block: obs). Versioned
// so a future layout change stays readable next to archived bundles.
const (
	tagFlightBundle     byte = 0xBF
	flightBundleVersion byte = 1
)

// ErrBundleFormat reports malformed or truncated bundle bytes.
var ErrBundleFormat = errors.New("flight: malformed bundle")

const (
	sloFlagViolated byte = 1 << 0
	sloFlagMissing  byte = 1 << 1
)

// sortedKeys returns map keys in sorted order so encoding is
// deterministic (byte-identical bundles for identical state).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Encode serializes the bundle.
func (b *Bundle) Encode() []byte {
	out := make([]byte, 0, 4096)
	out = wirec.AppendHeader(out, tagFlightBundle, flightBundleVersion)
	out = wirec.AppendU64(out, uint64(b.CreatedUnixNs))
	out = wirec.AppendString(out, b.Trigger.Kind)
	out = wirec.AppendString(out, b.Trigger.Actor)
	out = wirec.AppendString(out, b.Trigger.Detail)
	out = wirec.AppendU64(out, uint64(b.Trigger.UnixNs))
	out = wirec.AppendString(out, b.Note)

	out = wirec.AppendU32(out, uint32(len(b.Health)))
	for _, h := range b.Health {
		out = wirec.AppendString(out, h.Kind)
		out = wirec.AppendString(out, h.Name)
		out = append(out, byte(h.State))
		out = wirec.AppendString(out, h.Reason)
		out = wirec.AppendU64(out, uint64(h.Since.UnixNano()))
	}

	out = wirec.AppendU32(out, uint32(len(b.Spans)))
	for _, sp := range b.Spans {
		out = wirec.AppendString(out, sp.Name)
		out = wirec.AppendString(out, sp.Site)
		out = wirec.AppendU64(out, sp.TraceID)
		out = wirec.AppendU64(out, sp.SpanID)
		out = wirec.AppendU64(out, sp.ParentID)
		out = wirec.AppendU64(out, uint64(sp.Start.UnixNano()))
		out = wirec.AppendU64(out, uint64(sp.Dur))
	}

	out = wirec.AppendU32(out, uint32(len(b.Open)))
	for _, sp := range b.Open {
		out = wirec.AppendString(out, sp.Name)
		out = wirec.AppendU64(out, sp.TraceID)
		out = wirec.AppendU64(out, sp.SpanID)
		out = wirec.AppendU64(out, sp.ParentID)
		out = wirec.AppendU64(out, uint64(sp.Start.UnixNano()))
	}

	var events []byte
	for _, e := range b.Events {
		events = append(events, e.Encode()...)
	}
	out = wirec.AppendBytes(out, events)

	out = wirec.AppendU32(out, uint32(len(b.Metrics.Counters)))
	for _, k := range sortedKeys(b.Metrics.Counters) {
		out = wirec.AppendString(out, k)
		out = wirec.AppendU64(out, uint64(b.Metrics.Counters[k]))
	}
	out = wirec.AppendU32(out, uint32(len(b.Metrics.Gauges)))
	for _, k := range sortedKeys(b.Metrics.Gauges) {
		out = wirec.AppendString(out, k)
		out = wirec.AppendU64(out, uint64(b.Metrics.Gauges[k]))
	}
	out = wirec.AppendU32(out, uint32(len(b.Metrics.Histograms)))
	for _, k := range sortedKeys(b.Metrics.Histograms) {
		h := b.Metrics.Histograms[k]
		out = wirec.AppendString(out, k)
		out = wirec.AppendU64(out, uint64(h.Count))
		out = wirec.AppendU64(out, uint64(h.Sum))
		out = wirec.AppendU64(out, uint64(h.Mean))
		out = wirec.AppendU64(out, uint64(h.P50))
		out = wirec.AppendU64(out, uint64(h.P99))
		out = wirec.AppendU64(out, uint64(h.P999))
		out = wirec.AppendU64(out, uint64(h.Max))
	}

	out = wirec.AppendU32(out, uint32(len(b.SLO)))
	for _, v := range b.SLO {
		out = wirec.AppendString(out, v.Name)
		out = wirec.AppendString(out, v.Metric)
		out = wirec.AppendU64(out, uint64(v.ActualNs))
		out = wirec.AppendU64(out, uint64(v.MaxNs))
		var flags byte
		if v.Violated {
			flags |= sloFlagViolated
		}
		if v.Missing {
			flags |= sloFlagMissing
		}
		out = append(out, flags)
	}

	out = wirec.AppendBytes(out, b.Journal)
	return out
}

// DecodeBundle parses an encoded bundle. Every declared count is clamped
// against the remaining input before allocation, so hostile bytes can
// neither bomb the decoder nor make it allocate past the input size.
func DecodeBundle(raw []byte) (*Bundle, error) {
	rd := wirec.NewReader(raw)
	if !rd.Header(tagFlightBundle, flightBundleVersion) {
		return nil, fmt.Errorf("%w: %v", ErrBundleFormat, rd.Err())
	}
	var b Bundle
	b.CreatedUnixNs = int64(rd.U64())
	b.Trigger.Kind = rd.String()
	b.Trigger.Actor = rd.String()
	b.Trigger.Detail = rd.String()
	b.Trigger.UnixNs = int64(rd.U64())
	b.Note = rd.String()

	n := rd.U32()
	if !rd.CanHold(n, 4+4+1+4+8) {
		return nil, fmt.Errorf("%w: health count %d exceeds input", ErrBundleFormat, n)
	}
	if n > 0 {
		b.Health = make([]health.EntityHealth, 0, n)
		for i := uint32(0); i < n && rd.Err() == nil; i++ {
			var h health.EntityHealth
			h.Kind = rd.String()
			h.Name = rd.String()
			h.State = health.State(rd.U8())
			h.Reason = rd.String()
			h.Since = time.Unix(0, int64(rd.U64()))
			b.Health = append(b.Health, h)
		}
	}

	n = rd.U32()
	if !rd.CanHold(n, 4+4+5*8) {
		return nil, fmt.Errorf("%w: span count %d exceeds input", ErrBundleFormat, n)
	}
	if n > 0 {
		b.Spans = make([]obs.Span, 0, n)
		for i := uint32(0); i < n && rd.Err() == nil; i++ {
			var sp obs.Span
			sp.Name = rd.String()
			sp.Site = rd.String()
			sp.TraceID = rd.U64()
			sp.SpanID = rd.U64()
			sp.ParentID = rd.U64()
			sp.Start = time.Unix(0, int64(rd.U64()))
			sp.Dur = time.Duration(rd.U64())
			b.Spans = append(b.Spans, sp)
		}
	}

	n = rd.U32()
	if !rd.CanHold(n, 4+4*8) {
		return nil, fmt.Errorf("%w: open-span count %d exceeds input", ErrBundleFormat, n)
	}
	if n > 0 {
		b.Open = make([]obs.OpenSpan, 0, n)
		for i := uint32(0); i < n && rd.Err() == nil; i++ {
			var sp obs.OpenSpan
			sp.Name = rd.String()
			sp.TraceID = rd.U64()
			sp.SpanID = rd.U64()
			sp.ParentID = rd.U64()
			sp.Start = time.Unix(0, int64(rd.U64()))
			b.Open = append(b.Open, sp)
		}
	}

	if events := rd.Bytes(); rd.Err() == nil && len(events) > 0 {
		evs, err := obs.DecodeEvents(events)
		if err != nil {
			return nil, fmt.Errorf("%w: events: %v", ErrBundleFormat, err)
		}
		b.Events = evs
	}

	n = rd.U32()
	if !rd.CanHold(n, 4+8) {
		return nil, fmt.Errorf("%w: counter count %d exceeds input", ErrBundleFormat, n)
	}
	{
		b.Metrics.Counters = make(map[string]int64, n)
		for i := uint32(0); i < n && rd.Err() == nil; i++ {
			k := rd.String()
			b.Metrics.Counters[k] = int64(rd.U64())
		}
	}
	n = rd.U32()
	if !rd.CanHold(n, 4+8) {
		return nil, fmt.Errorf("%w: gauge count %d exceeds input", ErrBundleFormat, n)
	}
	{
		b.Metrics.Gauges = make(map[string]int64, n)
		for i := uint32(0); i < n && rd.Err() == nil; i++ {
			k := rd.String()
			b.Metrics.Gauges[k] = int64(rd.U64())
		}
	}
	n = rd.U32()
	if !rd.CanHold(n, 4+7*8) {
		return nil, fmt.Errorf("%w: histogram count %d exceeds input", ErrBundleFormat, n)
	}
	{
		b.Metrics.Histograms = make(map[string]obs.HistogramSnapshot, n)
		for i := uint32(0); i < n && rd.Err() == nil; i++ {
			k := rd.String()
			var h obs.HistogramSnapshot
			h.Count = int64(rd.U64())
			h.Sum = time.Duration(rd.U64())
			h.Mean = time.Duration(rd.U64())
			h.P50 = time.Duration(rd.U64())
			h.P99 = time.Duration(rd.U64())
			h.P999 = time.Duration(rd.U64())
			h.Max = time.Duration(rd.U64())
			b.Metrics.Histograms[k] = h
		}
	}

	n = rd.U32()
	if !rd.CanHold(n, 4+4+2*8+1) {
		return nil, fmt.Errorf("%w: slo count %d exceeds input", ErrBundleFormat, n)
	}
	if n > 0 {
		b.SLO = make([]SLOVerdict, 0, n)
		for i := uint32(0); i < n && rd.Err() == nil; i++ {
			var v SLOVerdict
			v.Name = rd.String()
			v.Metric = rd.String()
			v.ActualNs = int64(rd.U64())
			v.MaxNs = int64(rd.U64())
			flags := rd.U8()
			v.Violated = flags&sloFlagViolated != 0
			v.Missing = flags&sloFlagMissing != 0
			b.SLO = append(b.SLO, v)
		}
	}

	if j := rd.Bytes(); len(j) > 0 {
		b.Journal = append([]byte(nil), j...)
	}
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBundleFormat, err)
	}
	return &b, nil
}
