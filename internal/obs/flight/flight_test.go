package flight

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/health"
)

// populatedObserver builds an observer with finished spans, an open
// span, audit events, and every metric family — the capture fixture.
func populatedObserver() *obs.Observer {
	o := obs.NewObserver()
	root, tc := o.StartSpan("fleet.migrate", obs.TraceContext{})
	root.Site = "dc-a"
	child, _ := o.StartSpan("me.offer", tc)
	child.End()
	root.End()
	o.StartSpan("me.batch", obs.TraceContext{}) // stays open
	o.Event(obs.EventZombieRefused, "lib:abc", "probe refused", tc)
	o.Event(obs.EventSLOViolation, "slo:mirror-rpo-age", "age 6m > 5m", obs.TraceContext{})
	o.M().Add("wire.msgs", 42)
	o.M().SetGauge("mirror.dirty", 3)
	o.M().Histogram("fleet.migration.latency").Observe(15 * time.Millisecond)
	return o
}

func testBundle() *Bundle {
	o := populatedObserver()
	return Capture(o, Trigger{Kind: TriggerManual, Actor: "test", Detail: "fixture"},
		time.Unix(5000, 123), CaptureOpts{
			Health: []health.EntityHealth{
				{Kind: "mirror", Name: "escrow", State: health.Degraded, Reason: "rpo", Since: time.Unix(4000, 0)},
			},
			SLO: []SLOVerdict{
				{Name: "mirror-rpo-age", Metric: "mirror.flush.last_unix_ns", ActualNs: 360e9, MaxNs: 300e9, Violated: true},
				{Name: "p99-migration", Metric: "fleet.migration.latency", Missing: true},
			},
			Journal: []byte("journal-bytes"),
			Note:    "unit fixture",
		})
}

func TestBundleRoundTrip(t *testing.T) {
	b := testBundle()
	if len(b.Spans) == 0 || len(b.Open) == 0 || len(b.Events) == 0 {
		t.Fatalf("fixture capture incomplete: %d spans %d open %d events", len(b.Spans), len(b.Open), len(b.Events))
	}
	raw := b.Encode()
	got, err := DecodeBundle(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	if got.CreatedUnixNs != b.CreatedUnixNs || got.Trigger != b.Trigger || got.Note != b.Note {
		t.Errorf("header mismatch: %+v vs %+v", got.Trigger, b.Trigger)
	}
	if len(got.Health) != 1 || got.Health[0].State != health.Degraded ||
		got.Health[0].Reason != "rpo" || !got.Health[0].Since.Equal(b.Health[0].Since) {
		t.Errorf("health mismatch: %+v", got.Health)
	}
	if len(got.Spans) != len(b.Spans) {
		t.Fatalf("span count %d, want %d", len(got.Spans), len(b.Spans))
	}
	for i := range b.Spans {
		w, g := b.Spans[i], got.Spans[i]
		if g.Name != w.Name || g.Site != w.Site || g.TraceID != w.TraceID ||
			g.SpanID != w.SpanID || g.ParentID != w.ParentID ||
			!g.Start.Equal(w.Start) || g.Dur != w.Dur {
			t.Errorf("span %d mismatch: %+v vs %+v", i, g, w)
		}
	}
	if len(got.Open) != 1 || got.Open[0].Name != "me.batch" {
		t.Errorf("open spans mismatch: %+v", got.Open)
	}
	if len(got.Events) != len(b.Events) {
		t.Fatalf("event count %d, want %d", len(got.Events), len(b.Events))
	}
	for i := range b.Events {
		if got.Events[i].Type != b.Events[i].Type || got.Events[i].Actor != b.Events[i].Actor ||
			got.Events[i].Detail != b.Events[i].Detail {
			t.Errorf("event %d mismatch: %+v vs %+v", i, got.Events[i], b.Events[i])
		}
	}
	if !reflect.DeepEqual(got.Metrics.Counters, b.Metrics.Counters) ||
		!reflect.DeepEqual(got.Metrics.Gauges, b.Metrics.Gauges) {
		t.Error("metric registries did not round-trip")
	}
	if !reflect.DeepEqual(got.Metrics.Histograms, b.Metrics.Histograms) {
		t.Errorf("histogram snapshots mismatch: %+v vs %+v", got.Metrics.Histograms, b.Metrics.Histograms)
	}
	if !reflect.DeepEqual(got.SLO, b.SLO) {
		t.Errorf("slo mismatch: %+v vs %+v", got.SLO, b.SLO)
	}
	if !bytes.Equal(got.Journal, b.Journal) {
		t.Errorf("journal mismatch: %q", got.Journal)
	}
}

func TestBundleEncodeDeterministic(t *testing.T) {
	b := testBundle()
	if !bytes.Equal(b.Encode(), b.Encode()) {
		t.Error("two encodings of the same bundle differ (map iteration leaked in)")
	}
}

func TestDecodeBundleCorruption(t *testing.T) {
	raw := testBundle().Encode()
	cases := map[string][]byte{
		"empty":     {},
		"bad tag":   append([]byte{0x00}, raw[1:]...),
		"truncated": raw[:len(raw)/2],
		"one byte":  raw[:1],
	}
	// Hostile counts: splice a huge health count right after the header
	// fields; the decoder must refuse rather than allocate.
	for name, c := range cases {
		if _, err := DecodeBundle(c); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	// Every truncation point must error or parse — never panic.
	for i := 0; i < len(raw); i += 7 {
		_, _ = DecodeBundle(raw[:i])
	}
	// Single-byte flips must never panic (errors are fine; a flip inside
	// a string payload may legitimately still parse).
	for i := 0; i < len(raw); i += 11 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xFF
		_, _ = DecodeBundle(mut)
	}
}

func TestCaptureBounds(t *testing.T) {
	o := obs.NewObserver()
	for i := 0; i < 20; i++ {
		sp, tc := o.StartSpan("op", obs.TraceContext{})
		sp.End()
		o.Event("audit-test", "actor", "d", tc)
	}
	b := Capture(o, Trigger{Kind: TriggerManual}, time.Unix(1, 0), CaptureOpts{MaxSpans: 5, MaxEvents: 3})
	if len(b.Spans) != 5 {
		t.Errorf("MaxSpans=5 kept %d spans", len(b.Spans))
	}
	if len(b.Events) != 3 {
		t.Errorf("MaxEvents=3 kept %d events", len(b.Events))
	}
	none := Capture(o, Trigger{Kind: TriggerManual}, time.Unix(1, 0), CaptureOpts{MaxSpans: -1, MaxEvents: -1})
	if len(none.Spans) != 0 || len(none.Events) != 0 {
		t.Errorf("negative bounds kept %d spans %d events", len(none.Spans), len(none.Events))
	}
}

func TestRecorderTripPersistsAndServesLatest(t *testing.T) {
	o := populatedObserver()
	dir := t.TempDir()
	r := NewRecorder(o)
	r.SetDir(dir, 2)
	for i := 0; i < 4; i++ {
		if _, err := r.Trip(Trigger{Kind: TriggerManual, Detail: "t"}); err != nil {
			t.Fatalf("trip %d: %v", i, err)
		}
	}
	if got := r.Trips(); got != 4 {
		t.Errorf("Trips = %d, want 4", got)
	}
	files, err := filepath.Glob(filepath.Join(dir, "flight-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Errorf("keep=2 left %d bundle files: %v", len(files), files)
	}
	b, raw := r.Latest()
	if b == nil || len(raw) == 0 {
		t.Fatal("Latest returned nothing after trips")
	}
	back, err := DecodeBundle(raw)
	if err != nil {
		t.Fatalf("latest bundle does not decode: %v", err)
	}
	if back.Trigger.Kind != TriggerManual {
		t.Errorf("latest trigger = %q", back.Trigger.Kind)
	}
	snap := o.M().Snapshot()
	if snap.Counters["flight.bundles"] != 4 {
		t.Errorf("flight.bundles = %d, want 4", snap.Counters["flight.bundles"])
	}
	if snap.Gauges["flight.last_unix_ns"] == 0 {
		t.Error("flight.last_unix_ns gauge not stamped")
	}
}

// TestRecorderScanTriggers drives the audit-scan path: an SLO violation
// event trips a capture, the cursor advances (no double-trip on the same
// event), and the recorder's own flight-recorded event never retriggers.
func TestRecorderScanTriggers(t *testing.T) {
	o := obs.NewObserver()
	r := NewRecorder(o)
	r.SetMinInterval(0)
	if b := r.Scan(); b != nil {
		t.Fatal("scan with no events captured a bundle")
	}
	o.Event(obs.EventSLOViolation, "slo:p99", "exceeded", obs.TraceContext{})
	b := r.Scan()
	if b == nil {
		t.Fatal("scan missed the SLO violation")
	}
	if b.Trigger.Kind != TriggerSLOViolation {
		t.Errorf("trigger = %q, want %q", b.Trigger.Kind, TriggerSLOViolation)
	}
	if again := r.Scan(); again != nil {
		t.Errorf("same event tripped twice: %+v", again.Trigger)
	}

	o.Event(obs.EventHealthChanged, "health:link/wan-1", "degraded->critical: link down", obs.TraceContext{})
	b = r.Scan()
	if b == nil || b.Trigger.Kind != TriggerHealthCritical {
		t.Fatalf("health-critical transition not captured: %+v", b)
	}
	// A degraded (non-critical) transition is not a trigger.
	o.Event(obs.EventHealthChanged, "health:link/wan-1", "healthy->degraded: loss", obs.TraceContext{})
	if b := r.Scan(); b != nil {
		t.Errorf("non-critical health change tripped the recorder: %+v", b.Trigger)
	}

	o.Event(obs.EventZombieRefused, "lib:abc", "refused", obs.TraceContext{})
	b = r.Scan()
	if b == nil || b.Trigger.Kind != TriggerSecurityEvent {
		t.Fatalf("security event not captured: %+v", b)
	}
}

func TestRecorderScanThrottle(t *testing.T) {
	o := obs.NewObserver()
	r := NewRecorder(o)
	r.SetMinInterval(time.Hour)
	o.Event(obs.EventSLOViolation, "slo:a", "x", obs.TraceContext{})
	if b := r.Scan(); b == nil {
		t.Fatal("first scan should capture")
	}
	o.Event(obs.EventSLOViolation, "slo:b", "y", obs.TraceContext{})
	if b := r.Scan(); b != nil {
		t.Error("second capture inside min-interval should be throttled")
	}
}

func FuzzDecodeBundle(f *testing.F) {
	f.Add([]byte{})
	f.Add(testBundle().Encode())
	f.Add(Capture(nil, Trigger{Kind: TriggerManual}, time.Unix(1, 0), CaptureOpts{}).Encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		b, err := DecodeBundle(raw)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode again cleanly.
		if _, err := DecodeBundle(b.Encode()); err != nil {
			t.Fatalf("re-decode of re-encoded bundle failed: %v", err)
		}
	})
}
