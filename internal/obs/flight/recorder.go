package flight

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/health"
)

// Recorder owns the trigger policy: it watches the audit stream for
// trip-worthy events, rate-limits captures, keeps the latest bundle in
// memory (served at /flight), and optionally persists bundles to disk.
type Recorder struct {
	mu sync.Mutex

	obs  *obs.Observer
	dir  string
	keep int
	// minInterval throttles Scan-driven captures; explicit Trip calls
	// always capture.
	minInterval time.Duration

	// Providers enrich captures with state the observer cannot see.
	healthFn  func() []health.EntityHealth
	journalFn func() []byte
	lastSLO   []SLOVerdict

	// cursor is the next audit Seq to scan; it starts at 0 so violations
	// recorded before the recorder attached still trip it.
	cursor   uint64
	lastScan time.Time
	latestRaw  []byte
	latest     *Bundle
	trips      int64
}

// NewRecorder creates a recorder over o that keeps bundles in memory
// only. Attach a directory with SetDir to persist them.
func NewRecorder(o *obs.Observer) *Recorder {
	return &Recorder{obs: o, keep: 16, minInterval: 10 * time.Second}
}

// SetDir makes the recorder persist each bundle as
// <dir>/flight-<unixns>-<kind>.bin, pruning to the newest keep files
// (keep <= 0 keeps the default 16).
func (r *Recorder) SetDir(dir string, keep int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.dir = dir
	if keep > 0 {
		r.keep = keep
	}
	r.mu.Unlock()
}

// SetMinInterval tunes the Scan-driven capture throttle (0 disables it;
// tests use that to trip repeatedly).
func (r *Recorder) SetMinInterval(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.minInterval = d
	r.mu.Unlock()
}

// SetHealthProvider attaches the health plane so captures embed the
// entity states at trigger time.
func (r *Recorder) SetHealthProvider(fn func() []health.EntityHealth) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.healthFn = fn
	r.mu.Unlock()
}

// SetJournalProvider attaches the fleet journal tail source.
func (r *Recorder) SetJournalProvider(fn func() []byte) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.journalFn = fn
	r.mu.Unlock()
}

// NoteSLO stores the most recent objective evaluation for embedding in
// future captures (the analyze Plane calls this every Refresh).
func (r *Recorder) NoteSLO(v []SLOVerdict) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.lastSLO = v
	r.mu.Unlock()
}

// Trips returns how many bundles the recorder has captured.
func (r *Recorder) Trips() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trips
}

// Latest returns the most recent bundle and its encoding (nil before the
// first trip).
func (r *Recorder) Latest() (*Bundle, []byte) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.latest, r.latestRaw
}

// Trip captures a bundle for trig immediately (no throttle) and returns
// it. The capture itself is announced on the audit stream as a
// flight-recorded event — which Scan deliberately does not treat as a
// trigger.
func (r *Recorder) Trip(trig Trigger) (*Bundle, error) {
	if r == nil {
		return nil, nil
	}
	return r.capture(trig, time.Now())
}

func (r *Recorder) capture(trig Trigger, now time.Time) (*Bundle, error) {
	r.mu.Lock()
	opts := CaptureOpts{SLO: r.lastSLO}
	if r.healthFn != nil {
		opts.Health = r.healthFn()
	}
	if r.journalFn != nil {
		opts.Journal = r.journalFn()
	}
	dir, keep := r.dir, r.keep
	r.mu.Unlock()

	b := Capture(r.obs, trig, now, opts)
	raw := b.Encode()

	var path string
	var err error
	if dir != "" {
		path = filepath.Join(dir, fmt.Sprintf("flight-%d-%s.bin", b.CreatedUnixNs, sanitizeKind(trig.Kind)))
		err = os.WriteFile(path, raw, 0o644)
		if err == nil {
			pruneBundles(dir, keep)
		}
	}

	r.mu.Lock()
	r.latest, r.latestRaw = b, raw
	r.trips++
	r.lastScan = now
	r.mu.Unlock()

	if r.obs != nil {
		detail := trig.Kind
		if trig.Detail != "" {
			detail += ": " + trig.Detail
		}
		if path != "" {
			detail += " -> " + path
		}
		r.obs.Event(obs.EventFlightRecorded, "flight", detail, obs.TraceContext{})
		// Named without a .total suffix: the OpenMetrics exporter appends
		// _total to counters, so this surfaces as flight_bundles_total.
		r.obs.M().Add("flight.bundles", 1)
		r.obs.M().SetGauge("flight.last_unix_ns", b.CreatedUnixNs)
		r.obs.M().SetGauge("flight.bytes", int64(len(raw)))
	}
	return b, err
}

func sanitizeKind(kind string) string {
	if kind == "" {
		return "manual"
	}
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			return c
		default:
			return '-'
		}
	}, strings.ToLower(kind))
}

// pruneBundles deletes all but the newest keep flight-*.bin files in dir
// (names sort chronologically because they embed the capture unix-nanos).
func pruneBundles(dir string, keep int) {
	names, err := filepath.Glob(filepath.Join(dir, "flight-*.bin"))
	if err != nil || len(names) <= keep {
		return
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-keep] {
		os.Remove(n)
	}
}

// scanTriggers maps audit event types to the trigger kind they imply.
func scanTrigger(ev obs.AuditEvent) (string, bool) {
	switch ev.Type {
	case obs.EventZombieRefused, obs.EventSiteLossFailover, obs.EventGrantRevoked:
		return TriggerSecurityEvent, true
	case obs.EventSLOViolation:
		return TriggerSLOViolation, true
	case obs.EventHealthChanged:
		if strings.Contains(ev.Detail, "->critical") {
			return TriggerHealthCritical, true
		}
	}
	return "", false
}

// Scan walks the audit stream appended since the previous call and trips
// on the first capture-worthy event: a security event (zombie-refused,
// site-loss failover, grant revocation), an SLO violation, or an entity
// reaching critical health. Scan-driven captures are throttled to one
// per minInterval so a persistent violation cannot churn bundles. The
// analyze Plane calls this from Refresh, i.e. on every scrape.
func (r *Recorder) Scan() *Bundle {
	if r == nil || r.obs == nil {
		return nil
	}
	r.mu.Lock()
	events := r.obs.Events.Events()
	cursor := r.cursor
	throttled := r.minInterval > 0 && !r.lastScan.IsZero() && time.Since(r.lastScan) < r.minInterval
	r.mu.Unlock()

	var hit *obs.AuditEvent
	var kind string
	for i := range events {
		ev := events[i]
		if ev.Seq < cursor {
			continue
		}
		if k, ok := scanTrigger(ev); ok && hit == nil {
			hit, kind = &events[i], k
		}
	}
	r.mu.Lock()
	if len(events) > 0 {
		r.cursor = events[len(events)-1].Seq + 1
	}
	r.mu.Unlock()
	if hit == nil || throttled {
		return nil
	}
	b, _ := r.capture(Trigger{
		Kind:   kind,
		Actor:  hit.Actor,
		Detail: hit.Type + ": " + hit.Detail,
		UnixNs: 0,
	}, time.Now())
	return b
}
