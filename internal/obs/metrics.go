package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil *Counter ignores updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric. A nil *Gauge ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the stored value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed exponential bucket layout shared by every
// histogram: bucket i covers values < histBound(i), doubling from 256 ns
// to ~9.4 hours, with a final overflow bucket. Fixed buckets keep
// Observe to one atomic add with no allocation or locking.
const (
	histBuckets   = 48
	histFirstBand = 256 // ns; bucket 0 covers [0, 256)
)

// histBound returns the exclusive upper bound of bucket i in nanoseconds.
func histBound(i int) int64 {
	return histFirstBand << uint(i)
}

// bucketFor locates the bucket for a nanosecond observation.
func bucketFor(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := 0
	for bound := int64(histFirstBand); b < histBuckets-1 && ns >= bound; b++ {
		bound <<= 1
	}
	return b
}

// Histogram is a fixed-bucket latency histogram recording durations in
// nanoseconds. Observe is lock-free (one atomic add per bucket plus the
// count/sum tallies). A nil *Histogram ignores observations.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	h.buckets[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket. With no observations it returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo := int64(0)
			if i > 0 {
				lo = histBound(i - 1)
			}
			hi := histBound(i)
			if i == histBuckets-1 {
				hi = lo * 2 // unbounded overflow bucket: extrapolate one band
			}
			// Interpolate the rank's position within the bucket.
			frac := float64(rank-seen) / float64(n)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		seen += n
	}
	return time.Duration(histBound(histBuckets - 1))
}

// HistogramSnapshot is the exported view of one histogram.
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_bound_ns"` // upper bound of highest occupied bucket
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / time.Duration(s.Count)
	}
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			s.Max = time.Duration(histBound(i))
			break
		}
	}
	return s
}

// Metrics is the registry: named counters, gauges, and histograms.
// Lookup takes one sync.Map load; callers on hot paths should cache the
// returned handle instead of re-resolving the name per operation. A nil
// *Metrics hands out nil handles, which ignore updates — disabled
// instrumentation costs only the nil checks.
type Metrics struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter returns (creating if needed) the named counter.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	if v, ok := m.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := m.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns (creating if needed) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	if v, ok := m.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := m.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns (creating if needed) the named histogram.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	if v, ok := m.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := m.hists.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// Add is shorthand for Counter(name).Add(n).
func (m *Metrics) Add(name string, n int64) { m.Counter(name).Add(n) }

// SetGauge is shorthand for Gauge(name).Set(n).
func (m *Metrics) SetGauge(name string, n int64) { m.Gauge(name).Set(n) }

// ObserveSince records the elapsed time since start into the named
// histogram.
func (m *Metrics) ObserveSince(name string, start time.Time) {
	if m == nil {
		return
	}
	m.Histogram(name).Observe(time.Since(start))
}

// Snapshot is a point-in-time JSON-serializable export of the registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports every metric currently registered.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if m == nil {
		return s
	}
	m.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	m.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	m.hists.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return s
}

// CounterNames returns the sorted names of all registered counters
// (stable iteration for reports).
func (m *Metrics) CounterNames() []string {
	if m == nil {
		return nil
	}
	var names []string
	m.counters.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}
