package obs

import (
	"bytes"
	"testing"
)

func TestInjectExtractRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xDEADBEEFCAFE, SpanID: 42}
	payload := []byte("sealed migration data")
	wire := Inject(tc, payload)
	if len(wire) != traceEnvelopeLen+len(payload) {
		t.Fatalf("envelope length = %d, want %d", len(wire), traceEnvelopeLen+len(payload))
	}
	got, inner := Extract(wire)
	if got != tc {
		t.Fatalf("extracted %+v, want %+v", got, tc)
	}
	if !bytes.Equal(inner, payload) {
		t.Fatalf("inner payload corrupted: %q", inner)
	}
}

func TestInjectZeroContextIsIdentity(t *testing.T) {
	payload := []byte("plain")
	wire := Inject(TraceContext{}, payload)
	if &wire[0] != &payload[0] {
		t.Fatal("zero-context Inject must return the payload unchanged, no copy")
	}
}

func TestExtractPassesThroughUnwrappedPayloads(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		{},
		[]byte("short"),
		bytes.Repeat([]byte{0xD7}, traceEnvelopeLen+4), // first magic byte, wrong rest
		make([]byte, traceEnvelopeLen),                 // right length, zero bytes
	} {
		tc, inner := Extract(payload)
		if tc.Valid() {
			t.Fatalf("payload %x misdetected as envelope", payload)
		}
		if !bytes.Equal(inner, payload) {
			t.Fatalf("payload %x altered by Extract", payload)
		}
	}
}

func TestTraceMarshalRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 7, SpanID: 9}
	if got := UnmarshalTrace(tc.Marshal()); got != tc {
		t.Fatalf("round trip = %+v, want %+v", got, tc)
	}
	if raw := (TraceContext{}).Marshal(); raw != nil {
		t.Fatalf("zero context Marshal = %x, want nil", raw)
	}
	if got := UnmarshalTrace([]byte("not sixteen")); got.Valid() {
		t.Fatalf("malformed input decoded to %+v", got)
	}
}

func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer()
	root, rootTC := tr.StartSpan("migrate", TraceContext{})
	if !rootTC.Valid() {
		t.Fatal("root span did not allocate a trace ID")
	}
	child, childTC := tr.StartSpan("freeze", rootTC)
	if childTC.TraceID != rootTC.TraceID {
		t.Fatal("child span left the trace")
	}
	child.End()
	child.End() // idempotent
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(spans))
	}
	if spans[0].Name != "freeze" || spans[0].ParentID != root.SpanID {
		t.Fatalf("child span wrong: %+v", spans[0])
	}
	if spans[1].ParentID != 0 {
		t.Fatalf("root span has parent %d", spans[1].ParentID)
	}
	byTrace := tr.ByTrace()
	if len(byTrace) != 1 || len(byTrace[rootTC.TraceID]) != 2 {
		t.Fatalf("ByTrace grouping wrong: %v", byTrace)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp, tc := tr.StartSpan("x", TraceContext{TraceID: 3, SpanID: 1})
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	if tc != (TraceContext{TraceID: 3, SpanID: 1}) {
		t.Fatal("nil tracer did not propagate the parent context")
	}
	sp.End()
	tr.Reset()
	_ = tr.Spans()
	_ = tr.Len()

	var m *Metrics
	m.Counter("c").Add(1)
	m.Gauge("g").Set(2)
	m.Histogram("h").Observe(3)
	m.Add("c", 1)
	m.SetGauge("g", 1)
	_ = m.Snapshot()
	_ = m.CounterNames()

	var l *EventLog
	l.Append(EventFreeze, "a", "d", TraceContext{})
	_ = l.Events()
	_ = l.Encode()

	var o *Observer
	sp, _ = o.StartSpan("x", TraceContext{})
	sp.End()
	o.Event(EventFreeze, "a", "d", TraceContext{})
	o.M().Add("c", 1)
}

func TestEventCodecRoundTrip(t *testing.T) {
	log := NewEventLog()
	log.Append(EventFreeze, "lib:abc", "frozen for migration", TraceContext{TraceID: 11, SpanID: 4})
	log.Append(EventBindingWin, "lib:def", "", TraceContext{})
	log.Append(EventResurrection, "", "restored", TraceContext{TraceID: 99})

	decoded, err := DecodeEvents(log.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	events := log.Events()
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	for i := range events {
		if decoded[i] != events[i] {
			t.Fatalf("event %d: decoded %+v, want %+v", i, decoded[i], events[i])
		}
	}
	if events[2].Seq != 2 {
		t.Fatalf("sequence numbering broken: %+v", events[2])
	}
}

func TestEventCodecRejectsCorruption(t *testing.T) {
	log := NewEventLog()
	log.Append(EventFreeze, "actor", "detail", TraceContext{})
	raw := log.Encode()

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:len(b)-3] },
		"bad tag":     func(b []byte) []byte { b[0] = 0xEE; return b },
		"bad version": func(b []byte) []byte { b[1] = 0x7F; return b },
		"huge length": func(b []byte) []byte {
			// Overwrite the type-string length with an absurd value.
			copy(b[10:14], []byte{0xFF, 0xFF, 0xFF, 0xFF})
			return b
		},
	} {
		mutated := mutate(append([]byte(nil), raw...))
		if _, err := DecodeEvents(mutated); err == nil {
			t.Fatalf("%s: decode accepted corrupted stream", name)
		}
	}
}
