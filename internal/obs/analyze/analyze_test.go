package analyze

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

var base = time.Unix(1_700_000_000, 0)

// span builds a synthetic finished span at base+start lasting dur.
func span(name string, traceID, spanID, parentID uint64, site string, start, dur time.Duration) obs.Span {
	return obs.Span{
		Name:     name,
		TraceID:  traceID,
		SpanID:   spanID,
		ParentID: parentID,
		Site:     site,
		Start:    base.Add(start),
		Dur:      dur,
	}
}

// multiDCTrace models a cross-site migration: the root orchestrates a
// freeze, two wan.hop legs around a transfer, and a resume. Laid out:
//
//	root [0, 100ms]                              orchestrate
//	  lib.freeze   [5ms, 15ms]                   freeze
//	  wan.hop      [15ms, 30ms]                  wan
//	    me.data    [18ms, 25ms]   (inner leg)    transfer
//	  wan.hop      [30ms, 55ms]                  wan
//	  lib.resume   [60ms, 90ms]                  resume
//
// Critical path: orchestrate owns [0,5)+[55,60)+[90,100) = 20ms; freeze
// 10ms; first hop [15,18)+[25,30) = 8ms; me.data 7ms; second hop 25ms;
// resume 30ms. Total 100ms.
func multiDCTrace(traceID uint64) []obs.Span {
	ms := time.Millisecond
	return []obs.Span{
		span("fleet.migrate", traceID, 1, 0, "dc-a", 0, 100*ms),
		span("lib.freeze", traceID, 2, 1, "lib:m1", 5*ms, 10*ms),
		span("wan.hop", traceID, 3, 1, "a->b", 15*ms, 15*ms),
		span("me.data", traceID, 4, 3, "dc-b", 18*ms, 7*ms),
		span("wan.hop", traceID, 5, 1, "b->a", 30*ms, 25*ms),
		span("lib.resume", traceID, 6, 1, "lib:m1", 60*ms, 30*ms),
	}
}

func TestCriticalPathMultiDC(t *testing.T) {
	trees := BuildTraces(multiDCTrace(7))[7]
	if len(trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Orphan {
		t.Fatal("root should not be orphaned")
	}
	segs := tree.CriticalPath()

	// Every instant of the root window is attributed exactly once:
	// segments are contiguous and sum to the root duration.
	var total time.Duration
	for i, seg := range segs {
		total += seg.Dur
		if i > 0 && !seg.Start.Equal(segs[i-1].End) {
			t.Fatalf("gap/overlap between segments %d and %d: %v vs %v",
				i-1, i, segs[i-1].End, seg.Start)
		}
	}
	if total != tree.Root.Dur {
		t.Fatalf("segments sum to %v, root lasted %v", total, tree.Root.Dur)
	}

	ms := time.Millisecond
	want := map[string]time.Duration{
		PhaseOrchestrate: 20 * ms,
		PhaseFreeze:      10 * ms,
		PhaseWAN:         33 * ms, // 8ms around me.data + 25ms second hop
		PhaseTransfer:    7 * ms,
		PhaseResume:      30 * ms,
	}
	got := tree.Breakdown()
	for phase, d := range want {
		if got[phase] != d {
			t.Errorf("phase %s = %v, want %v (full: %v)", phase, got[phase], d, got)
		}
	}
}

func TestCriticalPathOrphanedParent(t *testing.T) {
	ms := time.Millisecond
	// The root was evicted from the ring: lib.recover's parent span 99
	// is absent, so it becomes an orphan tree but still analyzable.
	spans := []obs.Span{
		span("lib.recover", 11, 3, 99, "lib:m2", 0, 40*ms),
		span("escrow.get", 11, 4, 3, "rack-1", 5*ms, 10*ms),
	}
	trees := BuildTraces(spans)[11]
	if len(trees) != 1 || !trees[0].Orphan {
		t.Fatalf("want one orphan tree, got %+v", trees)
	}
	got := trees[0].Breakdown()
	if got[PhaseRecover] != 30*ms || got[PhaseEscrow] != 10*ms {
		t.Fatalf("breakdown = %v", got)
	}
}

func TestCriticalPathOutOfOrderEnd(t *testing.T) {
	ms := time.Millisecond
	// The child's window leaks past its parent's end (End called after
	// the parent ended, or cross-machine clock skew): it must be clamped
	// so the partition property still holds.
	spans := []obs.Span{
		span("fleet.migrate", 13, 1, 0, "", 0, 20*ms),
		span("me.transfer", 13, 2, 1, "", 10*ms, 30*ms), // ends at 40ms > parent 20ms
		span("lib.freeze", 13, 3, 1, "", -5*ms, 10*ms),  // starts before parent
	}
	tree := BuildTraces(spans)[13][0]
	var total time.Duration
	for _, seg := range tree.CriticalPath() {
		total += seg.Dur
	}
	if total != 20*ms {
		t.Fatalf("clamped segments sum to %v, want 20ms", total)
	}
	got := tree.Breakdown()
	if got[PhaseTransfer] != 10*ms || got[PhaseFreeze] != 5*ms || got[PhaseOrchestrate] != 5*ms {
		t.Fatalf("breakdown = %v", got)
	}
}

func TestSummarizeAggregatesRoots(t *testing.T) {
	spans := append(multiDCTrace(21), multiDCTrace(22)...)
	sum := Summarize(spans, "fleet.migrate")
	if sum.Count != 2 {
		t.Fatalf("Count = %d, want 2", sum.Count)
	}
	if sum.Mean != 100*time.Millisecond {
		t.Fatalf("Mean = %v, want 100ms", sum.Mean)
	}
	var frac float64
	for _, p := range sum.Phases {
		frac += p.Fraction
	}
	if frac < 0.999 || frac > 1.001 {
		t.Fatalf("phase fractions sum to %v, want 1", frac)
	}
	if sum.Phases[0].Phase != PhaseWAN {
		t.Fatalf("dominant phase = %s, want wan", sum.Phases[0].Phase)
	}
	if miss := Summarize(spans, "fleet.recover"); miss.Count != 0 {
		t.Fatalf("unexpected fleet.recover summary: %+v", miss)
	}
}

func TestUnavailabilityWindows(t *testing.T) {
	ms := time.Millisecond
	spans := multiDCTrace(31)
	// A recovery trace: root fleet.recover with lib.recover inside, and
	// a second one that was refused (no resurrection event).
	spans = append(spans,
		span("fleet.recover", 32, 1, 0, "dc-a", 200*ms, 50*ms),
		span("lib.recover", 32, 2, 1, "lib:m9", 210*ms, 30*ms),
		span("fleet.recover", 33, 1, 0, "dc-a", 300*ms, 50*ms),
		span("lib.recover", 33, 2, 1, "lib:zz", 310*ms, 30*ms),
	)
	events := []obs.AuditEvent{
		{Type: obs.EventResurrection, Actor: "m9", Trace: obs.TraceContext{TraceID: 32}},
		{Type: obs.EventZombieRefused, Actor: "zz", Trace: obs.TraceContext{TraceID: 33}},
	}
	windows := UnavailabilityWindows(spans, events)
	if len(windows) != 2 {
		t.Fatalf("windows = %+v, want freeze + recovery", windows)
	}
	fr, rc := windows[0], windows[1]
	if fr.Kind != WindowFreeze || fr.Enclave != "lib:m1" || fr.Dur != 85*ms {
		t.Fatalf("freeze window = %+v (want lib:m1, 85ms freeze→resume-end)", fr)
	}
	if rc.Kind != WindowRecovery || rc.Enclave != "lib:m9" || rc.Dur != 40*ms {
		t.Fatalf("recovery window = %+v (want lib:m9, 40ms root-start→recover-end)", rc)
	}
}

func TestLedgerObservesOnce(t *testing.T) {
	o := obs.NewObserver()
	sp, tc := o.StartSpan("fleet.recover", obs.TraceContext{})
	lib, _ := o.StartSpan("lib.recover", tc)
	time.Sleep(time.Millisecond)
	lib.End()
	o.Event(obs.EventResurrection, "m1", "", tc)
	sp.End()

	ld := NewLedger()
	if got := len(ld.Update(o)); got != 1 {
		t.Fatalf("windows = %d, want 1", got)
	}
	ld.Update(o) // second pass must not double-observe
	snap := o.M().Snapshot()
	h := snap.Histograms["unavail.recovery.window"]
	if h.Count != 1 {
		t.Fatalf("recovery histogram count = %d, want 1 after two updates", h.Count)
	}
	if snap.Gauges["unavail.recovery.max_ns"] <= 0 {
		t.Fatalf("max gauge = %d, want > 0", snap.Gauges["unavail.recovery.max_ns"])
	}
}

func TestSLOEvaluate(t *testing.T) {
	m := obs.NewMetrics()
	for i := 0; i < 100; i++ {
		m.Histogram("unavail.freeze.window").Observe(10 * time.Millisecond)
	}
	m.SetGauge("mirror.flush.last_unix_ns", base.UnixNano())
	now := base.Add(10 * time.Minute)

	verdicts := Evaluate(m.Snapshot(), DefaultObjectives(), now)
	byName := map[string]Verdict{}
	for _, v := range verdicts {
		byName[v.Objective.Name] = v
	}
	if v := byName["freeze-window-p99"]; v.Violated || v.Missing {
		t.Fatalf("freeze-window-p99 = %+v, want pass", v)
	}
	if v := byName["migration-p99"]; !v.Missing {
		t.Fatalf("migration-p99 = %+v, want missing (no data)", v)
	}
	// The mirror last flushed 10 minutes ago against a 5-minute RPO.
	if v := byName["mirror-rpo-age"]; !v.Violated {
		t.Fatalf("mirror-rpo-age = %+v, want violated", v)
	}

	o := &obs.Observer{Metrics: m, Events: obs.NewEventLog()}
	PublishVerdicts(o, verdicts)
	if got := m.Snapshot().Gauges["slo.violations"]; got != 1 {
		t.Fatalf("slo.violations = %d, want 1", got)
	}
	events := o.Events.Events()
	if len(events) != 1 || events[0].Type != obs.EventSLOViolation {
		t.Fatalf("events = %+v, want one slo-violation", events)
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	m := obs.NewMetrics()
	m.Add("wire.msgs.offer", 3)
	m.SetGauge("obs.dropped.spans", 0)
	m.Histogram("fleet.migration.latency").Observe(856 * time.Microsecond)

	var b strings.Builder
	if err := WriteOpenMetrics(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE wire_msgs_offer counter\nwire_msgs_offer_total 3\n",
		"# TYPE obs_dropped_spans gauge\nobs_dropped_spans 0\n",
		"# TYPE fleet_migration_latency summary\n",
		"fleet_migration_latency{quantile=\"0.99\"} ",
		"fleet_migration_latency_count 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition must end with # EOF:\n%s", text)
	}
	// Minimal parse: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
}
