package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/health"
)

// metricName sanitizes a dotted internal metric name into the
// [a-zA-Z_:][a-zA-Z0-9_:]* charset Prometheus requires.
func metricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// seconds renders a nanosecond duration as the float seconds
// OpenMetrics expects.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%g", float64(d)/float64(time.Second))
}

// WriteOpenMetrics renders the snapshot as OpenMetrics text exposition:
// counters as <name>_total, gauges verbatim, histograms as summaries
// (quantile series in seconds plus _sum/_count), terminated by # EOF.
// Output is deterministic — families are sorted by name.
func WriteOpenMetrics(w io.Writer, snap obs.Snapshot) error {
	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		mn := metricName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s_total %d\n", mn, mn, snap.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		mn := metricName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", mn, mn, snap.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		mn := metricName(n)
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %s\n%s{quantile=\"0.99\"} %s\n%s{quantile=\"0.999\"} %s\n%s_sum %s\n%s_count %d\n",
			mn,
			mn, seconds(h.P50),
			mn, seconds(h.P99),
			mn, seconds(h.P999),
			mn, seconds(h.Sum),
			mn, h.Count); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// Plane is the live export surface served from -metrics-addr. Every
// scrape refreshes the derived metrics (unavailability ledger, dropped
// counters, SLO verdicts, health states) before rendering, so the
// exposition is always current without a background refresher goroutine.
type Plane struct {
	Obs        *obs.Observer
	Ledger     *Ledger
	Objectives []Objective
	// Health, when attached, is evaluated on every Refresh and served as
	// JSON at /health.
	Health *health.Monitor
	// Flight, when attached, receives the fresh SLO verdicts and scans
	// the audit stream for capture triggers on every Refresh; the latest
	// bundle is served at /flight (binary) and /flight.json.
	Flight *flight.Recorder
}

// NewPlane wires a plane over the observer with the default objectives,
// the default health detector set, and an in-memory flight recorder.
func NewPlane(o *obs.Observer) *Plane {
	return &Plane{
		Obs:        o,
		Ledger:     NewLedger(),
		Objectives: DefaultObjectives(),
		Health:     health.NewDefault(o),
		Flight:     flight.NewRecorder(o),
	}
}

// FlightSLO flattens analyze verdicts into the form flight bundles embed
// (flight cannot import analyze).
func FlightSLO(verdicts []Verdict) []flight.SLOVerdict {
	out := make([]flight.SLOVerdict, 0, len(verdicts))
	for _, v := range verdicts {
		out = append(out, flight.SLOVerdict{
			Name:     v.Objective.Name,
			Metric:   v.Objective.Metric,
			ActualNs: int64(v.Actual),
			MaxNs:    int64(v.Objective.Max),
			Violated: v.Violated,
			Missing:  v.Missing,
		})
	}
	return out
}

// Refresh re-derives everything the plane exports: updates the
// unavailability ledger, publishes ring-drop gauges, evaluates the SLO
// set against a fresh snapshot, records violations, runs the health
// detectors, and lets the flight recorder scan for capture triggers. It
// returns the verdicts for callers that print them.
func (p *Plane) Refresh() []Verdict {
	if p == nil || p.Obs == nil {
		return nil
	}
	p.Ledger.Update(p.Obs)
	p.Obs.PublishDropped()
	verdicts := Evaluate(p.Obs.M().Snapshot(), p.Objectives, time.Now())
	PublishVerdicts(p.Obs, verdicts)
	if p.Health != nil {
		p.Health.Evaluate(time.Now())
	}
	if p.Flight != nil {
		p.Flight.NoteSLO(FlightSLO(verdicts))
		if p.Health != nil {
			p.Flight.SetHealthProvider(p.Health.States)
		}
		p.Flight.Scan()
	}
	return verdicts
}

// HealthReport is the /health JSON document.
type HealthReport struct {
	Overall  health.State          `json:"overall"`
	Entities []health.EntityHealth `json:"entities"`
}

// Handler serves the export plane:
//
//	/metrics       OpenMetrics text exposition
//	/metrics.json  JSON metrics snapshot
//	/traces        JSON span dump grouped by trace ID
//	/events        JSON audit event stream
//	/slo           JSON SLO verdicts
//	/health        JSON health states (overall + per entity)
//	/flight        latest flight bundle, binary (404 before first trip)
//	/flight.json   latest flight bundle, decoded JSON
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		p.Refresh()
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = WriteOpenMetrics(w, p.Obs.M().Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		p.Refresh()
		writeJSON(w, p.Obs.M().Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Obs.Tracer.ByTrace())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Obs.Events.Events())
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Refresh())
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		p.Refresh()
		if p.Health == nil {
			http.Error(w, "no health monitor attached", http.StatusNotFound)
			return
		}
		writeJSON(w, HealthReport{Overall: p.Health.Overall(), Entities: p.Health.States()})
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		p.Refresh()
		var raw []byte
		if p.Flight != nil {
			_, raw = p.Flight.Latest()
		}
		if len(raw) == 0 {
			http.Error(w, "no flight bundle captured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(raw)
	})
	mux.HandleFunc("/flight.json", func(w http.ResponseWriter, r *http.Request) {
		p.Refresh()
		var b *flight.Bundle
		if p.Flight != nil {
			b, _ = p.Flight.Latest()
		}
		if b == nil {
			http.Error(w, "no flight bundle captured", http.StatusNotFound)
			return
		}
		writeJSON(w, b)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
